package handshakejoin

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// The tests in this file establish the correctness claims of the
// adaptive shard runtime: under Zipf-skewed key distributions, with
// rebalancing cutting key-groups over between shards mid-stream and
// heartbeats ticking idle shards, the result multiset — and in Ordered
// mode the exact global sequence — still matches the sequential Kang
// oracle.
//
// They run with Batch: 1, where window boundaries are exact (every
// flush carries its own tuple's timestamp, so expiries apply at
// precisely the stream time the window specifies). Exact boundaries
// make the multiset independent of tuple placement, which is what lets
// one sequential oracle stand in for an engine whose routing table
// changes at wall-clock-dependent moments. The safe-cut-over protocol
// guarantees the same independence at the engine side: a group moves
// only when no joinable state remains on its old shard.

// zipfSchedule drives identical Zipf-keyed push/tick schedules into
// the engine under test and the oracle.
func zipfSchedule(t *testing.T, tuples int, theta float64, keys int, seed uint64, eng Joiner[okR, okS], o *oracleEngine, between func(i int)) {
	t.Helper()
	rnd := workload.NewRand(seed)
	zr := workload.NewZipf(workload.NewRand(seed+1), theta, keys)
	zs := workload.NewZipf(workload.NewRand(seed+2), theta, keys)
	const step = int64(1e6)
	ts := int64(0)
	for i := 0; i < tuples; i++ {
		ts += int64(rnd.Intn(3)) * step / 2
		r := okR{Key: zr.Next(), Val: int32(rnd.Intn(12))}
		if err := eng.PushR(r, ts); err != nil {
			t.Fatal(err)
		}
		o.pushR(r, ts)
		if i%3 != 0 {
			s := okS{Key: zs.Next(), Val: int32(rnd.Intn(12))}
			if err := eng.PushS(s, ts); err != nil {
				t.Fatal(err)
			}
			o.pushS(s, ts)
		}
		if i%97 == 96 { // idle period: advance stream time without tuples
			ts += 20 * step
			eng.Tick(ts)
			o.tick(ts)
		}
		if between != nil {
			between(i)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	o.close()
}

func TestShardedZipfMatchesOracle(t *testing.T) {
	// Skewed keys, shards 2/4/8, adaptive off and on (background
	// control loop at a tight period, so cut-overs happen at arbitrary
	// wall-clock points mid-run). Exact multiset either way.
	const step = int64(1e6)
	for _, shards := range []int{2, 4, 8} {
		for _, theta := range []float64{1.0, 1.5} {
			for _, adaptive := range []bool{false, true} {
				name := fmt.Sprintf("shards=%d/theta=%.1f/adaptive=%v", shards, theta, adaptive)
				t.Run(name, func(t *testing.T) {
					cfg := Config[okR, okS]{
						Workers:     3,
						Shards:      shards,
						Predicate:   shardedEqui,
						WindowR:     Window{Duration: time.Duration(120 * step), Count: 200},
						WindowS:     Window{Count: 190},
						Batch:       1,
						MaxInFlight: 2,
						KeyR:        okRKey,
						KeyS:        okSKey,
						Adapt: AdaptConfig{
							Enable:           adaptive,
							SamplePeriod:     200 * time.Microsecond,
							SkewThreshold:    1.05,
							MaxMovesPerCycle: 16,
							KeyGroups:        8 * shards,
						},
					}
					var mu sync.Mutex
					got := map[stream.PairKey]int{}
					cfg.OnOutput = func(it Item[okR, okS]) {
						if it.Punct {
							return
						}
						mu.Lock()
						got[it.Result.Pair.Key()]++
						mu.Unlock()
					}
					eng, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					o := newOracleEngine(cfg, shardedEqui)
					zipfSchedule(t, 1200, theta, 256, uint64(shards)*77+uint64(theta*10), eng, o, nil)

					missing, extra, dups := diffPairMultiset(o.pairs, got)
					if missing != 0 || extra != 0 || dups != 0 {
						t.Fatalf("sharded vs oracle: %d missing, %d extra, %d duplicates (oracle %d distinct)",
							missing, extra, dups, len(o.pairs))
					}
					st := eng.Stats()
					if st.Results != sum(o.pairs) {
						t.Fatalf("Stats.Results = %d, oracle produced %d", st.Results, sum(o.pairs))
					}
					if st.PendingExpiries != 0 {
						t.Errorf("pending expiries: %d", st.PendingExpiries)
					}
					if !adaptive && (st.Rebalances != 0 || st.KeyGroupMoves != 0) {
						t.Fatalf("static engine reported rebalancing: %+v", st)
					}
				})
			}
		}
	}
}

func TestShardedAdaptiveRebalancesDeterministically(t *testing.T) {
	// Manual control mode (negative SamplePeriod): Rebalance() is the
	// only driver of the control loop, so the cut-over points are a
	// pure function of the push schedule — the test can assert that
	// moves actually happened and that the output is still exact.
	const shards = 4
	cfg := Config[okR, okS]{
		Workers:     2,
		Shards:      shards,
		Predicate:   shardedEqui,
		WindowR:     Window{Count: 48},
		WindowS:     Window{Count: 48},
		Batch:       1,
		MaxInFlight: 2,
		KeyR:        okRKey,
		KeyS:        okSKey,
		Adapt: AdaptConfig{
			Enable:           true,
			SamplePeriod:     -1, // manual Rebalance only
			SkewThreshold:    1.05,
			MaxMovesPerCycle: 8,
			KeyGroups:        32,
		},
	}
	var mu sync.Mutex
	got := map[stream.PairKey]int{}
	cfg.OnOutput = func(it Item[okR, okS]) {
		if it.Punct {
			return
		}
		mu.Lock()
		got[it.Result.Pair.Key()]++
		mu.Unlock()
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se, ok := eng.(*ShardedEngine[okR, okS])
	if !ok {
		t.Fatalf("New returned %T, want *ShardedEngine", eng)
	}
	o := newOracleEngine(cfg, shardedEqui)
	zipfSchedule(t, 4000, 1.5, 256, 99, eng, o, func(i int) {
		if i%250 == 249 {
			se.Rebalance()
		}
	})

	missing, extra, dups := diffPairMultiset(o.pairs, got)
	if missing != 0 || extra != 0 || dups != 0 {
		t.Fatalf("adaptive vs oracle: %d missing, %d extra, %d duplicates", missing, extra, dups)
	}
	st := eng.Stats()
	if st.Rebalances == 0 || st.KeyGroupMoves == 0 {
		t.Fatalf("skewed workload triggered no rebalancing: %d cycles, %d moves", st.Rebalances, st.KeyGroupMoves)
	}
}

func TestShardedOrderedAdaptiveExactSequence(t *testing.T) {
	// Ordered mode across rebalance cut-overs: the merged, punctuation
	// sorted output must still be the exact deterministic sequence.
	const step = int64(1e6)
	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := Config[okR, okS]{
				Workers:       2,
				Shards:        shards,
				Predicate:     shardedEqui,
				WindowR:       Window{Duration: time.Duration(100 * step), Count: 64},
				WindowS:       Window{Duration: time.Duration(100 * step), Count: 64},
				Batch:         1,
				MaxInFlight:   2,
				Ordered:       true,
				CollectPeriod: 200 * time.Microsecond,
				KeyR:          okRKey,
				KeyS:          okSKey,
				Adapt: AdaptConfig{
					Enable:           true,
					SamplePeriod:     -1,
					SkewThreshold:    1.05,
					MaxMovesPerCycle: 8,
					KeyGroups:        8 * shards,
				},
			}
			var mu sync.Mutex
			var gotSeq []orderedKey
			cfg.OnOutput = func(it Item[okR, okS]) {
				mu.Lock()
				defer mu.Unlock()
				if it.Punct {
					return
				}
				p := it.Result.Pair
				gotSeq = append(gotSeq, orderedKey{TS: p.TS(), RSeq: p.R.Seq, SSeq: p.S.Seq})
			}
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			se := eng.(*ShardedEngine[okR, okS])
			o := newOracleEngine(cfg, shardedEqui)
			zipfSchedule(t, 3000, 1.5, 256, uint64(shards)*13, eng, o, func(i int) {
				if i%200 == 199 {
					se.Rebalance()
				}
			})

			st := eng.Stats()
			if st.KeyGroupMoves == 0 {
				t.Fatalf("no cut-overs happened; the ordered-across-rebalance claim was not exercised")
			}
			want := o.orderedResults()
			if len(gotSeq) != len(want) {
				t.Fatalf("emitted %d results, oracle expects %d (moves %d)", len(gotSeq), len(want), st.KeyGroupMoves)
			}
			for i := range want {
				if gotSeq[i] != want[i] {
					t.Fatalf("position %d: got %+v, want %+v", i, gotSeq[i], want[i])
				}
			}
			if len(want) == 0 {
				t.Fatal("workload produced no results; test has no teeth")
			}
		})
	}
}

func TestShardedIdleShardHeartbeatReleasesOrderedOutput(t *testing.T) {
	// One hot key: every tuple routes to a single shard, the others
	// never see traffic. Without heartbeats, the idle shards' promises
	// stay at their initial high-water mark, the merged punctuation
	// floor cannot advance, and Ordered output is withheld until Close.
	// With heartbeats (the default), results must flow while the engine
	// is still running — and still in the exact oracle order.
	const step = int64(1e6)
	run := func(t *testing.T, heartbeat bool) (beforeClose int, total int, want []orderedKey) {
		cfg := Config[okR, okS]{
			Workers:       2,
			Shards:        4,
			Predicate:     shardedEqui,
			WindowR:       Window{Count: 32},
			WindowS:       Window{Count: 32},
			Batch:         1,
			MaxInFlight:   2,
			Ordered:       true,
			CollectPeriod: 200 * time.Microsecond,
			KeyR:          okRKey,
			KeyS:          okSKey,
			Adapt:         AdaptConfig{DisableHeartbeat: !heartbeat},
		}
		var mu sync.Mutex
		var gotSeq []orderedKey
		cfg.OnOutput = func(it Item[okR, okS]) {
			mu.Lock()
			defer mu.Unlock()
			if it.Punct {
				return
			}
			p := it.Result.Pair
			gotSeq = append(gotSeq, orderedKey{TS: p.TS(), RSeq: p.R.Seq, SSeq: p.S.Seq})
		}
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		o := newOracleEngine(cfg, shardedEqui)
		ts := int64(0)
		const hot = uint64(7)
		for i := 0; i < 400; i++ {
			ts += step
			r := okR{Key: hot, Val: int32(i % 5)}
			s := okS{Key: hot, Val: int32(i % 7)}
			if err := eng.PushR(r, ts); err != nil {
				t.Fatal(err)
			}
			o.pushR(r, ts)
			if err := eng.PushS(s, ts); err != nil {
				t.Fatal(err)
			}
			o.pushS(s, ts)
		}
		// Give collectors and (when enabled) heartbeats time to run.
		time.Sleep(60 * time.Millisecond)
		mu.Lock()
		beforeClose = len(gotSeq)
		mu.Unlock()
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		o.close()
		mu.Lock()
		defer mu.Unlock()
		return beforeClose, len(gotSeq), o.orderedResults()
	}

	t.Run("heartbeat-off-holds-output", func(t *testing.T) {
		before, total, want := run(t, false)
		if before != 0 {
			t.Fatalf("ordered output flowed (%d results) despite idle shards and no heartbeat", before)
		}
		if total != len(want) || total == 0 {
			t.Fatalf("Close released %d results, oracle expects %d", total, len(want))
		}
	})
	t.Run("heartbeat-on-releases-output", func(t *testing.T) {
		before, total, want := run(t, true)
		if before == 0 {
			t.Fatal("no ordered output before Close: idle-shard heartbeat did not advance the punctuation floor")
		}
		if total != len(want) || total == 0 {
			t.Fatalf("released %d results, oracle expects %d", total, len(want))
		}
	})
}
