// Sensors: a time-window equi-join accelerated by node-local hash
// indexes — the configuration of the paper's Table 2, where indexing
// raised throughput 44x. Low-latency handshake join enables this
// because every tuple rests on exactly one home node (§4.1), so each
// worker can maintain a local index over its window fragment.
//
// The example joins a high-rate measurement stream with a calibration
// stream on sensor id and reports how much scan work the index saved.
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"time"

	"handshakejoin"
)

// Measurement is a sample on stream R.
type Measurement struct {
	Sensor uint32
	Value  float64
}

// Calibration is a correction factor on stream S.
type Calibration struct {
	Sensor uint32
	Offset float64
}

func run(index handshakejoin.IndexKind) (matches uint64, comparisons uint64) {
	cfg := handshakejoin.Config[Measurement, Calibration]{
		Workers: 4,
		Predicate: func(m Measurement, c Calibration) bool {
			return m.Sensor == c.Sensor
		},
		WindowR:  handshakejoin.Window{Duration: 500 * time.Millisecond},
		WindowS:  handshakejoin.Window{Duration: 500 * time.Millisecond},
		Batch:    16,
		Index:    index,
		OnOutput: func(handshakejoin.Item[Measurement, Calibration]) {},
	}
	if index == handshakejoin.HashIndex {
		cfg.KeyR = func(m Measurement) uint64 { return uint64(m.Sensor) }
		cfg.KeyS = func(c Calibration) uint64 { return uint64(c.Sensor) }
	}
	eng, err := handshakejoin.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now().UnixNano()
	for i := 0; i < 4000; i++ {
		ts := start + int64(i)*int64(100*time.Microsecond)
		eng.PushR(Measurement{Sensor: uint32(i % 256), Value: float64(i)}, ts)
		if i%8 == 0 {
			eng.PushS(Calibration{Sensor: uint32(i % 256), Offset: 0.5}, ts)
		}
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	return st.Results, st.Comparisons
}

func main() {
	scanMatches, scanWork := run(handshakejoin.ScanIndex)
	idxMatches, idxWork := run(handshakejoin.HashIndex)

	fmt.Printf("full scans:  %6d matches, %9d window entries inspected\n", scanMatches, scanWork)
	fmt.Printf("hash index:  %6d matches, %9d window entries inspected\n", idxMatches, idxWork)
	if scanMatches != idxMatches {
		log.Fatalf("index changed the result set: %d vs %d", idxMatches, scanMatches)
	}
	fmt.Printf("\nidentical results with %.0fx less scan work — the Table 2 effect\n",
		float64(scanWork)/float64(idxWork))
}
