// Quickstart: join two small synthetic streams with low-latency
// handshake join and print every match as it is found.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"handshakejoin"
)

// Reading is a sensor sample on stream R.
type Reading struct {
	Sensor int
	Value  float64
}

// Alert is a threshold event on stream S.
type Alert struct {
	Sensor    int
	Threshold float64
}

func main() {
	// Join readings with alerts for the same sensor whose threshold the
	// reading exceeds, over 1-second sliding windows.
	eng, err := handshakejoin.New(handshakejoin.Config[Reading, Alert]{
		Workers: 4,
		Predicate: func(r Reading, a Alert) bool {
			return r.Sensor == a.Sensor && r.Value >= a.Threshold
		},
		WindowR:  handshakejoin.Window{Duration: time.Second},
		WindowS:  handshakejoin.Window{Duration: time.Second},
		Batch:    4, // small batches = low latency (§7.3.1 of the paper)
		OnOutput: printMatch,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now().UnixNano()
	for i := 0; i < 200; i++ {
		ts := start + int64(i)*int64(time.Millisecond)
		eng.PushR(Reading{Sensor: i % 8, Value: float64(i % 100)}, ts)
		if i%10 == 0 {
			eng.PushS(Alert{Sensor: i % 8, Threshold: 50}, ts)
		}
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}

	st := eng.Stats()
	fmt.Printf("\nprocessed %d readings, %d alerts -> %d matches (%d window-entry inspections)\n",
		st.RIn, st.SIn, st.Results, st.Comparisons)
}

func printMatch(it handshakejoin.Item[Reading, Alert]) {
	r, a := it.Result.Pair.R, it.Result.Pair.S
	fmt.Printf("sensor %d: reading %.0f >= threshold %.0f  (reading seq %d, alert seq %d)\n",
		r.Payload.Sensor, r.Payload.Value, a.Payload.Threshold, r.Seq, a.Seq)
}
