// Latencylab: Figures 5 and 19 side by side, in miniature and in
// virtual time. The discrete-event simulator runs the original
// handshake join and the low-latency variant on identical 40-core
// pipelines and identical inputs, then prints both latency series:
// HSJ latency climbs to ~half the window, LLHJ stays at the batching
// delay, three orders of magnitude lower.
//
//	go run ./examples/latencylab
package main

import (
	"fmt"
	"log"

	"handshakejoin/internal/experiments"
)

func main() {
	const window = int64(60e9) // 60 s windows (paper: 200 s)
	base := experiments.Params{
		Nodes:      40,
		RatePerSec: 60,
		WindowR:    window,
		WindowS:    window,
		Batch:      64,
		Duration:   3 * window / 2,
		Domain:     150,
	}

	fmt.Println("running original handshake join (virtual time)...")
	h := base
	h.Algo = experiments.AlgoHSJ
	hres, err := experiments.Run(h)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running low-latency handshake join...")
	l := base
	l.Algo = experiments.AlgoLLHJ
	lres, err := experiments.Run(l)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%8s  %20s  %20s\n", "time(s)", "HSJ avg latency", "LLHJ avg latency")
	hpts, lpts := hres.Latency.Points(), lres.Latency.Points()
	n := len(hpts)
	if len(lpts) < n {
		n = len(lpts)
	}
	for i := 0; i < n; i++ {
		fmt.Printf("%8.1f  %17.2f s  %16.1f ms\n",
			float64(hpts[i].At)/1e9, hpts[i].Avg/1e9, lpts[i].Avg/1e6)
	}

	predicted := float64(window) / 2
	fmt.Printf("\nmodel (§3.1): HSJ max latency -> |W|/2 = %.0f s; measured max %.2f s\n",
		predicted/1e9, float64(hres.SteadyMax)/1e9)
	fmt.Printf("LLHJ steady avg %.1f ms (batch fill: 64 tuples / %.0f tuples/s ≈ %.0f ms)\n",
		lres.SteadyAvg/1e6, base.RatePerSec, 64/base.RatePerSec*1000)
	fmt.Printf("latency improvement: %.0fx\n", hres.SteadyAvg/lres.SteadyAvg)
}
