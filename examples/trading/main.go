// Trading: the paper's motivating low-latency scenario (§8 cites
// algorithmic trading as the domain where stream joins "should detect
// and report anomalies as early as possible"). Two tick streams —
// trades and quotes — are joined by a band predicate on price, with
// punctuated, strictly ordered output so a downstream strategy sees
// events in timestamp order.
//
// The join is symbol-sharded: the predicate only matches ticks of the
// same symbol, so the engine hash-partitions both streams by symbol
// across four independent pipelines (Config.Shards) — and the merged
// output is still in exact global timestamp order, because per-shard
// punctuation streams are folded into a global guarantee.
//
//	go run ./examples/trading
package main

import (
	"fmt"
	"log"
	"time"

	"handshakejoin"
)

// Trade is an execution report on stream R.
type Trade struct {
	Sym int
	Px  float64
	Qty int
}

// Quote is a posted bid on stream S.
type Quote struct {
	Sym int
	Bid float64
}

func main() {
	var ordered, puncts int
	var lastTS int64 = -1 << 62
	monotonic := true

	eng, err := handshakejoin.New(handshakejoin.Config[Trade, Quote]{
		Workers: 2, // per shard; 4 shards * 2 workers = 8 nodes total
		Shards:  4, // hash-partition both tick streams by symbol
		KeyR:    func(t Trade) uint64 { return uint64(t.Sym) },
		KeyS:    func(q Quote) uint64 { return uint64(q.Sym) },
		// A trade "crosses" a quote when it executes at or below a
		// recent bid for the same symbol — a simple anomaly signal.
		// The symbol equality makes the predicate shardable.
		Predicate: func(t Trade, q Quote) bool {
			return t.Sym == q.Sym && t.Px <= q.Bid
		},
		WindowR: handshakejoin.Window{Duration: 200 * time.Millisecond},
		WindowS: handshakejoin.Window{Duration: 200 * time.Millisecond},
		Batch:   4,
		Ordered: true, // punctuation-driven exact output order (§6)
		OnOutput: func(it handshakejoin.Item[Trade, Quote]) {
			if it.Punct {
				puncts++
				return
			}
			ordered++
			ts := it.Result.Pair.TS()
			if ts < lastTS {
				monotonic = false
			}
			lastTS = ts
			if ordered <= 10 {
				t, q := it.Result.Pair.R, it.Result.Pair.S
				fmt.Printf("anomaly: sym %2d trade @%.2f under bid %.2f (result ts %dus)\n",
					t.Payload.Sym, t.Payload.Px, q.Payload.Bid, ts/1000)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize correlated ticks: prices random-walk per symbol.
	px := make([]float64, 16)
	for i := range px {
		px[i] = 100
	}
	step := func(i int) float64 {
		d := float64((i*2654435761)%7) - 3
		return d / 10
	}
	start := time.Now().UnixNano()
	for i := 0; i < 3000; i++ {
		sym := i % 16
		px[sym] += step(i)
		ts := start + int64(i)*int64(200*time.Microsecond)
		eng.PushR(Trade{Sym: sym, Px: px[sym], Qty: 100}, ts)
		eng.PushS(Quote{Sym: sym, Bid: px[sym] + step(i*3)}, ts)
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}

	st := eng.Stats()
	fmt.Printf("\n%d anomalies in order, %d punctuations, monotonic=%v\n", ordered, puncts, monotonic)
	fmt.Printf("sort buffer peaked at %d results (Figure 21's quantity: thousands, not millions)\n",
		st.MaxSortBuffer)
	fmt.Printf("results per symbol shard: %v\n", st.ShardResults)
	if !monotonic {
		log.Fatal("output order violated — punctuation bug")
	}
}
