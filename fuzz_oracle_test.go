package handshakejoin

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// TestFuzzOracle is a randomized property suite over the whole engine
// configuration space: each iteration draws a window configuration
// (time / count / both, random bounds), a shard count, a key
// distribution and an arrival-mode sequence — pushes, idle ticks and,
// on sharded adaptive engines, live rebalance cycles, freezing
// migrations or incremental handoffs held open across pushes — and
// checks the exact result multiset (and, when Ordered, the exact
// global sequence) against the sequential Kang oracle.
//
// Seeds are deterministic: a failure names its seed, and
// `go test -run 'TestFuzzOracle/seed=<n>'` replays exactly that draw.
func TestFuzzOracle(t *testing.T) {
	const iters = 10
	const base = uint64(0x5EED2026)
	for it := 0; it < iters; it++ {
		seed := base + uint64(it)*7919
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fuzzOracleOnce(t, seed)
		})
	}
}

// TestFuzzKillRestore is the randomized arm of the durability oracle:
// each iteration draws a shard count, window shapes, an admission batch
// size and (sharded) whether an incremental handoff is held open across
// the kill, then kills a durable engine at a random push boundary,
// restores a fresh one and checks the recovery contract exactly (see
// runKillRestore). Seeds are deterministic and named on failure.
func TestFuzzKillRestore(t *testing.T) {
	const iters = 6
	const base = uint64(0xC4A5_2026)
	for it := 0; it < iters; it++ {
		seed := base + uint64(it)*104729
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rnd := workload.NewRand(seed)
			const step = int64(1e6)
			drawWindow := func() Window {
				switch rnd.Intn(3) {
				case 0:
					return Window{Count: 120 + rnd.Intn(120)}
				case 1:
					return Window{Duration: time.Duration((80 + int64(rnd.Intn(140))) * step)}
				default:
					return Window{
						Duration: time.Duration((80 + int64(rnd.Intn(140))) * step),
						Count:    120 + rnd.Intn(120),
					}
				}
			}
			shards := []int{1, 2, 4, 8}[rnd.Intn(4)]
			batch := []int{1, 1, 3}[rnd.Intn(3)]
			handoff := shards > 1 && rnd.Intn(2) == 0
			runKillRestore(t, seed+13, shards, batch, drawWindow(), drawWindow(), handoff)
		})
	}
}

func fuzzOracleOnce(t *testing.T, seed uint64) {
	rnd := workload.NewRand(seed)
	const step = int64(1e6)

	drawWindow := func() Window {
		switch rnd.Intn(3) {
		case 0:
			return Window{Count: 160 + rnd.Intn(100)}
		case 1:
			return Window{Duration: time.Duration((100 + int64(rnd.Intn(120))) * step)}
		default:
			return Window{
				Duration: time.Duration((100 + int64(rnd.Intn(120))) * step),
				Count:    160 + rnd.Intn(100),
			}
		}
	}

	shards := []int{1, 2, 4, 8}[rnd.Intn(4)]
	// Arrival-mode sequence: what besides plain pushes the schedule
	// interleaves. Static engines may batch (window boundaries stay
	// exact relative to the replica oracle); every live-mutation mode
	// runs Batch 1, where boundaries are schedule-independent.
	mode := 0
	if shards > 1 {
		mode = rnd.Intn(4)
	}
	theta := []float64{0, 1.0, 1.5}[rnd.Intn(3)]
	ordered := rnd.Intn(2) == 0

	cfg := Config[okR, okS]{
		Workers:     1 + rnd.Intn(3),
		Shards:      shards,
		Predicate:   shardedEqui,
		WindowR:     drawWindow(),
		WindowS:     drawWindow(),
		Batch:       1,
		MaxInFlight: 2,
		KeyR:        okRKey,
		KeyS:        okSKey,
		Adapt:       AdaptConfig{DisableHeartbeat: true},
	}
	if mode == 0 {
		cfg.Batch = []int{1, 4}[rnd.Intn(2)]
	} else {
		cfg.Adapt = AdaptConfig{
			Enable:           true,
			SamplePeriod:     -1, // the schedule is the only control driver
			SkewThreshold:    1.05,
			MaxMovesPerCycle: 16,
			KeyGroups:        8 * shards,
			Migration:        MigrationConfig{SliceTuples: 8 + rnd.Intn(24)},
		}
	}
	if ordered {
		cfg.Ordered = true
		cfg.CollectPeriod = 200 * time.Microsecond
	}

	var mu sync.Mutex
	got := map[stream.PairKey]int{}
	var gotSeq []orderedKey
	cfg.OnOutput = func(it Item[okR, okS]) {
		if it.Punct {
			return
		}
		mu.Lock()
		got[it.Result.Pair.Key()]++
		p := it.Result.Pair
		gotSeq = append(gotSeq, orderedKey{TS: p.TS(), RSeq: p.R.Seq, SSeq: p.S.Seq})
		mu.Unlock()
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	var se *ShardedEngine[okR, okS]
	if shards > 1 {
		se = eng.(*ShardedEngine[okR, okS])
	}
	o := newOracleEngine(cfg, shardedEqui)

	var zr, zs *workload.Zipf
	if theta > 0 {
		zr = workload.NewZipf(workload.NewRand(seed+1), theta, 256)
		zs = workload.NewZipf(workload.NewRand(seed+2), theta, 256)
	}
	nextKey := func(z *workload.Zipf) uint64 {
		if z == nil {
			return uint64(rnd.Intn(64))
		}
		return z.Next()
	}

	// Live-mutation state for modes 1-3.
	opEvery := 90 + rnd.Intn(120)
	advEvery := 3 + rnd.Intn(9)
	move := 0
	active := -1
	tuples := 600 + rnd.Intn(300)
	ts := int64(0)
	for i := 0; i < tuples; i++ {
		ts += int64(rnd.Intn(3)) * step / 2
		r := okR{Key: nextKey(zr), Val: int32(rnd.Intn(12))}
		if err := eng.PushR(r, ts); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		o.pushR(r, ts)
		if i%3 != 0 {
			s := okS{Key: nextKey(zs), Val: int32(rnd.Intn(12))}
			if err := eng.PushS(s, ts); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			o.pushS(s, ts)
		}
		if i%97 == 96 {
			ts += 20 * step
			eng.Tick(ts)
			o.tick(ts)
		}
		switch mode {
		case 1: // adaptive drain rebalancing at schedule-fixed points
			if i%opEvery == opEvery-1 {
				se.Rebalance()
			}
		case 2: // forced freezing migrations, cycling groups/targets
			if i%opEvery == opEvery-1 {
				g := uint32(move % se.KeyGroups())
				to := (se.router.Partitioner().ShardOfGroup(g) + 1 + move%(shards-1)) % shards
				if _, err := se.Migrate(g, to); err != nil {
					t.Fatalf("seed %d: Migrate(%d, %d): %v", seed, g, to, err)
				}
				move++
			}
		case 3: // incremental handoffs held open across pushes
			if active < 0 && i%opEvery == opEvery-1 {
				g := uint32(move % se.KeyGroups())
				to := (se.router.Partitioner().ShardOfGroup(g) + 1 + move%(shards-1)) % shards
				if err := se.BeginMigration(g, to); err != nil {
					t.Fatalf("seed %d: BeginMigration(%d, %d): %v", seed, g, to, err)
				}
				active = int(g)
				move++
			} else if active >= 0 && i%advEvery == advEvery-1 {
				_, done, err := se.AdvanceMigration(uint32(active))
				if err != nil {
					t.Fatalf("seed %d: AdvanceMigration(%d): %v", seed, active, err)
				}
				if done {
					active = -1
				}
			}
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	o.close()

	missing, extra, dups := diffPairMultiset(o.pairs, got)
	if missing != 0 || extra != 0 || dups != 0 {
		t.Fatalf("seed %d (shards=%d mode=%d theta=%.1f ordered=%v): %d missing, %d extra, %d duplicates (oracle %d distinct)",
			seed, shards, mode, theta, ordered, missing, extra, dups, len(o.pairs))
	}
	if st := eng.Stats(); st.Results != sum(o.pairs) {
		t.Fatalf("seed %d: Stats.Results = %d, oracle produced %d", seed, st.Results, sum(o.pairs))
	}
	if ordered {
		want := o.orderedResults()
		mu.Lock()
		defer mu.Unlock()
		if len(gotSeq) != len(want) {
			t.Fatalf("seed %d: emitted %d ordered results, oracle expects %d", seed, len(gotSeq), len(want))
		}
		for i := range want {
			if gotSeq[i] != want[i] {
				t.Fatalf("seed %d: position %d: got %+v, want %+v", seed, i, gotSeq[i], want[i])
			}
		}
	}
}
