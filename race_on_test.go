//go:build race

package handshakejoin

// raceEnabled lets wall-clock-paced tests stretch their deadlines
// under the race detector, which slows execution by an order of
// magnitude.
const raceEnabled = true
