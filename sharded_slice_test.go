package handshakejoin

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// The tests in this file establish the correctness claim of
// incremental (slice) migration: a key-group relocates in bounded hops
// while both lanes stay live — arrivals keep flowing mid-handoff, each
// one stored at the destination and double-read probe-only on the
// source — and the result multiset (and the exact Ordered-mode
// sequence) still matches the sequential Kang oracle. The handoffs are
// held open across many pushes on purpose: that is the window in which
// the double-read dedup invariant (every pair examined on exactly one
// lane) carries the whole correctness argument.

// sliceCfg is migrateCfg with a small slice bound, so every handoff
// needs many hops.
func sliceCfg(shards int, sliceTuples int) Config[okR, okS] {
	cfg := migrateCfg(shards, 1.5)
	cfg.Adapt.Migration.SliceTuples = sliceTuples
	return cfg
}

// driveSliceMigrations returns a schedule callback that begins an
// incremental migration every beginEvery pushes (cycling groups and
// targets) and advances the open handoff one slice every advanceEvery
// pushes — so handoffs stay open across stretches of live traffic.
// maxHops reports the largest number of tuple-moving hops any single
// handoff needed: > 1 proves some group really moved in slices.
func driveSliceMigrations(t *testing.T, se *ShardedEngine[okR, okS], shards, beginEvery, advanceEvery int) (between func(i int), maxHops *int) {
	t.Helper()
	groups := se.KeyGroups()
	move := 0
	active := -1
	hops := 0
	maxHops = new(int)
	return func(i int) {
		if active < 0 && i%beginEvery == beginEvery-1 {
			g := uint32(move % groups)
			to := (se.router.Partitioner().ShardOfGroup(g) + 1 + move%(shards-1)) % shards
			if err := se.BeginMigration(g, to); err != nil {
				t.Fatalf("BeginMigration(%d, %d): %v", g, to, err)
			}
			active = int(g)
			hops = 0
			move++
			return
		}
		if active >= 0 && i%advanceEvery == advanceEvery-1 {
			n, done, err := se.AdvanceMigration(uint32(active))
			if err != nil {
				t.Fatalf("AdvanceMigration(%d): %v", active, err)
			}
			if n > 0 {
				hops++
			}
			if done {
				if hops > *maxHops {
					*maxHops = hops
				}
				active = -1
			}
		}
	}, maxHops
}

func TestShardedSliceMigrateMatchesOracle(t *testing.T) {
	// Forced incremental migrations under θ=1.5 skew: handoffs stay
	// open across pushes, mega-groups move in 12-tuple hops, and the
	// multiset must stay exact — with zero full-group freeze stalls on
	// any source shard.
	for _, shards := range []int{4, 8} {
		t.Run(fmt.Sprintf("shards=%d/theta=1.5", shards), func(t *testing.T) {
			cfg := sliceCfg(shards, 12)
			var mu sync.Mutex
			got := map[stream.PairKey]int{}
			cfg.OnOutput = func(it Item[okR, okS]) {
				if it.Punct {
					return
				}
				mu.Lock()
				got[it.Result.Pair.Key()]++
				mu.Unlock()
			}
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			se := eng.(*ShardedEngine[okR, okS])
			o := newOracleEngine(cfg, shardedEqui)
			between, maxHops := driveSliceMigrations(t, se, shards, 140, 7)
			zipfSchedule(t, 2400, 1.5, 256, uint64(shards)*211, eng, o, between)

			missing, extra, dups := diffPairMultiset(o.pairs, got)
			if missing != 0 || extra != 0 || dups != 0 {
				t.Fatalf("slice-migrated vs oracle: %d missing, %d extra, %d duplicates (oracle %d distinct)",
					missing, extra, dups, len(o.pairs))
			}
			st := eng.Stats()
			if st.Results != sum(o.pairs) {
				t.Fatalf("Stats.Results = %d, oracle produced %d", st.Results, sum(o.pairs))
			}
			if st.PendingExpiries != 0 {
				t.Errorf("pending expiries: %d (a migrated expiry raced its tuple)", st.PendingExpiries)
			}
			if st.SliceMigrations == 0 || st.MigratedTuples == 0 || st.StateMigrations == 0 {
				t.Fatalf("no sliced state moved (hops %d, tuples %d, completed %d); test has no teeth",
					st.SliceMigrations, st.MigratedTuples, st.StateMigrations)
			}
			if *maxHops < 2 {
				t.Fatalf("no handoff needed more than %d tuple-moving hops: mega-groups were not actually sliced", *maxHops)
			}
			if st.SourceFreezeStalls != 0 {
				t.Fatalf("incremental migration froze a source shard %d times", st.SourceFreezeStalls)
			}
		})
	}
}

func TestShardedOrderedSliceMigrateExactSequence(t *testing.T) {
	// Ordered mode across open handoffs: the merged, punctuation-sorted
	// output must still be the exact deterministic sequence while
	// results originate from both lanes of each migrating group.
	for _, shards := range []int{4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := sliceCfg(shards, 10)
			cfg.Ordered = true
			cfg.CollectPeriod = 200 * time.Microsecond
			var mu sync.Mutex
			var gotSeq []orderedKey
			cfg.OnOutput = func(it Item[okR, okS]) {
				mu.Lock()
				defer mu.Unlock()
				if it.Punct {
					return
				}
				p := it.Result.Pair
				gotSeq = append(gotSeq, orderedKey{TS: p.TS(), RSeq: p.R.Seq, SSeq: p.S.Seq})
			}
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			se := eng.(*ShardedEngine[okR, okS])
			o := newOracleEngine(cfg, shardedEqui)
			between, _ := driveSliceMigrations(t, se, shards, 160, 9)
			zipfSchedule(t, 2000, 1.5, 256, uint64(shards)*17+5, eng, o, between)

			st := eng.Stats()
			if st.SliceMigrations == 0 || st.MigratedTuples == 0 {
				t.Fatal("no sliced state moved; the ordered-across-handoff claim was not exercised")
			}
			want := o.orderedResults()
			if len(gotSeq) != len(want) {
				t.Fatalf("emitted %d results, oracle expects %d (hops %d, tuples %d)",
					len(gotSeq), len(want), st.SliceMigrations, st.MigratedTuples)
			}
			for i := range want {
				if gotSeq[i] != want[i] {
					t.Fatalf("position %d: got %+v, want %+v", i, gotSeq[i], want[i])
				}
			}
			if len(want) == 0 {
				t.Fatal("workload produced no results; test has no teeth")
			}
		})
	}
}

func TestSliceMigrationValidation(t *testing.T) {
	cfg := migrateCfg(2, 1.0)
	cfg.OnOutput = func(Item[okR, okS]) {}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*ShardedEngine[okR, okS])
	if err := se.BeginMigration(uint32(se.KeyGroups()), 0); err == nil {
		t.Fatal("accepted out-of-range group")
	}
	if err := se.BeginMigration(0, 2); err == nil {
		t.Fatal("accepted out-of-range shard")
	}
	cur := se.router.Partitioner().ShardOfGroup(3)
	if err := se.BeginMigration(3, cur); err == nil {
		t.Fatal("accepted a handoff onto the group's own shard")
	}
	if n, err := se.MigrateIncremental(3, cur); err != nil || n != 0 {
		t.Fatalf("incremental self-move = (%d, %v), want (0, nil)", n, err)
	}
	if _, _, err := se.AdvanceMigration(3); err == nil {
		t.Fatal("advanced a handoff that was never begun")
	}
	// A begun handoff blocks a second begin and the freezing path.
	to := (cur + 1) % 2
	if err := se.BeginMigration(3, to); err != nil {
		t.Fatal(err)
	}
	if err := se.BeginMigration(3, cur); err == nil {
		t.Fatal("accepted a second handoff for an in-flight group")
	}
	if _, err := se.Migrate(3, cur); err == nil {
		t.Fatal("freezing Migrate accepted an in-handoff group")
	}
	if _, done, err := se.AdvanceMigration(3); err != nil || !done {
		t.Fatalf("advance of an empty group = (done=%v, %v), want immediate completion", done, err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := se.BeginMigration(3, to); err == nil {
		t.Fatal("BeginMigration succeeded on a closed engine")
	}
}

func TestMigrationRateLimiterCapsSteadyStateChurn(t *testing.T) {
	// PR 3 left the θ=1.5 steady state migrating ~80 times/s, chasing
	// sample noise around the unsplittable hot atom. With the gap noise
	// floor and the rate limiter, sustained zipf-1.5 load must migrate
	// below the configured cap.
	const capPerSec = 5.0
	cfg := Config[okR, okS]{
		Workers:     2,
		Shards:      4,
		Predicate:   shardedEqui,
		WindowR:     Window{Count: 200},
		WindowS:     Window{Count: 190},
		Batch:       1,
		MaxInFlight: 2,
		KeyR:        okRKey,
		KeyS:        okSKey,
		Adapt: AdaptConfig{
			Enable: true,
			// Cycles must see enough traffic to plan from
			// (MinCycleTuples) even under the race detector's ~15x
			// slowdown; a coarse period keeps the per-cycle sample
			// significant at any push rate.
			SamplePeriod:     10 * time.Millisecond,
			SkewThreshold:    1.05,
			MaxMovesPerCycle: 16,
			KeyGroups:        32,
			Migration: MigrationConfig{
				Enable:              true,
				MaxTuplesPerCycle:   4096,
				AfterCycles:         2,
				MinGroupLoad:        0.01,
				MinGapRatio:         0.05,
				MaxMigrationsPerSec: capPerSec,
			},
		},
		OnOutput: func(Item[okR, okS]) {},
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zr := workload.NewZipf(workload.NewRand(31), 1.5, 256)
	zs := workload.NewZipf(workload.NewRand(32), 1.5, 256)
	runFor := 1500 * time.Millisecond
	if raceEnabled {
		runFor = 4 * time.Second // the race detector slows pushes ~15x
	}
	start := time.Now()
	deadline := start.Add(runFor)
	ts := int64(0)
	for time.Now().Before(deadline) {
		for i := 0; i < 64; i++ {
			ts += 1e6
			if err := eng.PushR(okR{Key: zr.Next()}, ts); err != nil {
				t.Fatal(err)
			}
			if err := eng.PushS(okS{Key: zs.Next()}, ts); err != nil {
				t.Fatal(err)
			}
		}
	}
	elapsed := time.Since(start)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.StateMigrations == 0 {
		t.Fatal("no migration ever ran; the churn cap was never exercised")
	}
	rate := float64(st.StateMigrations) / elapsed.Seconds()
	// The token bucket admits a burst of one plus capPerSec per second;
	// 2x leaves room for the burst and completion-timing slack while
	// still proving the ~80/s churn is gone.
	if rate > 2*capPerSec {
		t.Fatalf("steady-state migration rate %.1f/s exceeds cap %.1f/s (migrations %d in %s)",
			rate, capPerSec, st.StateMigrations, elapsed)
	}
}

func TestSliceMigratedExpiryFiresOnHeartbeatIdleLane(t *testing.T) {
	// Duration expiries absorbed by a slice migration land settled on a
	// lane that never sees its own arrivals; the idle-shard heartbeat
	// must still slide them out of the window, and a later probe of the
	// group must not match the expired tuples.
	const step = int64(1e6)
	cfg := Config[okR, okS]{
		Workers:       1,
		Shards:        2,
		Predicate:     shardedEqui,
		WindowR:       Window{Duration: time.Duration(100 * step)},
		WindowS:       Window{Count: 64},
		Batch:         1,
		MaxInFlight:   2,
		CollectPeriod: 200 * time.Microsecond,
		KeyR:          okRKey,
		KeyS:          okSKey,
		Adapt: AdaptConfig{
			Enable:       true,
			SamplePeriod: -1,
			KeyGroups:    16,
			Migration:    MigrationConfig{SliceTuples: 2},
		},
	}
	var mu sync.Mutex
	results := 0
	cfg.OnOutput = func(it Item[okR, okS]) {
		if it.Punct {
			return
		}
		mu.Lock()
		results++
		mu.Unlock()
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*ShardedEngine[okR, okS])
	part := se.router.Partitioner()
	keyOnLane0 := func(not uint32) (uint64, uint32) {
		for k := uint64(0); ; k++ {
			if g := se.router.GroupOf(k); part.ShardOfGroup(g) == 0 && g != not {
				return k, g
			}
		}
	}
	keyA, gA := keyOnLane0(1 << 30)
	keyB, gB := keyOnLane0(gA)
	// keyC differs from keyB, so the floor-advancing pushes below
	// cannot join each other.
	keyC, _ := func() (uint64, uint32) {
		for k := keyB + 1; ; k++ {
			if g := se.router.GroupOf(k); g != gA && g != gB {
				return k, g
			}
		}
	}()

	// Three key-A tuples on lane 0, expiring at stream time 100..102.
	for i := 0; i < 3; i++ {
		if err := eng.PushR(okR{Key: keyA}, int64(i)*step); err != nil {
			t.Fatal(err)
		}
	}
	// Slice-migrate them to lane 1 (two hops of two): lane 1 never
	// receives a native arrival, so only the absorbed settled entries
	// and the heartbeat can slide its window.
	if n, err := se.MigrateIncremental(gA, 1); err != nil || n != 3 {
		t.Fatalf("MigrateIncremental moved (%d, %v), want 3 tuples", n, err)
	}
	// Advance both ingress floors past the expiry deadlines on lane 0
	// only, then give the heartbeat time to tick idle lane 1.
	if err := eng.PushR(okR{Key: keyB}, 500*step); err != nil {
		t.Fatal(err)
	}
	if err := eng.PushS(okS{Key: keyC}, 500*step); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	resultsBefore := results // keyB matches nothing so far
	mu.Unlock()
	if resultsBefore != 0 {
		t.Fatalf("setup leaked %d results", resultsBefore)
	}
	time.Sleep(20 * time.Millisecond)
	// A key-A probe on lane 1 after the deadline: the migrated tuples
	// expired at 100..102 and must not match.
	if err := eng.PushS(okS{Key: keyA}, 501*step); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if results != 0 {
		t.Fatalf("S probe matched %d expired slice-migrated tuples on the heartbeat-idle lane", results)
	}
	if st := eng.Stats(); st.PendingExpiries != 0 {
		t.Fatalf("pending expiries: %d", st.PendingExpiries)
	}
}

func TestShardedConcurrentPushersIncrementalHandoff(t *testing.T) {
	// Concurrent pushers while explicit incremental migrations run from
	// another goroutine: handoffs are begun and advanced with pauses,
	// so pushes overlap every phase of the double-read window. Windows
	// hold every tuple; the multiset check in the shared harness proves
	// nothing is dropped or doubled, and -race watches the gates.
	runShardedConcurrentPushersWith(t, AdaptConfig{
		Enable:       true,
		SamplePeriod: -1, // the explicit goroutine is the only migrator
		KeyGroups:    64,
		Migration:    MigrationConfig{SliceTuples: 64},
	}, func(eng *ShardedEngine[cidR, cidS], stop <-chan struct{}) {
		groups := eng.KeyGroups()
		move := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			g := uint32(move % groups)
			to := (eng.router.Partitioner().ShardOfGroup(g) + 1) % eng.Shards()
			if err := eng.BeginMigration(g, to); err == nil {
				for {
					_, done, err := eng.AdvanceMigration(g)
					if err != nil || done {
						break
					}
					time.Sleep(50 * time.Microsecond) // pushes flow mid-handoff
				}
			}
			move++
			time.Sleep(100 * time.Microsecond)
		}
	})
}

func TestOrderedOutputFlowsWhileHandoffOpen(t *testing.T) {
	// One hot key, handed off and left mid-transfer: the source lane
	// then lives on probe-only double-reads alone, which advance no
	// high-water mark. Its heartbeat must keep promising the ingress
	// floor — double-reads are not lane activity — or the merged
	// punctuation floor freezes and Ordered output stalls for the life
	// of the handoff.
	const step = int64(1e6)
	cfg := Config[okR, okS]{
		Workers:       2,
		Shards:        2,
		Predicate:     shardedEqui,
		WindowR:       Window{Count: 64},
		WindowS:       Window{Count: 64},
		Batch:         1,
		MaxInFlight:   2,
		Ordered:       true,
		CollectPeriod: 200 * time.Microsecond,
		KeyR:          okRKey,
		KeyS:          okSKey,
		Adapt: AdaptConfig{
			Enable:       true,
			SamplePeriod: -1,
			KeyGroups:    16,
			Migration:    MigrationConfig{SliceTuples: 4},
		},
	}
	var mu sync.Mutex
	emitted := 0
	lastTS := int64(-1 << 62)
	cfg.OnOutput = func(it Item[okR, okS]) {
		mu.Lock()
		defer mu.Unlock()
		if it.Punct {
			return
		}
		if ts := it.Result.Pair.TS(); ts < lastTS {
			t.Errorf("ordered output regressed: %d after %d", ts, lastTS)
		} else {
			lastTS = it.Result.Pair.TS()
		}
		emitted++
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*ShardedEngine[okR, okS])
	// A key whose group starts on shard 0.
	var hot uint64
	var gHot uint32
	for k := uint64(0); ; k++ {
		if g := se.router.GroupOf(k); se.router.Partitioner().ShardOfGroup(g) == 0 {
			hot, gHot = k, g
			break
		}
	}
	ts := int64(0)
	push := func(n int) {
		for i := 0; i < n; i++ {
			ts += step
			if err := eng.PushR(okR{Key: hot, Val: int32(i % 5)}, ts); err != nil {
				t.Fatal(err)
			}
			if err := eng.PushS(okS{Key: hot, Val: int32(i % 7)}, ts); err != nil {
				t.Fatal(err)
			}
		}
	}
	push(80) // seed window state on shard 0
	if err := se.BeginMigration(gHot, 1); err != nil {
		t.Fatal(err)
	}
	// The handoff stays open: all further traffic is full arrivals on
	// shard 1 plus probe-only double-reads on shard 0.
	push(200)
	time.Sleep(60 * time.Millisecond) // collectors + heartbeats run
	mu.Lock()
	beforeClose := emitted
	mu.Unlock()
	if beforeClose == 0 {
		t.Fatal("no ordered output while the handoff was open: the source lane's punctuation floor froze")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if emitted == 0 {
		t.Fatal("workload produced no results; test has no teeth")
	}
}

// TestSliceMigrationSurvivesWindowCompaction is the regression test for
// the compaction-vs-open-cursor hazard: slice extraction peeks seqs,
// then removes them one by one, and every removal can trigger an
// in-place window compaction (or a ring base advance) that re-points
// the slots of the seqs still held. Tiny 2-tuple slices maximise the
// number of peek/extract rounds, heavy expiry churn between hops keeps
// the source windows tombstone-rich (so compactions actually fire
// mid-handoff), and the result multiset must still be exact.
func TestSliceMigrationSurvivesWindowCompaction(t *testing.T) {
	cfg := sliceCfg(4, 2)
	// Small count windows churn hard: two thirds of each entries array
	// is tombstones within a few hundred pushes, the compaction
	// threshold territory.
	cfg.WindowR = Window{Count: 96}
	cfg.WindowS = Window{Count: 90}
	var mu sync.Mutex
	got := map[stream.PairKey]int{}
	cfg.OnOutput = func(it Item[okR, okS]) {
		if it.Punct {
			return
		}
		mu.Lock()
		got[it.Result.Pair.Key()]++
		mu.Unlock()
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*ShardedEngine[okR, okS])
	o := newOracleEngine(cfg, shardedEqui)
	// Handoffs begin often and advance rarely: each stays open across
	// ~dozens of pushes of churn, with 2-tuple slices forcing many
	// peek/extract rounds against freshly compacted windows.
	between, maxHops := driveSliceMigrations(t, se, 4, 90, 11)
	zipfSchedule(t, 2600, 1.2, 96, 4242, eng, o, between)

	missing, extra, dups := diffPairMultiset(o.pairs, got)
	if missing != 0 || extra != 0 || dups != 0 {
		t.Fatalf("compaction × slice migration: %d missing, %d extra, %d duplicates (oracle %d distinct)",
			missing, extra, dups, len(o.pairs))
	}
	st := eng.Stats()
	if st.SliceMigrations == 0 || st.MigratedTuples == 0 {
		t.Fatalf("no sliced state moved (hops %d, tuples %d); test has no teeth",
			st.SliceMigrations, st.MigratedTuples)
	}
	if *maxHops < 2 {
		t.Fatalf("no handoff needed more than %d hops: slices were not actually small", *maxHops)
	}
	if st.PendingExpiries != 0 {
		t.Errorf("pending expiries: %d (an expiry raced its migrated tuple)", st.PendingExpiries)
	}
}

// TestSliceMigrationSurvivesWindowCompactionBTree is the ordered-index
// run of the compaction-vs-open-cursor regression above: with every
// window probe going through the B-tree (static BTreeIndex, Band 0 —
// an equi range probe), slice extraction and store-only re-injection
// must keep the per-window B-trees coherent through the same
// tombstone-heavy compaction churn, or probes of migrated groups lose
// (or double) matches.
func TestSliceMigrationSurvivesWindowCompactionBTree(t *testing.T) {
	cfg := sliceCfg(4, 2)
	cfg.WindowR = Window{Count: 96}
	cfg.WindowS = Window{Count: 90}
	cfg.Index = BTreeIndex
	var mu sync.Mutex
	got := map[stream.PairKey]int{}
	cfg.OnOutput = func(it Item[okR, okS]) {
		if it.Punct {
			return
		}
		mu.Lock()
		got[it.Result.Pair.Key()]++
		mu.Unlock()
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*ShardedEngine[okR, okS])
	o := newOracleEngine(cfg, shardedEqui)
	between, maxHops := driveSliceMigrations(t, se, 4, 90, 11)
	zipfSchedule(t, 2600, 1.2, 96, 4243, eng, o, between)

	missing, extra, dups := diffPairMultiset(o.pairs, got)
	if missing != 0 || extra != 0 || dups != 0 {
		t.Fatalf("compaction × slice migration (btree): %d missing, %d extra, %d duplicates (oracle %d distinct)",
			missing, extra, dups, len(o.pairs))
	}
	st := eng.Stats()
	if st.SliceMigrations == 0 || st.MigratedTuples == 0 {
		t.Fatalf("no sliced state moved (hops %d, tuples %d); test has no teeth",
			st.SliceMigrations, st.MigratedTuples)
	}
	if *maxHops < 2 {
		t.Fatalf("no handoff needed more than %d hops: slices were not actually small", *maxHops)
	}
	if st.ProbeBTree == 0 || st.ProbeScan != 0 || st.ProbeHash != 0 {
		t.Fatalf("static BTreeIndex must dispatch only btree probes: scan=%d hash=%d btree=%d",
			st.ProbeScan, st.ProbeHash, st.ProbeBTree)
	}
	if st.PendingExpiries != 0 {
		t.Errorf("pending expiries: %d (an expiry raced its migrated tuple)", st.PendingExpiries)
	}
}
