package handshakejoin

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is returned (wrapped) by the push paths when admitting
// the batch would lift the engine's live window footprint above
// Config.MaxLiveTuples. The rejection is batch-atomic and happens
// before the batch reaches the WAL or any engine state: nothing was
// logged, nothing changed, and the caller may retry after the windows
// drain. Test with errors.Is.
var ErrOverloaded = errors.New("handshakejoin: overloaded")

// Health is an engine's condition flags, read with Joiner.Health. The
// zero value is a healthy engine; each flag marks one degradation an
// operator can act on. See the package documentation's "Failure modes"
// section for the runbook.
type Health struct {
	// WALFailed is set while the write-ahead log is in its persistent
	// failure state: under DurFail pushes are failing, under DurDegrade
	// the engine is serving without durability (shed). A successful
	// Checkpoint to a healthy directory clears it by re-arming the log.
	WALFailed bool
	// Overloaded is set while admission is rejecting pushes against
	// Config.MaxLiveTuples; it clears as soon as a push is admitted
	// again.
	Overloaded bool
	// FloorStalled is set by the sharded engine's watchdog
	// (AdaptConfig.StallWatchdog) when the merged punctuation floor has
	// not advanced for the configured duration even though ingress has:
	// Ordered-mode output is stuck behind a shard that is not
	// promising. It clears when the floor moves again.
	FloorStalled bool
}

// Ok reports whether no degradation flag is set.
func (h Health) Ok() bool { return !h.WALFailed && !h.Overloaded && !h.FloorStalled }

// String renders the health state for logs: "ok", or the set flags.
func (h Health) String() string {
	if h.Ok() {
		return "ok"
	}
	var f []string
	if h.WALFailed {
		f = append(f, "wal_failed")
	}
	if h.Overloaded {
		f = append(f, "overloaded")
	}
	if h.FloorStalled {
		f = append(f, "floor_stalled")
	}
	return "degraded(" + strings.Join(f, ",") + ")"
}

// overloadGuard enforces Config.MaxLiveTuples at admission. It keeps a
// sound upper bound on the live window footprint without touching the
// pipeline on every push: live tuples only enter through admission, so
// (footprint at last sample) + (tuples admitted since) can never
// undercount, and the pipeline's per-node counters are walked only
// when that cheap bound crosses the limit. The bound is conservative
// by at most the in-flight volume (tuples admitted but not yet
// published by their node), so rejection triggers within the
// pipeline's in-flight cap of the true limit.
type overloadGuard struct {
	max      int64
	sample   func() int64 // Σ live window tuples across the pipeline(s)
	mu       sync.Mutex   // serializes resamples (both sides can hit the limit at once)
	base     atomic.Int64 // footprint at the last resample
	admitted atomic.Int64 // tuples admitted since the last resample
	rejects  atomic.Uint64
	loaded   atomic.Bool // last admission decision was a rejection
}

func newOverloadGuard(max int, sample func() int64) *overloadGuard {
	return &overloadGuard{max: int64(max), sample: sample}
}

// admit accounts n tuples about to be admitted, rejecting with
// ErrOverloaded when they would exceed the limit. force bypasses the
// check but keeps the accounting exact — WAL replay re-admits tuples
// that were already acknowledged, which overload must not reject.
// Callers hold their side's serial section; the two sides may call
// concurrently.
func (g *overloadGuard) admit(n int, force bool) error {
	if g == nil {
		return nil
	}
	if force {
		g.admitted.Add(int64(n))
		return nil
	}
	if g.base.Load()+g.admitted.Load()+int64(n) > g.max {
		g.resample()
		if g.base.Load()+g.admitted.Load()+int64(n) > g.max {
			g.rejects.Add(1)
			g.loaded.Store(true)
			return fmt.Errorf("%w: %d live window tuples + %d admitting > MaxLiveTuples %d",
				ErrOverloaded, g.base.Load()+g.admitted.Load(), n, g.max)
		}
	}
	g.admitted.Add(int64(n))
	g.loaded.Store(false)
	return nil
}

// resample re-derives the footprint from the pipeline counters. The
// admitted counter is cleared before the walk: an admission racing in
// from the other side lands after the clear and is counted (possibly
// twice, once in the walk — conservative), never dropped.
func (g *overloadGuard) resample() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.admitted.Store(0)
	g.base.Store(g.sample())
}

func (g *overloadGuard) overloaded() bool {
	return g != nil && g.loaded.Load()
}

func (g *overloadGuard) rejected() uint64 {
	if g == nil {
		return 0
	}
	return g.rejects.Load()
}
