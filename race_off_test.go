//go:build !race

package handshakejoin

const raceEnabled = false
