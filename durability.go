package handshakejoin

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"handshakejoin/internal/adapt"
	"handshakejoin/internal/fault"
	"handshakejoin/internal/obs"
	"handshakejoin/internal/order"
	"handshakejoin/internal/shard"
	"handshakejoin/internal/stream"
	"handshakejoin/internal/wal"
	"handshakejoin/internal/wire"
)

// DurPolicy selects the engine's response to a persistent WAL failure
// — one that survives the bounded retry-with-backoff recovery loop.
type DurPolicy uint8

const (
	// DurFail (the default) fails the push that hit the persistent
	// fault and every push after it: the engine refuses to acknowledge
	// work it cannot make durable. The failed batch is rejected
	// atomically — the WAL record is taken back and no engine state
	// changed — so a restore replays exactly the acknowledged history.
	DurFail DurPolicy = iota
	// DurDegrade sheds durability instead: on persistent WAL failure
	// the engine stops logging, keeps serving, and reports the shed
	// through Health().WALFailed and the wal_degraded trace event. A
	// later successful Checkpoint to a healthy directory re-arms
	// logging. Output while degraded is exact for the live run, but a
	// crash during the shed window loses the records admitted since
	// the last checkpoint.
	DurDegrade
)

// Durability opts an engine into crash recovery: every admitted batch
// (and every explicit Tick) is appended to a write-ahead log before it
// mutates engine state, and Checkpoint writes a consistent snapshot of
// all engine state — window tuples, pending expiries, partial batch
// buffers, the routing table, and the ordered-output buffer — that,
// together with a replay of the WAL records logged after the cut,
// reconstructs the engine exactly.
//
// The recovery contract (see the package documentation's Durability
// section): for a sequential driver killed at a push boundary, the
// killed run's output filtered to result timestamps < the checkpoint's
// punctuation floor, concatenated with the restored run's output, is
// exactly the uninterrupted run's output — the same multiset, and in
// Ordered mode the same exact sequence. With concurrent pushers the
// cross-side admission interleaving is not logged, so replay restores a
// valid (at-least-once between checkpoint and crash) state rather than
// a bit-exact one.
//
// Durability requires the LLHJ algorithm (the reference HSJ pipeline
// has no state extractor).
type Durability[L, RT any] struct {
	// WALDir is the durability root. The engine appends its log under
	// <WALDir>/wal and auto-checkpoints under <WALDir>/checkpoint.
	// Empty disables logging and checkpointing (the codecs may still be
	// set to allow Restore from another engine's directory).
	WALDir string
	// SyncEvery fsyncs the log after every n appended records; <= 0
	// leaves syncing to the OS plus the forced syncs at segment
	// rotation, checkpoint, and Close. The fsync runs on a background
	// goroutine (asynchronous group commit): a push hands the sync
	// window to the OS and continues, so ingest overlaps the disk
	// instead of serializing behind it, and the loss window is the
	// records since the last *completed* background fsync. See
	// internal/wal.
	SyncEvery int
	// CheckpointEveryBatches auto-checkpoints after every n admitted
	// batches (counting per-tuple pushes as batches of one); 0 disables
	// automatic checkpoints — call Joiner.Checkpoint explicitly.
	CheckpointEveryBatches int
	// EncodeR/DecodeR serialize R payloads; EncodeS/DecodeS serialize S
	// payloads. All four are required when WALDir is set. Encoders must
	// be pure: equal payloads must encode to equal bytes.
	EncodeR func(L) []byte
	DecodeR func([]byte) (L, error)
	EncodeS func(RT) []byte
	DecodeS func([]byte) (RT, error)
	// OnError selects what a persistent WAL failure does to the
	// engine: DurFail (default) makes pushes fail, DurDegrade sheds
	// durability and keeps serving. See the DurPolicy constants.
	OnError DurPolicy
	// SyncBlocking runs the SyncEvery fsync on the append path instead
	// of the background group-commit goroutine: a push returns only
	// after its sync window is durable, so a disk fault surfaces on
	// the failing push itself rather than as a later sticky error.
	// Required for exact kill/restore recovery under injected disk
	// faults; costs ingest throughput by serializing behind the disk.
	SyncBlocking bool
	// RetryAttempts bounds the in-line recovery loop a failing WAL
	// append or checkpoint write runs before OnError applies: each
	// attempt re-derives the durable log tail from disk and retries.
	// <= 0 means 4 attempts total.
	RetryAttempts int
	// RetryBackoff is the backoff before the second attempt (doubled
	// each retry), RetryBackoffMax its cap. <= 0 selects 1ms and 50ms.
	// Pushes block for the duration of the loop — at the defaults a
	// worst-case recovery holds the side lock for a few milliseconds.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// SegmentBytes overrides the WAL segment rotation threshold; <= 0
	// selects the wal package default (4 MiB). Chaos tests use tiny
	// segments to exercise rotation under injected faults.
	SegmentBytes int64
	// FS overrides the filesystem seam for the WAL and checkpoint
	// files; nil selects the real filesystem. Tests and chaos benches
	// arm it with fault.Inject.
	FS fault.FS
}

// enabled reports whether the engine logs and checkpoints.
func (d *Durability[L, RT]) enabled() bool { return d.WALDir != "" }

// Durability file layout under the root directory.
const (
	walSubdir    = "wal"
	ckptSubdir   = "checkpoint"
	stateFile    = "state.bin"
	manifestFile = "MANIFEST"

	snapMagic   uint64 = 0x4c4c484a434b5054 // "LLHJCKPT"
	maniMagic   uint64 = 0x4c4c484a4d414e49 // "LLHJMANI"
	snapVersion        = 1
)

// durState is the runtime half of Durability, embedded in both engines.
// The log handle and the replaying flag are shared by both stream
// sides; encR is the WAL-payload scratch of everything serialized under
// the R-side lock (R pushes and Ticks), encS of S pushes.
type durState[L, RT any] struct {
	cfg     Durability[L, RT]
	fp      uint64 // config fingerprint: a snapshot binds to its config
	shards  int
	ordered bool
	fs      fault.FS

	log  *wal.Log
	ring *obs.Ring

	// replaying suppresses WAL appends and auto-checkpoints while
	// Restore re-pushes the logged records through the ordinary paths.
	replaying atomic.Bool
	// batches counts admitted batches for the auto-checkpoint cadence.
	batches atomic.Uint64

	// walMu serializes WAL appends across both stream sides, so that
	// a failing record is always the newest in the log and its
	// recovery (Reseat, re-append, DropFrom) never interleaves with
	// another side's append. Ordering: side locks are taken before
	// walMu, never after.
	walMu sync.Mutex
	// failErr is the DurFail sticky error (walMu); shedCause records
	// why DurDegrade shed (walMu). failed/degraded mirror them for
	// lock-free Health reads.
	failErr   error
	shedCause error
	failed    atomic.Bool
	degraded  atomic.Bool

	walRetries atomic.Uint64
	sheds      atomic.Uint64

	ckptMu      sync.Mutex // serializes concurrent Checkpoint calls
	checkpoints atomic.Uint64
	lastCkptNs  atomic.Int64

	encR, encS *wire.Writer
}

// init binds the durability configuration and opens the log when
// enabled. Called from engine constructors after validation.
func (d *durState[L, RT]) init(cfg *Config[L, RT]) error {
	d.cfg = cfg.Durability
	d.fp = cfg.fingerprint()
	d.shards = cfg.Shards
	if d.shards < 1 {
		d.shards = 1
	}
	d.ordered = cfg.Ordered
	d.fs = cfg.Durability.FS
	if d.fs == nil {
		d.fs = fault.OS
	}
	if !d.cfg.enabled() {
		return nil
	}
	log, err := wal.Open(filepath.Join(d.cfg.WALDir, walSubdir), wal.Options{
		SyncEvery:    d.cfg.SyncEvery,
		AsyncSync:    !d.cfg.SyncBlocking,
		SegmentBytes: d.cfg.SegmentBytes,
		FS:           d.cfg.FS,
	})
	if err != nil {
		return fmt.Errorf("handshakejoin: open WAL: %w", err)
	}
	d.log = log
	d.encR = wire.NewWriter(4096)
	d.encS = wire.NewWriter(4096)
	return nil
}

// active reports whether pushes must be logged right now. A degraded
// (shed) engine keeps serving without logging.
func (d *durState[L, RT]) active() bool {
	return d.log != nil && !d.replaying.Load() && !d.degraded.Load()
}

// logHandle returns the current log under walMu. Push paths read
// d.log directly — they hold a side lock, which every rearm also
// holds — but snapshot readers run lock-free on arbitrary goroutines
// and must not race the rearm swap.
func (d *durState[L, RT]) logHandle() *wal.Log {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	return d.log
}

// walFailed reports the sticky WAL failure state for Health: either
// the engine shed durability (DurDegrade) or pushes are failing
// against a dead log (DurFail).
func (d *durState[L, RT]) walFailed() bool {
	return d.degraded.Load() || d.failed.Load()
}

// retryPolicy is the shared recovery policy for WAL appends and
// checkpoint writes; event names the trace event each retry emits.
func (d *durState[L, RT]) retryPolicy(event string) fault.Retry {
	return fault.Retry{
		Attempts: d.cfg.RetryAttempts,
		Base:     d.cfg.RetryBackoff,
		Max:      d.cfg.RetryBackoffMax,
		OnRetry: func(attempt int, err error) {
			d.walRetries.Add(1)
			if d.ring != nil {
				d.ring.Emit(event, -1, -1, int64(attempt), 0)
			}
		},
	}
}

func (d *durState[L, RT]) append(kind byte, payload []byte) error {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	if d.degraded.Load() {
		return nil // shed: keep serving, stop logging
	}
	if d.failErr != nil {
		return fmt.Errorf("handshakejoin: wal failed: %w", d.failErr)
	}
	idx, rotated, err := d.log.Append(kind, payload)
	if err != nil {
		if err = d.recoverAppend(idx, kind, payload, err); err != nil {
			return d.failOrShedLocked(idx, err)
		}
		return nil
	}
	if rotated {
		d.ring.Emit("wal_rotate", -1, -1, int64(idx), 0)
	}
	return nil
}

// recoverAppend runs the bounded retry loop after a failed append of
// record idx: each attempt reseats the log on the durable tail it
// re-derives from disk, then decides from Next() whether the record
// survived (the failure hit after its bytes and fsync landed), must
// be re-appended, or whether older acknowledged records are gone —
// which no retry can fix.
func (d *durState[L, RT]) recoverAppend(idx uint64, kind byte, payload []byte, cause error) error {
	return d.retryPolicy("wal_retry").Do(func() error {
		if _, err := d.log.Reseat(); err != nil {
			return err
		}
		switch next := d.log.Next(); {
		case next == idx+1:
			return nil // record durable after all; Reseat fsynced it
		case next == idx:
			_, _, err := d.log.Append(kind, payload)
			return err
		default:
			return fault.Permanent(fmt.Errorf("%d acknowledged records lost (log resumes at %d, record %d failing): %w",
				idx-next, next, idx, cause))
		}
	})
}

// failOrShedLocked applies OnError once the recovery loop is spent.
// Callers hold walMu. The rejected record is dropped from the log so
// a later replay cannot resurrect a push the caller saw fail; on
// DurFail the error is sticky, on DurDegrade the engine sheds
// durability and the push succeeds unlogged.
func (d *durState[L, RT]) failOrShedLocked(idx uint64, cause error) error {
	d.log.DropFrom(idx) //nolint:errcheck // best-effort on a failing disk
	if d.cfg.OnError == DurDegrade {
		d.shedLocked(cause)
		return nil
	}
	d.failErr = cause
	d.failed.Store(true)
	d.ring.Emit("wal_failed", -1, -1, int64(idx), 0)
	return fmt.Errorf("handshakejoin: wal append failed after retries: %w", cause)
}

// shedLocked flips the engine into the degraded (shed) state. Callers
// hold walMu. Idempotent; the first shed emits wal_degraded.
func (d *durState[L, RT]) shedLocked(cause error) {
	if d.degraded.Swap(true) {
		return
	}
	d.shedCause = cause
	d.sheds.Add(1)
	d.ring.Emit("wal_degraded", -1, -1, 0, 0)
}

// rearm reopens logging under root after a shed or sticky failure and
// clears the degraded state. Callers must have the engine's admission
// paths blocked (both side locks held, or the single engine's driver
// goroutine) so that the swap is atomic with respect to pushes: every
// record admitted after the checkpoint cut lands in the new log.
func (d *durState[L, RT]) rearm(root string) error {
	log, err := wal.Open(filepath.Join(root, walSubdir), wal.Options{
		SyncEvery:    d.cfg.SyncEvery,
		AsyncSync:    !d.cfg.SyncBlocking,
		SegmentBytes: d.cfg.SegmentBytes,
		FS:           d.cfg.FS,
	})
	if err != nil {
		return fmt.Errorf("handshakejoin: re-arm WAL: %w", err)
	}
	d.walMu.Lock()
	old := d.log
	d.log = log
	d.failErr = nil
	d.shedCause = nil
	d.failed.Store(false)
	d.degraded.Store(false)
	// The durability root follows the re-arm: later auto-checkpoints
	// and TruncateThrough target the healthy directory.
	d.cfg.WALDir = root
	d.walMu.Unlock()
	if old != nil {
		old.Close() //nolint:errcheck // the old disk is failing; best-effort
	}
	d.ring.Emit("wal_rearmed", -1, -1, int64(log.Next()), 0)
	return nil
}

// disarm re-enters the OnError failure state after a re-arm whose
// checkpoint failed to commit: the fresh log has no checkpoint
// beneath it, so acknowledging records into it would make them
// unrecoverable. The caller surfaces the checkpoint error itself.
func (d *durState[L, RT]) disarm(cause error) {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	if d.cfg.OnError == DurDegrade {
		d.shedLocked(cause)
		return
	}
	d.failErr = cause
	d.failed.Store(true)
	d.ring.Emit("wal_failed", -1, -1, 0, 0)
}

// appendR logs one admitted R batch; callers hold the R-side serial
// section, so the scratch writer is single-threaded.
func (d *durState[L, RT]) appendR(batch []Stamped[L]) error {
	d.encR.Reset()
	encodeStampedBatch(d.encR, batch, d.cfg.EncodeR)
	return d.append(wal.KindR, d.encR.Bytes())
}

// appendS logs one admitted S batch under the S-side serial section.
func (d *durState[L, RT]) appendS(batch []Stamped[RT]) error {
	d.encS.Reset()
	encodeStampedBatch(d.encS, batch, d.cfg.EncodeS)
	return d.append(wal.KindS, d.encS.Bytes())
}

// appendR1/appendS1 log a single-tuple push without building a slice.
func (d *durState[L, RT]) appendR1(payload L, ts int64) error {
	d.encR.Reset()
	d.encR.U32(1)
	d.encR.I64(ts)
	d.encR.Blob(d.cfg.EncodeR(payload))
	return d.append(wal.KindR, d.encR.Bytes())
}

func (d *durState[L, RT]) appendS1(payload RT, ts int64) error {
	d.encS.Reset()
	d.encS.U32(1)
	d.encS.I64(ts)
	d.encS.Blob(d.cfg.EncodeS(payload))
	return d.append(wal.KindS, d.encS.Bytes())
}

// appendTick logs an explicit Tick; callers hold the R-side serial
// section (sharded Tick holds both).
func (d *durState[L, RT]) appendTick(ts int64) error {
	d.encR.Reset()
	d.encR.I64(ts)
	return d.append(wal.KindTick, d.encR.Bytes())
}

// maybeAutoCheckpoint counts one admitted batch and runs ckpt at the
// configured cadence. Called after the push has fully completed and no
// engine locks are held (a checkpoint takes them itself).
func (d *durState[L, RT]) maybeAutoCheckpoint(ckpt func(string) error) error {
	if d.log == nil || d.replaying.Load() || d.cfg.CheckpointEveryBatches <= 0 {
		return nil
	}
	if d.degraded.Load() {
		// Shed: auto-checkpoints target the failing directory, and a
		// re-arm there would immediately shed again. Re-arming is the
		// operator's explicit Checkpoint(healthyDir) call.
		return nil
	}
	if d.batches.Add(1)%uint64(d.cfg.CheckpointEveryBatches) == 0 {
		if err := ckpt(""); err != nil {
			if d.cfg.OnError == DurDegrade {
				d.walMu.Lock()
				d.shedLocked(err)
				d.walMu.Unlock()
				return nil
			}
			return err
		}
	}
	return nil
}

// closeLog syncs and closes the log on engine Close.
func (d *durState[L, RT]) closeLog() {
	if d.log != nil {
		d.log.Close() //nolint:errcheck // Close is best-effort teardown
	}
}

// encodeStampedBatch is the KindR/KindS record payload: tuple count,
// then (timestamp, payload blob) per tuple. Sequence numbers are not
// logged — replay re-derives them, which is exactly why replay must go
// through the ordinary push paths.
func encodeStampedBatch[T any](w *wire.Writer, batch []Stamped[T], enc func(T) []byte) {
	w.U32(uint32(len(batch)))
	for i := range batch {
		w.I64(batch[i].TS)
		w.Blob(enc(batch[i].Payload))
	}
}

func decodeStampedBatch[T any](p []byte, dec func([]byte) (T, error)) ([]Stamped[T], error) {
	r := wire.NewReader(p)
	n := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	out := make([]Stamped[T], 0, n)
	for i := 0; i < n; i++ {
		ts := r.I64()
		blob := r.Blob()
		if r.Err() != nil {
			return nil, r.Err()
		}
		v, err := dec(blob)
		if err != nil {
			return nil, fmt.Errorf("handshakejoin: wal replay decode: %w", err)
		}
		out = append(out, Stamped[T]{Payload: v, TS: ts})
	}
	return out, r.Err()
}

// fingerprint hashes the configuration facets a snapshot depends on.
// Restore refuses a snapshot whose fingerprint differs: window specs,
// shard/worker counts and ordering change what the serialized state
// means, so loading it into a differently-shaped engine would corrupt
// silently instead of failing loudly.
func (c *Config[L, RT]) fingerprint() uint64 {
	w := wire.NewWriter(96)
	sh := c.Shards
	if sh < 1 {
		sh = 1
	}
	w.U32(uint32(sh))
	w.U32(uint32(c.Workers))
	w.U32(uint32(c.Batch))
	w.I64(int64(c.WindowR.Duration))
	w.U64(uint64(c.WindowR.Count))
	w.I64(int64(c.WindowS.Duration))
	w.U64(uint64(c.WindowS.Count))
	w.U8(uint8(c.Index))
	w.U8(uint8(c.Class))
	w.U64(c.Band)
	w.Bool(c.Ordered)
	w.Bool(c.Punctuate)
	kg := c.Adapt.KeyGroups
	if sh > 1 && kg == 0 {
		kg = shard.DefaultGroups(sh)
	}
	w.U32(uint32(kg))
	w.Bool(c.Adapt.Enable)
	h := uint64(14695981039346656037) // FNV-1a
	for _, b := range w.Bytes() {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// engineSnap is the in-memory form of one checkpoint cut, shared by
// both engines: driver counters, window-accounting entries, the
// ordered-output sorter, the routing table (sharded), and every lane's
// verbatim state.
type engineSnap[L, RT any] struct {
	rSeq, sSeq       uint64
	rLastTS, sLastTS int64
	rWin, sWin       []windowEntry
	ordered          bool
	sorter           order.State[L, RT]
	lastPunct        int64
	sharded          bool
	router           adapt.RouterState
	lanes            []*shard.LaneState[L, RT]
}

func encodeWinEntries(w *wire.Writer, es []windowEntry) {
	w.U32(uint32(len(es)))
	for _, e := range es {
		w.U64(e.seq)
		w.U32(uint32(e.lane))
		w.U32(e.group)
		w.Bool(e.settled)
	}
}

func decodeWinEntries(r *wire.Reader) []windowEntry {
	n := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	out := make([]windowEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, windowEntry{
			seq:     r.U64(),
			lane:    int(r.U32()),
			group:   r.U32(),
			settled: r.Bool(),
		})
	}
	return out
}

func encodeTupleOne[T any](w *wire.Writer, t stream.Tuple[T], enc func(T) []byte) {
	w.U64(t.Seq)
	w.I64(t.TS)
	w.I64(t.Wall)
	w.Blob(enc(t.Payload))
}

func decodeTupleOne[T any](r *wire.Reader, dec func([]byte) (T, error)) (stream.Tuple[T], error) {
	t := stream.Tuple[T]{Home: stream.NoHome}
	t.Seq = r.U64()
	t.TS = r.I64()
	t.Wall = r.I64()
	blob := r.Blob()
	if r.Err() != nil {
		return t, r.Err()
	}
	v, err := dec(blob)
	t.Payload = v
	return t, err
}

func encodeSorterState[L, RT any](w *wire.Writer, st order.State[L, RT], encR func(L) []byte, encS func(RT) []byte) {
	w.U32(uint32(len(st.Buf)))
	for _, res := range st.Buf {
		encodeTupleOne(w, res.Pair.R, encR)
		encodeTupleOne(w, res.Pair.S, encS)
		w.I64(res.At)
	}
	w.U64(st.Released)
	w.I64(st.LastPunct)
	w.I64(st.LastTS)
	w.Bool(st.Monotonic)
}

func decodeSorterState[L, RT any](r *wire.Reader, decR func([]byte) (L, error), decS func([]byte) (RT, error)) (order.State[L, RT], error) {
	var st order.State[L, RT]
	n := int(r.U32())
	if r.Err() != nil {
		return st, r.Err()
	}
	for i := 0; i < n; i++ {
		var res Result[L, RT]
		var err error
		if res.Pair.R, err = decodeTupleOne(r, decR); err != nil {
			return st, err
		}
		if res.Pair.S, err = decodeTupleOne(r, decS); err != nil {
			return st, err
		}
		res.At = r.I64()
		st.Buf = append(st.Buf, res)
	}
	st.Released = r.U64()
	st.LastPunct = r.I64()
	st.LastTS = r.I64()
	st.Monotonic = r.Bool()
	return st, r.Err()
}

func encodeRouterState(w *wire.Writer, st adapt.RouterState) {
	w.U32(uint32(len(st.Assign)))
	for _, s := range st.Assign {
		w.U32(s)
	}
	w.Bool(st.Load != nil)
	if st.Load == nil {
		return
	}
	for _, v := range st.Load {
		w.U64(v)
	}
	for _, v := range st.RLive {
		w.I64(v)
	}
	for _, v := range st.SLive {
		w.I64(v)
	}
	for _, v := range st.DueBound {
		w.I64(v)
	}
	for _, v := range st.HandoffFrom {
		w.U32(uint32(v))
	}
}

func decodeRouterState(r *wire.Reader) adapt.RouterState {
	var st adapt.RouterState
	n := int(r.U32())
	if r.Err() != nil {
		return st
	}
	st.Assign = make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		st.Assign = append(st.Assign, r.U32())
	}
	if !r.Bool() {
		return st
	}
	st.Load = make([]uint64, n)
	st.RLive = make([]int64, n)
	st.SLive = make([]int64, n)
	st.DueBound = make([]int64, n)
	st.HandoffFrom = make([]int32, n)
	for i := 0; i < n; i++ {
		st.Load[i] = r.U64()
	}
	for i := 0; i < n; i++ {
		st.RLive[i] = r.I64()
	}
	for i := 0; i < n; i++ {
		st.SLive[i] = r.I64()
	}
	for i := 0; i < n; i++ {
		st.DueBound[i] = r.I64()
	}
	for i := 0; i < n; i++ {
		st.HandoffFrom[i] = int32(r.U32())
	}
	return st
}

// encodeSnap serializes one cut. The layout is deterministic (the same
// state always yields the same bytes), so the manifest's CRC over it is
// a meaningful integrity check.
func (d *durState[L, RT]) encodeSnap(snap *engineSnap[L, RT]) []byte {
	w := wire.NewWriter(1 << 16)
	w.U64(snapMagic)
	w.U32(snapVersion)
	w.U64(d.fp)
	if snap.sharded {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U32(uint32(len(snap.lanes)))
	w.U64(snap.rSeq)
	w.U64(snap.sSeq)
	w.I64(snap.rLastTS)
	w.I64(snap.sLastTS)
	encodeWinEntries(w, snap.rWin)
	encodeWinEntries(w, snap.sWin)
	w.Bool(snap.ordered)
	if snap.ordered {
		encodeSorterState(w, snap.sorter, d.cfg.EncodeR, d.cfg.EncodeS)
	}
	w.Bool(snap.sharded)
	if snap.sharded {
		encodeRouterState(w, snap.router)
	}
	for _, ls := range snap.lanes {
		shard.EncodeLaneState(w, ls, d.cfg.EncodeR, d.cfg.EncodeS)
	}
	return w.Bytes()
}

func (d *durState[L, RT]) decodeSnap(data []byte) (*engineSnap[L, RT], error) {
	r := wire.NewReader(data)
	if r.U64() != snapMagic {
		return nil, fmt.Errorf("handshakejoin: not a checkpoint state file")
	}
	if v := r.U32(); v != snapVersion {
		return nil, fmt.Errorf("handshakejoin: checkpoint version %d, this build reads %d", v, snapVersion)
	}
	if fp := r.U64(); fp != d.fp {
		return nil, fmt.Errorf("handshakejoin: checkpoint config fingerprint %#x does not match this engine's %#x (windows, shards, workers, batch, ordering and key-groups must be identical)", fp, d.fp)
	}
	snap := &engineSnap[L, RT]{}
	kind := r.U8()
	snap.sharded = kind == 1
	if wantSharded := d.shards > 1; snap.sharded != wantSharded {
		return nil, fmt.Errorf("handshakejoin: checkpoint engine kind mismatch")
	}
	nLanes := int(r.U32())
	if nLanes != d.shards {
		return nil, fmt.Errorf("handshakejoin: checkpoint has %d lanes, engine has %d", nLanes, d.shards)
	}
	snap.rSeq = r.U64()
	snap.sSeq = r.U64()
	snap.rLastTS = r.I64()
	snap.sLastTS = r.I64()
	snap.rWin = decodeWinEntries(r)
	snap.sWin = decodeWinEntries(r)
	snap.ordered = r.Bool()
	if snap.ordered {
		var err error
		if snap.sorter, err = decodeSorterState(r, d.cfg.DecodeR, d.cfg.DecodeS); err != nil {
			return nil, err
		}
	}
	if r.Bool() {
		snap.router = decodeRouterState(r)
	}
	for i := 0; i < nLanes; i++ {
		ls, err := shard.DecodeLaneState(r, d.cfg.DecodeR, d.cfg.DecodeS)
		if err != nil {
			return nil, fmt.Errorf("handshakejoin: decode lane %d: %w", i, err)
		}
		snap.lanes = append(snap.lanes, ls)
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("handshakejoin: checkpoint state truncated: %w", r.Err())
	}
	return snap, nil
}

// writeFileSync writes data to path atomically: temp file, fsync,
// rename, directory fsync. Readers see the old file or the new one,
// never a torn mix. The directory fsync is load-bearing — without it
// a crash can erase the renamed entry, un-committing the write — so
// its failure is an error, not advice.
func writeFileSync(fsys fault.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// writeCheckpoint serializes the cut and commits it: state first, then
// the manifest — the manifest rename is the commit point, so a crash
// mid-checkpoint leaves the previous checkpoint intact. Each file
// write runs under the shared retry policy; a transient disk fault
// costs a backoff, not the checkpoint. Returns the state size.
func (d *durState[L, RT]) writeCheckpoint(root string, walFrom uint64, snap *engineSnap[L, RT]) (int, error) {
	state := d.encodeSnap(snap)
	dir := filepath.Join(root, ckptSubdir)
	if err := d.fs.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	pol := d.retryPolicy("ckpt_retry")
	if err := pol.Do(func() error {
		return writeFileSync(d.fs, filepath.Join(dir, stateFile), state)
	}); err != nil {
		return 0, fmt.Errorf("handshakejoin: write checkpoint state: %w", err)
	}
	mw := wire.NewWriter(64)
	mw.U64(maniMagic)
	mw.U32(snapVersion)
	mw.U64(walFrom)
	mw.I64(snap.lastPunct)
	mw.U64(uint64(len(state)))
	mw.U32(crc32.ChecksumIEEE(state))
	mw.U32(crc32.ChecksumIEEE(mw.Bytes()))
	if err := pol.Do(func() error {
		return writeFileSync(d.fs, filepath.Join(dir, manifestFile), mw.Bytes())
	}); err != nil {
		return 0, fmt.Errorf("handshakejoin: write checkpoint manifest: %w", err)
	}
	return len(state), nil
}

// CheckpointStat describes the committed checkpoint of a durability
// directory; see CheckpointInfo.
type CheckpointStat struct {
	// WALFrom is the index of the first WAL record Restore will replay:
	// everything before it is covered by the snapshot.
	WALFrom uint64
	// LastPunct is the ordered-output punctuation floor at the cut (-1
	// before the first punctuation, or when the engine is unordered).
	// Output the crashed run emitted with result timestamps >= LastPunct
	// is re-emitted by the restored run.
	LastPunct int64
	// StateBytes is the size of the serialized engine state.
	StateBytes uint64
}

// readManifest parses and verifies <ckptDir>/MANIFEST.
func readManifest(fsys fault.FS, ckptDir string) (CheckpointStat, uint32, error) {
	var st CheckpointStat
	data, err := fsys.ReadFile(filepath.Join(ckptDir, manifestFile))
	if err != nil {
		return st, 0, err
	}
	if len(data) < 4 {
		return st, 0, fmt.Errorf("handshakejoin: checkpoint manifest truncated")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	r := wire.NewReader(data)
	if r.U64() != maniMagic {
		return st, 0, fmt.Errorf("handshakejoin: not a checkpoint manifest")
	}
	if v := r.U32(); v != snapVersion {
		return st, 0, fmt.Errorf("handshakejoin: checkpoint manifest version %d, this build reads %d", v, snapVersion)
	}
	st.WALFrom = r.U64()
	st.LastPunct = r.I64()
	st.StateBytes = r.U64()
	stateCRC := r.U32()
	if r.Err() != nil {
		return st, 0, fmt.Errorf("handshakejoin: checkpoint manifest truncated: %w", r.Err())
	}
	want := wire.NewReader(tail).U32()
	if crc32.ChecksumIEEE(body) != want {
		return st, 0, fmt.Errorf("handshakejoin: checkpoint manifest CRC mismatch")
	}
	return st, stateCRC, nil
}

// CheckpointInfo reads the committed checkpoint manifest under dir (a
// Durability.WALDir, or any directory passed to Joiner.Checkpoint)
// without loading the state. It answers "where would Restore resume"
// for tooling and tests.
func CheckpointInfo(dir string) (CheckpointStat, error) {
	st, _, err := readManifest(fault.OS, filepath.Join(dir, ckptSubdir))
	return st, err
}

// readCheckpoint loads and validates the checkpoint under root.
func (d *durState[L, RT]) readCheckpoint(root string) (CheckpointStat, *engineSnap[L, RT], error) {
	ckptDir := filepath.Join(root, ckptSubdir)
	st, stateCRC, err := readManifest(d.fs, ckptDir)
	if err != nil {
		return st, nil, err
	}
	data, err := d.fs.ReadFile(filepath.Join(ckptDir, stateFile))
	if err != nil {
		return st, nil, err
	}
	if uint64(len(data)) != st.StateBytes || crc32.ChecksumIEEE(data) != stateCRC {
		return st, nil, fmt.Errorf("handshakejoin: checkpoint state does not match its manifest (%d bytes, want %d)", len(data), st.StateBytes)
	}
	snap, err := d.decodeSnap(data)
	if err != nil {
		return st, nil, err
	}
	return st, snap, nil
}

// replayWAL re-pushes every WAL record with index >= from through the
// given push callbacks (the engines pass their public push methods,
// with the replaying flag set so the records are not re-logged). On a
// corrupt mid-log segment the valid prefix has already been pushed;
// the error then reports exactly how much acknowledged data is gone.
func (d *durState[L, RT]) replayWAL(root string, from uint64,
	pushR func([]Stamped[L]) error, pushS func([]Stamped[RT]) error, tick func(int64)) (int, error) {
	n, err := wal.ReplayFS(d.fs, filepath.Join(root, walSubdir), from, func(rec wal.Record) error {
		switch rec.Kind {
		case wal.KindR:
			b, err := decodeStampedBatch(rec.Payload, d.cfg.DecodeR)
			if err != nil {
				return err
			}
			return pushR(b)
		case wal.KindS:
			b, err := decodeStampedBatch(rec.Payload, d.cfg.DecodeS)
			if err != nil {
				return err
			}
			return pushS(b)
		case wal.KindTick:
			r := wire.NewReader(rec.Payload)
			ts := r.I64()
			if r.Err() != nil {
				return fmt.Errorf("handshakejoin: wal tick record truncated")
			}
			tick(ts)
			return nil
		default:
			return fmt.Errorf("handshakejoin: unknown wal record kind %d", rec.Kind)
		}
	})
	if errors.Is(err, wal.ErrCorrupt) {
		err = fmt.Errorf("handshakejoin: wal replay salvaged %d records, then hit corruption — acknowledged data beyond them is lost: %w", n, err)
	}
	return n, err
}
