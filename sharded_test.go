package handshakejoin

import (
	"sync"
	"testing"
	"time"
)

func TestShardedValidation(t *testing.T) {
	var out sink[trade, quote]
	key := func(t trade) uint64 { return uint64(t.Sym) }
	keyS := func(q quote) uint64 { return uint64(q.Sym) }
	base := Config[trade, quote]{
		Predicate: symPred,
		WindowR:   Window{Count: 50},
		WindowS:   Window{Count: 50},
		OnOutput:  out.add,
	}
	noKeys := base
	noKeys.Shards = 4
	hsjSharded := base
	hsjSharded.Shards = 4
	hsjSharded.Algorithm = HSJ
	hsjSharded.KeyR, hsjSharded.KeyS = key, keyS
	negative := base
	negative.Shards = -1
	for i, cfg := range []Config[trade, quote]{noKeys, hsjSharded, negative} {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid sharded config accepted", i)
		}
	}

	ok := base
	ok.Shards = 4
	ok.KeyR, ok.KeyS = key, keyS
	eng, err := New(ok)
	if err != nil {
		t.Fatal(err)
	}
	se, isSharded := eng.(*ShardedEngine[trade, quote])
	if !isSharded {
		t.Fatalf("New with Shards=4 returned %T", eng)
	}
	if se.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", se.Shards())
	}
	eng.Close()

	// Shards 0 and 1 select the single-pipeline engine.
	for _, n := range []int{0, 1} {
		one := ok
		one.Shards = n
		eng, err := New(one)
		if err != nil {
			t.Fatal(err)
		}
		if _, isSharded := eng.(*ShardedEngine[trade, quote]); isSharded {
			t.Fatalf("New with Shards=%d returned a ShardedEngine", n)
		}
		eng.Close()
	}
}

func TestShardedTickSlidesWindows(t *testing.T) {
	var out sink[trade, quote]
	eng, err := New(Config[trade, quote]{
		Workers:     2,
		Shards:      2,
		Predicate:   symPred,
		WindowR:     Window{Duration: 10 * time.Millisecond},
		WindowS:     Window{Duration: 10 * time.Millisecond},
		Batch:       1,
		MaxInFlight: 4,
		KeyR:        func(t trade) uint64 { return uint64(t.Sym) },
		KeyS:        func(q quote) uint64 { return uint64(q.Sym) },
		OnOutput:    out.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushS(quote{Sym: 1}, 0)
	eng.PushS(quote{Sym: 2}, 0)
	// Advance stream time past the quotes' expiry on every shard, then
	// push matching trades: they must not join.
	eng.Tick(20e6)
	eng.PushR(trade{Sym: 1}, 25e6)
	eng.PushR(trade{Sym: 2}, 25e6)
	eng.Close()
	for _, it := range out.snapshot() {
		if !it.Punct {
			t.Fatalf("expired tuple joined: %+v", it.Result.Pair)
		}
	}
}

func TestShardedPushAfterCloseAndIdempotentClose(t *testing.T) {
	eng, err := New(Config[trade, quote]{
		Shards:    2,
		Predicate: symPred,
		WindowR:   Window{Count: 10},
		WindowS:   Window{Count: 10},
		KeyR:      func(t trade) uint64 { return uint64(t.Sym) },
		KeyS:      func(q quote) uint64 { return uint64(q.Sym) },
		OnOutput:  func(Item[trade, quote]) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal("second close errored")
	}
	if err := eng.PushR(trade{}, 1); err == nil {
		t.Fatal("push after close accepted")
	}
	if err := eng.PushS(quote{}, 1); err == nil {
		t.Fatal("S push after close accepted")
	}
}

func TestShardedTimestampRegressionRejected(t *testing.T) {
	eng, err := New(Config[trade, quote]{
		Shards:    2,
		Predicate: symPred,
		WindowR:   Window{Count: 10},
		WindowS:   Window{Count: 10},
		KeyR:      func(t trade) uint64 { return uint64(t.Sym) },
		KeyS:      func(q quote) uint64 { return uint64(q.Sym) },
		OnOutput:  func(Item[trade, quote]) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.PushR(trade{}, 100); err != nil {
		t.Fatal(err)
	}
	if err := eng.PushR(trade{}, 99); err == nil {
		t.Fatal("regressed R timestamp accepted")
	}
	if err := eng.PushS(quote{}, 100); err != nil {
		t.Fatal(err)
	}
	if err := eng.PushS(quote{}, 50); err == nil {
		t.Fatal("regressed S timestamp accepted")
	}
}

// TestShardedOrderedMonotonicUnderConcurrency drives the ordered
// sharded engine from concurrent pushers (coordinating timestamps via
// a shared lock) and verifies the merged output never regresses.
func TestShardedOrderedMonotonicUnderConcurrency(t *testing.T) {
	var mu sync.Mutex
	var lastTS int64 = -1 << 62
	violations := 0
	results := 0
	eng, err := New(Config[trade, quote]{
		Workers:       2,
		Shards:        4,
		Predicate:     symPred,
		WindowR:       Window{Count: 4000},
		WindowS:       Window{Count: 4000},
		Batch:         8,
		MaxInFlight:   4,
		Ordered:       true,
		CollectPeriod: 200 * time.Microsecond,
		KeyR:          func(t trade) uint64 { return uint64(t.Sym) },
		KeyS:          func(q quote) uint64 { return uint64(q.Sym) },
		OnOutput: func(it Item[trade, quote]) {
			if it.Punct {
				return
			}
			mu.Lock()
			results++
			if ts := it.Result.Pair.TS(); ts < lastTS {
				violations++
			} else {
				lastTS = ts
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var tsMu sync.Mutex
	var clock int64
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tsMu.Lock()
				clock += 1e5
				ts := clock
				sym := (p*500 + i) % 16
				// Push under the timestamp lock so concurrent pushers
				// jointly keep each stream monotonic.
				if err := eng.PushR(trade{Sym: sym}, ts); err != nil {
					tsMu.Unlock()
					t.Error(err)
					return
				}
				if err := eng.PushS(quote{Sym: sym}, ts); err != nil {
					tsMu.Unlock()
					t.Error(err)
					return
				}
				tsMu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if results == 0 {
		t.Fatal("no results")
	}
	if violations != 0 {
		t.Fatalf("%d ordering violations in %d results", violations, results)
	}
}
