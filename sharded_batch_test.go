package handshakejoin

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// The tests in this file establish the correctness claim of the
// batched ingress fast path: PushRBatch/PushSBatch are *exactly*
// equivalent to the corresponding per-tuple push sequence — the same
// result multiset, the same exact Ordered-mode sequence, and (with a
// static table) the same per-shard ingress counts — including while an
// incremental handoff is held open across caller batches, where the
// batch path coalesces the probe-only double-reads into one slice
// message per (batch, source lane).

// batchRecorder captures the output of one engine run: the pair
// multiset and the emitted Ordered sequence.
type batchRecorder struct {
	mu    sync.Mutex
	pairs map[stream.PairKey]int
	seq   []orderedKey
}

func newBatchRecorder() *batchRecorder {
	return &batchRecorder{pairs: map[stream.PairKey]int{}}
}

func (r *batchRecorder) add(it Item[okR, okS]) {
	if it.Punct {
		return
	}
	p := it.Result.Pair
	r.mu.Lock()
	r.pairs[p.Key()]++
	r.seq = append(r.seq, orderedKey{TS: p.TS(), RSeq: p.R.Seq, SSeq: p.S.Seq})
	r.mu.Unlock()
}

// batchOp is one step of a deterministic ingress schedule: a run of
// same-side tuples (pushed one by one on the per-tuple engine, as one
// PushRBatch/PushSBatch call on the batch engine), or a Tick.
type batchOp struct {
	side stream.Side
	rs   []Stamped[okR]
	ss   []Stamped[okS]
	tick int64 // advance stream time instead, when > 0
}

// batchSchedule builds a run-structured workload: alternating bursts
// of R and S tuples with Zipf-distributed keys (theta 0 = uniform),
// shared timestamps inside a burst (equality edge cases), and
// periodic idle ticks. Run lengths vary from 1 to beyond the lane
// batch size so caller batches split across every boundary flavor.
func batchSchedule(tuples int, theta float64, seed uint64) []batchOp {
	const step = int64(1e6)
	const keys = 24
	rnd := workload.NewRand(seed)
	var zr *workload.Zipf
	if theta > 0 {
		zr = workload.NewZipf(workload.NewRand(seed+1), theta, keys)
	}
	nextKey := func() uint64 {
		if zr == nil {
			return uint64(rnd.Intn(keys))
		}
		return zr.Next()
	}
	var ops []batchOp
	ts := int64(0)
	pushed := 0
	for pushed < tuples {
		// Caller batches stay well below the windows: boundary blur
		// grows to Shards*max(Batch, callerBatch) tuples, and an
		// in-flight arrival must never overlap its own expiry (the
		// windows-dominate-batching contract of the package docs).
		run := 1 + rnd.Intn(48)
		if run > tuples-pushed {
			run = tuples - pushed
		}
		side := stream.R
		if rnd.Intn(5) >= 3 { // mild rate skew between the streams
			side = stream.S
		}
		op := batchOp{side: side}
		for i := 0; i < run; i++ {
			ts += int64(rnd.Intn(3)) * step / 2
			if side == stream.R {
				op.rs = append(op.rs, Stamped[okR]{Payload: okR{Key: nextKey(), Val: int32(rnd.Intn(12))}, TS: ts})
			} else {
				op.ss = append(op.ss, Stamped[okS]{Payload: okS{Key: nextKey(), Val: int32(rnd.Intn(12))}, TS: ts})
			}
		}
		ops = append(ops, op)
		pushed += run
		if rnd.Intn(11) == 0 { // idle period: advance time without tuples
			ts += 20 * step
			ops = append(ops, batchOp{tick: ts})
		}
	}
	return ops
}

// runBatchSchedule drives ops into eng. With perTuple the runs are
// replayed element by element through PushR/PushS; otherwise each run
// is one batch call. between, when non-nil, runs after every op with
// its index — both replays see it at identical schedule points.
func runBatchSchedule(t *testing.T, eng Joiner[okR, okS], ops []batchOp, perTuple bool, between func(i int)) {
	t.Helper()
	for i, op := range ops {
		switch {
		case op.tick > 0:
			eng.Tick(op.tick)
		case perTuple:
			for _, r := range op.rs {
				if err := eng.PushR(r.Payload, r.TS); err != nil {
					t.Fatal(err)
				}
			}
			for _, s := range op.ss {
				if err := eng.PushS(s.Payload, s.TS); err != nil {
					t.Fatal(err)
				}
			}
		case op.side == stream.R:
			if err := eng.PushRBatch(op.rs); err != nil {
				t.Fatal(err)
			}
		default:
			if err := eng.PushSBatch(op.ss); err != nil {
				t.Fatal(err)
			}
		}
		if between != nil {
			between(i)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

func batchCfg(shards int, out func(Item[okR, okS])) Config[okR, okS] {
	const step = int64(1e6)
	cfg := Config[okR, okS]{
		Workers:       3,
		Shards:        shards,
		Predicate:     shardedEqui,
		WindowR:       Window{Duration: time.Duration(500 * step), Count: 900},
		WindowS:       Window{Count: 850},
		Batch:         4,
		MaxInFlight:   2,
		Ordered:       true,
		CollectPeriod: 200 * time.Microsecond,
		KeyR:          okRKey,
		KeyS:          okSKey,
		OnOutput:      out,
		// Heartbeats flush partial batches on wall-clock time; both
		// replays must share one deterministic flush schedule.
		Adapt: AdaptConfig{DisableHeartbeat: true},
	}
	return cfg
}

// compareBatchRuns checks exact multiset and exact Ordered-sequence
// equality between the per-tuple and batch replays.
func compareBatchRuns(t *testing.T, ref, got *batchRecorder) {
	t.Helper()
	missing, extra, dups := diffPairMultiset(ref.pairs, got.pairs)
	if missing != 0 || extra != 0 || dups != 0 {
		t.Fatalf("batch vs per-tuple multiset: %d missing, %d extra, %d duplicates (per-tuple %d distinct, batch %d distinct)",
			missing, extra, dups, len(ref.pairs), len(got.pairs))
	}
	if len(got.seq) != len(ref.seq) {
		t.Fatalf("batch emitted %d results, per-tuple %d", len(got.seq), len(ref.seq))
	}
	for i := range ref.seq {
		if got.seq[i] != ref.seq[i] {
			t.Fatalf("ordered position %d: batch %+v, per-tuple %+v", i, got.seq[i], ref.seq[i])
		}
	}
	if len(ref.seq) == 0 {
		t.Fatal("workload produced no results; test has no teeth")
	}
}

func TestShardedBatchMatchesPerTupleExactly(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		for _, theta := range []float64{0, 1.0, 1.5} {
			t.Run(fmt.Sprintf("shards=%d/theta=%.1f", shards, theta), func(t *testing.T) {
				ops := batchSchedule(2600, theta, uint64(1000*shards)+uint64(theta*10))

				ref := newBatchRecorder()
				refEng, err := New(batchCfg(shards, ref.add))
				if err != nil {
					t.Fatal(err)
				}
				runBatchSchedule(t, refEng, ops, true, nil)

				got := newBatchRecorder()
				gotEng, err := New(batchCfg(shards, got.add))
				if err != nil {
					t.Fatal(err)
				}
				runBatchSchedule(t, gotEng, ops, false, nil)

				compareBatchRuns(t, ref, got)
				refSt, gotSt := refEng.Stats(), gotEng.Stats()
				if refSt.RIn != gotSt.RIn || refSt.SIn != gotSt.SIn || refSt.Results != gotSt.Results {
					t.Fatalf("stats diverged: per-tuple in=%d/%d out=%d, batch in=%d/%d out=%d",
						refSt.RIn, refSt.SIn, refSt.Results, gotSt.RIn, gotSt.SIn, gotSt.Results)
				}
				if gotSt.PendingExpiries != 0 {
					t.Errorf("batch run pending expiries: %d", gotSt.PendingExpiries)
				}
				// With the static table, routing is identical tuple by
				// tuple, so the per-lane batch deltas must reproduce the
				// per-tuple ingress counters exactly.
				for i := range refSt.ShardIngress {
					if refSt.ShardIngress[i] != gotSt.ShardIngress[i] {
						t.Fatalf("ShardIngress[%d]: per-tuple %d, batch %d", i, refSt.ShardIngress[i], gotSt.ShardIngress[i])
					}
				}
			})
		}
	}
}

// TestShardedBatchHandoffOpenAcrossBatches pins the batched probe-only
// double-read path: incremental handoffs of the hottest key-groups are
// held open across many caller batches (advanced in small slices), so
// whole batches are admitted while a group's window state is split
// between two lanes — the regime where the batch path must coalesce
// the double-reads without losing or duplicating a single pair.
func TestShardedBatchHandoffOpenAcrossBatches(t *testing.T) {
	const shards = 4
	ops := batchSchedule(2600, 1.5, 77)

	// migration drives BeginMigration/AdvanceMigration at fixed op
	// indices, targeting the groups of the hottest Zipf keys so the
	// open handoff always has live traffic. Routing changes only
	// through these calls (no planner, no drain moves), so both
	// replays perform identical migrations.
	migration := func(se *ShardedEngine[okR, okS]) func(i int) {
		move := 0
		active := -1
		return func(i int) {
			if active < 0 && i%7 == 6 {
				g := se.router.GroupOf(uint64(move % 4)) // hot keys 0..3
				to := (se.router.Partitioner().ShardOfGroup(g) + 1 + move%(shards-1)) % shards
				if err := se.BeginMigration(g, to); err != nil {
					t.Fatalf("BeginMigration(%d, %d): %v", g, to, err)
				}
				active = int(g)
				move++
				return
			}
			if active >= 0 && i%2 == 1 {
				_, done, err := se.AdvanceMigration(uint32(active))
				if err != nil {
					t.Fatalf("AdvanceMigration(%d): %v", active, err)
				}
				if done {
					active = -1
				}
			}
		}
	}

	newEng := func(out func(Item[okR, okS])) *ShardedEngine[okR, okS] {
		cfg := batchCfg(shards, out)
		cfg.Adapt.Enable = true
		cfg.Adapt.SamplePeriod = -1 // no background control loop
		cfg.Adapt.KeyGroups = 8 * shards
		cfg.Adapt.Migration.SliceTuples = 64 // several hops per handoff
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng.(*ShardedEngine[okR, okS])
	}

	ref := newBatchRecorder()
	refEng := newEng(ref.add)
	runBatchSchedule(t, refEng, ops, true, migration(refEng))

	got := newBatchRecorder()
	gotEng := newEng(got.add)
	runBatchSchedule(t, gotEng, ops, false, migration(gotEng))

	compareBatchRuns(t, ref, got)
	st := gotEng.Stats()
	if st.SliceMigrations < 4 || st.MigratedTuples == 0 {
		t.Fatalf("handoffs did not exercise the slice path: %d hops, %d tuples moved", st.SliceMigrations, st.MigratedTuples)
	}
	if st.SourceFreezeStalls != 0 {
		t.Fatalf("incremental handoffs froze a source shard %d times", st.SourceFreezeStalls)
	}
	if st.PendingExpiries != 0 {
		t.Errorf("pending expiries: %d", st.PendingExpiries)
	}
}

// TestShardedBatchConcurrentPushers hammers the batch admission path
// from concurrent goroutines on both sides while incremental
// migrations run — the locking structure (side locks, stripe batches,
// multi-gate ticket walks, slice recycling) under the race detector.
func TestShardedBatchConcurrentPushers(t *testing.T) {
	const (
		shards  = 4
		pushers = 2
		batches = 120
		size    = 17
		keys    = 64
	)
	cfg := Config[okR, okS]{
		Workers:     2,
		Shards:      shards,
		Predicate:   shardedEqui,
		WindowR:     Window{Count: 600},
		WindowS:     Window{Count: 600},
		Batch:       8,
		MaxInFlight: 4,
		KeyR:        okRKey,
		KeyS:        okSKey,
		Adapt: AdaptConfig{
			Enable:       true,
			SamplePeriod: -1,
			KeyGroups:    8 * shards,
			Migration:    MigrationConfig{SliceTuples: 32},
		},
		OnOutput: func(Item[okR, okS]) {},
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*ShardedEngine[okR, okS])

	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		p := p
		wg.Add(2)
		go func() {
			defer wg.Done()
			rnd := workload.NewRand(uint64(100 + p))
			buf := make([]Stamped[okR], size)
			for b := 0; b < batches; b++ {
				for i := range buf {
					buf[i] = Stamped[okR]{Payload: okR{Key: uint64(rnd.Intn(keys)), Val: int32(i)}}
				}
				if err := se.PushRBatch(buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			rnd := workload.NewRand(uint64(200 + p))
			buf := make([]Stamped[okS], size)
			for b := 0; b < batches; b++ {
				for i := range buf {
					buf[i] = Stamped[okS]{Payload: okS{Key: uint64(rnd.Intn(keys)), Val: int32(i)}}
				}
				if err := se.PushSBatch(buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := 0; g < 24; g++ {
			to := g % shards
			// Concurrent with pushers: same-shard and in-handoff
			// refusals are expected, data loss is not.
			se.MigrateIncremental(uint32(g%se.KeyGroups()), to)
		}
	}()
	wg.Wait()
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
	st := se.Stats()
	want := uint64(pushers * batches * size)
	if st.RIn != want || st.SIn != want {
		t.Fatalf("ingress lost tuples: RIn=%d SIn=%d want %d", st.RIn, st.SIn, want)
	}
	var routed uint64
	for _, n := range st.ShardIngress {
		routed += n
	}
	if routed != 2*want {
		t.Fatalf("ShardIngress sums to %d, want %d (probe double-reads must not count)", routed, 2*want)
	}
	if st.PendingExpiries != 0 {
		t.Errorf("pending expiries: %d", st.PendingExpiries)
	}
}

// TestBatchRejectsRegressionAtomically verifies the all-or-nothing
// batch contract: a timestamp regression anywhere in the batch leaves
// the engine exactly as it was — no tuples admitted, no sequence
// numbers burned — for both engine flavors.
func TestBatchRejectsRegressionAtomically(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			eng, err := New(batchCfg(shards, func(Item[okR, okS]) {}))
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.PushRBatch([]Stamped[okR]{
				{Payload: okR{Key: 1}, TS: 10},
				{Payload: okR{Key: 2}, TS: 30},
				{Payload: okR{Key: 3}, TS: 20}, // regresses inside the batch
			}); err == nil {
				t.Fatal("regressing batch was accepted")
			}
			// An empty batch is a no-op, not an error.
			if err := eng.PushRBatch(nil); err != nil {
				t.Fatal(err)
			}
			if err := eng.PushSBatch(nil); err != nil {
				t.Fatal(err)
			}
			// The rejected batch must not have advanced the stream: a
			// tuple at the pre-batch floor is still admissible.
			if err := eng.PushR(okR{Key: 4}, 0); err != nil {
				t.Fatalf("engine state changed by rejected batch: %v", err)
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			st := eng.Stats()
			if st.RIn != 1 || st.SIn != 0 {
				t.Fatalf("rejected batch admitted tuples: RIn=%d SIn=%d", st.RIn, st.SIn)
			}
		})
	}
}
