package handshakejoin

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"handshakejoin/internal/kang"
	"handshakejoin/internal/stream"
)

// TestObsSnapshotRace is the soundness proof for the live observability
// layer: several scraper goroutines hammer StatsSnapshot and the event
// drain while batch pushers feed both sides and a migrator keeps an
// incremental handoff open for most of the run. The race detector
// watches every read; mid-run snapshots must satisfy the conservation
// invariant (tuples routed to shards never exceed tuples admitted), and
// after Close the counters must be exact and the result multiset must
// match a sequential Kang reference.
func TestObsSnapshotRace(t *testing.T) {
	const (
		pushers  = 3
		batches  = 50
		batchSz  = 16
		keys     = 16
		scrapers = 4
		perSide  = batches * batchSz
		totalR   = pushers * perSide
		totalS   = pushers * perSide
		shards   = 4
	)
	var mu sync.Mutex
	seen := make(map[[2]int]int)
	cfg := Config[cidR, cidS]{
		Workers:     2,
		Shards:      shards,
		Predicate:   func(r cidR, s cidS) bool { return r.Key == s.Key },
		WindowR:     Window{Count: totalR},
		WindowS:     Window{Count: totalS},
		Batch:       8,
		MaxInFlight: 4,
		Punctuate:   true,
		KeyR:        func(r cidR) uint64 { return r.Key },
		KeyS:        func(s cidS) uint64 { return s.Key },
		Adapt: AdaptConfig{
			Enable:       true,
			SamplePeriod: -1, // the explicit migrator goroutine is the only mover
			KeyGroups:    64,
			Migration:    MigrationConfig{SliceTuples: 32},
		},
		Obs: ObsConfig{EventBuffer: 512},
		OnOutput: func(it Item[cidR, cidS]) {
			if it.Punct {
				return
			}
			mu.Lock()
			seen[[2]int{it.Result.Pair.R.Payload.ID, it.Result.Pair.S.Payload.ID}]++
			mu.Unlock()
		},
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*ShardedEngine[cidR, cidS])

	stop := make(chan struct{})
	var bgWg sync.WaitGroup

	// Scrapers: snapshot + drain in a tight loop, checking the mid-run
	// invariants a monitoring agent would rely on.
	for i := 0; i < scrapers; i++ {
		bgWg.Add(1)
		go func() {
			defer bgWg.Done()
			var since uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := eng.StatsSnapshot()
				var routed uint64
				for _, n := range snap.ShardIngress {
					routed += n
				}
				// Shard attribution happens after the seq counters under
				// the same side lock, so a snapshot can never have seen
				// more routed tuples than admitted ones.
				if routed > snap.RIn+snap.SIn {
					t.Errorf("snapshot routed %d tuples but admitted only %d", routed, snap.RIn+snap.SIn)
					return
				}
				if len(snap.LiveWindowR) != shards || len(snap.LiveWindowS) != shards || len(snap.ExpiryDepth) != shards {
					t.Errorf("snapshot gauge lengths = (%d, %d, %d), want %d", len(snap.LiveWindowR), len(snap.LiveWindowS), len(snap.ExpiryDepth), shards)
					return
				}
				for _, ev := range eng.Events(since) {
					if ev.Kind == "" {
						t.Error("drained event with empty kind")
						return
					}
					since = ev.Seq + 1
				}
				// A tight unthrottled loop would starve the lanes on the
				// gauges' internal locks; a short period still yields
				// thousands of scrapes per run.
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	// Migrator: walk the key-groups, holding an incremental handoff open
	// while pushes flow, then settle it before moving on (so no handoff
	// is left open at Close).
	bgWg.Add(1)
	go func() {
		defer bgWg.Done()
		groups := se.KeyGroups()
		move := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			g := uint32(move % groups)
			to := (se.router.Partitioner().ShardOfGroup(g) + 1) % se.Shards()
			if err := se.BeginMigration(g, to); err == nil {
				for {
					_, done, err := se.AdvanceMigration(g)
					if err != nil || done {
						break
					}
					time.Sleep(50 * time.Microsecond) // pushes and scrapes flow mid-handoff
				}
			}
			move++
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rb := make([]Stamped[cidR], batchSz)
			for b := 0; b < batches; b++ {
				for i := range rb {
					id := p*perSide + b*batchSz + i
					rb[i] = Stamped[cidR]{Payload: cidR{Key: uint64(id % keys), ID: id}}
				}
				if err := eng.PushRBatch(rb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			sb := make([]Stamped[cidS], batchSz)
			for b := 0; b < batches; b++ {
				for i := range sb {
					id := p*perSide + b*batchSz + i
					sb[i] = Stamped[cidS]{Payload: cidS{Key: uint64((id * 7) % keys), ID: id}}
				}
				if err := eng.PushSBatch(sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	bgWg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Post-Close the counters are exact: every admitted tuple was routed.
	st := eng.Stats()
	if st.RIn != totalR || st.SIn != totalS {
		t.Fatalf("Stats in = (%d, %d), want (%d, %d)", st.RIn, st.SIn, totalR, totalS)
	}
	var routed uint64
	for _, n := range st.ShardIngress {
		routed += n
	}
	if routed != st.RIn+st.SIn {
		t.Fatalf("shards ingested %d tuples, engine admitted %d", routed, st.RIn+st.SIn)
	}

	// The result multiset must match a sequential Kang reference: the
	// windows hold everything and all tuples share one timestamp, so the
	// reference is every key-matching pair exactly once, independent of
	// the interleaving and of the handoffs.
	want := make(map[[2]int]int)
	oracle := kang.New(
		func(r cidR, s cidS) bool { return r.Key == s.Key },
		func(p stream.Pair[cidR, cidS]) {
			want[[2]int{p.R.Payload.ID, p.S.Payload.ID}]++
		})
	for id := 0; id < totalR; id++ {
		oracle.ProcessR(stream.Tuple[cidR]{Seq: uint64(id), Payload: cidR{Key: uint64(id % keys), ID: id}})
	}
	for id := 0; id < totalS; id++ {
		oracle.ProcessS(stream.Tuple[cidS]{Seq: uint64(id), Payload: cidS{Key: uint64((id * 7) % keys), ID: id}})
	}
	if len(seen) != len(want) {
		t.Fatalf("engine emitted %d distinct pairs, oracle %d", len(seen), len(want))
	}
	for pair, n := range seen {
		if want[pair] != n {
			t.Fatalf("pair %v emitted %d times, oracle says %d", pair, n, want[pair])
		}
	}
	if st.Results != uint64(len(want)) {
		t.Fatalf("Stats.Results = %d, oracle emitted %d", st.Results, len(want))
	}

	// The migrator ran real handoffs, so the trace must hold their
	// events (the ring keeps the newest 512; settles are the last kind
	// emitted per handoff, so at least the recent ones survive).
	kinds := make(map[string]int)
	for _, ev := range eng.Events(0) {
		kinds[ev.Kind]++
	}
	if kinds["handoff_begin"] == 0 || kinds["handoff_settle"] == 0 {
		t.Fatalf("trace ring missing handoff events: %v", kinds)
	}
}

// TestObsEndpoint drives the HTTP export surface end to end on an
// ephemeral port: /metrics must be well-formed Prometheus text
// exposition carrying the engine's counters, /events must be decodable
// JSONL, and the server must go away with the engine.
func TestObsEndpoint(t *testing.T) {
	cfg := Config[cidR, cidS]{
		Workers:   2,
		Shards:    2,
		Predicate: func(r cidR, s cidS) bool { return r.Key == s.Key },
		WindowR:   Window{Count: 1 << 16},
		WindowS:   Window{Count: 1 << 16},
		Punctuate: true,
		KeyR:      func(r cidR) uint64 { return r.Key },
		KeyS:      func(s cidS) uint64 { return s.Key },
		Adapt: AdaptConfig{
			Enable:       true,
			SamplePeriod: -1, // no control loop; the test migrates explicitly
			KeyGroups:    16,
			Migration:    MigrationConfig{SliceTuples: 64},
		},
		Obs:      ObsConfig{Addr: "127.0.0.1:0"},
		OnOutput: func(Item[cidR, cidS]) {},
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	addr := eng.ObsAddr()
	if addr == "" {
		t.Fatal("ObsAddr empty with Obs.Addr set")
	}
	for i := 0; i < 64; i++ {
		if err := eng.PushR(cidR{Key: uint64(i % 8), ID: i}, int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := eng.PushS(cidS{Key: uint64(i % 8), ID: i}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}

	body := httpGet(t, "http://"+addr+"/metrics")
	checkExposition(t, body)
	if !strings.Contains(body, `llhj_ingress_total{side="r"} 64`) {
		t.Fatalf("/metrics missing R ingress counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE llhj_output_latency_ns histogram") {
		t.Fatalf("/metrics missing latency histogram:\n%s", body)
	}

	// Trigger at least one trace event via a handoff, then drain it over
	// HTTP as JSONL.
	se := eng.(*ShardedEngine[cidR, cidS])
	g := se.router.GroupOf(3)
	to := (se.router.Partitioner().ShardOfGroup(g) + 1) % se.Shards()
	if err := se.BeginMigration(g, to); err != nil {
		t.Fatal(err)
	}
	for {
		_, done, err := se.AdvanceMigration(g)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	events := httpGet(t, "http://"+addr+"/events")
	var kinds []string
	sc := bufio.NewScanner(strings.NewReader(events))
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL event %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev.Kind)
	}
	found := false
	for _, k := range kinds {
		if k == "handoff_begin" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/events missing handoff_begin, got %v", kinds)
	}

	if body := httpGet(t, "http://"+addr+"/debug/vars"); !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars missing memstats:\n%.200s", body)
	}

	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("endpoint still serving after Close")
	}
}

// TestObsSingleEngine covers the single-pipeline Engine's observability
// surface: snapshot gauges have one shard, the floor proxy moves, and
// disabling Obs keeps the accessors inert.
func TestObsSingleEngine(t *testing.T) {
	var results int
	cfg := Config[int, int]{
		Workers:   2,
		Predicate: func(r, s int) bool { return r == s },
		WindowR:   Window{Count: 1024},
		WindowS:   Window{Count: 1024},
		Punctuate: true,
		Obs:       ObsConfig{EventBuffer: 64},
		OnOutput: func(it Item[int, int]) {
			if !it.Punct {
				results++
			}
		},
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := eng.PushR(i%10, int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := eng.PushS(i%10, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := eng.StatsSnapshot()
	if snap.RIn != 100 || snap.SIn != 100 {
		t.Fatalf("snapshot in = (%d, %d), want (100, 100)", snap.RIn, snap.SIn)
	}
	if len(snap.LiveWindowR) != 1 || len(snap.ExpiryDepth) != 1 {
		t.Fatalf("single engine must report one shard, got %d/%d", len(snap.LiveWindowR), len(snap.ExpiryDepth))
	}
	if eng.ObsAddr() != "" {
		t.Fatalf("ObsAddr = %q without a server", eng.ObsAddr())
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	post := eng.StatsSnapshot()
	if post.FloorLagNs < 0 {
		t.Fatalf("FloorLagNs = %d after pushes, want >= 0", post.FloorLagNs)
	}

	// With Obs zero every accessor is inert.
	cfg.Obs = ObsConfig{}
	eng2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if evs := eng2.Events(0); evs != nil {
		t.Fatalf("Events = %v with tracing disabled", evs)
	}
	if eng2.ObsAddr() != "" {
		t.Fatal("ObsAddr non-empty with Obs disabled")
	}
	if snap := eng2.StatsSnapshot(); snap.NextEventSeq != 0 {
		t.Fatalf("NextEventSeq = %d with tracing disabled", snap.NextEventSeq)
	}
}

// httpGet fetches a URL with retries (the server goroutine may still be
// coming up) and returns the body.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ {
		resp, err := http.Get(url)
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: %s", url, resp.Status)
			}
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			return string(b)
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("GET %s: %v", url, lastErr)
	return ""
}

// checkExposition validates the shape of a Prometheus text page: every
// non-comment line is "name[{labels}] value" with a numeric value.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(body))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines++
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("exposition line without value: %q", line)
		}
		name := line[:sp]
		if !strings.HasPrefix(name, "llhj_") {
			t.Fatalf("unexpected metric name in %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
	}
	if lines == 0 {
		t.Fatal("empty exposition")
	}
}

// engineFDs counts this process's open file descriptors, skipping the
// test on platforms without /proc.
func engineFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd on this platform: %v", err)
	}
	return len(ents)
}

// TestObsServerClosedWithEngine creates engines that serve the export
// endpoint — alternating single-lane and sharded — scrapes each once,
// closes them, and asserts that neither goroutines nor file descriptors
// accumulate: Joiner.Close must tear down the HTTP listener, its
// connections, and the serving goroutine along with the pipeline.
func TestObsServerClosedWithEngine(t *testing.T) {
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	mk := func(shards int) Joiner[cidR, cidS] {
		t.Helper()
		eng, err := New(Config[cidR, cidS]{
			Workers:   2,
			Shards:    shards,
			Predicate: func(r cidR, s cidS) bool { return r.Key == s.Key },
			WindowR:   Window{Count: 256},
			WindowS:   Window{Count: 256},
			KeyR:      func(r cidR) uint64 { return r.Key },
			KeyS:      func(s cidS) uint64 { return s.Key },
			Obs:       ObsConfig{Addr: "127.0.0.1:0", EventBuffer: 64},
			OnOutput:  func(Item[cidR, cidS]) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	// One warm-up round so lazily initialized runtime state (resolver,
	// pollers) does not count as a leak.
	if err := mk(2).Close(); err != nil {
		t.Fatal(err)
	}

	goroutines0 := runtime.NumGoroutine()
	fds0 := engineFDs(t)
	for i := 0; i < 12; i++ {
		eng := mk(1 + i%2)
		for j := 0; j < 8; j++ {
			if err := eng.PushR(cidR{Key: uint64(j), ID: j}, int64(j)); err != nil {
				t.Fatal(err)
			}
			if err := eng.PushS(cidS{Key: uint64(j), ID: j}, int64(j)); err != nil {
				t.Fatal(err)
			}
		}
		resp, err := client.Get("http://" + eng.ObsAddr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
	client.CloseIdleConnections()

	// Connections close asynchronously on the client side; allow the
	// counts a moment to settle before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		goroutines := runtime.NumGoroutine()
		fds := engineFDs(t)
		if goroutines <= goroutines0+2 && fds <= fds0+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak after 12 create/close cycles: goroutines %d -> %d, fds %d -> %d",
				goroutines0, goroutines, fds0, fds)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
