package handshakejoin

// Benchmarks, one per table and figure of the paper's evaluation (§7).
// Each testing.B bench runs a scaled-down configuration of the
// corresponding experiment and reports the paper's metric through
// b.ReportMetric; cmd/llhjbench runs the same experiments at full
// simulated scale and prints the complete series. EXPERIMENTS.md maps
// both to the paper's numbers.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"handshakejoin/internal/core"
	"handshakejoin/internal/experiments"
	"handshakejoin/internal/kang"
	"handshakejoin/internal/pipeline"
	"handshakejoin/internal/store"
	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// latencyBench runs one simulated latency experiment per iteration and
// reports steady-state average and maximum latency.
func latencyBench(b *testing.B, algo experiments.Algo, winR, winS int64, batch int) {
	b.Helper()
	var avg, max float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(experiments.Params{
			Algo: algo, Nodes: 8, RatePerSec: 100,
			WindowR: winR, WindowS: winS, Batch: batch,
			Duration: 5 * winR / 2, Domain: 300,
		})
		if err != nil {
			b.Fatal(err)
		}
		avg = res.SteadyAvg
		max = float64(res.SteadyMax)
	}
	b.ReportMetric(avg/1e6, "avg-latency-ms")
	b.ReportMetric(max/1e6, "max-latency-ms")
}

// BenchmarkFig5HSJLatency regenerates Figure 5: handshake join latency
// approaches WR·WS/(WR+WS) — here 2 s for symmetric 4 s windows (the
// paper's 200 s windows give 100 s).
func BenchmarkFig5HSJLatency(b *testing.B) {
	b.Run("WR=WS=4s", func(b *testing.B) {
		latencyBench(b, experiments.AlgoHSJ, 4e9, 4e9, 64)
	})
	b.Run("WR=2s,WS=4s", func(b *testing.B) {
		latencyBench(b, experiments.AlgoHSJ, 2e9, 4e9, 64)
	})
}

// BenchmarkFig19LLHJLatency regenerates Figure 19: LLHJ latency stays at
// the batching delay regardless of the window configuration.
func BenchmarkFig19LLHJLatency(b *testing.B) {
	b.Run("WR=WS=4s", func(b *testing.B) {
		latencyBench(b, experiments.AlgoLLHJ, 4e9, 4e9, 64)
	})
	b.Run("WR=2s,WS=4s", func(b *testing.B) {
		latencyBench(b, experiments.AlgoLLHJ, 2e9, 4e9, 64)
	})
}

// BenchmarkFig20SmallBatch regenerates Figure 20: batch size 4 divides
// the LLHJ latency by ~16 compared to batch 64.
func BenchmarkFig20SmallBatch(b *testing.B) {
	latencyBench(b, experiments.AlgoLLHJ, 4e9, 4e9, 4)
}

// BenchmarkFig17Throughput regenerates Figure 17: the maximum
// sustainable per-stream rate for HSJ, LLHJ and punctuated LLHJ at
// several pipeline widths (≈√n scaling, all three overlapping).
func BenchmarkFig17Throughput(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		for _, algo := range []experiments.Algo{experiments.AlgoHSJ, experiments.AlgoLLHJ, experiments.AlgoLLHJPunct} {
			b.Run(fmt.Sprintf("%v/cores=%d", algo, n), func(b *testing.B) {
				var rate float64
				for i := 0; i < b.N; i++ {
					p := experiments.Params{
						Algo: algo, Nodes: n, WindowR: 1e9, WindowS: 1e9,
						Batch: 16, Duration: 2e9, Cost: pipeline.CoarseCostModel(),
					}
					if algo == experiments.AlgoLLHJPunct {
						p.CollectPeriod = 50e6
					}
					r, err := experiments.MaxRate(p, 50, 6000, 5)
					if err != nil {
						b.Fatal(err)
					}
					rate = r
				}
				b.ReportMetric(rate, "tuples/sec")
			})
		}
	}
}

// BenchmarkFig18LatencyVsCores regenerates Figure 18: average latency
// by core count for both algorithms (HSJ window-bound, LLHJ flat).
func BenchmarkFig18LatencyVsCores(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		for _, algo := range []experiments.Algo{experiments.AlgoHSJ, experiments.AlgoLLHJ} {
			b.Run(fmt.Sprintf("%v/cores=%d", algo, n), func(b *testing.B) {
				var avg float64
				for i := 0; i < b.N; i++ {
					res, err := experiments.Run(experiments.Params{
						Algo: algo, Nodes: n, RatePerSec: 150,
						WindowR: 3e9, WindowS: 3e9, Batch: 64,
						Duration: 75e8, Domain: 300,
					})
					if err != nil {
						b.Fatal(err)
					}
					avg = res.SteadyAvg
				}
				b.ReportMetric(avg/1e6, "avg-latency-ms")
			})
		}
	}
}

// BenchmarkFig21SortBuffer regenerates Figure 21: the maximum buffer of
// the punctuation-driven sorting operator, by core count.
func BenchmarkFig21SortBuffer(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("cores=%d", n), func(b *testing.B) {
			var buf float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Run(experiments.Params{
					Algo: experiments.AlgoLLHJPunct, Nodes: n, RatePerSec: 200,
					WindowR: 3e9, WindowS: 3e9, Batch: 64,
					Duration: 9e9, Domain: 100, CollectPeriod: 50e6,
				})
				if err != nil {
					b.Fatal(err)
				}
				buf = float64(res.MaxSortBuffer)
			}
			b.ReportMetric(buf, "max-buffer-tuples")
		})
	}
}

// BenchmarkTable2Index regenerates Table 2: sustainable throughput with
// and without node-local hash indexes (paper: 5117 vs 225,234
// tuples/sec at 40 cores — a 44x speedup).
func BenchmarkTable2Index(b *testing.B) {
	for _, algo := range []experiments.Algo{experiments.AlgoHSJ, experiments.AlgoLLHJ, experiments.AlgoLLHJIndex} {
		b.Run(algo.String(), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.MaxRate(experiments.Params{
					Algo: algo, Nodes: 8, WindowR: 1e9, WindowS: 1e9,
					Batch: 16, Duration: 2e9, Cost: pipeline.CoarseCostModel(),
				}, 50, 60000, 5)
				if err != nil {
					b.Fatal(err)
				}
				rate = r
			}
			b.ReportMetric(rate, "tuples/sec")
		})
	}
}

// BenchmarkLivePipelineThroughput measures the real (wall-clock) tuple
// rate of the live goroutine runtime on this machine — not a paper
// figure, but the end-to-end cost of the Go implementation.
func BenchmarkLivePipelineThroughput(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var out sink[workload.RTuple, workload.STuple]
			eng, err := New(Config[workload.RTuple, workload.STuple]{
				Workers:     workers,
				Predicate:   workload.BandPredicate,
				WindowR:     Window{Count: 512},
				WindowS:     Window{Count: 512},
				Batch:       64,
				MaxInFlight: 8,
				OnOutput:    out.add,
			})
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.NewGenerator(workload.DefaultConfig(1e6))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := gen.NextR()
				s := gen.NextS()
				eng.PushR(r.Payload, r.TS)
				eng.PushS(s.Payload, s.TS)
			}
			b.StopTimer()
			eng.Close()
			b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "tuples/sec")
		})
	}
}

// shardedBenchConfig builds the equi-join configuration the sharded
// scaling benchmarks share: `shards` hash-partitioned pipelines of
// totalWorkers/shards nodes each, so every variant spends the same
// total worker budget.
func shardedBenchConfig(totalWorkers, shards int, idx IndexKind, out func(Item[workload.RTuple, workload.STuple])) Config[workload.RTuple, workload.STuple] {
	cfg := Config[workload.RTuple, workload.STuple]{
		Workers:     totalWorkers / shards,
		Shards:      shards,
		Predicate:   workload.EquiPredicate,
		WindowR:     Window{Count: 2048},
		WindowS:     Window{Count: 2048},
		Batch:       64,
		MaxInFlight: 8,
		Index:       idx,
		KeyR:        workload.RKey,
		KeyS:        workload.SKey,
		OnOutput:    out,
	}
	return cfg
}

// BenchmarkShardedThroughput compares the single-pipeline engine with
// the hash-sharded engine at equal total worker count on the equi-join
// workload — the scaling axis the paper does not explore (it scales one
// pipeline; sharding multiplies pipelines). cmd/llhjbench's `shard`
// experiment runs the same comparison at larger scale and records
// BENCH_shard.json.
func BenchmarkShardedThroughput(b *testing.B) {
	const totalWorkers = 8
	for _, shards := range []int{1, 2, 4, 8} {
		for _, idx := range []IndexKind{ScanIndex, HashIndex} {
			idxName := "scan"
			if idx == HashIndex {
				idxName = "hash"
			}
			name := fmt.Sprintf("shards=%d/workers=%d/index=%s", shards, totalWorkers/shards, idxName)
			b.Run(name, func(b *testing.B) {
				var out sink[workload.RTuple, workload.STuple]
				eng, err := New(shardedBenchConfig(totalWorkers, shards, idx, out.add))
				if err != nil {
					b.Fatal(err)
				}
				gen := workload.NewGenerator(workload.DefaultConfig(1e6))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r := gen.NextR()
					s := gen.NextS()
					eng.PushR(r.Payload, r.TS)
					eng.PushS(s.Payload, s.TS)
				}
				b.StopTimer()
				eng.Close()
				b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "tuples/sec")
			})
		}
	}
}

// BenchmarkShardedLatencyP99 measures the tail of the result latency
// distribution (emit wall time minus the later input's push wall time)
// under saturation, single-pipeline vs sharded at equal total workers.
func BenchmarkShardedLatencyP99(b *testing.B) {
	const totalWorkers = 8
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, totalWorkers/shards), func(b *testing.B) {
			var mu sync.Mutex
			var lats []int64
			out := func(it Item[workload.RTuple, workload.STuple]) {
				if it.Punct {
					return
				}
				p := it.Result.Pair
				in := p.R.Wall
				if p.S.Wall > in {
					in = p.S.Wall
				}
				mu.Lock()
				lats = append(lats, it.Result.At-in)
				mu.Unlock()
			}
			eng, err := New(shardedBenchConfig(totalWorkers, shards, ScanIndex, out))
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.NewGenerator(workload.DefaultConfig(1e6))
			// The metrics are percentiles over the result stream, not
			// per-op times, so make sure enough tuples flow even when
			// the harness probes with a tiny b.N.
			n := b.N
			if n < 50000 {
				n = 50000
			}
			b.ResetTimer()
			for i := 0; i < n; i++ {
				r := gen.NextR()
				s := gen.NextS()
				eng.PushR(r.Payload, r.TS)
				eng.PushS(s.Payload, s.TS)
			}
			b.StopTimer()
			eng.Close()
			mu.Lock()
			defer mu.Unlock()
			if len(lats) == 0 {
				b.Fatal("workload produced no results; latency undefined")
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			b.ReportMetric(float64(lats[len(lats)/2])/1e6, "p50-latency-ms")
			b.ReportMetric(float64(lats[len(lats)*99/100])/1e6, "p99-latency-ms")
		})
	}
}

// BenchmarkShardedConcurrentPush measures the ingress path of the
// sharded driver under concurrent pushers, with a never-matching
// predicate so the cost measured is routing, window accounting and
// pipeline hand-off rather than result assembly.
//
// The uniform case is aggregate throughput over well-spread keys. The
// hot-pusher-isolation case gives each pusher a disjoint key range
// (the usual shape when an already-partitioned upstream feeds the
// join) and dedicates one pusher to a single hot key whose shard
// saturates: the metric is the throughput of the other pushers while
// that one is stuck in back-pressure. Per-shard ingress gates let them
// proceed; the PR-1 driver held the whole stream side across the
// blocking lane append, so every pusher degraded to the hot shard's
// service rate.
func BenchmarkShardedConcurrentPush(b *testing.B) {
	const (
		pushers = 4 // per side
		shards  = 4
		keys    = 64
	)
	newEngine := func(b *testing.B) Joiner[cidR, cidS] {
		cfg := Config[cidR, cidS]{
			Workers:     2,
			Shards:      shards,
			Predicate:   func(r cidR, s cidS) bool { return r.Key == s.Key && r.ID < 0 },
			WindowR:     Window{Count: 512},
			WindowS:     Window{Count: 512},
			Batch:       16,
			MaxInFlight: 4,
			KeyR:        func(r cidR) uint64 { return r.Key },
			KeyS:        func(s cidS) uint64 { return s.Key },
			OnOutput:    func(Item[cidR, cidS]) {},
		}
		eng, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return eng
	}

	b.Run("uniform", func(b *testing.B) {
		eng := newEngine(b)
		perPusher := b.N/pushers + 1
		b.ResetTimer()
		var wg sync.WaitGroup
		for p := 0; p < pushers; p++ {
			p := p
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < perPusher; i++ {
					eng.PushR(cidR{Key: uint64((p*31 + i) % keys), ID: i}, 0)
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < perPusher; i++ {
					eng.PushS(cidS{Key: uint64((p*31 + i*7) % keys), ID: i}, 0)
				}
			}()
		}
		wg.Wait()
		b.StopTimer()
		eng.Close()
		b.ReportMetric(float64(2*pushers*perPusher)/b.Elapsed().Seconds(), "tuples/sec")
	})

	b.Run("hot-pusher-isolation", func(b *testing.B) {
		// The metric here is the *tail latency of a clean push* while a
		// hot pusher saturates its shard. With the side lock held
		// across a blocked lane append (the PR-1 driver), a clean push
		// routinely waits for a whole hot-shard drain; with per-shard
		// gates it never queues behind the hot shard at all. (Aggregate
		// throughput is deliberately not the headline: on a single-CPU
		// host, admitting the hot stream faster consumes the shared
		// core and the convoy effect masquerades as a throttle.)
		eng := newEngine(b)
		var stop atomic.Bool
		var hotWg sync.WaitGroup
		hotWg.Add(2)
		go func() { // hot pusher: one key, one saturated shard
			defer hotWg.Done()
			for i := 0; !stop.Load(); i++ {
				eng.PushR(cidR{Key: 0, ID: i}, 0)
			}
		}()
		go func() {
			defer hotWg.Done()
			for i := 0; !stop.Load(); i++ {
				eng.PushS(cidS{Key: 0, ID: i}, 0)
			}
		}()
		span := keys / pushers
		perPusher := b.N/(pushers-1) + 1
		var mu sync.Mutex
		var lats []int64
		b.ResetTimer()
		var wg sync.WaitGroup
		for p := 1; p < pushers; p++ {
			p := p
			wg.Add(2)
			go func() {
				defer wg.Done()
				var local []int64
				for i := 0; i < perPusher; i++ {
					start := time.Now()
					eng.PushR(cidR{Key: uint64(p*span + i%span), ID: i}, 0)
					local = append(local, int64(time.Since(start)))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < perPusher; i++ {
					eng.PushS(cidS{Key: uint64(p*span + (i*7)%span), ID: i}, 0)
				}
			}()
		}
		wg.Wait()
		b.StopTimer()
		stop.Store(true)
		hotWg.Wait()
		eng.Close()
		b.ReportMetric(float64(2*(pushers-1)*perPusher)/b.Elapsed().Seconds(), "clean-tuples/sec")
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		b.ReportMetric(float64(lats[len(lats)/2])/1e3, "clean-push-p50-us")
		b.ReportMetric(float64(lats[len(lats)*99/100])/1e3, "clean-push-p99-us")
		b.ReportMetric(float64(lats[len(lats)*999/1000])/1e3, "clean-push-p999-us")
	})
}

// BenchmarkShardedPushBatch measures the sharded ingress path by
// caller-batch size: the same tuple stream submitted per-tuple
// (batch-of-one) and in caller batches of 64 and 256. The predicate
// never matches and the nodes are hash-indexed over disjoint key
// domains, so probes are O(1) misses and the measured cost is the
// admission tax itself — side lock, routing, window accounting, expiry
// scheduling, gate tickets and lane hand-off. Run with -benchmem: the
// allocs/op contrast is the slice-pool and bulk-scheduling win.
// cmd/llhjbench's `ingest` experiment runs the same comparison at
// fixed scale and records BENCH_ingest.json.
func BenchmarkShardedPushBatch(b *testing.B) {
	const (
		shards = 4
		keys   = 1024
	)
	for _, cb := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("callerBatch=%d", cb), func(b *testing.B) {
			cfg := Config[cidR, cidS]{
				Workers:     1,
				Shards:      shards,
				Predicate:   func(r cidR, s cidS) bool { return r.Key == s.Key },
				WindowR:     Window{Count: 4096},
				WindowS:     Window{Count: 4096},
				Batch:       64,
				MaxInFlight: 16,
				Index:       HashIndex,
				KeyR:        func(r cidR) uint64 { return r.Key },
				KeyS:        func(s cidS) uint64 { return s.Key },
				OnOutput:    func(Item[cidR, cidS]) {},
			}
			eng, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rBuf := make([]Stamped[cidR], 0, cb)
			sBuf := make([]Stamped[cidS], 0, cb)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts := int64(i) * 1000
				// Disjoint domains: R keys and S keys never meet.
				r := cidR{Key: uint64(i*31) % keys, ID: i}
				s := cidS{Key: keys + uint64(i*17)%keys, ID: i}
				if cb == 1 {
					eng.PushR(r, ts)
					eng.PushS(s, ts)
					continue
				}
				rBuf = append(rBuf, Stamped[cidR]{Payload: r, TS: ts})
				sBuf = append(sBuf, Stamped[cidS]{Payload: s, TS: ts})
				if len(rBuf) == cb {
					eng.PushRBatch(rBuf)
					eng.PushSBatch(sBuf)
					rBuf = rBuf[:0]
					sBuf = sBuf[:0]
				}
			}
			eng.PushRBatch(rBuf)
			eng.PushSBatch(sBuf)
			b.StopTimer()
			eng.Close()
			b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "tuples/sec")
		})
	}
}

// BenchmarkNodeScan measures the raw per-arrival cost of an LLHJ node
// scanning its window fragment (the inner loop of everything above).
func BenchmarkNodeScan(b *testing.B) {
	for _, winSize := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("window=%d", winSize), func(b *testing.B) {
			cfg := &core.Config[workload.RTuple, workload.STuple]{Nodes: 1, Pred: workload.BandPredicate}
			node := core.NewNode(cfg, 0)
			gen := workload.NewGenerator(workload.DefaultConfig(1000))
			em := discard{}
			for i := 0; i < winSize; i++ {
				s := gen.NextS()
				node.HandleRight(core.Msg[workload.RTuple, workload.STuple]{
					Kind: core.KindArrival, Side: stream.S,
					S: []stream.Tuple[workload.STuple]{s},
				}, em)
			}
			rs := make([]stream.Tuple[workload.RTuple], b.N)
			for i := range rs {
				rs[i] = gen.NextR()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				node.HandleLeft(core.Msg[workload.RTuple, workload.STuple]{
					Kind: core.KindArrival, Side: stream.R,
					R: rs[i : i+1],
				}, em)
			}
		})
	}
}

// discard is a no-op emitter for micro-benchmarks.
type discard struct{}

func (discard) EmitLeft(core.Msg[workload.RTuple, workload.STuple])  {}
func (discard) EmitRight(core.Msg[workload.RTuple, workload.STuple]) {}
func (discard) EmitResult(stream.Pair[workload.RTuple, workload.STuple]) {
}
func (discard) StreamEnd(stream.Side, int64) {}
func (discard) Cost(int)                     {}

// BenchmarkKangBaseline measures the sequential three-step procedure for
// reference (the single-core lower bound every parallel operator is
// compared against).
func BenchmarkKangBaseline(b *testing.B) {
	for _, winSize := range []int{512, 4096} {
		b.Run(fmt.Sprintf("window=%d", winSize), func(b *testing.B) {
			j := kang.New(workload.BandPredicate, func(stream.Pair[workload.RTuple, workload.STuple]) {})
			gen := workload.NewGenerator(workload.DefaultConfig(1000))
			for i := 0; i < winSize; i++ {
				j.ProcessS(gen.NextS())
			}
			rs := make([]stream.Tuple[workload.RTuple], b.N)
			for i := range rs {
				rs[i] = gen.NextR()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j.ProcessR(rs[i])
				j.ExpireR(rs[i].Seq) // keep the R window flat
			}
		})
	}
}

// BenchmarkStoreIndexes compares the three node-local access paths on
// one window fragment (the ablation behind Table 2 and §9's future
// work).
func BenchmarkStoreIndexes(b *testing.B) {
	const n = 4096
	gen := workload.NewGenerator(workload.DefaultConfig(1000))
	ss := make([]stream.Tuple[workload.STuple], n)
	for i := range ss {
		ss[i] = gen.NextS()
	}
	probe := gen.NextR()

	b.Run("scan", func(b *testing.B) {
		w := store.NewWindow[workload.STuple]()
		for _, s := range ss {
			w.InsertSettled(s)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.ScanAll(func(s stream.Tuple[workload.STuple]) {
				_ = workload.BandPredicate(probe.Payload, s.Payload)
			})
		}
	})
	b.Run("hash", func(b *testing.B) {
		w := store.NewWindow(store.WithHashIndex(workload.SKey))
		for _, s := range ss {
			w.InsertSettled(s)
		}
		key := workload.RKey(probe.Payload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Probe(key, false, func(s stream.Tuple[workload.STuple]) {
				_ = workload.EquiPredicate(probe.Payload, s.Payload)
			})
		}
	})
	b.Run("btree-band", func(b *testing.B) {
		w := store.NewWindow(store.WithBTreeIndex(workload.SKey))
		for _, s := range ss {
			w.InsertSettled(s)
		}
		key := workload.RKey(probe.Payload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := uint64(0)
			if key > 10 {
				lo = key - 10
			}
			w.RangeProbe(lo, key+10, false, func(s stream.Tuple[workload.STuple]) {
				_ = workload.BandPredicate(probe.Payload, s.Payload)
			})
		}
	})
}

// measurePipelineAllocsPerTuple pushes batched tuples through a
// single-shard engine with the given pipeline width and returns the
// steady-state allocations per tuple. Disjoint key domains keep the
// predicate cold, isolating admission + window maintenance + the
// interior protocol traffic (acks, expedition-ends, expiry forwards)
// that multi-node pipelines generate per batch.
func measurePipelineAllocsPerTuple(t *testing.T, workers int) float64 {
	t.Helper()
	const (
		keys      = 512
		warm      = 20000
		measured  = 100000
		callerCap = 256
	)
	cfg := Config[cidR, cidS]{
		Workers:     workers,
		Predicate:   func(r cidR, s cidS) bool { return r.Key == s.Key },
		WindowR:     Window{Count: 2048},
		WindowS:     Window{Count: 2048},
		Batch:       64,
		MaxInFlight: 16,
		Index:       HashIndex,
		KeyR:        func(r cidR) uint64 { return r.Key },
		KeyS:        func(s cidS) uint64 { return s.Key },
		OnOutput:    func(Item[cidR, cidS]) {},
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rBuf := make([]Stamped[cidR], 0, callerCap)
	sBuf := make([]Stamped[cidS], 0, callerCap)
	push := func(from, to int) {
		for i := from; i < to; i++ {
			ts := int64(i) * 1000
			rBuf = append(rBuf, Stamped[cidR]{Payload: cidR{Key: uint64(i*31) % keys, ID: i}, TS: ts})
			sBuf = append(sBuf, Stamped[cidS]{Payload: cidS{Key: keys + uint64(i*17)%keys, ID: i}, TS: ts})
			if len(rBuf) == callerCap {
				if err := eng.PushRBatch(rBuf); err != nil {
					t.Fatal(err)
				}
				if err := eng.PushSBatch(sBuf); err != nil {
					t.Fatal(err)
				}
				rBuf, sBuf = rBuf[:0], sBuf[:0]
			}
		}
	}
	push(0, warm) // fill windows, warm every pool
	time.Sleep(50 * time.Millisecond)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	push(warm, warm+measured)
	time.Sleep(50 * time.Millisecond) // let interior traffic settle
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(2*measured)
}

// TestMultiWorkerAllocsMatchSingleWorker pins the interior-pipeline
// alloc fix: acks, expedition-end batches and expiry forwards travel in
// pooled buffers, so widening a pipeline from one node to three must
// not reintroduce per-batch-per-node allocations.
func TestMultiWorkerAllocsMatchSingleWorker(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	single := measurePipelineAllocsPerTuple(t, 1)
	multi := measurePipelineAllocsPerTuple(t, 3)
	t.Logf("allocs/tuple: single-worker %.4f, multi-worker %.4f", single, multi)
	// Identical modulo measurement noise: a per-node-per-batch leak at
	// batch 64 would add >= 3/64 ≈ 0.047 allocs/tuple on its own.
	if multi > single+0.02 {
		t.Fatalf("multi-worker allocs/tuple %.4f exceeds single-worker %.4f + 0.02: interior forwards are allocating again", multi, single)
	}
}
