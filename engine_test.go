package handshakejoin

import (
	"sync"
	"testing"
	"time"
)

// trade/quote payloads for an API-level equi-join scenario.
type trade struct {
	Sym int
	Px  float64
}

type quote struct {
	Sym int
	Bid float64
}

func symPred(t trade, q quote) bool { return t.Sym == q.Sym }

// sink collects output items thread-safely.
type sink[L, RT any] struct {
	mu    sync.Mutex
	items []Item[L, RT]
}

func (s *sink[L, RT]) add(it Item[L, RT]) {
	s.mu.Lock()
	s.items = append(s.items, it)
	s.mu.Unlock()
}

func (s *sink[L, RT]) snapshot() []Item[L, RT] {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Item[L, RT](nil), s.items...)
}

func TestEngineValidation(t *testing.T) {
	var out sink[trade, quote]
	cases := []Config[trade, quote]{
		{},                                      // no predicate
		{Predicate: symPred},                    // no output
		{Predicate: symPred, OnOutput: out.add}, // no windows
		{Predicate: symPred, OnOutput: out.add, WindowR: Window{Count: 5}}, // one window
		{Predicate: symPred, OnOutput: out.add, WindowR: Window{Count: 5},
			WindowS: Window{Count: 5}, Workers: -1},
		{Predicate: symPred, OnOutput: out.add, WindowR: Window{Count: 5},
			WindowS: Window{Count: 5}, Algorithm: HSJ, Punctuate: true},
		{Predicate: symPred, OnOutput: out.add, WindowR: Window{Count: 5},
			WindowS: Window{Count: 5}, Index: HashIndex},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestEngineCountWindowJoin(t *testing.T) {
	var out sink[trade, quote]
	eng, err := New(Config[trade, quote]{
		Workers:     3,
		Predicate:   symPred,
		WindowR:     Window{Count: 100},
		WindowS:     Window{Count: 100},
		Batch:       2,
		MaxInFlight: 4,
		OnOutput:    out.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Push matching pairs: trade i and quote i share Sym i%20, so
	// within a window of 100 every tuple matches several counterparts.
	const n = 400
	for i := 0; i < n; i++ {
		ts := int64(i) * 1e6
		if err := eng.PushR(trade{Sym: i % 20, Px: float64(i)}, ts); err != nil {
			t.Fatal(err)
		}
		if err := eng.PushS(quote{Sym: i % 20, Bid: float64(i)}, ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.RIn != n || st.SIn != n {
		t.Fatalf("pushed (%d, %d), want (%d, %d)", st.RIn, st.SIn, n, n)
	}
	// Expected matches: trade i and quote j join iff i ≡ j (mod 20)
	// and |i−j| is inside the 100-tuple windows. Distances are
	// multiples of 20, so only |i−j| = 100 sits on the (batch-granular)
	// window boundary: pairs at distance <= 80 must all appear, pairs
	// at distance >= 120 must not, and distance-100 pairs may go either
	// way depending on which batch carried the expiry.
	items := out.snapshot()
	if uint64(len(items)) != st.Results {
		t.Fatalf("output items = %d, stats say %d", len(items), st.Results)
	}
	seen := map[[2]uint64]bool{}
	for _, it := range items {
		r, q := it.Result.Pair.R, it.Result.Pair.S
		k := [2]uint64{r.Seq, q.Seq}
		if seen[k] {
			t.Fatalf("duplicate output pair %v", k)
		}
		seen[k] = true
		if r.Payload.Sym != q.Payload.Sym {
			t.Fatalf("non-matching pair emitted: %+v", k)
		}
		if d := dist(r.Seq, q.Seq); d >= 120 {
			t.Fatalf("pair %v at distance %d escaped the window", k, d)
		}
	}
	var sure, boundary uint64
	for i := uint64(0); i < n; i++ {
		for j := uint64(0); j < n; j++ {
			if i%20 != j%20 {
				continue
			}
			switch d := dist(i, j); {
			case d <= 80:
				sure++
				if !seen[[2]uint64{i, j}] {
					t.Fatalf("missing in-window pair (%d, %d)", i, j)
				}
			case d == 100:
				boundary++
			}
		}
	}
	if st.Results < sure || st.Results > sure+boundary {
		t.Fatalf("results = %d, want in [%d, %d]", st.Results, sure, sure+boundary)
	}
	if st.PendingExpiries != 0 {
		t.Errorf("pending expiries: %d", st.PendingExpiries)
	}
}

func dist(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestEngineOrderedOutput(t *testing.T) {
	var out sink[trade, quote]
	eng, err := New(Config[trade, quote]{
		Workers:       4,
		Predicate:     symPred,
		WindowR:       Window{Duration: 50 * time.Millisecond},
		WindowS:       Window{Duration: 50 * time.Millisecond},
		Batch:         4,
		MaxInFlight:   4,
		Ordered:       true,
		CollectPeriod: 200 * time.Microsecond,
		OnOutput:      out.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().UnixNano()
	for i := 0; i < 600; i++ {
		ts := base + int64(i)*1e5
		eng.PushR(trade{Sym: i % 10}, ts)
		eng.PushS(quote{Sym: i % 10}, ts)
		if i%50 == 0 {
			time.Sleep(time.Millisecond) // let the collector punctuate
		}
	}
	eng.Close()

	items := out.snapshot()
	var lastTS int64 = -1 << 62
	results, puncts := 0, 0
	for _, it := range items {
		if it.Punct {
			puncts++
			continue
		}
		results++
		if ts := it.Result.Pair.TS(); ts < lastTS {
			t.Fatalf("ordered output regressed: %d after %d", ts, lastTS)
		} else {
			lastTS = ts
		}
	}
	if results == 0 {
		t.Fatal("no results")
	}
	if puncts == 0 {
		t.Fatal("no punctuations forwarded")
	}
	st := eng.Stats()
	if st.MaxSortBuffer == 0 {
		t.Fatal("sort buffer never used")
	}
	if st.MaxSortBuffer > results/2 {
		t.Errorf("sort buffer %d held more than half of %d results; punctuations too sparse",
			st.MaxSortBuffer, results)
	}
}

func TestEngineHSJBaseline(t *testing.T) {
	var out sink[trade, quote]
	eng, err := New(Config[trade, quote]{
		Algorithm:   HSJ,
		Workers:     3,
		Predicate:   symPred,
		WindowR:     Window{Count: 60},
		WindowS:     Window{Count: 60},
		Batch:       2,
		MaxInFlight: 4,
		OnOutput:    out.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		ts := int64(i) * 1e6
		eng.PushR(trade{Sym: i % 15}, ts)
		eng.PushS(quote{Sym: i % 15}, ts)
	}
	eng.Close()
	items := out.snapshot()
	if len(items) == 0 {
		t.Fatal("HSJ produced nothing")
	}
	seen := map[[2]uint64]bool{}
	for _, it := range items {
		k := [2]uint64{it.Result.Pair.R.Seq, it.Result.Pair.S.Seq}
		if seen[k] {
			t.Fatalf("duplicate pair %v", k)
		}
		seen[k] = true
	}
}

func TestEngineHashIndexEquiJoin(t *testing.T) {
	var plain, indexed sink[trade, quote]
	run := func(idx IndexKind, out *sink[trade, quote]) Stats {
		cfg := Config[trade, quote]{
			Workers:     3,
			Predicate:   symPred,
			WindowR:     Window{Count: 80},
			WindowS:     Window{Count: 80},
			Batch:       2,
			MaxInFlight: 4,
			Index:       idx,
			OnOutput:    out.add,
		}
		if idx != ScanIndex {
			cfg.KeyR = func(t trade) uint64 { return uint64(t.Sym) }
			cfg.KeyS = func(q quote) uint64 { return uint64(q.Sym) }
		}
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			ts := int64(i) * 1e6
			eng.PushR(trade{Sym: i % 12}, ts)
			eng.PushS(quote{Sym: i % 12}, ts)
		}
		eng.Close()
		return eng.Stats()
	}
	stPlain := run(ScanIndex, &plain)
	stIdx := run(HashIndex, &indexed)
	if stPlain.Results != stIdx.Results {
		t.Fatalf("indexed engine found %d results, scan found %d", stIdx.Results, stPlain.Results)
	}
	if stIdx.Comparisons >= stPlain.Comparisons {
		t.Errorf("hash index inspected %d entries, scan %d; index should inspect fewer",
			stIdx.Comparisons, stPlain.Comparisons)
	}
}

func TestEngineTimestampRegressionRejected(t *testing.T) {
	eng, err := New(Config[trade, quote]{
		Predicate: symPred,
		WindowR:   Window{Count: 10},
		WindowS:   Window{Count: 10},
		OnOutput:  func(Item[trade, quote]) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.PushR(trade{}, 100); err != nil {
		t.Fatal(err)
	}
	if err := eng.PushR(trade{}, 99); err == nil {
		t.Fatal("regressed timestamp accepted")
	}
	if err := eng.PushS(quote{}, 100); err != nil {
		t.Fatal(err)
	}
	if err := eng.PushS(quote{}, 50); err == nil {
		t.Fatal("regressed S timestamp accepted")
	}
}

func TestEngineCloseIdempotentAndPushAfterClose(t *testing.T) {
	eng, err := New(Config[trade, quote]{
		Predicate: symPred,
		WindowR:   Window{Count: 10},
		WindowS:   Window{Count: 10},
		OnOutput:  func(Item[trade, quote]) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal("second close errored")
	}
	if err := eng.PushR(trade{}, 1); err == nil {
		t.Fatal("push after close accepted")
	}
}

func TestEngineTickSlidesWindows(t *testing.T) {
	var out sink[trade, quote]
	eng, err := New(Config[trade, quote]{
		Workers:     2,
		Predicate:   symPred,
		WindowR:     Window{Duration: time.Duration(10) * time.Millisecond},
		WindowS:     Window{Duration: time.Duration(10) * time.Millisecond},
		Batch:       1,
		MaxInFlight: 4,
		OnOutput:    out.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushS(quote{Sym: 1}, 0)
	// Advance stream time past the S tuple's expiry, then push a
	// matching R tuple: it must not join.
	eng.Tick(20e6)
	eng.PushR(trade{Sym: 1}, 25e6)
	eng.Close()
	for _, it := range out.snapshot() {
		if !it.Punct {
			t.Fatalf("expired tuple joined: %+v", it.Result.Pair)
		}
	}
}
