package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"handshakejoin/internal/fault"
)

// TestWALFaultMatrix drives the documented recovery outcome for each
// injected disk fault: what is lost, what Reseat recovers, and what a
// crash at the worst instant leaves behind.
func TestWALFaultMatrix(t *testing.T) {
	t.Run("fsync fail at op N, transient", func(t *testing.T) {
		dir := t.TempDir()
		plan := fault.NewPlan(fault.Rule{Op: fault.OpSync, Nth: 3, Err: fault.ErrInjected})
		l, err := Open(dir, Options{SyncEvery: 1, FS: fault.Inject(nil, plan)})
		if err != nil {
			t.Fatal(err)
		}
		var failedIdx uint64
		fails := 0
		for i := 0; i < 6; i++ {
			idx, _, err := l.Append(KindR, []byte(fmt.Sprintf("rec-%d", i)))
			if err != nil {
				if !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("append %d: %v", i, err)
				}
				fails++
				failedIdx = idx
				// The write reached the file; only the fsync failed.
				// Reseat re-anchors and forces a fresh fsync, after
				// which the record counts as durable: Next == idx+1.
				lost, rerr := l.Reseat()
				if rerr != nil || lost != 0 {
					t.Fatalf("Reseat: lost=%d err=%v", lost, rerr)
				}
				if l.Next() != idx+1 {
					t.Fatalf("Next after reseat = %d, want %d", l.Next(), idx+1)
				}
			}
		}
		if fails != 1 || failedIdx != 2 {
			t.Fatalf("fails=%d failedIdx=%d, want one failure at idx 2", fails, failedIdx)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if got := len(replayAll(t, dir, 0)); got != 6 {
			t.Fatalf("replayed %d, want all 6 (transient fsync fault loses nothing)", got)
		}
	})

	t.Run("ENOSPC during rotation", func(t *testing.T) {
		dir := t.TempDir()
		plan := fault.NewPlan(fault.Rule{Op: fault.OpCreate, Nth: 2, Err: syscall.ENOSPC})
		l, err := Open(dir, Options{SyncEvery: 1, SegmentBytes: 64, FS: fault.Inject(nil, plan)})
		if err != nil {
			t.Fatal(err)
		}
		appended, fails := 0, 0
		for i := 0; i < 12; i++ {
			idx, _, err := l.Append(KindS, []byte(fmt.Sprintf("payload-%02d", i)))
			if err != nil {
				if !errors.Is(err, syscall.ENOSPC) {
					t.Fatalf("append %d: %v", i, err)
				}
				fails++
				// The record itself was written and fsynced into the
				// old segment before the new segment's create failed.
				lost, rerr := l.Reseat()
				if rerr != nil || lost != 0 {
					t.Fatalf("Reseat: lost=%d err=%v", lost, rerr)
				}
				if l.Next() != idx+1 {
					t.Fatalf("Next after reseat = %d, want %d (record survived)", l.Next(), idx+1)
				}
			}
			appended++
		}
		if fails != 1 {
			t.Fatalf("fails = %d, want exactly one ENOSPC rotation failure", fails)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if got := len(replayAll(t, dir, 0)); got != appended {
			t.Fatalf("replayed %d, want %d (ENOSPC at rotation loses nothing)", got, appended)
		}
	})

	t.Run("torn write in final frame, crash", func(t *testing.T) {
		dir := t.TempDir()
		plan := fault.NewPlan(fault.Rule{Op: fault.OpWrite, Nth: 4, TornBytes: 5, Err: syscall.EIO})
		l, err := Open(dir, Options{SyncEvery: 1, FS: fault.Inject(nil, plan)})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, _, err := l.Append(KindR, []byte(fmt.Sprintf("ok-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := l.Append(KindR, []byte("torn-record")); !errors.Is(err, syscall.EIO) {
			t.Fatalf("append 3 = %v, want injected EIO", err)
		}
		// Crash here: no Reseat, no Close. The unacknowledged record's
		// torn 5 bytes are on disk; replay must end cleanly before it.
		if got := replayAll(t, dir, 0); len(got) != 3 {
			t.Fatalf("replayed %d, want the 3 acked records (torn tail dropped)", len(got))
		}
		// And a reopened log appends over the torn tail.
		l2, err := Open(dir, Options{SyncEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		if l2.Next() != 3 {
			t.Fatalf("Next after reopen = %d, want 3", l2.Next())
		}
		appendN(t, l2, 2, 3)
		l2.Close()
		if got := len(replayAll(t, dir, 0)); got != 5 {
			t.Fatalf("replayed %d, want 5", got)
		}
	})

	t.Run("torn write recovered by reseat and re-append", func(t *testing.T) {
		dir := t.TempDir()
		plan := fault.NewPlan(fault.Rule{Op: fault.OpWrite, Nth: 3, TornBytes: 7, Err: syscall.EIO})
		l, err := Open(dir, Options{SyncEvery: 1, FS: fault.Inject(nil, plan)})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			payload := []byte(fmt.Sprintf("rec-%d", i))
			idx, _, err := l.Append(KindR, payload)
			if err != nil {
				if !errors.Is(err, syscall.EIO) {
					t.Fatal(err)
				}
				// lost == 1 is the torn record itself, which was never
				// acknowledged: Append had already claimed its index
				// before the flush tore.
				lost, rerr := l.Reseat()
				if rerr != nil || lost != 1 {
					t.Fatalf("Reseat: lost=%d err=%v, want lost=1 (the unacked torn record)", lost, rerr)
				}
				if l.Next() != idx {
					t.Fatalf("Next after reseat = %d, want %d (torn record gone)", l.Next(), idx)
				}
				if _, _, err := l.Append(KindR, payload); err != nil {
					t.Fatalf("re-append: %v", err)
				}
			}
		}
		l.Close()
		if got := len(replayAll(t, dir, 0)); got != 5 {
			t.Fatalf("replayed %d, want 5 after reseat + re-append", got)
		}
	})

	t.Run("crash between segment create and dir sync", func(t *testing.T) {
		dir := t.TempDir()
		plan := fault.NewPlan(fault.Rule{Op: fault.OpSyncDir, Nth: 2, Err: syscall.EIO})
		l, err := Open(dir, Options{SyncEvery: 1, SegmentBytes: 64, FS: fault.Inject(nil, plan)})
		if err != nil {
			t.Fatal(err)
		}
		acked := 0
		var ferr error
		for i := 0; i < 12 && ferr == nil; i++ {
			_, _, err := l.Append(KindR, []byte(fmt.Sprintf("payload-%02d", i)))
			if err != nil {
				ferr = err
				// The record that triggered the rotation was fsynced
				// into the old segment before the dir sync failed, so
				// it is durable even though this Append errored.
				acked++
				break
			}
			acked++
		}
		if !errors.Is(ferr, syscall.EIO) {
			t.Fatalf("expected dir-sync failure, got %v after %d appends", ferr, acked)
		}
		// Crash now: the new segment's directory entry was never made
		// durable. Emulate the loss precisely from the plan's records.
		lostEntries := plan.UnsyncedEntries()
		if len(lostEntries) == 0 {
			t.Fatal("plan tracked no unsynced entries at the failed rotation")
		}
		for _, p := range lostEntries {
			if err := os.Remove(p); err != nil {
				t.Fatal(err)
			}
		}
		if got := len(replayAll(t, dir, 0)); got != acked {
			t.Fatalf("replayed %d, want every durable record (%d)", got, acked)
		}
	})

	t.Run("successful rotation leaves no unsynced entries", func(t *testing.T) {
		dir := t.TempDir()
		plan := fault.NewPlan() // armed but empty: pure tracking
		l, err := Open(dir, Options{SyncEvery: 1, SegmentBytes: 64, FS: fault.Inject(nil, plan)})
		if err != nil {
			t.Fatal(err)
		}
		rotations := 0
		for i := 0; i < 20; i++ {
			_, rot, err := l.Append(KindR, []byte(fmt.Sprintf("payload-%02d", i)))
			if err != nil {
				t.Fatal(err)
			}
			if rot {
				rotations++
			}
			if got := plan.UnsyncedEntries(); len(got) != 0 {
				t.Fatalf("unsynced dir entries after append %d: %v (segment create must dir-sync)", i, got)
			}
		}
		if rotations == 0 {
			t.Fatal("expected rotations")
		}
		l.Close()
	})
}

// TestReplayDeliversPrefixOnMidLogCorruption pins the salvage
// contract: a corrupt mid-log segment still yields its valid prefix
// (and all earlier segments) before the ErrCorrupt error, with the
// error spelling out how many acknowledged records are gone.
func TestReplayDeliversPrefixOnMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 1, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, _, err := l.Append(KindR, []byte(fmt.Sprintf("payload-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs := mustSegments(t, dir)
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Corrupt the second segment's first frame: everything in it and
	// after it is lost, everything before survives.
	mid := segs[1]
	path := dir + "/" + segName(mid)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[headerLen+1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	n, rerr := Replay(dir, 0, func(r Record) error {
		got = append(got, r.Idx)
		return nil
	})
	if !errors.Is(rerr, ErrCorrupt) {
		t.Fatalf("Replay error = %v, want ErrCorrupt", rerr)
	}
	if n != int(mid) || len(got) != int(mid) {
		t.Fatalf("delivered %d records (n=%d), want the full prefix %d", len(got), n, mid)
	}
	for i, idx := range got {
		if idx != uint64(i) {
			t.Fatalf("prefix record %d has idx %d", i, idx)
		}
	}
}

func TestDropFromRemovesRejectedTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 6, 0)
	if err := l.DropFrom(4); err != nil {
		t.Fatal(err)
	}
	if l.Next() != 4 {
		t.Fatalf("Next after DropFrom(4) = %d, want 4", l.Next())
	}
	// The log must keep appending cleanly at the new tail.
	appendN(t, l, 3, 4)
	l.Close()
	recs := replayAll(t, dir, 0)
	if len(recs) != 7 || recs[6].Idx != 6 {
		t.Fatalf("replayed %d records, last idx %d; want 7 ending at 6", len(recs), recs[len(recs)-1].Idx)
	}
}

func TestDropFromAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 1, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, _, err := l.Append(KindR, []byte(fmt.Sprintf("payload-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs := mustSegments(t, dir)
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	cut := segs[1] + 1 // one record into the second segment
	if err := l.DropFrom(cut); err != nil {
		t.Fatal(err)
	}
	if l.Next() != cut {
		t.Fatalf("Next = %d, want %d", l.Next(), cut)
	}
	appendN(t, l, 2, int(cut))
	l.Close()
	recs := replayAll(t, dir, 0)
	if len(recs) != int(cut)+2 {
		t.Fatalf("replayed %d, want %d", len(recs), int(cut)+2)
	}
}

// recordFS wraps the real filesystem and logs sync/close events per
// file so tests can pin teardown ordering.
type recordFS struct {
	fault.FS
	mu        sync.Mutex
	events    []string
	syncDelay time.Duration
}

func (r *recordFS) note(ev string) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *recordFS) OpenFile(name string, flag int, perm os.FileMode) (fault.File, error) {
	f, err := r.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &recordFile{File: f, fs: r}, nil
}

type recordFile struct {
	fault.File
	fs *recordFS
}

func (f *recordFile) Sync() error {
	f.fs.note("sync-start")
	if f.fs.syncDelay > 0 {
		time.Sleep(f.fs.syncDelay)
	}
	err := f.File.Sync()
	f.fs.note("sync-end")
	return err
}

func (f *recordFile) Close() error {
	f.fs.note("close")
	return f.File.Close()
}

// TestCloseJoinsAsyncSyncer pins the teardown order of the background
// fsync goroutine: Close must join it before closing the file, so no
// fsync ever starts after — or runs concurrently with — the close of
// the descriptor it targets.
func TestCloseJoinsAsyncSyncer(t *testing.T) {
	for round := 0; round < 20; round++ {
		dir := t.TempDir()
		rfs := &recordFS{FS: fault.OS, syncDelay: 2 * time.Millisecond}
		l, err := Open(dir, Options{SyncEvery: 1, AsyncSync: true, FS: rfs})
		if err != nil {
			t.Fatal(err)
		}
		// Queue a sync request and close immediately, while the slow
		// background fsync is still in flight.
		for i := 0; i < 3; i++ {
			if _, _, err := l.Append(KindR, []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		rfs.mu.Lock()
		events := append([]string(nil), rfs.events...)
		rfs.mu.Unlock()
		closed := false
		for _, ev := range events {
			switch ev {
			case "close":
				closed = true
			case "sync-start":
				if closed {
					t.Fatalf("round %d: fsync started after file close: %v", round, events)
				}
			case "sync-end":
				if closed {
					t.Fatalf("round %d: fsync still in flight across file close: %v", round, events)
				}
			}
		}
		if !closed {
			t.Fatalf("round %d: no close recorded: %v", round, events)
		}
	}
}
