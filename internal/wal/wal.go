// Package wal is the engine's append-only ingress log: every admitted
// batch (and every explicit Tick) becomes one CRC-framed record in a
// sequence of segment files, so that recovery can restore the last
// checkpoint's consistent cut and replay the records admitted after it
// through the ordinary push paths.
//
// # Record framing
//
// A record is
//
//	u64 idx | u8 kind | u32 len | payload[len] | u32 crc
//
// little-endian, where idx is the record's position in the global
// record sequence (the first record ever appended has idx 0), kind is
// one of the Kind* constants, and crc is IEEE CRC-32 over everything
// before it (header plus payload). The global index is redundant with
// the record's position in the file — that redundancy is the point:
// a record is accepted on read only when its CRC verifies and its idx
// matches the position implied by the segment name, so a torn write,
// a truncated tail, or a misdirected block all read as "log ends
// here", never as a silently wrong record.
//
// # Segments
//
// Records are packed into segment files named wal-%016x.seg by the
// global index of their first record. When the active segment reaches
// the segment-size threshold it is fsynced and closed, and the next
// record starts a new segment; because rotation always syncs, only the
// final segment of a crashed process can have a torn tail. Open scans
// that final segment, truncates it at the first invalid record, and
// resumes appending after the last valid one. TruncateThrough deletes
// segments whose records are all covered by a checkpoint.
//
// # Sync policy
//
// SyncEvery = n fsyncs the active segment after every n appended
// records; n <= 0 leaves syncing to the OS (plus the forced syncs at
// rotation, checkpoint and Close). Durability of the tail is exactly
// the usual group-commit trade: records since the last fsync can be
// lost with the process, which recovery tolerates by construction —
// the log is replayed as far as it verifiably extends.
//
// Appends are group-committed: with SyncEvery > 0 record frames
// accumulate in a process-local buffer and reach the file in one write
// immediately before each fsync, so a sync window costs one write and
// one sync syscall instead of n writes — the loss window is unchanged
// (everything since the last fsync, already the documented contract).
// With SyncEvery <= 0 every append is flushed to the OS at once, so
// the tail survives a process crash as long as the kernel does.
//
// # Crash consistency and fault recovery
//
// Directory entries are fsynced where they matter: segment creation
// (first open and every rotation) syncs the WAL directory before the
// append that caused it returns, so an acknowledged record can never
// sit in a segment whose directory entry a crash could erase.
//
// All filesystem access goes through a fault.FS (Options.FS), the
// injection seam used by the fault-matrix and chaos tests. After a
// failed Append the log may hold a torn frame and carries a sticky
// error; Reseat re-derives the durable tail from disk and re-arms
// appending, and DropFrom removes records the caller has decided to
// reject (an append that could not be made durable), so replay never
// resurrects a push the caller saw fail.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"handshakejoin/internal/fault"
)

// Record kinds. The payload of KindR/KindS is an encoded batch of R/S
// tuples (the engine's batch codec); KindTick carries the 8-byte
// timestamp of an explicit Tick.
const (
	KindR    byte = 1
	KindS    byte = 2
	KindTick byte = 3
)

const (
	headerLen = 8 + 1 + 4 // idx + kind + len
	crcLen    = 4
	segPrefix = "wal-"
	segSuffix = ".seg"

	// DefaultSegmentBytes rotates segments at 4 MiB.
	DefaultSegmentBytes = 4 << 20
)

// Record is one decoded log record.
type Record struct {
	Idx     uint64
	Kind    byte
	Payload []byte
}

// Options parameterize Open.
type Options struct {
	// SyncEvery fsyncs after every n appended records; <= 0 syncs only
	// at rotation, Sync and Close.
	SyncEvery int
	// AsyncSync moves the SyncEvery fsync off the append path: at each
	// sync point the accumulated frames reach the file in one buffered
	// write and a background goroutine runs the fsync, so appends
	// overlap the disk instead of serializing behind it. The loss
	// window grows to "since the last *completed* background fsync" —
	// when the disk keeps up, one sync window; when it falls behind,
	// pending sync points coalesce and the window stretches with the
	// disk's backlog, which recovery tolerates by construction. A
	// failed background fsync is sticky: the next Append, Sync or
	// Close reports it. Ignored when SyncEvery <= 0.
	AsyncSync bool
	// SegmentBytes is the rotation threshold; <= 0 selects
	// DefaultSegmentBytes.
	SegmentBytes int64
	// FS is the filesystem seam; nil selects the real filesystem
	// (fault.OS). Tests arm it with fault.Inject to drive disk faults
	// deterministically.
	FS fault.FS
}

// ErrCorrupt marks a replay that hit an invalid record before the
// final segment's tail — acknowledged data is missing. Replay still
// delivers the valid prefix before reporting it.
var ErrCorrupt = errors.New("wal: corrupt mid-log")

// Log is an append-only segment log. Appends are serialized by an
// internal mutex; reads (Replay) open the files independently.
type Log struct {
	dir string
	opt Options
	fs  fault.FS

	mu       sync.Mutex
	f        fault.File
	w        *bufio.Writer // group-commit buffer over f; see package doc
	closed   bool
	segStart uint64 // idx of the active segment's first record
	segSize  int64  // bytes written to the active segment
	next     uint64 // idx the next Append returns
	unsynced int
	bytes    uint64 // total bytes appended this process
	scratch  []byte

	// Background syncer state (Options.AsyncSync). syncReq carries
	// coalesced sync requests; syncDone closes when the goroutine
	// exits; asyncErr is the sticky first background-fsync failure.
	syncReq  chan struct{}
	syncDone chan struct{}
	asyncErr error
}

// walBufBytes sizes the group-commit buffer: large enough that a sync
// window of typical batch records reaches the file in one write.
const walBufBytes = 64 << 10

// setFile points the log at a (re)opened active segment, resetting the
// group-commit buffer onto it.
func (l *Log) setFile(f fault.File) {
	l.f = f
	if l.w == nil {
		l.w = bufio.NewWriterSize(f, walBufBytes)
	} else {
		l.w.Reset(f)
	}
}

// flushSync drains the group-commit buffer and fsyncs the active
// segment. Callers hold l.mu.
func (l *Log) flushSync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.unsynced = 0
	return nil
}

// startSyncer launches the background fsync goroutine (AsyncSync): it
// drains coalesced requests from syncReq, flushes the buffer under the
// lock, and runs the fsync with the lock released so appends proceed
// while the disk works.
func (l *Log) startSyncer() {
	// The goroutine ranges over its own copy of the channel: Close nils
	// l.syncReq, and an immediate Close could otherwise win that race
	// before the goroutine first reads the field, leaving it blocked on
	// a nil channel forever.
	req := make(chan struct{}, 1)
	l.syncReq = req
	l.syncDone = make(chan struct{})
	go func() {
		defer close(l.syncDone)
		for range req {
			l.mu.Lock()
			f := l.f
			var err error
			if f != nil {
				err = l.w.Flush()
			}
			l.mu.Unlock()
			if f == nil {
				continue
			}
			if err == nil {
				err = f.Sync() // off-lock: the disk and appends overlap
			}
			if err != nil {
				l.mu.Lock()
				// Rotation and Close both fsync before closing the
				// file, so an error against a since-replaced file is
				// the close racing the sync, not lost data.
				if l.asyncErr == nil && l.f == f {
					l.asyncErr = err
				}
				l.mu.Unlock()
			}
		}
	}()
}

func segName(first uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listSegments returns the segment first-indexes in dir, ascending.
func listSegments(fsys fault.FS, dir string) ([]uint64, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range ents {
		if first, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			segs = append(segs, first)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// scanSegment reads records from path expecting the first record to
// carry idx first. It returns the records (payloads copied), and the
// byte offset of the first invalid frame — the valid prefix length.
func scanSegment(fsys fault.FS, path string, first uint64) (recs []Record, validBytes int64, err error) {
	buf, err := fsys.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	off := int64(0)
	idx := first
	for int64(len(buf))-off >= headerLen+crcLen {
		h := buf[off:]
		gotIdx := binary.LittleEndian.Uint64(h)
		kind := h[8]
		plen := int64(binary.LittleEndian.Uint32(h[9:]))
		if gotIdx != idx || kind < KindR || kind > KindTick {
			break
		}
		end := off + headerLen + plen + crcLen
		if plen < 0 || end > int64(len(buf)) {
			break
		}
		body := buf[off : off+headerLen+plen]
		want := binary.LittleEndian.Uint32(buf[off+headerLen+plen:])
		if crc32.ChecksumIEEE(body) != want {
			break
		}
		payload := make([]byte, plen)
		copy(payload, buf[off+headerLen:])
		recs = append(recs, Record{Idx: idx, Kind: kind, Payload: payload})
		off = end
		idx++
	}
	return recs, off, nil
}

// Open creates dir if needed, truncates any torn tail of the last
// segment, and returns a log appending after the last valid record.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = fault.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt, fs: fsys}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.openSegment(0); err != nil {
			return nil, err
		}
		if opt.SyncEvery > 0 && opt.AsyncSync {
			l.startSyncer()
		}
		return l, nil
	}
	last := segs[len(segs)-1]
	path := filepath.Join(dir, segName(last))
	recs, valid, err := scanSegment(fsys, path, last)
	if err != nil {
		return nil, err
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.setFile(f)
	l.segStart = last
	l.segSize = valid
	l.next = last + uint64(len(recs))
	if opt.SyncEvery > 0 && opt.AsyncSync {
		l.startSyncer()
	}
	return l, nil
}

func (l *Log) openSegment(first uint64) error {
	f, err := l.fs.OpenFile(filepath.Join(l.dir, segName(first)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	l.setFile(f)
	l.segStart = first
	l.segSize = 0
	// Make the new segment's directory entry durable before any record
	// in it is acknowledged: without this, a crash after rotation could
	// erase the entry and Replay would silently report a shorter log
	// than was acked. A failure surfaces on the append that rotated;
	// Reseat re-syncs the directory when it recovers.
	return l.fs.SyncDir(l.dir)
}

// Next returns the index the next appended record will carry.
func (l *Log) Next() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Bytes returns the total bytes appended by this process.
func (l *Log) Bytes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Append writes one record and returns its index. rotated reports that
// the append closed the previous segment and started a new one (the
// closed segment was fsynced first).
//
// On error idx still reports the index the record would have carried:
// after a Reseat the caller compares it against Next() to learn whether
// the record survived (Next == idx+1), must be re-appended (Next ==
// idx), or whether earlier acknowledged records were lost (Next < idx).
func (l *Log) Append(kind byte, payload []byte) (idx uint64, rotated bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.next, false, fault.Permanent(fmt.Errorf("wal: log closed"))
	}
	if l.f == nil {
		return l.next, false, fmt.Errorf("wal: log needs reseat after failed rotation")
	}
	if l.asyncErr != nil {
		return l.next, false, l.asyncErr
	}
	idx = l.next
	need := headerLen + len(payload) + crcLen
	if cap(l.scratch) < need {
		l.scratch = make([]byte, 0, need*2)
	}
	b := l.scratch[:0]
	b = binary.LittleEndian.AppendUint64(b, idx)
	b = append(b, kind)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	l.scratch = b
	if _, err := l.w.Write(b); err != nil {
		return idx, false, err
	}
	l.next++
	l.segSize += int64(len(b))
	l.bytes += uint64(len(b))
	l.unsynced++
	if l.opt.SyncEvery > 0 {
		if l.unsynced >= l.opt.SyncEvery {
			if l.syncReq != nil {
				// Async group commit: hand the window to the OS here,
				// let the background goroutine pay the fsync.
				if err := l.w.Flush(); err != nil {
					return idx, false, err
				}
				l.unsynced = 0
				select {
				case l.syncReq <- struct{}{}:
				default: // a request is already pending; coalesce
				}
			} else if err := l.flushSync(); err != nil {
				return idx, false, err
			}
		}
	} else if err := l.w.Flush(); err != nil {
		// No group commit without a sync cadence: hand every record to
		// the OS so the tail survives a process crash.
		return idx, false, err
	}
	if l.segSize >= l.opt.SegmentBytes {
		if err := l.flushSync(); err != nil {
			return idx, false, err
		}
		if err := l.f.Close(); err != nil {
			return idx, false, err
		}
		l.f = nil // restored by openSegment on create success
		if err := l.openSegment(l.next); err != nil {
			return idx, false, err
		}
		rotated = true
	}
	return idx, rotated, nil
}

// Sync flushes buffered appends and fsyncs the active segment. A
// sticky background-fsync failure is reported even when this sync
// succeeds: pages a failed fsync dropped are not recovered by a later
// one.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.asyncErr
	}
	if err := l.flushSync(); err != nil {
		return err
	}
	return l.asyncErr
}

// Close syncs and closes the active segment, stopping the background
// syncer if one is running. The log is unusable afterwards.
//
// The syncer goroutine is joined before the file is closed: its fsync
// runs with the lock released, so closing the file first would race
// the in-flight sync against the close on the same descriptor.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	req, done := l.syncReq, l.syncDone
	l.syncReq = nil
	l.mu.Unlock()
	if req != nil {
		close(req)
		<-done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.asyncErr
	}
	err := l.flushSync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = l.asyncErr
	}
	l.f = nil
	return err
}

// Reseat recovers the log after a failed Append or a sticky background
// fsync error: it discards the group-commit buffer and the sticky
// error, re-derives the valid tail of the last segment from disk,
// truncates any torn frame, reopens the segment for appending, and
// fsyncs both the file and the directory so the re-derived tail is
// actually durable before any further record is acknowledged.
//
// It returns how many records the log lost relative to the highest
// index this process had handed out (torn frames, async-sync windows
// that never reached the disk). The caller decides what a loss means:
// records whose Append returned an error were never acknowledged, so
// losing those costs nothing.
//
// After a real (non-injected) fsync failure the kernel may still cache
// pages it can no longer write back; Reseat treats the readable prefix
// as authoritative and forces a fresh fsync over it, which is as much
// as any process can re-assert post-fsync-failure.
func (l *Log) Reseat() (lost int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fault.Permanent(fmt.Errorf("wal: log closed"))
	}
	prevNext := l.next
	if l.f != nil {
		l.f.Close() // ignore error: the handle may already be poisoned
		l.f = nil
	}
	l.asyncErr = nil
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		// Catastrophic: every segment vanished. Start a fresh log.
		if err := l.openSegment(0); err != nil {
			return 0, err
		}
		l.next = 0
		l.unsynced = 0
		return int(prevNext), l.flushSync()
	}
	last := segs[len(segs)-1]
	path := filepath.Join(l.dir, segName(last))
	recs, valid, err := scanSegment(l.fs, path, last)
	if err != nil {
		return 0, err
	}
	f, err := l.fs.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return 0, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return 0, err
	}
	l.setFile(f)
	l.segStart = last
	l.segSize = valid
	l.next = last + uint64(len(recs))
	l.unsynced = 0
	if err := l.flushSync(); err != nil {
		return 0, err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return 0, err
	}
	if l.next < prevNext {
		lost = int(prevNext - l.next)
	}
	return lost, nil
}

// DropFrom truncates the log so the next index is at most idx: records
// idx and later are removed. The durability layer uses it to take back
// a record whose append could not be made durable after retries, so a
// later replay cannot resurrect a push the caller saw fail. Segments
// past idx are deleted outright; the segment containing idx becomes
// the active segment, truncated at idx's frame.
func (l *Log) DropFrom(idx uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fault.Permanent(fmt.Errorf("wal: log closed"))
	}
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	l.asyncErr = nil
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	// Remove whole trailing segments that start at or past idx, keeping
	// at least one segment to stay the active one.
	for len(segs) > 1 && segs[len(segs)-1] >= idx {
		first := segs[len(segs)-1]
		if err := l.fs.Remove(filepath.Join(l.dir, segName(first))); err != nil {
			return err
		}
		segs = segs[:len(segs)-1]
	}
	last := segs[len(segs)-1]
	path := filepath.Join(l.dir, segName(last))
	recs, valid, err := scanSegment(l.fs, path, last)
	if err != nil {
		return err
	}
	keep := valid
	if last >= idx {
		keep, recs = 0, recs[:0]
	} else if last+uint64(len(recs)) > idx {
		// Walk frames to the byte offset where record idx starts.
		keep = 0
		for _, r := range recs {
			if r.Idx >= idx {
				break
			}
			keep += int64(headerLen + len(r.Payload) + crcLen)
		}
		recs = recs[:idx-last]
	}
	f, err := l.fs.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(keep, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.setFile(f)
	l.segStart = last
	l.segSize = keep
	l.next = last + uint64(len(recs))
	l.unsynced = 0
	if err := l.flushSync(); err != nil {
		return err
	}
	return l.fs.SyncDir(l.dir)
}

// TruncateThrough deletes segments all of whose records have index
// < idx — the segments a checkpoint at replay position idx has made
// redundant. The active segment is never deleted. It returns the
// number of segments removed.
func (l *Log) TruncateThrough(idx uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, first := range segs {
		if first == l.segStart || i == len(segs)-1 {
			break
		}
		// The segment's records span [first, segs[i+1]).
		if segs[i+1] > idx {
			break
		}
		if err := l.fs.Remove(filepath.Join(l.dir, segName(first))); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

// Replay streams every valid record with index >= from to fn, oldest
// first, and returns the count delivered. A torn tail of the final
// segment ends the replay silently (those records did not durably
// happen); an invalid record anywhere else is reported as corruption
// wrapping ErrCorrupt — but only after the corrupt segment's valid
// prefix has been delivered, so n tells the caller exactly how much
// acknowledged data survives and the error how much was lost. fn
// errors abort the replay.
func Replay(dir string, from uint64, fn func(Record) error) (int, error) {
	return ReplayFS(fault.OS, dir, from, fn)
}

// ReplayFS is Replay through an explicit filesystem seam.
func ReplayFS(fsys fault.FS, dir string, from uint64, fn func(Record) error) (int, error) {
	segs, err := listSegments(fsys, dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	n := 0
	for i, first := range segs {
		recs, _, err := scanSegment(fsys, filepath.Join(dir, segName(first)), first)
		if err != nil {
			return n, err
		}
		for _, rec := range recs {
			if rec.Idx < from {
				continue
			}
			if err := fn(rec); err != nil {
				return n, err
			}
			n++
		}
		if i < len(segs)-1 && first+uint64(len(recs)) != segs[i+1] {
			// The valid prefix above was delivered first: the caller
			// keeps everything that survives and learns the exact gap.
			return n, fmt.Errorf("%w: segment %s ends at record %d but the next segment starts at %d (%d records lost)",
				ErrCorrupt, segName(first), first+uint64(len(recs)), segs[i+1], segs[i+1]-(first+uint64(len(recs))))
		}
	}
	return n, nil
}
