package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"handshakejoin/internal/fault"
)

func appendN(t *testing.T, l *Log, n int, start int) {
	t.Helper()
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("rec-%04d", start+i))
		idx, _, err := l.Append(KindR, payload)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if idx != uint64(start+i) {
			t.Fatalf("Append idx = %d, want %d", idx, start+i)
		}
	}
}

func replayAll(t *testing.T, dir string, from uint64) []Record {
	t.Helper()
	var recs []Record
	if _, err := Replay(dir, from, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 100, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, dir, 0)
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
	for i, r := range recs {
		if r.Idx != uint64(i) || r.Kind != KindR || !bytes.Equal(r.Payload, []byte(fmt.Sprintf("rec-%04d", i))) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
	// Replay from the middle.
	recs = replayAll(t, dir, 60)
	if len(recs) != 40 || recs[0].Idx != 60 {
		t.Fatalf("replay from 60: got %d records, first %v", len(recs), recs[0].Idx)
	}
}

func TestReopenResumesIndex(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Next() != 10 {
		t.Fatalf("Next after reopen = %d, want 10", l.Next())
	}
	appendN(t, l, 5, 10)
	l.Close()
	if got := len(replayAll(t, dir, 0)); got != 15 {
		t.Fatalf("replayed %d, want 15", got)
	}
}

func TestRotationAndTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates after a handful.
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	rotations := 0
	for i := 0; i < 40; i++ {
		_, rot, err := l.Append(KindS, []byte(fmt.Sprintf("payload-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if rot {
			rotations++
		}
	}
	if rotations == 0 {
		t.Fatal("expected rotations with 64-byte segments")
	}
	segs, err := listSegments(fault.OS, dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d (%v)", len(segs), err)
	}
	// Everything below 20 is checkpoint-covered: old segments go, the
	// replay tail survives intact.
	removed, err := l.TruncateThrough(20)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("TruncateThrough removed nothing")
	}
	l.Close()
	recs := replayAll(t, dir, 20)
	if len(recs) != 20 || recs[0].Idx != 20 || recs[len(recs)-1].Idx != 39 {
		t.Fatalf("post-truncate replay: %d records, span [%d,%d]", len(recs), recs[0].Idx, recs[len(recs)-1].Idx)
	}
	// A segment that still holds records >= idx must survive.
	for _, first := range mustSegments(t, dir) {
		if first+1 < 20 && first != 0 {
			// fine: partially-covered tail segments may remain
			_ = first
		}
	}
}

func mustSegments(t *testing.T, dir string) []uint64 {
	t.Helper()
	segs, err := listSegments(fault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

func TestCorruptTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 8, 0)
	l.Close()
	// Tear the tail: flip a byte inside the last record's payload, then
	// append garbage as a torn half-record.
	path := filepath.Join(dir, segName(0))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-6] ^= 0xff
	buf = append(buf, 0xde, 0xad, 0xbe)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Next() != 7 {
		t.Fatalf("Next after corrupt tail = %d, want 7", l.Next())
	}
	// The log must append cleanly over the truncated tail.
	appendN(t, l, 3, 7)
	l.Close()
	recs := replayAll(t, dir, 0)
	if len(recs) != 10 {
		t.Fatalf("replayed %d, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Idx != uint64(i) {
			t.Fatalf("record %d has idx %d", i, r.Idx)
		}
	}
}

func TestReplayMissingDir(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "nope"), 0, func(Record) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("Replay on missing dir: n=%d err=%v", n, err)
	}
}

func TestKindsAndBytes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(KindTick, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(KindR, nil); err != nil {
		t.Fatal(err)
	}
	if l.Bytes() == 0 {
		t.Fatal("Bytes() = 0 after appends")
	}
	l.Close()
	recs := replayAll(t, dir, 0)
	if len(recs) != 2 || recs[0].Kind != KindTick || recs[1].Kind != KindR || len(recs[1].Payload) != 0 {
		t.Fatalf("kinds round trip: %+v", recs)
	}
}

// TestAsyncSyncRoundTrip drives the background-fsync path: appends
// cross many sync points while the syncer goroutine runs, rotation
// interleaves, and after Close every record must replay — Close stops
// the syncer and makes the whole log durable.
func TestAsyncSyncRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 4, AsyncSync: true, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		payload := []byte{byte(i), byte(i >> 8), byte(i % 7)}
		idx, _, err := l.Append(KindR, payload)
		if err != nil {
			t.Fatal(err)
		}
		if idx != uint64(i) {
			t.Fatalf("append %d returned idx %d", i, idx)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("second Close:", err)
	}
	got := 0
	if _, err := Replay(dir, 0, func(r Record) error {
		if r.Idx != uint64(got) || r.Kind != KindR || len(r.Payload) != 3 || r.Payload[2] != byte(got%7) {
			t.Fatalf("record %d: %+v", got, r)
		}
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("replayed %d of %d records", got, n)
	}
}
