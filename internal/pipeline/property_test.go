package pipeline

import (
	"testing"
	"testing/quick"

	"handshakejoin/internal/core"
	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// TestLLHJOracleProperty is the system-level property test: for *any*
// pipeline width, batch size, window configuration, delivery jitter and
// workload seed (within the sane regime window ≫ in-flight), the
// simulated LLHJ pipeline produces exactly the oracle's result
// multiset. testing/quick draws the configurations.
func TestLLHJOracleProperty(t *testing.T) {
	pred := workload.BandPredicate
	check := func(seed uint64, rawNodes, rawBatch, rawWin, rawJitter uint16, timeWindow bool) bool {
		nodes := int(rawNodes%7) + 1 // 1..7
		batch := int(rawBatch%8) + 1 // 1..8
		winCount := int(rawWin%120) + 60
		jitter := int64(rawJitter % 4000)

		cfg := workload.DefaultConfig(1000)
		cfg.Seed = seed
		cfg.Domain = 50
		gen := workload.NewGenerator(cfg)
		rs, ss := gen.Batch(250)

		var winR, winS WindowSpec
		if timeWindow {
			// Window duration derived from the count at the 1000/s rate.
			winR = WindowSpec{Duration: int64(winCount) * 1e6}
			winS = WindowSpec{Duration: int64(winCount) * 2e6 / 3}
		} else {
			winR = WindowSpec{Count: winCount}
			winS = WindowSpec{Count: winCount * 2 / 3}
		}

		mk := func() FeedConfig[workload.RTuple, workload.STuple] {
			return FeedConfig[workload.RTuple, workload.STuple]{
				NextR:   sliceGen(rs),
				NextS:   sliceGen(ss),
				WindowR: winR,
				WindowS: winS,
				Batch:   batch,
			}
		}
		want := make(map[stream.PairKey]int)
		{
			feed, err := NewFeed(mk())
			if err != nil {
				return false
			}
			oracle := newOracle(pred, want)
			for {
				a, ok := feed.Next()
				if !ok {
					break
				}
				oracle.apply(a)
			}
		}

		feed, err := NewFeed(mk())
		if err != nil {
			return false
		}
		cost := DefaultCostModel()
		cost.Jitter = jitter
		cost.JitterSeed = seed ^ 0xBEEF
		ncfg := &core.Config[workload.RTuple, workload.STuple]{Nodes: nodes, Pred: pred}
		sim := NewSim(nodes, func(k int) core.NodeLogic[workload.RTuple, workload.STuple] {
			return core.NewNode(ncfg, k)
		}, cost)
		got := make(map[stream.PairKey]int)
		sim.OnResult(func(_ int, r core.Result[workload.RTuple, workload.STuple]) {
			got[r.Pair.Key()]++
		})
		sim.Drain(feed)

		missing, extra, dups := diffMultiset(want, got)
		if missing != 0 || extra != 0 || dups != 0 {
			t.Logf("config nodes=%d batch=%d win=%d jitter=%d time=%v seed=%d: %d missing %d extra %d dups",
				nodes, batch, winCount, jitter, timeWindow, seed, missing, extra, dups)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// oracle wraps the Kang-style reference replay used by property tests.
type oracle struct {
	processR func(stream.Tuple[workload.RTuple])
	processS func(stream.Tuple[workload.STuple])
	expireR  func(uint64)
	expireS  func(uint64)
}

func newOracle(pred stream.Predicate[workload.RTuple, workload.STuple], out map[stream.PairKey]int) *oracle {
	var wR []stream.Tuple[workload.RTuple]
	var wS []stream.Tuple[workload.STuple]
	return &oracle{
		processR: func(r stream.Tuple[workload.RTuple]) {
			for _, s := range wS {
				if pred(r.Payload, s.Payload) {
					out[stream.PairKey{RSeq: r.Seq, SSeq: s.Seq}]++
				}
			}
			wR = append(wR, r)
		},
		processS: func(s stream.Tuple[workload.STuple]) {
			for _, r := range wR {
				if pred(r.Payload, s.Payload) {
					out[stream.PairKey{RSeq: r.Seq, SSeq: s.Seq}]++
				}
			}
			wS = append(wS, s)
		},
		expireR: func(seq uint64) {
			for i := range wR {
				if wR[i].Seq == seq {
					wR = append(wR[:i], wR[i+1:]...)
					return
				}
			}
		},
		expireS: func(seq uint64) {
			for i := range wS {
				if wS[i].Seq == seq {
					wS = append(wS[:i], wS[i+1:]...)
					return
				}
			}
		},
	}
}

func (o *oracle) apply(a Action[workload.RTuple, workload.STuple]) {
	switch a.Msg.Kind {
	case core.KindArrival:
		if a.Msg.Side == stream.R {
			for _, r := range a.Msg.R {
				o.processR(r)
			}
		} else {
			for _, s := range a.Msg.S {
				o.processS(s)
			}
		}
	case core.KindExpiry:
		for _, seq := range a.Msg.Seqs {
			if a.Msg.Side == stream.R {
				o.expireR(seq)
			} else {
				o.expireS(seq)
			}
		}
	}
}
