package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"handshakejoin/internal/clock"
	"handshakejoin/internal/core"
	"handshakejoin/internal/fifo"
	"handshakejoin/internal/stream"
)

// Live executes a pipeline with one goroutine per node, connected by
// bounded lock-free FIFO links — the Go analogue of the paper's
// one-thread-per-core deployment with Multikernel-style asynchronous
// channels. Each directed link carries every message kind in strict
// FIFO order, which the protocol's correctness requires.
//
// Results are written to per-node queues (Q1..Qn in Figure 15) and
// drained by a collector (package collect). High-water marks for
// punctuation generation are published through atomics by the pipeline
// end nodes.
type Live[L, R any] struct {
	nodes []core.NodeLogic[L, R]
	clk   clock.Clock

	// links[i][0] = messages travelling rightward into node i
	// (HandleLeft); links[i][1] = leftward into node i (HandleRight).
	// Interior links are unbounded so that neighbouring nodes can never
	// deadlock on mutual back-pressure; the entry links are bounded by
	// entryCap through Inject.
	links  [][2]*fifo.Deque[core.Msg[L, R]]
	notify []chan struct{} // wake-up doorbell per node
	idle   []atomic.Bool

	resultQ  []*fifo.Chan[core.Result[L, R]]
	entryCap int
	depthCap int

	hwmR, hwmS atomic.Int64

	depth atomic.Int64 // messages in flight across all links

	// Pooled seq buffers and recycling tokens for the messages nodes
	// originate per batch (acks, expedition-ends, expiry forwards).
	// These are taken on one node's goroutine and released on its
	// neighbour's, so the pool is shared pipeline-wide under one mutex —
	// the traffic is one take/put pair per node per batch, far off the
	// per-tuple path.
	seqMu    sync.Mutex
	seqBufs  [][]uint64
	seqFrees []*core.Free[L, R]

	stop atomic.Bool
	wg   sync.WaitGroup
}

// seqPoolCap bounds both pools; overflow falls back to the garbage
// collector.
const seqPoolCap = 64

// LiveConfig tunes the live runtime.
type LiveConfig struct {
	// LinkCap bounds the number of messages the driver may have pending
	// at a pipeline entry (back-pressure point). Default 1024.
	LinkCap int
	// DepthCap bounds the total number of messages in flight across all
	// links; Inject blocks while the pipeline is deeper. This is the
	// analogue of the paper's bounded FIFO channels: it keeps the
	// in-flight volume far below the window size, which the window
	// semantics require (an expiry must never race a whole window of
	// in-flight tuples to its home node). Default 128.
	DepthCap int
	// ResultCap is the capacity of each per-node result queue.
	// Default 65536.
	ResultCap int
}

func (c *LiveConfig) defaults() {
	if c.LinkCap < 1 {
		c.LinkCap = 1024
	}
	if c.ResultCap < 1 {
		c.ResultCap = 65536
	}
	if c.DepthCap < 1 {
		c.DepthCap = 128
	}
}

// NewLive builds the pipeline and starts one goroutine per node.
func NewLive[L, R any](n int, build core.Builder[L, R], clk clock.Clock, cfg LiveConfig) *Live[L, R] {
	if n < 1 {
		panic(fmt.Sprintf("runtime: pipeline needs >= 1 node, got %d", n))
	}
	cfg.defaults()
	if clk == nil {
		clk = clock.NewWall()
	}
	lv := &Live[L, R]{
		clk:      clk,
		entryCap: cfg.LinkCap,
		depthCap: cfg.DepthCap,
		links:    make([][2]*fifo.Deque[core.Msg[L, R]], n),
		notify:   make([]chan struct{}, n),
		idle:     make([]atomic.Bool, n),
		resultQ:  make([]*fifo.Chan[core.Result[L, R]], n),
	}
	for k := 0; k < n; k++ {
		lv.nodes = append(lv.nodes, build(k))
		lv.links[k][0] = fifo.NewDeque[core.Msg[L, R]](64)
		lv.links[k][1] = fifo.NewDeque[core.Msg[L, R]](64)
		lv.notify[k] = make(chan struct{}, 1)
		lv.resultQ[k] = fifo.NewChan[core.Result[L, R]](cfg.ResultCap)
	}
	lv.wg.Add(n)
	for k := 0; k < n; k++ {
		go lv.nodeLoop(k)
	}
	return lv
}

// HWMR returns the R-side high-water mark tmax,R (§6.1.1).
func (lv *Live[L, R]) HWMR() int64 { return lv.hwmR.Load() }

// HWMS returns the S-side high-water mark tmax,S.
func (lv *Live[L, R]) HWMS() int64 { return lv.hwmS.Load() }

// ResultQueues exposes the per-node result queues for the collector.
func (lv *Live[L, R]) ResultQueues() []*fifo.Chan[core.Result[L, R]] { return lv.resultQ }

// Inject delivers msg to a pipeline end, blocking while the entry link
// holds more than the configured bound (driver back-pressure). It
// returns false after Stop.
func (lv *Live[L, R]) Inject(end End, msg core.Msg[L, R]) bool {
	node, dir := 0, 0
	if end == RightEnd {
		node, dir = len(lv.nodes)-1, 1
	}
	q := lv.links[node][dir]
	for q.Len() >= lv.entryCap || int(lv.depth.Load()) >= lv.depthCap {
		if lv.stop.Load() {
			return false
		}
		runtime.Gosched()
	}
	return lv.put(node, dir, msg)
}

// put enqueues msg into links[node][dir] and rings the doorbell.
// Interior links are unbounded, so put never blocks — a requirement,
// because a node blocking on its neighbour while the neighbour blocks
// back would deadlock the pipeline.
func (lv *Live[L, R]) put(node, dir int, msg core.Msg[L, R]) bool {
	if err := lv.links[node][dir].Put(msg); err != nil {
		return false
	}
	lv.depth.Add(1)
	select {
	case lv.notify[node] <- struct{}{}:
	default:
	}
	return true
}

// nodeLoop is the per-core event loop of Figure 12: alternately poll the
// left and right input channels and dispatch to the handlers.
func (lv *Live[L, R]) nodeLoop(k int) {
	defer lv.wg.Done()
	defer lv.resultQ[k].Close()
	em := &liveEmitter[L, R]{lv: lv, k: k}
	left, right := lv.links[k][0], lv.links[k][1]
	for {
		progress := false
		if m, ok, _ := left.TryGet(); ok {
			lv.nodes[k].HandleLeft(m, em)
			lv.release(m)
			lv.depth.Add(-1)
			progress = true
		}
		if m, ok, _ := right.TryGet(); ok {
			lv.nodes[k].HandleRight(m, em)
			lv.release(m)
			lv.depth.Add(-1)
			progress = true
		}
		if progress {
			continue
		}
		if lv.stop.Load() {
			return
		}
		// Idle: block on the doorbell after re-checking emptiness.
		lv.idle[k].Store(true)
		if left.Len() > 0 || right.Len() > 0 || lv.stop.Load() {
			lv.idle[k].Store(false)
			continue
		}
		<-lv.notify[k]
		lv.idle[k].Store(false)
	}
}

// release retires one handled message against its recycling token, if
// any: the last handler to finish hands the backing slice back to the
// driver (see core.Free for why this must wait for every handler, not
// just the exit node's, and why the message travels by value).
func (lv *Live[L, R]) release(m core.Msg[L, R]) {
	if m.Free != nil && m.Free.Refs.Add(-1) == 0 {
		m.Free.Put(m)
	}
}

// liveEmitter implements core.Emitter (and core.SeqBufSource) for
// node k.
type liveEmitter[L, R any] struct {
	lv *Live[L, R]
	k  int
}

// TakeSeqBuf implements core.SeqBufSource.
func (e *liveEmitter[L, R]) TakeSeqBuf() []uint64 {
	lv := e.lv
	lv.seqMu.Lock()
	if n := len(lv.seqBufs); n > 0 {
		b := lv.seqBufs[n-1]
		lv.seqBufs = lv.seqBufs[:n-1]
		lv.seqMu.Unlock()
		return b
	}
	lv.seqMu.Unlock()
	return make([]uint64, 0, 64)
}

// PutSeqBuf implements core.SeqBufSource.
func (e *liveEmitter[L, R]) PutSeqBuf(b []uint64) {
	lv := e.lv
	lv.seqMu.Lock()
	if len(lv.seqBufs) < seqPoolCap {
		lv.seqBufs = append(lv.seqBufs, b[:0])
	}
	lv.seqMu.Unlock()
}

// NewSeqFree implements core.SeqBufSource: a token armed for the one
// neighbour handler that will read the message. Its Put returns both
// the Seqs buffer and the token itself to the shared pools.
func (e *liveEmitter[L, R]) NewSeqFree() *core.Free[L, R] {
	lv := e.lv
	lv.seqMu.Lock()
	var f *core.Free[L, R]
	if n := len(lv.seqFrees); n > 0 {
		f = lv.seqFrees[n-1]
		lv.seqFrees = lv.seqFrees[:n-1]
		lv.seqMu.Unlock()
	} else {
		lv.seqMu.Unlock()
		f = &core.Free[L, R]{}
		f.Put = func(m core.Msg[L, R]) {
			lv.seqMu.Lock()
			if len(lv.seqBufs) < seqPoolCap {
				lv.seqBufs = append(lv.seqBufs, m.Seqs[:0])
			}
			if len(lv.seqFrees) < seqPoolCap {
				lv.seqFrees = append(lv.seqFrees, f)
			}
			lv.seqMu.Unlock()
		}
	}
	f.Refs.Store(1)
	return f
}

func (e *liveEmitter[L, R]) EmitLeft(m core.Msg[L, R]) {
	if e.k == 0 {
		return // pipeline exit
	}
	e.lv.put(e.k-1, 1, m)
}

func (e *liveEmitter[L, R]) EmitRight(m core.Msg[L, R]) {
	if e.k == len(e.lv.nodes)-1 {
		return // pipeline exit
	}
	e.lv.put(e.k+1, 0, m)
}

func (e *liveEmitter[L, R]) EmitResult(p stream.Pair[L, R]) {
	r := core.Result[L, R]{Pair: p, At: e.lv.clk.Now()}
	q := e.lv.resultQ[e.k]
	for {
		ok, err := q.TryPut(r)
		if ok || err != nil {
			return
		}
		runtime.Gosched() // collector must catch up
	}
}

func (e *liveEmitter[L, R]) StreamEnd(side stream.Side, ts int64) {
	e.lv.AdvanceHWM(side, ts)
}

// AdvanceHWM raises one side's high-water mark to ts (never lowers
// it). Besides the pipeline-end StreamEnd path, drivers call this to
// promise stream progress on an idle, quiescent pipeline: when the
// driver knows every future tuple of both sides carries a timestamp
// >= ts and the pipeline holds no in-flight arrivals, no future result
// can have a timestamp below ts (a result's timestamp is the later of
// its two inputs), so the promise is sound even though no tuple
// carried it through the pipeline.
func (lv *Live[L, R]) AdvanceHWM(side stream.Side, ts int64) {
	hwm := &lv.hwmR
	if side == stream.S {
		hwm = &lv.hwmS
	}
	for {
		cur := hwm.Load()
		if ts <= cur {
			return
		}
		if hwm.CompareAndSwap(cur, ts) {
			return
		}
	}
}

func (e *liveEmitter[L, R]) Cost(int) {} // live time is real time

// QueueDepth returns the total number of messages currently queued on
// all links.
func (lv *Live[L, R]) QueueDepth() int { return int(lv.depth.Load()) }

// Quiesce blocks until the pipeline has no in-flight messages and all
// nodes are idle (two consecutive observations), then returns. Call
// after the driver has injected everything and before reading final
// state.
func (lv *Live[L, R]) Quiesce() {
	stable := 0
	for stable < 2 {
		if lv.quiet() {
			stable++
		} else {
			stable = 0
		}
		runtime.Gosched()
	}
}

func (lv *Live[L, R]) quiet() bool {
	for k := range lv.nodes {
		if !lv.idle[k].Load() {
			return false
		}
	}
	for k := range lv.links {
		if lv.links[k][0].Len() > 0 || lv.links[k][1].Len() > 0 {
			return false
		}
	}
	return true
}

// Stop terminates the node goroutines (after draining pending link
// messages) and closes the result queues. It does not wait for a
// quiescent protocol state; call Quiesce first when exact results
// matter.
func (lv *Live[L, R]) Stop() {
	lv.stop.Store(true)
	for k := range lv.notify {
		select {
		case lv.notify[k] <- struct{}{}:
		default:
		}
	}
	lv.wg.Wait()
}

// Stats aggregates all node counters. The counters are atomics, so the
// aggregation is race-safe mid-run; it is exact once the pipeline is
// quiescent (after Stop or Quiesce).
func (lv *Live[L, R]) Stats() core.Stats {
	var agg core.Stats
	for _, n := range lv.nodes {
		agg.Add(n.Stats())
	}
	return agg
}

// Nodes returns the node logic values (for white-box tests; access only
// when quiescent).
func (lv *Live[L, R]) Nodes() []core.NodeLogic[L, R] { return lv.nodes }
