package pipeline

import (
	"testing"

	"handshakejoin/internal/core"
	"handshakejoin/internal/workload"
)

// TestLiveQuiescentState checks pipeline invariants after a live run
// has quiesced: the round-robin home assignment distributes both
// windows evenly across nodes, and every in-flight buffer has drained
// (all forwarded tuples were acknowledged).
func TestLiveQuiescentState(t *testing.T) {
	pred := workload.BandPredicate
	const nodes, win = 5, 80
	rs, ss := genStreams(300, 1000, 13)
	feed, err := NewFeed(feedConfig(rs, ss, WindowSpec{Count: win}, WindowSpec{Count: win}, 2))
	if err != nil {
		t.Fatal(err)
	}
	lv := NewLive(nodes, llhjBuilder(nodes, pred), nil, LiveConfig{DepthCap: 6})
	for {
		a, ok := feed.Next()
		if !ok {
			break
		}
		lv.Inject(a.End, a.Msg)
	}
	lv.Quiesce()
	defer lv.Stop()

	perNode := win / nodes
	for k, n := range lv.Nodes() {
		node := n.(*core.Node[workload.RTuple, workload.STuple])
		wr, ws := node.WindowSizes()
		if wr != perNode || ws != perNode {
			t.Errorf("node %d: window sizes (%d, %d), want (%d, %d) from round-robin homes",
				k, wr, ws, perNode, perNode)
		}
		if l := node.IWSLen(); l != 0 {
			t.Errorf("node %d: %d unacknowledged in-flight tuples after quiesce", k, l)
		}
		st := node.Stats()
		if st.RArrivals != 300 || st.SArrivals != 300 {
			t.Errorf("node %d: processed (%d, %d) arrivals, want every tuple at every node (300, 300)",
				k, st.RArrivals, st.SArrivals)
		}
	}
}
