package pipeline

import (
	"container/heap"
	"fmt"

	"handshakejoin/internal/core"
	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// Sim executes a pipeline of core.NodeLogic nodes under a deterministic
// discrete-event simulation: virtual clock, per-node serialization, FIFO
// links with hop latency, and a CostModel that converts protocol work
// (messages handled, window entries inspected) into virtual time.
//
// The simulator reproduces the paper's experiments at paper scale
// (40 cores, minutes-long windows) on machines with any core count —
// the substitution DESIGN.md documents for the 48-core NUMA testbed.
// Given identical inputs it is fully deterministic, which the
// correctness suite exploits: randomized delivery jitter (seeded)
// explores message interleavings while keeping failures reproducible.
type Sim[L, R any] struct {
	nodes []core.NodeLogic[L, R]
	cost  CostModel
	rng   *workload.Rand

	pq       eventHeap[L, R]
	seq      uint64 // tie-breaker for deterministic heap order
	now      int64
	freeAt   []int64    // per-node: virtual time the node becomes idle
	busy     []int64    // per-node: accumulated busy virtual time
	lastSend [][2]int64 // per-node per-direction: last delivery time on the outgoing link (FIFO enforcement)

	hwmR, hwmS int64 // high-water marks (§6.1.1)

	// Results are collected per emitting node, mirroring the per-worker
	// result queues Q1..Qn of Figure 15; the Collector drains them.
	resultQ  [][]core.Result[L, R]
	onResult func(node int, r core.Result[L, R])

	// collector modelling (punctuated vacuuming, §6.1.3)
	collectEvery int64
	onVacuum     func(punct int64, batch []core.Result[L, R])

	maxQueueLen int
	queued      int
}

type event[L, R any] struct {
	at   int64
	seq  uint64
	node int
	// fromLeft: deliver via HandleLeft (message travelling rightward).
	fromLeft bool
	msg      core.Msg[L, R]
	// vacuum marks a collector tick instead of a message delivery.
	vacuum bool
}

type eventHeap[L, R any] []event[L, R]

func (h eventHeap[L, R]) Len() int { return len(h) }
func (h eventHeap[L, R]) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap[L, R]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap[L, R]) Push(x any)   { *h = append(*h, x.(event[L, R])) }
func (h *eventHeap[L, R]) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewSim builds an n-node pipeline from the builder under the given cost
// model.
func NewSim[L, R any](n int, build core.Builder[L, R], cost CostModel) *Sim[L, R] {
	if n < 1 {
		panic(fmt.Sprintf("runtime: pipeline needs >= 1 node, got %d", n))
	}
	s := &Sim[L, R]{
		cost:     cost,
		rng:      workload.NewRand(cost.JitterSeed),
		freeAt:   make([]int64, n),
		busy:     make([]int64, n),
		lastSend: make([][2]int64, n),
		resultQ:  make([][]core.Result[L, R], n),
	}
	for k := 0; k < n; k++ {
		s.nodes = append(s.nodes, build(k))
	}
	return s
}

// OnResult registers a callback invoked for every result at emission
// time (before any collector vacuuming). Optional.
func (s *Sim[L, R]) OnResult(fn func(node int, r core.Result[L, R])) { s.onResult = fn }

// EnableCollector models the collector thread of §6.1.3: every period
// (virtual ns) it reads the high-water marks, vacuums all per-node
// result queues, and reports the batch together with the punctuation
// timestamp tp = min(tmax,R, tmax,S).
func (s *Sim[L, R]) EnableCollector(period int64, fn func(punct int64, batch []core.Result[L, R])) {
	s.collectEvery = period
	s.onVacuum = fn
	s.schedule(event[L, R]{at: period, vacuum: true})
}

// Inject delivers msg to the given pipeline end at virtual time at.
func (s *Sim[L, R]) Inject(at int64, end End, msg core.Msg[L, R]) {
	node, fromLeft := 0, true
	if end == RightEnd {
		node, fromLeft = len(s.nodes)-1, false
	}
	s.schedule(event[L, R]{at: at, node: node, fromLeft: fromLeft, msg: msg})
}

func (s *Sim[L, R]) schedule(e event[L, R]) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.pq, e)
	if !e.vacuum {
		s.queued++
		if s.queued > s.maxQueueLen {
			s.maxQueueLen = s.queued
		}
	}
}

// simEmitter implements core.Emitter for one message handling; it
// buffers emissions and the runtime schedules them afterwards with the
// correct virtual timing.
type simEmitter[L, R any] struct {
	sim     *Sim[L, R]
	node    int
	entries int64
	tuples  int64
	left    []core.Msg[L, R]
	right   []core.Msg[L, R]
	results []stream.Pair[L, R]
}

func (e *simEmitter[L, R]) EmitLeft(m core.Msg[L, R])  { e.left = append(e.left, m) }
func (e *simEmitter[L, R]) EmitRight(m core.Msg[L, R]) { e.right = append(e.right, m) }
func (e *simEmitter[L, R]) EmitResult(p stream.Pair[L, R]) {
	e.results = append(e.results, p)
}
func (e *simEmitter[L, R]) StreamEnd(side stream.Side, ts int64) {
	if side == stream.R {
		if ts > e.sim.hwmR {
			e.sim.hwmR = ts
		}
	} else if ts > e.sim.hwmS {
		e.sim.hwmS = ts
	}
}
func (e *simEmitter[L, R]) Cost(entries int) { e.entries += int64(entries) }

// RunUntil processes events until the virtual clock passes deadline or
// no events remain. The feed, if non-nil, is drained lazily: its next
// action is kept scheduled alongside pipeline-internal events so
// injections interleave correctly. It reports whether the run fully
// drained (feed exhausted and no pending events) before the deadline —
// false means the pipeline could not keep up.
func (s *Sim[L, R]) RunUntil(deadline int64, feed *Feed[L, R]) bool {
	pendingFeed := false
	var nextAction Action[L, R]
	if feed != nil {
		if a, ok := feed.Next(); ok {
			nextAction, pendingFeed = a, true
		}
	}
	for {
		// Inject feed actions that are due before the next event.
		for pendingFeed && (s.pq.Len() == 0 || nextAction.Due <= s.pq[0].at) {
			if nextAction.Due > deadline {
				pendingFeed = false
				break
			}
			s.Inject(nextAction.Due, nextAction.End, nextAction.Msg)
			if a, ok := feed.Next(); ok {
				nextAction = a
			} else {
				pendingFeed = false
			}
		}
		if s.pq.Len() == 0 {
			if !pendingFeed {
				return true
			}
			continue
		}
		if s.pq[0].at > deadline {
			return false
		}
		e := heap.Pop(&s.pq).(event[L, R])
		if e.at > s.now {
			s.now = e.at
		}
		if e.vacuum {
			s.vacuum()
			if s.collectEvery > 0 && (s.pq.Len() > 0 || pendingFeed) {
				s.schedule(event[L, R]{at: s.now + s.collectEvery, vacuum: true})
			}
			continue
		}
		s.queued--
		s.deliver(e)
	}
}

// deliver processes one message at its destination node, advancing the
// node's busy time by the modelled cost and scheduling emissions.
func (s *Sim[L, R]) deliver(e event[L, R]) {
	start := e.at
	if f := s.freeAt[e.node]; f > start {
		start = f
	}
	em := &simEmitter[L, R]{sim: s, node: e.node}
	em.tuples = int64(e.msg.Len())
	if e.fromLeft {
		s.nodes[e.node].HandleLeft(e.msg, em)
	} else {
		s.nodes[e.node].HandleRight(e.msg, em)
	}
	dur := s.cost.PerMsg + s.cost.PerTuple*em.tuples + s.cost.PerEntry*em.entries
	done := start + dur
	s.freeAt[e.node] = done
	s.busy[e.node] += dur

	for _, p := range em.results {
		r := core.Result[L, R]{Pair: p, At: done}
		s.resultQ[e.node] = append(s.resultQ[e.node], r)
		if s.onResult != nil {
			s.onResult(e.node, r)
		}
	}
	for _, m := range em.left {
		s.send(e.node, e.node-1, false, m, done)
	}
	for _, m := range em.right {
		s.send(e.node, e.node+1, true, m, done)
	}
}

// send schedules delivery of m from node `from` to node `to`,
// preserving FIFO order per directed link even under jitter.
func (s *Sim[L, R]) send(from, to int, fromLeft bool, m core.Msg[L, R], at int64) {
	if to < 0 || to >= len(s.nodes) {
		return // pipeline exit: discard
	}
	delay := s.cost.Hop
	if s.cost.Jitter > 0 {
		delay += int64(s.rng.Uint64() % uint64(s.cost.Jitter))
	}
	deliver := at + delay
	dir := 0
	if !fromLeft {
		dir = 1
	}
	if last := s.lastSend[from][dir]; deliver < last {
		deliver = last // never overtake an earlier message on this link
	}
	s.lastSend[from][dir] = deliver
	s.schedule(event[L, R]{at: deliver, node: to, fromLeft: fromLeft, msg: m})
}

// vacuum models one collector pass: read high-water marks first, then
// drain all result queues (§6.1.3 — this order makes the punctuation
// correct).
func (s *Sim[L, R]) vacuum() {
	punct := s.hwmR
	if s.hwmS < punct {
		punct = s.hwmS
	}
	var batch []core.Result[L, R]
	for k := range s.resultQ {
		batch = append(batch, s.resultQ[k]...)
		s.resultQ[k] = s.resultQ[k][:0]
	}
	if s.onVacuum != nil {
		s.onVacuum(punct, batch)
	}
}

// Drain runs until no events remain (unbounded deadline).
func (s *Sim[L, R]) Drain(feed *Feed[L, R]) { _ = s.RunUntil(int64(1)<<62-1, feed) }

// FlushResults performs a final vacuum and returns nothing; results
// reach the registered callbacks.
func (s *Sim[L, R]) FlushResults() { s.vacuum() }

// Now returns the current virtual time.
func (s *Sim[L, R]) Now() int64 { return s.now }

// Utilization returns each node's busy fraction of the virtual interval
// [0, s.Now()].
func (s *Sim[L, R]) Utilization() []float64 {
	out := make([]float64, len(s.nodes))
	if s.now == 0 {
		return out
	}
	for k, b := range s.busy {
		out[k] = float64(b) / float64(s.now)
	}
	return out
}

// MaxUtilization returns the highest per-node busy fraction.
func (s *Sim[L, R]) MaxUtilization() float64 {
	var m float64
	for _, u := range s.Utilization() {
		if u > m {
			m = u
		}
	}
	return m
}

// MaxQueuedEvents returns the high-water mark of in-flight messages, a
// proxy for queue backlog when probing sustainability.
func (s *Sim[L, R]) MaxQueuedEvents() int { return s.maxQueueLen }

// Stats aggregates all node counters.
func (s *Sim[L, R]) Stats() core.Stats {
	var agg core.Stats
	for _, n := range s.nodes {
		agg.Add(n.Stats())
	}
	return agg
}

// HWM returns the current high-water marks (tmax,R, tmax,S).
func (s *Sim[L, R]) HWM() (r, sHWM int64) { return s.hwmR, s.hwmS }

// Nodes returns the node logic values (for white-box tests).
func (s *Sim[L, R]) Nodes() []core.NodeLogic[L, R] { return s.nodes }
