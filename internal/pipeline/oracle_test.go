package pipeline

import (
	"fmt"
	"testing"

	"handshakejoin/internal/core"
	"handshakejoin/internal/hsj"
	"handshakejoin/internal/kang"
	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// The tests in this file establish the central correctness claim: for
// identical inputs and window boundaries, low-latency handshake join
// produces exactly the multiset of pairs that Kang's sequential
// three-step procedure produces (§4: "semantically equivalent to the
// handshake join and classical stream join operators with respect to
// their set of output tuples"), and the original handshake join
// produces it up to the boundary jitter inherent in its asynchronous
// tuple motion (within shrunk windows: no misses; within grown windows:
// no spurious results; never any duplicates).

// sliceGen returns a generator reading from a slice.
func sliceGen[T any](ts []stream.Tuple[T]) func() (stream.Tuple[T], bool) {
	i := 0
	return func() (stream.Tuple[T], bool) {
		if i >= len(ts) {
			var zero stream.Tuple[T]
			return zero, false
		}
		t := ts[i]
		i++
		return t, true
	}
}

// genStreams produces n tuples per stream with the benchmark schema at
// the given rate.
func genStreams(n int, rate float64, seed uint64) ([]stream.Tuple[workload.RTuple], []stream.Tuple[workload.STuple]) {
	cfg := workload.DefaultConfig(rate)
	cfg.Seed = seed
	// A small domain makes matches plentiful so that the multiset
	// comparison has teeth.
	cfg.Domain = 60
	g := workload.NewGenerator(cfg)
	return g.Batch(n)
}

func feedConfig(rs []stream.Tuple[workload.RTuple], ss []stream.Tuple[workload.STuple], winR, winS WindowSpec, batch int) FeedConfig[workload.RTuple, workload.STuple] {
	return FeedConfig[workload.RTuple, workload.STuple]{
		NextR:   sliceGen(rs),
		NextS:   sliceGen(ss),
		WindowR: winR,
		WindowS: winS,
		Batch:   batch,
	}
}

// oracleRun replays the exact feed schedule into Kang's sequential join
// and returns the multiset of result pairs. Driving the oracle from the
// same Feed guarantees both see identical window boundaries.
func oracleRun(t *testing.T, cfg FeedConfig[workload.RTuple, workload.STuple], pred stream.Predicate[workload.RTuple, workload.STuple]) map[stream.PairKey]int {
	t.Helper()
	got := make(map[stream.PairKey]int)
	j := kang.New(pred, func(p stream.Pair[workload.RTuple, workload.STuple]) {
		got[p.Key()]++
	})
	feed, err := NewFeed(cfg)
	if err != nil {
		t.Fatalf("NewFeed: %v", err)
	}
	for {
		a, ok := feed.Next()
		if !ok {
			break
		}
		switch a.Msg.Kind {
		case core.KindArrival:
			if a.Msg.Side == stream.R {
				for _, r := range a.Msg.R {
					j.ProcessR(r)
				}
			} else {
				for _, s := range a.Msg.S {
					j.ProcessS(s)
				}
			}
		case core.KindExpiry:
			for _, seq := range a.Msg.Seqs {
				if a.Msg.Side == stream.R {
					j.ExpireR(seq)
				} else {
					j.ExpireS(seq)
				}
			}
		default:
			t.Fatalf("feed produced unexpected message kind %v", a.Msg.Kind)
		}
	}
	return got
}

// simRun drains the feed through a simulated pipeline and returns the
// result multiset plus aggregate stats.
func simRun(t *testing.T, n int, build core.Builder[workload.RTuple, workload.STuple], cfg FeedConfig[workload.RTuple, workload.STuple], cost CostModel) (map[stream.PairKey]int, core.Stats) {
	t.Helper()
	feed, err := NewFeed(cfg)
	if err != nil {
		t.Fatalf("NewFeed: %v", err)
	}
	sim := NewSim(n, build, cost)
	got := make(map[stream.PairKey]int)
	sim.OnResult(func(_ int, r core.Result[workload.RTuple, workload.STuple]) {
		got[r.Pair.Key()]++
	})
	sim.Drain(feed)
	return got, sim.Stats()
}

func llhjBuilder(n int, pred stream.Predicate[workload.RTuple, workload.STuple]) core.Builder[workload.RTuple, workload.STuple] {
	cfg := &core.Config[workload.RTuple, workload.STuple]{Nodes: n, Pred: pred}
	return func(k int) core.NodeLogic[workload.RTuple, workload.STuple] {
		return core.NewNode(cfg, k)
	}
}

func hsjBuilder(n int, pred stream.Predicate[workload.RTuple, workload.STuple], capR, capS int) core.Builder[workload.RTuple, workload.STuple] {
	cfg := &hsj.Config[workload.RTuple, workload.STuple]{Nodes: n, Pred: pred, CapR: capR, CapS: capS}
	return func(k int) core.NodeLogic[workload.RTuple, workload.STuple] {
		return hsj.NewNode(cfg, k)
	}
}

// diffMultiset reports missing and extra keys of got relative to want.
func diffMultiset(want, got map[stream.PairKey]int) (missing, extra, dups int) {
	for k, w := range want {
		if g := got[k]; g < w {
			missing += w - g
		}
	}
	for k, g := range got {
		if w := want[k]; g > w {
			extra += g - w
		}
		if g > 1 {
			dups += g - 1
		}
	}
	return
}

func TestLLHJSimMatchesOracleExactly(t *testing.T) {
	pred := workload.BandPredicate
	const tuples = 600
	rs, ss := genStreams(tuples, 1000, 7)
	type cse struct {
		nodes, batch int
		winR, winS   WindowSpec
		jitter       int64
		seed         uint64
	}
	var cases []cse
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, b := range []int{1, 4, 64} {
			cases = append(cases,
				cse{n, b, WindowSpec{Count: 150}, WindowSpec{Count: 150}, 0, 0},
				cse{n, b, WindowSpec{Count: 150}, WindowSpec{Count: 90}, 500, uint64(n*100 + b)},
				cse{n, b, WindowSpec{Duration: 2e8}, WindowSpec{Duration: 2e8}, 2000, uint64(n + b)},
				cse{n, b, WindowSpec{Duration: 1e8}, WindowSpec{Duration: 3e8}, 900, uint64(n * b)},
			)
		}
	}
	for _, c := range cases {
		name := fmt.Sprintf("n=%d/batch=%d/winR=%v+%d/winS=%v+%d/jitter=%d",
			c.nodes, c.batch, c.winR.Duration, c.winR.Count, c.winS.Duration, c.winS.Count, c.jitter)
		t.Run(name, func(t *testing.T) {
			want := oracleRun(t, feedConfig(rs, ss, c.winR, c.winS, c.batch), pred)
			cost := DefaultCostModel()
			cost.Jitter = c.jitter
			cost.JitterSeed = c.seed
			got, stats := simRun(t, c.nodes, llhjBuilder(c.nodes, pred), feedConfig(rs, ss, c.winR, c.winS, c.batch), cost)
			missing, extra, dups := diffMultiset(want, got)
			if missing != 0 || extra != 0 || dups != 0 {
				t.Fatalf("LLHJ vs oracle: %d missing, %d extra, %d duplicates (oracle %d, got %d)",
					missing, extra, dups, len(want), len(got))
			}
			if stats.PendingExpiries != 0 {
				t.Errorf("unexpected pending expiries: %d (window shorter than pipeline transit?)", stats.PendingExpiries)
			}
		})
	}
}

func TestLLHJSimJitterSweep(t *testing.T) {
	// Randomized delivery jitter explores many interleavings of the
	// ack / expedition-end / expiry protocol; each seed is
	// deterministic, so failures reproduce.
	pred := workload.BandPredicate
	rs, ss := genStreams(400, 1000, 99)
	cfgBase := feedConfig(rs, ss, WindowSpec{Count: 120}, WindowSpec{Count: 120}, 4)
	want := oracleRun(t, cfgBase, pred)
	for seed := uint64(1); seed <= 25; seed++ {
		cost := DefaultCostModel()
		cost.Jitter = 5000 // up to 5 hops of disorder between links
		cost.JitterSeed = seed
		got, _ := simRun(t, 5, llhjBuilder(5, pred), feedConfig(rs, ss, WindowSpec{Count: 120}, WindowSpec{Count: 120}, 4), cost)
		missing, extra, dups := diffMultiset(want, got)
		if missing != 0 || extra != 0 || dups != 0 {
			t.Fatalf("seed %d: %d missing, %d extra, %d duplicates", seed, missing, extra, dups)
		}
	}
}

func TestHSJSimContainment(t *testing.T) {
	// The original handshake join moves tuples by segment overflow, so
	// the instant a pair meets is fuzzy by up to a few segments of
	// arrivals relative to the sequential oracle. The sound containment
	// property: no duplicates ever; every pair valid under windows
	// shrunk by the jitter bound must appear; no pair outside windows
	// grown by the jitter bound may appear.
	pred := workload.BandPredicate
	const tuples = 900
	rs, ss := genStreams(tuples, 1000, 21)
	for _, n := range []int{1, 2, 4, 6} {
		for _, batch := range []int{1, 8} {
			t.Run(fmt.Sprintf("n=%d/batch=%d", n, batch), func(t *testing.T) {
				const win = 240
				// Boundary jitter of the pop-based motion is bounded by
				// the in-flight volume: a few batches per crossing.
				delta := 4*batch + 8
				mustCfg := feedConfig(rs, ss, WindowSpec{Count: win - delta}, WindowSpec{Count: win - delta}, batch)
				mayCfg := feedConfig(rs, ss, WindowSpec{Count: win + delta}, WindowSpec{Count: win + delta}, batch)
				must := oracleRun(t, mustCfg, pred)
				may := oracleRun(t, mayCfg, pred)

				got, _ := simRun(t, n, hsjBuilder(n, pred, win, win),
					feedConfig(rs, ss, WindowSpec{Count: win}, WindowSpec{Count: win}, batch), DefaultCostModel())

				for k, c := range got {
					if c > 1 {
						t.Fatalf("duplicate result %+v emitted %d times", k, c)
					}
					if may[k] == 0 {
						t.Errorf("result %+v outside the grown window", k)
					}
				}
				// When the input stops, pop-driven motion stops with it,
				// so pairs still travelling at end-of-stream never meet —
				// a teardown artifact of the finite test run (the paper's
				// streams flow continuously). Require completeness only
				// for pairs whose window lifetime finished while the
				// stream was still flowing.
				cutoff := uint64(tuples - win - delta)
				for k := range must {
					if k.RSeq >= cutoff || k.SSeq >= cutoff {
						continue
					}
					if got[k] == 0 {
						t.Errorf("missing result %+v (valid even under shrunk window)", k)
					}
				}
			})
		}
	}
}

func TestLLHJAblationAckOffMisses(t *testing.T) {
	// With the acknowledgement mechanism disabled, tuples crossing "in
	// flight" miss each other (§4.2.2) — verify the mechanism is
	// actually load-bearing by observing missed pairs and no spurious
	// ones.
	pred := workload.BandPredicate
	rs, ss := genStreams(500, 1000, 5)
	cfgFeed := feedConfig(rs, ss, WindowSpec{Count: 150}, WindowSpec{Count: 150}, 1)
	want := oracleRun(t, cfgFeed, pred)

	ncfg := &core.Config[workload.RTuple, workload.STuple]{Nodes: 6, Pred: pred, DisableAck: true}
	build := func(k int) core.NodeLogic[workload.RTuple, workload.STuple] { return core.NewNode(ncfg, k) }
	cost := DefaultCostModel()
	cost.Jitter = 3000
	cost.JitterSeed = 3
	got, _ := simRun(t, 6, build, feedConfig(rs, ss, WindowSpec{Count: 150}, WindowSpec{Count: 150}, 1), cost)

	missing, extra, dups := diffMultiset(want, got)
	if extra != 0 || dups != 0 {
		t.Fatalf("ack-off must only cause misses, got %d extra, %d dups", extra, dups)
	}
	if missing == 0 {
		t.Skip("no in-flight crossings occurred in this schedule; ack mechanism not exercised")
	}
	t.Logf("ack-off ablation: %d of %d pairs missed", missing, len(want))
}

func TestLLHJAblationExpEndOffMisses(t *testing.T) {
	// Without expedition-end messages the expedition flags never clear,
	// so S arrivals can never match stored R copies: massive misses,
	// but still no duplicates.
	pred := workload.BandPredicate
	rs, ss := genStreams(500, 1000, 6)
	want := oracleRun(t, feedConfig(rs, ss, WindowSpec{Count: 150}, WindowSpec{Count: 150}, 4), pred)

	ncfg := &core.Config[workload.RTuple, workload.STuple]{Nodes: 4, Pred: pred, DisableExpEnd: true}
	build := func(k int) core.NodeLogic[workload.RTuple, workload.STuple] { return core.NewNode(ncfg, k) }
	got, _ := simRun(t, 4, build, feedConfig(rs, ss, WindowSpec{Count: 150}, WindowSpec{Count: 150}, 4), DefaultCostModel())

	missing, extra, dups := diffMultiset(want, got)
	if extra != 0 || dups != 0 {
		t.Fatalf("exp-end-off must only cause misses, got %d extra, %d dups", extra, dups)
	}
	if missing == 0 {
		t.Fatalf("exp-end-off should miss stored/stored and late pairs, but missed none")
	}
	t.Logf("exp-end-off ablation: %d of %d pairs missed", missing, len(want))
}

func TestLLHJIndexedMatchesOracle(t *testing.T) {
	// Equi-join with node-local hash indexes (Table 2) and band join
	// with node-local B-trees must both agree with the oracle exactly.
	rs, ss := genStreams(600, 1000, 11)

	t.Run("hash", func(t *testing.T) {
		pred := workload.EquiPredicate
		want := oracleRun(t, feedConfig(rs, ss, WindowSpec{Count: 200}, WindowSpec{Count: 200}, 8),
			stream.Predicate[workload.RTuple, workload.STuple](pred))
		ncfg := &core.Config[workload.RTuple, workload.STuple]{
			Nodes: 5, Pred: pred,
			Index: core.IndexHash, KeyR: workload.RKey, KeyS: workload.SKey,
		}
		build := func(k int) core.NodeLogic[workload.RTuple, workload.STuple] { return core.NewNode(ncfg, k) }
		got, _ := simRun(t, 5, build, feedConfig(rs, ss, WindowSpec{Count: 200}, WindowSpec{Count: 200}, 8), DefaultCostModel())
		missing, extra, dups := diffMultiset(want, got)
		if missing != 0 || extra != 0 || dups != 0 {
			t.Fatalf("hash-indexed LLHJ vs oracle: %d missing, %d extra, %d dups", missing, extra, dups)
		}
	})

	t.Run("btree-band", func(t *testing.T) {
		pred := workload.BandPredicate
		want := oracleRun(t, feedConfig(rs, ss, WindowSpec{Count: 200}, WindowSpec{Count: 200}, 8), pred)
		ncfg := &core.Config[workload.RTuple, workload.STuple]{
			Nodes: 5, Pred: pred,
			Index: core.IndexBTree, KeyR: workload.RKey, KeyS: workload.SKey, Band: 10,
		}
		build := func(k int) core.NodeLogic[workload.RTuple, workload.STuple] { return core.NewNode(ncfg, k) }
		got, _ := simRun(t, 5, build, feedConfig(rs, ss, WindowSpec{Count: 200}, WindowSpec{Count: 200}, 8), DefaultCostModel())
		missing, extra, dups := diffMultiset(want, got)
		if missing != 0 || extra != 0 || dups != 0 {
			t.Fatalf("btree-indexed LLHJ vs oracle: %d missing, %d extra, %d dups", missing, extra, dups)
		}
	})
}
