package pipeline

import (
	"testing"

	"handshakejoin/internal/core"
	"handshakejoin/internal/stream"
)

func intTuples(n int, periodNs int64) []stream.Tuple[int] {
	ts := make([]stream.Tuple[int], n)
	for i := range ts {
		ts[i] = stream.Tuple[int]{Seq: uint64(i), TS: int64(i) * periodNs, Wall: int64(i) * periodNs, Payload: i}
	}
	return ts
}

func intFeed(t *testing.T, rs, ss []stream.Tuple[int], winR, winS WindowSpec, batch int) *Feed[int, int] {
	t.Helper()
	f, err := NewFeed(FeedConfig[int, int]{
		NextR:   sliceGen(rs),
		NextS:   sliceGen(ss),
		WindowR: winR,
		WindowS: winS,
		Batch:   batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func drain(t *testing.T, f *Feed[int, int]) []Action[int, int] {
	t.Helper()
	var out []Action[int, int]
	for {
		a, ok := f.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

func TestFeedBatchingAndDueTimes(t *testing.T) {
	rs := intTuples(8, 100)
	ss := intTuples(8, 100)
	f := intFeed(t, rs, ss, WindowSpec{}, WindowSpec{}, 4)
	acts := drain(t, f)
	// 8 tuples per side, batch 4: two R batches and two S batches.
	if len(acts) != 4 {
		t.Fatalf("actions = %d, want 4", len(acts))
	}
	for _, a := range acts {
		if a.Msg.Kind != core.KindArrival {
			t.Fatalf("unexpected kind %v without windows", a.Msg.Kind)
		}
		if got := a.Msg.Len(); got != 4 {
			t.Fatalf("batch size %d, want 4", got)
		}
		// Batch due = timestamp of its last tuple (the batching delay
		// the paper analyses).
		var last int64
		if a.Msg.Side == stream.R {
			last = a.Msg.R[len(a.Msg.R)-1].TS
		} else {
			last = a.Msg.S[len(a.Msg.S)-1].TS
		}
		if a.Due != last {
			t.Fatalf("due %d != last tuple ts %d", a.Due, last)
		}
	}
	r, s := f.Counts()
	if r != 8 || s != 8 {
		t.Fatalf("counts = (%d, %d)", r, s)
	}
}

func TestFeedActionsMonotonic(t *testing.T) {
	rs := intTuples(200, 70)
	ss := intTuples(200, 110)
	f := intFeed(t, rs, ss, WindowSpec{Duration: 900}, WindowSpec{Count: 13}, 3)
	last := int64(-1)
	for _, a := range drain(t, f) {
		if a.Due < last {
			t.Fatalf("due times regressed: %d after %d", a.Due, last)
		}
		last = a.Due
	}
}

func TestFeedExpiryBeforeArrivalOnTie(t *testing.T) {
	// An expiry due at time t must be scheduled before an arrival with
	// timestamp t (exclusive trailing window edge).
	rs := intTuples(6, 100)
	ss := intTuples(6, 100)
	f := intFeed(t, rs, ss, WindowSpec{Duration: 150}, WindowSpec{Duration: 150}, 1)
	acts := drain(t, f)
	for i := 1; i < len(acts); i++ {
		if acts[i].Due == acts[i-1].Due &&
			acts[i].Msg.Kind == core.KindExpiry && acts[i-1].Msg.Kind == core.KindArrival &&
			acts[i].End == acts[i-1].End {
			// Same end, same due: the expiry came after an arrival —
			// only acceptable if the expiry's subjects arrived at that
			// very arrival (count windows); with duration windows this
			// is a scheduling bug.
			t.Fatalf("expiry scheduled after arrival at the same due %d", acts[i].Due)
		}
	}
}

func TestFeedEndsRouting(t *testing.T) {
	rs := intTuples(4, 100)
	ss := intTuples(4, 100)
	f := intFeed(t, rs, ss, WindowSpec{Count: 2}, WindowSpec{Count: 2}, 1)
	for _, a := range drain(t, f) {
		switch {
		case a.Msg.Kind == core.KindArrival && a.Msg.Side == stream.R:
			if a.End != LeftEnd {
				t.Fatal("R arrival not at left end")
			}
		case a.Msg.Kind == core.KindArrival && a.Msg.Side == stream.S:
			if a.End != RightEnd {
				t.Fatal("S arrival not at right end")
			}
		case a.Msg.Kind == core.KindExpiry && a.Msg.Side == stream.R:
			if a.End != RightEnd {
				t.Fatal("R expiry must enter at the right end (§4.2.4)")
			}
		case a.Msg.Kind == core.KindExpiry && a.Msg.Side == stream.S:
			if a.End != LeftEnd {
				t.Fatal("S expiry must enter at the left end (§4.2.4)")
			}
		}
	}
}

func TestFeedCountWindowExpiresExactly(t *testing.T) {
	rs := intTuples(10, 100)
	ss := intTuples(0, 100)
	f := intFeed(t, rs, ss, WindowSpec{Count: 3}, WindowSpec{}, 1)
	var expired []uint64
	for _, a := range drain(t, f) {
		if a.Msg.Kind == core.KindExpiry {
			if a.Msg.Side != stream.R {
				t.Fatal("S expiry without S tuples")
			}
			expired = append(expired, a.Msg.Seqs...)
		}
	}
	// Tuples 0..6 are pushed out by arrivals 3..9; 7, 8, 9 stay.
	if len(expired) != 7 {
		t.Fatalf("expired %v, want seqs 0..6", expired)
	}
	for i, seq := range expired {
		if seq != uint64(i) {
			t.Fatalf("expiry order %v, want ascending seqs", expired)
		}
	}
}

func TestFeedDurationWindowExpiry(t *testing.T) {
	rs := intTuples(5, 100) // ts 0,100,...,400
	ss := intTuples(5, 100)
	f := intFeed(t, rs, ss, WindowSpec{Duration: 250}, WindowSpec{Duration: 250}, 1)
	var dues []int64
	for _, a := range drain(t, f) {
		if a.Msg.Kind == core.KindExpiry && a.Msg.Side == stream.R {
			dues = append(dues, a.Due)
		}
	}
	// Tuple at ts T expires at T+250; all five eventually expire.
	if len(dues) == 0 {
		t.Fatal("no duration expiries emitted")
	}
	if dues[0] != 250 {
		t.Fatalf("first expiry due %d, want 250", dues[0])
	}
}

func TestFeedValidation(t *testing.T) {
	if _, err := NewFeed(FeedConfig[int, int]{}); err == nil {
		t.Fatal("feed without generators accepted")
	}
}

func TestFeedUnevenStreams(t *testing.T) {
	// R exhausts first; S keeps flowing and R expiries still drain.
	rs := intTuples(4, 100)
	ss := intTuples(40, 100)
	f := intFeed(t, rs, ss, WindowSpec{Duration: 200}, WindowSpec{Duration: 200}, 2)
	rArr, sArr, rExpd := 0, 0, 0
	for _, a := range drain(t, f) {
		switch {
		case a.Msg.Kind == core.KindArrival && a.Msg.Side == stream.R:
			rArr += len(a.Msg.R)
		case a.Msg.Kind == core.KindArrival && a.Msg.Side == stream.S:
			sArr += len(a.Msg.S)
		case a.Msg.Kind == core.KindExpiry && a.Msg.Side == stream.R:
			rExpd += len(a.Msg.Seqs)
		}
	}
	if rArr != 4 || sArr != 40 || rExpd != 4 {
		t.Fatalf("rArr=%d sArr=%d rExpd=%d", rArr, sArr, rExpd)
	}
}
