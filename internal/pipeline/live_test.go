package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"handshakejoin/internal/clock"
	"handshakejoin/internal/core"
	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// liveRun drains the feed through a live goroutine pipeline and returns
// the result multiset and stats. Feed actions are injected in order; due
// times are ignored (the live runtime measures real time, and for
// correctness only the injection order matters).
func liveRun(t *testing.T, n int, build core.Builder[workload.RTuple, workload.STuple], cfg FeedConfig[workload.RTuple, workload.STuple]) (map[stream.PairKey]int, core.Stats) {
	t.Helper()
	feed, err := NewFeed(cfg)
	if err != nil {
		t.Fatalf("NewFeed: %v", err)
	}
	// Keep the in-flight volume far below the window sizes, as the
	// window semantics require (see LiveConfig.DepthCap): the tests use
	// windows of ~100 tuples, so a handful of in-flight messages is the
	// sane regime. Real deployments get this for free from arrival
	// pacing.
	lv := NewLive(n, build, clock.NewWall(), LiveConfig{DepthCap: 6})

	got := make(map[stream.PairKey]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	stopDrain := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			idle := true
			for _, q := range lv.ResultQueues() {
				for {
					r, ok, _ := q.TryGet()
					if !ok {
						break
					}
					idle = false
					mu.Lock()
					got[r.Pair.Key()]++
					mu.Unlock()
				}
			}
			if idle {
				select {
				case <-stopDrain:
					// Final sweep after the pipeline stopped.
					for _, q := range lv.ResultQueues() {
						for {
							r, ok, _ := q.TryGet()
							if !ok {
								break
							}
							mu.Lock()
							got[r.Pair.Key()]++
							mu.Unlock()
						}
					}
					return
				default:
					runtime.Gosched()
				}
			}
		}
	}()

	for {
		a, ok := feed.Next()
		if !ok {
			break
		}
		if !lv.Inject(a.End, a.Msg) {
			t.Fatalf("inject failed")
		}
	}
	lv.Quiesce()
	stats := lv.Stats()
	lv.Stop()
	close(stopDrain)
	wg.Wait()
	return got, stats
}

func TestLLHJLiveMatchesOracleExactly(t *testing.T) {
	pred := workload.BandPredicate
	// Live runs need window ≫ batch × in-flight depth (the paper's
	// configurations have window:batch ratios above 40,000:1); batch 64
	// against a 140-tuple window is inherently pathological and is
	// covered by the simulator, which paces injections in virtual time.
	rs, ss := genStreams(400, 1000, 31)
	for _, n := range []int{1, 2, 4, 7} {
		for _, batch := range []int{1, 8} {
			t.Run(fmt.Sprintf("n=%d/batch=%d", n, batch), func(t *testing.T) {
				winR, winS := WindowSpec{Count: 140}, WindowSpec{Count: 100}
				want := oracleRun(t, feedConfig(rs, ss, winR, winS, batch), pred)
				got, stats := liveRun(t, n, llhjBuilder(n, pred), feedConfig(rs, ss, winR, winS, batch))
				missing, extra, dups := diffMultiset(want, got)
				if missing != 0 || extra != 0 || dups != 0 {
					t.Fatalf("live LLHJ vs oracle: %d missing, %d extra, %d dups (oracle %d, got %d)",
						missing, extra, dups, len(want), len(got))
				}
				if stats.PendingExpiries != 0 {
					t.Errorf("pending expiries in live run: %d", stats.PendingExpiries)
				}
			})
		}
	}
}

func TestLLHJLiveRepeatedStress(t *testing.T) {
	// Repeat a medium-size live run several times: goroutine scheduling
	// differs run to run, so this explores real interleavings of the
	// ack / expedition-end machinery under the race detector.
	pred := workload.BandPredicate
	rs, ss := genStreams(300, 1000, 13)
	cfgF := func() FeedConfig[workload.RTuple, workload.STuple] {
		return feedConfig(rs, ss, WindowSpec{Count: 80}, WindowSpec{Count: 80}, 2)
	}
	want := oracleRun(t, cfgF(), pred)
	reps := 6
	if testing.Short() {
		reps = 2
	}
	for i := 0; i < reps; i++ {
		got, _ := liveRun(t, 5, llhjBuilder(5, pred), cfgF())
		missing, extra, dups := diffMultiset(want, got)
		if missing != 0 || extra != 0 || dups != 0 {
			t.Fatalf("rep %d: %d missing, %d extra, %d dups", i, missing, extra, dups)
		}
	}
}

func TestHSJLiveNoDuplicatesAndContained(t *testing.T) {
	pred := workload.BandPredicate
	const tuples = 600
	rs, ss := genStreams(tuples, 1000, 77)
	const win = 200
	const batch = 4
	delta := 6*batch + 16 // live scheduling adds slack over the sim bound
	may := oracleRun(t, feedConfig(rs, ss, WindowSpec{Count: win + delta}, WindowSpec{Count: win + delta}, batch), pred)
	must := oracleRun(t, feedConfig(rs, ss, WindowSpec{Count: win - delta}, WindowSpec{Count: win - delta}, batch), pred)

	got, _ := liveRun(t, 4, hsjBuilder(4, pred, win, win),
		feedConfig(rs, ss, WindowSpec{Count: win}, WindowSpec{Count: win}, batch))

	for k, c := range got {
		if c > 1 {
			t.Fatalf("duplicate result %+v emitted %d times", k, c)
		}
		if may[k] == 0 {
			t.Errorf("result %+v outside the grown window", k)
		}
	}
	cutoff := uint64(tuples - win - delta)
	for k := range must {
		if k.RSeq >= cutoff || k.SSeq >= cutoff {
			continue
		}
		if got[k] == 0 {
			t.Errorf("missing result %+v", k)
		}
	}
}

func TestLiveQuiesceIdlePipeline(t *testing.T) {
	// Quiesce on a pipeline that never received input must return.
	lv := NewLive(3, llhjBuilder(3, workload.BandPredicate), clock.NewWall(), LiveConfig{})
	lv.Quiesce()
	lv.Stop()
	if st := lv.Stats(); st.RArrivals != 0 || st.SArrivals != 0 {
		t.Fatalf("idle pipeline processed tuples: %+v", st)
	}
}

func TestLiveHighWaterMarks(t *testing.T) {
	// After quiescing, the high-water marks must equal the last
	// timestamps of each stream (every tuple reached its pipeline end).
	pred := workload.BandPredicate
	rs, ss := genStreams(200, 1000, 3)
	feed, err := NewFeed(feedConfig(rs, ss, WindowSpec{Count: 50}, WindowSpec{Count: 50}, 4))
	if err != nil {
		t.Fatal(err)
	}
	lv := NewLive(4, llhjBuilder(4, pred), clock.NewWall(), LiveConfig{})
	for {
		a, ok := feed.Next()
		if !ok {
			break
		}
		lv.Inject(a.End, a.Msg)
	}
	lv.Quiesce()
	defer lv.Stop()
	wantR := rs[len(rs)-1].TS
	wantS := ss[len(ss)-1].TS
	if lv.HWMR() != wantR || lv.HWMS() != wantS {
		t.Fatalf("HWM = (%d, %d), want (%d, %d)", lv.HWMR(), lv.HWMS(), wantR, wantS)
	}
}
