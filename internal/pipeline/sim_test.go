package pipeline

import (
	"testing"

	"handshakejoin/internal/core"
	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// TestSimDeterminism: identical inputs and seeds must produce the
// identical result sequence, event for event.
func TestSimDeterminism(t *testing.T) {
	pred := workload.BandPredicate
	rs, ss := genStreams(300, 1000, 17)
	run := func() []stream.PairKey {
		feed, err := NewFeed(feedConfig(rs, ss, WindowSpec{Count: 100}, WindowSpec{Count: 100}, 4))
		if err != nil {
			t.Fatal(err)
		}
		cost := DefaultCostModel()
		cost.Jitter = 3000
		cost.JitterSeed = 99
		sim := NewSim(5, llhjBuilder(5, pred), cost)
		var keys []stream.PairKey
		sim.OnResult(func(_ int, r core.Result[workload.RTuple, workload.STuple]) {
			keys = append(keys, r.Pair.Key())
		})
		sim.Drain(feed)
		return keys
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSimVirtualTimeAdvances: the clock follows event times and the
// utilization accounting stays within [0, 1] per node.
func TestSimVirtualTimeAdvances(t *testing.T) {
	pred := workload.BandPredicate
	rs, ss := genStreams(200, 1000, 5)
	feed, err := NewFeed(feedConfig(rs, ss, WindowSpec{Count: 50}, WindowSpec{Count: 50}, 4))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(4, llhjBuilder(4, pred), DefaultCostModel())
	sim.Drain(feed)
	if sim.Now() < rs[len(rs)-1].TS {
		t.Fatalf("virtual clock %d behind the last arrival %d", sim.Now(), rs[len(rs)-1].TS)
	}
	for k, u := range sim.Utilization() {
		if u < 0 || u > 1 {
			t.Fatalf("node %d utilization %f out of range", k, u)
		}
	}
	if sim.MaxUtilization() <= 0 {
		t.Fatal("no busy time recorded")
	}
}

// TestSimRunUntilStopsAtDeadline: events after the deadline stay
// unprocessed.
func TestSimRunUntilStopsAtDeadline(t *testing.T) {
	pred := workload.BandPredicate
	rs, ss := genStreams(500, 1000, 5) // 1ms apart: last at ~499ms virtual
	feed, err := NewFeed(feedConfig(rs, ss, WindowSpec{Count: 50}, WindowSpec{Count: 50}, 1))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(3, llhjBuilder(3, pred), DefaultCostModel())
	deadline := int64(100e6) // 100 ms
	sim.RunUntil(deadline, feed)
	slack := deadline + int64(1e6)
	if sim.Now() > slack {
		t.Fatalf("clock ran to %d, deadline %d", sim.Now(), deadline)
	}
	st := sim.Stats()
	// Roughly 100 of the 500 tuples should have been processed by each
	// of the 3 nodes.
	if st.RArrivals == 0 || st.RArrivals > 3*150 {
		t.Fatalf("RArrivals = %d, want ~300", st.RArrivals)
	}
}

// TestSimCollectorPunctuationInvariant runs the full pipeline with the
// modelled collector and asserts the §6 guarantee on the punctuated
// stream: after a punctuation with timestamp tp, no result with
// ts < tp ever appears.
func TestSimCollectorPunctuationInvariant(t *testing.T) {
	pred := workload.BandPredicate
	rs, ss := genStreams(2000, 1000, 23)
	feed, err := NewFeed(feedConfig(rs, ss, WindowSpec{Duration: 100e6}, WindowSpec{Duration: 100e6}, 8))
	if err != nil {
		t.Fatal(err)
	}
	cost := DefaultCostModel()
	cost.Jitter = 2000
	cost.JitterSeed = 7
	sim := NewSim(6, llhjBuilder(6, pred), cost)

	lastPunct := int64(-1)
	violations := 0
	results := 0
	puncts := 0
	sim.EnableCollector(5e6, func(punct int64, batch []core.Result[workload.RTuple, workload.STuple]) {
		for _, r := range batch {
			results++
			if r.Pair.TS() < lastPunct {
				violations++
			}
		}
		if punct > lastPunct {
			lastPunct = punct
			puncts++
		}
	})
	sim.Drain(feed)
	sim.FlushResults()
	if results == 0 || puncts == 0 {
		t.Fatalf("results=%d puncts=%d; experiment vacuous", results, puncts)
	}
	if violations != 0 {
		t.Fatalf("%d results violated their punctuation guarantee", violations)
	}
}

// TestSimFIFOUnderJitter: even with heavy delivery jitter, messages on
// one link never overtake each other — verified indirectly by exact
// oracle equality elsewhere, and directly here via the lastSend clamp.
func TestSimFIFOUnderJitter(t *testing.T) {
	pred := workload.BandPredicate
	rs, ss := genStreams(150, 1000, 3)
	feed, err := NewFeed(feedConfig(rs, ss, WindowSpec{Count: 40}, WindowSpec{Count: 40}, 2))
	if err != nil {
		t.Fatal(err)
	}
	cost := DefaultCostModel()
	cost.Jitter = 50000 // 50x the hop latency
	cost.JitterSeed = 11
	sim := NewSim(4, llhjBuilder(4, pred), cost)
	sim.Drain(feed)
	// The protocol self-checks: out-of-order delivery of acks versus
	// arrivals would leave unacknowledged tuples or panic on unexpected
	// message kinds. Quiescence means every in-flight buffer drained.
	for k, nl := range sim.Nodes() {
		node := nl.(*core.Node[workload.RTuple, workload.STuple])
		if l := node.IWSLen(); l != 0 {
			t.Fatalf("node %d: %d unacked tuples after drain under jitter", k, l)
		}
	}
}

// TestSimMaxQueuedEvents: backlog accounting moves and is bounded for a
// sustainable run.
func TestSimMaxQueuedEvents(t *testing.T) {
	pred := workload.BandPredicate
	rs, ss := genStreams(300, 1000, 9)
	feed, err := NewFeed(feedConfig(rs, ss, WindowSpec{Count: 60}, WindowSpec{Count: 60}, 4))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(4, llhjBuilder(4, pred), DefaultCostModel())
	sim.Drain(feed)
	if sim.MaxQueuedEvents() <= 0 {
		t.Fatal("no events ever queued")
	}
	if sim.MaxQueuedEvents() > 10000 {
		t.Fatalf("queue backlog %d for a light run; accounting broken", sim.MaxQueuedEvents())
	}
}
