// Package pipeline executes handshake-join pipelines. Two runtimes drive
// the same protocol state machines (core.NodeLogic):
//
//   - Live: one goroutine per pipeline node connected by bounded FIFO
//     links, measuring real wall-clock behaviour (package-level doc in
//     live.go);
//   - Sim: a deterministic discrete-event simulator with a per-node cost
//     model and virtual clock, able to run paper-scale configurations
//     (40 cores) on any machine (sim.go).
//
// The Feed in this file implements the paper's external driver
// (§4.2.4 and Figure 15): it is aware of the sliding-window
// specification and produces the interleaved schedule of arrival
// batches and expiry messages for both pipeline ends; the join pipeline
// itself stays window-type agnostic.
package pipeline

import (
	"fmt"

	"handshakejoin/internal/core"
	"handshakejoin/internal/stream"
)

// WindowSpec describes one stream's sliding window.
type WindowSpec struct {
	// Duration is the time-based window length in nanoseconds
	// (tuples expire Duration after their timestamp). Zero disables
	// time-based expiry.
	Duration int64
	// Count is the tuple-based window length (the last Count tuples).
	// Zero disables count-based expiry. Duration and Count may be
	// combined; a tuple expires when either bound is crossed.
	Count int
}

// expiryDue returns when the tuple (seq, ts) leaves the window given the
// side's arrival progress, under the time-based bound only; count-based
// expiry is handled by arrival counting.
func (w WindowSpec) expiryDue(ts int64) (int64, bool) {
	if w.Duration <= 0 {
		return 0, false
	}
	return ts + w.Duration, true
}

// FeedConfig parameterizes the driver schedule.
type FeedConfig[L, R any] struct {
	// NextR and NextS produce the input streams in timestamp order;
	// they return ok=false when the stream is exhausted.
	NextR func() (stream.Tuple[L], bool)
	// NextS produces the S stream.
	NextS func() (stream.Tuple[R], bool)
	// WindowR and WindowS are the sliding-window specifications.
	WindowR WindowSpec
	// WindowS is the S-side window specification.
	WindowS WindowSpec
	// Batch is the number of tuples the driver groups per arrival
	// message (the paper's driver batches 64 tuples by default; §7.3.1
	// evaluates a batch size of 4). Minimum 1.
	Batch int
}

// End identifies a pipeline end for injection.
type End uint8

const (
	// LeftEnd is where R arrivals and S expiries enter.
	LeftEnd End = iota
	// RightEnd is where S arrivals and R expiries enter.
	RightEnd
)

// Action is one injection the driver performs: deliver Msg to the given
// pipeline end no earlier than Due (virtual nanoseconds).
type Action[L, R any] struct {
	Due int64
	End End
	Msg core.Msg[L, R]
}

type pendingExpiry struct {
	seq uint64
	due int64
}

// Feed produces the interleaved injection schedule for both pipeline
// ends in global timestamp order. Expiries due at time t are scheduled
// before arrivals with timestamp t: the window bounds are exclusive at
// the trailing edge.
type Feed[L, R any] struct {
	cfg FeedConfig[L, R]

	rBatch []stream.Tuple[L] // next pending R batch (already generated)
	sBatch []stream.Tuple[R]
	rDone  bool
	sDone  bool

	// Time-based expiry queues (FIFO: arrivals are in ts order, so
	// expiry due times are monotonic too).
	rExp []pendingExpiry
	sExp []pendingExpiry
	// Count-based windows: ring of sequence numbers currently inside.
	rInWindow []uint64
	sInWindow []uint64

	rCount, sCount uint64
	lastDue        int64 // monotonic clamp: actions never go back in time
}

// NewFeed validates cfg and returns a Feed.
func NewFeed[L, R any](cfg FeedConfig[L, R]) (*Feed[L, R], error) {
	if cfg.NextR == nil || cfg.NextS == nil {
		return nil, fmt.Errorf("runtime: feed requires NextR and NextS")
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	f := &Feed[L, R]{cfg: cfg}
	f.refillR()
	f.refillS()
	return f, nil
}

func (f *Feed[L, R]) refillR() {
	if f.rDone || len(f.rBatch) > 0 {
		return
	}
	for len(f.rBatch) < f.cfg.Batch {
		t, ok := f.cfg.NextR()
		if !ok {
			f.rDone = true
			break
		}
		f.rBatch = append(f.rBatch, t)
	}
}

func (f *Feed[L, R]) refillS() {
	if f.sDone || len(f.sBatch) > 0 {
		return
	}
	for len(f.sBatch) < f.cfg.Batch {
		t, ok := f.cfg.NextS()
		if !ok {
			f.sDone = true
			break
		}
		f.sBatch = append(f.sBatch, t)
	}
}

// batchDue returns the injection time of a batch: the timestamp of its
// last tuple (the driver has to wait for the batch to fill; this is the
// batching delay the paper identifies as the dominant latency source of
// LLHJ, §7.3).
func batchDueR[L any](b []stream.Tuple[L]) int64 { return b[len(b)-1].TS }

// Next returns the next injection in schedule order; ok is false when
// both streams are exhausted and all expiries have been delivered.
// Action due times are non-decreasing: emission order is the semantic
// order, and a runtime that delivers by time must never reorder it.
func (f *Feed[L, R]) Next() (Action[L, R], bool) {
	a, ok := f.next()
	if !ok {
		return a, false
	}
	if a.Due < f.lastDue {
		a.Due = f.lastDue
	}
	f.lastDue = a.Due
	return a, true
}

func (f *Feed[L, R]) next() (Action[L, R], bool) {
	f.refillR()
	f.refillS()

	const never = int64(1) << 62
	rArr, sArr, rExpDue, sExpDue := never, never, never, never
	if len(f.rBatch) > 0 {
		rArr = batchDueR(f.rBatch)
	}
	if len(f.sBatch) > 0 {
		sArr = batchDueR(f.sBatch)
	}
	if len(f.rExp) > 0 {
		rExpDue = f.rExp[0].due
	}
	if len(f.sExp) > 0 {
		sExpDue = f.sExp[0].due
	}

	// Expiries win ties so that an arrival at time t does not join
	// tuples expiring at t.
	switch {
	case rExpDue <= sExpDue && rExpDue <= rArr && rExpDue <= sArr && rExpDue != never:
		return f.popExpiryR(rExpDue), true
	case sExpDue <= rArr && sExpDue <= sArr && sExpDue != never:
		return f.popExpiryS(sExpDue), true
	case rArr <= sArr && rArr != never:
		return f.popArrivalR(), true
	case sArr != never:
		return f.popArrivalS(), true
	default:
		return Action[L, R]{}, false
	}
}

// popExpiryR drains all R expiries due at or before t into one message.
// R expiries enter at the right end (§4.2.4).
func (f *Feed[L, R]) popExpiryR(t int64) Action[L, R] {
	var seqs []uint64
	for len(f.rExp) > 0 && f.rExp[0].due <= t {
		seqs = append(seqs, f.rExp[0].seq)
		f.rExp = f.rExp[1:]
	}
	return Action[L, R]{
		Due: t,
		End: RightEnd,
		Msg: core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.R, Seqs: seqs},
	}
}

// popExpiryS drains all S expiries due at or before t into one message.
// S expiries enter at the left end.
func (f *Feed[L, R]) popExpiryS(t int64) Action[L, R] {
	var seqs []uint64
	for len(f.sExp) > 0 && f.sExp[0].due <= t {
		seqs = append(seqs, f.sExp[0].seq)
		f.sExp = f.sExp[1:]
	}
	return Action[L, R]{
		Due: t,
		End: LeftEnd,
		Msg: core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.S, Seqs: seqs},
	}
}

func (f *Feed[L, R]) popArrivalR() Action[L, R] {
	batch := f.rBatch
	f.rBatch = nil
	due := batchDueR(batch)
	for _, t := range batch {
		f.rCount++
		if d, ok := f.cfg.WindowR.expiryDue(t.TS); ok {
			f.rExp = append(f.rExp, pendingExpiry{seq: t.Seq, due: d})
		}
		if c := f.cfg.WindowR.Count; c > 0 {
			f.rInWindow = append(f.rInWindow, t.Seq)
			// Count-based expiry: the arrival of tuple w pushes tuple
			// w−Count out. The expiry becomes due when the batch
			// carrying w is injected (the batch due), never earlier —
			// an earlier due time would let the expiry overtake
			// arrival batches that were already emitted.
			for len(f.rInWindow) > c {
				f.rExp = append(f.rExp, pendingExpiry{seq: f.rInWindow[0], due: due})
				f.rInWindow = f.rInWindow[1:]
			}
		}
	}
	return Action[L, R]{
		Due: due,
		End: LeftEnd,
		Msg: core.Msg[L, R]{Kind: core.KindArrival, Side: stream.R, R: batch},
	}
}

func (f *Feed[L, R]) popArrivalS() Action[L, R] {
	batch := f.sBatch
	f.sBatch = nil
	due := batchDueR(batch)
	for _, t := range batch {
		f.sCount++
		if d, ok := f.cfg.WindowS.expiryDue(t.TS); ok {
			f.sExp = append(f.sExp, pendingExpiry{seq: t.Seq, due: d})
		}
		if c := f.cfg.WindowS.Count; c > 0 {
			f.sInWindow = append(f.sInWindow, t.Seq)
			for len(f.sInWindow) > c {
				f.sExp = append(f.sExp, pendingExpiry{seq: f.sInWindow[0], due: due})
				f.sInWindow = f.sInWindow[1:]
			}
		}
	}
	return Action[L, R]{
		Due: due,
		End: RightEnd,
		Msg: core.Msg[L, R]{Kind: core.KindArrival, Side: stream.S, S: batch},
	}
}

// Counts returns how many tuples of each stream have been scheduled.
func (f *Feed[L, R]) Counts() (r, s uint64) { return f.rCount, f.sCount }
