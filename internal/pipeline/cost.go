package pipeline

// CostModel translates protocol work into virtual time for the
// discrete-event simulator. The defaults approximate the paper's
// hardware (2.2 GHz Opteron "Magny Cours"): a handful of nanoseconds per
// window entry inspected, sub-microsecond per-message overhead, and a
// core-to-core hop latency of about one microsecond ("Baumann et al.
// report a single-hop latency below 1 µs", §7.3.1).
type CostModel struct {
	// PerEntry is the virtual cost (ns) of inspecting one window entry
	// during a scan or probe.
	PerEntry int64
	// PerTuple is the fixed virtual cost (ns) of handling one tuple in
	// an arrival message (copy, bookkeeping, window insert).
	PerTuple int64
	// PerMsg is the fixed virtual cost (ns) of dequeuing one message.
	PerMsg int64
	// Hop is the virtual link delay (ns) between neighbouring cores.
	Hop int64
	// Jitter, when non-zero, adds a pseudo-random extra delay in
	// [0, Jitter) ns to every message delivery. Deterministic given
	// JitterSeed; used by correctness tests to explore interleavings.
	Jitter int64
	// JitterSeed seeds the jitter PRNG.
	JitterSeed uint64
}

// DefaultCostModel returns the Magny-Cours-flavoured defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		PerEntry: 5,
		PerTuple: 25,
		PerMsg:   200,
		Hop:      1000,
	}
}

// CoarseCostModel returns a model with microsecond-scale per-entry cost.
// Sustainable-throughput searches use it so that window sizes (in
// tuples) stay small enough to simulate quickly while preserving the
// scan-dominated cost structure that shapes the paper's throughput
// curves.
func CoarseCostModel() CostModel {
	return CostModel{
		PerEntry: 1000,
		PerTuple: 2000,
		PerMsg:   4000,
		Hop:      1000,
	}
}
