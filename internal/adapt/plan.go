package adapt

import "sort"

// Move reassigns one key-group to a new shard.
type Move struct {
	Group    uint32
	From, To int
}

// Plan detects load skew across shards and picks up to maxMoves group
// moves that shrink it.
//
// assign is the current group → shard table, groupLoad the per-group
// tuple counts observed this cycle, and shardExtra a per-shard load
// bias (the controller passes pipeline queue depths, so a shard with a
// standing backlog reads as hotter than its routed count alone).
// threshold is the max/mean ratio above which a shard counts as
// overloaded; pending reports groups that already have a move in
// flight and must not be re-planned.
//
// The plan is greedy: repeatedly take the most loaded shard and move
// its largest group that (a) fits under the gap to the least loaded
// shard — so the maximum strictly decreases — and (b) is not the
// donor's dominant hot group when moving it could not help. A group
// hotter than the donor/receiver gap is skipped rather than bounced
// between shards; relieving a skewed shard then proceeds by
// evacuating its colder co-resident groups, which is also the only
// kind of move the cut-over protocol can apply while the group's
// window keeps refilling (see the package comment).
func Plan(assign []uint32, groupLoad []uint64, shardExtra []uint64, shards int, threshold float64, maxMoves int, pending func(uint32) bool) []Move {
	if shards < 2 || maxMoves < 1 || len(assign) != len(groupLoad) {
		return nil
	}
	if threshold < 1 {
		threshold = 1
	}
	shardLoad := make([]uint64, shards)
	var total uint64
	for g, s := range assign {
		shardLoad[s] += groupLoad[g]
		total += groupLoad[g]
	}
	for s := 0; s < shards && s < len(shardExtra); s++ {
		shardLoad[s] += shardExtra[s]
		total += shardExtra[s]
	}
	if total == 0 {
		return nil
	}
	mean := float64(total) / float64(shards)
	var maxLoad uint64
	for _, l := range shardLoad {
		if l > maxLoad {
			maxLoad = l
		}
	}
	if float64(maxLoad) <= threshold*mean {
		return nil // balanced: skip the per-group work entirely
	}

	// Groups per shard, hottest first, immovables excluded.
	byShard := make([][]uint32, shards)
	for g, s := range assign {
		if groupLoad[g] == 0 || pending(uint32(g)) {
			continue
		}
		byShard[s] = append(byShard[s], uint32(g))
	}
	for s := range byShard {
		gs := byShard[s]
		sort.Slice(gs, func(i, j int) bool { return groupLoad[gs[i]] > groupLoad[gs[j]] })
	}

	var moves []Move
	exhausted := make([]bool, shards) // donors with no helpful candidate left
	for len(moves) < maxMoves {
		donor, recv := -1, -1
		for s := 0; s < shards; s++ {
			if !exhausted[s] && len(byShard[s]) > 0 && (donor == -1 || shardLoad[s] > shardLoad[donor]) {
				donor = s
			}
			if recv == -1 || shardLoad[s] < shardLoad[recv] {
				recv = s
			}
		}
		if donor == -1 || donor == recv || float64(shardLoad[donor]) <= threshold*mean {
			break
		}
		gap := shardLoad[donor] - shardLoad[recv]
		pick := -1
		for i, g := range byShard[donor] {
			if groupLoad[g] < gap {
				pick = i
				break
			}
		}
		if pick == -1 {
			// Every remaining candidate is at least as large as the
			// gap — moving one would just relocate the hotspot.
			exhausted[donor] = true
			continue
		}
		g := byShard[donor][pick]
		byShard[donor] = append(byShard[donor][:pick], byShard[donor][pick+1:]...)
		moves = append(moves, Move{Group: g, From: donor, To: recv})
		byShard[recv] = insertByLoad(byShard[recv], g, groupLoad)
		shardLoad[donor] -= groupLoad[g]
		shardLoad[recv] += groupLoad[g]
	}
	return moves
}

// insertByLoad keeps a shard's candidate list sorted hottest-first
// when a group lands on it mid-plan.
func insertByLoad(gs []uint32, g uint32, load []uint64) []uint32 {
	i := sort.Search(len(gs), func(i int) bool { return load[gs[i]] < load[g] })
	gs = append(gs, 0)
	copy(gs[i+1:], gs[i:])
	gs[i] = g
	return gs
}
