package adapt

import (
	"sort"
	"sync"
	"time"

	"handshakejoin/internal/probe"
)

// Probe exposes the race-safe load signals of one shard lane to the
// sampler. (Per-node comparison counters are deliberately absent: even
// now that they are atomics, they lag the pushers by the in-flight
// batches, while the control loop needs signals that lead — routed
// load and queue depth.)
type Probe interface {
	// Results returns the number of results the lane has assembled.
	Results() uint64
	// QueueDepth returns the messages in flight inside the lane's
	// pipeline — the back-pressure signal of a saturated shard.
	QueueDepth() int
}

// LaneSample is one shard's load sample over a collect period.
type LaneSample struct {
	// Routed counts tuples routed to the shard during the period.
	Routed uint64
	// Results is the lane's cumulative assembled-result count.
	Results uint64
	// QueueDepth is the in-flight message count at sample time.
	QueueDepth int
	// LastAdvance is the latest ingress timestamp routed to the shard
	// (the lane's watermark; a stale value marks an idle shard).
	LastAdvance int64
}

// Config tunes a Controller.
type Config struct {
	// SamplePeriod is the control-loop cadence.
	SamplePeriod time.Duration
	// SkewThreshold is the max/mean shard-load ratio above which the
	// planner starts moving groups.
	SkewThreshold float64
	// MaxMovesPerCycle bounds how many group moves one cycle may
	// propose.
	MaxMovesPerCycle int
	// MinCycleTuples is the minimum number of tuples a period must
	// route before its sample is considered significant enough to plan
	// from.
	MinCycleTuples uint64
	// StaleMoveCycles is how many cycles a proposed move may stay
	// unsafe before it is cancelled. It must comfortably exceed the
	// window residence time of a group's tuples in control cycles —
	// cancelling before the group's window could possibly empty
	// livelocks the plan-propose-cancel loop. Default 64.
	StaleMoveCycles uint64

	// EngageThreshold is the smoothed imbalance at which planning
	// engages. Defaults to SkewThreshold (the historical behavior);
	// setting it higher makes the controller slower to wake while
	// SkewThreshold keeps governing the per-cycle Plan threshold.
	EngageThreshold float64
	// DisengageRatio positions the disengage watermark between 1
	// (perfect balance) and EngageThreshold: planning goes quiet when
	// the smoothed imbalance falls below
	// 1 + (EngageThreshold-1)*DisengageRatio. Default 0.5; must be in
	// (0, 1]. A ratio of 1 collapses the hysteresis band.
	DisengageRatio float64

	// Migrator, when set, executes a freezing state migration of one
	// group to a target shard under the given tuple budget, returning
	// the number of tuples moved and whether the migration ran (false:
	// refused, e.g. over budget) — the all-or-nothing escalation path.
	// When BeginHandoff/AdvanceHandoff are set they take precedence and
	// escalation is incremental instead. Escalation is disabled when
	// no executor is set or MigrateBudget is 0.
	Migrator func(group uint32, to int, budget int) (tuples int, ok bool)

	// BeginHandoff commits an incremental migration of one group: the
	// routing table swaps to the target shard and the data plane starts
	// probe-only double-reads to the old one. It returns false when the
	// handoff cannot start (group already in handoff, engine closing);
	// the controller then backs the group off for MigrateAfterCycles.
	BeginHandoff func(group uint32, to int) bool
	// AdvanceHandoff moves one bounded slice (at most maxTuples window
	// tuples) of the group's state to its new shard. done tells the
	// scheduler to stop advancing this handoff; completed additionally
	// reports that it actually finished (the old shard is empty of the
	// group) rather than being dropped by the engine (e.g. shutdown) —
	// only completed handoffs count as migrations. The controller
	// advances the active handoff every cycle under the MigrateBudget
	// until done.
	AdvanceHandoff func(group uint32, maxTuples int) (moved int, done, completed bool)
	// SliceTuples bounds one slice hop of an incremental migration —
	// the longest ingress freeze a hop may cost, in window tuples (the
	// per-cycle total is still MigrateBudget). Default 1024.
	SliceTuples int

	// MinGapRatio is a noise floor on the migration gap check: a
	// candidate migrates only when the donor/receiver load gap exceeds
	// MinGapRatio times the mean shard load (in addition to exceeding
	// the group's own load). Zero disables the floor. Under heavy skew
	// the steady-state sample keeps jittering around the unsplittable
	// hot groups; without a floor that noise reads as an actionable gap
	// and migrations churn forever.
	MinGapRatio float64
	// MaxMigrationsPerSec rate-limits migration starts (handoff begins
	// and freezing migrations alike) with a burst of one. Zero means
	// unlimited. This is the churn cap: skew that survives the noise
	// floor can still only trigger a bounded number of moves per
	// second.
	MaxMigrationsPerSec float64
	// MigrateBudget is the per-cycle tuple budget for migrations; a
	// single move may finish the budget but never start beyond it, so
	// ingress stalls stay bounded.
	MigrateBudget int
	// MigrateAfterCycles is how long a pending move must have waited
	// for its drain-based cut-over before it escalates to migration.
	// It must be well below StaleMoveCycles, or intents are cancelled
	// before they can escalate. Default 4.
	MigrateAfterCycles uint64
	// MinMigrateLoad is the per-cycle load EWMA above which a stalled
	// group is considered never-draining (its window always holds
	// fresh tuples) and worth a migration; colder stalled groups drain
	// eventually on their own. Default 1.
	MinMigrateLoad float64

	// Trace, when set, receives control-plane trace events from the
	// loop itself: ("rebalance_applied", proposed, applied) whenever a
	// cycle applies at least one drain cut-over. Called under the
	// controller mutex on cold cycles only; nil disables.
	Trace func(kind string, a, b int64)

	// ProbeTable, when set, receives the router's per-group live window
	// cardinality every control cycle — the control-plane statistics
	// feed of the adaptive probe engine (its crossover model uses the
	// cardinality to ceiling chain-length estimates for groups
	// currently scanning). Nil disables the feed.
	ProbeTable *probe.Table
}

// Controller runs the sample → plan → cut-over loop against a Router.
// Step may be driven by the background Run loop or called directly
// (the engine's Rebalance method does); both paths serialize on an
// internal mutex.
type Controller struct {
	r   *Router
	cfg Config

	probes []Probe
	lastTS func(lane int) int64 // per-lane routed-timestamp watermark

	mu       sync.Mutex
	prevLoad []uint64
	curLoad  []uint64 // scratch, reused across cycles
	delta    []uint64
	live     []uint64  // residual window footprint per group
	planLoad []uint64  // what the planner samples; see refreshPlanLoad
	gEwma    []float64 // smoothed per-group per-cycle load
	extra    []uint64
	sample   []LaneSample

	// migDeferred maps a group whose migration was refused (over
	// budget, or a handoff that could not start) to the cycle at which
	// it may be retried, so a too-big group does not pay the
	// freeze-and-count probe every cycle.
	migDeferred map[uint32]uint64
	migrations  uint64

	// Active incremental handoff (at most one at a time): the slice
	// scheduler advances it every cycle under the budget until done.
	hActive bool
	hGroup  uint32

	// Migration-start token bucket (MaxMigrationsPerSec), burst one.
	migTokens float64
	migLast   time.Time

	// Plan backoff: when full staleness horizons pass with proposals
	// but no applied cut-over, the skew is beyond what safe moves can
	// fix (an immovable hot group) and planning every cycle is wasted
	// work. The interval doubles up to a cap and resets on the first
	// applied move.
	cycle        uint64
	planInterval uint64
	misses       uint64

	// Hysteresis: planning engages when the smoothed shard imbalance
	// exceeds SkewThreshold, then keeps balancing down to a lower
	// watermark before going quiet. Without it the loop converges to
	// exactly the threshold and oscillates there, planning every cycle
	// forever.
	imbEwma  float64
	planning bool
}

// NewController returns a Controller over the router and one probe per
// shard. lastTS supplies the per-lane ingress watermark and may be nil.
func NewController(r *Router, probes []Probe, lastTS func(lane int) int64, cfg Config) *Controller {
	if cfg.SkewThreshold < 1 {
		cfg.SkewThreshold = 1.25
	}
	if cfg.MaxMovesPerCycle < 1 {
		cfg.MaxMovesPerCycle = r.Shards()
	}
	if cfg.MinCycleTuples == 0 {
		cfg.MinCycleTuples = 128
	}
	if cfg.StaleMoveCycles == 0 {
		cfg.StaleMoveCycles = 64
	}
	if cfg.EngageThreshold < 1 {
		cfg.EngageThreshold = cfg.SkewThreshold
	}
	if cfg.DisengageRatio <= 0 || cfg.DisengageRatio > 1 {
		cfg.DisengageRatio = 0.5
	}
	if cfg.MigrateAfterCycles == 0 {
		cfg.MigrateAfterCycles = 4
	}
	if cfg.MinMigrateLoad <= 0 {
		cfg.MinMigrateLoad = 1
	}
	if cfg.SliceTuples <= 0 {
		cfg.SliceTuples = 1024
	}
	return &Controller{r: r, cfg: cfg, probes: probes, lastTS: lastTS}
}

// Step runs one control cycle: sample per-group load deltas and lane
// probes, plan moves if the period saw enough traffic and skew exceeds
// the threshold, register them, and attempt every pending cut-over.
// It returns the number of moves proposed and applied this cycle.
func (c *Controller) Step() (proposed, applied int) {
	c.mu.Lock()
	defer c.mu.Unlock()

	groups := c.r.Groups()
	shards := c.r.Shards()
	if c.curLoad == nil {
		c.curLoad = make([]uint64, groups)
		c.delta = make([]uint64, groups)
		c.live = make([]uint64, groups)
		c.planLoad = make([]uint64, groups)
		c.gEwma = make([]float64, groups)
		c.extra = make([]uint64, shards)
		c.sample = make([]LaneSample, shards)
		c.migDeferred = map[uint32]uint64{}
	}
	c.r.SampleLoadsInto(c.curLoad)
	var total uint64
	for i, l := range c.curLoad {
		if c.prevLoad != nil {
			c.delta[i] = l - c.prevLoad[i]
		} else {
			c.delta[i] = l
		}
		total += c.delta[i]
	}
	if c.migrationEnabled() {
		// Per-group EWMAs exist to prove a group never drains; the
		// O(groups) float pass is only paid when migration can use it.
		for i, d := range c.delta {
			c.gEwma[i] = 0.8*c.gEwma[i] + 0.2*float64(d)
		}
	}
	c.prevLoad, c.curLoad = c.curLoad, c.prevLoad
	if c.curLoad == nil {
		c.curLoad = make([]uint64, groups)
	}

	assign := c.r.AssignmentView() // immutable snapshot; never mutated here
	for s := range c.sample {
		c.sample[s] = LaneSample{}
	}
	for g, s := range assign {
		c.sample[s].Routed += c.delta[g]
	}
	for s := 0; s < shards; s++ {
		c.extra[s] = 0
		if s < len(c.probes) && c.probes[s] != nil {
			c.sample[s].Results = c.probes[s].Results()
			c.sample[s].QueueDepth = c.probes[s].QueueDepth()
			c.extra[s] = uint64(c.sample[s].QueueDepth)
		}
		if c.lastTS != nil {
			c.sample[s].LastAdvance = c.lastTS(s)
		}
	}

	if c.cfg.ProbeTable != nil {
		c.r.FeedProbe(c.cfg.ProbeTable, c.live)
	}

	c.r.AdvanceCycle(c.cfg.StaleMoveCycles)
	c.cycle++
	if c.planInterval == 0 {
		c.planInterval = 1
	}
	if total >= c.cfg.MinCycleTuples {
		var maxLoad, sumLoad uint64
		for s := 0; s < shards; s++ {
			l := c.sample[s].Routed + c.extra[s]
			sumLoad += l
			if l > maxLoad {
				maxLoad = l
			}
		}
		imb := float64(maxLoad) * float64(shards) / float64(sumLoad)
		if c.imbEwma == 0 {
			c.imbEwma = imb
		}
		c.imbEwma = 0.8*c.imbEwma + 0.2*imb
		high := c.cfg.EngageThreshold
		low := 1 + (high-1)*c.cfg.DisengageRatio
		if !c.planning && c.imbEwma > high {
			c.planning = true
		} else if c.planning && c.imbEwma < low {
			c.planning = false
		}
		if c.planning && c.cycle%c.planInterval == 0 {
			pending := c.r.PendingSnapshot()
			inFlight := func(g uint32) bool { _, ok := pending[g]; return ok }
			planThresh := 1 + (c.cfg.SkewThreshold-1)*c.cfg.DisengageRatio
			c.refreshPlanLoad()
			moves := Plan(assign, c.planLoad, c.extra, shards, planThresh, c.cfg.MaxMovesPerCycle, inFlight)
			proposed = c.r.Propose(moves)
		}
	}
	applied = c.r.TryApply()
	if applied > 0 && c.cfg.Trace != nil {
		c.cfg.Trace("rebalance_applied", int64(proposed), int64(applied))
	}
	migrated := c.migrate(applied)
	switch {
	case applied > 0 || migrated > 0:
		// Halve rather than reset: during real convergence applies come
		// every cycle and the interval stays at 1, while a trickle of
		// applies against a mostly-immovable skew does not re-arm
		// full-rate planning.
		c.planInterval = max(1, c.planInterval/2)
		c.misses = 0
	case proposed > 0 || c.r.PendingMoves() > 0:
		c.misses++
		if c.misses >= c.cfg.StaleMoveCycles {
			c.misses = 0
			if c.planInterval < 64 {
				c.planInterval *= 2
			}
		}
	}
	return proposed, applied
}

// refreshPlanLoad rebuilds the planner's load sample: this cycle's
// traffic deltas, with a cold group's residual window footprint
// standing in where the delta is zero. Residuals substitute rather
// than add, so a hot group's signal stays the pure arrival rate (the
// dynamics the drain planner converged with), while a group that went
// cold still parking tuples on a hot shard stays visible — without
// that, only groups with fresh deltas are ever planned, and a stalled
// group relies solely on the expiry hook to leave an overloaded
// shard. O(groups), so it runs only on cycles that actually plan or
// migrate. Callers hold c.mu.
func (c *Controller) refreshPlanLoad() {
	c.r.LiveLoadInto(c.live)
	for i, d := range c.delta {
		if d > 0 {
			c.planLoad[i] = d
		} else {
			c.planLoad[i] = c.live[i]
		}
	}
}

// migrate escalates long-stalled pending moves to state migrations,
// hottest group first, spending at most MigrateBudget tuples this
// cycle. A refused migration (over budget) is deferred for
// MigrateAfterCycles cycles so a too-big group does not pay the
// freeze-and-count probe every cycle. Callers hold c.mu.
//
// A migration freezes both ingress sides and quiesces two pipelines —
// milliseconds of stall — so unlike the free drain cut-over it is a
// last resort, and the scan itself must stay off the steady-state
// path:
//
//   - It only runs on cycles where the drain path applied nothing, and
//     only every MigrateAfterCycles-th cycle: while drains make
//     progress, or between paced scans, migration costs zero (under a
//     churning mild skew the pending set holds thousands of in-flight
//     drain moves, and even enumerating them every cycle measurably
//     stalls ingress).
//   - Candidates are filtered by load EWMA and per-group cooldown
//     before any sorting, then re-validated against the current
//     cycle's load sample and executed only if moving them still
//     strictly shrinks the donor/receiver gap. Without re-validation,
//     moves planned several cycles ago (before earlier migrations
//     rebalanced the table) ping-pong hot groups between shards
//     forever, and the steady state freezes ingress every cycle.
//   - Successful migrations start the same per-group cooldown as
//     refusals, so a group settles before it can be judged
//     hot-and-misplaced again.
func (c *Controller) migrate(appliedThisCycle int) int {
	if !c.migrationEnabled() || c.cfg.MigrateBudget <= 0 {
		return 0
	}
	incremental := c.cfg.BeginHandoff != nil && c.cfg.AdvanceHandoff != nil
	// An in-flight handoff advances every cycle, before anything else
	// and regardless of drain-path progress: the double-read window it
	// holds open costs one extra probe per arrival of the group, so
	// finishing in-flight work beats starting new work.
	if incremental && c.hActive {
		return c.advanceActive()
	}
	if appliedThisCycle > 0 || c.cycle%c.cfg.MigrateAfterCycles != 0 {
		return 0
	}
	cands := c.r.MigrationCandidates(c.cfg.MigrateAfterCycles)
	hot := cands[:0]
	for _, mv := range cands {
		if c.gEwma[mv.Group] < c.cfg.MinMigrateLoad {
			continue
		}
		if next, ok := c.migDeferred[mv.Group]; ok && c.cycle < next {
			continue
		}
		hot = append(hot, mv)
	}
	if len(hot) == 0 {
		return 0
	}
	// Hottest first: these are the groups the drain path can least
	// help. Ties keep the candidates' deterministic group order.
	sort.SliceStable(hot, func(i, j int) bool {
		return c.gEwma[hot[i].Group] > c.gEwma[hot[j].Group]
	})
	c.refreshPlanLoad()
	assign := c.r.AssignmentView()
	shards := c.r.Shards()
	shardLoad := make([]uint64, shards)
	var totalLoad uint64
	for g, s := range assign {
		shardLoad[s] += c.planLoad[g]
	}
	for _, l := range shardLoad {
		totalLoad += l
	}
	// Noise floor: gaps below this fraction of the mean shard load are
	// sample jitter, not actionable skew.
	noiseFloor := uint64(c.cfg.MinGapRatio * float64(totalLoad) / float64(shards))
	budget := c.cfg.MigrateBudget
	migrated := 0
	for _, mv := range hot {
		if budget <= 0 {
			break
		}
		from := int(assign[mv.Group])
		gl := c.planLoad[mv.Group]
		if mv.To == from || mv.To < 0 || mv.To >= shards ||
			shardLoad[from] <= shardLoad[mv.To] ||
			shardLoad[from]-shardLoad[mv.To] <= gl ||
			shardLoad[from]-shardLoad[mv.To] < noiseFloor {
			// The intent went stale: the move no longer shrinks the
			// donor/receiver gap (or the gap is below the noise
			// floor). Leave it to the drain path (or to stale-move
			// cancellation).
			continue
		}
		if !c.migTokenAvailable() {
			break // rate limiter: no further starts this cycle
		}
		if incremental {
			if !c.cfg.BeginHandoff(mv.Group, mv.To) {
				// A refused begin moved nothing: back the group off
				// without burning the start token.
				c.migDeferred[mv.Group] = c.cycle + c.cfg.MigrateAfterCycles
				continue
			}
			c.consumeMigToken()
			c.hActive, c.hGroup = true, mv.Group
			// One handoff at a time; spend this cycle's budget on it.
			return 1 + c.advanceActive()
		}
		n, ok := c.cfg.Migrator(mv.Group, mv.To, budget)
		c.migDeferred[mv.Group] = c.cycle + c.cfg.MigrateAfterCycles
		if ok {
			c.consumeMigToken()
			budget -= n
			migrated++
			shardLoad[from] -= gl
			shardLoad[mv.To] += gl
		}
	}
	c.migrations += uint64(migrated)
	return migrated
}

// advanceActive moves slices of the active handoff until the cycle's
// tuple budget is spent or the handoff finishes, returning the number
// of hops that made progress. Callers hold c.mu.
func (c *Controller) advanceActive() int {
	budget := c.cfg.MigrateBudget
	progress := 0
	for budget > 0 {
		slice := c.cfg.SliceTuples
		if slice > budget {
			slice = budget
		}
		n, done, completed := c.cfg.AdvanceHandoff(c.hGroup, slice)
		budget -= n
		if n > 0 {
			progress++
		}
		if done {
			c.hActive = false
			// The same cooldown as a freezing migration either way:
			// the group settles before it can be judged
			// hot-and-misplaced again.
			c.migDeferred[c.hGroup] = c.cycle + c.cfg.MigrateAfterCycles
			if !completed {
				// Dropped by the engine (shutdown, handoff gone):
				// not a migration.
				return progress
			}
			c.migrations++
			if progress == 0 {
				progress = 1 // an empty final hop still finishes the move
			}
			return progress
		}
		if n == 0 {
			return progress // no forward progress; retry next cycle
		}
	}
	return progress
}

// migrationEnabled reports whether any migration executor is wired.
func (c *Controller) migrationEnabled() bool {
	return c.cfg.Migrator != nil || (c.cfg.BeginHandoff != nil && c.cfg.AdvanceHandoff != nil)
}

// migTokenAvailable refills and checks the MaxMigrationsPerSec token
// bucket (burst one) without consuming: a refused start must not burn
// the token, or repeated refusals would throttle the effective start
// rate toward zero. Callers hold c.mu and call consumeMigToken once a
// start actually succeeds.
func (c *Controller) migTokenAvailable() bool {
	rate := c.cfg.MaxMigrationsPerSec
	if rate <= 0 {
		return true
	}
	now := time.Now()
	if c.migLast.IsZero() {
		c.migTokens = 1
	} else {
		c.migTokens += now.Sub(c.migLast).Seconds() * rate
		if c.migTokens > 1 {
			c.migTokens = 1
		}
	}
	c.migLast = now
	return c.migTokens >= 1
}

// consumeMigToken spends the start token for one successful migration
// start. Callers hold c.mu.
func (c *Controller) consumeMigToken() {
	if c.cfg.MaxMigrationsPerSec > 0 {
		c.migTokens--
	}
}

// Migrations returns the number of state migrations this controller
// has executed.
func (c *Controller) Migrations() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.migrations
}

// LastSample returns the per-shard samples of the most recent cycle.
func (c *Controller) LastSample() []LaneSample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]LaneSample(nil), c.sample...)
}

// Run loops Step every SamplePeriod until stop is closed. It is meant
// to run on its own goroutine.
func (c *Controller) Run(stop <-chan struct{}) {
	period := c.cfg.SamplePeriod
	if period <= 0 {
		period = 2 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.Step()
		}
	}
}
