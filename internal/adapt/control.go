package adapt

import (
	"sync"
	"time"
)

// Probe exposes the race-safe load signals of one shard lane to the
// sampler. (Per-node comparison counters are deliberately absent: they
// are plain ints owned by the pipeline goroutines and are only exact
// after a quiesce, so a live control loop must not read them.)
type Probe interface {
	// Results returns the number of results the lane has assembled.
	Results() uint64
	// QueueDepth returns the messages in flight inside the lane's
	// pipeline — the back-pressure signal of a saturated shard.
	QueueDepth() int
}

// LaneSample is one shard's load sample over a collect period.
type LaneSample struct {
	// Routed counts tuples routed to the shard during the period.
	Routed uint64
	// Results is the lane's cumulative assembled-result count.
	Results uint64
	// QueueDepth is the in-flight message count at sample time.
	QueueDepth int
	// LastAdvance is the latest ingress timestamp routed to the shard
	// (the lane's watermark; a stale value marks an idle shard).
	LastAdvance int64
}

// Config tunes a Controller.
type Config struct {
	// SamplePeriod is the control-loop cadence.
	SamplePeriod time.Duration
	// SkewThreshold is the max/mean shard-load ratio above which the
	// planner starts moving groups.
	SkewThreshold float64
	// MaxMovesPerCycle bounds how many group moves one cycle may
	// propose.
	MaxMovesPerCycle int
	// MinCycleTuples is the minimum number of tuples a period must
	// route before its sample is considered significant enough to plan
	// from.
	MinCycleTuples uint64
	// StaleMoveCycles is how many cycles a proposed move may stay
	// unsafe before it is cancelled. It must comfortably exceed the
	// window residence time of a group's tuples in control cycles —
	// cancelling before the group's window could possibly empty
	// livelocks the plan-propose-cancel loop. Default 64.
	StaleMoveCycles uint64
}

// Controller runs the sample → plan → cut-over loop against a Router.
// Step may be driven by the background Run loop or called directly
// (the engine's Rebalance method does); both paths serialize on an
// internal mutex.
type Controller struct {
	r   *Router
	cfg Config

	probes []Probe
	lastTS func(lane int) int64 // per-lane routed-timestamp watermark

	mu       sync.Mutex
	prevLoad []uint64
	curLoad  []uint64 // scratch, reused across cycles
	delta    []uint64
	extra    []uint64
	sample   []LaneSample

	// Plan backoff: when full staleness horizons pass with proposals
	// but no applied cut-over, the skew is beyond what safe moves can
	// fix (an immovable hot group) and planning every cycle is wasted
	// work. The interval doubles up to a cap and resets on the first
	// applied move.
	cycle        uint64
	planInterval uint64
	misses       uint64

	// Hysteresis: planning engages when the smoothed shard imbalance
	// exceeds SkewThreshold, then keeps balancing down to a lower
	// watermark before going quiet. Without it the loop converges to
	// exactly the threshold and oscillates there, planning every cycle
	// forever.
	imbEwma  float64
	planning bool
}

// NewController returns a Controller over the router and one probe per
// shard. lastTS supplies the per-lane ingress watermark and may be nil.
func NewController(r *Router, probes []Probe, lastTS func(lane int) int64, cfg Config) *Controller {
	if cfg.SkewThreshold < 1 {
		cfg.SkewThreshold = 1.25
	}
	if cfg.MaxMovesPerCycle < 1 {
		cfg.MaxMovesPerCycle = r.Shards()
	}
	if cfg.MinCycleTuples == 0 {
		cfg.MinCycleTuples = 128
	}
	if cfg.StaleMoveCycles == 0 {
		cfg.StaleMoveCycles = 64
	}
	return &Controller{r: r, cfg: cfg, probes: probes, lastTS: lastTS}
}

// Step runs one control cycle: sample per-group load deltas and lane
// probes, plan moves if the period saw enough traffic and skew exceeds
// the threshold, register them, and attempt every pending cut-over.
// It returns the number of moves proposed and applied this cycle.
func (c *Controller) Step() (proposed, applied int) {
	c.mu.Lock()
	defer c.mu.Unlock()

	groups := c.r.Groups()
	shards := c.r.Shards()
	if c.curLoad == nil {
		c.curLoad = make([]uint64, groups)
		c.delta = make([]uint64, groups)
		c.extra = make([]uint64, shards)
		c.sample = make([]LaneSample, shards)
	}
	c.r.SampleLoadsInto(c.curLoad)
	var total uint64
	for i, l := range c.curLoad {
		if c.prevLoad != nil {
			c.delta[i] = l - c.prevLoad[i]
		} else {
			c.delta[i] = l
		}
		total += c.delta[i]
	}
	c.prevLoad, c.curLoad = c.curLoad, c.prevLoad
	if c.curLoad == nil {
		c.curLoad = make([]uint64, groups)
	}

	assign := c.r.AssignmentView() // immutable snapshot; never mutated here
	for s := range c.sample {
		c.sample[s] = LaneSample{}
	}
	for g, s := range assign {
		c.sample[s].Routed += c.delta[g]
	}
	for s := 0; s < shards; s++ {
		c.extra[s] = 0
		if s < len(c.probes) && c.probes[s] != nil {
			c.sample[s].Results = c.probes[s].Results()
			c.sample[s].QueueDepth = c.probes[s].QueueDepth()
			c.extra[s] = uint64(c.sample[s].QueueDepth)
		}
		if c.lastTS != nil {
			c.sample[s].LastAdvance = c.lastTS(s)
		}
	}

	c.r.AdvanceCycle(c.cfg.StaleMoveCycles)
	c.cycle++
	if c.planInterval == 0 {
		c.planInterval = 1
	}
	if total >= c.cfg.MinCycleTuples {
		var maxLoad, sumLoad uint64
		for s := 0; s < shards; s++ {
			l := c.sample[s].Routed + c.extra[s]
			sumLoad += l
			if l > maxLoad {
				maxLoad = l
			}
		}
		imb := float64(maxLoad) * float64(shards) / float64(sumLoad)
		if c.imbEwma == 0 {
			c.imbEwma = imb
		}
		c.imbEwma = 0.8*c.imbEwma + 0.2*imb
		high := c.cfg.SkewThreshold
		low := 1 + (high-1)*0.5
		if !c.planning && c.imbEwma > high {
			c.planning = true
		} else if c.planning && c.imbEwma < low {
			c.planning = false
		}
		if c.planning && c.cycle%c.planInterval == 0 {
			pending := c.r.PendingSnapshot()
			inFlight := func(g uint32) bool { _, ok := pending[g]; return ok }
			moves := Plan(assign, c.delta, c.extra, shards, low, c.cfg.MaxMovesPerCycle, inFlight)
			proposed = c.r.Propose(moves)
		}
	}
	applied = c.r.TryApply()
	switch {
	case applied > 0:
		// Halve rather than reset: during real convergence applies come
		// every cycle and the interval stays at 1, while a trickle of
		// applies against a mostly-immovable skew does not re-arm
		// full-rate planning.
		c.planInterval = max(1, c.planInterval/2)
		c.misses = 0
	case proposed > 0 || c.r.PendingMoves() > 0:
		c.misses++
		if c.misses >= c.cfg.StaleMoveCycles {
			c.misses = 0
			if c.planInterval < 64 {
				c.planInterval *= 2
			}
		}
	}
	return proposed, applied
}

// LastSample returns the per-shard samples of the most recent cycle.
func (c *Controller) LastSample() []LaneSample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]LaneSample(nil), c.sample...)
}

// Run loops Step every SamplePeriod until stop is closed. It is meant
// to run on its own goroutine.
func (c *Controller) Run(stop <-chan struct{}) {
	period := c.cfg.SamplePeriod
	if period <= 0 {
		period = 2 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.Step()
		}
	}
}
