// Package adapt turns the statically partitioned sharded engine into a
// self-balancing runtime: a Router routes join keys through the
// key-group indirection of shard.Partitioner and tracks each group's
// residency footprint; a Planner (Plan) detects load skew across
// shards and picks group moves that shrink it; and a Controller runs
// the sample → plan → cut-over loop on a configurable period.
//
// # Safety of a cut-over
//
// Moving a key-group while the join is running must not change the
// result multiset. The hazard: tuples of the moving group that are
// still inside a sliding window on the old shard would never meet
// tuples routed to the new shard. The Router therefore treats a move
// as *pending* until the group provably has no joinable state left on
// its old shard:
//
//   - every count-bound tuple of the group has left its window
//     (per-side live counters, maintained by the engine's window
//     accounting), and
//   - stream time has passed dueBound, the largest expiry deadline any
//     routed tuple of the group ever had — duration-bound deadlines
//     are recorded at admission (arrival ts + window duration),
//     count-bound deadlines when the window overflow schedules the
//     expiry. "Stream time" is the floor over both ingress sides, so
//     every future tuple of either side carries a timestamp >= floor.
//
// Once both hold, any tuple of the group still stored on the old shard
// has an expiry deadline <= floor, and the driver expires due tuples
// before processing any arrival with an equal-or-later timestamp — so
// no future tuple, routed anywhere, could have joined it. Cutting the
// group over to the new shard is then invisible in the output. The
// punctuation merge is routing-agnostic (the floor over per-shard
// promises stays sound for any tuple placement), so Ordered-mode
// output order is preserved as well.
//
// A consequence: a group that is *continuously* hot never drains — its
// window always holds recent tuples — so the drain path alone can
// never move it. For those groups the runtime has a second path, state
// migration: the engine freezes both ingress sides, extracts the
// group's live window tuples and pending expiries from the old shard's
// pipeline under a consistent cut, swaps the routing table (Relocate),
// and replays the state into the new shard's pipeline as store-only
// arrivals (internal/core's ArriveStoreOnly), which enter the windows
// without re-probing — so nothing is emitted twice and nothing is
// missed. The planner still prefers drain-based moves (they cost
// nothing on the data path) and relieves an overloaded shard by
// evacuating its colder co-resident groups; a pending move whose group
// provably never drains (it has waited MigrateAfterCycles control
// cycles while its load EWMA stays high) escalates to migration, under
// a per-cycle tuple budget so a mega-group copy cannot stall ingress
// for long.
//
// Cut-overs are attempted the moment a group's live count drops to
// zero (the expiry hook is exactly when a drain condition can newly
// hold) and by the controller on every cycle, so duration-bound drains
// are caught too. Move intents that stay unsafe for many cycles are
// cancelled so the pending set tracks the current plan — in-flight
// migration intents included, since migration candidates are drawn
// from the same pending set.
package adapt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"handshakejoin/internal/probe"
	"handshakejoin/internal/shard"
	"handshakejoin/internal/stream"
)

// stripeCount is the number of locks the per-group accounting is
// striped over. Admission of two groups in different stripes never
// contends; the critical section is a handful of integer updates.
const stripeCount = 64

// Router routes join keys to shards through an atomically swappable
// Partitioner snapshot and maintains the per-group state the cut-over
// safety protocol needs. The data plane (Of, Admit, ObserveCountExpire)
// is called by the engine under its per-side stream locks; the control
// plane (Propose, TryApply, SampleLoads) by the controller.
type Router struct {
	adaptive bool
	groups   uint64
	shards   int
	table    atomic.Pointer[shard.Partitioner]

	// floor reports the minimum ingress timestamp over both stream
	// sides: every future tuple of either side is stamped >= floor().
	floor func() int64

	stripes [stripeCount]sync.Mutex

	// Per-group accounting, indexed by group. load counts routed
	// tuples (atomic; read by the sampler). rLive/sLive count
	// count-bound tuples currently inside their window; dueBound is
	// the largest stream time at which any routed tuple of the group
	// may still occupy a window. All three are guarded by the group's
	// stripe.
	load     []uint64
	rLive    []int64
	sLive    []int64
	dueBound []int64

	mu       sync.Mutex      // control plane: pending moves, table swaps
	moves    map[uint32]move // group → pending cut-over
	pendingN atomic.Int32    // len(moves); fast-path gate for the expiry hook
	moveSeq  uint64          // control cycle stamp for stale-move cancellation
	cycles   atomic.Uint64   // control cycles that registered >= 1 move
	applied  atomic.Uint64   // key-group moves cut over

	// In-flight incremental handoffs: handoffFrom[g] is the shard a
	// group's not-yet-moved window slices still occupy (-1: none). The
	// data plane reads it under the group's stripe (ProbeLane) to
	// duplicate probe-only reads to the old shard; mutations hold both
	// mu and the stripe, so the control plane can enumerate under mu
	// alone. handoffN is the fast-path gate: zero means no arrival pays
	// a handoff lookup.
	handoffFrom []int32
	handoffN    atomic.Int32
}

// move is one pending cut-over: the target shard and the control cycle
// that proposed it (for staleness cancellation).
type move struct {
	to  int
	seq uint64
}

// NewRouter returns a Router over the given initial partitioning.
// adaptive enables the per-group footprint accounting (and its small
// admission cost); a non-adaptive router is a plain table lookup.
// floor supplies the both-sides ingress timestamp floor and is only
// consulted when adaptive.
func NewRouter(p shard.Partitioner, adaptive bool, floor func() int64) *Router {
	r := &Router{
		adaptive: adaptive,
		groups:   uint64(p.Groups()),
		shards:   p.Shards(),
		floor:    floor,
	}
	r.table.Store(&p)
	if adaptive {
		g := p.Groups()
		r.load = make([]uint64, g)
		r.rLive = make([]int64, g)
		r.sLive = make([]int64, g)
		r.dueBound = make([]int64, g)
		for i := range r.dueBound {
			r.dueBound[i] = -1 << 62
		}
		r.moves = map[uint32]move{}
		r.handoffFrom = make([]int32, g)
		for i := range r.handoffFrom {
			r.handoffFrom[i] = -1
		}
	}
	return r
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.shards }

// Groups returns the key-group count.
func (r *Router) Groups() int { return int(r.groups) }

// Adaptive reports whether footprint accounting is enabled.
func (r *Router) Adaptive() bool { return r.adaptive }

// Partitioner returns the current routing snapshot.
func (r *Router) Partitioner() shard.Partitioner { return *r.table.Load() }

// Assignment returns a copy of the current group → shard table.
func (r *Router) Assignment() []uint32 { return r.table.Load().Assignment() }

// AssignmentView returns the current group → shard table without
// copying. Snapshots are immutable (cut-overs install new tables), so
// the view is safe to read but must never be mutated; the control loop
// uses it to avoid re-allocating a table-sized copy every cycle.
func (r *Router) AssignmentView() []uint32 { return r.table.Load().AssignmentView() }

// SampleLoadsInto fills dst (length Groups) with the cumulative
// per-group routed-tuple counters, avoiding the allocation of
// SampleLoads for per-cycle callers.
func (r *Router) SampleLoadsInto(dst []uint64) {
	for i := range r.load {
		dst[i] = atomic.LoadUint64(&r.load[i])
	}
}

// GroupOf returns the key-group of a join key (independent of the
// current assignment).
func (r *Router) GroupOf(key uint64) uint32 { return r.table.Load().GroupOf(key) }

// Of routes a key through the current table without accounting — the
// non-adaptive fast path.
func (r *Router) Of(key uint64) int { return r.table.Load().Of(key) }

// Admit routes one admitted tuple and records its residency footprint;
// the engine calls it under the pushing side's stream lock, after
// updating that side's ingress timestamp. countBound marks a side
// whose window has a Count bound (the tuple's live count is released
// by ObserveCountExpire); durDue is the tuple's duration-window expiry
// deadline, recorded when hasDur.
//
// The footprint is recorded and the table read under the group's
// stripe lock, so a concurrent cut-over of the same group (which also
// holds the stripe) either sees the tuple's footprint — and defers —
// or routes the tuple to the group's new shard. Both orders preserve
// the result multiset; no tuple can slip to the old shard unseen.
func (r *Router) Admit(side stream.Side, key uint64, countBound bool, durDue int64, hasDur bool) (lane int, group uint32) {
	g := r.table.Load().GroupOf(key)
	st := &r.stripes[g%stripeCount]
	st.Lock()
	if countBound {
		if side == stream.R {
			r.rLive[g]++
		} else {
			r.sLive[g]++
		}
	}
	if hasDur && durDue > r.dueBound[g] {
		r.dueBound[g] = durDue
	}
	atomic.AddUint64(&r.load[g], 1)
	lane = r.table.Load().ShardOfGroup(g)
	st.Unlock()
	return lane, g
}

// AdmitBatch routes one caller batch of admitted tuples of one side
// and records their residency footprints — the amortized form of one
// Admit call per tuple. The touched stripes are locked once, in
// ascending order (the TryApply order, so no cycle with the control
// plane), the routing snapshot is read once, and the per-group load
// counters take one atomic add per run of consecutive same-group
// tuples instead of one per tuple. tss carries the tuples' timestamps
// in arrival order; dur is the side's duration-window span (0 when
// absent), so tuple i's duration expiry deadline is tss[i]+dur.
//
// lanes, groups and probes must have the length of keys; on return
// groups[i] and lanes[i] are tuple i's key-group and shard, and
// probes[i] is the shard owed a probe-only double-read for tuple i
// (-1 when its group is not in an incremental handoff).
//
// Holding every touched stripe across the batch gives the same
// cut-over atomicity as per-tuple admission — a concurrent cut-over or
// handoff of a batched group either sees the whole batch's footprint
// or routes the group's next batch through the new table — it only
// widens the exclusion window from one tuple to one batch. On a
// non-adaptive router AdmitBatch degrades to a plain bulk table
// lookup with no accounting.
func (r *Router) AdmitBatch(side stream.Side, keys []uint64, countBound bool, tss []int64, dur int64, lanes []int, groups []uint32, probes []int) {
	p := r.table.Load()
	for i, k := range keys {
		// The key → group hash is assignment-independent, so any
		// snapshot serves; the authoritative shard lookup below re-reads
		// under the stripes.
		groups[i] = p.GroupOf(k)
	}
	if !r.adaptive {
		for i := range keys {
			lanes[i] = p.ShardOfGroup(groups[i])
			probes[i] = -1
		}
		return
	}
	var mask uint64 // stripeCount == 64: one bit per stripe
	for _, g := range groups[:len(keys)] {
		mask |= 1 << (g % stripeCount)
	}
	for s := 0; s < stripeCount; s++ {
		if mask&(1<<uint(s)) != 0 {
			r.stripes[s].Lock()
		}
	}
	cur := r.table.Load()
	handoffs := r.handoffN.Load() > 0
	live := r.rLive
	if side == stream.S {
		live = r.sLive
	}
	var runG uint32
	var runN uint64
	for i, g := range groups[:len(keys)] {
		if countBound {
			live[g]++
		}
		if dur > 0 {
			if due := tss[i] + dur; due > r.dueBound[g] {
				r.dueBound[g] = due
			}
		}
		if runN > 0 && g == runG {
			runN++
		} else {
			if runN > 0 {
				atomic.AddUint64(&r.load[runG], runN)
			}
			runG, runN = g, 1
		}
		lanes[i] = cur.ShardOfGroup(g)
		if handoffs {
			probes[i] = int(r.handoffFrom[g])
		} else {
			// No handoff exists anywhere, and none can start for a
			// batched group while its stripe is held.
			probes[i] = -1
		}
	}
	if runN > 0 {
		atomic.AddUint64(&r.load[runG], runN)
	}
	for s := stripeCount - 1; s >= 0; s-- {
		if mask&(1<<uint(s)) != 0 {
			r.stripes[s].Unlock()
		}
	}
}

// ObserveCountExpire releases the live count a count-bound tuple of
// the group acquired at admission and raises the group's due bound to
// the expiry deadline: the tuple leaves its window only once stream
// time reaches due, so a cut-over before that could still lose joins
// against the lagging side.
//
// When the release empties the group and a move is pending for it, the
// cut-over is attempted immediately — the expiry hook is the instant a
// drain condition can newly become true, and waiting for the next
// control cycle would miss short-lived empty windows on busier groups.
func (r *Router) ObserveCountExpire(side stream.Side, g uint32, due int64) {
	st := &r.stripes[g%stripeCount]
	releaseStripeLocks.Add(1)
	st.Lock()
	if side == stream.R {
		r.rLive[g]--
	} else {
		r.sLive[g]--
	}
	if due > r.dueBound[g] {
		r.dueBound[g] = due
	}
	drained := r.rLive[g] == 0 && r.sLive[g] == 0
	st.Unlock()
	if drained && r.pendingN.Load() > 0 {
		r.tryApplyGroup(g)
	}
}

// releaseStripeLocks counts stripe-lock acquisitions on the
// count-expiry release paths (ObserveCountExpire and its bulk form).
// Tests read it to pin the batched path's lock budget; it is not part
// of the API.
var releaseStripeLocks atomic.Uint64

// ObserveCountExpireBulk releases the live counts of one batch of
// count-bound expiries of one side — the amortized form of one
// ObserveCountExpire call per entry. groups and dues run in batch
// order. Each touched stripe is locked once, in ascending order
// (AdmitBatch's discipline, so no ordering cycle with the control
// plane), and the per-group decrements coalesce over runs of
// consecutive same-group entries, so a caller batch costs O(stripes
// touched) lock operations instead of O(entries). Groups drained by
// the batch attempt their pending cut-overs after the stripes are
// released, exactly like the per-entry path.
func (r *Router) ObserveCountExpireBulk(side stream.Side, groups []uint32, dues []int64) {
	if len(groups) == 0 {
		return
	}
	live := r.rLive
	if side == stream.S {
		live = r.sLive
	}
	var mask uint64 // stripeCount == 64: one bit per stripe
	for _, g := range groups {
		mask |= 1 << (g % stripeCount)
	}
	for s := 0; s < stripeCount; s++ {
		if mask&(1<<uint(s)) != 0 {
			releaseStripeLocks.Add(1)
			r.stripes[s].Lock()
		}
	}
	var runG uint32
	var runN int64
	for i, g := range groups {
		if runN > 0 && g != runG {
			live[runG] -= runN
			runN = 0
		}
		runG = g
		runN++
		if due := dues[i]; due > r.dueBound[g] {
			r.dueBound[g] = due
		}
	}
	live[runG] -= runN
	// Collect newly drained groups while the stripes pin the counters;
	// the cut-over attempts happen outside (lock order is mu → stripe).
	var drained []uint32
	if r.pendingN.Load() > 0 {
		for _, g := range groups {
			if r.rLive[g] == 0 && r.sLive[g] == 0 {
				dup := false
				for _, d := range drained {
					if d == g {
						dup = true
						break
					}
				}
				if !dup {
					drained = append(drained, g)
				}
			}
		}
	}
	for s := stripeCount - 1; s >= 0; s-- {
		if mask&(1<<uint(s)) != 0 {
			r.stripes[s].Unlock()
		}
	}
	for _, g := range drained {
		r.tryApplyGroup(g)
	}
}

// tryApplyGroup attempts the pending cut-over of one group, if any.
// Lock order is mu → stripe, matching TryApply; callers must hold
// neither.
func (r *Router) tryApplyGroup(g uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	mv, ok := r.moves[g]
	if !ok {
		return
	}
	floor := r.floor()
	if r.applyIfSafe(g, mv.to, floor) {
		r.applied.Add(1)
	}
}

// applyIfSafe cuts group g over to shard to when its drain conditions
// hold. Callers hold r.mu; the group's stripe is taken here so the
// check and the table swap are atomic with respect to admissions of
// the same group.
func (r *Router) applyIfSafe(g uint32, to int, floor int64) bool {
	st := &r.stripes[g%stripeCount]
	st.Lock()
	defer st.Unlock()
	if r.handoffFrom[g] >= 0 {
		return false // an incremental handoff owns the group's route
	}
	if r.rLive[g] != 0 || r.sLive[g] != 0 || r.dueBound[g] > floor {
		return false
	}
	next := r.table.Load().Move(g, to)
	r.table.Store(&next)
	delete(r.moves, g)
	r.pendingN.Store(int32(len(r.moves)))
	return true
}

// LiveLoadInto fills dst (length Groups) with each group's residual
// window footprint: the count-bound tuples currently inside their
// windows. The planner lets it stand in for a group's load where the
// per-cycle routed delta is zero (substitution, not addition — adding
// it on top of hot groups' deltas measurably inflated move churn), so
// a group that went cold this cycle but still occupies window space on
// a hot shard remains a move candidate — without it, only groups with
// fresh traffic are ever sampled and a stalled group relies solely on
// the expiry hook to get off an overloaded shard.
func (r *Router) LiveLoadInto(dst []uint64) {
	for st := 0; st < stripeCount && st < len(r.rLive); st++ {
		r.stripes[st].Lock()
		for g := st; g < len(r.rLive); g += stripeCount {
			live := r.rLive[g] + r.sLive[g]
			if live < 0 {
				live = 0
			}
			dst[g] = uint64(live)
		}
		r.stripes[st].Unlock()
	}
}

// FeedProbe samples each group's live window cardinality into scratch
// (length >= Groups) and publishes it to the probe strategy table —
// the router's half of the adaptive probe statistics. The table uses
// the cardinality as a ceiling on chain-length estimates for groups
// whose probes are currently scanning (a scan observes matches, not
// chain lengths). Called from the controller's sampling cycle.
func (r *Router) FeedProbe(t *probe.Table, scratch []uint64) {
	r.LiveLoadInto(scratch)
	t.FeedCardinality(scratch)
}

// Relocate atomically reroutes group g to shard to, cancelling any
// pending drain-based move for it — the table half of a state
// migration. Unlike TryApply it performs no drain check: the caller
// has frozen both ingress sides and is moving the group's live window
// state along with the route, so the copy-on-write table swap is safe
// by construction. It returns the group's previous shard.
func (r *Router) Relocate(g uint32, to int) (from int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &r.stripes[g%stripeCount]
	st.Lock()
	defer st.Unlock()
	cur := r.table.Load()
	from = cur.ShardOfGroup(g)
	if from != to {
		next := cur.Move(g, to)
		r.table.Store(&next)
	}
	if r.moves != nil {
		delete(r.moves, g)
		r.pendingN.Store(int32(len(r.moves)))
	}
	return from
}

// BeginHandoff commits the routing half of an incremental migration:
// group g is atomically rerouted to shard to — every arrival admitted
// afterwards lands there as an ordinary full arrival — while the group
// is marked in-handoff, so the data plane (ProbeLane) duplicates each
// of its arrivals as a probe-only read to the old shard until the last
// window slice has left it and FinishHandoff clears the mark. Any
// pending drain-based move for the group is cancelled. It returns the
// group's previous shard and reports false (no state change) when the
// group already lives on to, is already in handoff, or the router is
// not adaptive — without the footprint accounting there is no probe
// duplication, so an incremental handoff could miss pairs.
//
// The caller must freeze both ingress sides across the call (the
// sharded engine holds its stream-side locks), so no arrival is
// admitted while the route and the handoff mark change.
func (r *Router) BeginHandoff(g uint32, to int) (from int, ok bool) {
	if !r.adaptive {
		return -1, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &r.stripes[g%stripeCount]
	st.Lock()
	defer st.Unlock()
	cur := r.table.Load()
	from = cur.ShardOfGroup(g)
	if from == to || r.handoffFrom[g] >= 0 {
		return from, false
	}
	next := cur.Move(g, to)
	r.table.Store(&next)
	r.handoffFrom[g] = int32(from)
	r.handoffN.Add(1)
	delete(r.moves, g)
	r.pendingN.Store(int32(len(r.moves)))
	return from, true
}

// FinishHandoff clears group g's in-handoff mark; the data plane stops
// duplicating its probes. Call once the old shard holds none of the
// group's window tuples (same freeze contract as BeginHandoff).
func (r *Router) FinishHandoff(g uint32) {
	if !r.adaptive {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &r.stripes[g%stripeCount]
	st.Lock()
	defer st.Unlock()
	if r.handoffFrom[g] >= 0 {
		r.handoffFrom[g] = -1
		r.handoffN.Add(-1)
	}
}

// ProbeLane returns the shard that must receive a probe-only
// double-read for an arrival of group g, or -1 when the group is not
// in handoff. The uncontended fast path is one atomic load.
func (r *Router) ProbeLane(g uint32) int {
	if r.handoffN.Load() == 0 {
		return -1
	}
	st := &r.stripes[g%stripeCount]
	st.Lock()
	lane := int(r.handoffFrom[g])
	st.Unlock()
	return lane
}

// InHandoff reports whether group g has an incremental handoff in
// flight.
func (r *Router) InHandoff(g uint32) bool { return r.ProbeLane(g) >= 0 }

// Handoffs returns the number of in-flight incremental handoffs.
func (r *Router) Handoffs() int { return int(r.handoffN.Load()) }

// MigrationCandidates returns the pending moves that have waited at
// least minAge control cycles for their drain-based cut-over — the
// groups whose windows never empty, which only a state migration can
// relocate. Results are ordered by group id for determinism; the
// controller re-orders by load before spending its migration budget.
func (r *Router) MigrationCandidates(minAge uint64) []Move {
	if !r.adaptive {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Move
	cur := r.table.Load()
	for g, mv := range r.moves {
		if r.handoffFrom[g] >= 0 {
			continue
		}
		if r.moveSeq-mv.seq >= minAge {
			out = append(out, Move{Group: g, From: cur.ShardOfGroup(g), To: mv.to})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// SampleLoads returns the cumulative per-group routed-tuple counters;
// the controller diffs consecutive samples.
func (r *Router) SampleLoads() []uint64 {
	out := make([]uint64, len(r.load))
	for i := range r.load {
		out[i] = atomic.LoadUint64(&r.load[i])
	}
	return out
}

// PendingMoves returns the number of registered, not yet applied moves.
func (r *Router) PendingMoves() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.moves)
}

// Propose registers planned moves for safe cut-over, skipping groups
// that already have one pending or whose target matches their current
// shard. Returns the number registered; a cycle registering at least
// one move counts as a rebalance.
func (r *Router) Propose(moves []Move) int {
	if !r.adaptive || len(moves) == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	added := 0
	cur := r.table.Load()
	for _, m := range moves {
		if _, dup := r.moves[m.Group]; dup {
			continue
		}
		if r.handoffFrom[m.Group] >= 0 {
			continue // in incremental handoff: its route is spoken for
		}
		if m.To < 0 || m.To >= r.shards || cur.ShardOfGroup(m.Group) == m.To {
			continue
		}
		r.moves[m.Group] = move{to: m.To, seq: r.moveSeq}
		added++
	}
	r.pendingN.Store(int32(len(r.moves)))
	if added > 0 {
		r.cycles.Add(1)
	}
	return added
}

// TryApply attempts to cut over every pending move whose group has
// provably no joinable state left on its old shard, and returns the
// number applied.
//
// The safety check and the table swap must be atomic with respect to
// admissions of each moved group, so the batch takes every stripe once
// and installs a single rewired table — one O(groups) copy per control
// cycle instead of one per move, and the ingress path is blocked for
// one bounded interval rather than once per cut-over. Lock order is
// mu → stripes (ascending), consistent with applyIfSafe; admissions
// take a single stripe and never the control mutex, so no cycle
// exists.
func (r *Router) TryApply() int {
	if !r.adaptive {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.moves) == 0 {
		return 0
	}
	floor := r.floor()
	for i := range r.stripes {
		r.stripes[i].Lock()
	}
	cur := r.table.Load()
	var assign []uint32
	applied := 0
	for g, mv := range r.moves {
		if r.handoffFrom[g] >= 0 || r.rLive[g] != 0 || r.sLive[g] != 0 || r.dueBound[g] > floor {
			continue
		}
		if assign == nil {
			assign = cur.Assignment()
		}
		assign[g] = uint32(mv.to)
		delete(r.moves, g)
		applied++
	}
	if assign != nil {
		next := cur.Rewire(assign)
		r.table.Store(&next)
		r.pendingN.Store(int32(len(r.moves)))
	}
	for i := len(r.stripes) - 1; i >= 0; i-- {
		r.stripes[i].Unlock()
	}
	if applied > 0 {
		r.applied.Add(uint64(applied))
	}
	return applied
}

// PendingSnapshot returns the groups with registered moves, as one
// locked copy — planners iterate many groups per cycle and must not
// take the control mutex per group.
func (r *Router) PendingSnapshot() map[uint32]struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[uint32]struct{}, len(r.moves))
	for g := range r.moves {
		out[g] = struct{}{}
	}
	return out
}

// AdvanceCycle stamps the start of a new control cycle and cancels
// pending moves that have stayed unsafe for more than maxAge cycles —
// the load pattern that motivated them has usually shifted, and a
// stale intent applied much later could move a group onto what has
// since become the hottest shard. Returns the number cancelled.
func (r *Router) AdvanceCycle(maxAge uint64) int {
	if !r.adaptive {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.moveSeq++
	cancelled := 0
	for g, mv := range r.moves {
		if r.moveSeq-mv.seq > maxAge {
			delete(r.moves, g)
			cancelled++
		}
	}
	r.pendingN.Store(int32(len(r.moves)))
	return cancelled
}

// Rebalances returns the number of control cycles that registered
// moves.
func (r *Router) Rebalances() uint64 { return r.cycles.Load() }

// Applied returns the number of key-group moves cut over.
func (r *Router) Applied() uint64 { return r.applied.Load() }

// RouterState is the serializable routing state a checkpoint captures:
// the group → shard assignment plus, when the router is adaptive, the
// per-group footprint accounting and the in-flight incremental-handoff
// marks. Pending drain-based moves are deliberately NOT captured — they
// are advisory intents derived from load samples, and a restored
// controller re-proposes them from fresh samples — but handoffs are:
// a handoff has already swapped the route, and the restored data plane
// must keep duplicating the group's probes to the old shard until the
// remaining window slices finish moving.
type RouterState struct {
	Assign      []uint32
	Load        []uint64
	RLive       []int64
	SLive       []int64
	DueBound    []int64
	HandoffFrom []int32
}

// SnapshotState copies the router's state under the control mutex and
// every stripe (the TryApply lock order), so the assignment, footprint
// counters and handoff marks form one consistent cut even while the
// controller runs. The engine additionally holds both stream-side
// locks, so no admission is in flight.
func (r *Router) SnapshotState() RouterState {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.stripes {
		r.stripes[i].Lock()
	}
	defer func() {
		for i := len(r.stripes) - 1; i >= 0; i-- {
			r.stripes[i].Unlock()
		}
	}()
	st := RouterState{Assign: r.table.Load().Assignment()}
	if r.adaptive {
		st.Load = append([]uint64(nil), r.load...)
		st.RLive = append([]int64(nil), r.rLive...)
		st.SLive = append([]int64(nil), r.sLive...)
		st.DueBound = append([]int64(nil), r.dueBound...)
		st.HandoffFrom = append([]int32(nil), r.handoffFrom...)
	}
	return st
}

// RestoreState replaces the router's routing table and accounting with
// a snapshot taken from a router of the same shape (group count, shard
// count, adaptivity). Pending moves are cleared; the controller will
// re-propose from post-restore samples. The engine must hold off
// admissions for the duration.
func (r *Router) RestoreState(st RouterState) error {
	if len(st.Assign) != int(r.groups) {
		return fmt.Errorf("adapt: snapshot has %d groups, router has %d", len(st.Assign), r.groups)
	}
	for _, s := range st.Assign {
		if int(s) >= r.shards {
			return fmt.Errorf("adapt: snapshot assigns a group to shard %d of %d", s, r.shards)
		}
	}
	if r.adaptive && st.Load == nil {
		return fmt.Errorf("adapt: snapshot from a non-adaptive router cannot restore an adaptive one")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.stripes {
		r.stripes[i].Lock()
	}
	defer func() {
		for i := len(r.stripes) - 1; i >= 0; i-- {
			r.stripes[i].Unlock()
		}
	}()
	next := r.table.Load().Rewire(append([]uint32(nil), st.Assign...))
	r.table.Store(&next)
	if r.adaptive {
		copy(r.load, st.Load)
		copy(r.rLive, st.RLive)
		copy(r.sLive, st.SLive)
		copy(r.dueBound, st.DueBound)
		copy(r.handoffFrom, st.HandoffFrom)
		handoffs := int32(0)
		for _, from := range r.handoffFrom {
			if from >= 0 {
				handoffs++
			}
		}
		r.handoffN.Store(handoffs)
		clear(r.moves)
		r.pendingN.Store(0)
	}
	return nil
}
