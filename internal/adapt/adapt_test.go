package adapt

import (
	"testing"

	"handshakejoin/internal/shard"
	"handshakejoin/internal/stream"
)

func newTestRouter(shards, groups int, floor *int64) *Router {
	p := shard.NewPartitionerGroups(shards, groups)
	return NewRouter(p, true, func() int64 { return *floor })
}

// keyInGroup finds a join key hashing to group g (groups are dense and
// small in tests, so a linear probe terminates quickly).
func keyInGroup(r *Router, g uint32) uint64 {
	for k := uint64(0); ; k++ {
		if r.GroupOf(k) == g {
			return k
		}
	}
}

func TestRouterCutoverWaitsForCountDrain(t *testing.T) {
	floor := int64(0)
	r := newTestRouter(2, 8, &floor)
	g := uint32(0)
	key := keyInGroup(r, g)
	from := r.Of(key)
	to := 1 - from

	// A count-bound tuple is admitted: the group has live state.
	lane, _ := r.Admit(stream.R, key, true, 0, false)
	if lane != from {
		t.Fatalf("Admit routed to %d, want %d", lane, from)
	}
	if n := r.Propose([]Move{{Group: g, From: from, To: to}}); n != 1 {
		t.Fatalf("Propose registered %d moves, want 1", n)
	}
	if r.TryApply() != 0 {
		t.Fatal("cut-over applied while a count-bound tuple is live")
	}
	if r.Of(key) != from {
		t.Fatal("routing changed before the cut-over was safe")
	}

	// The tuple leaves its window at stream time 100; the cut-over must
	// additionally wait for both ingress sides to pass that deadline.
	r.ObserveCountExpire(stream.R, g, 100)
	if r.TryApply() != 0 {
		t.Fatal("cut-over applied before stream time reached the expiry deadline")
	}
	floor = 100
	if r.TryApply() != 1 {
		t.Fatal("cut-over not applied after the group drained")
	}
	if r.Of(key) != to {
		t.Fatalf("after cut-over Of = %d, want %d", r.Of(key), to)
	}
	if r.Applied() != 1 || r.Rebalances() != 1 {
		t.Fatalf("counters = (%d applied, %d rebalances), want (1, 1)", r.Applied(), r.Rebalances())
	}
}

func TestRouterCutoverWaitsForDurationDeadline(t *testing.T) {
	floor := int64(0)
	r := newTestRouter(2, 8, &floor)
	g := uint32(1)
	key := keyInGroup(r, g)
	from := r.Of(key)
	to := 1 - from

	// A duration-bound tuple admitted at ts 10 with a window reaching
	// to ts 60 pins the group until the floor passes 60.
	_, _ = r.Admit(stream.S, key, false, 60, true)
	r.Propose([]Move{{Group: g, From: from, To: to}})
	floor = 59
	if r.TryApply() != 0 {
		t.Fatal("cut-over applied while the duration window could still hold the tuple")
	}
	floor = 60
	if r.TryApply() != 1 {
		t.Fatal("cut-over not applied once the floor passed the deadline")
	}
}

func TestRouterExpiryHookAppliesPendingMove(t *testing.T) {
	// The drain moment itself must trigger the cut-over: no controller
	// cycle runs here.
	floor := int64(50)
	r := newTestRouter(2, 8, &floor)
	g := uint32(2)
	key := keyInGroup(r, g)
	from := r.Of(key)
	to := 1 - from

	_, _ = r.Admit(stream.R, key, true, 0, false)
	r.Propose([]Move{{Group: g, From: from, To: to}})
	r.ObserveCountExpire(stream.R, g, 40) // deadline 40 <= floor 50: drained
	if r.Of(key) != to {
		t.Fatal("expiry hook did not apply the pending cut-over")
	}
	if r.PendingMoves() != 0 {
		t.Fatalf("PendingMoves = %d, want 0", r.PendingMoves())
	}
}

func TestRouterStaleMovesCancelled(t *testing.T) {
	floor := int64(0)
	r := newTestRouter(2, 8, &floor)
	g := uint32(3)
	key := keyInGroup(r, g)
	from := r.Of(key)

	_, _ = r.Admit(stream.R, key, true, 0, false) // never drained
	r.Propose([]Move{{Group: g, From: from, To: 1 - from}})
	for i := 0; i < 2; i++ {
		if n := r.AdvanceCycle(2); n != 0 {
			t.Fatalf("cycle %d cancelled %d moves prematurely", i, n)
		}
	}
	if n := r.AdvanceCycle(2); n != 1 {
		t.Fatalf("stale move not cancelled (got %d)", n)
	}
	if r.PendingMoves() != 0 {
		t.Fatalf("PendingMoves = %d after cancellation", r.PendingMoves())
	}
}

func TestPlanMovesLoadOffHottestShard(t *testing.T) {
	// 4 groups on shard 0 with loads 50/30/10/10, shards 1..3 empty.
	assign := []uint32{0, 0, 0, 0}
	load := []uint64{50, 30, 10, 10}
	moves := Plan(assign, load, nil, 4, 1.1, 8, func(uint32) bool { return false })
	if len(moves) == 0 {
		t.Fatal("no moves planned for a fully skewed assignment")
	}
	shardLoad := []uint64{100, 0, 0, 0}
	for _, m := range moves {
		if m.From != 0 {
			t.Fatalf("move %+v does not come from the hot shard", m)
		}
		shardLoad[m.From] -= load[m.Group]
		shardLoad[m.To] += load[m.Group]
	}
	var max uint64
	for _, l := range shardLoad {
		if l > max {
			max = l
		}
	}
	// The dominant 50-load group should have stayed put (moving it just
	// relocates the hotspot); everything else should have spread out.
	if max != 50 {
		t.Fatalf("post-plan max shard load = %d, want 50 (shardLoad %v, moves %+v)", max, shardLoad, moves)
	}
}

func TestPlanRespectsPendingAndThreshold(t *testing.T) {
	assign := []uint32{0, 0, 1, 1}
	load := []uint64{30, 30, 25, 25}
	// Balanced within threshold 1.5: no moves.
	if moves := Plan(assign, load, nil, 2, 1.5, 8, func(uint32) bool { return false }); len(moves) != 0 {
		t.Fatalf("planned %+v on a balanced assignment", moves)
	}
	// Skewed, but every donor group pending: no moves.
	load = []uint64{60, 30, 5, 5}
	if moves := Plan(assign, load, nil, 2, 1.2, 8, func(uint32) bool { return true }); len(moves) != 0 {
		t.Fatalf("planned %+v despite pending groups", moves)
	}
}

func TestPlanCountsQueueDepthAsLoad(t *testing.T) {
	// Routed counts alone are balanced, but shard 0 has a deep backlog;
	// the planner should still move work off it.
	assign := []uint32{0, 0, 1, 1}
	load := []uint64{20, 20, 20, 20}
	extra := []uint64{200, 0}
	moves := Plan(assign, load, extra, 2, 1.2, 8, func(uint32) bool { return false })
	if len(moves) == 0 || moves[0].From != 0 {
		t.Fatalf("backlogged shard not relieved: %+v", moves)
	}
}

func TestRouterRelocateSwapsTableAndCancelsPending(t *testing.T) {
	floor := int64(0)
	r := newTestRouter(2, 8, &floor)
	g := uint32(4)
	key := keyInGroup(r, g)
	from := r.Of(key)
	to := 1 - from

	// The group has live state, so the drain path is stuck...
	_, _ = r.Admit(stream.R, key, true, 0, false)
	r.Propose([]Move{{Group: g, From: from, To: to}})
	if r.TryApply() != 0 {
		t.Fatal("drain cut-over applied with live state")
	}
	// ...but Relocate (state migration moves the tuples itself) is not.
	if got := r.Relocate(g, to); got != from {
		t.Fatalf("Relocate returned from=%d, want %d", got, from)
	}
	if r.Of(key) != to {
		t.Fatalf("after Relocate Of = %d, want %d", r.Of(key), to)
	}
	if r.PendingMoves() != 0 {
		t.Fatalf("pending move survived Relocate: %d", r.PendingMoves())
	}
	// Drain counters must not claim a migration as a drain cut-over.
	if r.Applied() != 0 {
		t.Fatalf("Applied = %d after a migration-only move", r.Applied())
	}
}

func TestRouterMigrationCandidatesRequireAge(t *testing.T) {
	floor := int64(0)
	r := newTestRouter(2, 8, &floor)
	g := uint32(5)
	key := keyInGroup(r, g)
	from := r.Of(key)

	_, _ = r.Admit(stream.R, key, true, 0, false) // never drains
	r.Propose([]Move{{Group: g, From: from, To: 1 - from}})
	if cands := r.MigrationCandidates(2); len(cands) != 0 {
		t.Fatalf("fresh pending move escalated immediately: %+v", cands)
	}
	r.AdvanceCycle(100)
	r.AdvanceCycle(100)
	cands := r.MigrationCandidates(2)
	if len(cands) != 1 || cands[0].Group != g || cands[0].From != from || cands[0].To != 1-from {
		t.Fatalf("MigrationCandidates = %+v, want aged move of group %d", cands, g)
	}
}

func TestRouterLiveLoadCountsResidualFootprint(t *testing.T) {
	floor := int64(0)
	r := newTestRouter(2, 8, &floor)
	g := uint32(6)
	key := keyInGroup(r, g)

	_, _ = r.Admit(stream.R, key, true, 0, false)
	_, _ = r.Admit(stream.S, key, true, 0, false)
	live := make([]uint64, r.Groups())
	r.LiveLoadInto(live)
	if live[g] != 2 {
		t.Fatalf("LiveLoadInto[%d] = %d, want 2", g, live[g])
	}
	r.ObserveCountExpire(stream.R, g, 10)
	r.LiveLoadInto(live)
	if live[g] != 1 {
		t.Fatalf("after one expiry LiveLoadInto[%d] = %d, want 1", g, live[g])
	}
}

// step runs n controller cycles against a router whose per-group loads
// are bumped by touch before each cycle.
func stepN(c *Controller, n int, touch func()) (proposed, applied int) {
	for i := 0; i < n; i++ {
		if touch != nil {
			touch()
		}
		p, a := c.Step()
		proposed += p
		applied += a
	}
	return proposed, applied
}

func TestControllerColdPendingGroupStillPlanned(t *testing.T) {
	// Group g receives one burst of traffic and then goes cold while
	// its tuples stay live in the window of a shard another group keeps
	// hot. With load deltas alone the planner would never consider g
	// again (zero delta excludes it); the residual live footprint must
	// keep it a candidate for evacuation.
	floor := int64(0)
	r := newTestRouter(2, 8, &floor)
	g := uint32(0)
	key := keyInGroup(r, g)
	from := r.Of(key)

	// h: a hot group on the same shard; its ongoing traffic keeps the
	// shard overloaded. o: light traffic on the other shard.
	h := uint32(1)
	for r.table.Load().ShardOfGroup(h) != from || h == g {
		h++
	}
	o := uint32(0)
	for r.table.Load().ShardOfGroup(o) == from {
		o++
	}
	hKey, oKey := keyInGroup(r, h), keyInGroup(r, o)

	c := NewController(r, nil, nil, Config{
		SkewThreshold:  1.05,
		MinCycleTuples: 1,
	})
	// Burst cycle: only g sees traffic — as the shard's dominant group
	// it cannot be proposed here, so any later proposal of g comes from
	// the cold-group sampling under test.
	for i := 0; i < 64; i++ {
		_, _ = r.Admit(stream.R, key, true, 0, false)
	}
	c.Step()

	// Cold cycles: g's delta is zero, but its 64 live tuples still park
	// on the shard h keeps hot.
	stepN(c, 6, func() {
		for i := 0; i < 8; i++ {
			_, _ = r.Admit(stream.R, hKey, true, 0, false)
		}
		_, _ = r.Admit(stream.R, oKey, true, 0, false)
	})
	if _, pending := r.PendingSnapshot()[g]; !pending {
		t.Fatalf("pending set %v does not contain the cold stateful group %d", r.PendingSnapshot(), g)
	}
}

func TestControllerHysteresisWatermarksConfigurable(t *testing.T) {
	// With EngageThreshold 3.0 a 2x imbalance must not wake planning;
	// with the default (SkewThreshold) it must. DisengageRatio then
	// positions the low watermark: ratio 1.0 collapses the band, so
	// planning disengages the moment the smoothed imbalance dips below
	// the engage threshold itself.
	run := func(cfg Config, imbalanced int) *Controller {
		floor := int64(0)
		r := newTestRouter(2, 8, &floor)
		g := uint32(0)
		key := keyInGroup(r, g)
		c := NewController(r, nil, nil, cfg)
		stepN(c, imbalanced, func() {
			for i := 0; i < 8; i++ {
				_, _ = r.Admit(stream.R, key, false, 0, false)
			}
		})
		return c
	}
	cfg := Config{SkewThreshold: 1.25, EngageThreshold: 3.0, MinCycleTuples: 1}
	if c := run(cfg, 6); c.planning {
		t.Fatal("planning engaged below the configured EngageThreshold")
	}
	cfg = Config{SkewThreshold: 1.25, MinCycleTuples: 1}
	if c := run(cfg, 6); !c.planning {
		t.Fatal("planning did not engage above the default engage watermark")
	}

	// Disengage: drive imbalance high, then feed balanced traffic.
	floor := int64(0)
	r := newTestRouter(2, 8, &floor)
	g0, g1 := uint32(0), uint32(1)
	for r.table.Load().ShardOfGroup(g1) == r.table.Load().ShardOfGroup(g0) {
		g1++
	}
	k0, k1 := keyInGroup(r, g0), keyInGroup(r, g1)
	c := NewController(r, nil, nil, Config{SkewThreshold: 1.25, DisengageRatio: 1.0, MinCycleTuples: 1})
	stepN(c, 6, func() {
		for i := 0; i < 8; i++ {
			_, _ = r.Admit(stream.R, k0, false, 0, false)
		}
	})
	if !c.planning {
		t.Fatal("planning not engaged under skew")
	}
	stepN(c, 12, func() {
		_, _ = r.Admit(stream.R, k0, false, 0, false)
		_, _ = r.Admit(stream.R, k1, false, 0, false)
	})
	if c.planning {
		t.Fatal("ratio-1.0 hysteresis did not disengage on balanced traffic")
	}
}

func TestControllerEscalatesStalledMovesToMigration(t *testing.T) {
	// Two never-draining hot groups share a shard; their planned moves
	// stall (count-bound live state never drains) and must escalate to
	// the Migrator after MigrateAfterCycles, hottest first, within the
	// per-cycle budget.
	floor := int64(0)
	r := newTestRouter(2, 16, &floor)
	g0 := uint32(0)
	k0 := keyInGroup(r, g0)
	from := r.Of(k0)
	g1 := uint32(1)
	for r.table.Load().ShardOfGroup(g1) != from || g1 == g0 {
		g1++
	}
	k1 := keyInGroup(r, g1)

	type call struct {
		group  uint32
		to     int
		budget int
	}
	var calls []call
	c := NewController(r, nil, nil, Config{
		SkewThreshold:      1.05,
		MinCycleTuples:     1,
		MigrateAfterCycles: 3,
		MigrateBudget:      100,
		Migrator: func(group uint32, to int, budget int) (int, bool) {
			calls = append(calls, call{group, to, budget})
			r.Relocate(group, to)
			return 40, true
		},
	})
	stepN(c, 10, func() {
		for i := 0; i < 32; i++ {
			_, _ = r.Admit(stream.R, k0, true, 0, false)
		}
		for i := 0; i < 16; i++ {
			_, _ = r.Admit(stream.R, k1, true, 0, false)
		}
	})
	if len(calls) == 0 {
		t.Fatal("stalled hot moves never escalated to migration")
	}
	if calls[0].group != g0 {
		t.Fatalf("first migration moved group %d, want the hottest stalled group %d", calls[0].group, g0)
	}
	if calls[0].budget != 100 {
		t.Fatalf("first migration budget = %d, want the full 100", calls[0].budget)
	}
	if c.Migrations() == 0 {
		t.Fatal("controller did not count the migrations")
	}
	if calls[0].to == from {
		t.Fatalf("migration target %d is the group's own shard", calls[0].to)
	}
}

func TestControllerMigrationRefusalDeferred(t *testing.T) {
	// A refused (over-budget) migration must not be retried every
	// cycle: the freeze-and-count probe stalls ingress.
	floor := int64(0)
	r := newTestRouter(2, 16, &floor)
	g0 := uint32(0)
	k0 := keyInGroup(r, g0)
	from := r.Of(k0)
	g1 := uint32(1)
	for r.table.Load().ShardOfGroup(g1) != from || g1 == g0 {
		g1++
	}
	k1 := keyInGroup(r, g1)

	attempts := 0
	c := NewController(r, nil, nil, Config{
		SkewThreshold:      1.05,
		MinCycleTuples:     1,
		MigrateAfterCycles: 2,
		MigrateBudget:      10,
		Migrator: func(group uint32, to int, budget int) (int, bool) {
			attempts++
			return 0, false // over budget, refused
		},
	})
	const cycles = 12
	stepN(c, cycles, func() {
		for i := 0; i < 32; i++ {
			_, _ = r.Admit(stream.R, k0, true, 0, false)
		}
		for i := 0; i < 16; i++ {
			_, _ = r.Admit(stream.R, k1, true, 0, false)
		}
	})
	if attempts == 0 {
		t.Fatal("migration never attempted")
	}
	// Two candidate groups over 12 cycles: without deferral the
	// controller would attempt ~2 per cycle once escalation begins
	// (~18+); with MigrateAfterCycles-deferral each group retries at
	// most every other cycle.
	if attempts > 12 {
		t.Fatalf("refused migration retried %d times in %d cycles; refusals must back off", attempts, cycles)
	}
}

func TestRouterHandoffRoutesNewArrivalsAndDoublesProbes(t *testing.T) {
	floor := int64(0)
	r := newTestRouter(2, 8, &floor)
	g := uint32(0)
	key := keyInGroup(r, g)
	from := r.Of(key)
	to := 1 - from

	if lane := r.ProbeLane(g); lane != -1 {
		t.Fatalf("ProbeLane before handoff = %d, want -1", lane)
	}
	prev, ok := r.BeginHandoff(g, to)
	if !ok || prev != from {
		t.Fatalf("BeginHandoff = (%d, %v), want (%d, true)", prev, ok, from)
	}
	// New arrivals route to the destination; probes double to the
	// source.
	if lane, _ := r.Admit(stream.R, key, false, 0, false); lane != to {
		t.Fatalf("post-handoff Admit routed to %d, want %d", lane, to)
	}
	if lane := r.ProbeLane(g); lane != from {
		t.Fatalf("ProbeLane = %d, want source %d", lane, from)
	}
	if !r.InHandoff(g) || r.Handoffs() != 1 {
		t.Fatalf("handoff state = (%v, %d), want (true, 1)", r.InHandoff(g), r.Handoffs())
	}
	// A second handoff for the same group must be refused.
	if _, ok := r.BeginHandoff(g, from); ok {
		t.Fatal("concurrent second handoff accepted for the same group")
	}

	r.FinishHandoff(g)
	if r.InHandoff(g) || r.Handoffs() != 0 || r.ProbeLane(g) != -1 {
		t.Fatal("FinishHandoff did not clear the handoff state")
	}
	// Finishing twice is a no-op, not a counter underflow.
	r.FinishHandoff(g)
	if r.Handoffs() != 0 {
		t.Fatalf("double FinishHandoff left %d handoffs", r.Handoffs())
	}
	// A handoff onto the group's own shard is refused.
	if _, ok := r.BeginHandoff(g, to); ok {
		t.Fatal("self-handoff accepted")
	}
}

func TestRouterHandoffBlocksDrainPathForTheGroup(t *testing.T) {
	floor := int64(1000)
	r := newTestRouter(2, 8, &floor)
	g := uint32(0)
	key := keyInGroup(r, g)
	from := r.Of(key)
	to := 1 - from

	// Register a pending drain move, then commit a handoff: the pending
	// move must be cancelled and no new one accepted while the handoff
	// is in flight — the handoff owns the group's route.
	r.Propose([]Move{{Group: g, From: from, To: to}})
	if r.PendingMoves() != 1 {
		t.Fatal("setup: drain move not pending")
	}
	prev, ok := r.BeginHandoff(g, to)
	if !ok || prev != from {
		t.Fatalf("BeginHandoff = (%d, %v), want (%d, true)", prev, ok, from)
	}
	if r.PendingMoves() != 0 {
		t.Fatal("BeginHandoff did not cancel the pending drain move")
	}
	if r.Of(key) != to {
		t.Fatal("BeginHandoff did not swap the route")
	}
	if n := r.Propose([]Move{{Group: g, From: to, To: from}}); n != 0 {
		t.Fatalf("Propose accepted %d moves for an in-handoff group", n)
	}
	if len(r.MigrationCandidates(0)) != 0 {
		t.Fatal("in-handoff group offered as a migration candidate")
	}
	if r.TryApply() != 0 {
		t.Fatal("drain path applied a move for an in-handoff group")
	}
	r.FinishHandoff(g)
}

func TestControllerSliceSchedulerRunsHandoffToCompletion(t *testing.T) {
	// A never-draining hot group escalates to an incremental handoff:
	// Begin commits the route, then slices advance every cycle under
	// the budget until done — regardless of drain-path progress.
	floor := int64(0)
	r := newTestRouter(2, 16, &floor)
	g0 := uint32(0)
	k0 := keyInGroup(r, g0)
	from := r.Of(k0)
	g1 := uint32(1)
	for r.table.Load().ShardOfGroup(g1) != from || g1 == g0 {
		g1++
	}
	k1 := keyInGroup(r, g1)

	var begins []uint32
	var sliceCaps []int
	remaining := 250 // window tuples the group holds at escalation
	c := NewController(r, nil, nil, Config{
		SkewThreshold:      1.05,
		MinCycleTuples:     1,
		MigrateAfterCycles: 3,
		MigrateBudget:      200,
		SliceTuples:        64,
		BeginHandoff: func(group uint32, to int) bool {
			begins = append(begins, group)
			_, ok := r.BeginHandoff(group, to)
			return ok
		},
		AdvanceHandoff: func(group uint32, maxTuples int) (int, bool, bool) {
			sliceCaps = append(sliceCaps, maxTuples)
			n := maxTuples
			if n > remaining {
				n = remaining
			}
			remaining -= n
			if remaining == 0 {
				r.FinishHandoff(group)
				return n, true, true
			}
			return n, false, false
		},
	})
	stepN(c, 12, func() {
		for i := 0; i < 32; i++ {
			_, _ = r.Admit(stream.R, k0, true, 0, false)
		}
		for i := 0; i < 16; i++ {
			_, _ = r.Admit(stream.R, k1, true, 0, false)
		}
	})
	if len(begins) != 1 || begins[0] != g0 {
		t.Fatalf("handoff begins = %v, want exactly one for group %d", begins, g0)
	}
	if remaining != 0 {
		t.Fatalf("handoff never completed: %d tuples left", remaining)
	}
	if c.Migrations() != 1 {
		t.Fatalf("Migrations() = %d, want 1 completed handoff", c.Migrations())
	}
	// Every hop respected the slice bound, and no hop exceeded the
	// remaining per-cycle budget.
	for i, cap := range sliceCaps {
		if cap > 64 {
			t.Fatalf("hop %d offered %d tuples, above SliceTuples 64", i, cap)
		}
	}
	// 250 tuples at 64/hop, 200/cycle: 4 hops in cycle one (64+64+64+8),
	// then the rest — more than one hop total proves slicing happened.
	if len(sliceCaps) < 3 {
		t.Fatalf("handoff advanced in %d hops, want several bounded slices", len(sliceCaps))
	}
}

func TestControllerHandoffBeginRefusalDefers(t *testing.T) {
	// BeginHandoff returning false (engine busy, group contested) must
	// back the group off for MigrateAfterCycles, like a freezing
	// refusal.
	floor := int64(0)
	r := newTestRouter(2, 16, &floor)
	g0 := uint32(0)
	k0 := keyInGroup(r, g0)
	from := r.Of(k0)
	g1 := uint32(1)
	for r.table.Load().ShardOfGroup(g1) != from || g1 == g0 {
		g1++
	}
	k1 := keyInGroup(r, g1)
	attempts := 0
	c := NewController(r, nil, nil, Config{
		SkewThreshold:      1.05,
		MinCycleTuples:     1,
		MigrateAfterCycles: 2,
		MigrateBudget:      100,
		BeginHandoff:       func(uint32, int) bool { attempts++; return false },
		AdvanceHandoff:     func(uint32, int) (int, bool, bool) { t.Fatal("advanced a refused handoff"); return 0, true, false },
	})
	const cycles = 12
	stepN(c, cycles, func() {
		for i := 0; i < 32; i++ {
			_, _ = r.Admit(stream.R, k0, true, 0, false)
		}
		for i := 0; i < 16; i++ {
			_, _ = r.Admit(stream.R, k1, true, 0, false)
		}
	})
	if attempts == 0 {
		t.Fatal("handoff never attempted")
	}
	// Two candidate groups over 12 cycles: without deferral the
	// controller would attempt ~2 per eligible cycle indefinitely;
	// with it each refused group backs off MigrateAfterCycles.
	if attempts > cycles {
		t.Fatalf("refused handoff retried %d times in %d cycles; refusals must back off", attempts, cycles)
	}
}

func TestControllerMigrationRateLimiterCapsStarts(t *testing.T) {
	// With a (near-)zero MaxMigrationsPerSec the token bucket's burst
	// of one admits a single start; every later candidate in the test's
	// runtime is rate-limited.
	floor := int64(0)
	r := newTestRouter(2, 16, &floor)
	g0 := uint32(0)
	k0 := keyInGroup(r, g0)
	g1 := uint32(1)
	for r.table.Load().ShardOfGroup(g1) != r.Of(k0) || g1 == g0 {
		g1++
	}
	k1 := keyInGroup(r, g1)

	begins := 0
	c := NewController(r, nil, nil, Config{
		SkewThreshold:       1.05,
		MinCycleTuples:      1,
		MigrateAfterCycles:  2,
		MigrateBudget:       100,
		MaxMigrationsPerSec: 1e-6,
		BeginHandoff: func(group uint32, to int) bool {
			begins++
			_, ok := r.BeginHandoff(group, to)
			return ok
		},
		AdvanceHandoff: func(group uint32, maxTuples int) (int, bool, bool) {
			r.FinishHandoff(group)
			return 1, true, true
		},
	})
	stepN(c, 20, func() {
		for i := 0; i < 32; i++ {
			_, _ = r.Admit(stream.R, k0, true, 0, false)
		}
		for i := 0; i < 16; i++ {
			_, _ = r.Admit(stream.R, k1, true, 0, false)
		}
	})
	if begins != 1 {
		t.Fatalf("migration starts = %d, want exactly the burst of 1", begins)
	}
}

func TestControllerMinGapRatioNoiseFloor(t *testing.T) {
	// Two stalled hot groups whose donor/receiver gap is real but small
	// relative to the mean shard load: with a high MinGapRatio the gap
	// reads as sample noise and no migration starts.
	run := func(minGapRatio float64) int {
		floor := int64(0)
		r := newTestRouter(2, 16, &floor)
		gS := uint32(0) // small co-resident group: the movable candidate
		kS := keyInGroup(r, gS)
		from := r.Of(kS)
		gH := uint32(1) // hot immovable group on the same shard
		for r.table.Load().ShardOfGroup(gH) != from || gH == gS {
			gH++
		}
		kH := keyInGroup(r, gH)
		// A key on the other shard keeps the mean shard load high, so
		// the donor/receiver gap stays well below MinGapRatio x mean.
		var kOther uint64
		for k := uint64(0); ; k++ {
			if r.Of(k) != from {
				kOther = k
				break
			}
		}
		begins := 0
		c := NewController(r, nil, nil, Config{
			SkewThreshold:      1.05,
			MinCycleTuples:     1,
			MigrateAfterCycles: 2,
			MigrateBudget:      100,
			MinGapRatio:        minGapRatio,
			BeginHandoff:       func(uint32, int) bool { begins++; return false },
			AdvanceHandoff:     func(uint32, int) (int, bool, bool) { return 0, true, true },
		})
		stepN(c, 16, func() {
			for i := 0; i < 100; i++ {
				_, _ = r.Admit(stream.R, kH, true, 0, false)
			}
			for i := 0; i < 10; i++ {
				_, _ = r.Admit(stream.R, kS, true, 0, false)
			}
			for i := 0; i < 80; i++ {
				_, _ = r.Admit(stream.R, kOther, true, 0, false)
			}
		})
		return begins
	}
	// Donor 110, receiver 80: a real but small gap (30 < 0.5 x mean 95).
	if begins := run(0); begins == 0 {
		t.Fatal("setup has no teeth: even without a noise floor nothing migrated")
	}
	if begins := run(0.5); begins != 0 {
		t.Fatalf("noise-floor gap still started %d migrations", begins)
	}
}

func TestControllerRefusedStartDoesNotBurnRateToken(t *testing.T) {
	// The hottest candidate's begin is refused; the burst token must
	// survive so the next candidate in the same cycle can still start.
	floor := int64(0)
	r := newTestRouter(2, 16, &floor)
	g0 := uint32(0)
	k0 := keyInGroup(r, g0)
	from := r.Of(k0)
	g1 := uint32(1)
	for r.table.Load().ShardOfGroup(g1) != from || g1 == g0 {
		g1++
	}
	k1 := keyInGroup(r, g1)

	var begins []uint32
	c := NewController(r, nil, nil, Config{
		SkewThreshold:       1.05,
		MinCycleTuples:      1,
		MigrateAfterCycles:  2,
		MigrateBudget:       100,
		MaxMigrationsPerSec: 1e-6, // no refill within the test's runtime
		BeginHandoff: func(group uint32, to int) bool {
			begins = append(begins, group)
			if group == g0 {
				return false // hottest candidate refused
			}
			_, ok := r.BeginHandoff(group, to)
			return ok
		},
		AdvanceHandoff: func(group uint32, maxTuples int) (int, bool, bool) {
			r.FinishHandoff(group)
			return 1, true, true
		},
	})
	stepN(c, 20, func() {
		for i := 0; i < 32; i++ {
			_, _ = r.Admit(stream.R, k0, true, 0, false)
		}
		for i := 0; i < 16; i++ {
			_, _ = r.Admit(stream.R, k1, true, 0, false)
		}
	})
	// g0 refused (token kept), g1 started on the same token, and the
	// empty bucket blocks everything afterwards. g0 may be re-attempted
	// after its deferral only while the token lasted — it did not.
	started := 0
	for _, g := range begins {
		if g == g1 {
			started++
		}
	}
	if started != 1 {
		t.Fatalf("successful starts = %d (begins %v), want exactly 1: the refusal must not burn the token, and the spent token must block later starts", started, begins)
	}
	if begins[0] != g0 || len(begins) < 2 || begins[1] != g1 {
		t.Fatalf("begins = %v, want refused g%d then started g%d in the same cycle", begins, g0, g1)
	}
}

// TestObserveCountExpireBulkLockBudget pins the batched release path's
// lock cost: one stripe lock per touched stripe per batch, not one per
// expired tuple, and byte-for-byte the same accounting as the
// per-entry path.
func TestObserveCountExpireBulkLockBudget(t *testing.T) {
	floor := int64(0)
	r := newTestRouter(4, 256, &floor)
	twin := newTestRouter(4, 256, &floor)

	// Admit the same count-bound tuples on both routers: 64 tuples over
	// 8 groups (8 distinct stripes, groups 256 stripes 64 ⇒ stripe =
	// g%64, pick groups 0..7).
	var groups []uint32
	var dues []int64
	for i := 0; i < 64; i++ {
		g := uint32(i % 8)
		key := keyInGroup(r, g)
		r.Admit(stream.R, key, true, 0, false)
		twin.Admit(stream.R, key, true, 0, false)
		groups = append(groups, g)
		dues = append(dues, int64(i))
	}

	before := releaseStripeLocks.Load()
	r.ObserveCountExpireBulk(stream.R, groups, dues)
	bulkLocks := releaseStripeLocks.Load() - before

	before = releaseStripeLocks.Load()
	for i := range groups {
		twin.ObserveCountExpire(stream.R, groups[i], dues[i])
	}
	perEntryLocks := releaseStripeLocks.Load() - before

	if bulkLocks != 8 {
		t.Fatalf("bulk release took %d stripe locks for 64 entries over 8 stripes, want 8", bulkLocks)
	}
	if perEntryLocks != 64 {
		t.Fatalf("per-entry release took %d stripe locks, want 64", perEntryLocks)
	}

	// Both paths fully drained the groups: identical counters, and a
	// pending move applies immediately on either router.
	for g := uint32(0); g < 8; g++ {
		if r.rLive[g] != 0 || r.rLive[g] != twin.rLive[g] {
			t.Fatalf("group %d rLive = %d (bulk) vs %d (per-entry), want 0", g, r.rLive[g], twin.rLive[g])
		}
		if r.dueBound[g] != twin.dueBound[g] {
			t.Fatalf("group %d dueBound = %d (bulk) vs %d (per-entry)", g, r.dueBound[g], twin.dueBound[g])
		}
	}
	floor = 1000
	from := r.Of(keyInGroup(r, 3))
	if n := r.Propose([]Move{{Group: 3, From: from, To: (from + 1) % 4}}); n != 1 {
		t.Fatal("Propose rejected the move")
	}
	if r.TryApply() != 1 {
		t.Fatal("cut-over did not apply after bulk release drained the group")
	}
}

// TestObserveCountExpireBulkAppliesDrainedCutover verifies the bulk
// path keeps the per-entry path's responsiveness: a pending move whose
// group drains inside the batch cuts over without waiting for the next
// control cycle.
func TestObserveCountExpireBulkAppliesDrainedCutover(t *testing.T) {
	floor := int64(100)
	r := newTestRouter(2, 8, &floor)
	g := uint32(2)
	key := keyInGroup(r, g)
	from := r.Of(key)
	r.Admit(stream.R, key, true, 0, false)
	r.Admit(stream.R, key, true, 0, false)
	if n := r.Propose([]Move{{Group: g, From: from, To: 1 - from}}); n != 1 {
		t.Fatal("Propose rejected the move")
	}
	if r.TryApply() != 0 {
		t.Fatal("cut-over applied while tuples are live")
	}
	r.ObserveCountExpireBulk(stream.R, []uint32{g, g}, []int64{40, 41})
	if r.Of(key) != 1-from {
		t.Fatal("bulk release drained the group but the pending cut-over did not apply")
	}
}
