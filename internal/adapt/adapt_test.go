package adapt

import (
	"testing"

	"handshakejoin/internal/shard"
	"handshakejoin/internal/stream"
)

func newTestRouter(shards, groups int, floor *int64) *Router {
	p := shard.NewPartitionerGroups(shards, groups)
	return NewRouter(p, true, func() int64 { return *floor })
}

// keyInGroup finds a join key hashing to group g (groups are dense and
// small in tests, so a linear probe terminates quickly).
func keyInGroup(r *Router, g uint32) uint64 {
	for k := uint64(0); ; k++ {
		if r.GroupOf(k) == g {
			return k
		}
	}
}

func TestRouterCutoverWaitsForCountDrain(t *testing.T) {
	floor := int64(0)
	r := newTestRouter(2, 8, &floor)
	g := uint32(0)
	key := keyInGroup(r, g)
	from := r.Of(key)
	to := 1 - from

	// A count-bound tuple is admitted: the group has live state.
	lane, _ := r.Admit(stream.R, key, true, 0, false)
	if lane != from {
		t.Fatalf("Admit routed to %d, want %d", lane, from)
	}
	if n := r.Propose([]Move{{Group: g, From: from, To: to}}); n != 1 {
		t.Fatalf("Propose registered %d moves, want 1", n)
	}
	if r.TryApply() != 0 {
		t.Fatal("cut-over applied while a count-bound tuple is live")
	}
	if r.Of(key) != from {
		t.Fatal("routing changed before the cut-over was safe")
	}

	// The tuple leaves its window at stream time 100; the cut-over must
	// additionally wait for both ingress sides to pass that deadline.
	r.ObserveCountExpire(stream.R, g, 100)
	if r.TryApply() != 0 {
		t.Fatal("cut-over applied before stream time reached the expiry deadline")
	}
	floor = 100
	if r.TryApply() != 1 {
		t.Fatal("cut-over not applied after the group drained")
	}
	if r.Of(key) != to {
		t.Fatalf("after cut-over Of = %d, want %d", r.Of(key), to)
	}
	if r.Applied() != 1 || r.Rebalances() != 1 {
		t.Fatalf("counters = (%d applied, %d rebalances), want (1, 1)", r.Applied(), r.Rebalances())
	}
}

func TestRouterCutoverWaitsForDurationDeadline(t *testing.T) {
	floor := int64(0)
	r := newTestRouter(2, 8, &floor)
	g := uint32(1)
	key := keyInGroup(r, g)
	from := r.Of(key)
	to := 1 - from

	// A duration-bound tuple admitted at ts 10 with a window reaching
	// to ts 60 pins the group until the floor passes 60.
	_, _ = r.Admit(stream.S, key, false, 60, true)
	r.Propose([]Move{{Group: g, From: from, To: to}})
	floor = 59
	if r.TryApply() != 0 {
		t.Fatal("cut-over applied while the duration window could still hold the tuple")
	}
	floor = 60
	if r.TryApply() != 1 {
		t.Fatal("cut-over not applied once the floor passed the deadline")
	}
}

func TestRouterExpiryHookAppliesPendingMove(t *testing.T) {
	// The drain moment itself must trigger the cut-over: no controller
	// cycle runs here.
	floor := int64(50)
	r := newTestRouter(2, 8, &floor)
	g := uint32(2)
	key := keyInGroup(r, g)
	from := r.Of(key)
	to := 1 - from

	_, _ = r.Admit(stream.R, key, true, 0, false)
	r.Propose([]Move{{Group: g, From: from, To: to}})
	r.ObserveCountExpire(stream.R, g, 40) // deadline 40 <= floor 50: drained
	if r.Of(key) != to {
		t.Fatal("expiry hook did not apply the pending cut-over")
	}
	if r.PendingMoves() != 0 {
		t.Fatalf("PendingMoves = %d, want 0", r.PendingMoves())
	}
}

func TestRouterStaleMovesCancelled(t *testing.T) {
	floor := int64(0)
	r := newTestRouter(2, 8, &floor)
	g := uint32(3)
	key := keyInGroup(r, g)
	from := r.Of(key)

	_, _ = r.Admit(stream.R, key, true, 0, false) // never drained
	r.Propose([]Move{{Group: g, From: from, To: 1 - from}})
	for i := 0; i < 2; i++ {
		if n := r.AdvanceCycle(2); n != 0 {
			t.Fatalf("cycle %d cancelled %d moves prematurely", i, n)
		}
	}
	if n := r.AdvanceCycle(2); n != 1 {
		t.Fatalf("stale move not cancelled (got %d)", n)
	}
	if r.PendingMoves() != 0 {
		t.Fatalf("PendingMoves = %d after cancellation", r.PendingMoves())
	}
}

func TestPlanMovesLoadOffHottestShard(t *testing.T) {
	// 4 groups on shard 0 with loads 50/30/10/10, shards 1..3 empty.
	assign := []uint32{0, 0, 0, 0}
	load := []uint64{50, 30, 10, 10}
	moves := Plan(assign, load, nil, 4, 1.1, 8, func(uint32) bool { return false })
	if len(moves) == 0 {
		t.Fatal("no moves planned for a fully skewed assignment")
	}
	shardLoad := []uint64{100, 0, 0, 0}
	for _, m := range moves {
		if m.From != 0 {
			t.Fatalf("move %+v does not come from the hot shard", m)
		}
		shardLoad[m.From] -= load[m.Group]
		shardLoad[m.To] += load[m.Group]
	}
	var max uint64
	for _, l := range shardLoad {
		if l > max {
			max = l
		}
	}
	// The dominant 50-load group should have stayed put (moving it just
	// relocates the hotspot); everything else should have spread out.
	if max != 50 {
		t.Fatalf("post-plan max shard load = %d, want 50 (shardLoad %v, moves %+v)", max, shardLoad, moves)
	}
}

func TestPlanRespectsPendingAndThreshold(t *testing.T) {
	assign := []uint32{0, 0, 1, 1}
	load := []uint64{30, 30, 25, 25}
	// Balanced within threshold 1.5: no moves.
	if moves := Plan(assign, load, nil, 2, 1.5, 8, func(uint32) bool { return false }); len(moves) != 0 {
		t.Fatalf("planned %+v on a balanced assignment", moves)
	}
	// Skewed, but every donor group pending: no moves.
	load = []uint64{60, 30, 5, 5}
	if moves := Plan(assign, load, nil, 2, 1.2, 8, func(uint32) bool { return true }); len(moves) != 0 {
		t.Fatalf("planned %+v despite pending groups", moves)
	}
}

func TestPlanCountsQueueDepthAsLoad(t *testing.T) {
	// Routed counts alone are balanced, but shard 0 has a deep backlog;
	// the planner should still move work off it.
	assign := []uint32{0, 0, 1, 1}
	load := []uint64{20, 20, 20, 20}
	extra := []uint64{200, 0}
	moves := Plan(assign, load, extra, 2, 1.2, 8, func(uint32) bool { return false })
	if len(moves) == 0 || moves[0].From != 0 {
		t.Fatalf("backlogged shard not relieved: %+v", moves)
	}
}
