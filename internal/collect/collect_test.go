package collect

import (
	"testing"

	"handshakejoin/internal/core"
	"handshakejoin/internal/fifo"
	"handshakejoin/internal/stream"
)

func mkQueues(n int) []*fifo.Chan[core.Result[int, int]] {
	qs := make([]*fifo.Chan[core.Result[int, int]], n)
	for i := range qs {
		qs[i] = fifo.NewChan[core.Result[int, int]](64)
	}
	return qs
}

func put(q *fifo.Chan[core.Result[int, int]], rSeq uint64, ts int64) {
	q.TryPut(core.Result[int, int]{
		Pair: stream.Pair[int, int]{R: stream.Tuple[int]{Seq: rSeq, TS: ts}},
	})
}

func TestCollectorVacuumsAllQueues(t *testing.T) {
	qs := mkQueues(3)
	put(qs[0], 1, 10)
	put(qs[2], 2, 20)
	put(qs[2], 3, 30)

	var items []Item[int, int]
	c := New(qs, nil, func(it Item[int, int]) { items = append(items, it) }, Config{})
	c.RunOnce()
	if len(items) != 3 {
		t.Fatalf("collected %d, want 3", len(items))
	}
	if c.Collected() != 3 {
		t.Fatalf("Collected = %d", c.Collected())
	}
	if c.Punctuations() != 0 {
		t.Fatal("punctuation emitted while disabled")
	}
}

func TestCollectorPunctuationOrderAndMonotonicity(t *testing.T) {
	qs := mkQueues(2)
	hwmR, hwmS := int64(0), int64(0)
	hwm := func() (int64, int64) { return hwmR, hwmS }

	var items []Item[int, int]
	c := New(qs, hwm, func(it Item[int, int]) { items = append(items, it) }, Config{Punctuate: true})

	hwmR, hwmS = 100, 80
	put(qs[0], 1, 90)
	c.RunOnce()
	// One result, then a punctuation at min(100, 80) = 80.
	if len(items) != 2 || items[0].Punct || !items[1].Punct || items[1].TS != 80 {
		t.Fatalf("items = %+v", items)
	}

	// Unchanged HWM: no duplicate punctuation.
	c.RunOnce()
	if len(items) != 2 {
		t.Fatalf("duplicate punctuation emitted: %+v", items)
	}

	hwmS = 150
	c.RunOnce()
	if len(items) != 3 || !items[2].Punct || items[2].TS != 100 {
		t.Fatalf("punctuation did not advance to 100: %+v", items)
	}
	if c.Punctuations() != 2 {
		t.Fatalf("Punctuations = %d", c.Punctuations())
	}
}

func TestCollectorRunTerminatesWhenQueuesClose(t *testing.T) {
	qs := mkQueues(2)
	put(qs[0], 1, 10)
	qs[0].Close()
	qs[1].Close()
	var items []Item[int, int]
	c := New(qs, nil, func(it Item[int, int]) { items = append(items, it) }, Config{})
	done := make(chan struct{})
	go func() {
		c.Run(nil)
		close(done)
	}()
	<-done
	if len(items) != 1 {
		t.Fatalf("collected %d before termination, want 1", len(items))
	}
}

// TestCollectorPunctuationInvariant feeds results whose timestamps obey
// the high-water-mark contract and asserts the output invariant: no
// result after a punctuation ⌈tp⌉ has ts < tp.
func TestCollectorPunctuationInvariant(t *testing.T) {
	qs := mkQueues(2)
	var hwmR, hwmS int64
	c := New(qs, func() (int64, int64) { return hwmR, hwmS }, nil, Config{Punctuate: true})

	var lastPunct int64 = -1
	violated := false
	c.out = func(it Item[int, int]) {
		if it.Punct {
			lastPunct = it.TS
			return
		}
		if ts := it.Result.Pair.TS(); ts < lastPunct {
			violated = true
		}
	}

	for step := 0; step < 200; step++ {
		// Streams advance; results carry ts >= current min HWM.
		hwmR += int64(step % 7)
		hwmS += int64(step % 5)
		min := hwmR
		if hwmS < min {
			min = hwmS
		}
		put(qs[step%2], uint64(step), min+int64(step%13))
		c.RunOnce()
	}
	if violated {
		t.Fatal("punctuation invariant violated")
	}
}
