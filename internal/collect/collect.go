// Package collect implements result-stream assembly (§5) and
// punctuation generation (§6.1) for live pipelines.
//
// Every pipeline worker writes matches to its own result queue
// (Q1..Qn, Figure 15); a collector goroutine periodically vacuums all
// queues into a single output stream. For low-latency handshake join
// the collector additionally reads the high-water marks maintained at
// the pipeline ends and emits punctuations ⌈tp⌉ with
// tp = min(tmax,R, tmax,S): a guarantee that no later result carries a
// smaller timestamp (§6.1.3). The read-HWM-then-vacuum-then-punctuate
// order is what makes the guarantee sound.
package collect

import (
	"sync"

	"handshakejoin/internal/core"
	"handshakejoin/internal/fifo"
)

// Item is one element of the assembled output stream: either a join
// result or a punctuation.
type Item[L, R any] struct {
	// Punct marks a punctuation carrying timestamp TS; otherwise the
	// item is Result.
	Punct bool
	// TS is the punctuation timestamp tp (valid when Punct).
	TS int64
	// Result is the join result (valid when !Punct).
	Result core.Result[L, R]
}

// Config tunes a Collector.
type Config struct {
	// Punctuate enables punctuation generation (LLHJ §6.1). Without
	// it the collector only merges the result queues, as the original
	// handshake join implementation does.
	Punctuate bool
}

// Collector vacuums per-node result queues into a single stream.
type Collector[L, R any] struct {
	queues []*fifo.Chan[core.Result[L, R]]
	hwm    func() (r, s int64)
	out    func(Item[L, R])
	cfg    Config

	// runMu serializes whole collection passes: the background Run loop
	// and any synchronous RunOnce caller (a checkpoint draining the
	// result queues at its cut) take it for the duration of a pass, so
	// a pass observes the queues and emits downstream atomically with
	// respect to other passes.
	runMu sync.Mutex

	mu        sync.Mutex
	collected uint64
	puncts    uint64
	lastPunct int64
}

// New returns a Collector draining queues into out. hwm supplies the
// pipeline high-water marks (tmax,R, tmax,S); it may be nil when
// punctuation is disabled. The out callback is invoked from the
// collector's goroutine (single-threaded).
func New[L, R any](queues []*fifo.Chan[core.Result[L, R]], hwm func() (r, s int64), out func(Item[L, R]), cfg Config) *Collector[L, R] {
	return &Collector[L, R]{queues: queues, hwm: hwm, out: out, cfg: cfg, lastPunct: -1}
}

// RunOnce performs one collection pass — read high-water marks, vacuum
// all result queues, then punctuate — and reports whether any queue is
// exhausted-and-closed. Exposed for deterministic tests and for
// checkpoints, which call it synchronously to drain every queued
// result through the normal output path before snapshotting the
// downstream sorter; passes are serialized against the background Run
// loop, so a synchronous pass never interleaves with a periodic one.
func (c *Collector[L, R]) RunOnce() (done bool) {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	var tp int64
	if c.cfg.Punctuate && c.hwm != nil {
		r, s := c.hwm()
		tp = r
		if s < tp {
			tp = s
		}
	}
	closed := 0
	for _, q := range c.queues {
		for {
			r, ok, qClosed := q.TryGet()
			if ok {
				c.mu.Lock()
				c.collected++
				c.mu.Unlock()
				c.out(Item[L, R]{Result: r})
				continue
			}
			if qClosed {
				closed++
			}
			break
		}
	}
	if c.cfg.Punctuate && c.hwm != nil && tp > c.lastPunct {
		c.lastPunct = tp
		c.mu.Lock()
		c.puncts++
		c.mu.Unlock()
		c.out(Item[L, R]{Punct: true, TS: tp})
	}
	return closed == len(c.queues)
}

// Run loops RunOnce until every queue is closed and drained. It is
// meant to run on its own goroutine; it yields between passes via the
// provided idle func (e.g. runtime.Gosched or a short sleep).
func (c *Collector[L, R]) Run(idle func()) {
	for !c.RunOnce() {
		if idle != nil {
			idle()
		}
	}
}

// Collected returns the number of results assembled so far.
func (c *Collector[L, R]) Collected() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.collected
}

// Punctuations returns the number of punctuations emitted so far.
func (c *Collector[L, R]) Punctuations() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.puncts
}
