package order

import (
	"testing"
	"testing/quick"

	"handshakejoin/internal/collect"
	"handshakejoin/internal/core"
	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

func res(rSeq, sSeq uint64, rTS, sTS int64) core.Result[int, int] {
	return core.Result[int, int]{
		Pair: stream.Pair[int, int]{
			R: stream.Tuple[int]{Seq: rSeq, TS: rTS},
			S: stream.Tuple[int]{Seq: sSeq, TS: sTS},
		},
	}
}

func item(r core.Result[int, int]) collect.Item[int, int] {
	return collect.Item[int, int]{Result: r}
}

func punct(ts int64) collect.Item[int, int] {
	return collect.Item[int, int]{Punct: true, TS: ts}
}

func TestSorterReleasesOnPunctuation(t *testing.T) {
	var out []int64
	s := NewSorter(func(r core.Result[int, int]) { out = append(out, r.Pair.TS()) })

	s.Push(item(res(1, 1, 50, 40))) // result ts 50
	s.Push(item(res(2, 2, 30, 20))) // result ts 30
	s.Push(item(res(3, 3, 90, 10))) // result ts 90
	if len(out) != 0 {
		t.Fatal("released before punctuation")
	}
	s.Push(punct(60))
	if len(out) != 2 || out[0] != 30 || out[1] != 50 {
		t.Fatalf("released %v, want [30 50] sorted", out)
	}
	if s.Buffered() != 1 {
		t.Fatalf("buffered = %d, want 1 (ts 90 waits)", s.Buffered())
	}
	s.Flush()
	if len(out) != 3 || out[2] != 90 {
		t.Fatalf("after flush: %v", out)
	}
	if !s.Monotonic() {
		t.Fatal("output not monotonic")
	}
	if s.Released() != 3 {
		t.Fatalf("Released = %d", s.Released())
	}
}

func TestSorterStalePunctuationIgnored(t *testing.T) {
	var out []int64
	s := NewSorter(func(r core.Result[int, int]) { out = append(out, r.Pair.TS()) })
	s.Push(punct(100))
	s.Push(item(res(1, 1, 150, 0)))
	s.Push(punct(90)) // stale: must not release anything
	if len(out) != 0 {
		t.Fatal("stale punctuation released results")
	}
	s.Push(punct(200))
	if len(out) != 1 {
		t.Fatal("fresh punctuation failed to release")
	}
}

func TestSorterMaxBufferTracksHighWater(t *testing.T) {
	s := NewSorter(func(core.Result[int, int]) {})
	for i := 0; i < 10; i++ {
		s.Push(item(res(uint64(i), uint64(i), int64(i*10), 0)))
	}
	s.Push(punct(1000))
	s.Push(item(res(99, 99, 2000, 0)))
	if s.MaxBuffer() != 10 {
		t.Fatalf("MaxBuffer = %d, want 10", s.MaxBuffer())
	}
}

// TestSorterPropertyOrderedOutput: for any interleaving of results and
// increasing punctuations where results respect the punctuation
// contract (a result's ts is >= the latest punctuation at emission
// time), the sorter's output is globally ts-ordered and complete after
// Flush.
func TestSorterPropertyOrderedOutput(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		rnd := workload.NewRand(seed)
		var out []int64
		s := NewSorter(func(r core.Result[int, int]) { out = append(out, r.Pair.TS()) })
		lastPunct := int64(0)
		results := 0
		for i := 0; i < int(n)+5; i++ {
			if rnd.Intn(4) == 0 {
				lastPunct += int64(rnd.Intn(50))
				s.Push(punct(lastPunct))
			} else {
				ts := lastPunct + int64(rnd.Intn(100))
				s.Push(item(res(uint64(i), uint64(i), ts, 0)))
				results++
			}
		}
		s.Flush()
		if len(out) != results {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1] {
				return false
			}
		}
		return s.Monotonic()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
