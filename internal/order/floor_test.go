package order

import (
	"math"
	"testing"
)

func TestPunctFloorAdvancesOnMin(t *testing.T) {
	f := NewPunctFloor(3)
	if f.Floor() != math.MinInt64 {
		t.Fatalf("initial floor = %d", f.Floor())
	}
	if _, adv := f.Advance(0, 10); adv {
		t.Fatal("floor advanced before every source punctuated")
	}
	if _, adv := f.Advance(1, 20); adv {
		t.Fatal("floor advanced before every source punctuated")
	}
	floor, adv := f.Advance(2, 5)
	if !adv || floor != 5 {
		t.Fatalf("floor = %d advanced=%v, want 5 true", floor, adv)
	}
	// Raising a non-minimum source does not advance the floor.
	if floor, adv := f.Advance(0, 30); adv {
		t.Fatalf("floor advanced to %d on non-min source", floor)
	}
	// Raising the minimum source advances to the new minimum.
	floor, adv = f.Advance(2, 25)
	if !adv || floor != 20 {
		t.Fatalf("floor = %d advanced=%v, want 20 true", floor, adv)
	}
}

func TestPunctFloorMonotonicAndIdempotent(t *testing.T) {
	f := NewPunctFloor(2)
	f.Advance(0, 100)
	f.Advance(1, 50)
	// Stale and repeated punctuations never move the floor backwards.
	for _, tp := range []int64{50, 40, 10} {
		if floor, adv := f.Advance(1, tp); adv || floor != 50 {
			t.Fatalf("Advance(1, %d) -> floor %d advanced=%v", tp, floor, adv)
		}
	}
	prev := f.Floor()
	for i := int64(0); i < 100; i++ {
		floor, _ := f.Advance(int(i)%2, 60+i)
		if floor < prev {
			t.Fatalf("floor regressed: %d after %d", floor, prev)
		}
		prev = floor
	}
}
