package order

import "math"

// PunctFloor merges the punctuation streams of several independent
// pipelines into one global guarantee. Each source pipeline promises
// that, within its own output stream, no result after a punctuation
// ⌈tp⌉ carries a timestamp below tp. Consuming every source in its own
// stream order, the strongest claim that holds across all of them is
// the minimum of the per-source high-water marks — once every source
// has punctuated at least once, any result consumed after that point
// from source i has timestamp >= hwm[i] >= floor.
//
// PunctFloor is the punctuation-merge hook used by the sharded engine
// layer; it is not safe for concurrent use (callers serialize).
type PunctFloor struct {
	hwm   []int64
	floor int64
}

// NewPunctFloor tracks n sources, all starting at the minimum
// timestamp (no guarantee until every source punctuates).
func NewPunctFloor(n int) *PunctFloor {
	f := &PunctFloor{hwm: make([]int64, n), floor: math.MinInt64}
	for i := range f.hwm {
		f.hwm[i] = math.MinInt64
	}
	return f
}

// Advance records punctuation tp from source i and returns the global
// floor plus whether it advanced (in which case the caller may emit a
// merged punctuation carrying the floor).
func (f *PunctFloor) Advance(i int, tp int64) (floor int64, advanced bool) {
	if tp > f.hwm[i] {
		f.hwm[i] = tp
		min := f.hwm[0]
		for _, h := range f.hwm[1:] {
			if h < min {
				min = h
			}
		}
		if min > f.floor {
			f.floor = min
			return f.floor, true
		}
	}
	return f.floor, false
}

// Floor returns the current global floor (math.MinInt64 until every
// source has punctuated).
func (f *PunctFloor) Floor() int64 { return f.floor }
