// Package order implements the downstream sorting operator of §6.2 and
// §7.5: it consumes the punctuated result stream and produces a stream
// in strict result-timestamp order.
//
// Results are buffered until a punctuation ⌈tp⌉ arrives; every buffered
// result with timestamp < tp can then be released in sorted order,
// because the punctuation guarantees no later result will carry a
// smaller timestamp. The maximum buffer occupancy is tracked — this is
// exactly the quantity Figure 21 reports (thousands of tuples with
// punctuations, versus the ~30 million an unpunctuated handshake join
// output would require for the paper's benchmark configuration).
package order

import (
	"sort"
	"sync/atomic"

	"handshakejoin/internal/collect"
	"handshakejoin/internal/core"
)

// Sorter reorders a punctuated result stream into timestamp order.
type Sorter[L, R any] struct {
	out func(core.Result[L, R])

	buf []core.Result[L, R]
	// maxBuffer is written only by the Push/Flush caller (plain load +
	// atomic store) so MaxBuffer is race-safe from snapshot readers.
	maxBuffer atomic.Int64
	released  uint64
	lastPunct int64
	lastTS    int64
	monotonic bool
}

// NewSorter returns a Sorter that emits ordered results to out.
func NewSorter[L, R any](out func(core.Result[L, R])) *Sorter[L, R] {
	return &Sorter[L, R]{out: out, lastPunct: -1, lastTS: -1, monotonic: true}
}

// Push consumes one item of the punctuated stream.
func (s *Sorter[L, R]) Push(it collect.Item[L, R]) {
	if !it.Punct {
		s.buf = append(s.buf, it.Result)
		if n := int64(len(s.buf)); n > s.maxBuffer.Load() {
			s.maxBuffer.Store(n)
		}
		return
	}
	s.release(it.TS)
}

// release emits all buffered results with timestamp < tp in sorted
// order (ties broken by input sequence numbers for determinism).
func (s *Sorter[L, R]) release(tp int64) {
	if tp <= s.lastPunct {
		return
	}
	s.lastPunct = tp
	ready := s.buf[:0:0]
	keep := s.buf[:0]
	for _, r := range s.buf {
		if r.Pair.TS() < tp {
			ready = append(ready, r)
		} else {
			keep = append(keep, r)
		}
	}
	s.buf = keep
	sort.Slice(ready, func(i, j int) bool {
		ti, tj := ready[i].Pair.TS(), ready[j].Pair.TS()
		if ti != tj {
			return ti < tj
		}
		if ready[i].Pair.R.Seq != ready[j].Pair.R.Seq {
			return ready[i].Pair.R.Seq < ready[j].Pair.R.Seq
		}
		return ready[i].Pair.S.Seq < ready[j].Pair.S.Seq
	})
	for _, r := range ready {
		if ts := r.Pair.TS(); ts < s.lastTS {
			s.monotonic = false
		} else {
			s.lastTS = ts
		}
		s.released++
		s.out(r)
	}
}

// Flush releases everything still buffered (end of stream), in sorted
// order.
func (s *Sorter[L, R]) Flush() {
	s.release(int64(1)<<62 - 1)
}

// MaxBuffer returns the high-water mark of buffered results — the
// series Figure 21 plots. Safe to call concurrently with Push.
func (s *Sorter[L, R]) MaxBuffer() int { return int(s.maxBuffer.Load()) }

// Released returns the number of results emitted.
func (s *Sorter[L, R]) Released() uint64 { return s.released }

// Monotonic reports whether every released result so far was in
// non-decreasing timestamp order — the correctness criterion for the
// punctuation mechanism.
func (s *Sorter[L, R]) Monotonic() bool { return s.monotonic }

// Buffered returns the number of results currently held.
func (s *Sorter[L, R]) Buffered() int { return len(s.buf) }

// State is the serializable sorter state: the held results (in arrival
// order, as buffered) and the release cursors. A checkpoint snapshots
// it after the collectors have drained every result queue, so the held
// set is exactly the results with timestamp >= the last punctuation.
type State[L, R any] struct {
	Buf       []core.Result[L, R]
	Released  uint64
	LastPunct int64
	LastTS    int64
	Monotonic bool
}

// Snapshot copies the sorter's state. The caller must serialize it
// against Push/Flush (the engines hold their sort mutex).
func (s *Sorter[L, R]) Snapshot() State[L, R] {
	return State[L, R]{
		Buf:       append([]core.Result[L, R](nil), s.buf...),
		Released:  s.released,
		LastPunct: s.lastPunct,
		LastTS:    s.lastTS,
		Monotonic: s.monotonic,
	}
}

// Restore replaces the sorter's state with a snapshot. Same
// serialization contract as Snapshot.
func (s *Sorter[L, R]) Restore(st State[L, R]) {
	s.buf = append(s.buf[:0], st.Buf...)
	s.released = st.Released
	s.lastPunct = st.LastPunct
	s.lastTS = st.LastTS
	s.monotonic = st.Monotonic
	if n := int64(len(s.buf)); n > s.maxBuffer.Load() {
		s.maxBuffer.Store(n)
	}
}
