package core

import (
	"fmt"

	"handshakejoin/internal/probe"
	"handshakejoin/internal/store"
	"handshakejoin/internal/stream"
)

// IndexKind selects a static access path for node-local window scans;
// Config.Probe replaces it with per-key-group runtime dispatch.
type IndexKind uint8

const (
	// IndexNone scans node-local windows linearly (the paper's default
	// configuration).
	IndexNone IndexKind = iota
	// IndexHash probes a node-local hash table on the equi-join key
	// (§7.6, Table 2). Config.KeyR/KeyS must be set; the predicate is
	// still applied to candidates as a residual.
	IndexHash
	// IndexBTree probes a node-local B-tree with the band
	// [key−Band, key+Band] (the index-acceleration direction named as
	// future work in §9, applied to the benchmark's band predicate).
	IndexBTree
)

// Config parameterizes a low-latency handshake join pipeline. The zero
// value is not usable; use Validate to check a configuration.
type Config[L, R any] struct {
	// Nodes is the number of processing nodes (CPU cores in the paper).
	Nodes int
	// Pred is the join predicate p(r, s).
	Pred stream.Predicate[L, R]

	// Index selects a static node-local access path, fixed for the
	// pipeline's lifetime. Ignored when Probe is set.
	Index IndexKind
	// Probe, when set, makes the access path a per-arrival decision:
	// each probe consults the shared strategy table for the tuple's
	// key-group and dispatches to scan, hash, or B-tree accordingly,
	// with the node-local indexes built lazily on first demand and
	// dropped when a group's strategy stops using them. Requires KeyR
	// and KeyS; Index is ignored.
	Probe *probe.Table
	// KeyR and KeyS extract the join key for IndexHash / IndexBTree /
	// Probe dispatch.
	KeyR stream.KeyFunc[L]
	// KeyS extracts the S-side key.
	KeyS stream.KeyFunc[R]
	// Band is the half-width of the key range probed by IndexBTree.
	// (Adaptive dispatch takes its band from the strategy table's
	// predicate class instead.)
	Band uint64

	// DisableAck turns off the acknowledgement mechanism of §4.2.2
	// (no IWS buffer, no ack messages). Used only by ablation
	// experiments: without it, tuples that cross "in flight" miss each
	// other.
	DisableAck bool
	// DisableExpEnd turns off expedition-end messages (§4.2.3).
	// Used only by ablation experiments: stored copies then stay
	// flagged forever and S arrivals can never match them.
	DisableExpEnd bool

	// Trace, when set, receives the window stores' rare-path events
	// ("ring_spill", "ring_reanchor", "window_compact") with their
	// kind-specific integer arguments. It is called from the node's
	// worker on cold paths only; nil disables tracing.
	Trace func(kind string, a, b int64)
}

// Validate reports whether the configuration is self-consistent.
func (c *Config[L, R]) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("core: Nodes must be >= 1, got %d", c.Nodes)
	}
	if c.Pred == nil {
		return fmt.Errorf("core: Pred must be set")
	}
	if c.Index != IndexNone && (c.KeyR == nil || c.KeyS == nil) {
		return fmt.Errorf("core: Index %d requires KeyR and KeyS", c.Index)
	}
	if c.Probe != nil && (c.KeyR == nil || c.KeyS == nil) {
		return fmt.Errorf("core: Probe dispatch requires KeyR and KeyS")
	}
	return nil
}

// HomeOf returns the home node assigned to the tuple with the given
// sequence number. Home nodes are assigned round-robin "to ensure even
// load balancing" (§4.3); making the assignment a pure function of the
// sequence number lets expiry and expedition-end handlers route
// deterministically.
func (c *Config[L, R]) HomeOf(seq uint64) int { return int(seq % uint64(c.Nodes)) }

// Stats are per-node counters, aggregated by the runtimes.
type Stats struct {
	RArrivals   uint64 // R tuples processed at this node
	SArrivals   uint64 // S tuples processed at this node
	Comparisons uint64 // window entries inspected during scans/probes
	Results     uint64 // join pairs emitted by this node
	// PendingExpiries counts expiry messages that arrived at the home
	// node before the tuple itself. This only happens when the window
	// is shorter than the pipeline transit time — a pathological
	// configuration; a non-zero value flags it.
	PendingExpiries uint64
	// StoreOnly counts store-only tuples stored at this node (state
	// migration hand-offs into this pipeline).
	StoreOnly uint64
	MaxWR     int // high-water mark of the node-local R window
	MaxWS     int // high-water mark of the node-local S window
	MaxIWS    int // high-water mark of the in-flight S buffer
	LiveWR    int // current size of the node-local R window (gauge)
	LiveWS    int // current size of the node-local S window (gauge)

	// Strategy-mix counters: window probes by the access path actually
	// taken. In static Index modes exactly one moves; under adaptive
	// dispatch their sum equals the probe count.
	ProbeScan  uint64
	ProbeHash  uint64
	ProbeBTree uint64

	// Ring-store rare-path counters, aggregated from the node's two
	// windows. A pathological workload (huge sequence gaps, heavy
	// deletion churn) exercises these silently-degrading paths; the
	// counters make a spill storm visible from a live snapshot.
	StoreSpills      uint64 // whole-ring spills of the slot directory
	StoreReanchors   uint64 // below-base directory re-anchors
	StoreCompactions uint64 // entry-slab compactions
	StoreParks       uint64 // entries parked in the overflow map
	StoreOverflow    int    // current overflow-map entries (gauge)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.RArrivals += other.RArrivals
	s.SArrivals += other.SArrivals
	s.Comparisons += other.Comparisons
	s.Results += other.Results
	s.PendingExpiries += other.PendingExpiries
	s.StoreOnly += other.StoreOnly
	if other.MaxWR > s.MaxWR {
		s.MaxWR = other.MaxWR
	}
	if other.MaxWS > s.MaxWS {
		s.MaxWS = other.MaxWS
	}
	if other.MaxIWS > s.MaxIWS {
		s.MaxIWS = other.MaxIWS
	}
	s.LiveWR += other.LiveWR
	s.LiveWS += other.LiveWS
	s.ProbeScan += other.ProbeScan
	s.ProbeHash += other.ProbeHash
	s.ProbeBTree += other.ProbeBTree
	s.StoreSpills += other.StoreSpills
	s.StoreReanchors += other.StoreReanchors
	s.StoreCompactions += other.StoreCompactions
	s.StoreParks += other.StoreParks
	s.StoreOverflow += other.StoreOverflow
}

// Node is one processing core of the LLHJ pipeline, holding the
// node-local windows WRk and WSk, the in-flight buffer IWSk, and the
// pending-expiry sets. A Node is driven by exactly one runtime thread;
// it is not safe for concurrent use.
type Node[L, R any] struct {
	cfg *Config[L, R]
	k   int // position in the pipeline, 0-based

	wR  *store.Window[L]  // node-local window of R (with expedition flags)
	wS  *store.Window[R]  // node-local window of S
	iwS []stream.Tuple[R] // forwarded-but-unacknowledged S tuples (tiny)

	pendExpR map[uint64]struct{} // expiries that raced ahead of their tuple
	pendExpS map[uint64]struct{}

	// Reusable probe contexts: the match callbacks passed to the window
	// probes are bound once at construction and read the current
	// arrival from these fields, so a probe allocates nothing — a
	// per-arrival closure over (r, em, results) would escape on every
	// tuple.
	curR   stream.Tuple[L]
	curS   stream.Tuple[R]
	curEm  Emitter[L, R]
	curRes int
	emitS  func(stream.Tuple[R]) // probe callback for R arrivals scanning wS
	emitR  func(stream.Tuple[L]) // probe callback for S arrivals scanning wR

	// Adaptive-dispatch bookkeeping (Probe mode): arrivals counts
	// tuples processed, the *At stamps record the arrival count at each
	// index's last use, and an index idle for dropIndexAfter arrivals is
	// dropped — its maintenance is pure waste once every group probing
	// this window has moved off it.
	arrivals                  uint64
	wrHashAt, wrTreeAt        uint64
	wsHashAt, wsTreeAt        uint64
	mixScan, mixHash, mixTree uint64 // per-message scratch, published in batch
	obsTick                   uint64 // probe counter driving the 1-in-4 Observe sample

	stats StatsCell
}

// dropIndexAfter is how many arrivals an adaptively built index may sit
// unused before the node drops it (rebuilding is O(live), so the
// threshold is set high enough that strategy hysteresis cannot thrash
// a build/drop cycle).
const dropIndexAfter = 4096

// NewNode returns node k of an n-node pipeline configured by cfg.
func NewNode[L, R any](cfg *Config[L, R], k int) *Node[L, R] {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if k < 0 || k >= cfg.Nodes {
		panic(fmt.Sprintf("core: node index %d out of range [0,%d)", k, cfg.Nodes))
	}
	// Node k only ever stores seqs with HomeOf(seq) == k, so its windows
	// declare the pipeline width as their ring stride: one directory slot
	// per owned seq instead of one per global seq.
	optsR := []store.Option[L]{store.WithStride[L](cfg.Nodes)}
	optsS := []store.Option[R]{store.WithStride[R](cfg.Nodes)}
	if cfg.Trace != nil {
		optsR = append(optsR, store.WithTrace[L](cfg.Trace))
		optsS = append(optsS, store.WithTrace[R](cfg.Trace))
	}
	if cfg.Probe != nil {
		// Adaptive dispatch: start every window in scan mode with the
		// key declared, and let the per-group strategies build indexes
		// lazily on first demand.
		optsR = append(optsR, store.WithKeyFunc(cfg.KeyR))
		optsS = append(optsS, store.WithKeyFunc(cfg.KeyS))
	} else {
		switch cfg.Index {
		case IndexHash:
			optsR = append(optsR, store.WithHashIndex(cfg.KeyR))
			optsS = append(optsS, store.WithHashIndex(cfg.KeyS))
		case IndexBTree:
			optsR = append(optsR, store.WithBTreeIndex(cfg.KeyR))
			optsS = append(optsS, store.WithBTreeIndex(cfg.KeyS))
		}
	}
	n := &Node[L, R]{
		cfg:      cfg,
		k:        k,
		wR:       store.NewWindow(optsR...),
		wS:       store.NewWindow(optsS...),
		pendExpR: make(map[uint64]struct{}),
		pendExpS: make(map[uint64]struct{}),
	}
	n.emitS = func(s stream.Tuple[R]) {
		if n.cfg.Pred(n.curR.Payload, s.Payload) {
			n.curRes++
			n.curEm.EmitResult(stream.Pair[L, R]{R: n.curR, S: s})
		}
	}
	n.emitR = func(r stream.Tuple[L]) {
		if n.cfg.Pred(r.Payload, n.curS.Payload) {
			n.curRes++
			n.curEm.EmitResult(stream.Pair[L, R]{R: r, S: n.curS})
		}
	}
	return n
}

// Stats returns a snapshot of the node's counters. It is safe to call
// from any goroutine while the node is running: the counters are
// single-writer atomics, so the snapshot is exact at read time (skewed
// by at most the batch in flight).
func (n *Node[L, R]) Stats() Stats {
	s := n.stats.Snapshot()
	rr, sr := n.wR.Rare(), n.wS.Rare()
	s.StoreSpills = rr.Spills.Load() + sr.Spills.Load()
	s.StoreReanchors = rr.Reanchors.Load() + sr.Reanchors.Load()
	s.StoreCompactions = rr.Compactions.Load() + sr.Compactions.Load()
	s.StoreParks = rr.Parks.Load() + sr.Parks.Load()
	s.StoreOverflow = int(rr.Overflow.Load() + sr.Overflow.Load())
	return s
}

// WindowSizes returns the current sizes of the node-local windows.
func (n *Node[L, R]) WindowSizes() (wr, ws int) { return n.wR.Len(), n.wS.Len() }

func (n *Node[L, R]) leftmost() bool  { return n.k == 0 }
func (n *Node[L, R]) rightmost() bool { return n.k == n.cfg.Nodes-1 }

// HandleLeft processes one message received from the left neighbour
// (or, at node 0, from the driver): R arrivals, S acknowledgements and
// S expiries (Figure 13).
func (n *Node[L, R]) HandleLeft(m Msg[L, R], em Emitter[L, R]) {
	switch m.Kind {
	case KindArrival:
		n.handleArrivalR(m, em)
	case KindAck:
		n.handleAckS(m)
	case KindExpiry:
		n.handleExpiryS(m, em)
	default:
		panic(fmt.Sprintf("core: node %d: unexpected %v from the left", n.k, m.Kind))
	}
}

// HandleRight processes one message received from the right neighbour
// (or, at node n−1, from the driver): S arrivals, R expedition-end
// messages and R expiries (Figure 14).
func (n *Node[L, R]) HandleRight(m Msg[L, R], em Emitter[L, R]) {
	switch m.Kind {
	case KindArrival:
		n.handleArrivalS(m, em)
	case KindExpEnd:
		n.handleExpEndR(m, em)
	case KindExpiry:
		n.handleExpiryR(m, em)
	default:
		panic(fmt.Sprintf("core: node %d: unexpected %v from the right", n.k, m.Kind))
	}
}

// handleArrivalR implements the arrival branch of Figure 13: tag home
// nodes at the entry node, expedite (forward before scanning), scan
// WSk and IWSk, store at the home node, and at the pipeline end update
// the high-water mark and emit the expedition-end message.
//
// Store-only arrivals (state migration) skip the scan and store
// settled — their past joins were emitted on the pipeline they came
// from, and with no probing copy in flight the expedition flag would
// protect against a double match that cannot happen. Probe-only
// arrivals skip the store and everything that exists to manage stored
// copies. Neither advances the high-water mark: they are not stream
// progress.
func (n *Node[L, R]) handleArrivalR(m Msg[L, R], em Emitter[L, R]) {
	rs := m.R
	mode := m.Mode
	if n.leftmost() && mode != ArriveProbeOnly {
		for i := range rs {
			rs[i].Home = n.cfg.HomeOf(rs[i].Seq)
		}
	}
	// Expedition: forward the batch immediately, before any local work
	// (Figure 13 forwards on line 7, before the scan on line 8).
	if !n.rightmost() {
		em.EmitRight(m)
	}
	// Counter updates accumulate in locals and publish once per
	// message: even a fence-light atomic store per tuple is measurable
	// at the admission-bound throughput ceiling, one per batch is not.
	var expEnds []uint64
	var comparisons, results, storeOnly uint64
	stored := false
	src, pooled := em.(SeqBufSource[L, R])
	for i := range rs {
		r := rs[i]
		if mode != ArriveStoreOnly {
			ins, res := n.scanForR(r, em)
			comparisons += uint64(ins)
			results += uint64(res)
		}
		if mode != ArriveProbeOnly && r.Home == n.k {
			if _, pending := n.pendExpR[r.Seq]; pending {
				// The expiry overtook the tuple (pathological window);
				// honour it by never storing the copy.
				delete(n.pendExpR, r.Seq)
			} else {
				if mode == ArriveStoreOnly {
					storeOnly++
					n.wR.InsertSettled(r)
				} else {
					n.wR.Insert(r)
				}
				stored = true
			}
		}
		if n.rightmost() && mode == ArriveFull {
			em.StreamEnd(stream.R, r.TS)
			if !n.cfg.DisableExpEnd {
				if r.Home == n.k {
					// Self-delivery of the expedition-end message
					// (Figure 13 line 12) resolves locally.
					n.wR.ClearExpedition(r.Seq)
				} else {
					if pooled && expEnds == nil {
						expEnds = src.TakeSeqBuf()
					}
					expEnds = append(expEnds, r.Seq)
				}
			}
		}
	}
	n.arrivals += uint64(len(rs))
	Inc(&n.stats.RArrivals, uint64(len(rs)))
	if comparisons > 0 {
		Inc(&n.stats.Comparisons, comparisons)
	}
	if results > 0 {
		Inc(&n.stats.Results, results)
	}
	if storeOnly > 0 {
		Inc(&n.stats.StoreOnly, storeOnly)
	}
	n.publishMix()
	n.maybeDropIndexes()
	if stored {
		// The window only grew inside the loop, so the final length is
		// the message's high-water mark.
		wl := int64(n.wR.Len())
		n.stats.LiveWR.Store(wl)
		Raise(&n.stats.MaxWR, wl)
	}
	if len(expEnds) > 0 {
		fm := Msg[L, R]{Kind: KindExpEnd, Side: stream.R, Seqs: expEnds}
		if pooled {
			fm.Free = src.NewSeqFree()
		}
		em.EmitLeft(fm)
	}
}

// scanForR finds matches for r in the node-local S window and the
// in-flight buffer (Figure 13 line 8). It returns the entry and result
// counts for the caller to publish, accumulated per message. The probe
// goes through the reusable per-node context (n.curR/n.emitS) — no
// per-arrival closure — and under adaptive dispatch the access path is
// whatever the strategy table currently says for r's key-group.
func (n *Node[L, R]) scanForR(r stream.Tuple[L], em Emitter[L, R]) (int, int) {
	n.curR, n.curEm, n.curRes = r, em, 0
	inspected := 0
	if t := n.cfg.Probe; t != nil {
		key := n.cfg.KeyR(r.Payload)
		g := t.GroupOf(key)
		switch t.StrategyOf(g) {
		case probe.UseHash:
			if !n.wS.HasHash() {
				n.wS.EnableHash()
			}
			n.wsHashAt = n.arrivals
			inspected += n.wS.Probe(key, false, n.emitS)
			n.mixHash++
		case probe.UseBTree:
			if !n.wS.HasBTree() {
				n.wS.EnableBTree()
			}
			n.wsTreeAt = n.arrivals
			lo, hi := t.RangeFromR(key)
			inspected += n.wS.RangeProbe(lo, hi, false, n.emitS)
			n.mixTree++
		default:
			inspected += n.wS.ScanAll(n.emitS)
			n.mixScan++
		}
		// Sampled observation: the table's counters live on shared cache
		// lines, and feeding every probe from every node turns them into
		// a line ping-pong between workers that costs more than the
		// probes themselves. 1-in-4 keeps the sample unbiased and the
		// decision cadence at 4x DecideEvery probes per group.
		if n.obsTick&3 == 0 {
			t.Observe(g, n.wS.Len(), inspected, n.curRes)
		}
		n.obsTick++
	} else {
		switch n.cfg.Index {
		case IndexHash:
			inspected += n.wS.Probe(n.cfg.KeyR(r.Payload), false, n.emitS)
			n.mixHash++
		case IndexBTree:
			key := n.cfg.KeyR(r.Payload)
			lo := uint64(0)
			if key > n.cfg.Band {
				lo = key - n.cfg.Band
			}
			inspected += n.wS.RangeProbe(lo, key+n.cfg.Band, false, n.emitS)
			n.mixTree++
		default:
			inspected += n.wS.ScanAll(n.emitS)
			n.mixScan++
		}
	}
	for _, s := range n.iwS {
		inspected++
		n.emitS(s)
	}
	em.Cost(inspected)
	return inspected, n.curRes
}

// handleArrivalS implements the arrival branch of Figure 14: tag homes
// at the entry node, forward immediately, scan only non-expedited WRk
// entries (avoiding stored/stored double matches), keep fresh tuples in
// IWSk until acknowledged (avoiding stored/fresh misses), store at the
// home node, and acknowledge the batch to the sender.
func (n *Node[L, R]) handleArrivalS(m Msg[L, R], em Emitter[L, R]) {
	ss := m.S
	mode := m.Mode
	if n.rightmost() && mode != ArriveProbeOnly {
		for i := range ss {
			ss[i].Home = n.cfg.HomeOf(ss[i].Seq)
		}
	}
	if !n.leftmost() {
		em.EmitLeft(m)
	}
	// Per-message counter accumulation, as in handleArrivalR.
	var comparisons, results, storeOnly uint64
	stored, retained := false, false
	for i := range ss {
		s := ss[i]
		if mode != ArriveStoreOnly {
			ins, res := n.scanForS(s, em)
			comparisons += uint64(ins)
			results += uint64(res)
		}
		if mode == ArriveFull && !n.cfg.DisableAck && n.k > s.Home {
			// s is fresh here: keep it visible until the left
			// neighbour confirms receipt (Figure 14 lines 9–10).
			// Store-only tuples need no IWS retention: they probe
			// nothing and, under the quiescent-injection contract, no
			// in-flight arrival can be crossing them.
			n.iwS = append(n.iwS, s)
			retained = true
		}
		if mode != ArriveProbeOnly && s.Home == n.k {
			if _, pending := n.pendExpS[s.Seq]; pending {
				delete(n.pendExpS, s.Seq)
			} else {
				if mode == ArriveStoreOnly {
					storeOnly++
				}
				n.wS.InsertSettled(s)
				stored = true
			}
		}
		if n.leftmost() && mode == ArriveFull {
			em.StreamEnd(stream.S, s.TS)
		}
	}
	n.arrivals += uint64(len(ss))
	Inc(&n.stats.SArrivals, uint64(len(ss)))
	if comparisons > 0 {
		Inc(&n.stats.Comparisons, comparisons)
	}
	if results > 0 {
		Inc(&n.stats.Results, results)
	}
	if storeOnly > 0 {
		Inc(&n.stats.StoreOnly, storeOnly)
	}
	n.publishMix()
	n.maybeDropIndexes()
	if retained {
		// iwS only grows inside the loop; acks shrink it in a separate
		// message, so the final length is this message's high-water mark.
		Raise(&n.stats.MaxIWS, int64(len(n.iwS)))
	}
	if stored {
		wl := int64(n.wS.Len())
		n.stats.LiveWS.Store(wl)
		Raise(&n.stats.MaxWS, wl)
	}
	if mode == ArriveFull && !n.cfg.DisableAck && !n.rightmost() && len(ss) > 0 {
		// Acknowledge the whole batch to the sender (Figure 14 line 13).
		// The rightmost node received the batch from the driver, which
		// needs no acknowledgement.
		var seqs []uint64
		am := Msg[L, R]{Kind: KindAck, Side: stream.S}
		if src, ok := em.(SeqBufSource[L, R]); ok {
			seqs = src.TakeSeqBuf()
			am.Free = src.NewSeqFree()
		} else {
			seqs = make([]uint64, 0, len(ss))
		}
		for i := range ss {
			seqs = append(seqs, ss[i].Seq)
		}
		am.Seqs = seqs
		em.EmitRight(am)
	}
}

// scanForS finds matches for s among the *non-expedited* entries of the
// node-local R window (Figure 14 line 8). It returns the entry and
// result counts for the caller to publish, accumulated per message.
// Mirrors scanForR: reusable probe context, adaptive dispatch when
// Config.Probe is set.
func (n *Node[L, R]) scanForS(s stream.Tuple[R], em Emitter[L, R]) (int, int) {
	n.curS, n.curEm, n.curRes = s, em, 0
	inspected := 0
	if t := n.cfg.Probe; t != nil {
		key := n.cfg.KeyS(s.Payload)
		g := t.GroupOf(key)
		switch t.StrategyOf(g) {
		case probe.UseHash:
			if !n.wR.HasHash() {
				n.wR.EnableHash()
			}
			n.wrHashAt = n.arrivals
			inspected += n.wR.Probe(key, true, n.emitR)
			n.mixHash++
		case probe.UseBTree:
			if !n.wR.HasBTree() {
				n.wR.EnableBTree()
			}
			n.wrTreeAt = n.arrivals
			lo, hi := t.RangeFromS(key)
			inspected += n.wR.RangeProbe(lo, hi, true, n.emitR)
			n.mixTree++
		default:
			inspected += n.wR.ScanSettled(n.emitR)
			n.mixScan++
		}
		// Sampled 1-in-4, as in scanForR.
		if n.obsTick&3 == 0 {
			t.Observe(g, n.wR.Len(), inspected, n.curRes)
		}
		n.obsTick++
	} else {
		switch n.cfg.Index {
		case IndexHash:
			inspected += n.wR.Probe(n.cfg.KeyS(s.Payload), true, n.emitR)
			n.mixHash++
		case IndexBTree:
			key := n.cfg.KeyS(s.Payload)
			lo := uint64(0)
			if key > n.cfg.Band {
				lo = key - n.cfg.Band
			}
			inspected += n.wR.RangeProbe(lo, key+n.cfg.Band, true, n.emitR)
			n.mixTree++
		default:
			inspected += n.wR.ScanSettled(n.emitR)
			n.mixScan++
		}
	}
	em.Cost(inspected)
	return inspected, n.curRes
}

// publishMix flushes the per-message strategy-mix scratch counters into
// the stats cell — one atomic store per path used, per message.
func (n *Node[L, R]) publishMix() {
	if n.mixScan > 0 {
		Inc(&n.stats.ProbeScan, n.mixScan)
		n.mixScan = 0
	}
	if n.mixHash > 0 {
		Inc(&n.stats.ProbeHash, n.mixHash)
		n.mixHash = 0
	}
	if n.mixTree > 0 {
		Inc(&n.stats.ProbeBTree, n.mixTree)
		n.mixTree = 0
	}
}

// maybeDropIndexes drops adaptively built indexes that have sat unused
// for dropIndexAfter arrivals: once every group probing a window has
// moved off a path, its per-insert maintenance is pure waste. Static
// Index modes never drop (the configuration promised the index).
func (n *Node[L, R]) maybeDropIndexes() {
	if n.cfg.Probe == nil {
		return
	}
	if n.wS.HasHash() && n.arrivals-n.wsHashAt > dropIndexAfter {
		n.wS.DisableHash()
	}
	if n.wS.HasBTree() && n.arrivals-n.wsTreeAt > dropIndexAfter {
		n.wS.DisableBTree()
	}
	if n.wR.HasHash() && n.arrivals-n.wrHashAt > dropIndexAfter {
		n.wR.DisableHash()
	}
	if n.wR.HasBTree() && n.arrivals-n.wrTreeAt > dropIndexAfter {
		n.wR.DisableBTree()
	}
}

// handleAckS removes acknowledged tuples from the in-flight buffer
// (Figure 13 lines 13–14).
func (n *Node[L, R]) handleAckS(m Msg[L, R]) {
	for _, seq := range m.Seqs {
		for i := range n.iwS {
			if n.iwS[i].Seq == seq {
				n.iwS = append(n.iwS[:i], n.iwS[i+1:]...)
				break
			}
		}
	}
}

// handleExpEndR clears expedition flags at each tuple's home node
// (Figure 14 lines 14–19). Deterministic home assignment lets every
// node decide locally whether to consume or forward each entry.
func (n *Node[L, R]) handleExpEndR(m Msg[L, R], em Emitter[L, R]) {
	// Seqs homed further left are re-batched into a fresh message per
	// hop (the incoming buffer is the sender's; the runtime releases it
	// when this handler returns). A leftmost node would emit the
	// remainder into the pipeline exit, so it skips collecting one.
	var forward []uint64
	src, pooled := em.(SeqBufSource[L, R])
	canFwd := !n.leftmost()
	for _, seq := range m.Seqs {
		if n.cfg.HomeOf(seq) == n.k {
			// Consume even if the copy is gone (already expired).
			n.wR.ClearExpedition(seq)
		} else if canFwd {
			if pooled && forward == nil {
				forward = src.TakeSeqBuf()
			}
			forward = append(forward, seq)
		}
	}
	if len(forward) > 0 {
		fm := Msg[L, R]{Kind: KindExpEnd, Side: stream.R, Seqs: forward}
		if pooled {
			fm.Free = src.NewSeqFree()
		}
		em.EmitLeft(fm)
	}
}

// handleExpiryR removes expired R tuples from their home node
// (Figure 14 lines 20–25, with deterministic routing).
func (n *Node[L, R]) handleExpiryR(m Msg[L, R], em Emitter[L, R]) {
	var forward []uint64
	src, pooled := em.(SeqBufSource[L, R])
	canFwd := !n.leftmost()
	var pending uint64
	for _, seq := range m.Seqs {
		if n.cfg.HomeOf(seq) == n.k {
			if _, ok := n.wR.Remove(seq); !ok {
				n.pendExpR[seq] = struct{}{}
				pending++
			}
		} else if canFwd {
			if pooled && forward == nil {
				forward = src.TakeSeqBuf()
			}
			forward = append(forward, seq)
		}
	}
	if pending > 0 {
		Inc(&n.stats.PendingExpiries, pending)
	}
	n.stats.LiveWR.Store(int64(n.wR.Len()))
	if len(forward) > 0 {
		fm := Msg[L, R]{Kind: KindExpiry, Side: stream.R, Seqs: forward}
		if pooled {
			fm.Free = src.NewSeqFree()
		}
		em.EmitLeft(fm)
	}
}

// handleExpiryS removes expired S tuples from their home node
// (Figure 13 lines 15–20, with deterministic routing).
func (n *Node[L, R]) handleExpiryS(m Msg[L, R], em Emitter[L, R]) {
	var forward []uint64
	src, pooled := em.(SeqBufSource[L, R])
	canFwd := !n.rightmost()
	var pending uint64
	for _, seq := range m.Seqs {
		if n.cfg.HomeOf(seq) == n.k {
			if _, ok := n.wS.Remove(seq); !ok {
				n.pendExpS[seq] = struct{}{}
				pending++
			}
		} else if canFwd {
			if pooled && forward == nil {
				forward = src.TakeSeqBuf()
			}
			forward = append(forward, seq)
		}
	}
	if pending > 0 {
		Inc(&n.stats.PendingExpiries, pending)
	}
	n.stats.LiveWS.Store(int64(n.wS.Len()))
	if len(forward) > 0 {
		fm := Msg[L, R]{Kind: KindExpiry, Side: stream.S, Seqs: forward}
		if pooled {
			fm.Free = src.NewSeqFree()
		}
		em.EmitRight(fm)
	}
}

// CountMatching reports how many live window tuples on each side match
// the given payload predicates, without modifying any state. Call only
// on a quiescent pipeline (migration drivers count before extracting,
// so an over-budget move can be refused without touching anything).
func (n *Node[L, R]) CountMatching(matchR func(L) bool, matchS func(R) bool) (nr, ns int) {
	n.wR.ScanAll(func(t stream.Tuple[L]) {
		if matchR(t.Payload) {
			nr++
		}
	})
	n.wS.ScanAll(func(t stream.Tuple[R]) {
		if matchS(t.Payload) {
			ns++
		}
	})
	return nr, ns
}

// ExtractMatching removes and returns every live window tuple whose
// payload matches the given predicate — the node-side half of a state
// migration. Call only on a quiescent pipeline: all expedition flags
// are then settled and the in-flight buffer is empty, so the returned
// tuples are exactly the group's joinable state at this node, and every
// pair among them has already been emitted. The extracted tuples keep
// their sequence numbers and home assignment (homes are a pure function
// of the sequence number, identical across equal-length pipelines), so
// they can re-enter another pipeline as store-only arrivals.
func (n *Node[L, R]) ExtractMatching(matchR func(L) bool, matchS func(R) bool) (rs []stream.Tuple[L], ss []stream.Tuple[R]) {
	var rSeqs, sSeqs []uint64
	n.wR.ScanAll(func(t stream.Tuple[L]) {
		if matchR(t.Payload) {
			rSeqs = append(rSeqs, t.Seq)
		}
	})
	n.wS.ScanAll(func(t stream.Tuple[R]) {
		if matchS(t.Payload) {
			sSeqs = append(sSeqs, t.Seq)
		}
	})
	for _, seq := range rSeqs {
		if t, ok := n.wR.Remove(seq); ok {
			rs = append(rs, t)
		}
	}
	for _, seq := range sSeqs {
		if t, ok := n.wS.Remove(seq); ok {
			ss = append(ss, t)
		}
	}
	n.syncLiveGauges()
	return rs, ss
}

// syncLiveGauges republishes the live window-size gauges after a
// quiescent extraction (which bypasses the arrival/expiry paths that
// normally keep them fresh).
func (n *Node[L, R]) syncLiveGauges() {
	n.stats.LiveWR.Store(int64(n.wR.Len()))
	n.stats.LiveWS.Store(int64(n.wS.Len()))
}

// PeekOldestMatching returns up to max of the node's oldest live
// matching window tuples per side, plus the per-side totals, without
// modifying any state — the read half of a slice cursor over
// ExtractMatching. Windows scan in arrival order, so the first max
// matches are the oldest; the scan still visits every live entry (the
// totals tell the driver how much group state remains), but the
// collected — and later sorted — candidates stay bounded by the slice
// size. Call only on a quiescent pipeline; incremental migration
// peeks all nodes, merges a bounded oldest-first subset across the
// pipeline, and removes it with ExtractSeqs.
func (n *Node[L, R]) PeekOldestMatching(matchR func(L) bool, matchS func(R) bool, max int) (rs []stream.Tuple[L], ss []stream.Tuple[R], nr, ns int) {
	n.wR.ScanAll(func(t stream.Tuple[L]) {
		if matchR(t.Payload) {
			if nr < max {
				rs = append(rs, t)
			}
			nr++
		}
	})
	n.wS.ScanAll(func(t stream.Tuple[R]) {
		if matchS(t.Payload) {
			if ns < max {
				ss = append(ss, t)
			}
			ns++
		}
	})
	return rs, ss, nr, ns
}

// ExtractSeqs removes and returns the live window tuples with the
// given sequence numbers — the write half of a slice cursor. Sequence
// numbers stored on other nodes (or already expired) are ignored, so a
// slice driver may offer the same set to every node of the pipeline.
// The quiescence contract of ExtractMatching applies.
func (n *Node[L, R]) ExtractSeqs(rSeqs, sSeqs map[uint64]struct{}) (rs []stream.Tuple[L], ss []stream.Tuple[R]) {
	for seq := range rSeqs {
		if t, ok := n.wR.Remove(seq); ok {
			rs = append(rs, t)
		}
	}
	for seq := range sSeqs {
		if t, ok := n.wS.Remove(seq); ok {
			ss = append(ss, t)
		}
	}
	n.syncLiveGauges()
	return rs, ss
}

// IWSLen returns the current size of the in-flight S buffer; it must be
// zero whenever the pipeline is quiescent (every forwarded tuple has
// been acknowledged).
func (n *Node[L, R]) IWSLen() int { return len(n.iwS) }

// PendingExpiryLen returns how many expiries are parked waiting for
// their tuple (non-zero only in pathological window configurations).
func (n *Node[L, R]) PendingExpiryLen() int { return len(n.pendExpR) + len(n.pendExpS) }
