// Package core implements the paper's primary contribution: the
// low-latency handshake join (LLHJ) per-node protocol of §4 (Figures
// 12–14), including tuple expedition, home-node assignment, the
// fresh/stored case handling of Table 1, the one-sided acknowledgement
// buffer IWS, expedition-end messages, externally driven expiry
// (§4.2.4), and the high-water marks that feed punctuation generation
// (§6.1).
//
// The node logic is a pure state machine: it consumes messages and emits
// messages, results and accounting through an Emitter. Two runtimes
// execute it — a live runtime (one goroutine per node, FIFO links) and a
// deterministic discrete-event simulator — without any change to the
// protocol code. See package runtime for both.
package core

import (
	"sync/atomic"

	"handshakejoin/internal/stream"
)

// Kind enumerates the message types that travel between neighbouring
// pipeline nodes. All kinds share each directed link's single FIFO
// channel; the protocol's correctness depends on that strict ordering
// (§4.2.3: "the above mechanism takes advantage of the strict FIFO
// ordering in the system").
type Kind uint8

const (
	// KindArrival carries a batch of newly arrived tuples. R arrivals
	// travel left-to-right, S arrivals right-to-left.
	KindArrival Kind = iota
	// KindAck acknowledges receipt of forwarded S tuples; it travels
	// left-to-right, opposite to the S flow (§4.2.2). The
	// acknowledgement mechanism runs on one side only.
	KindAck
	// KindExpEnd signals that an R tuple has completed its expedition;
	// it travels right-to-left and clears the expedition flag at the
	// tuple's home node (§4.2.3, Figure 10).
	KindExpEnd
	// KindExpiry removes tuples from the sliding window. R expiries
	// enter at the right end, S expiries at the left end (§4.2.4).
	KindExpiry
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindArrival:
		return "arrival"
	case KindAck:
		return "ack"
	case KindExpEnd:
		return "expedition-end"
	case KindExpiry:
		return "expiry"
	default:
		return "unknown"
	}
}

// ArrivalMode selects how a KindArrival batch interacts with the
// node-local windows. It extends the paper's fresh/stored handling
// (Table 1) with the two half-protocols that state migration needs:
// an arrival that only stores, and an arrival that only probes.
type ArrivalMode uint8

const (
	// ArriveFull is the normal protocol of Figures 13/14: probe the
	// opposite windows, store at the home node, advance the stream
	// high-water mark at the pipeline end.
	ArriveFull ArrivalMode = iota
	// ArriveStoreOnly enters the window at the tuple's home node and
	// participates in all future probes, but performs no probe of its
	// own and emits no result on insertion — its past joins were
	// already emitted wherever it lived before (state migration hands
	// live window tuples between pipelines this way). Store-only
	// copies are stored settled (no expedition flag, no
	// expedition-end round trip, no IWS retention, no ack) and do not
	// advance the stream high-water marks: they are relocated state,
	// not stream progress. The caller must inject store-only batches
	// into a pipeline that holds no in-flight arrivals able to join
	// them (the migration driver quiesces first); a settled stored
	// copy is then found by every future opposite-side arrival, which
	// traverses the whole pipeline.
	ArriveStoreOnly
	// ArriveProbeOnly probes the opposite windows and emits matches
	// but never enters a window: no store, no expedition-end, no ack,
	// no high-water-mark advance. Under the same quiescent-injection
	// contract as ArriveStoreOnly, a probe-only arrival sees exactly
	// the live window contents. Its results enter the ordinary result
	// stream, so a probe-only tuple must carry a timestamp at or above
	// the pipeline's current punctuation promise.
	ArriveProbeOnly
)

// String implements fmt.Stringer.
func (m ArrivalMode) String() string {
	switch m {
	case ArriveFull:
		return "full"
	case ArriveStoreOnly:
		return "store-only"
	case ArriveProbeOnly:
		return "probe-only"
	default:
		return "unknown"
	}
}

// Msg is one message on a neighbour link. Arrival messages carry a batch
// of tuples of exactly one side (R or S, never mixed); the other kinds
// reference tuples by sequence number.
//
// Arrival batches are tagged with home nodes by the pipeline entry node
// and are immutable afterwards; downstream nodes share the same backing
// slice.
type Msg[L, R any] struct {
	Kind Kind
	Side stream.Side
	// Mode selects the arrival flavor for KindArrival; the zero value
	// is the normal full protocol.
	Mode ArrivalMode
	// R holds the batch for KindArrival with Side == stream.R.
	R []stream.Tuple[L]
	// S holds the batch for KindArrival with Side == stream.S.
	S []stream.Tuple[R]
	// Seqs identifies the subject tuples of KindAck, KindExpEnd and
	// KindExpiry messages.
	Seqs []uint64
	// Free, when non-nil on a KindArrival message, is the recycling
	// token through which the runtime returns the batch's backing slice
	// to the driver that allocated it. nil messages are simply garbage
	// collected.
	Free *Free[L, R]
}

// Free tracks how many node handlers an in-flight arrival message
// still has ahead of it. The runtime decrements Refs after each node's
// handler returns and calls Put with the message when the count
// reaches zero — the first instant no node can still be reading the
// batch slice. The hook must be this late: nodes forward an arrival to
// their neighbour *before* scanning it (expedition), so when the exit
// node finishes, earlier nodes may still be mid-scan on the same
// backing array, and a pipeline-exit hook alone would recycle a slice
// that is still being read.
//
// Drivers arm Refs with the number of nodes that will handle the
// message — the pipeline length for LLHJ arrivals, which every node
// forwards unmodified. Node logic that re-batches instead of
// forwarding (the original handshake join) must not arm tokens: the
// count would never reach zero and the slice would fall back to the
// garbage collector, which is safe but pointless.
type Free[L, R any] struct {
	// Refs is the number of handlers that have not yet finished with
	// the message.
	Refs atomic.Int32
	// Put receives the fully handled message; implementations
	// typically return m.R / m.S to a pool. It runs on whichever node
	// goroutine handled the message last. The message is passed by
	// value on purpose: handing the runtime's local copy out by
	// pointer would make every dequeued message escape to the heap —
	// one allocation per message per node, the very cost this token
	// exists to remove.
	Put func(m Msg[L, R])
}

// Len returns the number of tuples or references the message carries.
func (m *Msg[L, R]) Len() int {
	if m.Kind == KindArrival {
		if m.Side == stream.R {
			return len(m.R)
		}
		return len(m.S)
	}
	return len(m.Seqs)
}

// Emitter receives everything a node produces while handling one
// message. Implementations decide what "emit" means: the live runtime
// enqueues into neighbour FIFOs immediately (minimizing latency), the
// simulator schedules delivery events on the virtual clock.
type Emitter[L, R any] interface {
	// EmitLeft sends m to the left neighbour (or, from node 0, to the
	// left pipeline exit, where S tuples are discarded).
	EmitLeft(m Msg[L, R])
	// EmitRight sends m to the right neighbour (or, from node n−1, to
	// the right pipeline exit, where R tuples are discarded).
	EmitRight(m Msg[L, R])
	// EmitResult reports one join match.
	EmitResult(p stream.Pair[L, R])
	// StreamEnd reports that a tuple of the given side has reached its
	// pipeline end; ts is its timestamp. The runtime maintains the
	// per-stream high-water marks tmax,R / tmax,S from these calls
	// (§6.1.1).
	StreamEnd(side stream.Side, ts int64)
	// Cost accounts protocol work: the number of window entries
	// inspected while handling the current message. The simulator's
	// cost model turns this into virtual time.
	Cost(entries int)
}

// SeqBufSource is optionally implemented by emitters whose runtime
// pools the seq-slice messages nodes originate themselves: batch acks,
// expedition-end batches, and the per-node forward remainders of expiry
// and expedition-end messages. A node that needs such a slice asks the
// emitter for a pooled buffer and attaches a one-handler recycling
// token (each hop re-batches, so exactly one neighbour reads the
// message before the runtime releases it). Emitters that do not
// implement the interface — the simulator, test doubles — simply leave
// nodes on the allocate-and-let-GC-collect path.
type SeqBufSource[L, R any] interface {
	// TakeSeqBuf returns an empty slice with free capacity for the node
	// to fill and emit.
	TakeSeqBuf() []uint64
	// PutSeqBuf returns a taken buffer that ended up not being emitted.
	PutSeqBuf(b []uint64)
	// NewSeqFree returns a recycling token armed for one handler whose
	// Put returns the message's Seqs buffer (and the token) to the pool.
	NewSeqFree() *Free[L, R]
}

// Result couples a join pair with the time at which it was emitted;
// runtimes produce Results by stamping Emitter.EmitResult calls.
type Result[L, R any] struct {
	Pair stream.Pair[L, R]
	// At is the emission time: wall nanoseconds in live runs, virtual
	// nanoseconds in simulated runs.
	At int64
}

// Latency returns the result latency as defined in §3: emission time
// minus the arrival time of the later input tuple.
func (r Result[L, R]) Latency() int64 {
	later := r.Pair.R.Wall
	if r.Pair.S.Wall > later {
		later = r.Pair.S.Wall
	}
	return r.At - later
}
