package core
