package core

import "handshakejoin/internal/stream"

// NodeLogic is the contract between a pipeline node's protocol state
// machine and the runtime executing it. Both the live goroutine runtime
// and the discrete-event simulator drive implementations of this
// interface; the LLHJ node in this package and the original
// handshake-join node in internal/hsj both implement it.
//
// A runtime guarantees that all calls into one NodeLogic value are
// serialized (each node is single-threaded, as in the paper's
// one-thread-per-core event loop of Figure 12) and that messages
// emitted on one link are delivered in emission order (strict FIFO).
type NodeLogic[L, R any] interface {
	// HandleLeft processes one message from the left input channel.
	HandleLeft(m Msg[L, R], em Emitter[L, R])
	// HandleRight processes one message from the right input channel.
	HandleRight(m Msg[L, R], em Emitter[L, R])
	// Stats returns a snapshot of the node's counters.
	Stats() Stats
}

// Builder constructs the node logic for position k of an n-node
// pipeline; runtimes use it to instantiate pipelines generically.
type Builder[L, R any] func(k int) NodeLogic[L, R]

// StateExtractor is the optional NodeLogic extension that live state
// migration requires: counting and removing a key-group's window
// tuples under a quiescent pipeline. The LLHJ node implements it; the
// original handshake join does not (its windows live in the pipeline
// segments themselves), so migration drivers must probe for it.
type StateExtractor[L, R any] interface {
	// CountMatching counts live window tuples matching the payload
	// predicates without modifying state.
	CountMatching(matchR func(L) bool, matchS func(R) bool) (nr, ns int)
	// ExtractMatching removes and returns the matching live window
	// tuples of both sides.
	ExtractMatching(matchR func(L) bool, matchS func(R) bool) ([]stream.Tuple[L], []stream.Tuple[R])
}

// SliceExtractor is the incremental-migration extension of
// StateExtractor: the two halves of a slice cursor over
// ExtractMatching. A slice driver peeks every node's oldest matching
// tuples without modifying anything, picks a bounded, oldest-first
// subset across the whole pipeline (home nodes are round-robin, so
// each node holds every n-th tuple of a group and the cut cannot be
// made per-node), and then removes exactly that subset by sequence
// number. The same quiescence contract as StateExtractor applies to
// both calls.
type SliceExtractor[L, R any] interface {
	StateExtractor[L, R]
	// PeekOldestMatching returns up to max of the node's oldest live
	// matching window tuples per side (arrival order) without
	// removing them, plus the total number of matching tuples per
	// side. Each node's oldest max per side together form a superset
	// of the pipeline's oldest max overall, so the driver's merge
	// stays bounded by the slice size, not the group size.
	PeekOldestMatching(matchR func(L) bool, matchS func(R) bool, max int) (rs []stream.Tuple[L], ss []stream.Tuple[R], nr, ns int)
	// ExtractSeqs removes and returns the live window tuples with the
	// given sequence numbers; sequence numbers homed on other nodes
	// are ignored.
	ExtractSeqs(rSeqs, sSeqs map[uint64]struct{}) ([]stream.Tuple[L], []stream.Tuple[R])
}
