package core

import "handshakejoin/internal/stream"

// NodeLogic is the contract between a pipeline node's protocol state
// machine and the runtime executing it. Both the live goroutine runtime
// and the discrete-event simulator drive implementations of this
// interface; the LLHJ node in this package and the original
// handshake-join node in internal/hsj both implement it.
//
// A runtime guarantees that all calls into one NodeLogic value are
// serialized (each node is single-threaded, as in the paper's
// one-thread-per-core event loop of Figure 12) and that messages
// emitted on one link are delivered in emission order (strict FIFO).
type NodeLogic[L, R any] interface {
	// HandleLeft processes one message from the left input channel.
	HandleLeft(m Msg[L, R], em Emitter[L, R])
	// HandleRight processes one message from the right input channel.
	HandleRight(m Msg[L, R], em Emitter[L, R])
	// Stats returns a snapshot of the node's counters.
	Stats() Stats
}

// Builder constructs the node logic for position k of an n-node
// pipeline; runtimes use it to instantiate pipelines generically.
type Builder[L, R any] func(k int) NodeLogic[L, R]

// StateExtractor is the optional NodeLogic extension that live state
// migration requires: counting and removing a key-group's window
// tuples under a quiescent pipeline. The LLHJ node implements it; the
// original handshake join does not (its windows live in the pipeline
// segments themselves), so migration drivers must probe for it.
type StateExtractor[L, R any] interface {
	// CountMatching counts live window tuples matching the payload
	// predicates without modifying state.
	CountMatching(matchR func(L) bool, matchS func(R) bool) (nr, ns int)
	// ExtractMatching removes and returns the matching live window
	// tuples of both sides.
	ExtractMatching(matchR func(L) bool, matchS func(R) bool) ([]stream.Tuple[L], []stream.Tuple[R])
}
