package core

import (
	"testing"

	"handshakejoin/internal/kang"
	"handshakejoin/internal/stream"
)

// capture is a scripted Emitter recording everything a node emits.
type capture struct {
	left, right []Msg[int, int]
	results     []stream.Pair[int, int]
	endR, endS  []int64
	cost        int
}

func (c *capture) EmitLeft(m Msg[int, int])  { c.left = append(c.left, m) }
func (c *capture) EmitRight(m Msg[int, int]) { c.right = append(c.right, m) }
func (c *capture) EmitResult(p stream.Pair[int, int]) {
	c.results = append(c.results, p)
}
func (c *capture) StreamEnd(side stream.Side, ts int64) {
	if side == stream.R {
		c.endR = append(c.endR, ts)
	} else {
		c.endS = append(c.endS, ts)
	}
}
func (c *capture) Cost(n int) { c.cost += n }

func eqPred(r, s int) bool { return r == s }

func cfg3() *Config[int, int] { return &Config[int, int]{Nodes: 3, Pred: eqPred} }

func rArr(tuples ...stream.Tuple[int]) Msg[int, int] {
	return Msg[int, int]{Kind: KindArrival, Side: stream.R, R: tuples}
}

func sArr(tuples ...stream.Tuple[int]) Msg[int, int] {
	return Msg[int, int]{Kind: KindArrival, Side: stream.S, S: tuples}
}

func tpl(seq uint64, v int, home int) stream.Tuple[int] {
	return stream.Tuple[int]{Seq: seq, TS: int64(seq) * 100, Home: home, Payload: v}
}

func TestEntryNodeTagsHomesRoundRobin(t *testing.T) {
	c := cfg3()
	n0 := NewNode(c, 0)
	var em capture
	batch := rArr(tpl(0, 1, stream.NoHome), tpl(1, 2, stream.NoHome), tpl(2, 3, stream.NoHome), tpl(3, 4, stream.NoHome))
	n0.HandleLeft(batch, &em)
	if len(em.right) != 1 {
		t.Fatalf("forwarded %d messages, want the batch", len(em.right))
	}
	for i, r := range em.right[0].R {
		if r.Home != i%3 {
			t.Fatalf("tuple %d tagged home %d, want %d", i, r.Home, i%3)
		}
	}
	// Node 0 stored only its own home tuples (seq 0 and 3).
	if wr, _ := n0.WindowSizes(); wr != 2 {
		t.Fatalf("node 0 stored %d R tuples, want 2", wr)
	}
}

func TestArrivalForwardedBeforeScanOrder(t *testing.T) {
	// The emitter sees the forward before any result: expedition means
	// forwarding happens first (Figure 13 line 7 before line 8).
	c := cfg3()
	n1 := NewNode(c, 1)
	var em capture
	// Preload an S copy at node 1 (home 1) so the R arrival matches.
	n1.HandleRight(sArr(tpl(1, 42, 1)), &em)
	em = capture{}
	n1.HandleLeft(rArr(tpl(0, 42, 0)), &em)
	if len(em.right) == 0 || em.right[0].Kind != KindArrival {
		t.Fatal("R batch not forwarded")
	}
	if len(em.results) != 1 {
		t.Fatalf("results = %d, want 1", len(em.results))
	}
}

func TestRightmostEmitsExpEndAndHWM(t *testing.T) {
	c := cfg3()
	n2 := NewNode(c, 2)
	var em capture
	// seq 0 homes at node 0: the rightmost node must emit an
	// expedition-end leftward. seq 2 homes here: resolved locally.
	n2.HandleLeft(rArr(tpl(0, 1, 0), tpl(2, 3, 2)), &em)
	if len(em.endR) != 2 {
		t.Fatalf("HWM updates = %d, want 2", len(em.endR))
	}
	var expEnds []Msg[int, int]
	for _, m := range em.left {
		if m.Kind == KindExpEnd {
			expEnds = append(expEnds, m)
		}
	}
	if len(expEnds) != 1 || len(expEnds[0].Seqs) != 1 || expEnds[0].Seqs[0] != 0 {
		t.Fatalf("expedition ends = %+v, want one for seq 0", expEnds)
	}
	// seq 2's copy must already be settled (self-delivered exp-end).
	if n2.wR.SettledLen() != 1 {
		t.Fatalf("settled = %d, want 1", n2.wR.SettledLen())
	}
}

func TestSettledScanAvoidsStoredStoredDoubleMatch(t *testing.T) {
	// An S arrival must not match an expedited (still travelling) R
	// copy — that pair will be evaluated when the R tuple passes the S
	// tuple's home (Table 1, stored/stored row).
	c := cfg3()
	n1 := NewNode(c, 1)
	var em capture
	n1.HandleLeft(rArr(tpl(1, 7, 1)), &em) // stored at home, expedited
	em = capture{}
	n1.HandleRight(sArr(tpl(0, 7, 2)), &em)
	if len(em.results) != 0 {
		t.Fatal("matched an expedited copy: stored/stored double match")
	}
	// After the expedition-end arrives, later S arrivals do match.
	n1.HandleRight(Msg[int, int]{Kind: KindExpEnd, Side: stream.R, Seqs: []uint64{1}}, &em)
	em = capture{}
	n1.HandleRight(sArr(tpl(3, 7, 2)), &em)
	if len(em.results) != 1 {
		t.Fatalf("settled copy not matched: %d results", len(em.results))
	}
}

func TestFreshSInIWSMatchedByR(t *testing.T) {
	// A fresh S tuple (home not yet reached) stays visible in IWS until
	// acknowledged, so a crossing R arrival finds it (avoids the
	// stored/fresh miss).
	c := cfg3()
	n1 := NewNode(c, 1)
	var em capture
	n1.HandleRight(sArr(tpl(5, 9, 0)), &em) // home 0 < 1: fresh here
	if n1.IWSLen() != 1 {
		t.Fatalf("IWS = %d, want 1", n1.IWSLen())
	}
	// The batch was forwarded left and acknowledged right.
	ackSeen := false
	for _, m := range em.right {
		if m.Kind == KindAck {
			ackSeen = true
		}
	}
	if !ackSeen {
		t.Fatal("no acknowledgement emitted")
	}
	em = capture{}
	n1.HandleLeft(rArr(tpl(0, 9, 0)), &em)
	if len(em.results) != 1 {
		t.Fatalf("crossing R missed the in-flight S tuple: %d results", len(em.results))
	}
	// Ack from the left neighbour clears IWS; afterwards no re-match.
	n1.HandleLeft(Msg[int, int]{Kind: KindAck, Side: stream.S, Seqs: []uint64{5}}, &em)
	if n1.IWSLen() != 0 {
		t.Fatal("ack did not clear IWS")
	}
	em = capture{}
	n1.HandleLeft(rArr(tpl(3, 9, 0)), &em)
	if len(em.results) != 0 {
		t.Fatal("acked in-flight tuple still matched (would duplicate at its home)")
	}
}

func TestExpiryRoutedToHome(t *testing.T) {
	c := cfg3()
	n1 := NewNode(c, 1)
	var em capture
	n1.HandleLeft(rArr(tpl(1, 7, 1)), &em)
	// Expiry for seq 2 (home 2) passes through leftward; expiry for
	// seq 1 is consumed here.
	em = capture{}
	n1.HandleRight(Msg[int, int]{Kind: KindExpiry, Side: stream.R, Seqs: []uint64{1, 2}}, &em)
	if wr, _ := n1.WindowSizes(); wr != 0 {
		t.Fatalf("home copy not removed: wR=%d", wr)
	}
	if len(em.left) != 1 || em.left[0].Kind != KindExpiry || len(em.left[0].Seqs) != 1 || em.left[0].Seqs[0] != 2 {
		t.Fatalf("forwarded expiries = %+v, want only seq 2", em.left)
	}
}

func TestExpiryBeforeArrivalParksPending(t *testing.T) {
	c := cfg3()
	n1 := NewNode(c, 1)
	var em capture
	n1.HandleRight(Msg[int, int]{Kind: KindExpiry, Side: stream.R, Seqs: []uint64{1}}, &em)
	if n1.Stats().PendingExpiries != 1 || n1.PendingExpiryLen() != 1 {
		t.Fatal("early expiry not parked")
	}
	// When the tuple finally arrives, it must not be stored.
	n1.HandleLeft(rArr(tpl(1, 7, 1)), &em)
	if wr, _ := n1.WindowSizes(); wr != 0 {
		t.Fatal("expired tuple was stored anyway")
	}
	if n1.PendingExpiryLen() != 0 {
		t.Fatal("pending entry not consumed")
	}
}

func TestSingleNodePipelineDegeneratesToKang(t *testing.T) {
	c := &Config[int, int]{Nodes: 1, Pred: eqPred}
	n := NewNode(c, 0)
	var em capture
	n.HandleLeft(rArr(stream.Tuple[int]{Seq: 0, TS: 0, Home: stream.NoHome, Payload: 4}), &em)
	n.HandleRight(sArr(stream.Tuple[int]{Seq: 0, TS: 10, Home: stream.NoHome, Payload: 4}), &em)
	if len(em.results) != 1 {
		t.Fatalf("results = %d, want 1", len(em.results))
	}
	if len(em.endR) != 1 || len(em.endS) != 1 {
		t.Fatal("single node must update both high-water marks")
	}
	// No messages can leave a single-node pipeline.
	if len(em.left) != 0 || len(em.right) != 0 {
		t.Fatalf("single node emitted messages: left=%d right=%d", len(em.left), len(em.right))
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (&Config[int, int]{Nodes: 0, Pred: eqPred}).Validate(); err == nil {
		t.Fatal("accepted 0 nodes")
	}
	if err := (&Config[int, int]{Nodes: 2}).Validate(); err == nil {
		t.Fatal("accepted nil predicate")
	}
	bad := &Config[int, int]{Nodes: 2, Pred: eqPred, Index: IndexHash}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted hash index without key functions")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{RArrivals: 1, Comparisons: 10, MaxWR: 5}
	b := Stats{RArrivals: 2, Comparisons: 20, MaxWR: 3, MaxIWS: 7}
	a.Add(b)
	if a.RArrivals != 3 || a.Comparisons != 30 || a.MaxWR != 5 || a.MaxIWS != 7 {
		t.Fatalf("Add result = %+v", a)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindArrival: "arrival", KindAck: "ack",
		KindExpEnd: "expedition-end", KindExpiry: "expiry", Kind(99): "unknown",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestResultLatency(t *testing.T) {
	r := Result[int, int]{
		Pair: stream.Pair[int, int]{
			R: stream.Tuple[int]{Wall: 100},
			S: stream.Tuple[int]{Wall: 300},
		},
		At: 450,
	}
	if r.Latency() != 150 {
		t.Fatalf("Latency = %d, want 150 (from the later tuple)", r.Latency())
	}
}

// relay3 drives a message through a 3-node pipeline by hand, relaying
// every emitted neighbour message in FIFO order, and returns one merged
// capture of everything the pipeline emitted.
func relay3(nodes [3]*Node[int, int], end int, m Msg[int, int]) *capture {
	total := &capture{}
	type hop struct {
		k   int
		dir int // 0: from the left (HandleLeft), 1: from the right
		m   Msg[int, int]
	}
	var queue []hop
	if end == 0 {
		queue = append(queue, hop{k: 0, dir: 0, m: m})
	} else {
		queue = append(queue, hop{k: 2, dir: 1, m: m})
	}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		var em capture
		if h.dir == 0 {
			nodes[h.k].HandleLeft(h.m, &em)
		} else {
			nodes[h.k].HandleRight(h.m, &em)
		}
		total.results = append(total.results, em.results...)
		total.endR = append(total.endR, em.endR...)
		total.endS = append(total.endS, em.endS...)
		for _, out := range em.right {
			if h.k < 2 {
				queue = append(queue, hop{k: h.k + 1, dir: 0, m: out})
			} else {
				total.right = append(total.right, out)
			}
		}
		for _, out := range em.left {
			if h.k > 0 {
				queue = append(queue, hop{k: h.k - 1, dir: 1, m: out})
			} else {
				total.left = append(total.left, out)
			}
		}
	}
	return total
}

func pipeline3(c *Config[int, int]) [3]*Node[int, int] {
	return [3]*Node[int, int]{NewNode(c, 0), NewNode(c, 1), NewNode(c, 2)}
}

func windowTotal(nodes [3]*Node[int, int]) (wr, ws int) {
	for _, n := range nodes {
		r, s := n.WindowSizes()
		wr += r
		ws += s
	}
	return wr, ws
}

func TestStoreOnlyMatchesKangAcrossHandOff(t *testing.T) {
	// Fill pipeline A with normal traffic, extract all of its window
	// state, hand it to a fresh pipeline B as store-only arrivals, and
	// keep pushing. A sequential Kang oracle that never migrated must
	// see exactly the same result multiset: the hand-off emits nothing
	// (those pairs already fired on A) and future arrivals on B find
	// the migrated state as if it had always lived there.
	c := cfg3()
	a := pipeline3(c)
	b := pipeline3(c)
	var oracleN int
	oracle := kang.New(eqPred, func(p stream.Pair[int, int]) { oracleN++ })

	gotN := 0
	pushR := func(nodes [3]*Node[int, int], seq uint64, v int) {
		em := relay3(nodes, 0, rArr(stream.Tuple[int]{Seq: seq, TS: int64(seq), Home: stream.NoHome, Payload: v}))
		gotN += len(em.results)
		oracle.ProcessR(stream.Tuple[int]{Seq: seq, TS: int64(seq), Payload: v})
	}
	pushS := func(nodes [3]*Node[int, int], seq uint64, v int) {
		em := relay3(nodes, 2, sArr(stream.Tuple[int]{Seq: seq, TS: int64(seq), Home: stream.NoHome, Payload: v}))
		gotN += len(em.results)
		oracle.ProcessS(stream.Tuple[int]{Seq: seq, TS: int64(seq), Payload: v})
	}

	for i := 0; i < 12; i++ {
		pushR(a, uint64(i), i%4)
		pushS(a, uint64(i), i%3)
	}
	phase1 := gotN
	if phase1 != oracleN {
		t.Fatalf("pre-migration results = %d, Kang oracle %d", phase1, oracleN)
	}

	// Hand off: extract everything from A, inject into B store-only.
	all := func(int) bool { return true }
	var rs []stream.Tuple[int]
	var ss []stream.Tuple[int]
	for _, n := range a {
		nr, nsTuples := n.ExtractMatching(all, all)
		rs = append(rs, nr...)
		ss = append(ss, nsTuples...)
	}
	if wr, ws := windowTotal(a); wr != 0 || ws != 0 {
		t.Fatalf("extraction left state behind: wR=%d wS=%d", wr, ws)
	}
	em := relay3(b, 0, Msg[int, int]{Kind: KindArrival, Side: stream.R, Mode: ArriveStoreOnly, R: rs})
	if len(em.results) != 0 {
		t.Fatalf("store-only R injection re-emitted %d prior results", len(em.results))
	}
	if len(em.endR) != 0 || len(em.endS) != 0 {
		t.Fatal("store-only R injection advanced a high-water mark")
	}
	em = relay3(b, 2, Msg[int, int]{Kind: KindArrival, Side: stream.S, Mode: ArriveStoreOnly, S: ss})
	if len(em.results) != 0 {
		t.Fatalf("store-only S injection re-emitted %d prior results", len(em.results))
	}
	if len(em.endR) != 0 || len(em.endS) != 0 {
		t.Fatal("store-only S injection advanced a high-water mark")
	}
	if wr, ws := windowTotal(b); wr != len(rs) || ws != len(ss) {
		t.Fatalf("B holds (%d, %d) tuples, want (%d, %d)", wr, ws, len(rs), len(ss))
	}
	// Store-only copies must be settled immediately: future S arrivals
	// probe settled entries only.
	for _, n := range b {
		if n.wR.Len() != n.wR.SettledLen() {
			t.Fatalf("node %d: store-only R copies not settled (%d live, %d settled)", n.k, n.wR.Len(), n.wR.SettledLen())
		}
	}

	for i := 12; i < 24; i++ {
		pushR(b, uint64(i), i%4)
		pushS(b, uint64(i), i%3)
	}
	if gotN != oracleN {
		t.Fatalf("post-migration results = %d, Kang oracle (no migration) = %d", gotN, oracleN)
	}
	if gotN == phase1 {
		t.Fatal("phase 2 produced no results; hand-off not exercised")
	}
	var stored uint64
	for _, n := range b {
		stored += n.Stats().StoreOnly
	}
	if stored != uint64(len(rs)+len(ss)) {
		t.Fatalf("Stats.StoreOnly = %d, want %d", stored, len(rs)+len(ss))
	}
}

func TestProbeOnlyMatchesKangWithoutEnteringWindow(t *testing.T) {
	// A probe-only arrival emits exactly the matches a Kang scan of the
	// current windows would, but is never stored: window sizes are
	// unchanged, no protocol side effects (exp-end, ack, HWM) are
	// produced, and later arrivals cannot match it.
	c := cfg3()
	nodes := pipeline3(c)
	for i := 0; i < 9; i++ {
		relay3(nodes, 0, rArr(stream.Tuple[int]{Seq: uint64(i), TS: int64(i), Home: stream.NoHome, Payload: i % 3}))
		relay3(nodes, 2, sArr(stream.Tuple[int]{Seq: uint64(i), TS: int64(i), Home: stream.NoHome, Payload: i % 3}))
	}
	wr0, ws0 := windowTotal(nodes)

	// Kang reference: matches of payload 1 against the S window (3 of
	// the 9 stored S tuples carry payload 1).
	em := relay3(nodes, 0, Msg[int, int]{Kind: KindArrival, Side: stream.R, Mode: ArriveProbeOnly,
		R: []stream.Tuple[int]{{Seq: 100, TS: 100, Home: stream.NoHome, Payload: 1}}})
	if len(em.results) != 3 {
		t.Fatalf("probe-only R emitted %d results, Kang scan finds 3", len(em.results))
	}
	if len(em.endR) != 0 || len(em.endS) != 0 {
		t.Fatal("probe-only advanced a high-water mark")
	}
	if wr, ws := windowTotal(nodes); wr != wr0 || ws != ws0 {
		t.Fatalf("probe-only R changed windows: (%d,%d) -> (%d,%d)", wr0, ws0, wr, ws)
	}

	em = relay3(nodes, 2, Msg[int, int]{Kind: KindArrival, Side: stream.S, Mode: ArriveProbeOnly,
		S: []stream.Tuple[int]{{Seq: 101, TS: 101, Home: stream.NoHome, Payload: 2}}})
	if len(em.results) != 3 {
		t.Fatalf("probe-only S emitted %d results, Kang scan finds 3", len(em.results))
	}
	if wr, ws := windowTotal(nodes); wr != wr0 || ws != ws0 {
		t.Fatalf("probe-only S changed windows: (%d,%d) -> (%d,%d)", wr0, ws0, wr, ws)
	}

	// A later matching arrival must not find the probe-only tuples.
	em = relay3(nodes, 2, sArr(stream.Tuple[int]{Seq: 102, TS: 102, Home: stream.NoHome, Payload: 1}))
	for _, p := range em.results {
		if p.R.Seq == 100 {
			t.Fatal("probe-only R tuple entered the window: matched by a later S arrival")
		}
	}
	em = relay3(nodes, 0, rArr(stream.Tuple[int]{Seq: 103, TS: 103, Home: stream.NoHome, Payload: 2}))
	for _, p := range em.results {
		if p.S.Seq == 101 {
			t.Fatal("probe-only S tuple entered the window: matched by a later R arrival")
		}
	}
}

func TestArrivalModeString(t *testing.T) {
	for m, want := range map[ArrivalMode]string{
		ArriveFull: "full", ArriveStoreOnly: "store-only",
		ArriveProbeOnly: "probe-only", ArrivalMode(9): "unknown",
	} {
		if m.String() != want {
			t.Errorf("ArrivalMode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestPeekOldestMatchingIsNonDestructiveAndBounded(t *testing.T) {
	c := cfg3()
	n0 := NewNode(c, 0)
	var em capture
	// Home tuples of node 0: R seqs 0 and 3, S seq 0.
	n0.HandleLeft(rArr(tpl(0, 7, 0), tpl(3, 7, 0), tpl(1, 8, 1)), &em)
	n0.HandleRight(sArr(tpl(0, 7, 0)), &em)
	match7 := func(v int) bool { return v == 7 }
	rs, ss, nr, ns := n0.PeekOldestMatching(match7, match7, 10)
	if len(rs) != 2 || len(ss) != 1 || nr != 2 || ns != 1 {
		t.Fatalf("peeked %d/%d R, %d/%d S, want 2/2 and 1/1", len(rs), nr, len(ss), ns)
	}
	wr, ws := n0.WindowSizes()
	if wr != 2 || ws != 1 {
		t.Fatalf("peek modified the windows: wr=%d ws=%d", wr, ws)
	}
	// A bounded peek keeps the oldest per side but still counts all.
	rs, ss, nr, ns = n0.PeekOldestMatching(match7, match7, 1)
	if len(rs) != 1 || rs[0].Seq != 0 || len(ss) != 1 || nr != 2 || ns != 1 {
		t.Fatalf("bounded peek = R%v (nr=%d) S%v (ns=%d), want oldest R seq 0 and full counts", rs, nr, ss, ns)
	}
	// A second peek sees the same state.
	if _, _, nr2, ns2 := n0.PeekOldestMatching(match7, match7, 10); nr2 != nr || ns2 != ns {
		t.Fatal("repeated peek diverged")
	}
}

func TestExtractSeqsRemovesOnlyOwnedSeqs(t *testing.T) {
	c := cfg3()
	n0 := NewNode(c, 0)
	var em capture
	n0.HandleLeft(rArr(tpl(0, 7, 0), tpl(3, 7, 0)), &em)
	n0.HandleRight(sArr(tpl(0, 7, 0)), &em)
	// Offer a superset: seq 1 homes elsewhere, seq 99 never existed.
	rSet := map[uint64]struct{}{0: {}, 1: {}, 99: {}}
	sSet := map[uint64]struct{}{0: {}}
	rs, ss := n0.ExtractSeqs(rSet, sSet)
	if len(rs) != 1 || rs[0].Seq != 0 {
		t.Fatalf("extracted R %+v, want exactly seq 0", rs)
	}
	if len(ss) != 1 || ss[0].Seq != 0 {
		t.Fatalf("extracted S %+v, want exactly seq 0", ss)
	}
	wr, ws := n0.WindowSizes()
	if wr != 1 || ws != 0 {
		t.Fatalf("windows after extract: wr=%d ws=%d, want 1 / 0", wr, ws)
	}
	// The remaining tuple is untouched and a repeat extract is a no-op.
	if rs, ss = n0.ExtractSeqs(rSet, sSet); len(rs) != 0 || len(ss) != 0 {
		t.Fatal("repeated extract found tuples again")
	}
	if rs, _, _, _ := n0.PeekOldestMatching(func(v int) bool { return v == 7 }, func(int) bool { return false }, 10); len(rs) != 1 || rs[0].Seq != 3 {
		t.Fatalf("survivor = %+v, want seq 3", rs)
	}
}
