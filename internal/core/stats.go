package core

import "sync/atomic"

// StatsCell is the live, race-safe form of Stats: the counters a node
// mutates on its hot path, held as atomics so any goroutine may read a
// consistent snapshot mid-run.
//
// Every cell has exactly one writer at a time — the runtime serializes
// all calls into one NodeLogic, and the quiescent extract/inject paths
// run only while the worker is parked — so writers publish with
// Inc/Raise (a plain load plus an atomic store) instead of atomic
// read-modify-write. On the admission-bound hot path that distinction
// is the whole overhead budget: an uncontended atomic add is a locked
// RMW (~5-10ns), while a store after a plain load costs about as much
// as the plain increment it replaces.
type StatsCell struct {
	RArrivals       atomic.Uint64
	SArrivals       atomic.Uint64
	Comparisons     atomic.Uint64
	Results         atomic.Uint64
	PendingExpiries atomic.Uint64
	StoreOnly       atomic.Uint64
	MaxWR           atomic.Int64
	MaxWS           atomic.Int64
	MaxIWS          atomic.Int64
	// LiveWR / LiveWS mirror the current node-local window sizes —
	// gauges the worker refreshes after every window mutation, so a
	// mid-run snapshot never has to touch the (goroutine-owned) stores.
	LiveWR atomic.Int64
	LiveWS atomic.Int64
	// ProbeScan / ProbeHash / ProbeBTree count window probes by the
	// access path actually taken — the strategy-mix counters. In static
	// Index modes exactly one of them moves; under adaptive dispatch
	// (Config.Probe) their sum equals the probe count, so a mid-run
	// scrape can check conservation.
	ProbeScan  atomic.Uint64
	ProbeHash  atomic.Uint64
	ProbeBTree atomic.Uint64
}

// Inc publishes c+n. Safe only for a cell's single writer.
func Inc(c *atomic.Uint64, n uint64) { c.Store(c.Load() + n) }

// Raise publishes v if it exceeds the current value. Safe only for a
// cell's single writer.
func Raise(c *atomic.Int64, v int64) {
	if v > c.Load() {
		c.Store(v)
	}
}

// Snapshot returns a consistent-enough point-in-time copy: each field
// is read atomically; cross-field skew is bounded by one in-flight
// batch.
func (c *StatsCell) Snapshot() Stats {
	return Stats{
		RArrivals:       c.RArrivals.Load(),
		SArrivals:       c.SArrivals.Load(),
		Comparisons:     c.Comparisons.Load(),
		Results:         c.Results.Load(),
		PendingExpiries: c.PendingExpiries.Load(),
		StoreOnly:       c.StoreOnly.Load(),
		MaxWR:           int(c.MaxWR.Load()),
		MaxWS:           int(c.MaxWS.Load()),
		MaxIWS:          int(c.MaxIWS.Load()),
		LiveWR:          int(c.LiveWR.Load()),
		LiveWS:          int(c.LiveWS.Load()),
		ProbeScan:       c.ProbeScan.Load(),
		ProbeHash:       c.ProbeHash.Load(),
		ProbeBTree:      c.ProbeBTree.Load(),
	}
}
