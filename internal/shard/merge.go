package shard

import (
	"sync"

	"handshakejoin/internal/collect"
	"handshakejoin/internal/order"
)

// Merge folds the punctuated output streams of N lanes into a single
// stream with a global punctuation guarantee. Results pass through
// immediately (the merge adds no buffering latency); punctuations are
// folded through an order.PunctFloor, so a merged punctuation ⌈tp⌉ is
// only emitted once every lane has promised tp — making the merged
// stream safe to feed into the same order.Sorter the single-pipeline
// engine uses for deterministic, timestamp-ordered output.
//
// FromShard may be called concurrently from the lanes' collector
// goroutines; a mutex serializes delivery, so the downstream out
// callback observes a single, consistent stream.
type Merge[L, R any] struct {
	mu       sync.Mutex
	out      func(collect.Item[L, R])
	floor    *order.PunctFloor
	results  uint64
	puncts   uint64
	perShard []uint64
}

// NewMerge returns a Merge over n lanes delivering to out.
func NewMerge[L, R any](n int, out func(collect.Item[L, R])) *Merge[L, R] {
	return &Merge[L, R]{
		out:      out,
		floor:    order.NewPunctFloor(n),
		perShard: make([]uint64, n),
	}
}

// FromShard consumes one item of lane i's output stream, in that
// lane's stream order.
func (m *Merge[L, R]) FromShard(i int, it collect.Item[L, R]) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !it.Punct {
		m.results++
		m.perShard[i]++
		m.out(it)
		return
	}
	if floor, advanced := m.floor.Advance(i, it.TS); advanced {
		m.puncts++
		m.out(collect.Item[L, R]{Punct: true, TS: floor})
	}
}

// Results returns the number of results merged so far.
func (m *Merge[L, R]) Results() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.results
}

// Punctuations returns the number of merged punctuations emitted.
func (m *Merge[L, R]) Punctuations() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.puncts
}

// Floor returns the current merged punctuation floor: the timestamp
// below which the merged output stream is complete. Before every lane
// has promised a punctuation it is math.MinInt64.
func (m *Merge[L, R]) Floor() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.floor.Floor()
}

// ShardResults returns a copy of the per-shard result counts — the
// load-balance view of the partitioner.
func (m *Merge[L, R]) ShardResults() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]uint64(nil), m.perShard...)
}
