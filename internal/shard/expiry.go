package shard

// ExpiryEntry schedules the removal of one tuple: the tuple leaves the
// window as soon as stream time reaches Due.
type ExpiryEntry struct {
	Seq uint64
	Due int64
}

// ExpiryQueue holds the pending expiries of one stream side of one
// pipeline. Duration-bound and count-bound expiries are kept in
// separate queues because each is non-decreasing in Due on its own
// (timestamps are monotonic per stream) but their interleaving is not;
// PopDue drains both.
//
// When a window combines a Duration and a Count bound, every tuple is
// scheduled twice — once per bound — and must still expire exactly
// once (a second expiry for the same sequence number would register at
// the pipeline as a pending expiry and pollute the stats). A queue
// constructed with dedupe tracks seen sequence numbers so whichever
// bound fires first wins and the later entry is dropped.
type ExpiryQueue struct {
	dur, cnt []ExpiryEntry
	seen     map[uint64]struct{}
}

// NewExpiryQueue returns an empty queue. Pass dedupe when both window
// bounds are active, so each tuple expires exactly once.
func NewExpiryQueue(dedupe bool) *ExpiryQueue {
	q := &ExpiryQueue{}
	if dedupe {
		q.seen = map[uint64]struct{}{}
	}
	return q
}

// PushDur schedules a duration-bound expiry. Calls must carry
// non-decreasing due times.
func (q *ExpiryQueue) PushDur(seq uint64, due int64) {
	q.dur = append(q.dur, ExpiryEntry{Seq: seq, Due: due})
}

// PushCnt schedules a count-bound expiry. Calls must carry
// non-decreasing due times.
func (q *ExpiryQueue) PushCnt(seq uint64, due int64) {
	q.cnt = append(q.cnt, ExpiryEntry{Seq: seq, Due: due})
}

// PopDue removes and returns the sequence numbers of all entries due
// at or before t, each at most once across the queue's lifetime.
//
// injectedBelow is the exclusive upper bound of sequence numbers whose
// arrival has already been injected into the pipeline: an expiry whose
// tuple is still sitting in a driver batch buffer stays queued, so an
// expiry message can never overtake its own tuple at the pipeline
// entry (the pending-expiry pathology). Entries within each queue
// carry non-decreasing sequence numbers as well as due times (both
// follow arrival order), so holding back the head holds back only
// tuples that are equally uninjected.
func (q *ExpiryQueue) PopDue(t int64, injectedBelow uint64) []uint64 {
	var seqs []uint64
	for len(q.dur) > 0 && q.dur[0].Due <= t && q.dur[0].Seq < injectedBelow {
		if q.take(q.dur[0].Seq) {
			seqs = append(seqs, q.dur[0].Seq)
		}
		q.dur = q.dur[1:]
	}
	for len(q.cnt) > 0 && q.cnt[0].Due <= t && q.cnt[0].Seq < injectedBelow {
		if q.take(q.cnt[0].Seq) {
			seqs = append(seqs, q.cnt[0].Seq)
		}
		q.cnt = q.cnt[1:]
	}
	return seqs
}

// take reports whether seq should be emitted. With dedupe on, the
// first of the two scheduled entries per tuple emits and the second is
// consumed silently (clearing the bookkeeping, since no third entry
// can exist).
func (q *ExpiryQueue) take(seq uint64) bool {
	if q.seen == nil {
		return true
	}
	if _, dup := q.seen[seq]; dup {
		delete(q.seen, seq)
		return false
	}
	q.seen[seq] = struct{}{}
	return true
}

// Len returns the number of queued entries (including entries that
// dedupe will drop).
func (q *ExpiryQueue) Len() int { return len(q.dur) + len(q.cnt) }
