package shard

// ExpiryEntry schedules the removal of one tuple: the tuple leaves the
// window as soon as stream time reaches Due.
type ExpiryEntry struct {
	Seq uint64
	Due int64
	// Settled marks an entry whose tuple is already inside the
	// pipeline's windows, so the injection gate of PopDue does not
	// apply. Entries absorbed from a state migration are settled: the
	// tuple was re-injected store-only and quiesced before its expiry
	// entries were absorbed, while the destination lane's own
	// injection high-water mark knows nothing about it.
	Settled bool
}

// ExpiryQueue holds the pending expiries of one stream side of one
// pipeline. Duration-bound and count-bound expiries are kept in
// separate queues because each is non-decreasing in Due on its own
// (timestamps are monotonic per stream) but their interleaving is not;
// PopDue drains both.
//
// When a window combines a Duration and a Count bound, every tuple is
// scheduled twice — once per bound — and must still expire exactly
// once (a second expiry for the same sequence number would register at
// the pipeline as a pending expiry and pollute the stats). A queue
// constructed with dedupe tracks seen sequence numbers so whichever
// bound fires first wins and the later entry is dropped.
type ExpiryQueue struct {
	dur, cnt []ExpiryEntry
	seen     map[uint64]struct{}
}

// NewExpiryQueue returns an empty queue. Pass dedupe when both window
// bounds are active, so each tuple expires exactly once.
func NewExpiryQueue(dedupe bool) *ExpiryQueue {
	q := &ExpiryQueue{}
	if dedupe {
		q.seen = map[uint64]struct{}{}
	}
	return q
}

// PushDur schedules a duration-bound expiry. Calls must carry
// non-decreasing due times. settled marks an entry whose tuple is
// already in the pipeline's windows (state migration), exempt from
// PopDue's injection gate.
func (q *ExpiryQueue) PushDur(seq uint64, due int64, settled bool) {
	q.dur = append(q.dur, ExpiryEntry{Seq: seq, Due: due, Settled: settled})
}

// PushCnt schedules a count-bound expiry. Calls must carry
// non-decreasing due times.
func (q *ExpiryQueue) PushCnt(seq uint64, due int64, settled bool) {
	q.cnt = append(q.cnt, ExpiryEntry{Seq: seq, Due: due, Settled: settled})
}

// PopDue removes and returns the sequence numbers of all entries due
// at or before t, each at most once across the queue's lifetime.
//
// injectedBelow is the exclusive upper bound of sequence numbers whose
// arrival has already been injected into the pipeline: an expiry whose
// tuple is still sitting in a driver batch buffer stays queued, so an
// expiry message can never overtake its own tuple at the pipeline
// entry (the pending-expiry pathology). Entries within each queue
// carry non-decreasing sequence numbers as well as due times (both
// follow arrival order), so holding back the head holds back only
// tuples that are equally uninjected.
func (q *ExpiryQueue) PopDue(t int64, injectedBelow uint64) []uint64 {
	var seqs []uint64
	for len(q.dur) > 0 && q.dur[0].Due <= t && (q.dur[0].Settled || q.dur[0].Seq < injectedBelow) {
		if q.take(q.dur[0].Seq) {
			seqs = append(seqs, q.dur[0].Seq)
		}
		q.dur = q.dur[1:]
	}
	for len(q.cnt) > 0 && q.cnt[0].Due <= t && (q.cnt[0].Settled || q.cnt[0].Seq < injectedBelow) {
		if q.take(q.cnt[0].Seq) {
			seqs = append(seqs, q.cnt[0].Seq)
		}
		q.cnt = q.cnt[1:]
	}
	return seqs
}

// TakeMatching removes and returns the pending entries whose sequence
// number satisfies match, preserving the due order of both flavors —
// the queue-side half of a state migration. Call it only for sequence
// numbers of tuples that are live in the pipeline's windows: a live
// tuple has fired neither bound, so no dedupe bookkeeping can exist
// for it and none needs to move.
func (q *ExpiryQueue) TakeMatching(match func(uint64) bool) (dur, cnt []ExpiryEntry) {
	q.dur, dur = filterEntries(q.dur, match)
	q.cnt, cnt = filterEntries(q.cnt, match)
	return dur, cnt
}

// filterEntries splits entries into kept (match false) and taken
// (match true), both in original order, reusing the backing array for
// the kept slice.
func filterEntries(entries []ExpiryEntry, match func(uint64) bool) (kept, taken []ExpiryEntry) {
	kept = entries[:0]
	for _, e := range entries {
		if match(e.Seq) {
			taken = append(taken, e)
		} else {
			kept = append(kept, e)
		}
	}
	return kept, taken
}

// AbsorbDur merges migrated duration-bound entries into the queue,
// marking them settled (their tuples are already in the windows, so
// the injection gate must not hold them back). Both inputs are sorted
// by due time; the merge keeps the queue sorted, which PopDue's
// head-only drain requires.
func (q *ExpiryQueue) AbsorbDur(entries []ExpiryEntry) { q.dur = mergeByDue(q.dur, entries) }

// AbsorbCnt merges migrated count-bound entries into the queue,
// marking them settled.
func (q *ExpiryQueue) AbsorbCnt(entries []ExpiryEntry) { q.cnt = mergeByDue(q.cnt, entries) }

// mergeByDue merges two due-sorted entry lists, marking the absorbed
// list settled. Existing entries win ties, so an absorbed entry never
// jumps ahead of a same-due entry already queued.
func mergeByDue(have, add []ExpiryEntry) []ExpiryEntry {
	if len(add) == 0 {
		return have
	}
	out := make([]ExpiryEntry, 0, len(have)+len(add))
	i, j := 0, 0
	for i < len(have) && j < len(add) {
		if have[i].Due <= add[j].Due {
			out = append(out, have[i])
			i++
		} else {
			e := add[j]
			e.Settled = true
			out = append(out, e)
			j++
		}
	}
	out = append(out, have[i:]...)
	for ; j < len(add); j++ {
		e := add[j]
		e.Settled = true
		out = append(out, e)
	}
	return out
}

// take reports whether seq should be emitted. With dedupe on, the
// first of the two scheduled entries per tuple emits and the second is
// consumed silently (clearing the bookkeeping, since no third entry
// can exist).
func (q *ExpiryQueue) take(seq uint64) bool {
	if q.seen == nil {
		return true
	}
	if _, dup := q.seen[seq]; dup {
		delete(q.seen, seq)
		return false
	}
	q.seen[seq] = struct{}{}
	return true
}

// Len returns the number of queued entries (including entries that
// dedupe will drop).
func (q *ExpiryQueue) Len() int { return len(q.dur) + len(q.cnt) }
