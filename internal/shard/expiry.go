package shard

import "sort"

// ExpiryEntry schedules the removal of one tuple: the tuple leaves the
// window as soon as stream time reaches Due.
type ExpiryEntry struct {
	Seq uint64
	Due int64
	// Settled marks an entry whose tuple is already inside the
	// pipeline's windows, so the injection gate of PopDue does not
	// apply. Entries absorbed from a state migration are settled: the
	// tuple was re-injected store-only and quiesced before its expiry
	// entries were absorbed, while the destination lane's own
	// injection high-water mark knows nothing about it.
	Settled bool
}

// ExpiryQueue holds the pending expiries of one stream side of one
// pipeline. Duration-bound and count-bound expiries are kept in
// separate queues because each is non-decreasing in Due on its own
// (timestamps are monotonic per stream) but their interleaving is not;
// PopDue drains both.
//
// When a window combines a Duration and a Count bound, every tuple is
// scheduled twice — once per bound — and must still expire exactly
// once (a second expiry for the same sequence number would register at
// the pipeline as a pending expiry and pollute the stats). A queue
// constructed with dedupe tracks seen sequence numbers so whichever
// bound fires first wins and the later entry is dropped.
type ExpiryQueue struct {
	dur, cnt entryList
	seen     map[uint64]struct{}
}

// entryList is a FIFO of expiry entries consumed from the front: live
// entries sit at buf[head:], pops advance head, and a push against a
// full backing slides the live region down instead of letting append
// re-allocate rightward forever (only when the reclaimable prefix is
// worth the copy, so the slide stays amortized O(1)).
type entryList struct {
	buf  []ExpiryEntry
	head int
}

func (l *entryList) size() int           { return len(l.buf) - l.head }
func (l *entryList) live() []ExpiryEntry { return l.buf[l.head:] }
func (l *entryList) peek() *ExpiryEntry  { return &l.buf[l.head] }
func (l *entryList) pop()                { l.head++ }

// slideIfWorthIt compacts ahead of an n-entry append that would
// otherwise overflow the backing, when the reclaimable prefix is worth
// the copy (at least a quarter of the array).
func (l *entryList) slideIfWorthIt(n int) {
	if len(l.buf)+n > cap(l.buf) && l.head*4 >= len(l.buf) {
		k := copy(l.buf, l.buf[l.head:])
		l.buf = l.buf[:k]
		l.head = 0
	}
}

func (l *entryList) push(e ExpiryEntry) {
	l.slideIfWorthIt(1)
	l.buf = append(l.buf, e)
}

func (l *entryList) pushBulk(es []ExpiryEntry) {
	l.slideIfWorthIt(len(es))
	l.buf = append(l.buf, es...)
}

// takeMatching removes and returns the live entries whose sequence
// number satisfies match, preserving order; kept entries compact into
// the same backing.
func (l *entryList) takeMatching(match func(uint64) bool) (taken []ExpiryEntry) {
	live := l.live()
	kept := live[:0]
	for _, e := range live {
		if match(e.Seq) {
			taken = append(taken, e)
		} else {
			kept = append(kept, e)
		}
	}
	l.buf = l.buf[:l.head+len(kept)]
	return taken
}

// NewExpiryQueue returns an empty queue. Pass dedupe when both window
// bounds are active, so each tuple expires exactly once.
func NewExpiryQueue(dedupe bool) *ExpiryQueue {
	q := &ExpiryQueue{}
	if dedupe {
		q.seen = map[uint64]struct{}{}
	}
	return q
}

// PushDur schedules a duration-bound expiry. Calls must carry
// non-decreasing due times. settled marks an entry whose tuple is
// already in the pipeline's windows (state migration), exempt from
// PopDue's injection gate.
func (q *ExpiryQueue) PushDur(seq uint64, due int64, settled bool) {
	q.dur.push(ExpiryEntry{Seq: seq, Due: due, Settled: settled})
}

// PushCnt schedules a count-bound expiry. Calls must carry
// non-decreasing due times.
func (q *ExpiryQueue) PushCnt(seq uint64, due int64, settled bool) {
	q.cnt.push(ExpiryEntry{Seq: seq, Due: due, Settled: settled})
}

// PushBulk schedules a caller batch's expiries of both flavors in two
// appends — the amortized form of per-entry PushDur/PushCnt calls.
// Each slice must be in non-decreasing due order and follow the
// entries already queued (both hold when entries are generated in
// arrival order, as the engines' window accounting does); the input
// slices are copied, so callers may reuse their scratch buffers.
func (q *ExpiryQueue) PushBulk(dur, cnt []ExpiryEntry) {
	if len(dur) > 0 {
		q.dur.pushBulk(dur)
	}
	if len(cnt) > 0 {
		q.cnt.pushBulk(cnt)
	}
}

// HasDue reports whether PopDue(t, injectedBelow) would consume at
// least one entry — the peek a batched probe path uses to find the
// exact points at which a per-tuple schedule would have injected
// expiries between two probes.
func (q *ExpiryQueue) HasDue(t int64, injectedBelow uint64) bool {
	if q.dur.size() > 0 {
		if e := q.dur.peek(); e.Due <= t && (e.Settled || e.Seq < injectedBelow) {
			return true
		}
	}
	if q.cnt.size() > 0 {
		if e := q.cnt.peek(); e.Due <= t && (e.Settled || e.Seq < injectedBelow) {
			return true
		}
	}
	return false
}

// PopDue removes and returns the sequence numbers of all entries due
// at or before t, each at most once across the queue's lifetime.
//
// injectedBelow is the exclusive upper bound of sequence numbers whose
// arrival has already been injected into the pipeline: an expiry whose
// tuple is still sitting in a driver batch buffer stays queued, so an
// expiry message can never overtake its own tuple at the pipeline
// entry (the pending-expiry pathology). Entries within each queue
// carry non-decreasing sequence numbers as well as due times (both
// follow arrival order), so holding back the head holds back only
// tuples that are equally uninjected.
func (q *ExpiryQueue) PopDue(t int64, injectedBelow uint64) []uint64 {
	return q.PopDueInto(t, injectedBelow, nil)
}

// PopDueInto is PopDue appending into a caller-supplied backing
// (pooled by the lane so a flush does not allocate a fresh expiry
// message payload per batch).
func (q *ExpiryQueue) PopDueInto(t int64, injectedBelow uint64, seqs []uint64) []uint64 {
	for q.dur.size() > 0 {
		e := q.dur.peek()
		if e.Due > t || !(e.Settled || e.Seq < injectedBelow) {
			break
		}
		if q.take(e.Seq) {
			seqs = append(seqs, e.Seq)
		}
		q.dur.pop()
	}
	for q.cnt.size() > 0 {
		e := q.cnt.peek()
		if e.Due > t || !(e.Settled || e.Seq < injectedBelow) {
			break
		}
		if q.take(e.Seq) {
			seqs = append(seqs, e.Seq)
		}
		q.cnt.pop()
	}
	return seqs
}

// TakeMatching removes and returns the pending entries whose sequence
// number satisfies match, preserving the due order of both flavors —
// the queue-side half of a state migration. Call it only for sequence
// numbers of tuples that are live in the pipeline's windows: a live
// tuple has fired neither bound, so no dedupe bookkeeping can exist
// for it and none needs to move.
func (q *ExpiryQueue) TakeMatching(match func(uint64) bool) (dur, cnt []ExpiryEntry) {
	return q.dur.takeMatching(match), q.cnt.takeMatching(match)
}

// AbsorbDur merges migrated duration-bound entries into the queue,
// marking them settled (their tuples are already in the windows, so
// the injection gate must not hold them back). Both inputs are sorted
// by due time; the merge keeps the queue sorted, which PopDue's
// head-only drain requires.
func (q *ExpiryQueue) AbsorbDur(entries []ExpiryEntry) {
	q.dur.buf = mergeByDue(q.dur.live(), entries)
	q.dur.head = 0
}

// AbsorbCnt merges migrated count-bound entries into the queue,
// marking them settled.
func (q *ExpiryQueue) AbsorbCnt(entries []ExpiryEntry) {
	q.cnt.buf = mergeByDue(q.cnt.live(), entries)
	q.cnt.head = 0
}

// mergeByDue merges two due-sorted entry lists, marking the absorbed
// list settled. Existing entries win ties, so an absorbed entry never
// jumps ahead of a same-due entry already queued.
func mergeByDue(have, add []ExpiryEntry) []ExpiryEntry {
	if len(add) == 0 {
		return have
	}
	out := make([]ExpiryEntry, 0, len(have)+len(add))
	i, j := 0, 0
	for i < len(have) && j < len(add) {
		if have[i].Due <= add[j].Due {
			out = append(out, have[i])
			i++
		} else {
			e := add[j]
			e.Settled = true
			out = append(out, e)
			j++
		}
	}
	out = append(out, have[i:]...)
	for ; j < len(add); j++ {
		e := add[j]
		e.Settled = true
		out = append(out, e)
	}
	return out
}

// take reports whether seq should be emitted. With dedupe on, the
// first of the two scheduled entries per tuple emits and the second is
// consumed silently (clearing the bookkeeping, since no third entry
// can exist).
func (q *ExpiryQueue) take(seq uint64) bool {
	if q.seen == nil {
		return true
	}
	if _, dup := q.seen[seq]; dup {
		delete(q.seen, seq)
		return false
	}
	q.seen[seq] = struct{}{}
	return true
}

// Len returns the number of queued entries (including entries that
// dedupe will drop).
func (q *ExpiryQueue) Len() int { return q.dur.size() + q.cnt.size() }

// ExpiryQueueState is the verbatim serializable state of an
// ExpiryQueue: both entry flavors exactly as queued (Settled flags
// included) plus the dedupe bookkeeping. A checkpoint needs the
// verbatim form — TakeMatching/Absorb exist for migration, where only
// live-window entries move and everything absorbed is forced settled;
// restoring a cut must instead reproduce PopDue's future behaviour
// bit-for-bit, injection gate and once-per-seq accounting included.
type ExpiryQueueState struct {
	Dur, Cnt []ExpiryEntry
	// Seen holds the sequence numbers whose first scheduled entry has
	// already fired (dedupe bookkeeping), sorted ascending for
	// deterministic encoding. Nil when dedupe is off.
	Seen []uint64
}

// Snapshot copies the queue's state. The receiver is unchanged.
func (q *ExpiryQueue) Snapshot() ExpiryQueueState {
	var st ExpiryQueueState
	if n := q.dur.size(); n > 0 {
		st.Dur = append(make([]ExpiryEntry, 0, n), q.dur.live()...)
	}
	if n := q.cnt.size(); n > 0 {
		st.Cnt = append(make([]ExpiryEntry, 0, n), q.cnt.live()...)
	}
	if q.seen != nil {
		st.Seen = make([]uint64, 0, len(q.seen))
		for seq := range q.seen {
			st.Seen = append(st.Seen, seq)
		}
		sortUint64s(st.Seen)
	}
	return st
}

// RestoreSnapshot replaces the queue's state with a snapshot taken
// from a queue of the same dedupe mode. The input slices are copied.
func (q *ExpiryQueue) RestoreSnapshot(st ExpiryQueueState) {
	q.dur = entryList{buf: append([]ExpiryEntry(nil), st.Dur...)}
	q.cnt = entryList{buf: append([]ExpiryEntry(nil), st.Cnt...)}
	if q.seen != nil {
		clear(q.seen)
		for _, seq := range st.Seen {
			q.seen[seq] = struct{}{}
		}
	}
}

func sortUint64s(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
