package shard

import (
	"fmt"

	"handshakejoin/internal/stream"
	"handshakejoin/internal/wire"
)

// This file is the durability wire codec for lane state: deterministic
// binary serialization of window tuples, expiry-queue entries, and the
// driver's batch/injection bookkeeping. Payloads are opaque here —
// callers supply per-side encode/decode functions — and nothing derived
// is written: home nodes are re-tagged at the pipeline entry on
// injection, and window indexes (hash, B-tree) rebuild lazily on the
// first probe that wants them. The same encoding serves checkpoints
// today and is deliberately shaped to carry migration slices across a
// transport later (ROADMAP: cross-process migration).

func encodeTuples[T any](w *wire.Writer, ts []stream.Tuple[T], enc func(T) []byte) {
	w.U32(uint32(len(ts)))
	for _, t := range ts {
		w.U64(t.Seq)
		w.I64(t.TS)
		w.I64(t.Wall)
		w.Blob(enc(t.Payload))
	}
}

func decodeTuples[T any](r *wire.Reader, dec func([]byte) (T, error)) ([]stream.Tuple[T], error) {
	n := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	var out []stream.Tuple[T]
	for i := 0; i < n; i++ {
		t := stream.Tuple[T]{Home: stream.NoHome}
		t.Seq = r.U64()
		t.TS = r.I64()
		t.Wall = r.I64()
		blob := r.Blob()
		if r.Err() != nil {
			return nil, r.Err()
		}
		p, err := dec(blob)
		if err != nil {
			return nil, fmt.Errorf("shard: decode tuple seq %d: %w", t.Seq, err)
		}
		t.Payload = p
		out = append(out, t)
	}
	return out, nil
}

func encodeEntries(w *wire.Writer, es []ExpiryEntry) {
	w.U32(uint32(len(es)))
	for _, e := range es {
		w.U64(e.Seq)
		w.I64(e.Due)
		w.Bool(e.Settled)
	}
}

func decodeEntries(r *wire.Reader) []ExpiryEntry {
	n := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	var out []ExpiryEntry
	for i := 0; i < n; i++ {
		out = append(out, ExpiryEntry{Seq: r.U64(), Due: r.I64(), Settled: r.Bool()})
	}
	return out
}

func encodeQueueState(w *wire.Writer, st ExpiryQueueState) {
	encodeEntries(w, st.Dur)
	encodeEntries(w, st.Cnt)
	w.U32(uint32(len(st.Seen)))
	for _, seq := range st.Seen {
		w.U64(seq)
	}
}

func decodeQueueState(r *wire.Reader) ExpiryQueueState {
	st := ExpiryQueueState{Dur: decodeEntries(r), Cnt: decodeEntries(r)}
	n := int(r.U32())
	if r.Err() != nil {
		return st
	}
	for i := 0; i < n; i++ {
		st.Seen = append(st.Seen, r.U64())
	}
	return st
}

// EncodeLaneState appends the deterministic binary form of st to w.
// encR/encS serialize the two payload types; they must be pure
// (equal payloads encode to equal bytes) for the encoding to be
// deterministic.
func EncodeLaneState[L, R any](w *wire.Writer, st *LaneState[L, R], encR func(L) []byte, encS func(R) []byte) {
	encodeTuples(w, st.R, encR)
	encodeTuples(w, st.S, encS)
	encodeQueueState(w, st.RExp)
	encodeQueueState(w, st.SExp)
	encodeTuples(w, st.RBatch, encR)
	encodeTuples(w, st.SBatch, encS)
	w.U64(st.RInj)
	w.U64(st.SInj)
	w.I64(st.HWMR)
	w.I64(st.HWMS)
}

// DecodeLaneState decodes one lane's state written by EncodeLaneState.
func DecodeLaneState[L, R any](r *wire.Reader, decR func([]byte) (L, error), decS func([]byte) (R, error)) (*LaneState[L, R], error) {
	st := &LaneState[L, R]{}
	var err error
	if st.R, err = decodeTuples(r, decR); err != nil {
		return nil, err
	}
	if st.S, err = decodeTuples(r, decS); err != nil {
		return nil, err
	}
	st.RExp = decodeQueueState(r)
	st.SExp = decodeQueueState(r)
	if st.RBatch, err = decodeTuples(r, decR); err != nil {
		return nil, err
	}
	if st.SBatch, err = decodeTuples(r, decS); err != nil {
		return nil, err
	}
	st.RInj = r.U64()
	st.SInj = r.U64()
	st.HWMR = r.I64()
	st.HWMS = r.I64()
	return st, r.Err()
}
