package shard

import (
	"sync"
	"time"

	"handshakejoin/internal/clock"
	"handshakejoin/internal/collect"
	"handshakejoin/internal/core"
	"handshakejoin/internal/pipeline"
	"handshakejoin/internal/stream"
)

// LaneConfig parameterizes a Lane. All fields are required (the engine
// layer applies defaults before construction).
type LaneConfig struct {
	// Workers is the pipeline length of this lane.
	Workers int
	// Batch is the driver batch size.
	Batch int
	// MaxInFlight bounds the messages in flight inside this lane's
	// pipeline.
	MaxInFlight int
	// CollectPeriod is the collector vacuum interval.
	CollectPeriod time.Duration
	// Punctuate enables punctuation generation on this lane's collector.
	Punctuate bool
	// Clock stamps results; sharded engines share one clock across
	// lanes so latencies are comparable.
	Clock clock.Clock
	// DedupeR / DedupeS enable exactly-once expiry per tuple on the
	// respective side (needed when that window combines Duration and
	// Count bounds).
	DedupeR, DedupeS bool
}

// Lane is one shard of a sharded engine — or the single pipeline of an
// unsharded one: the per-pipeline driver state (batch buffers and
// expiry queues), one live pipeline, and its collector goroutine.
//
// All driver entry points are serialized by an internal mutex, so a
// Lane may be fed concurrently from both stream sides; the fan-out
// engine above it only has to route tuples and expiries to the right
// lane. Expiry scheduling takes a separate, finer lock: QueueExpiry is
// called by the engine while it holds a stream-side lock, and must not
// wait behind a flush that is blocked on pipeline back-pressure (which
// holds the main mutex), or one saturated lane would stall every
// pusher.
type Lane[L, R any] struct {
	cfg  LaneConfig
	lv   *pipeline.Live[L, R]
	coll *collect.Collector[L, R]
	wg   sync.WaitGroup

	mu     sync.Mutex // batches, inj marks, flushes, tick/heartbeat
	rBatch []stream.Tuple[L]
	sBatch []stream.Tuple[R]
	rInj   uint64 // exclusive seq high-water mark of injected arrivals
	sInj   uint64

	expMu      sync.Mutex // expiry queues only; never held across Inject
	rExp, sExp *ExpiryQueue
}

// NewLane builds a lane and starts its pipeline and collector
// goroutines. Output items are delivered to out from the lane's
// collector goroutine.
func NewLane[L, R any](cfg LaneConfig, build core.Builder[L, R], out func(collect.Item[L, R])) *Lane[L, R] {
	l := &Lane[L, R]{
		cfg:  cfg,
		rExp: NewExpiryQueue(cfg.DedupeR),
		sExp: NewExpiryQueue(cfg.DedupeS),
	}
	l.lv = pipeline.NewLive(cfg.Workers, build, cfg.Clock, pipeline.LiveConfig{DepthCap: cfg.MaxInFlight})
	l.coll = collect.New(l.lv.ResultQueues(), func() (int64, int64) {
		return l.lv.HWMR(), l.lv.HWMS()
	}, out, collect.Config{Punctuate: cfg.Punctuate})
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		l.coll.Run(func() { time.Sleep(cfg.CollectPeriod) })
	}()
	return l
}

// PushR submits one R tuple; a full batch is flushed into the
// pipeline.
func (l *Lane[L, R]) PushR(t stream.Tuple[L]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rBatch = append(l.rBatch, t)
	if len(l.rBatch) >= l.cfg.Batch {
		l.flushR()
	}
}

// PushS submits one S tuple.
func (l *Lane[L, R]) PushS(t stream.Tuple[R]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sBatch = append(l.sBatch, t)
	if len(l.sBatch) >= l.cfg.Batch {
		l.flushS()
	}
}

// QueueExpiry schedules the removal of tuple seq of the given side at
// stream time due. counted marks a count-bound (as opposed to
// duration-bound) expiry. Due times must be non-decreasing per
// (side, counted) pair — which routing monotonic streams guarantees.
func (l *Lane[L, R]) QueueExpiry(side stream.Side, seq uint64, due int64, counted bool) {
	l.expMu.Lock()
	defer l.expMu.Unlock()
	q := l.rExp
	if side == stream.S {
		q = l.sExp
	}
	if counted {
		q.PushCnt(seq, due)
	} else {
		q.PushDur(seq, due)
	}
}

// popDueR / popDueS drain the due expiries of one side under the
// expiry lock, so the subsequent Inject (which may block on pipeline
// back-pressure) never holds it.
func (l *Lane[L, R]) popDueR(t int64) []uint64 {
	l.expMu.Lock()
	defer l.expMu.Unlock()
	return l.rExp.PopDue(t, l.rInj)
}

func (l *Lane[L, R]) popDueS(t int64) []uint64 {
	l.expMu.Lock()
	defer l.expMu.Unlock()
	return l.sExp.PopDue(t, l.sInj)
}

// flushR injects pending S expiries (left end, so that R tuples behind
// them no longer join the expired S tuples) followed by the buffered R
// batch. Callers hold l.mu.
func (l *Lane[L, R]) flushR() {
	if len(l.rBatch) == 0 {
		return
	}
	due := l.rBatch[len(l.rBatch)-1].TS
	if seqs := l.popDueS(due); len(seqs) > 0 {
		l.lv.Inject(pipeline.LeftEnd, core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.S, Seqs: seqs})
	}
	l.lv.Inject(pipeline.LeftEnd, core.Msg[L, R]{Kind: core.KindArrival, Side: stream.R, R: l.rBatch})
	l.rInj = l.rBatch[len(l.rBatch)-1].Seq + 1
	l.rBatch = nil
}

// flushS injects pending R expiries (right end) followed by the
// buffered S batch. Callers hold l.mu.
func (l *Lane[L, R]) flushS() {
	if len(l.sBatch) == 0 {
		return
	}
	due := l.sBatch[len(l.sBatch)-1].TS
	if seqs := l.popDueR(due); len(seqs) > 0 {
		l.lv.Inject(pipeline.RightEnd, core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.R, Seqs: seqs})
	}
	l.lv.Inject(pipeline.RightEnd, core.Msg[L, R]{Kind: core.KindArrival, Side: stream.S, S: l.sBatch})
	l.sInj = l.sBatch[len(l.sBatch)-1].Seq + 1
	l.sBatch = nil
}

// Tick advances stream time to ts without submitting a tuple: partial
// batches are flushed, the pipeline settles, and expiries due by ts
// are injected, so windows keep sliding on an idle shard.
func (l *Lane[L, R]) Tick(ts int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tickLocked(ts)
}

func (l *Lane[L, R]) tickLocked(ts int64) {
	l.flushR()
	l.flushS()
	l.lv.Quiesce()
	if seqs := l.popDueS(ts); len(seqs) > 0 {
		l.lv.Inject(pipeline.LeftEnd, core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.S, Seqs: seqs})
	}
	if seqs := l.popDueR(ts); len(seqs) > 0 {
		l.lv.Inject(pipeline.RightEnd, core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.R, Seqs: seqs})
	}
}

// Heartbeat advances stream time to ts like Tick and additionally
// promises ts on both high-water marks, so the lane's collector can
// punctuate even though no tuple flowed through the pipeline.
//
// The caller must guarantee that every tuple it will ever push to this
// lane afterwards — on either side — carries a timestamp >= ts (the
// sharded engine passes the minimum of the per-side ingress
// timestamps). Under that guarantee the promise is sound: after the
// flush-and-quiesce below, every result derivable from the lane's
// current window contents has been emitted to the result queues, and
// any future result involves at least one future arrival, whose
// timestamp — and therefore the result's (the later of the pair) — is
// >= ts. The collector reads high-water marks before vacuuming the
// result queues, so results emitted before the promise always precede
// the punctuation that carries it.
func (l *Lane[L, R]) Heartbeat(ts int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tickLocked(ts)
	l.lv.AdvanceHWM(stream.R, ts)
	l.lv.AdvanceHWM(stream.S, ts)
}

// QueueDepth reports the number of messages currently in flight inside
// the lane's pipeline — the back-pressure signal load samplers read.
func (l *Lane[L, R]) QueueDepth() int { return l.lv.QueueDepth() }

// Close flushes buffered batches, waits for the pipeline to quiesce,
// and stops the node and collector goroutines. The lane cannot be
// reused afterwards; the engine layer guards against further pushes.
func (l *Lane[L, R]) Close() {
	l.mu.Lock()
	l.flushR()
	l.flushS()
	l.mu.Unlock()
	l.lv.Quiesce()
	l.lv.Stop()
	l.wg.Wait() // collector drains the closed queues, then exits
}

// PipelineStats aggregates this lane's node counters; exact after
// Close or Tick.
func (l *Lane[L, R]) PipelineStats() core.Stats { return l.lv.Stats() }

// Collected returns the number of results this lane's collector
// assembled.
func (l *Lane[L, R]) Collected() uint64 { return l.coll.Collected() }

// Punctuations returns the number of punctuations this lane emitted.
func (l *Lane[L, R]) Punctuations() uint64 { return l.coll.Punctuations() }
