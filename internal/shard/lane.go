package shard

import (
	"errors"
	"sort"
	"sync"
	"time"

	"handshakejoin/internal/clock"
	"handshakejoin/internal/collect"
	"handshakejoin/internal/core"
	"handshakejoin/internal/pipeline"
	"handshakejoin/internal/stream"
)

// ErrMigrationBudget is returned by Extract when the group's live
// state exceeds the caller's tuple budget; nothing has been modified.
var ErrMigrationBudget = errors.New("shard: group state exceeds migration budget")

// ErrNoExtractor is returned by Extract when the lane's node logic
// does not support state extraction (the original handshake join).
var ErrNoExtractor = errors.New("shard: node logic does not support state extraction")

// LaneConfig parameterizes a Lane. All fields are required (the engine
// layer applies defaults before construction).
type LaneConfig struct {
	// Workers is the pipeline length of this lane.
	Workers int
	// Batch is the driver batch size.
	Batch int
	// MaxInFlight bounds the messages in flight inside this lane's
	// pipeline.
	MaxInFlight int
	// CollectPeriod is the collector vacuum interval.
	CollectPeriod time.Duration
	// Punctuate enables punctuation generation on this lane's collector.
	Punctuate bool
	// Clock stamps results; sharded engines share one clock across
	// lanes so latencies are comparable.
	Clock clock.Clock
	// DedupeR / DedupeS enable exactly-once expiry per tuple on the
	// respective side (needed when that window combines Duration and
	// Count bounds).
	DedupeR, DedupeS bool
	// Recycle enables arrival-slice pooling: the backing slice of every
	// flushed batch and probe-only slice returns to a per-lane free
	// list once all Workers nodes have handled the message, so the
	// flush path stops allocating a fresh backing per batch. Only valid
	// for node logic that forwards arrival messages unmodified and
	// retains tuples by value (the LLHJ node); the original handshake
	// join re-batches window overflow into new messages, so its lanes
	// must leave this off.
	Recycle bool
}

// poolCap bounds each free list so a burst cannot pin unbounded
// backing memory; beyond it, slices fall back to the garbage
// collector.
const poolCap = 32

// pool is a small mutex-guarded free list. The pipeline recycler puts
// from node goroutines while the driver gets under the lane mutex, so
// it must be its own lock.
type pool[T any] struct {
	mu    sync.Mutex
	items []T
}

func (p *pool[T]) get() (x T, ok bool) {
	p.mu.Lock()
	if n := len(p.items); n > 0 {
		x, ok = p.items[n-1], true
		var zero T
		p.items[n-1] = zero
		p.items = p.items[:n-1]
	}
	p.mu.Unlock()
	return x, ok
}

func (p *pool[T]) put(x T) {
	p.mu.Lock()
	if len(p.items) < poolCap {
		p.items = append(p.items, x)
	}
	p.mu.Unlock()
}

// Lane is one shard of a sharded engine — or the single pipeline of an
// unsharded one: the per-pipeline driver state (batch buffers and
// expiry queues), one live pipeline, and its collector goroutine.
//
// All driver entry points are serialized by an internal mutex, so a
// Lane may be fed concurrently from both stream sides; the fan-out
// engine above it only has to route tuples and expiries to the right
// lane. Expiry scheduling takes a separate, finer lock: QueueExpiry is
// called by the engine while it holds a stream-side lock, and must not
// wait behind a flush that is blocked on pipeline back-pressure (which
// holds the main mutex), or one saturated lane would stall every
// pusher.
type Lane[L, R any] struct {
	cfg  LaneConfig
	lv   *pipeline.Live[L, R]
	coll *collect.Collector[L, R]
	wg   sync.WaitGroup

	mu     sync.Mutex // batches, inj marks, flushes, tick/heartbeat
	rBatch []stream.Tuple[L]
	sBatch []stream.Tuple[R]
	rInj   uint64 // exclusive seq high-water mark of injected arrivals
	sInj   uint64

	expMu      sync.Mutex // expiry queues only; never held across Inject
	rExp, sExp *ExpiryQueue

	// Arrival-slice recycling (cfg.Recycle): flushed batch and probe
	// slices come from these free lists and return through recycleFn
	// once every node has handled the message (core.Free).
	rBufs     pool[[]stream.Tuple[L]]
	sBufs     pool[[]stream.Tuple[R]]
	seqBufs   pool[[]uint64]
	frees     pool[*core.Free[L, R]]
	recycleFn func(core.Msg[L, R])
}

// NewLane builds a lane and starts its pipeline and collector
// goroutines. Output items are delivered to out from the lane's
// collector goroutine.
func NewLane[L, R any](cfg LaneConfig, build core.Builder[L, R], out func(collect.Item[L, R])) *Lane[L, R] {
	l := &Lane[L, R]{
		cfg:  cfg,
		rExp: NewExpiryQueue(cfg.DedupeR),
		sExp: NewExpiryQueue(cfg.DedupeS),
	}
	l.recycleFn = l.recycle
	l.lv = pipeline.NewLive(cfg.Workers, build, cfg.Clock, pipeline.LiveConfig{DepthCap: cfg.MaxInFlight})
	l.coll = collect.New(l.lv.ResultQueues(), func() (int64, int64) {
		return l.lv.HWMR(), l.lv.HWMS()
	}, out, collect.Config{Punctuate: cfg.Punctuate})
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		l.coll.Run(func() { time.Sleep(cfg.CollectPeriod) })
	}()
	return l
}

// takeRBuf returns an empty R-side batch backing, pooled when
// recycling is on.
func (l *Lane[L, R]) takeRBuf() []stream.Tuple[L] {
	if b, ok := l.rBufs.get(); ok {
		return b
	}
	return make([]stream.Tuple[L], 0, l.cfg.Batch)
}

func (l *Lane[L, R]) takeSBuf() []stream.Tuple[R] {
	if b, ok := l.sBufs.get(); ok {
		return b
	}
	return make([]stream.Tuple[R], 0, l.cfg.Batch)
}

// newFree arms a recycling token for one arrival message: every one of
// the Workers nodes handles (and forwards) an arrival exactly once, so
// the slice is free after the Workers-th handler returns.
func (l *Lane[L, R]) newFree() *core.Free[L, R] { return l.newFreeRefs(int32(l.cfg.Workers)) }

// newFreeExpiry arms a token for an expiry message, which only its
// entry node handles — every node it does not home forwards the
// remainder as a fresh message, so the injected backing is free after
// one handler.
func (l *Lane[L, R]) newFreeExpiry() *core.Free[L, R] { return l.newFreeRefs(1) }

func (l *Lane[L, R]) newFreeRefs(refs int32) *core.Free[L, R] {
	if !l.cfg.Recycle {
		return nil
	}
	f, ok := l.frees.get()
	if !ok {
		f = &core.Free[L, R]{Put: l.recycleFn}
	}
	f.Refs.Store(refs)
	return f
}

// recycle receives a fully handled message from the pipeline runtime
// (on a node goroutine) and returns its backing slice and token to the
// lane's free lists.
func (l *Lane[L, R]) recycle(m core.Msg[L, R]) {
	switch {
	case m.Kind == core.KindExpiry:
		if m.Seqs != nil {
			l.seqBufs.put(m.Seqs[:0])
		}
	case m.Side == stream.R:
		if m.R != nil {
			l.rBufs.put(m.R[:0])
		}
	default:
		if m.S != nil {
			l.sBufs.put(m.S[:0])
		}
	}
	l.frees.put(m.Free)
}

// PushR submits one R tuple; a full batch is flushed into the
// pipeline.
func (l *Lane[L, R]) PushR(t stream.Tuple[L]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rBatch == nil {
		l.rBatch = l.takeRBuf()
	}
	l.rBatch = append(l.rBatch, t)
	if len(l.rBatch) >= l.cfg.Batch {
		l.flushR()
	}
}

// PushS submits one S tuple.
func (l *Lane[L, R]) PushS(t stream.Tuple[R]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sBatch == nil {
		l.sBatch = l.takeSBuf()
	}
	l.sBatch = append(l.sBatch, t)
	if len(l.sBatch) >= l.cfg.Batch {
		l.flushS()
	}
}

// PushRBulk submits a batch of R tuples in sequence order under one
// mutex acquisition, flushing at every Batch boundary — the exact
// flush schedule of the equivalent PushR sequence (flushing is
// triggered by buffer length alone, so bulk and per-tuple appends
// inject identical batches at identical stream points).
func (l *Lane[L, R]) PushRBulk(batch []stream.Tuple[L]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appendR(batch)
}

// PushSBulk submits a batch of S tuples; see PushRBulk.
func (l *Lane[L, R]) PushSBulk(batch []stream.Tuple[R]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appendS(batch)
}

// appendR buffers a bulk of R tuples, flushing whenever the batch
// fills. Callers hold l.mu. The input is copied; callers may reuse it.
func (l *Lane[L, R]) appendR(batch []stream.Tuple[L]) {
	for len(batch) > 0 {
		space := l.cfg.Batch - len(l.rBatch)
		if space <= 0 {
			l.flushR()
			continue
		}
		if space > len(batch) {
			space = len(batch)
		}
		if l.rBatch == nil {
			l.rBatch = l.takeRBuf()
		}
		l.rBatch = append(l.rBatch, batch[:space]...)
		batch = batch[space:]
		if len(l.rBatch) >= l.cfg.Batch {
			l.flushR()
		}
	}
}

func (l *Lane[L, R]) appendS(batch []stream.Tuple[R]) {
	for len(batch) > 0 {
		space := l.cfg.Batch - len(l.sBatch)
		if space <= 0 {
			l.flushS()
			continue
		}
		if space > len(batch) {
			space = len(batch)
		}
		if l.sBatch == nil {
			l.sBatch = l.takeSBuf()
		}
		l.sBatch = append(l.sBatch, batch[:space]...)
		batch = batch[space:]
		if len(l.sBatch) >= l.cfg.Batch {
			l.flushS()
		}
	}
}

// IngestR submits one caller batch's R-side traffic for this lane
// under a single mutex acquisition: the full arrivals routed here plus
// the probe-only double-reads of in-handoff groups whose window slices
// still live here. Both inputs are in arrival (sequence) order and
// disjoint — a tuple is either routed here or double-read here, never
// both — and the method replays the exact per-tuple schedule: appends
// flush at every Batch boundary, pending probes are injected before
// any flush they precede, and a probe slice is split exactly where the
// per-tuple path would have injected a due expiry between two probes.
// In the common case (no expiry due inside the batch's timestamp span)
// the whole probe set rides in one message — the per-arrival
// double-read message of a long handoff becomes per-batch.
func (l *Lane[L, R]) IngestR(full, probes []stream.Tuple[L]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(probes) == 0 {
		l.appendR(full)
		return
	}
	var run []stream.Tuple[L]
	i, j := 0, 0
	for i < len(full) || j < len(probes) {
		if j >= len(probes) || (i < len(full) && full[i].Seq < probes[j].Seq) {
			if l.rBatch == nil {
				l.rBatch = l.takeRBuf()
			}
			l.rBatch = append(l.rBatch, full[i])
			i++
			if len(l.rBatch) >= l.cfg.Batch {
				run = l.injectProbeR(run)
				l.flushR()
			}
		} else {
			t := probes[j]
			if l.hasDueS(t.TS) {
				// A per-tuple ProbeR would pop these expiries before
				// probing t: emit the probes that preceded them first,
				// then the expiries, then start a fresh slice.
				run = l.injectProbeR(run)
				if seqs := l.popDueS(t.TS); len(seqs) > 0 {
					l.lv.Inject(pipeline.LeftEnd, core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.S, Seqs: seqs, Free: l.newFreeExpiry()})
				}
			}
			if run == nil {
				run = l.takeRBuf()
			}
			run = append(run, t)
			j++
		}
	}
	l.injectProbeR(run)
}

// IngestS is the S-side mirror of IngestR.
func (l *Lane[L, R]) IngestS(full, probes []stream.Tuple[R]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(probes) == 0 {
		l.appendS(full)
		return
	}
	var run []stream.Tuple[R]
	i, j := 0, 0
	for i < len(full) || j < len(probes) {
		if j >= len(probes) || (i < len(full) && full[i].Seq < probes[j].Seq) {
			if l.sBatch == nil {
				l.sBatch = l.takeSBuf()
			}
			l.sBatch = append(l.sBatch, full[i])
			i++
			if len(l.sBatch) >= l.cfg.Batch {
				run = l.injectProbeS(run)
				l.flushS()
			}
		} else {
			t := probes[j]
			if l.hasDueR(t.TS) {
				run = l.injectProbeS(run)
				if seqs := l.popDueR(t.TS); len(seqs) > 0 {
					l.lv.Inject(pipeline.RightEnd, core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.R, Seqs: seqs, Free: l.newFreeExpiry()})
				}
			}
			if run == nil {
				run = l.takeSBuf()
			}
			run = append(run, t)
			j++
		}
	}
	l.injectProbeS(run)
}

// injectProbeR injects the accumulated probe-only slice, if any, and
// returns a nil accumulator: the injected backing belongs to the
// pipeline now and comes back through the recycler.
func (l *Lane[L, R]) injectProbeR(run []stream.Tuple[L]) []stream.Tuple[L] {
	if len(run) > 0 {
		l.lv.Inject(pipeline.LeftEnd, core.Msg[L, R]{Kind: core.KindArrival, Mode: core.ArriveProbeOnly, Side: stream.R, R: run, Free: l.newFree()})
	}
	return nil
}

func (l *Lane[L, R]) injectProbeS(run []stream.Tuple[R]) []stream.Tuple[R] {
	if len(run) > 0 {
		l.lv.Inject(pipeline.RightEnd, core.Msg[L, R]{Kind: core.KindArrival, Mode: core.ArriveProbeOnly, Side: stream.S, S: run, Free: l.newFree()})
	}
	return nil
}

// QueueExpiry schedules the removal of tuple seq of the given side at
// stream time due. counted marks a count-bound (as opposed to
// duration-bound) expiry. Due times must be non-decreasing per
// (side, counted) pair — which routing monotonic streams guarantees.
//
// settled marks an expiry whose tuple is already inside this lane's
// windows even though the lane's own injection high-water mark does
// not cover its sequence number — the engine passes it for tuples
// that entered by state migration. Without it, a count expiry routed
// here after a migration could be gated behind the injection check
// forever on a lane that never receives another arrival of that side.
func (l *Lane[L, R]) QueueExpiry(side stream.Side, seq uint64, due int64, counted, settled bool) {
	l.expMu.Lock()
	defer l.expMu.Unlock()
	q := l.rExp
	if side == stream.S {
		q = l.sExp
	}
	if counted {
		q.PushCnt(seq, due, settled)
	} else {
		q.PushDur(seq, due, settled)
	}
}

// QueueExpiryBulk schedules one caller batch's expiries for one side
// under a single expiry-lock acquisition — the amortized form of
// per-entry QueueExpiry calls, with the same ordering contract per
// (side, flavor). The input slices are copied.
func (l *Lane[L, R]) QueueExpiryBulk(side stream.Side, dur, cnt []ExpiryEntry) {
	if len(dur) == 0 && len(cnt) == 0 {
		return
	}
	l.expMu.Lock()
	defer l.expMu.Unlock()
	q := l.rExp
	if side == stream.S {
		q = l.sExp
	}
	q.PushBulk(dur, cnt)
}

// popDueR / popDueS drain the due expiries of one side under the
// expiry lock, so the subsequent Inject (which may block on pipeline
// back-pressure) never holds it. The returned backing is pooled (see
// recycle); an empty pop costs no pool traffic.
func (l *Lane[L, R]) popDueR(t int64) []uint64 {
	l.expMu.Lock()
	if !l.rExp.HasDue(t, l.rInj) {
		l.expMu.Unlock()
		return nil
	}
	seqs := l.rExp.PopDueInto(t, l.rInj, l.takeSeqBuf())
	l.expMu.Unlock()
	if len(seqs) == 0 { // everything popped was deduped
		l.seqBufs.put(seqs)
		return nil
	}
	return seqs
}

func (l *Lane[L, R]) popDueS(t int64) []uint64 {
	l.expMu.Lock()
	if !l.sExp.HasDue(t, l.sInj) {
		l.expMu.Unlock()
		return nil
	}
	seqs := l.sExp.PopDueInto(t, l.sInj, l.takeSeqBuf())
	l.expMu.Unlock()
	if len(seqs) == 0 {
		l.seqBufs.put(seqs)
		return nil
	}
	return seqs
}

func (l *Lane[L, R]) takeSeqBuf() []uint64 {
	if b, ok := l.seqBufs.get(); ok {
		return b
	}
	return make([]uint64, 0, l.cfg.Batch)
}

// hasDueR / hasDueS report whether a pop at stream time t would
// consume at least one entry — the boundary check the batched probe
// path uses to split probe slices exactly where per-tuple probes would
// have interleaved expiries.
func (l *Lane[L, R]) hasDueR(t int64) bool {
	l.expMu.Lock()
	defer l.expMu.Unlock()
	return l.rExp.HasDue(t, l.rInj)
}

func (l *Lane[L, R]) hasDueS(t int64) bool {
	l.expMu.Lock()
	defer l.expMu.Unlock()
	return l.sExp.HasDue(t, l.sInj)
}

// flushR injects pending S expiries (left end, so that R tuples behind
// them no longer join the expired S tuples) followed by the buffered R
// batch. Callers hold l.mu.
func (l *Lane[L, R]) flushR() {
	if len(l.rBatch) == 0 {
		return
	}
	due := l.rBatch[len(l.rBatch)-1].TS
	if seqs := l.popDueS(due); len(seqs) > 0 {
		l.lv.Inject(pipeline.LeftEnd, core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.S, Seqs: seqs, Free: l.newFreeExpiry()})
	}
	l.rInj = l.rBatch[len(l.rBatch)-1].Seq + 1
	l.lv.Inject(pipeline.LeftEnd, core.Msg[L, R]{Kind: core.KindArrival, Side: stream.R, R: l.rBatch, Free: l.newFree()})
	l.rBatch = nil
}

// flushS injects pending R expiries (right end) followed by the
// buffered S batch. Callers hold l.mu.
func (l *Lane[L, R]) flushS() {
	if len(l.sBatch) == 0 {
		return
	}
	due := l.sBatch[len(l.sBatch)-1].TS
	if seqs := l.popDueR(due); len(seqs) > 0 {
		l.lv.Inject(pipeline.RightEnd, core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.R, Seqs: seqs, Free: l.newFreeExpiry()})
	}
	l.sInj = l.sBatch[len(l.sBatch)-1].Seq + 1
	l.lv.Inject(pipeline.RightEnd, core.Msg[L, R]{Kind: core.KindArrival, Side: stream.S, S: l.sBatch, Free: l.newFree()})
	l.sBatch = nil
}

// Tick advances stream time to ts without submitting a tuple: partial
// batches are flushed, the pipeline settles, and expiries due by ts
// are injected, so windows keep sliding on an idle shard.
func (l *Lane[L, R]) Tick(ts int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tickLocked(ts)
}

func (l *Lane[L, R]) tickLocked(ts int64) {
	l.flushR()
	l.flushS()
	l.lv.Quiesce()
	if seqs := l.popDueS(ts); len(seqs) > 0 {
		l.lv.Inject(pipeline.LeftEnd, core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.S, Seqs: seqs, Free: l.newFreeExpiry()})
	}
	if seqs := l.popDueR(ts); len(seqs) > 0 {
		l.lv.Inject(pipeline.RightEnd, core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.R, Seqs: seqs, Free: l.newFreeExpiry()})
	}
}

// Settle flushes both batch buffers and waits for the pipeline to
// quiesce, without injecting any expiries. Migration drivers use it to
// retire the lane's in-flight arrivals before a handoff commit or a
// slice injection; the cost is bounded by the batch size plus the
// pipeline's in-flight cap, never by the window footprint.
func (l *Lane[L, R]) Settle() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.flushR()
	l.flushS()
	l.lv.Quiesce()
}

// Buffered reports the number of tuples sitting in the lane's batch
// buffers: admitted, not yet handed to the pipeline, and therefore
// invisible to the window gauges. Admission control adds it to the
// live footprint so a resample cannot lose tuples parked between
// admission and the next flush.
func (l *Lane[L, R]) Buffered() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(len(l.rBatch) + len(l.sBatch))
}

// Quiesce waits for the pipeline to drain its in-flight messages
// without flushing the batch buffers. Restore uses it to let replayed
// arrivals land in the window stores before sampling the live footprint;
// the partial batch buffers are reconstructed checkpoint state and must
// stay buffered until the next caller-driven flush.
func (l *Lane[L, R]) Quiesce() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lv.Quiesce()
}

// ProbeR injects t as a probe-only R arrival (core.ArriveProbeOnly):
// it probes the lane's S windows and emits matches, but stores
// nothing, acknowledges nothing and advances no high-water mark. Due S
// expiries are popped first, so the probe cannot match tuples whose
// window closed at or before t.TS — the same boundary rule flushR
// applies to full arrivals. The incremental-migration driver
// double-reads a key-group's arrivals this way while the group's
// window state is split across two lanes.
//
// Probe-only arrivals bypass the batch buffers: they must never be
// batched with full arrivals (Mode is per-message), and buffered
// arrivals of other key-groups cannot join them anyway.
func (l *Lane[L, R]) ProbeR(t stream.Tuple[L]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seqs := l.popDueS(t.TS); len(seqs) > 0 {
		l.lv.Inject(pipeline.LeftEnd, core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.S, Seqs: seqs, Free: l.newFreeExpiry()})
	}
	l.injectProbeR(append(l.takeRBuf(), t))
}

// ProbeS injects t as a probe-only S arrival; see ProbeR.
func (l *Lane[L, R]) ProbeS(t stream.Tuple[R]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seqs := l.popDueR(t.TS); len(seqs) > 0 {
		l.lv.Inject(pipeline.RightEnd, core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.R, Seqs: seqs, Free: l.newFreeExpiry()})
	}
	l.injectProbeS(append(l.takeSBuf(), t))
}

// Heartbeat advances stream time to ts like Tick and additionally
// promises ts on both high-water marks, so the lane's collector can
// punctuate even though no tuple flowed through the pipeline.
//
// The caller must guarantee that every tuple it will ever push to this
// lane afterwards — on either side — carries a timestamp >= ts (the
// sharded engine passes the minimum of the per-side ingress
// timestamps). Under that guarantee the promise is sound: after the
// flush-and-quiesce below, every result derivable from the lane's
// current window contents has been emitted to the result queues, and
// any future result involves at least one future arrival, whose
// timestamp — and therefore the result's (the later of the pair) — is
// >= ts. The collector reads high-water marks before vacuuming the
// result queues, so results emitted before the promise always precede
// the punctuation that carries it.
func (l *Lane[L, R]) Heartbeat(ts int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tickLocked(ts)
	l.lv.AdvanceHWM(stream.R, ts)
	l.lv.AdvanceHWM(stream.S, ts)
}

// QueueDepth reports the number of messages currently in flight inside
// the lane's pipeline — the back-pressure signal load samplers read.
func (l *Lane[L, R]) QueueDepth() int { return l.lv.QueueDepth() }

// GroupState is one key-group's live state, extracted from a lane
// under a consistent cut: the group's window tuples of both sides plus
// their pending expiry-queue entries, by flavor. It is the unit of a
// state migration — Inject replays it into another lane (or back into
// the same one, to abort a move).
type GroupState[L, R any] struct {
	R []stream.Tuple[L]
	S []stream.Tuple[R]
	// RDur/RCnt and SDur/SCnt are the pending duration- and
	// count-bound expiry entries of the extracted tuples, in due
	// order.
	RDur, RCnt []ExpiryEntry
	SDur, SCnt []ExpiryEntry
}

// Tuples returns the number of window tuples the state carries.
func (gs *GroupState[L, R]) Tuples() int { return len(gs.R) + len(gs.S) }

// Extract snapshots and removes one key-group's live state from the
// lane under a consistent cut: buffered batches are flushed, the
// pipeline quiesces (so every pair among the group's tuples has been
// emitted and all expedition flags are settled), and then the matching
// window tuples and their pending expiry entries are taken out. The
// caller must guarantee that no tuple is pushed into the lane for the
// duration (the sharded engine holds both stream-side locks).
//
// With max > 0 the extraction is refused — before modifying anything —
// when the group holds more than max tuples, returning the count and
// ErrMigrationBudget; a mega-group move can so be declined without a
// restart. The lane's punctuation state is untouched either way: high
// water marks only ever advance, and extraction emits nothing.
func (l *Lane[L, R]) Extract(matchR func(L) bool, matchS func(R) bool, max int) (*GroupState[L, R], int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.flushR()
	l.flushS()
	l.lv.Quiesce()

	nodes := make([]core.StateExtractor[L, R], 0, len(l.lv.Nodes()))
	total := 0
	for _, nl := range l.lv.Nodes() {
		ex, ok := nl.(core.StateExtractor[L, R])
		if !ok {
			return nil, 0, ErrNoExtractor
		}
		nr, ns := ex.CountMatching(matchR, matchS)
		total += nr + ns
		nodes = append(nodes, ex)
	}
	if max > 0 && total > max {
		return nil, total, ErrMigrationBudget
	}

	st := &GroupState[L, R]{}
	for _, ex := range nodes {
		rs, ss := ex.ExtractMatching(matchR, matchS)
		st.R = append(st.R, rs...)
		st.S = append(st.S, ss...)
	}
	// Tuples interleave across nodes; restore arrival order so the
	// store-only batches (and any re-injection) are deterministic.
	sort.Slice(st.R, func(i, j int) bool { return st.R[i].Seq < st.R[j].Seq })
	sort.Slice(st.S, func(i, j int) bool { return st.S[i].Seq < st.S[j].Seq })

	rSet := make(map[uint64]struct{}, len(st.R))
	for _, t := range st.R {
		rSet[t.Seq] = struct{}{}
	}
	sSet := make(map[uint64]struct{}, len(st.S))
	for _, t := range st.S {
		sSet[t.Seq] = struct{}{}
	}
	l.expMu.Lock()
	st.RDur, st.RCnt = l.rExp.TakeMatching(func(seq uint64) bool { _, ok := rSet[seq]; return ok })
	st.SDur, st.SCnt = l.sExp.TakeMatching(func(seq uint64) bool { _, ok := sSet[seq]; return ok })
	l.expMu.Unlock()
	return st, total, nil
}

// Inject replays an extracted key-group state into this lane: the
// tuples enter the pipeline as store-only arrivals (they join nothing
// on entry — their past joins were emitted on the lane they came from
// — but participate in every future probe), the pipeline quiesces so
// the copies are settled in their home windows before any new arrival
// can cross them, and only then are the expiry entries absorbed, so an
// expiry can never race its own tuple to the home node. The caller
// must hold off pushes for the duration, as for Extract.
//
// Punctuation safety: store-only arrivals do not advance the stream
// high-water marks, and every future result involving a migrated tuple
// pairs it with a future arrival, whose timestamp bounds the result's
// from below — so neither lane's promise is invalidated and the merged
// punctuation floor never regresses.
func (l *Lane[L, R]) Inject(st *GroupState[L, R]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(st.R) > 0 {
		l.lv.Inject(pipeline.LeftEnd, core.Msg[L, R]{Kind: core.KindArrival, Mode: core.ArriveStoreOnly, Side: stream.R, R: st.R})
	}
	if len(st.S) > 0 {
		l.lv.Inject(pipeline.RightEnd, core.Msg[L, R]{Kind: core.KindArrival, Mode: core.ArriveStoreOnly, Side: stream.S, S: st.S})
	}
	l.lv.Quiesce()
	l.expMu.Lock()
	l.rExp.AbsorbDur(st.RDur)
	l.rExp.AbsorbCnt(st.RCnt)
	l.sExp.AbsorbDur(st.SDur)
	l.sExp.AbsorbCnt(st.SCnt)
	l.expMu.Unlock()
}

// ExtractSlice removes and returns up to max of the oldest live window
// tuples of one key-group — one bounded hop of an incremental
// migration — and reports how many matching tuples remain. With max
// <= 0 the whole group is taken. "Oldest" is stream order across both
// sides (timestamp, ties R before S, then sequence number), so the
// slices a handoff moves are deterministic given the push schedule.
//
// Unlike Extract, ExtractSlice never flushes the batch buffers and
// never counts against a budget: the caller has already committed the
// handoff, so no full arrival of the group can be buffered here
// (buffered arrivals belong to other key-groups, which cannot join the
// extracted tuples), and every hop makes progress. It does wait for
// the pipeline to quiesce — the group's only in-flight traffic are
// probe-only double-reads, which must finish probing the tuples about
// to leave — but that wait is bounded by the in-flight cap, not by the
// group's window footprint, and the expedition flags of the group's
// settled tuples cannot reappear. One hop's work is one pass over the
// lane's windows (the scan that finds the group's tuples) plus
// sorting and moving at most the slice: nothing a hop allocates,
// sorts or extracts grows with the group's remaining size.
//
// The caller must hold off pushes for the duration (the sharded engine
// holds both stream-side locks) and must have settled the lane once at
// handoff commit, so the group's pre-handoff tuples are out of the
// in-flight buffers and their expedition flags are cleared.
func (l *Lane[L, R]) ExtractSlice(matchR func(L) bool, matchS func(R) bool, max int) (*GroupState[L, R], int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lv.Quiesce()

	nodes := make([]core.SliceExtractor[L, R], 0, len(l.lv.Nodes()))
	for _, nl := range l.lv.Nodes() {
		ex, ok := nl.(core.SliceExtractor[L, R])
		if !ok {
			return nil, 0, ErrNoExtractor
		}
		nodes = append(nodes, ex)
	}
	// Peek each node's oldest candidates, then cut the oldest slice
	// across the whole pipeline: homes are round-robin, so each node
	// holds every n-th tuple of the group and no per-node cut is
	// oldest-first globally — but every tuple of the global oldest max
	// is among its own node's oldest max of its side, so the bounded
	// per-node peeks form a sufficient candidate pool.
	type cand struct {
		ts   int64
		side stream.Side
		seq  uint64
	}
	var cands []cand
	total := 0
	perNode := max
	if perNode <= 0 {
		perNode = int(^uint(0) >> 1) // max <= 0: take the whole group
	}
	for _, ex := range nodes {
		rs, ss, nr, ns := ex.PeekOldestMatching(matchR, matchS, perNode)
		total += nr + ns
		for _, t := range rs {
			cands = append(cands, cand{ts: t.TS, side: stream.R, seq: t.Seq})
		}
		for _, t := range ss {
			cands = append(cands, cand{ts: t.TS, side: stream.S, seq: t.Seq})
		}
	}
	if total == 0 {
		return &GroupState[L, R]{}, 0, nil
	}
	if max <= 0 || max > total {
		max = total
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.side != b.side {
			return a.side == stream.R
		}
		return a.seq < b.seq
	})
	rSet := make(map[uint64]struct{})
	sSet := make(map[uint64]struct{})
	for _, c := range cands[:max] {
		if c.side == stream.R {
			rSet[c.seq] = struct{}{}
		} else {
			sSet[c.seq] = struct{}{}
		}
	}

	st := &GroupState[L, R]{}
	for _, ex := range nodes {
		rs, ss := ex.ExtractSeqs(rSet, sSet)
		st.R = append(st.R, rs...)
		st.S = append(st.S, ss...)
	}
	sort.Slice(st.R, func(i, j int) bool { return st.R[i].Seq < st.R[j].Seq })
	sort.Slice(st.S, func(i, j int) bool { return st.S[i].Seq < st.S[j].Seq })

	l.expMu.Lock()
	st.RDur, st.RCnt = l.rExp.TakeMatching(func(seq uint64) bool { _, ok := rSet[seq]; return ok })
	st.SDur, st.SCnt = l.sExp.TakeMatching(func(seq uint64) bool { _, ok := sSet[seq]; return ok })
	l.expMu.Unlock()
	return st, total - max, nil
}

// InjectSlice replays one extracted slice into this lane, with the
// same mechanics and contract as Inject. The slice-migration driver
// must Settle this lane first: the store-only copies may only land
// once every in-flight full arrival of the group — whose probe-only
// double-read already saw the slice on the source lane — has finished
// probing here, or a pair would be emitted twice.
func (l *Lane[L, R]) InjectSlice(st *GroupState[L, R]) { l.Inject(st) }

// Close flushes buffered batches, waits for the pipeline to quiesce,
// and stops the node and collector goroutines. The lane cannot be
// reused afterwards; the engine layer guards against further pushes.
func (l *Lane[L, R]) Close() {
	l.mu.Lock()
	l.flushR()
	l.flushS()
	l.mu.Unlock()
	l.lv.Quiesce()
	l.lv.Stop()
	l.wg.Wait() // collector drains the closed queues, then exits
}

// PipelineStats aggregates this lane's node counters. The counters are
// atomics, so a mid-run read is race-safe; cumulative totals lag the
// pushers by at most the in-flight batches, and gauges reflect the last
// published value of each node.
func (l *Lane[L, R]) PipelineStats() core.Stats { return l.lv.Stats() }

// ExpiryDepth reports the number of pending (not yet due) expiry
// entries across both of the lane's scheduling queues — a backlog gauge
// for live snapshots. Safe to call from any goroutine.
func (l *Lane[L, R]) ExpiryDepth() int {
	l.expMu.Lock()
	defer l.expMu.Unlock()
	return l.rExp.Len() + l.sExp.Len()
}

// HWMFloor returns the smaller of the lane's two stream high-water
// marks — the bound every future punctuation promise clears. Race-safe
// (two atomic loads).
func (l *Lane[L, R]) HWMFloor() int64 {
	r, s := l.lv.HWMR(), l.lv.HWMS()
	if s < r {
		return s
	}
	return r
}

// CollectOnce synchronously runs one collector pass on the caller's
// goroutine: read high-water marks, vacuum every result queue through
// the normal output path, punctuate. A checkpoint calls it after the
// pipeline has quiesced, so that no result is stranded in a queue when
// the downstream sorter state is snapshotted; the pass is serialized
// against the collector's background loop.
func (l *Lane[L, R]) CollectOnce() { l.coll.RunOnce() }

// LaneState is the verbatim serializable state of one lane under a
// consistent cut: the live window tuples of both sides (copies, in
// arrival order), both expiry queues exactly as scheduled, the partial
// batch buffers with their injection high-water marks, and the stream
// high-water marks. Unlike GroupState — migration state, which is
// always flushed, settled, and re-absorbed — LaneState preserves the
// flush schedule itself: buffered tuples stay buffered and unflushed
// expiries stay gated, so a restored lane's future injections happen at
// exactly the stream points the original lane's would have.
type LaneState[L, R any] struct {
	R          []stream.Tuple[L]
	S          []stream.Tuple[R]
	RExp, SExp ExpiryQueueState
	RBatch     []stream.Tuple[L]
	SBatch     []stream.Tuple[R]
	RInj, SInj uint64
	HWMR, HWMS int64
}

// SnapshotState copies the lane's state under a consistent cut without
// modifying it: batch buffers are NOT flushed (the cut preserves them
// verbatim), the pipeline quiesces, and every live window tuple is
// peeked out by copy. The caller must hold off pushes for the duration
// (the sharded engine holds both stream-side locks), exactly as for
// Extract.
func (l *Lane[L, R]) SnapshotState() (*LaneState[L, R], error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lv.Quiesce()

	allR := func(L) bool { return true }
	allS := func(R) bool { return true }
	st := &LaneState[L, R]{}
	for _, nl := range l.lv.Nodes() {
		ex, ok := nl.(core.SliceExtractor[L, R])
		if !ok {
			return nil, ErrNoExtractor
		}
		rs, ss, _, _ := ex.PeekOldestMatching(allR, allS, int(^uint(0)>>1))
		st.R = append(st.R, rs...)
		st.S = append(st.S, ss...)
	}
	sort.Slice(st.R, func(i, j int) bool { return st.R[i].Seq < st.R[j].Seq })
	sort.Slice(st.S, func(i, j int) bool { return st.S[i].Seq < st.S[j].Seq })

	l.expMu.Lock()
	st.RExp = l.rExp.Snapshot()
	st.SExp = l.sExp.Snapshot()
	l.expMu.Unlock()

	st.RBatch = append([]stream.Tuple[L](nil), l.rBatch...)
	st.SBatch = append([]stream.Tuple[R](nil), l.sBatch...)
	st.RInj, st.SInj = l.rInj, l.sInj
	st.HWMR, st.HWMS = l.lv.HWMR(), l.lv.HWMS()
	return st, nil
}

// RestoreState replays a snapshot into a fresh lane: window tuples
// enter as store-only arrivals and settle (indexes rebuild lazily on
// first indexed probe — index structures are never serialized), the
// expiry queues are restored verbatim (injection gates included, so
// entries of still-buffered tuples stay held exactly as they were),
// the batch buffers and injection marks come back, and the high-water
// marks re-advance. The lane must not have admitted any tuple yet, and
// the caller must hold off pushes for the duration.
func (l *Lane[L, R]) RestoreState(st *LaneState[L, R]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(st.R) > 0 {
		l.lv.Inject(pipeline.LeftEnd, core.Msg[L, R]{Kind: core.KindArrival, Mode: core.ArriveStoreOnly, Side: stream.R, R: st.R})
	}
	if len(st.S) > 0 {
		l.lv.Inject(pipeline.RightEnd, core.Msg[L, R]{Kind: core.KindArrival, Mode: core.ArriveStoreOnly, Side: stream.S, S: st.S})
	}
	l.lv.Quiesce()
	l.expMu.Lock()
	l.rExp.RestoreSnapshot(st.RExp)
	l.sExp.RestoreSnapshot(st.SExp)
	l.expMu.Unlock()
	if len(st.RBatch) > 0 {
		l.rBatch = append(l.takeRBuf(), st.RBatch...)
	}
	if len(st.SBatch) > 0 {
		l.sBatch = append(l.takeSBuf(), st.SBatch...)
	}
	l.rInj, l.sInj = st.RInj, st.SInj
	l.lv.AdvanceHWM(stream.R, st.HWMR)
	l.lv.AdvanceHWM(stream.S, st.HWMS)
}

// Collected returns the number of results this lane's collector
// assembled.
func (l *Lane[L, R]) Collected() uint64 { return l.coll.Collected() }

// Punctuations returns the number of punctuations this lane emitted.
func (l *Lane[L, R]) Punctuations() uint64 { return l.coll.Punctuations() }
