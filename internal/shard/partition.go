// Package shard implements the building blocks of the hash-sharded
// engine layer: a key Partitioner, the per-pipeline driver Lane (batch
// buffers, expiry queues, one live pipeline plus its collector), and
// the punctuation-aware Merge that folds per-shard output streams into
// a single, globally punctuated stream.
//
// Sharding multiplies the throughput of an equi-join by running N
// independent low-latency handshake join pipelines side by side: every
// tuple is routed to the pipeline owning its join key, so tuples that
// could ever join always meet in the same pipeline. Each pipeline keeps
// the latency and punctuation guarantees of the single-pipeline
// operator; Merge restores a global punctuation guarantee by tracking
// the minimum punctuation high-water mark across shards.
package shard

// mix is the splitmix64 finalizer — a full-avalanche mixer so that
// join keys drawn from small or structured domains (symbol ids,
// sensor numbers) still spread evenly across shards.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Partitioner maps join keys to shard indices. It is a pure value:
// copies partition identically, and the mapping is stable for the life
// of an engine (tuples of equal keys always share a shard).
type Partitioner struct {
	shards uint64
}

// NewPartitioner returns a Partitioner over n shards. n must be >= 1.
func NewPartitioner(n int) Partitioner {
	if n < 1 {
		panic("shard: Partitioner needs >= 1 shard")
	}
	return Partitioner{shards: uint64(n)}
}

// Shards returns the shard count.
func (p Partitioner) Shards() int { return int(p.shards) }

// Of returns the shard owning the given join key.
func (p Partitioner) Of(key uint64) int { return int(mix(key) % p.shards) }
