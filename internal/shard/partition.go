// Package shard implements the building blocks of the hash-sharded
// engine layer: a key Partitioner, the per-pipeline driver Lane (batch
// buffers, expiry queues, one live pipeline plus its collector), and
// the punctuation-aware Merge that folds per-shard output streams into
// a single, globally punctuated stream.
//
// Sharding multiplies the throughput of an equi-join by running N
// independent low-latency handshake join pipelines side by side: every
// tuple is routed to the pipeline owning its join key, so tuples that
// could ever join always meet in the same pipeline. Each pipeline keeps
// the latency and punctuation guarantees of the single-pipeline
// operator; Merge restores a global punctuation guarantee by tracking
// the minimum punctuation high-water mark across shards.
package shard

import "handshakejoin/internal/probe"

// mix is the splitmix64 finalizer — a full-avalanche mixer so that
// join keys drawn from small or structured domains (symbol ids,
// sensor numbers) still spread evenly across key-groups. It delegates
// to probe.Mix, the single definition every layer shares: the adaptive
// probe engine recomputes a tuple's key-group on the data plane, and a
// divergent mixer would silently desync its statistics from the
// router's.
func mix(x uint64) uint64 { return probe.Mix(x) }

// Mix exposes the key mixer so that routing layers built on top of the
// Partitioner (internal/adapt) group keys identically.
func Mix(x uint64) uint64 { return mix(x) }

// Partitioner maps join keys to shard indices through a two-level
// indirection: a key hashes onto one of G key-groups (G ≫ shard
// count), and an assignment table maps each group to the shard
// currently owning it. The extra level is what makes load-aware
// rebalancing possible — moving one group re-routes a 1/G slice of the
// key space without touching the hash function — while a fresh
// Partitioner still spreads uniform keys evenly (the initial
// assignment is round-robin, so group balance implies shard balance).
//
// A Partitioner is an immutable snapshot: copies partition
// identically, Move returns a new snapshot instead of mutating, and
// the mapping only changes when a routing layer installs a new
// snapshot. Tuples of equal keys always share a group, hence a shard.
type Partitioner struct {
	shards int
	groups uint64
	assign []uint32 // group → shard; never mutated after construction
}

// DefaultGroups returns the default key-group count for n shards:
// enough groups that each shard owns many (so load moves in fine
// slices), bounded so per-group bookkeeping stays small.
func DefaultGroups(n int) int {
	g := 64 * n
	if g < 64 {
		g = 64
	}
	if g > 4096 {
		g = 4096
	}
	if g < n {
		g = n
	}
	return g
}

// NewPartitioner returns a Partitioner over n shards with the default
// group count. n must be >= 1.
func NewPartitioner(n int) Partitioner {
	return NewPartitionerGroups(n, DefaultGroups(n))
}

// NewPartitionerGroups returns a Partitioner over n shards and g
// key-groups, with groups assigned round-robin (group i → shard i mod
// n). Requires n >= 1 and g >= n.
func NewPartitionerGroups(n, g int) Partitioner {
	if n < 1 {
		panic("shard: Partitioner needs >= 1 shard")
	}
	if g < n {
		panic("shard: Partitioner needs at least one group per shard")
	}
	assign := make([]uint32, g)
	for i := range assign {
		assign[i] = uint32(i % n)
	}
	return Partitioner{shards: n, groups: uint64(g), assign: assign}
}

// Shards returns the shard count.
func (p Partitioner) Shards() int { return p.shards }

// Groups returns the key-group count.
func (p Partitioner) Groups() int { return int(p.groups) }

// GroupOf returns the key-group owning the given join key.
func (p Partitioner) GroupOf(key uint64) uint32 { return uint32(mix(key) % p.groups) }

// ShardOfGroup returns the shard a key-group is assigned to.
func (p Partitioner) ShardOfGroup(g uint32) int { return int(p.assign[g]) }

// Of returns the shard owning the given join key.
func (p Partitioner) Of(key uint64) int { return int(p.assign[mix(key)%p.groups]) }

// Move returns a new snapshot with group g reassigned to shard to;
// the receiver is unchanged.
func (p Partitioner) Move(g uint32, to int) Partitioner {
	if to < 0 || to >= p.shards {
		panic("shard: Move target out of range")
	}
	assign := append([]uint32(nil), p.assign...)
	assign[g] = uint32(to)
	return Partitioner{shards: p.shards, groups: p.groups, assign: assign}
}

// Rewire returns a snapshot routing through the given assignment
// table, taking ownership of the slice — the caller must not mutate it
// afterwards (snapshots are immutable). It is the bulk counterpart of
// Move: copy the assignment once, edit many groups, rewire once.
func (p Partitioner) Rewire(assign []uint32) Partitioner {
	if len(assign) != int(p.groups) {
		panic("shard: Rewire assignment length mismatch")
	}
	return Partitioner{shards: p.shards, groups: p.groups, assign: assign}
}

// Assignment returns a copy of the group → shard table.
func (p Partitioner) Assignment() []uint32 { return append([]uint32(nil), p.assign...) }

// AssignmentView returns the group → shard table without copying; the
// slice is immutable by construction and must not be mutated.
func (p Partitioner) AssignmentView() []uint32 { return p.assign }
