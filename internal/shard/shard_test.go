package shard

import (
	"testing"

	"handshakejoin/internal/collect"
)

func TestPartitionerDeterministicAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 13} {
		p := NewPartitioner(n)
		if p.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", p.Shards(), n)
		}
		for key := uint64(0); key < 1000; key++ {
			s := p.Of(key)
			if s < 0 || s >= n {
				t.Fatalf("n=%d key=%d: shard %d out of range", n, key, s)
			}
			if s != p.Of(key) {
				t.Fatalf("n=%d key=%d: non-deterministic", n, key)
			}
		}
	}
}

func TestPartitionerBalancesSequentialKeys(t *testing.T) {
	// Join keys are often small sequential ints (symbols, sensor ids);
	// the mixer must spread them evenly anyway.
	const n, keys = 8, 8000
	p := NewPartitioner(n)
	counts := make([]int, n)
	for key := uint64(0); key < keys; key++ {
		counts[p.Of(key)]++
	}
	want := keys / n
	for s, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("shard %d holds %d of %d keys (want ~%d)", s, c, keys, want)
		}
	}
}

func TestPartitionerGroupIndirection(t *testing.T) {
	const n = 4
	p := NewPartitionerGroups(n, 64)
	if p.Groups() != 64 {
		t.Fatalf("Groups() = %d, want 64", p.Groups())
	}
	for key := uint64(0); key < 2000; key++ {
		g := p.GroupOf(key)
		if p.Of(key) != p.ShardOfGroup(g) {
			t.Fatalf("key %d: Of = %d, but group %d is assigned to %d",
				key, p.Of(key), g, p.ShardOfGroup(g))
		}
	}
}

func TestPartitionerMoveReroutesExactlyOneGroup(t *testing.T) {
	const n, keys = 4, 4000
	p := NewPartitionerGroups(n, 64)
	var g uint32 = p.GroupOf(12345)
	from := p.ShardOfGroup(g)
	to := (from + 1) % n
	q := p.Move(g, to)

	if p.ShardOfGroup(g) == to {
		t.Fatal("Move mutated the receiver snapshot")
	}
	for key := uint64(0); key < keys; key++ {
		want := p.Of(key)
		if p.GroupOf(key) == g {
			want = to
		}
		if got := q.Of(key); got != want {
			t.Fatalf("key %d: moved snapshot routes to %d, want %d", key, got, want)
		}
	}
}

func TestExpiryQueuePopsInDueOrder(t *testing.T) {
	q := NewExpiryQueue(false)
	q.PushDur(1, 10, false)
	q.PushDur(2, 20, false)
	q.PushCnt(3, 15, false)
	if got := q.PopDue(5, 100); len(got) != 0 {
		t.Fatalf("PopDue(5) = %v", got)
	}
	got := q.PopDue(15, 100)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("PopDue(15) = %v, want [1 3]", got)
	}
	if got := q.PopDue(100, 100); len(got) != 1 || got[0] != 2 {
		t.Fatalf("PopDue(100) = %v, want [2]", got)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d entries left", q.Len())
	}
}

func TestExpiryQueueDedupeExactlyOnce(t *testing.T) {
	// Dual-bound windows schedule every tuple twice; whichever bound
	// fires first must win, and the later entry must vanish silently.
	q := NewExpiryQueue(true)
	q.PushDur(7, 100, false) // duration bound, later
	q.PushCnt(7, 30, false)  // count bound fires first
	if got := q.PopDue(30, 100); len(got) != 1 || got[0] != 7 {
		t.Fatalf("PopDue(30) = %v, want [7]", got)
	}
	if got := q.PopDue(200, 100); len(got) != 0 {
		t.Fatalf("duplicate expiry emitted: %v", got)
	}
	if len(q.seen) != 0 {
		t.Fatalf("dedupe bookkeeping leaked: %v", q.seen)
	}

	// And the other way around: duration first, count later.
	q.PushDur(8, 40, false)
	q.PushCnt(8, 60, false)
	if got := q.PopDue(50, 100); len(got) != 1 || got[0] != 8 {
		t.Fatalf("PopDue(50) = %v, want [8]", got)
	}
	if got := q.PopDue(80, 100); len(got) != 0 {
		t.Fatalf("duplicate expiry emitted: %v", got)
	}
}

func TestExpiryQueueHoldsBackUninjectedTuples(t *testing.T) {
	// An expiry must never be released before its tuple's arrival has
	// been injected — otherwise the expiry message overtakes the tuple
	// at the pipeline entry and the tuple is dropped on arrival.
	q := NewExpiryQueue(false)
	q.PushCnt(5, 10, false)
	if got := q.PopDue(50, 5); len(got) != 0 {
		t.Fatalf("expiry for uninjected tuple released: %v", got)
	}
	if got := q.PopDue(50, 6); len(got) != 1 || got[0] != 5 {
		t.Fatalf("PopDue after injection = %v, want [5]", got)
	}
}

type item = collect.Item[int, int]

func punct(ts int64) item { return item{Punct: true, TS: ts} }

func result() item { return item{} } // zero-value Result, Punct = false

func TestMergeGlobalPunctuationIsMinOverShards(t *testing.T) {
	var got []item
	m := NewMerge[int, int](2, func(it item) { got = append(got, it) })

	m.FromShard(0, punct(10))
	if len(got) != 0 {
		t.Fatal("merged punctuation before every shard punctuated")
	}
	m.FromShard(1, punct(4))
	if len(got) != 1 || !got[0].Punct || got[0].TS != 4 {
		t.Fatalf("got %+v, want punct 4", got)
	}
	// Shard 1 catches up: floor moves to shard 0's promise.
	m.FromShard(1, punct(25))
	if len(got) != 2 || got[1].TS != 10 {
		t.Fatalf("got %+v, want punct 10", got)
	}
	// Stale punctuation from shard 0 changes nothing.
	m.FromShard(0, punct(10))
	if len(got) != 2 {
		t.Fatalf("stale punctuation emitted: %+v", got[len(got)-1])
	}
	if m.Punctuations() != 2 {
		t.Fatalf("Punctuations() = %d, want 2", m.Punctuations())
	}
}

func TestMergeCountsResultsPerShard(t *testing.T) {
	var results int
	m := NewMerge[int, int](3, func(it item) {
		if !it.Punct {
			results++
		}
	})
	m.FromShard(0, result())
	m.FromShard(2, result())
	m.FromShard(2, result())
	if results != 3 || m.Results() != 3 {
		t.Fatalf("results = %d / %d, want 3", results, m.Results())
	}
	per := m.ShardResults()
	if per[0] != 1 || per[1] != 0 || per[2] != 2 {
		t.Fatalf("ShardResults() = %v", per)
	}
}

func TestExpiryQueueTakeMatchingAndAbsorb(t *testing.T) {
	// TakeMatching pulls a group's entries out in due order; Absorb
	// merges them into another queue whose own entries have different
	// due times, keeping the head-only PopDue drain correct.
	src := NewExpiryQueue(false)
	src.PushDur(1, 10, false)
	src.PushDur(2, 20, false)
	src.PushDur(3, 30, false)
	src.PushCnt(2, 5, false)
	grp := map[uint64]struct{}{2: {}}
	dur, cnt := src.TakeMatching(func(seq uint64) bool { _, ok := grp[seq]; return ok })
	if len(dur) != 1 || dur[0].Seq != 2 || len(cnt) != 1 || cnt[0].Seq != 2 {
		t.Fatalf("TakeMatching = %v / %v, want seq 2 in both", dur, cnt)
	}
	if src.Len() != 2 {
		t.Fatalf("source queue holds %d entries, want 2", src.Len())
	}

	dst := NewExpiryQueue(false)
	dst.PushDur(100, 15, false)
	dst.PushDur(101, 25, false)
	dst.AbsorbDur(dur)
	dst.AbsorbCnt(cnt)
	// The absorbed entries are settled: the destination's injection
	// high-water mark (0: nothing injected) must not hold them back.
	// The absorbed count entry heads its queue and drains immediately;
	// the duration entry sits behind the destination's own (uninjected)
	// head, which the head-only drain intentionally preserves.
	if got := dst.PopDue(50, 0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("PopDue(50, uninjected) = %v, want absorbed seq 2 (cnt head)", got)
	}
	if got := dst.PopDue(50, 200); len(got) != 3 || got[0] != 100 || got[1] != 2 || got[2] != 101 {
		t.Fatalf("PopDue(50, injected) = %v, want [100 2 101]", got)
	}
	// Due order across absorbed and native entries: absorbed due=20
	// sits between native 15 and 25.
	dst2 := NewExpiryQueue(false)
	dst2.PushDur(100, 15, false)
	dst2.PushDur(101, 25, false)
	dst2.AbsorbDur([]ExpiryEntry{{Seq: 2, Due: 20}})
	var order []uint64
	order = append(order, dst2.PopDue(15, 200)...)
	order = append(order, dst2.PopDue(20, 200)...)
	order = append(order, dst2.PopDue(25, 200)...)
	if len(order) != 3 || order[0] != 100 || order[1] != 2 || order[2] != 101 {
		t.Fatalf("merged drain order = %v, want [100 2 101]", order)
	}
}

func TestExpiryQueueAbsorbIntoDedupe(t *testing.T) {
	// A migrated dual-bound tuple carries both entries; after absorption
	// the destination's dedupe must still fire it exactly once.
	dst := NewExpiryQueue(true)
	dst.AbsorbDur([]ExpiryEntry{{Seq: 9, Due: 40}})
	dst.AbsorbCnt([]ExpiryEntry{{Seq: 9, Due: 10}})
	if got := dst.PopDue(10, 0); len(got) != 1 || got[0] != 9 {
		t.Fatalf("PopDue(10) = %v, want [9]", got)
	}
	if got := dst.PopDue(100, 0); len(got) != 0 {
		t.Fatalf("migrated tuple expired twice: %v", got)
	}
}
