package shard

import (
	"errors"
	"sync"
	"testing"
	"time"

	"handshakejoin/internal/clock"
	"handshakejoin/internal/collect"
	"handshakejoin/internal/core"
	"handshakejoin/internal/hsj"
	"handshakejoin/internal/stream"
)

// newTestLane builds a Batch-1 LLHJ lane over int payloads with an
// equi-join predicate, delivering output to out (nil discards).
func newTestLane(workers int, out func(collect.Item[int, int])) *Lane[int, int] {
	ccfg := &core.Config[int, int]{Nodes: workers, Pred: func(r, s int) bool { return r == s }}
	build := func(k int) core.NodeLogic[int, int] { return core.NewNode(ccfg, k) }
	if out == nil {
		out = func(collect.Item[int, int]) {}
	}
	return NewLane[int, int](LaneConfig{
		Workers:       workers,
		Batch:         1,
		MaxInFlight:   8,
		CollectPeriod: 100 * time.Microsecond,
		Clock:         clock.NewWall(),
	}, build, out)
}

func rt(seq uint64, ts int64, v int) stream.Tuple[int] {
	return stream.Tuple[int]{Seq: seq, TS: ts, Home: stream.NoHome, Payload: v}
}

func matchVal(v int) func(int) bool { return func(p int) bool { return p == v } }

func TestLaneExtractBudgetRefusalLeavesStateUntouched(t *testing.T) {
	// The budget refusal must happen before anything is modified: a
	// refused Extract reports the group's size and a later unbounded
	// Extract still finds every tuple.
	l := newTestLane(3, nil)
	defer l.Close()
	for i := uint64(0); i < 4; i++ {
		l.PushR(rt(i, int64(i)*10, 7))
	}
	l.PushS(rt(0, 5, 7))
	l.PushS(rt(1, 15, 7))
	l.PushR(rt(4, 40, 8)) // another group, must never be touched

	st, n, err := l.Extract(matchVal(7), matchVal(7), 3)
	if !errors.Is(err, ErrMigrationBudget) {
		t.Fatalf("Extract over budget: err = %v, want ErrMigrationBudget", err)
	}
	if st != nil || n != 6 {
		t.Fatalf("refused Extract returned (%v, %d), want (nil, 6)", st, n)
	}

	st, n, err = l.Extract(matchVal(7), matchVal(7), 0)
	if err != nil || n != 6 || st.Tuples() != 6 {
		t.Fatalf("post-refusal Extract = (%d tuples, n=%d, %v), want all 6", st.Tuples(), n, err)
	}
	if st2, _, err := l.Extract(matchVal(8), matchVal(8), 0); err != nil || st2.Tuples() != 1 {
		t.Fatalf("other group state = (%d, %v), want the 1 untouched tuple", st2.Tuples(), err)
	}
}

func TestLaneExtractNoExtractorForHSJ(t *testing.T) {
	// The original handshake join keeps windows in the pipeline
	// segments; state extraction must be refused, not panic.
	hcfg := &hsj.Config[int, int]{Nodes: 2, Pred: func(r, s int) bool { return r == s }, CapR: 8, CapS: 8}
	build := func(k int) core.NodeLogic[int, int] { return hsj.NewNode(hcfg, k) }
	l := NewLane[int, int](LaneConfig{
		Workers: 2, Batch: 1, MaxInFlight: 8,
		CollectPeriod: 100 * time.Microsecond, Clock: clock.NewWall(),
	}, build, func(collect.Item[int, int]) {})
	defer l.Close()
	l.PushR(rt(0, 0, 7))
	if _, _, err := l.Extract(matchVal(7), matchVal(7), 0); !errors.Is(err, ErrNoExtractor) {
		t.Fatalf("Extract on HSJ lane: err = %v, want ErrNoExtractor", err)
	}
	if _, _, err := l.ExtractSlice(matchVal(7), matchVal(7), 2); !errors.Is(err, ErrNoExtractor) {
		t.Fatalf("ExtractSlice on HSJ lane: err = %v, want ErrNoExtractor", err)
	}
}

func TestLaneExtractSliceOldestFirstWithRemaining(t *testing.T) {
	l := newTestLane(3, nil)
	defer l.Close()
	// Interleaved stream order: R0(10) S0(15) R1(20) S1(25) R2(30).
	l.PushR(rt(0, 10, 7))
	l.PushS(rt(0, 15, 7))
	l.PushR(rt(1, 20, 7))
	l.PushS(rt(1, 25, 7))
	l.PushR(rt(2, 30, 7))
	l.PushR(rt(9, 31, 8)) // other group
	// Pending expiries of the group move with their tuples.
	for i := uint64(0); i < 3; i++ {
		l.QueueExpiry(stream.R, i, int64(i)*10+1000, false, false)
	}
	l.Settle()

	st, remaining, err := l.ExtractSlice(matchVal(7), matchVal(7), 3)
	if err != nil {
		t.Fatal(err)
	}
	if remaining != 2 || st.Tuples() != 3 {
		t.Fatalf("slice = %d tuples, remaining %d; want 3 moved, 2 left", st.Tuples(), remaining)
	}
	// Oldest three in stream order: R0, S0, R1.
	if len(st.R) != 2 || st.R[0].Seq != 0 || st.R[1].Seq != 1 || len(st.S) != 1 || st.S[0].Seq != 0 {
		t.Fatalf("slice contents R=%v S=%v, want R[0,1] S[0]", st.R, st.S)
	}
	// Partial expiry take: entries of the moved tuples only.
	if len(st.RDur) != 2 || st.RDur[0].Seq != 0 || st.RDur[1].Seq != 1 {
		t.Fatalf("moved R expiries = %v, want seqs 0,1", st.RDur)
	}

	st2, remaining2, err := l.ExtractSlice(matchVal(7), matchVal(7), 0)
	if err != nil || remaining2 != 0 || st2.Tuples() != 2 {
		t.Fatalf("final slice = (%d, %d, %v), want the last 2 tuples", st2.Tuples(), remaining2, err)
	}
	if len(st2.R) != 1 || st2.R[0].Seq != 2 || len(st2.S) != 1 || st2.S[0].Seq != 1 {
		t.Fatalf("final slice contents R=%v S=%v, want R[2] S[1]", st2.R, st2.S)
	}
	if len(st2.RDur) != 1 || st2.RDur[0].Seq != 2 {
		t.Fatalf("final moved R expiries = %v, want seq 2", st2.RDur)
	}
}

func TestLaneExtractSliceEmptyGroupAndEmptyInject(t *testing.T) {
	l := newTestLane(2, nil)
	defer l.Close()
	l.PushR(rt(0, 10, 8))
	st, remaining, err := l.ExtractSlice(matchVal(7), matchVal(7), 4)
	if err != nil || remaining != 0 || st.Tuples() != 0 {
		t.Fatalf("empty-group slice = (%d, %d, %v), want nothing", st.Tuples(), remaining, err)
	}
	// Injecting an empty state is a no-op on windows and expiry queues.
	l.InjectSlice(st)
	if st2, _, err := l.Extract(matchVal(8), matchVal(8), 0); err != nil || st2.Tuples() != 1 {
		t.Fatalf("bystander group disturbed: (%d, %v)", st2.Tuples(), err)
	}
}

func TestLaneProbeOnlyEmitsWithoutEnteringWindows(t *testing.T) {
	var mu sync.Mutex
	var results []stream.Pair[int, int]
	l := newTestLane(3, func(it collect.Item[int, int]) {
		if it.Punct {
			return
		}
		mu.Lock()
		results = append(results, it.Result.Pair)
		mu.Unlock()
	})
	l.PushR(rt(0, 10, 7))
	l.Settle()
	// The probe-only S must match the stored R exactly once...
	l.ProbeS(rt(100, 20, 7))
	l.Settle()
	// ...and a later R arrival must not find the probe-only S stored.
	l.PushR(rt(1, 30, 7))
	l.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(results) != 1 {
		t.Fatalf("results = %d (%v), want exactly the probe match", len(results), results)
	}
	if results[0].R.Seq != 0 || results[0].S.Seq != 100 {
		t.Fatalf("probe match = %+v, want R0 x S100", results[0])
	}
}

func TestExpiryQueueAbsorbEdgeCases(t *testing.T) {
	// Empty absorb is a no-op.
	q := NewExpiryQueue(false)
	q.AbsorbDur(nil)
	q.AbsorbCnt([]ExpiryEntry{})
	if q.Len() != 0 {
		t.Fatalf("empty absorb grew the queue: %d", q.Len())
	}
	// Absorb into an empty queue: the entries become settled and must
	// drain even though the lane has injected nothing (injectedBelow 0)
	// — the heartbeat-idle destination case.
	q.AbsorbDur([]ExpiryEntry{{Seq: 5, Due: 10}, {Seq: 6, Due: 20}})
	if got := q.PopDue(15, 0); len(got) != 1 || got[0] != 5 {
		t.Fatalf("settled-only PopDue(15, 0) = %v, want [5]", got)
	}
	if got := q.PopDue(25, 0); len(got) != 1 || got[0] != 6 {
		t.Fatalf("settled-only PopDue(25, 0) = %v, want [6]", got)
	}
	// TakeMatching that empties the queue leaves it reusable.
	q2 := NewExpiryQueue(false)
	q2.PushDur(1, 10, false)
	q2.PushCnt(1, 12, false)
	dur, cnt := q2.TakeMatching(func(uint64) bool { return true })
	if len(dur) != 1 || len(cnt) != 1 || q2.Len() != 0 {
		t.Fatalf("full take = %v/%v, len %d", dur, cnt, q2.Len())
	}
	q2.PushDur(2, 30, false)
	if got := q2.PopDue(30, 10); len(got) != 1 || got[0] != 2 {
		t.Fatalf("queue unusable after full take: %v", got)
	}
}
