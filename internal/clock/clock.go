// Package clock abstracts time so the same join operators can run against
// the wall clock (live runtime) or a virtual clock (discrete-event
// simulation). All times are int64 nanoseconds.
package clock

import (
	"sync/atomic"
	"time"
)

// Clock supplies the current time in nanoseconds.
type Clock interface {
	// Now returns the current time in nanoseconds. The origin is
	// implementation-defined; only differences are meaningful.
	Now() int64
}

// Wall is a Clock backed by the monotonic wall clock.
type Wall struct{ origin time.Time }

// NewWall returns a wall clock whose origin is the moment of creation.
func NewWall() *Wall { return &Wall{origin: time.Now()} }

// Now implements Clock.
func (w *Wall) Now() int64 { return int64(time.Since(w.origin)) }

// Virtual is a manually advanced Clock. It is safe for concurrent use;
// Advance never moves time backwards.
type Virtual struct{ now atomic.Int64 }

// NewVirtual returns a virtual clock starting at start nanoseconds.
func NewVirtual(start int64) *Virtual {
	v := &Virtual{}
	v.now.Store(start)
	return v
}

// Now implements Clock.
func (v *Virtual) Now() int64 { return v.now.Load() }

// AdvanceTo moves the clock forward to t; it is a no-op if t is in the
// past.
func (v *Virtual) AdvanceTo(t int64) {
	for {
		cur := v.now.Load()
		if t <= cur {
			return
		}
		if v.now.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Advance moves the clock forward by d nanoseconds and returns the new
// time.
func (v *Virtual) Advance(d int64) int64 { return v.now.Add(d) }
