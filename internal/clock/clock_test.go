package clock

import (
	"sync"
	"testing"
	"time"
)

func TestWallAdvances(t *testing.T) {
	w := NewWall()
	a := w.Now()
	time.Sleep(2 * time.Millisecond)
	b := w.Now()
	if b <= a {
		t.Fatalf("wall clock did not advance: %d -> %d", a, b)
	}
	if a < 0 {
		t.Fatalf("origin should be at creation; got %d", a)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(100)
	if v.Now() != 100 {
		t.Fatalf("start = %d", v.Now())
	}
	if got := v.Advance(50); got != 150 || v.Now() != 150 {
		t.Fatalf("Advance = %d, Now = %d", got, v.Now())
	}
	v.AdvanceTo(140) // backwards: no-op
	if v.Now() != 150 {
		t.Fatalf("AdvanceTo went backwards: %d", v.Now())
	}
	v.AdvanceTo(200)
	if v.Now() != 200 {
		t.Fatalf("AdvanceTo = %d", v.Now())
	}
}

func TestVirtualConcurrentMonotonic(t *testing.T) {
	v := NewVirtual(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				v.AdvanceTo(base + i)
			}
		}(int64(w * 300))
	}
	wg.Wait()
	if v.Now() != 1899 {
		t.Fatalf("final = %d, want max of all targets 1899", v.Now())
	}
}
