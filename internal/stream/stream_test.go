package stream

import "testing"

func TestSideOppositeAndString(t *testing.T) {
	if R.Opposite() != S || S.Opposite() != R {
		t.Fatal("Opposite broken")
	}
	if R.String() != "R" || S.String() != "S" {
		t.Fatalf("String: %s %s", R, S)
	}
	if Side(9).String() == "R" {
		t.Fatal("unknown side stringifies as R")
	}
}

func TestPairTS(t *testing.T) {
	p := Pair[int, int]{
		R: Tuple[int]{Seq: 1, TS: 100},
		S: Tuple[int]{Seq: 2, TS: 250},
	}
	if p.TS() != 250 {
		t.Fatalf("TS = %d, want the later timestamp 250", p.TS())
	}
	p.R.TS = 300
	if p.TS() != 300 {
		t.Fatalf("TS = %d, want 300", p.TS())
	}
}

func TestPairKey(t *testing.T) {
	p := Pair[string, bool]{
		R: Tuple[string]{Seq: 7},
		S: Tuple[bool]{Seq: 9},
	}
	if k := p.Key(); k.RSeq != 7 || k.SSeq != 9 {
		t.Fatalf("Key = %+v", k)
	}
}
