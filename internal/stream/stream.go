// Package stream defines the tuple model shared by every join operator in
// this repository: sides, sequence numbers, timestamps, tuples with a
// generic payload, and batches as they travel through a join pipeline.
//
// Timestamps are virtual nanoseconds. In live runs they are derived from
// the wall clock; in simulated runs they are assigned by the virtual
// clock. All operators require timestamps to be non-decreasing per input
// stream ("monotonic streams"); the punctuation mechanism of §6 of the
// paper depends on this.
package stream

import "fmt"

// Side identifies one of the two join inputs. Following the paper, R
// tuples flow left-to-right through a pipeline and S tuples right-to-left.
type Side uint8

const (
	// R is the left input stream.
	R Side = 0
	// S is the right input stream.
	S Side = 1
)

// Opposite returns the other side.
func (sd Side) Opposite() Side { return sd ^ 1 }

// String implements fmt.Stringer.
func (sd Side) String() string {
	switch sd {
	case R:
		return "R"
	case S:
		return "S"
	default:
		return fmt.Sprintf("Side(%d)", uint8(sd))
	}
}

// NoHome marks a tuple that has not been assigned a home node yet.
const NoHome = -1

// Tuple is a stream element carrying a payload of type T.
//
// Seq is the position of the tuple within its own input stream (0-based,
// dense). TS is the logical arrival timestamp in virtual nanoseconds.
// Wall is the injection time used for latency accounting; in live mode it
// equals the wall-clock nanotime at which the driver pushed the tuple
// into the pipeline, in simulated mode it equals TS.
//
// Home is the pipeline node on which the tuple's stored copy lives
// (low-latency handshake join only); it is NoHome until the entry node
// tags the tuple.
type Tuple[T any] struct {
	Seq     uint64
	TS      int64
	Wall    int64
	Home    int
	Payload T
}

// Pair is a join result: the matching R and S tuples.
type Pair[L, R any] struct {
	R Tuple[L]
	S Tuple[R]
}

// TS returns the result timestamp as defined in §6.1.2 of the paper:
// the later of the two input timestamps.
func (p Pair[L, R]) TS() int64 {
	if p.R.TS >= p.S.TS {
		return p.R.TS
	}
	return p.S.TS
}

// Key returns a canonical identifier for the pair, used by tests to
// compare result multisets across operators.
func (p Pair[L, R]) Key() PairKey { return PairKey{RSeq: p.R.Seq, SSeq: p.S.Seq} }

// PairKey identifies a join pair by the sequence numbers of its inputs.
type PairKey struct {
	RSeq uint64
	SSeq uint64
}

// Predicate decides whether an R payload joins with an S payload.
type Predicate[L, R any] func(L, R) bool

// KeyFunc extracts an equi-join key from a payload; used to enable
// node-local hash indexes (§7.6 of the paper).
type KeyFunc[T any] func(T) uint64
