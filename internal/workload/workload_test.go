package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(DefaultConfig(1000))
	g2 := NewGenerator(DefaultConfig(1000))
	for i := 0; i < 100; i++ {
		a, b := g1.NextR(), g2.NextR()
		if a != b {
			t.Fatalf("R tuple %d differs: %+v vs %+v", i, a, b)
		}
		c, d := g1.NextS(), g2.NextS()
		if c != d {
			t.Fatalf("S tuple %d differs", i)
		}
	}
}

func TestGeneratorTimestampsAndSeqs(t *testing.T) {
	g := NewGenerator(DefaultConfig(2000)) // 0.5 ms period
	var lastTS int64 = -1
	for i := 0; i < 50; i++ {
		r := g.NextR()
		if r.Seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", r.Seq, i)
		}
		if r.TS < lastTS {
			t.Fatalf("timestamps regressed at %d", i)
		}
		lastTS = r.TS
	}
	if lastTS != int64(49*5e5) {
		t.Fatalf("ts of tuple 49 = %d, want %d", lastTS, int64(49*5e5))
	}
}

func TestAttributeDomain(t *testing.T) {
	cfg := DefaultConfig(1000)
	g := NewGenerator(cfg)
	for i := 0; i < 5000; i++ {
		r := g.NextR()
		if r.Payload.X < 1 || r.Payload.X > int32(cfg.Domain) {
			t.Fatalf("X = %d outside 1..%d", r.Payload.X, cfg.Domain)
		}
		s := g.NextS()
		if s.Payload.A < 1 || s.Payload.A > int32(cfg.Domain) {
			t.Fatalf("A = %d outside domain", s.Payload.A)
		}
	}
}

func TestBandHitRateApproximatesPaper(t *testing.T) {
	// The paper reports a 1:250,000 hit rate for the band join on the
	// 1..10,000 domain. Sample random pairs and compare within noise.
	cfg := DefaultConfig(1000)
	g := NewGenerator(cfg)
	rs, ss := g.Batch(3000)
	hits := 0
	for _, r := range rs {
		for _, s := range ss {
			if BandPredicate(r.Payload, s.Payload) {
				hits++
			}
		}
	}
	got := float64(hits) / float64(len(rs)*len(ss))
	want := cfg.ExpectedHitRate() // ≈ 4.4e-6 ≈ 1:227,000
	if got < want/3 || got > want*3 {
		t.Fatalf("hit rate %.2e, want within 3x of %.2e", got, want)
	}
	if math.Abs(want-1/250000.0) > want {
		t.Fatalf("ExpectedHitRate %.2e too far from the paper's 1:250,000", want)
	}
}

func TestPredicatesConsistency(t *testing.T) {
	r := RTuple{X: 100, Y: 50}
	if !BandPredicate(r, STuple{A: 105, B: 45}) {
		t.Fatal("band predicate rejected in-band pair")
	}
	if BandPredicate(r, STuple{A: 111, B: 50}) {
		t.Fatal("band predicate accepted out-of-band x")
	}
	if BandPredicate(r, STuple{A: 100, B: 61}) {
		t.Fatal("band predicate accepted out-of-band y")
	}
	if !EquiPredicate(r, STuple{A: 100}) || EquiPredicate(r, STuple{A: 101}) {
		t.Fatal("equi predicate wrong")
	}
	if RKey(r) != SKey(STuple{A: 100}) {
		t.Fatal("keys of matching tuples differ")
	}
}

func TestEquiPredicateAgreesWithKeys(t *testing.T) {
	check := func(x, a int32) bool {
		r, s := RTuple{X: x}, STuple{A: a}
		return EquiPredicate(r, s) == (RKey(r) == SKey(s))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandStatistics(t *testing.T) {
	r := NewRand(7)
	const n = 200000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
		buckets[int(f*10)]++
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
	for i, c := range buckets {
		if c < n/10*8/10 || c > n/10*12/10 {
			t.Fatalf("bucket %d count %d far from uniform %d", i, c, n/10)
		}
	}
	if NewRand(0).Uint64() == 0 {
		t.Fatal("zero seed not replaced")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Fatal("Intn of non-positive n should be 0")
	}
}

func TestZipfSkewAndDeterminism(t *testing.T) {
	const n, draws = 1000, 200000
	z := NewZipf(NewRand(7), 1.0, n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v >= n {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// At theta=1 over n=1000, P(0) = 1/H(1000) ≈ 13.4%; allow wide
	// sampling slack but require clear skew and a 1/k-ish decay.
	if frac := float64(counts[0]) / draws; frac < 0.10 || frac > 0.17 {
		t.Fatalf("P(hottest) = %.3f, want ≈ 0.134", frac)
	}
	if counts[0] < 8*counts[9] {
		t.Fatalf("decay too shallow: counts[0]=%d counts[9]=%d (want ≈10x)", counts[0], counts[9])
	}

	// Same seed, same sequence.
	a, b := NewZipf(NewRand(11), 1.5, 64), NewZipf(NewRand(11), 1.5, 64)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("Zipf not deterministic for equal seeds")
		}
	}
}

func TestZipfThetaZeroIsUniformish(t *testing.T) {
	const n, draws = 16, 160000
	z := NewZipf(NewRand(5), 0, n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Fatalf("theta=0 bucket %d count %d far from uniform %d", i, c, draws/n)
		}
	}
}
