// Package workload generates the benchmark inputs used throughout the
// paper's evaluation (§7.1), which in turn reuses the CellJoin benchmark
// of Gedik et al.:
//
//	stream R = ⟨ x:int, y:float, z:char[20] ⟩
//	stream S = ⟨ a:int, b:float, c:double, d:bool ⟩
//
// joined by the two-dimensional band predicate
//
//	r.x BETWEEN s.a−10 AND s.a+10  AND  r.y BETWEEN s.b−10 AND s.b+10
//
// with join attributes drawn uniformly from 1–10,000, giving a join hit
// rate of about 1:250,000. An equi-join variant (used for the
// index-acceleration experiment, Table 2) is also provided.
//
// The generator is deterministic given a seed, so every experiment and
// test in this repository is reproducible.
package workload

import (
	"math"

	"handshakejoin/internal/stream"
)

// RTuple is the payload of stream R in the benchmark schema.
type RTuple struct {
	X int32
	Y float32
	Z [20]byte
}

// STuple is the payload of stream S in the benchmark schema.
type STuple struct {
	A int32
	B float32
	C float64
	D bool
}

// BandPredicate is the paper's two-dimensional band join condition.
func BandPredicate(r RTuple, s STuple) bool {
	return r.X >= s.A-10 && r.X <= s.A+10 &&
		r.Y >= s.B-10 && r.Y <= s.B+10
}

// EquiPredicate is the hash-friendly variant used for Table 2: equality
// on the integer attribute.
func EquiPredicate(r RTuple, s STuple) bool { return r.X == s.A }

// RKey and SKey extract the equi-join key, enabling node-local hash
// indexes.
func RKey(r RTuple) uint64 { return uint64(uint32(r.X)) }

// SKey extracts the equi-join key of an S tuple.
func SKey(s STuple) uint64 { return uint64(uint32(s.A)) }

// Rand is a small deterministic xorshift64* PRNG. We avoid math/rand so
// that generator state is a plain value that can be embedded, copied and
// replayed cheaply.
type Rand struct{ state uint64 }

// NewRand seeds a generator; a zero seed is replaced by a fixed constant.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next pseudo-random value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Zipf draws values from {0, …, n−1} with P(k) ∝ 1/(k+1)^theta — the
// skewed key distribution of the adaptive-sharding experiments. It
// inverts the exact cumulative distribution with a binary search per
// draw (O(n) floats of setup, O(log n) per value), so any theta > 0
// works, including theta >= 1 where the Gray et al. closed form does
// not apply. Deterministic given the Rand it draws from.
type Zipf struct {
	rnd *Rand
	cdf []float64
}

// NewZipf returns a Zipf distribution over n values with exponent
// theta, drawing randomness from rnd. n must be >= 1; theta <= 0
// degenerates to uniform.
func NewZipf(rnd *Rand, theta float64, n int) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), theta)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{rnd: rnd, cdf: cdf}
}

// Next draws the next value; 0 is the most frequent.
func (z *Zipf) Next() uint64 {
	u := z.rnd.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}

// Config parameterizes a Generator.
type Config struct {
	Seed uint64
	// Domain is the size of the uniform join-attribute domain
	// (paper: 10,000 → band hit rate 1:250,000).
	Domain int
	// RatePerSec is the per-stream input rate in tuples/second used to
	// assign timestamps (|R| = |S| as in §7.1).
	RatePerSec float64
}

// DefaultConfig returns the paper's benchmark configuration at the given
// rate.
func DefaultConfig(rate float64) Config {
	return Config{Seed: 42, Domain: 10000, RatePerSec: rate}
}

// Generator produces the two benchmark streams with monotonically
// increasing timestamps at the configured rate. R and S are interleaved
// by timestamp, alternating deterministically.
type Generator struct {
	cfg     Config
	rnd     *Rand
	rSeq    uint64
	sSeq    uint64
	periodN float64 // nanoseconds between consecutive tuples of one stream
}

// NewGenerator returns a deterministic Generator for cfg.
func NewGenerator(cfg Config) *Generator {
	if cfg.Domain <= 0 {
		cfg.Domain = 10000
	}
	if cfg.RatePerSec <= 0 {
		cfg.RatePerSec = 1000
	}
	return &Generator{
		cfg:     cfg,
		rnd:     NewRand(cfg.Seed),
		periodN: 1e9 / cfg.RatePerSec,
	}
}

// NextR produces the next R tuple.
func (g *Generator) NextR() stream.Tuple[RTuple] {
	ts := int64(float64(g.rSeq) * g.periodN)
	t := stream.Tuple[RTuple]{
		Seq:  g.rSeq,
		TS:   ts,
		Wall: ts,
		Home: stream.NoHome,
		Payload: RTuple{
			X: int32(1 + g.rnd.Intn(g.cfg.Domain)),
			Y: float32(1 + g.rnd.Intn(g.cfg.Domain)),
		},
	}
	copy(t.Payload.Z[:], "celljoin-benchmark")
	g.rSeq++
	return t
}

// NextS produces the next S tuple.
func (g *Generator) NextS() stream.Tuple[STuple] {
	ts := int64(float64(g.sSeq) * g.periodN)
	t := stream.Tuple[STuple]{
		Seq:  g.sSeq,
		TS:   ts,
		Wall: ts,
		Home: stream.NoHome,
		Payload: STuple{
			A: int32(1 + g.rnd.Intn(g.cfg.Domain)),
			B: float32(1 + g.rnd.Intn(g.cfg.Domain)),
			C: g.rnd.Float64(),
			D: g.rnd.Uint64()&1 == 0,
		},
	}
	g.sSeq++
	return t
}

// Batch generates n tuples of each stream.
func (g *Generator) Batch(n int) (rs []stream.Tuple[RTuple], ss []stream.Tuple[STuple]) {
	rs = make([]stream.Tuple[RTuple], n)
	ss = make([]stream.Tuple[STuple], n)
	for i := 0; i < n; i++ {
		rs[i] = g.NextR()
		ss[i] = g.NextS()
	}
	return rs, ss
}

// ExpectedHitRate returns the analytic probability that a random (r, s)
// pair under cfg satisfies the band predicate.
func (c Config) ExpectedHitRate() float64 {
	d := float64(c.Domain)
	// For each dimension, P(|u−v| ≤ 10) with u,v uniform on 1..d is
	// approximately 21/d (exact: (21d − 110 − 10)/d² for d > 21; the
	// approximation is what the paper's 1:250,000 figure uses).
	p := 21.0 / d
	return p * p
}
