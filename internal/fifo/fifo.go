// Package fifo provides the bounded, strictly ordered, point-to-point
// message channels that connect neighbouring cores in a handshake-join
// pipeline.
//
// The correctness of low-latency handshake join (and of the original
// handshake join) depends on a strong property of these links: all
// messages from one node to its neighbour travel through the *same*
// FIFO channel regardless of message type, so an acknowledgement or an
// expedition-end message can never overtake a tuple arrival (§4.2.3 of
// the paper). Both implementations below guarantee strict FIFO order.
//
// Two implementations are provided behind the Queue interface:
//
//   - Ring: a lock-free single-producer/single-consumer ring buffer in
//     the spirit of the Multikernel-style asynchronous channels the paper
//     cites ([4] Baumann et al.). This is the default for live pipelines,
//     where each link has exactly one producing and one consuming
//     goroutine.
//   - Chan: a thin wrapper around a buffered Go channel, safe for
//     multiple producers/consumers; used where SPSC discipline does not
//     hold (e.g. result queues written by a node and drained by the
//     collector).
package fifo

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by Put after Close.
var ErrClosed = errors.New("fifo: closed")

// Queue is a bounded FIFO of values of type T.
type Queue[T any] interface {
	// TryPut appends v; it returns false if the queue is full, and
	// ErrClosed if the queue has been closed.
	TryPut(v T) (bool, error)
	// TryGet removes the oldest value; ok is false if the queue is
	// empty. closed reports that the queue is closed *and* drained.
	TryGet() (v T, ok bool, closed bool)
	// Len returns the current number of queued values.
	Len() int
	// Cap returns the capacity.
	Cap() int
	// Close marks the queue closed. Pending values can still be drained.
	Close()
}

// Ring is a bounded lock-free SPSC queue. Exactly one goroutine may call
// TryPut (and Close) and exactly one may call TryGet; Len may be called
// from anywhere.
type Ring[T any] struct {
	buf    []T
	mask   uint64
	_      [48]byte // keep head and tail on separate cache lines
	head   atomic.Uint64
	_      [56]byte
	tail   atomic.Uint64
	_      [56]byte
	closed atomic.Bool
}

// NewRing returns a Ring with capacity rounded up to a power of two (at
// least 2).
func NewRing[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// TryPut implements Queue.
func (r *Ring[T]) TryPut(v T) (bool, error) {
	if r.closed.Load() {
		return false, ErrClosed
	}
	tail := r.tail.Load()
	if tail-r.head.Load() == uint64(len(r.buf)) {
		return false, nil // full
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1) // release: publish the slot
	return true, nil
}

// TryGet implements Queue.
func (r *Ring[T]) TryGet() (v T, ok bool, closed bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		if r.closed.Load() && head == r.tail.Load() {
			return v, false, true
		}
		return v, false, false
	}
	v = r.buf[head&r.mask]
	var zero T
	r.buf[head&r.mask] = zero // release reference for GC
	r.head.Store(head + 1)
	return v, true, false
}

// Len implements Queue.
func (r *Ring[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Cap implements Queue.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Close implements Queue.
func (r *Ring[T]) Close() { r.closed.Store(true) }

// Deque is an unbounded FIFO protected by a mutex, used for the
// interior links of live pipelines. Interior links must never block the
// sender: two neighbouring nodes each blocked on a full link toward the
// other would deadlock. Back-pressure is applied only at the pipeline
// entry points, which bounds interior occupancy in practice (see
// pipeline.Live). Strict FIFO order is preserved for all message kinds.
type Deque[T any] struct {
	mu     sync.Mutex
	buf    []T
	head   int
	count  int
	closed bool
}

// NewDeque returns an empty unbounded FIFO with the given initial
// capacity hint.
func NewDeque[T any](hint int) *Deque[T] {
	if hint < 8 {
		hint = 8
	}
	return &Deque[T]{buf: make([]T, hint)}
}

// Put appends v; it returns ErrClosed after Close and never blocks.
func (d *Deque[T]) Put(v T) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.count == len(d.buf) {
		grown := make([]T, 2*len(d.buf))
		n := copy(grown, d.buf[d.head:])
		copy(grown[n:], d.buf[:d.head])
		d.buf = grown
		d.head = 0
	}
	d.buf[(d.head+d.count)%len(d.buf)] = v
	d.count++
	return nil
}

// TryPut implements Queue (never reports full).
func (d *Deque[T]) TryPut(v T) (bool, error) {
	if err := d.Put(v); err != nil {
		return false, err
	}
	return true, nil
}

// TryGet implements Queue.
func (d *Deque[T]) TryGet() (v T, ok bool, closed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 {
		return v, false, d.closed
	}
	v = d.buf[d.head]
	var zero T
	d.buf[d.head] = zero
	d.head = (d.head + 1) % len(d.buf)
	d.count--
	return v, true, false
}

// Len implements Queue.
func (d *Deque[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Cap implements Queue; a Deque is unbounded, so Cap reports the current
// backing capacity.
func (d *Deque[T]) Cap() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.buf)
}

// Close implements Queue.
func (d *Deque[T]) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
}

// Chan is a Queue backed by a buffered Go channel. It is safe for any
// number of producers and consumers.
type Chan[T any] struct {
	ch     chan T
	closed atomic.Bool
}

// NewChan returns a channel-backed queue with the given capacity.
func NewChan[T any](capacity int) *Chan[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Chan[T]{ch: make(chan T, capacity)}
}

// TryPut implements Queue.
func (c *Chan[T]) TryPut(v T) (bool, error) {
	if c.closed.Load() {
		return false, ErrClosed
	}
	select {
	case c.ch <- v:
		return true, nil
	default:
		return false, nil
	}
}

// TryGet implements Queue.
func (c *Chan[T]) TryGet() (v T, ok bool, closed bool) {
	select {
	case v, ok := <-c.ch:
		if !ok {
			return v, false, true
		}
		return v, true, false
	default:
		if c.closed.Load() {
			// Drain anything racing with Close.
			select {
			case v, ok := <-c.ch:
				if !ok {
					return v, false, true
				}
				return v, true, false
			default:
				return v, false, true
			}
		}
		return v, false, false
	}
}

// Len implements Queue.
func (c *Chan[T]) Len() int { return len(c.ch) }

// Cap implements Queue.
func (c *Chan[T]) Cap() int { return cap(c.ch) }

// Close implements Queue. It must be called at most once and only by the
// producer side.
func (c *Chan[T]) Close() {
	if c.closed.CompareAndSwap(false, true) {
		close(c.ch)
	}
}
