package fifo

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

// queues under test, constructed fresh per case.
func implementations(capacity int) map[string]Queue[int] {
	return map[string]Queue[int]{
		"ring":  NewRing[int](capacity),
		"deque": NewDeque[int](capacity),
		"chan":  NewChan[int](capacity),
	}
}

func TestQueueBasicFIFO(t *testing.T) {
	for name, q := range implementations(8) {
		t.Run(name, func(t *testing.T) {
			if _, ok, _ := q.TryGet(); ok {
				t.Fatal("empty queue returned a value")
			}
			for i := 0; i < 5; i++ {
				if ok, err := q.TryPut(i); !ok || err != nil {
					t.Fatalf("put %d failed: ok=%v err=%v", i, ok, err)
				}
			}
			if q.Len() != 5 {
				t.Fatalf("Len = %d, want 5", q.Len())
			}
			for i := 0; i < 5; i++ {
				v, ok, _ := q.TryGet()
				if !ok || v != i {
					t.Fatalf("get %d: got (%v, %v)", i, v, ok)
				}
			}
		})
	}
}

func TestQueueBoundedCapacity(t *testing.T) {
	// Ring and Chan are bounded; Deque is not.
	for _, name := range []string{"ring", "chan"} {
		q := implementations(4)[name]
		t.Run(name, func(t *testing.T) {
			puts := 0
			for i := 0; i < 100; i++ {
				ok, err := q.TryPut(i)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					puts++
				}
			}
			if puts != q.Cap() {
				t.Fatalf("accepted %d puts, want capacity %d", puts, q.Cap())
			}
		})
	}
	t.Run("deque", func(t *testing.T) {
		q := NewDeque[int](4)
		for i := 0; i < 1000; i++ {
			if err := q.Put(i); err != nil {
				t.Fatal(err)
			}
		}
		if q.Len() != 1000 {
			t.Fatalf("Len = %d, want 1000 (unbounded)", q.Len())
		}
		for i := 0; i < 1000; i++ {
			v, ok, _ := q.TryGet()
			if !ok || v != i {
				t.Fatalf("get %d: got (%v, %v) — wraparound growth broke FIFO order", i, v, ok)
			}
		}
	})
}

func TestQueueClose(t *testing.T) {
	for name, q := range implementations(8) {
		t.Run(name, func(t *testing.T) {
			q.TryPut(1)
			q.TryPut(2)
			q.Close()
			if _, err := q.TryPut(3); err != ErrClosed {
				t.Fatalf("put after close: err = %v, want ErrClosed", err)
			}
			// Pending values still drain.
			v, ok, _ := q.TryGet()
			if !ok || v != 1 {
				t.Fatalf("drain after close: got (%v, %v)", v, ok)
			}
			q.TryGet()
			if _, ok, closed := q.TryGet(); ok || !closed {
				t.Fatalf("exhausted closed queue: ok=%v closed=%v, want closed signal", ok, closed)
			}
		})
	}
}

func TestRingSPSCOrderUnderConcurrency(t *testing.T) {
	// One producer, one consumer, full speed: the consumer must see
	// exactly 0..n-1 in order. This is the property the pipeline links
	// rely on.
	const n = 50000
	q := NewRing[int](256)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if ok, _ := q.TryPut(i); ok {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	next := 0
	for next < n {
		v, ok, _ := q.TryGet()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != next {
			t.Fatalf("out of order: got %d, want %d", v, next)
		}
		next++
	}
	wg.Wait()
}

func TestDequeConcurrentProducerConsumer(t *testing.T) {
	const n = 50000
	q := NewDeque[int](8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := q.Put(i); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	next := 0
	for next < n {
		v, ok, _ := q.TryGet()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != next {
			t.Fatalf("out of order: got %d, want %d", v, next)
		}
		next++
	}
	wg.Wait()
}

func TestRingCapacityRounding(t *testing.T) {
	for _, c := range []int{1, 2, 3, 5, 16, 100} {
		r := NewRing[int](c)
		if r.Cap() < c || r.Cap()&(r.Cap()-1) != 0 {
			t.Errorf("NewRing(%d).Cap() = %d, want power of two >= %d", c, r.Cap(), c)
		}
	}
}

func TestQueuePropertyRandomOps(t *testing.T) {
	// Property: for any sequence of put/get operations, a Queue behaves
	// exactly like a slice-backed reference FIFO (Ring modulo its
	// capacity bound, Deque exactly).
	checkRing := func(ops []uint8) bool {
		q := NewRing[int](16)
		var ref []int
		counter := 0
		for _, op := range ops {
			if op%2 == 0 {
				ok, _ := q.TryPut(counter)
				if ok {
					ref = append(ref, counter)
				} else if len(ref) < q.Cap() {
					return false // rejected although not full
				}
				counter++
			} else {
				v, ok, _ := q.TryGet()
				if len(ref) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != ref[0] {
					return false
				}
				ref = ref[1:]
			}
		}
		return q.Len() == len(ref)
	}
	checkDeque := func(ops []uint8) bool {
		q := NewDeque[int](2)
		var ref []int
		counter := 0
		for _, op := range ops {
			if op%3 != 0 { // bias toward puts to force growth
				q.Put(counter)
				ref = append(ref, counter)
				counter++
			} else {
				v, ok, _ := q.TryGet()
				if len(ref) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != ref[0] {
					return false
				}
				ref = ref[1:]
			}
		}
		return q.Len() == len(ref)
	}
	if err := quick.Check(checkRing, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("ring: %v", err)
	}
	if err := quick.Check(checkDeque, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("deque: %v", err)
	}
}
