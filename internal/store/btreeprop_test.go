package store

import (
	"math/rand"
	"sort"
	"testing"

	"handshakejoin/internal/stream"
)

// The tests in this file pin the ordered-index half of the window
// store's maintenance contract: a B-tree attached to a window — at
// construction or lazily mid-life — must answer every RangeProbe
// exactly like a linear scan of the live entries would, through random
// insert/remove/expedite schedules, in-place compactions, overflow
// spills, and Enable/Disable rebuild cycles of both indexes. This is
// the foundation the adaptive probe engine stands on when it flips a
// key-group onto UseBTree against a window that has lived through
// arbitrary churn.

// rangeProbeRef derives RangeProbe's exact answer from first
// principles: the live entries with lo <= key <= hi, in the B-tree's
// (key, seq) iteration order.
func (r *refWindow) rangeProbeRef(lo, hi uint64, settledOnly bool) []uint64 {
	type ks struct {
		key, seq uint64
	}
	var hits []ks
	for i := range r.ents {
		k := r.key(r.ents[i].pay)
		if k < lo || k > hi {
			continue
		}
		if settledOnly && r.ents[i].expedited {
			continue
		}
		hits = append(hits, ks{key: k, seq: r.ents[i].seq})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].key != hits[b].key {
			return hits[a].key < hits[b].key
		}
		return hits[a].seq < hits[b].seq
	})
	seqs := make([]uint64, len(hits))
	for i := range hits {
		seqs[i] = hits[i].seq
	}
	return seqs
}

// compareRange checks RangeProbe over a band against the reference.
func compareRange(t *testing.T, seed int64, step int, w *Window[int], ref *refWindow, lo, hi uint64, settledOnly bool) {
	t.Helper()
	var got []uint64
	w.RangeProbe(lo, hi, settledOnly, func(tp stream.Tuple[int]) { got = append(got, tp.Seq) })
	want := ref.rangeProbeRef(lo, hi, settledOnly)
	if len(got) != len(want) {
		t.Fatalf("seed %d step %d: RangeProbe(%d, %d, %v) = %v, ref %v", seed, step, lo, hi, settledOnly, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("seed %d step %d: RangeProbe(%d, %d, %v) = %v, ref %v (order)", seed, step, lo, hi, settledOnly, got, want)
		}
	}
}

// TestBTreeRangePropertyVsScanReference drives a lazily indexed window
// and the map-backed reference through identical random schedules —
// sparse monotone inserts, expedite flips, front expiries, extraction
// holes, below-base injections, idle-then-burst seq jumps — while
// periodically tearing the hash and B-tree indexes down and rebuilding
// them mid-life, exactly as the adaptive dispatcher does. After every
// step, RangeProbe over random bands (stride 1 and a 3-node residue)
// must equal the linear-scan reference, and when the hash index is up,
// Probe must too.
func TestBTreeRangePropertyVsScanReference(t *testing.T) {
	const keySpace = 11
	for _, stride := range []int{1, 3} {
		for seed := int64(1); seed <= 4; seed++ {
			rnd := rand.New(rand.NewSource(seed * 6143))
			keyFn := func(v int) uint64 { return uint64(v) % keySpace }
			w := NewWindow(
				WithStride[int](stride),
				WithKeyFunc(keyFn), // scan mode: indexes attach lazily below
			)
			w.EnableBTree()
			ref := &refWindow{key: keyFn}
			residue := uint64(0)
			if stride > 1 {
				residue = uint64(rnd.Intn(stride))
			}
			next := residue
			st := uint64(stride)
			used := map[uint64]bool{}
			pay := 0
			insertAt := func(seq uint64, settledFlag bool) {
				pay++
				used[seq] = true
				tpl := tup(seq, pay)
				if settledFlag {
					w.InsertSettled(tpl)
				} else {
					w.Insert(tpl)
				}
				ref.insert(seq, pay, !settledFlag)
			}
			for step := 0; step < 700; step++ {
				switch op := rnd.Intn(100); {
				case op < 40: // sparse monotone insert
					next += st * uint64(1+rnd.Intn(8))
					insertAt(next, rnd.Intn(2) == 0)
				case op < 48: // expedite flip
					if len(ref.ents) > 0 {
						seq := ref.ents[rnd.Intn(len(ref.ents))].seq
						ref.clear(seq)
						if !w.ClearExpedition(seq) {
							t.Fatalf("seed %d step %d: ClearExpedition(%d) missed", seed, step, seq)
						}
					}
				case op < 62: // expiry from the front
					if len(ref.ents) > 0 {
						seq := ref.ents[0].seq
						wantPay, _ := ref.remove(seq)
						v, ok := w.Remove(seq)
						if !ok || v.Payload != wantPay {
							t.Fatalf("seed %d step %d: front Remove(%d) = (%v, %v)", seed, step, seq, v, ok)
						}
					}
				case op < 76: // extraction hole
					if len(ref.ents) > 0 {
						seq := ref.ents[rnd.Intn(len(ref.ents))].seq
						wantPay, _ := ref.remove(seq)
						v, ok := w.Remove(seq)
						if !ok || v.Payload != wantPay {
							t.Fatalf("seed %d step %d: hole Remove(%d) = (%v, %v)", seed, step, seq, v, ok)
						}
					}
				case op < 82: // below-base injection (migration)
					if len(ref.ents) > 0 {
						oldest := ref.ents[0].seq
						back := st * uint64(1+rnd.Intn(2*maxRingSlots))
						if oldest >= back+residue {
							seq := oldest - back
							if !used[seq] {
								insertAt(seq, true)
							}
						}
					}
				case op < 88: // idle then burst: seq space races ahead
					next += st * uint64(rnd.Intn(3*maxRingSlots))
					insertAt(next+st, rnd.Intn(2) == 0)
					next += st
				case op < 94: // lazy index churn: tear down / rebuild mid-life
					if w.HasBTree() {
						w.DisableBTree()
					}
					w.EnableBTree()
					if rnd.Intn(2) == 0 {
						if w.HasHash() {
							w.DisableHash()
						} else {
							w.EnableHash()
						}
					}
				default: // hash toggle alone: B-tree must be unaffected
					if w.HasHash() {
						w.DisableHash()
					} else {
						w.EnableHash()
					}
				}
				// Random bands each step: point, narrow, wide, unbounded.
				settledOnly := rnd.Intn(2) == 0
				k := uint64(rnd.Intn(keySpace))
				compareRange(t, seed, step, w, ref, k, k, settledOnly)
				lo := uint64(rnd.Intn(keySpace))
				compareRange(t, seed, step, w, ref, lo, lo+uint64(rnd.Intn(4)), !settledOnly)
				compareRange(t, seed, step, w, ref, 0, ^uint64(0), settledOnly)
				if w.HasHash() {
					var hits []uint64
					w.Probe(k, settledOnly, func(tp stream.Tuple[int]) { hits = append(hits, tp.Seq) })
					want := ref.probe(k, settledOnly)
					if len(hits) != len(want) {
						t.Fatalf("seed %d step %d: Probe(%d, %v) = %v, ref %v", seed, step, k, settledOnly, hits, want)
					}
					for i := range hits {
						if hits[i] != want[i] {
							t.Fatalf("seed %d step %d: Probe(%d, %v) = %v, ref %v (order)", seed, step, k, settledOnly, hits, want)
						}
					}
				}
			}
			// Drain: every entry comes back out, and the emptied B-tree
			// answers nothing.
			for len(ref.ents) > 0 {
				seq := ref.ents[0].seq
				wantPay, _ := ref.remove(seq)
				v, ok := w.Remove(seq)
				if !ok || v.Payload != wantPay {
					t.Fatalf("seed %d drain: Remove(%d) = (%v, %v)", seed, seq, v, ok)
				}
			}
			compareRange(t, seed, -1, w, ref, 0, ^uint64(0), false)
			if w.Len() != 0 || w.SettledLen() != 0 {
				t.Fatalf("seed %d: drained window reports Len=%d SettledLen=%d", seed, w.Len(), w.SettledLen())
			}
		}
	}
}

// TestBTreeWindowHeldCursorSurvivesCompaction is the ordered-index twin
// of TestWindowOpenCursorSurvivesCompaction: seqs peeked by an open
// slice cursor stay valid handles across the in-place compactions its
// own removals trigger, and the B-tree keeps answering range probes
// coherently the whole way down.
func TestBTreeWindowHeldCursorSurvivesCompaction(t *testing.T) {
	const keys = 7
	keyFn := func(v int) uint64 { return uint64(v) % keys }
	w := NewWindow(WithBTreeIndex(keyFn))
	const n = 600
	for i := 0; i < n; i++ {
		w.InsertSettled(tup(uint64(i), i))
	}
	// The "cursor": every 3rd seq, peeked up front, removed at the end.
	var held []uint64
	for i := 0; i < n; i += 3 {
		held = append(held, uint64(i))
	}
	// Churn everything else away, tombstoning two thirds of the entries
	// array: multiple in-place compactions fire while the cursor is open.
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			if _, ok := w.Remove(uint64(i)); !ok {
				t.Fatalf("churn Remove(%d) missing", i)
			}
		}
	}
	if w.Len() != len(held) {
		t.Fatalf("Len = %d, want %d held entries", w.Len(), len(held))
	}
	// Range-probe coherence after the churn: each key class must return
	// exactly the held seqs of that class, in seq order.
	for k := uint64(0); k < keys; k++ {
		var got []uint64
		w.RangeProbe(k, k, false, func(tp stream.Tuple[int]) { got = append(got, tp.Seq) })
		var want []uint64
		for _, seq := range held {
			if keyFn(int(seq)) == k {
				want = append(want, seq)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("RangeProbe(%d) after churn = %v, want %v", k, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("RangeProbe(%d) after churn = %v, want %v (order)", k, got, want)
			}
		}
	}
	// Drain the cursor; every removal can trigger a compaction that
	// re-points the slots of the seqs still held. Spot-check the B-tree
	// against the shrinking held set as it goes.
	remaining := map[uint64]bool{}
	for _, seq := range held {
		remaining[seq] = true
	}
	for i, seq := range held {
		v, ok := w.Remove(seq)
		if !ok {
			t.Fatalf("held seq %d vanished across compaction", seq)
		}
		if v.Seq != seq || v.Payload != int(seq) {
			t.Fatalf("held seq %d resolved to tuple {Seq:%d Payload:%d}", seq, v.Seq, v.Payload)
		}
		delete(remaining, seq)
		if i%32 == 31 {
			count := 0
			w.RangeProbe(0, ^uint64(0), false, func(tp stream.Tuple[int]) {
				if !remaining[tp.Seq] {
					t.Fatalf("RangeProbe returned removed seq %d mid-drain", tp.Seq)
				}
				count++
			})
			if count != len(remaining) {
				t.Fatalf("RangeProbe mid-drain saw %d entries, want %d", count, len(remaining))
			}
		}
	}
	if w.Len() != 0 {
		t.Fatalf("window not empty after cursor drain: %d", w.Len())
	}
}
