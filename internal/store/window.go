// Package store implements the node-local tuple stores of (low-latency)
// handshake join: per-core sliding-window fragments with expedition
// flags, plus optional secondary indexes (hash for equi-joins, B-tree
// for range/band predicates) as envisioned in §4.1 and evaluated in
// §7.6 of the paper.
//
// A Window keeps tuples in arrival order. Each entry carries the
// expedition flag of §4.2.3: a stored R tuple stays "expedited" until its
// expedition-end message reaches the home node; scans on behalf of S
// arrivals must skip expedited entries to avoid stored/stored double
// matches. Expiry may remove entries anywhere (normally near the front,
// since expiries arrive in arrival order); removal uses tombstones with
// amortized compaction so that secondary indexes stay valid.
package store

import "handshakejoin/internal/stream"

type entry[T any] struct {
	tuple     stream.Tuple[T]
	expedited bool
	dead      bool
}

// Window is a node-local window fragment for one stream on one core.
// It is not safe for concurrent use; each pipeline node owns its windows.
type Window[T any] struct {
	entries []entry[T]
	head    int            // first live slot candidate
	slots   map[uint64]int // seq → slot (live entries only)
	live    int
	settled int // live entries with expedition flag cleared

	hash  *HashIndex
	btree *BTreeIndex
	key   stream.KeyFunc[T]
}

// Option configures a Window.
type Option[T any] func(*Window[T])

// WithHashIndex attaches a hash index over key(payload); Probe becomes
// available.
func WithHashIndex[T any](key stream.KeyFunc[T]) Option[T] {
	return func(w *Window[T]) {
		w.key = key
		w.hash = NewHashIndex()
	}
}

// WithBTreeIndex attaches an ordered index over key(payload); RangeProbe
// becomes available. It may be combined with WithHashIndex.
func WithBTreeIndex[T any](key stream.KeyFunc[T]) Option[T] {
	return func(w *Window[T]) {
		w.key = key
		w.btree = NewBTreeIndex(32)
	}
}

// NewWindow returns an empty window.
func NewWindow[T any](opts ...Option[T]) *Window[T] {
	w := &Window[T]{slots: make(map[uint64]int)}
	for _, o := range opts {
		o(w)
	}
	return w
}

// Len returns the number of live entries.
func (w *Window[T]) Len() int { return w.live }

// SettledLen returns the number of live entries whose expedition flag has
// been cleared.
func (w *Window[T]) SettledLen() int { return w.settled }

// Insert stores t with the expedition flag set.
func (w *Window[T]) Insert(t stream.Tuple[T]) {
	if len(w.entries) == cap(w.entries) && w.head*4 >= len(w.entries) {
		// The backing is full but at least a quarter is leading
		// tombstones (the sliding-window steady state): slide the live
		// region to the front and recycle the array instead of letting
		// append re-allocate rightward forever. Amortized O(1) — a
		// compaction reclaims ≥ len/4 slots.
		w.compactInPlace()
	}
	slot := len(w.entries)
	w.entries = append(w.entries, entry[T]{tuple: t, expedited: true})
	w.slots[t.Seq] = slot
	w.live++
	if w.key != nil {
		k := w.key(t.Payload)
		if w.hash != nil {
			w.hash.Insert(k, t.Seq)
		}
		if w.btree != nil {
			w.btree.Insert(k, t.Seq)
		}
	}
	w.maybeCompact()
}

// InsertSettled stores t with the expedition flag already cleared (used
// for the S side, which carries no flags, and by baseline operators).
func (w *Window[T]) InsertSettled(t stream.Tuple[T]) {
	w.Insert(t)
	w.entries[w.slots[t.Seq]].expedited = false
	w.settled++
}

// ClearExpedition clears the flag of the entry with the given sequence
// number; it reports whether the entry was present (and flagged).
func (w *Window[T]) ClearExpedition(seq uint64) bool {
	slot, ok := w.slots[seq]
	if !ok {
		return false
	}
	e := &w.entries[slot]
	if e.dead || !e.expedited {
		return !e.dead // present but already settled: still "found"
	}
	e.expedited = false
	w.settled++
	return true
}

// Remove deletes the entry with the given sequence number, returning the
// tuple and whether it was present.
func (w *Window[T]) Remove(seq uint64) (stream.Tuple[T], bool) {
	slot, ok := w.slots[seq]
	if !ok {
		var zero stream.Tuple[T]
		return zero, false
	}
	e := &w.entries[slot]
	t := e.tuple
	e.dead = true
	delete(w.slots, seq)
	w.live--
	if !e.expedited {
		w.settled--
	}
	if w.key != nil {
		k := w.key(t.Payload)
		if w.hash != nil {
			w.hash.Remove(k, seq)
		}
		if w.btree != nil {
			w.btree.Remove(k, seq)
		}
	}
	w.maybeCompact()
	return t, true
}

// OldestSeq returns the sequence number of the oldest live entry, in
// arrival order; ok is false when the window is empty. Amortized O(1):
// the head pointer skips leading tombstones.
func (w *Window[T]) OldestSeq() (seq uint64, ok bool) {
	for w.head < len(w.entries) && w.entries[w.head].dead {
		w.head++
	}
	if w.head >= len(w.entries) {
		return 0, false
	}
	return w.entries[w.head].tuple.Seq, true
}

// Get returns the live tuple with the given sequence number.
func (w *Window[T]) Get(seq uint64) (stream.Tuple[T], bool) {
	slot, ok := w.slots[seq]
	if !ok {
		var zero stream.Tuple[T]
		return zero, false
	}
	return w.entries[slot].tuple, true
}

// ScanAll calls fn for every live entry in arrival order. Comparisons
// performed by fn are the caller's business; ScanAll itself reports the
// number of entries visited so cost models can account for scan work.
func (w *Window[T]) ScanAll(fn func(stream.Tuple[T])) int {
	n := 0
	for i := w.head; i < len(w.entries); i++ {
		e := &w.entries[i]
		if e.dead {
			continue
		}
		fn(e.tuple)
		n++
	}
	return n
}

// ScanSettled calls fn for every live entry whose expedition flag is
// cleared, in arrival order, and returns the number of entries visited
// (settled or not — a scan must inspect the flag of every live entry).
func (w *Window[T]) ScanSettled(fn func(stream.Tuple[T])) int {
	n := 0
	for i := w.head; i < len(w.entries); i++ {
		e := &w.entries[i]
		if e.dead {
			continue
		}
		n++
		if e.expedited {
			continue
		}
		fn(e.tuple)
	}
	return n
}

// Probe calls fn for every live entry whose key equals k, optionally
// restricted to settled entries. It returns the number of index entries
// inspected. Requires WithHashIndex.
func (w *Window[T]) Probe(k uint64, settledOnly bool, fn func(stream.Tuple[T])) int {
	if w.hash == nil {
		panic("store: Probe without WithHashIndex")
	}
	n := 0
	w.hash.Lookup(k, func(seq uint64) {
		n++
		slot, ok := w.slots[seq]
		if !ok {
			return
		}
		e := &w.entries[slot]
		if e.dead || (settledOnly && e.expedited) {
			return
		}
		fn(e.tuple)
	})
	return n
}

// RangeProbe calls fn for every live entry with lo ≤ key ≤ hi, optionally
// restricted to settled entries. It returns the number of index entries
// inspected. Requires WithBTreeIndex.
func (w *Window[T]) RangeProbe(lo, hi uint64, settledOnly bool, fn func(stream.Tuple[T])) int {
	if w.btree == nil {
		panic("store: RangeProbe without WithBTreeIndex")
	}
	n := 0
	w.btree.Range(lo, hi, func(_ uint64, seq uint64) {
		n++
		slot, ok := w.slots[seq]
		if !ok {
			return
		}
		e := &w.entries[slot]
		if e.dead || (settledOnly && e.expedited) {
			return
		}
		fn(e.tuple)
	})
	return n
}

// maybeCompact rebuilds the entry slice when more than half the slots
// are tombstones, keeping memory and scan cost proportional to live
// entries. Compaction is in place: live entries slide to the front of
// the same backing array, so a steady-state window recycles one
// allocation forever instead of growing rightward and re-allocating on
// every compaction cycle (memory stays bounded by the window's
// high-water mark).
func (w *Window[T]) maybeCompact() {
	// Advance head over leading tombstones first (the common case:
	// expiries remove oldest entries).
	for w.head < len(w.entries) && w.entries[w.head].dead {
		w.head++
	}
	if len(w.entries)-w.head <= 2*w.live || len(w.entries) < 64 {
		return
	}
	w.compactInPlace()
}

// compactInPlace slides the live entries to the front of the existing
// backing array and re-points the slot map.
func (w *Window[T]) compactInPlace() {
	n := 0
	for i := w.head; i < len(w.entries); i++ {
		if !w.entries[i].dead {
			w.entries[n] = w.entries[i]
			n++
		}
	}
	// Zero the vacated tail so dead payloads do not pin memory through
	// the retained backing array.
	tail := w.entries[n:cap(w.entries)]
	for i := range tail {
		tail[i] = entry[T]{}
	}
	w.entries = w.entries[:n]
	w.head = 0
	for i := range w.entries {
		w.slots[w.entries[i].tuple.Seq] = i
	}
}
