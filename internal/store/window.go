// Package store implements the node-local tuple stores of (low-latency)
// handshake join: per-core sliding-window fragments with expedition
// flags, plus optional secondary indexes (hash for equi-joins, B-tree
// for range/band predicates) as envisioned in §4.1 and evaluated in
// §7.6 of the paper.
//
// A Window keeps tuples in arrival order. Each entry carries the
// expedition flag of §4.2.3: a stored R tuple stays "expedited" until its
// expedition-end message reaches the home node; scans on behalf of S
// arrivals must skip expedited entries to avoid stored/stored double
// matches. Expiry may remove entries anywhere (normally near the front,
// since expiries arrive in arrival order); removal uses tombstones with
// amortized compaction so that secondary indexes stay valid.
//
// # Storage layout: the ring-slot directory
//
// Entries live in a dense append-only slice (`entries`) compacted in
// place; the seq → slot directory is not a hash map but a circular array
// (`ring`) indexed by (seq-base)/stride. The layout relies on the
// sequencing contract of this repository: seqs are assigned densely per
// stream side, a lane observes an increasing subsequence of them, and
// within a pipeline every node k stores only seqs with seq%Nodes == k
// (homes are a pure function of seq). A window configured with
// WithStride(Nodes) therefore spends one ring slot per seq it could ever
// own, and lookup/remove/settle are single array reads — zero map
// traffic on the per-tuple hot path.
//
// Ring positions for seqs the window never stored (routed to another
// lane, or holes punched by slice extraction) simply stay empty; the
// base advances lazily past leading empties, and migration may insert
// seqs below the current base (a moved key-group is older than the
// destination's content), which re-anchors the ring backwards. Both
// directions preserve the one invariant callers depend on: a seq is a
// stable handle. Open slice cursors (PeekMatching/ExtractSeqs hold seqs
// across settles and compactions) survive base advance and in-place
// compaction because both only re-point slots, never re-key them.
//
// The ring's footprint is bounded by maxRingSlots. A window that idles
// with live entries while the global seq space races ahead (count
// windows only expire on arrivals) would otherwise need an arbitrarily
// long ring when the burst finally lands; instead the stale span spills
// into a small overflow map and the ring re-anchors at the burst. The
// overflow is strictly a cold path: it holds entries only until their
// (already overdue) expiries drain them.
package store

import (
	"sync/atomic"

	"handshakejoin/internal/stream"
)

// maxRingSlots caps the seq span (in stride units) the ring directory
// covers: 1<<20 slots is 4 MiB of int32 directory per window at the
// high-water mark. Spans beyond the cap spill to the overflow map.
const maxRingSlots = 1 << 20

type entry[T any] struct {
	tuple     stream.Tuple[T]
	expedited bool
	dead      bool
}

// hLink is an intrusive per-key hash-chain node: the seqs of the
// previous and next live entries sharing this entry's join key (NoSeq at
// the chain ends). Kept in a slice parallel to entries — allocated only
// when a hash index is attached — so index maintenance is two ring
// lookups and no heap traffic.
type hLink struct {
	prev, next uint64
}

// Window is a node-local window fragment for one stream on one core.
// It is not safe for concurrent use; each pipeline node owns its windows.
type Window[T any] struct {
	entries []entry[T]
	links   []hLink // parallel to entries; non-nil iff hash != nil
	head    int     // first live slot candidate
	live    int
	settled int // live entries with expedition flag cleared

	// Ring-slot directory: ring[(start+(seq-base)/stride) & mask] holds
	// slot+1 for live seqs, 0 for absent ones. All positions outside the
	// span [start, start+span) are zero — growth into the free arc and
	// Go's zeroed allocation keep gap positions empty without explicit
	// clearing, so a sparse lane (stride 1 over a striped seq space)
	// never pays for the seqs it does not own.
	ring   []int32
	start  int    // ring position of base
	span   int    // ring slots covered: (maxSeq-base)/stride + 1; 0 ⇒ empty
	base   uint64 // seq mapped to ring[start]; valid iff span > 0
	stride uint64 // seq distance between adjacent ring slots

	// over holds the rare live seqs the ring cannot reach: entries
	// stranded behind a > maxRingSlots seq jump, or migration injections
	// anchored far below base. Values are slot+1, like ring. Nil until
	// first needed; never touched on the per-tuple fast path.
	over map[uint64]int32

	hash  *HashIndex
	btree *BTreeIndex
	key   stream.KeyFunc[T]

	rare  RareStats
	trace func(kind string, a, b int64)
}

// RareStats counts the window's rare-path events. Without them a
// pathological spill storm (huge seq jumps, far-below-base injections)
// degrades silently; with them it shows up in any live snapshot. The
// fields are atomics written only by the window's owning worker (reads
// may come from any goroutine), so updates are a plain load plus an
// atomic store — nothing the race detector or the hot path notices.
type RareStats struct {
	Spills      atomic.Uint64 // whole-ring spills into the overflow map
	Reanchors   atomic.Uint64 // below-base directory re-anchors
	Compactions atomic.Uint64 // entry-slab compactions
	Parks       atomic.Uint64 // entries parked in the overflow map
	Overflow    atomic.Int64  // current overflow-map entries (gauge)
}

func rareInc(c *atomic.Uint64, n uint64) { c.Store(c.Load() + n) }

// Rare returns the window's rare-path counters for race-safe reading.
func (w *Window[T]) Rare() *RareStats { return &w.rare }

// syncOverflow republishes the overflow-map size gauge; call after any
// mutation of w.over (all cold paths).
func (w *Window[T]) syncOverflow() {
	w.rare.Overflow.Store(int64(len(w.over)))
}

func (w *Window[T]) traceEvent(kind string, a, b int64) {
	if w.trace != nil {
		w.trace(kind, a, b)
	}
}

// Option configures a Window.
type Option[T any] func(*Window[T])

// WithHashIndex attaches a hash index over key(payload); Probe becomes
// available.
func WithHashIndex[T any](key stream.KeyFunc[T]) Option[T] {
	return func(w *Window[T]) {
		w.key = key
		w.hash = NewHashIndex()
	}
}

// WithBTreeIndex attaches an ordered index over key(payload); RangeProbe
// becomes available. It may be combined with WithHashIndex.
func WithBTreeIndex[T any](key stream.KeyFunc[T]) Option[T] {
	return func(w *Window[T]) {
		w.key = key
		w.btree = NewBTreeIndex(32)
	}
}

// WithKeyFunc declares the join-key extractor without attaching any
// index. The window starts in scan mode with zero index maintenance;
// EnableHash/EnableBTree may attach (and backfill) indexes later when
// an adaptive probe strategy demands them.
func WithKeyFunc[T any](key stream.KeyFunc[T]) Option[T] {
	return func(w *Window[T]) {
		w.key = key
	}
}

// WithStride declares that every seq stored in this window is congruent
// modulo n (the LLHJ home-node residue: node k of an n-node pipeline
// only ever stores seqs with seq%n == k). The ring directory then spends
// one slot per owned seq instead of one per global seq. Inserting a seq
// that violates the declared residue panics: it means tuples are being
// routed to the wrong home.
func WithStride[T any](n int) Option[T] {
	return func(w *Window[T]) {
		if n < 1 {
			n = 1
		}
		w.stride = uint64(n)
	}
}

// WithTrace registers a callback for the window's rare-path events:
// "ring_spill" (entries spilled, span at spill), "ring_reanchor"
// (slots swept back, new span) and "window_compact" (slots reclaimed,
// live entries). The callback runs on the owning worker, cold paths
// only.
func WithTrace[T any](fn func(kind string, a, b int64)) Option[T] {
	return func(w *Window[T]) {
		w.trace = fn
	}
}

// NewWindow returns an empty window.
func NewWindow[T any](opts ...Option[T]) *Window[T] {
	w := &Window[T]{stride: 1}
	for _, o := range opts {
		o(w)
	}
	return w
}

// Len returns the number of live entries.
func (w *Window[T]) Len() int { return w.live }

// SettledLen returns the number of live entries whose expedition flag has
// been cleared.
func (w *Window[T]) SettledLen() int { return w.settled }

// pos maps a span offset to a ring position.
func (w *Window[T]) pos(i int) int { return (w.start + i) & (len(w.ring) - 1) }

// lookup resolves seq to its entry slot, or -1 when absent.
func (w *Window[T]) lookup(seq uint64) int {
	if w.span > 0 && seq >= w.base {
		d := seq - w.base
		if w.stride > 1 {
			if d%w.stride != 0 {
				return -1
			}
			d /= w.stride
		}
		if d < uint64(w.span) {
			if s := w.ring[w.pos(int(d))]; s != 0 {
				return int(s) - 1
			}
			// In-span but empty: a below-base re-anchor may have swept
			// the span back over seqs an earlier spillAll parked in the
			// overflow — fall through and consult it, like clearSeq.
		}
	}
	if len(w.over) > 0 {
		if s, ok := w.over[seq]; ok {
			return int(s) - 1
		}
	}
	return -1
}

// setSlot records seq → slot in whichever directory tier holds seq. A
// seq lives in exactly one tier: writing an in-span ring position also
// evicts any overflow copy, so a spilled entry whose seq the span later
// re-covered migrates back into the ring on the next compaction.
func (w *Window[T]) setSlot(seq uint64, slot int32) {
	if w.span > 0 && seq >= w.base {
		d := seq - w.base
		if w.stride > 1 {
			d /= w.stride
		}
		if d < uint64(w.span) {
			w.ring[w.pos(int(d))] = slot + 1
			if len(w.over) > 0 {
				delete(w.over, seq)
				w.syncOverflow()
			}
			return
		}
	}
	w.over[seq] = slot + 1
}

// clearSeq removes seq from the directory.
func (w *Window[T]) clearSeq(seq uint64) {
	if w.span > 0 && seq >= w.base {
		d := seq - w.base
		if w.stride > 1 {
			d /= w.stride
		}
		if d < uint64(w.span) && w.ring[w.pos(int(d))] != 0 {
			w.ring[w.pos(int(d))] = 0
			return
		}
	}
	if w.over != nil {
		delete(w.over, seq)
		w.syncOverflow()
	}
}

// checkStride panics when d (a seq distance from base) violates the
// declared residue, returning d in stride units otherwise.
func (w *Window[T]) checkStride(d uint64) uint64 {
	if w.stride > 1 {
		if d%w.stride != 0 {
			panic("store: seq violates window stride")
		}
		d /= w.stride
	}
	return d
}

// checkOverDup panics when seq is already parked in the overflow tier:
// the ring-write paths of place only inspect the ring position, which is
// empty for a spilled seq the span has since re-covered.
func (w *Window[T]) checkOverDup(seq uint64) {
	if len(w.over) > 0 {
		if _, dup := w.over[seq]; dup {
			panic("store: duplicate seq inserted")
		}
	}
}

// place extends the directory to cover seq and stores slot+1 there,
// panicking on a duplicate. The common case (next owned seq, one past
// the current maximum) is a bounds check and one array write.
func (w *Window[T]) place(seq uint64, slot int32) {
	if w.span == 0 {
		if len(w.ring) == 0 {
			w.ring = make([]int32, 16)
		}
		w.checkOverDup(seq)
		w.start, w.span, w.base = 0, 1, seq
		w.ring[w.pos(0)] = slot + 1
		return
	}
	if seq >= w.base {
		d := w.checkStride(seq - w.base)
		if d < uint64(w.span) {
			p := w.pos(int(d))
			if w.ring[p] != 0 {
				panic("store: duplicate seq inserted")
			}
			w.checkOverDup(seq)
			w.ring[p] = slot + 1
			return
		}
		if d >= maxRingSlots {
			// The burst after a long idle: the ring cannot stretch from
			// the stale span to here. Strand the old span in the
			// overflow map and re-anchor at the burst.
			w.spillAll()
			w.start, w.span, w.base = 0, 1, seq
			w.ring[w.pos(0)] = slot + 1
			return
		}
		if d >= uint64(len(w.ring)) {
			w.growRing(int(d) + 1)
		}
		w.checkOverDup(seq)
		w.span = int(d) + 1
		w.ring[w.pos(int(d))] = slot + 1
		return
	}
	// Below base: slice injection of an older key-group.
	d := w.checkStride(w.base - seq)
	if int(d)+w.span > maxRingSlots {
		// Too far below to re-anchor; park the outlier in the overflow.
		if w.over == nil {
			w.over = make(map[uint64]int32)
		}
		if _, dup := w.over[seq]; dup {
			panic("store: duplicate seq inserted")
		}
		w.over[seq] = slot + 1
		rareInc(&w.rare.Parks, 1)
		w.syncOverflow()
		return
	}
	if int(d)+w.span > len(w.ring) {
		w.growRing(int(d) + w.span)
	}
	w.start = (w.start - int(d)) & (len(w.ring) - 1)
	w.span += int(d)
	w.base = seq
	if w.ring[w.start] != 0 {
		panic("store: duplicate seq inserted")
	}
	w.checkOverDup(seq)
	w.ring[w.start] = slot + 1
	rareInc(&w.rare.Reanchors, 1)
	w.traceEvent("ring_reanchor", int64(d), int64(w.span))
	return
}

// spillAll moves every occupied ring slot into the overflow map and
// empties the ring. O(span) ≤ maxRingSlots, and only ever paid on a
// seq jump that dwarfs the walk.
func (w *Window[T]) spillAll() {
	if w.over == nil {
		w.over = make(map[uint64]int32)
	}
	moved := 0
	for i := 0; i < w.span; i++ {
		p := w.pos(i)
		if w.ring[p] != 0 {
			w.over[w.base+uint64(i)*w.stride] = w.ring[p]
			w.ring[p] = 0
			moved++
		}
	}
	spanAt := w.span
	w.span = 0
	rareInc(&w.rare.Spills, 1)
	rareInc(&w.rare.Parks, uint64(moved))
	w.syncOverflow()
	w.traceEvent("ring_spill", int64(moved), int64(spanAt))
}

// growRing linearizes the span into a zeroed power-of-two array of at
// least need slots.
func (w *Window[T]) growRing(need int) {
	newCap := len(w.ring)
	if newCap == 0 {
		newCap = 16
	}
	for newCap < need {
		newCap *= 2
	}
	fresh := make([]int32, newCap)
	for i := 0; i < w.span; i++ {
		fresh[i] = w.ring[w.pos(i)]
	}
	w.ring = fresh
	w.start = 0
}

// chainSlot resolves a seq referenced by a hash-chain link. Chains only
// ever name live entries, so a miss means the directory and the index
// have desynced; panic with a diagnosis rather than letting the caller
// index entries[-1].
func (w *Window[T]) chainSlot(seq uint64) int {
	slot := w.lookup(seq)
	if slot < 0 {
		panic("store: hash chain references a seq missing from the directory")
	}
	return slot
}

// advanceBase slides base past leading empty ring positions so the span
// tracks the live seq range. All skipped positions are already zero, so
// a later wrap-around reuses them without cleanup.
func (w *Window[T]) advanceBase() {
	if w.live == 0 {
		// Fully drained: re-anchor at the next insert. This makes a
		// long-idle window cheap to revive after a seq burst — no walk
		// across the dead range.
		w.start, w.span = 0, 0
		return
	}
	mask := len(w.ring) - 1
	for w.span > 0 && w.ring[w.start] == 0 {
		w.start = (w.start + 1) & mask
		w.span--
		w.base += w.stride
	}
}

// Insert stores t with the expedition flag set.
func (w *Window[T]) Insert(t stream.Tuple[T]) {
	w.insert(t, true)
}

// InsertSettled stores t with the expedition flag already cleared (used
// for the S side, which carries no flags, and by baseline operators).
func (w *Window[T]) InsertSettled(t stream.Tuple[T]) {
	w.insert(t, false)
	w.settled++
}

func (w *Window[T]) insert(t stream.Tuple[T], expedited bool) {
	if len(w.entries) == cap(w.entries) && w.head*4 >= len(w.entries) {
		// The backing is full but at least a quarter is leading
		// tombstones (the sliding-window steady state): slide the live
		// region to the front and recycle the array instead of letting
		// append re-allocate rightward forever. Amortized O(1) — a
		// compaction reclaims ≥ len/4 slots.
		w.compactInPlace()
	}
	slot := len(w.entries)
	w.entries = append(w.entries, entry[T]{tuple: t, expedited: expedited})
	w.place(t.Seq, int32(slot))
	w.live++
	if w.hash != nil || w.btree != nil {
		k := w.key(t.Payload)
		if w.hash != nil {
			w.links = append(w.links, hLink{prev: NoSeq, next: NoSeq})
			prevTail := w.hash.InsertTail(k, t.Seq)
			w.links[slot].prev = prevTail
			if prevTail != NoSeq {
				w.links[w.chainSlot(prevTail)].next = t.Seq
			}
		}
		if w.btree != nil {
			w.btree.Insert(k, t.Seq)
		}
	}
	w.maybeCompact()
}

// ClearExpedition clears the flag of the entry with the given sequence
// number; it reports whether the entry was present (and flagged).
func (w *Window[T]) ClearExpedition(seq uint64) bool {
	slot := w.lookup(seq)
	if slot < 0 {
		return false
	}
	e := &w.entries[slot]
	if !e.expedited {
		return true // present but already settled: still "found"
	}
	e.expedited = false
	w.settled++
	return true
}

// Remove deletes the entry with the given sequence number, returning the
// tuple and whether it was present.
func (w *Window[T]) Remove(seq uint64) (stream.Tuple[T], bool) {
	slot := w.lookup(seq)
	if slot < 0 {
		var zero stream.Tuple[T]
		return zero, false
	}
	e := &w.entries[slot]
	t := e.tuple
	e.dead = true
	w.clearSeq(seq)
	w.live--
	if !e.expedited {
		w.settled--
	}
	if w.hash != nil || w.btree != nil {
		k := w.key(t.Payload)
		if w.hash != nil {
			lnk := w.links[slot]
			if lnk.prev != NoSeq {
				w.links[w.chainSlot(lnk.prev)].next = lnk.next
			}
			if lnk.next != NoSeq {
				w.links[w.chainSlot(lnk.next)].prev = lnk.prev
			}
			w.hash.Remove(k, lnk.prev, lnk.next)
		}
		if w.btree != nil {
			w.btree.Remove(k, seq)
		}
	}
	w.advanceBase()
	w.maybeCompact()
	return t, true
}

// OldestSeq returns the sequence number of the oldest live entry, in
// arrival order; ok is false when the window is empty. Amortized O(1):
// the head pointer skips leading tombstones.
func (w *Window[T]) OldestSeq() (seq uint64, ok bool) {
	for w.head < len(w.entries) && w.entries[w.head].dead {
		w.head++
	}
	if w.head >= len(w.entries) {
		return 0, false
	}
	return w.entries[w.head].tuple.Seq, true
}

// Get returns the live tuple with the given sequence number.
func (w *Window[T]) Get(seq uint64) (stream.Tuple[T], bool) {
	slot := w.lookup(seq)
	if slot < 0 {
		var zero stream.Tuple[T]
		return zero, false
	}
	return w.entries[slot].tuple, true
}

// ScanAll calls fn for every live entry in arrival order. Comparisons
// performed by fn are the caller's business; ScanAll itself reports the
// number of entries visited so cost models can account for scan work.
func (w *Window[T]) ScanAll(fn func(stream.Tuple[T])) int {
	n := 0
	for i := w.head; i < len(w.entries); i++ {
		e := &w.entries[i]
		if e.dead {
			continue
		}
		fn(e.tuple)
		n++
	}
	return n
}

// ScanSettled calls fn for every live entry whose expedition flag is
// cleared, in arrival order, and returns the number of entries visited
// (settled or not — a scan must inspect the flag of every live entry).
func (w *Window[T]) ScanSettled(fn func(stream.Tuple[T])) int {
	n := 0
	for i := w.head; i < len(w.entries); i++ {
		e := &w.entries[i]
		if e.dead {
			continue
		}
		n++
		if e.expedited {
			continue
		}
		fn(e.tuple)
	}
	return n
}

// Probe calls fn for every live entry whose key equals k, optionally
// restricted to settled entries, in arrival order. It returns the number
// of index entries inspected. Requires an attached hash index
// (WithHashIndex at construction, or EnableHash later).
func (w *Window[T]) Probe(k uint64, settledOnly bool, fn func(stream.Tuple[T])) int {
	if w.hash == nil {
		panic("store: Probe without WithHashIndex")
	}
	n := 0
	for seq := w.hash.Head(k); seq != NoSeq; {
		n++
		slot := w.chainSlot(seq)
		e := &w.entries[slot]
		seq = w.links[slot].next
		if settledOnly && e.expedited {
			continue
		}
		fn(e.tuple)
	}
	return n
}

// RangeProbe calls fn for every live entry with lo ≤ key ≤ hi, optionally
// restricted to settled entries. It returns the number of index entries
// inspected. Requires an attached ordered index (WithBTreeIndex at
// construction, or EnableBTree later).
func (w *Window[T]) RangeProbe(lo, hi uint64, settledOnly bool, fn func(stream.Tuple[T])) int {
	if w.btree == nil {
		panic("store: RangeProbe without WithBTreeIndex")
	}
	n := 0
	w.btree.Range(lo, hi, func(_ uint64, seq uint64) {
		n++
		slot := w.lookup(seq)
		if slot < 0 {
			return
		}
		e := &w.entries[slot]
		if e.dead || (settledOnly && e.expedited) {
			return
		}
		fn(e.tuple)
	})
	return n
}

// HasHash reports whether a hash index is currently attached.
func (w *Window[T]) HasHash() bool { return w.hash != nil }

// HasBTree reports whether a B-tree index is currently attached.
func (w *Window[T]) HasBTree() bool { return w.btree != nil }

// EnableHash attaches a hash index, backfilling it from the live
// entries in arrival order so chains read exactly as if the index had
// been present since the first insert. No-op when already attached;
// requires a key function (WithKeyFunc or an index option). O(live).
func (w *Window[T]) EnableHash() {
	if w.hash != nil {
		return
	}
	if w.key == nil {
		panic("store: EnableHash without a key function")
	}
	w.hash = NewHashIndex()
	w.links = make([]hLink, len(w.entries))
	for i := range w.links {
		w.links[i] = hLink{prev: NoSeq, next: NoSeq}
	}
	for i := w.head; i < len(w.entries); i++ {
		e := &w.entries[i]
		if e.dead {
			continue
		}
		k := w.key(e.tuple.Payload)
		prevTail := w.hash.InsertTail(k, e.tuple.Seq)
		w.links[i].prev = prevTail
		if prevTail != NoSeq {
			w.links[w.chainSlot(prevTail)].next = e.tuple.Seq
		}
	}
}

// DisableHash drops the hash index and its chain links; Probe becomes
// unavailable until EnableHash. No-op when not attached.
func (w *Window[T]) DisableHash() {
	w.hash = nil
	w.links = nil
}

// EnableBTree attaches an ordered index, backfilling it from the live
// entries. No-op when already attached; requires a key function.
// O(live · log live).
func (w *Window[T]) EnableBTree() {
	if w.btree != nil {
		return
	}
	if w.key == nil {
		panic("store: EnableBTree without a key function")
	}
	w.btree = NewBTreeIndex(32)
	for i := w.head; i < len(w.entries); i++ {
		e := &w.entries[i]
		if e.dead {
			continue
		}
		w.btree.Insert(w.key(e.tuple.Payload), e.tuple.Seq)
	}
}

// DisableBTree drops the ordered index; RangeProbe becomes unavailable
// until EnableBTree. No-op when not attached.
func (w *Window[T]) DisableBTree() {
	w.btree = nil
}

// maybeCompact rebuilds the entry slice when more than half the slots
// are tombstones, keeping memory and scan cost proportional to live
// entries. Compaction is in place: live entries slide to the front of
// the same backing array, so a steady-state window recycles one
// allocation forever instead of growing rightward and re-allocating on
// every compaction cycle (memory stays bounded by the window's
// high-water mark).
func (w *Window[T]) maybeCompact() {
	// Advance head over leading tombstones first (the common case:
	// expiries remove oldest entries).
	for w.head < len(w.entries) && w.entries[w.head].dead {
		w.head++
	}
	if len(w.entries)-w.head <= 2*w.live || len(w.entries) < 64 {
		return
	}
	w.compactInPlace()
}

// compactInPlace slides the live entries to the front of the existing
// backing array and re-points their directory slots. Seqs — the handles
// held by open slice cursors and hash chains — are untouched; only the
// seq → slot mapping changes.
func (w *Window[T]) compactInPlace() {
	before := len(w.entries)
	n := 0
	for i := w.head; i < len(w.entries); i++ {
		if !w.entries[i].dead {
			if n != i {
				w.entries[n] = w.entries[i]
				if w.links != nil {
					w.links[n] = w.links[i]
				}
			}
			n++
		}
	}
	// Zero the vacated tail so dead payloads do not pin memory through
	// the retained backing array.
	tail := w.entries[n:cap(w.entries)]
	for i := range tail {
		tail[i] = entry[T]{}
	}
	w.entries = w.entries[:n]
	if w.links != nil {
		w.links = w.links[:n]
	}
	w.head = 0
	for i := range w.entries {
		w.setSlot(w.entries[i].tuple.Seq, int32(i))
	}
	// The empty-slab call insert makes on a fresh window is not a
	// compaction worth reporting.
	if before > 0 {
		rareInc(&w.rare.Compactions, 1)
		w.traceEvent("window_compact", int64(before-n), int64(n))
	}
}
