package store

// BTreeIndex is an in-memory B-tree multimap from join key to tuple
// sequence numbers. It supports the ordered range probes needed to
// accelerate band predicates (the paper's benchmark join is a band join;
// §4.1 names "temporary hash or B-tree indexes" as the structures that
// low-latency handshake join's single-home-node design enables, and §9
// lists studying such indexes as future work — we implement it).
//
// Duplicate keys are allowed; (key, seq) pairs are unique and fully
// ordered, which makes removal exact. Deletion follows the classic CLRS
// algorithm (borrow from siblings or merge on underflow). The tree is
// not safe for concurrent use.
type BTreeIndex struct {
	root   *btreeNode
	degree int // minimum items per non-root node = degree-1
	size   int
}

type btreeItem struct {
	key uint64
	seq uint64
}

type btreeNode struct {
	items    []btreeItem
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return len(n.children) == 0 }

// NewBTreeIndex returns an empty tree with the given minimum degree t
// (every non-root node holds between t−1 and 2t−1 items); values < 2 are
// raised to 2.
func NewBTreeIndex(degree int) *BTreeIndex {
	if degree < 2 {
		degree = 2
	}
	return &BTreeIndex{degree: degree}
}

// Len returns the number of entries.
func (t *BTreeIndex) Len() int { return t.size }

func (t *BTreeIndex) maxItems() int { return 2*t.degree - 1 }
func (t *BTreeIndex) minItems() int { return t.degree - 1 }

// itemLess orders items by key, breaking ties by sequence number.
func itemLess(a, b btreeItem) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// findPos returns the index of the first item in items that is not less
// than it.
func findPos(items []btreeItem, it btreeItem) int {
	lo, hi := 0, len(items)
	for lo < hi {
		mid := (lo + hi) / 2
		if itemLess(items[mid], it) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contains reports whether (k, seq) is present.
func (t *BTreeIndex) Contains(k, seq uint64) bool {
	it := btreeItem{key: k, seq: seq}
	n := t.root
	for n != nil {
		pos := findPos(n.items, it)
		if pos < len(n.items) && n.items[pos] == it {
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[pos]
	}
	return false
}

// Insert adds seq under key k.
func (t *BTreeIndex) Insert(k, seq uint64) {
	it := btreeItem{key: k, seq: seq}
	if t.root == nil {
		t.root = &btreeNode{items: []btreeItem{it}}
		t.size++
		return
	}
	if len(t.root.items) >= t.maxItems() {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, it)
	t.size++
}

func (t *BTreeIndex) splitChild(parent *btreeNode, i int) {
	child := parent.children[i]
	mid := len(child.items) / 2
	midItem := child.items[mid]
	right := &btreeNode{
		items: append([]btreeItem(nil), child.items[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]
	parent.items = append(parent.items, btreeItem{})
	copy(parent.items[i+1:], parent.items[i:])
	parent.items[i] = midItem
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (t *BTreeIndex) insertNonFull(n *btreeNode, it btreeItem) {
	for {
		pos := findPos(n.items, it)
		if n.leaf() {
			n.items = append(n.items, btreeItem{})
			copy(n.items[pos+1:], n.items[pos:])
			n.items[pos] = it
			return
		}
		if len(n.children[pos].items) >= t.maxItems() {
			t.splitChild(n, pos)
			if itemLess(n.items[pos], it) {
				pos++
			}
		}
		n = n.children[pos]
	}
}

// Remove deletes the entry (k, seq); it reports whether it was present.
func (t *BTreeIndex) Remove(k, seq uint64) bool {
	if t.root == nil {
		return false
	}
	it := btreeItem{key: k, seq: seq}
	if !t.Contains(k, seq) {
		return false
	}
	t.remove(t.root, it)
	t.size--
	if len(t.root.items) == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	return true
}

// remove deletes it from the subtree rooted at n. Precondition: it is
// present in the subtree, and n has more than minItems() items unless n
// is the root.
func (t *BTreeIndex) remove(n *btreeNode, it btreeItem) {
	pos := findPos(n.items, it)
	if pos < len(n.items) && n.items[pos] == it {
		if n.leaf() {
			n.items = append(n.items[:pos], n.items[pos+1:]...)
			return
		}
		left, right := n.children[pos], n.children[pos+1]
		switch {
		case len(left.items) > t.minItems():
			pred := t.maxItem(left)
			n.items[pos] = pred
			t.remove(left, pred)
		case len(right.items) > t.minItems():
			succ := t.minItem(right)
			n.items[pos] = succ
			t.remove(right, succ)
		default:
			t.mergeChildren(n, pos)
			t.remove(n.children[pos], it)
		}
		return
	}
	if n.leaf() {
		return // not present; callers guarantee presence
	}
	pos = t.ensureChild(n, pos, it)
	t.remove(n.children[pos], it)
}

// ensureChild guarantees that children[pos] has more than minItems()
// items before descending, borrowing from a sibling or merging. It
// returns the (possibly shifted) child index to descend into for it.
func (t *BTreeIndex) ensureChild(n *btreeNode, pos int, it btreeItem) int {
	child := n.children[pos]
	if len(child.items) > t.minItems() {
		return pos
	}
	if pos > 0 && len(n.children[pos-1].items) > t.minItems() {
		// Borrow from left sibling through the separator.
		left := n.children[pos-1]
		child.items = append(child.items, btreeItem{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[pos-1]
		n.items[pos-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			moved := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = moved
		}
		return pos
	}
	if pos < len(n.children)-1 && len(n.children[pos+1].items) > t.minItems() {
		// Borrow from right sibling through the separator.
		right := n.children[pos+1]
		child.items = append(child.items, n.items[pos])
		n.items[pos] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !right.leaf() {
			moved := right.children[0]
			right.children = append(right.children[:0], right.children[1:]...)
			child.children = append(child.children, moved)
		}
		return pos
	}
	// Merge with a sibling.
	if pos == len(n.children)-1 {
		pos--
	}
	t.mergeChildren(n, pos)
	return pos
}

// mergeChildren merges children[pos], items[pos] and children[pos+1]
// into children[pos].
func (t *BTreeIndex) mergeChildren(n *btreeNode, pos int) {
	left, right := n.children[pos], n.children[pos+1]
	left.items = append(left.items, n.items[pos])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:pos], n.items[pos+1:]...)
	n.children = append(n.children[:pos+1], n.children[pos+2:]...)
}

func (t *BTreeIndex) maxItem(n *btreeNode) btreeItem {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

func (t *BTreeIndex) minItem(n *btreeNode) btreeItem {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// Range calls fn for every entry with lo ≤ key ≤ hi, in (key, seq) order.
func (t *BTreeIndex) Range(lo, hi uint64, fn func(key, seq uint64)) {
	if t.root == nil || lo > hi {
		return
	}
	t.rangeNode(t.root, lo, hi, fn)
}

func (t *BTreeIndex) rangeNode(n *btreeNode, lo, hi uint64, fn func(key, seq uint64)) {
	i := findPos(n.items, btreeItem{key: lo, seq: 0})
	if !n.leaf() {
		t.rangeNode(n.children[i], lo, hi, fn)
	}
	for ; i < len(n.items); i++ {
		if n.items[i].key > hi {
			return
		}
		fn(n.items[i].key, n.items[i].seq)
		if !n.leaf() {
			t.rangeNode(n.children[i+1], lo, hi, fn)
		}
	}
}

// Min returns the smallest key, or ok=false when empty.
func (t *BTreeIndex) Min() (key uint64, ok bool) {
	if t.root == nil {
		return 0, false
	}
	it := t.minItem(t.root)
	return it.key, true
}

// Max returns the largest key, or ok=false when empty.
func (t *BTreeIndex) Max() (key uint64, ok bool) {
	if t.root == nil {
		return 0, false
	}
	it := t.maxItem(t.root)
	return it.key, true
}
