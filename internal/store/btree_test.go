package store

import (
	"sort"
	"testing"
	"testing/quick"

	"handshakejoin/internal/workload"
)

func TestBTreeInsertRange(t *testing.T) {
	bt := NewBTreeIndex(2) // tiny degree exercises splits aggressively
	for i := 0; i < 1000; i++ {
		bt.Insert(uint64(i%97), uint64(i))
	}
	if bt.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", bt.Len())
	}
	type kv struct{ k, seq uint64 }
	var got []kv
	bt.Range(10, 12, func(k, seq uint64) {
		if k < 10 || k > 12 {
			t.Fatalf("Range leaked key %d", k)
		}
		got = append(got, kv{k, seq})
	})
	want := 0
	for i := 0; i < 1000; i++ {
		if k := i % 97; k >= 10 && k <= 12 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("Range(10,12) returned %d entries, want %d", len(got), want)
	}
	sorted := sort.SliceIsSorted(got, func(i, j int) bool {
		if got[i].k != got[j].k {
			return got[i].k < got[j].k
		}
		return got[i].seq < got[j].seq
	})
	if !sorted {
		t.Fatal("Range output not in (key, seq) order")
	}
}

func TestBTreeRemoveAll(t *testing.T) {
	bt := NewBTreeIndex(2)
	const n = 500
	for i := 0; i < n; i++ {
		bt.Insert(uint64(i*7%101), uint64(i))
	}
	for i := 0; i < n; i++ {
		if !bt.Remove(uint64(i*7%101), uint64(i)) {
			t.Fatalf("Remove(%d, %d) failed", i*7%101, i)
		}
	}
	if bt.Len() != 0 {
		t.Fatalf("Len = %d after removing everything", bt.Len())
	}
	if bt.Remove(1, 1) {
		t.Fatal("Remove on empty tree succeeded")
	}
	if _, ok := bt.Min(); ok {
		t.Fatal("Min on empty tree reported a key")
	}
}

func TestBTreeMinMax(t *testing.T) {
	bt := NewBTreeIndex(4)
	for _, k := range []uint64{50, 10, 90, 30, 70} {
		bt.Insert(k, k)
	}
	if mn, _ := bt.Min(); mn != 10 {
		t.Fatalf("Min = %d, want 10", mn)
	}
	if mx, _ := bt.Max(); mx != 90 {
		t.Fatalf("Max = %d, want 90", mx)
	}
	bt.Remove(10, 10)
	bt.Remove(90, 90)
	if mn, _ := bt.Min(); mn != 30 {
		t.Fatalf("Min after removals = %d, want 30", mn)
	}
	if mx, _ := bt.Max(); mx != 70 {
		t.Fatalf("Max after removals = %d, want 70", mx)
	}
}

// btreeInvariant checks the structural B-tree invariants: sorted items,
// child counts, and item counts per node.
func btreeInvariant(t *BTreeIndex) bool {
	if t.root == nil {
		return t.size == 0
	}
	var walk func(n *btreeNode, depth int) (int, bool)
	walk = func(n *btreeNode, depth int) (int, bool) {
		for i := 1; i < len(n.items); i++ {
			if !itemLess(n.items[i-1], n.items[i]) {
				return 0, false
			}
		}
		if n != t.root && (len(n.items) < t.minItems() || len(n.items) > t.maxItems()) {
			return 0, false
		}
		if n.leaf() {
			return depth, true
		}
		if len(n.children) != len(n.items)+1 {
			return 0, false
		}
		leafDepth := -1
		for _, c := range n.children {
			d, ok := walk(c, depth+1)
			if !ok {
				return 0, false
			}
			if leafDepth == -1 {
				leafDepth = d
			} else if leafDepth != d {
				return 0, false // leaves at different depths
			}
		}
		return leafDepth, true
	}
	_, ok := walk(t.root, 0)
	return ok
}

// TestBTreePropertyAgainstSortedSlice drives the tree and a sorted
// reference with identical random operations.
func TestBTreePropertyAgainstSortedSlice(t *testing.T) {
	type kv struct{ k, seq uint64 }
	check := func(seed uint64, opCount uint16) bool {
		rnd := workload.NewRand(seed)
		bt := NewBTreeIndex(2)
		var ref []kv
		n := int(opCount%400) + 50
		for i := 0; i < n; i++ {
			switch rnd.Intn(3) {
			case 0, 1: // insert
				k := uint64(rnd.Intn(40))
				seq := uint64(i)
				bt.Insert(k, seq)
				ref = append(ref, kv{k, seq})
			case 2: // remove random existing
				if len(ref) == 0 {
					continue
				}
				i := rnd.Intn(len(ref))
				e := ref[i]
				if !bt.Remove(e.k, e.seq) {
					return false
				}
				ref = append(ref[:i], ref[i+1:]...)
			}
			if bt.Len() != len(ref) {
				return false
			}
			if !btreeInvariant(bt) {
				return false
			}
		}
		// Full-range readback must equal the sorted reference.
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].k != ref[b].k {
				return ref[a].k < ref[b].k
			}
			return ref[a].seq < ref[b].seq
		})
		var got []kv
		bt.Range(0, ^uint64(0), func(k, seq uint64) { got = append(got, kv{k, seq}) })
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i] != ref[i] {
				return false
			}
		}
		// Spot-check a few sub-ranges.
		for lo := uint64(0); lo < 40; lo += 13 {
			hi := lo + 7
			var want []kv
			for _, e := range ref {
				if e.k >= lo && e.k <= hi {
					want = append(want, e)
				}
			}
			var sub []kv
			bt.Range(lo, hi, func(k, seq uint64) { sub = append(sub, kv{k, seq}) })
			if len(sub) != len(want) {
				return false
			}
			for i := range sub {
				if sub[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestHashIndexBasics(t *testing.T) {
	h := NewHashIndex()
	if prev := h.InsertTail(5, 100); prev != NoSeq {
		t.Fatalf("InsertTail(5,100) prev = %d, want NoSeq", prev)
	}
	if prev := h.InsertTail(5, 101); prev != 100 {
		t.Fatalf("InsertTail(5,101) prev = %d, want 100", prev)
	}
	if prev := h.InsertTail(7, 102); prev != NoSeq {
		t.Fatalf("InsertTail(7,102) prev = %d, want NoSeq", prev)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if got := h.Head(5); got != 100 {
		t.Fatalf("Head(5) = %d, want 100", got)
	}
	// Remove the head of 5's chain: its neighbours are (NoSeq, 101).
	h.Remove(5, NoSeq, 101)
	if got := h.Head(5); got != 101 {
		t.Fatalf("Head(5) after head removal = %d, want 101", got)
	}
	// Remove the last entry of the chain: the key disappears.
	h.Remove(5, NoSeq, NoSeq)
	if got := h.Head(5); got != NoSeq {
		t.Fatalf("Head(5) after chain drain = %d, want NoSeq", got)
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
	// The tombstoned bucket is reused, and heavy key churn triggers
	// rehashes without losing live chains.
	for i := uint64(0); i < 10000; i++ {
		k := 1000 + i%97
		h.InsertTail(k, 1000+i)
		h.Remove(k, NoSeq, NoSeq)
	}
	if got := h.Head(7); got != 102 {
		t.Fatalf("Head(7) after churn = %d, want 102", got)
	}
	if h.Len() != 1 {
		t.Fatalf("Len after churn = %d, want 1", h.Len())
	}
}
