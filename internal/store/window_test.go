package store

import (
	"testing"
	"testing/quick"

	"handshakejoin/internal/stream"
)

func tup(seq uint64, v int) stream.Tuple[int] {
	return stream.Tuple[int]{Seq: seq, TS: int64(seq) * 1000, Payload: v}
}

func collect(w *Window[int], settledOnly bool) []uint64 {
	var seqs []uint64
	fn := func(t stream.Tuple[int]) { seqs = append(seqs, t.Seq) }
	if settledOnly {
		w.ScanSettled(fn)
	} else {
		w.ScanAll(fn)
	}
	return seqs
}

func TestWindowInsertScanOrder(t *testing.T) {
	w := NewWindow[int]()
	for i := 0; i < 10; i++ {
		w.Insert(tup(uint64(i), i))
	}
	got := collect(w, false)
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("scan order broken at %d: %v", i, got)
		}
	}
	if w.Len() != 10 || w.SettledLen() != 0 {
		t.Fatalf("Len=%d SettledLen=%d, want 10, 0", w.Len(), w.SettledLen())
	}
}

func TestWindowExpeditionFlagLifecycle(t *testing.T) {
	w := NewWindow[int]()
	w.Insert(tup(1, 1))
	w.Insert(tup(2, 2))
	w.InsertSettled(tup(3, 3))

	if got := collect(w, true); len(got) != 1 || got[0] != 3 {
		t.Fatalf("settled scan = %v, want [3]", got)
	}
	if !w.ClearExpedition(1) {
		t.Fatal("ClearExpedition(1) not found")
	}
	if got := collect(w, true); len(got) != 2 {
		t.Fatalf("settled scan after clear = %v, want 2 entries", got)
	}
	// Clearing twice is idempotent and still reports presence.
	if !w.ClearExpedition(1) {
		t.Fatal("second ClearExpedition(1) reported missing")
	}
	if w.ClearExpedition(99) {
		t.Fatal("ClearExpedition(99) reported found")
	}
	if w.SettledLen() != 2 {
		t.Fatalf("SettledLen = %d, want 2", w.SettledLen())
	}
}

func TestWindowRemove(t *testing.T) {
	w := NewWindow[int]()
	for i := 0; i < 5; i++ {
		w.InsertSettled(tup(uint64(i), i*10))
	}
	v, ok := w.Remove(2)
	if !ok || v.Payload != 20 {
		t.Fatalf("Remove(2) = (%v, %v)", v, ok)
	}
	if _, ok := w.Remove(2); ok {
		t.Fatal("double remove succeeded")
	}
	if got := collect(w, false); len(got) != 4 {
		t.Fatalf("scan after remove = %v", got)
	}
	if w.Len() != 4 || w.SettledLen() != 4 {
		t.Fatalf("Len=%d SettledLen=%d, want 4, 4", w.Len(), w.SettledLen())
	}
	if _, ok := w.Get(3); !ok {
		t.Fatal("Get(3) missing")
	}
	if _, ok := w.Get(2); ok {
		t.Fatal("Get(2) still present")
	}
}

func TestWindowOldestSeq(t *testing.T) {
	w := NewWindow[int]()
	if _, ok := w.OldestSeq(); ok {
		t.Fatal("empty window has an oldest")
	}
	for i := 3; i < 8; i++ {
		w.InsertSettled(tup(uint64(i), i))
	}
	if seq, ok := w.OldestSeq(); !ok || seq != 3 {
		t.Fatalf("OldestSeq = (%d, %v), want 3", seq, ok)
	}
	w.Remove(3)
	w.Remove(4)
	if seq, ok := w.OldestSeq(); !ok || seq != 5 {
		t.Fatalf("OldestSeq after removals = (%d, %v), want 5", seq, ok)
	}
}

func TestWindowCompaction(t *testing.T) {
	// Insert and remove far more entries than stay live; the backing
	// slice must not grow without bound.
	w := NewWindow[int]()
	for i := 0; i < 10000; i++ {
		w.InsertSettled(tup(uint64(i), i))
		if i >= 100 {
			w.Remove(uint64(i - 100))
		}
	}
	if w.Len() != 100 {
		t.Fatalf("Len = %d, want 100", w.Len())
	}
	if cap := len(w.entries) - w.head; cap > 1000 {
		t.Fatalf("live region %d entries for 100 live tuples; compaction failed", cap)
	}
	got := collect(w, false)
	if len(got) != 100 || got[0] != 9900 || got[99] != 9999 {
		t.Fatalf("scan after heavy churn: len=%d first=%d last=%d", len(got), got[0], got[len(got)-1])
	}
}

func TestWindowHashProbe(t *testing.T) {
	w := NewWindow(WithHashIndex(func(v int) uint64 { return uint64(v % 10) }))
	for i := 0; i < 30; i++ {
		w.Insert(tup(uint64(i), i))
	}
	var hits []uint64
	w.Probe(3, false, func(t stream.Tuple[int]) { hits = append(hits, t.Seq) })
	if len(hits) != 3 || hits[0] != 3 || hits[1] != 13 || hits[2] != 23 {
		t.Fatalf("Probe(3) = %v, want [3 13 23]", hits)
	}
	// Settled-only probes skip expedited entries.
	w.ClearExpedition(13)
	hits = nil
	w.Probe(3, true, func(t stream.Tuple[int]) { hits = append(hits, t.Seq) })
	if len(hits) != 1 || hits[0] != 13 {
		t.Fatalf("settled Probe(3) = %v, want [13]", hits)
	}
	// Removal drops index entries.
	w.Remove(13)
	hits = nil
	w.Probe(3, true, func(t stream.Tuple[int]) { hits = append(hits, t.Seq) })
	if len(hits) != 0 {
		t.Fatalf("Probe after remove = %v, want empty", hits)
	}
}

func TestWindowRangeProbe(t *testing.T) {
	w := NewWindow(WithBTreeIndex(func(v int) uint64 { return uint64(v) }))
	for i := 0; i < 100; i++ {
		w.InsertSettled(tup(uint64(i), i))
	}
	var hits []uint64
	w.RangeProbe(10, 14, false, func(t stream.Tuple[int]) { hits = append(hits, t.Seq) })
	if len(hits) != 5 || hits[0] != 10 || hits[4] != 14 {
		t.Fatalf("RangeProbe(10,14) = %v", hits)
	}
}

// TestWindowPropertyAgainstReference drives a Window and a naive
// reference (map + ordered slice) with the same random operation
// sequence and compares observable state after every step.
func TestWindowPropertyAgainstReference(t *testing.T) {
	type refEntry struct {
		seq       uint64
		expedited bool
	}
	check := func(ops []uint16) bool {
		w := NewWindow[int]()
		var ref []refEntry
		next := uint64(0)
		find := func(seq uint64) int {
			for i := range ref {
				if ref[i].seq == seq {
					return i
				}
			}
			return -1
		}
		for _, op := range ops {
			switch op % 4 {
			case 0: // insert expedited
				w.Insert(tup(next, int(next)))
				ref = append(ref, refEntry{seq: next, expedited: true})
				next++
			case 1: // insert settled
				w.InsertSettled(tup(next, int(next)))
				ref = append(ref, refEntry{seq: next, expedited: false})
				next++
			case 2: // clear a pseudo-random entry's flag
				if len(ref) == 0 {
					continue
				}
				seq := ref[int(op/4)%len(ref)].seq
				w.ClearExpedition(seq)
				ref[find(seq)].expedited = false
			case 3: // remove a pseudo-random entry
				if len(ref) == 0 {
					continue
				}
				i := int(op/4) % len(ref)
				seq := ref[i].seq
				if _, ok := w.Remove(seq); !ok {
					return false
				}
				ref = append(ref[:i], ref[i+1:]...)
			}
			if w.Len() != len(ref) {
				return false
			}
			settled := 0
			for _, e := range ref {
				if !e.expedited {
					settled++
				}
			}
			if w.SettledLen() != settled {
				return false
			}
			all := collect(w, false)
			if len(all) != len(ref) {
				return false
			}
			for i := range all {
				if all[i] != ref[i].seq {
					return false
				}
			}
			var wantSettled []uint64
			for _, e := range ref {
				if !e.expedited {
					wantSettled = append(wantSettled, e.seq)
				}
			}
			gotSettled := collect(w, true)
			if len(gotSettled) != len(wantSettled) {
				return false
			}
			for i := range gotSettled {
				if gotSettled[i] != wantSettled[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowOpenCursorSurvivesCompaction pins the invariant slice
// migration depends on: seqs held by an open cursor (PeekMatching /
// ExtractSeqs peek first, remove later) stay valid handles across
// in-place compactions and ring base advances that happen between the
// peek and the removals — including compactions triggered mid-removal
// by the removals themselves.
func TestWindowOpenCursorSurvivesCompaction(t *testing.T) {
	w := NewWindow(WithHashIndex(func(v int) uint64 { return uint64(v) % 7 }))
	const n = 600
	for i := 0; i < n; i++ {
		w.InsertSettled(tup(uint64(i), i))
	}
	// The "cursor": every 3rd seq, peeked up front, removed at the end.
	var held []uint64
	for i := 0; i < n; i += 3 {
		held = append(held, uint64(i))
	}
	// Churn everything else away. These removals tombstone two thirds of
	// the entries array, forcing multiple in-place compactions and base
	// advances while the cursor is open.
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			if _, ok := w.Remove(uint64(i)); !ok {
				t.Fatalf("churn Remove(%d) missing", i)
			}
		}
	}
	if w.Len() != len(held) {
		t.Fatalf("Len = %d, want %d held entries", w.Len(), len(held))
	}
	// Drain the cursor. Each removal can itself trigger a compaction
	// that re-points the slots of the seqs still held; the exact
	// tuple multiset must come back regardless.
	got := map[uint64]int{}
	for _, seq := range held {
		v, ok := w.Remove(seq)
		if !ok {
			t.Fatalf("held seq %d vanished across compaction", seq)
		}
		if v.Seq != seq || v.Payload != int(seq) {
			t.Fatalf("held seq %d resolved to tuple {Seq:%d Payload:%d}", seq, v.Seq, v.Payload)
		}
		got[seq]++
	}
	for _, seq := range held {
		if got[seq] != 1 {
			t.Fatalf("seq %d extracted %d times", seq, got[seq])
		}
	}
	if w.Len() != 0 {
		t.Fatalf("window not empty after cursor drain: %d", w.Len())
	}
}

// TestWindowCursorSurvivesBelowBaseInjection drives the migration
// arrival order: store-only injections land below the destination
// window's ring base while older holes exist, and previously peeked
// seqs must keep resolving.
func TestWindowCursorSurvivesBelowBaseInjection(t *testing.T) {
	w := NewWindow[int](WithStride[int](3)) // node 0 of a 3-node pipeline
	// Recent arrivals anchor the ring high.
	for i := 300; i < 330; i += 3 {
		w.InsertSettled(tup(uint64(i), i))
	}
	held := []uint64{303, 309, 327}
	// An injected slice of an older key-group arrives below base, out of
	// the blue but home-aligned.
	for i := 30; i < 60; i += 3 {
		w.InsertSettled(tup(uint64(i), i))
	}
	if seq, ok := w.OldestSeq(); !ok || seq != 300 {
		t.Fatalf("OldestSeq = (%d, %v); arrival order must be preserved", seq, ok)
	}
	for _, seq := range held {
		if v, ok := w.Get(seq); !ok || v.Payload != int(seq) {
			t.Fatalf("held seq %d broken after below-base injection: (%v, %v)", seq, v, ok)
		}
	}
	// And the injected entries expire first (they are older), advancing
	// nothing the cursor depends on.
	for i := 30; i < 60; i += 3 {
		if _, ok := w.Remove(uint64(i)); !ok {
			t.Fatalf("injected seq %d missing", i)
		}
	}
	for _, seq := range held {
		if _, ok := w.Remove(seq); !ok {
			t.Fatalf("held seq %d lost after injected slice expired", seq)
		}
	}
}
