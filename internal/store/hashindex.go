package store

// HashIndex is a multimap from join key to tuple sequence numbers,
// backing the node-local hash acceleration of §7.6 (Table 2). Collisions
// within one key keep arrival order, so probes emit matches in a
// deterministic order.
type HashIndex struct {
	m    map[uint64][]uint64
	size int
}

// NewHashIndex returns an empty index.
func NewHashIndex() *HashIndex {
	return &HashIndex{m: make(map[uint64][]uint64)}
}

// Insert adds seq under key k.
func (h *HashIndex) Insert(k, seq uint64) {
	h.m[k] = append(h.m[k], seq)
	h.size++
}

// Remove deletes seq from key k, if present.
func (h *HashIndex) Remove(k, seq uint64) {
	seqs, ok := h.m[k]
	if !ok {
		return
	}
	for i, s := range seqs {
		if s == seq {
			seqs = append(seqs[:i], seqs[i+1:]...)
			h.size--
			break
		}
	}
	if len(seqs) == 0 {
		delete(h.m, k)
	} else {
		h.m[k] = seqs
	}
}

// Lookup calls fn for every seq stored under k, in insertion order.
func (h *HashIndex) Lookup(k uint64, fn func(seq uint64)) {
	for _, s := range h.m[k] {
		fn(s)
	}
}

// Len returns the number of (key, seq) entries.
func (h *HashIndex) Len() int { return h.size }
