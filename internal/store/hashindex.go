package store

// NoSeq is the nil sentinel of the intrusive per-key chains: an entry
// whose link is NoSeq has no neighbour on that side, and a key whose
// head is NoSeq is absent.
const NoSeq = ^uint64(0)

// HashIndex is the key table of the window's equi-join acceleration
// (§7.6, Table 2): an open-addressing map from join key to the head and
// tail of that key's chain of live window entries. The chain itself is
// intrusive — each window entry carries prev/next sequence numbers,
// resolved through the window's ring in O(1) — so the index holds no
// per-key slice, allocates nothing per tuple, and a probe walks a key's
// matches in arrival order without a single map lookup past the head.
//
// The table uses linear probing over a power-of-two bucket array with
// tombstoned deletion; it rehashes (dropping tombstones) when occupied
// plus tombstoned buckets exceed 3/4 of the capacity. Removing an
// interior chain entry does not touch the table at all: only head/tail
// changes need the bucket.
type HashIndex struct {
	buckets []hBucket
	used    int // occupied buckets
	tombs   int // tombstoned buckets
	size    int // (key, seq) entries across all chains
}

type hBucket struct {
	key        uint64
	head, tail uint64
	state      uint8 // bEmpty | bUsed | bTomb
}

const (
	bEmpty uint8 = iota
	bUsed
	bTomb
)

const minBuckets = 16

// NewHashIndex returns an empty index.
func NewHashIndex() *HashIndex { return &HashIndex{} }

// mix is the splitmix64 finalizer: join keys are often small dense
// integers, and linear probing needs their hashes spread over the whole
// bucket space.
func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// find returns the bucket index of key k, or -1 when absent.
func (h *HashIndex) find(k uint64) int {
	if len(h.buckets) == 0 {
		return -1
	}
	mask := uint64(len(h.buckets) - 1)
	for i := mix(k) & mask; ; i = (i + 1) & mask {
		b := &h.buckets[i]
		switch b.state {
		case bEmpty:
			return -1
		case bUsed:
			if b.key == k {
				return int(i)
			}
		}
	}
}

// InsertTail appends seq as the new tail of key k's chain and returns
// the previous tail, or NoSeq when k had no chain. The caller links the
// entries (the chain is intrusive; the index only tracks endpoints).
func (h *HashIndex) InsertTail(k, seq uint64) (prevTail uint64) {
	if (h.used+h.tombs+1)*4 > len(h.buckets)*3 {
		h.grow()
	}
	mask := uint64(len(h.buckets) - 1)
	firstTomb := -1
	for i := mix(k) & mask; ; i = (i + 1) & mask {
		b := &h.buckets[i]
		switch b.state {
		case bUsed:
			if b.key == k {
				prevTail = b.tail
				b.tail = seq
				h.size++
				return prevTail
			}
		case bTomb:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		case bEmpty:
			if firstTomb >= 0 {
				b = &h.buckets[firstTomb]
				h.tombs--
			}
			b.state = bUsed
			b.key = k
			b.head, b.tail = seq, seq
			h.used++
			h.size++
			return NoSeq
		}
	}
}

// Remove retires one (k, seq) entry whose chain neighbours are prev and
// next (NoSeq at the chain ends). The caller has already unlinked the
// entry; Remove repairs the endpoints — interior removals never touch
// the table.
func (h *HashIndex) Remove(k, prev, next uint64) {
	h.size--
	if prev != NoSeq && next != NoSeq {
		return // interior: head and tail unchanged
	}
	i := h.find(k)
	if i < 0 {
		panic("store: HashIndex.Remove of absent key")
	}
	b := &h.buckets[i]
	switch {
	case prev == NoSeq && next == NoSeq:
		b.state = bTomb
		h.used--
		h.tombs++
	case prev == NoSeq:
		b.head = next
	default:
		b.tail = prev
	}
}

// Head returns the oldest seq stored under k, or NoSeq when the key is
// absent; probes walk the chain from here via the entries' next links.
func (h *HashIndex) Head(k uint64) uint64 {
	i := h.find(k)
	if i < 0 {
		return NoSeq
	}
	return h.buckets[i].head
}

// Len returns the number of (key, seq) entries.
func (h *HashIndex) Len() int { return h.size }

// grow rehashes into a table sized for the occupied buckets, dropping
// tombstones. A table dominated by tombstones (the sliding-window
// steady state cycles keys in and out constantly) rehashes into the
// same capacity instead of doubling.
func (h *HashIndex) grow() {
	newCap := minBuckets
	for newCap*4 <= (h.used+1)*8 { // target load <= 1/2 after rehash
		newCap *= 2
	}
	old := h.buckets
	h.buckets = make([]hBucket, newCap)
	h.tombs = 0
	mask := uint64(newCap - 1)
	for i := range old {
		b := &old[i]
		if b.state != bUsed {
			continue
		}
		for j := mix(b.key) & mask; ; j = (j + 1) & mask {
			if h.buckets[j].state == bEmpty {
				h.buckets[j] = *b
				break
			}
		}
	}
}
