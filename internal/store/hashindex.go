package store

// HashIndex is a multimap from join key to tuple sequence numbers,
// backing the node-local hash acceleration of §7.6 (Table 2). Collisions
// within one key keep arrival order, so probes emit matches in a
// deterministic order.
type HashIndex struct {
	m    map[uint64][]uint64
	size int
	// spare recycles the chain backings of emptied keys: a sliding
	// window cycles the same keys in and out constantly, and without
	// reuse every re-appearance of a key re-grows its chain from nil.
	// Bounded, so the map's own no-empty-chains memory guarantee (no
	// growth with the lifetime key domain) is preserved.
	spare [][]uint64
}

// spareChains bounds the recycled chain backings kept per index.
const spareChains = 64

// NewHashIndex returns an empty index.
func NewHashIndex() *HashIndex {
	return &HashIndex{m: make(map[uint64][]uint64)}
}

// Insert adds seq under key k.
func (h *HashIndex) Insert(k, seq uint64) {
	seqs, ok := h.m[k]
	if !ok && len(h.spare) > 0 {
		n := len(h.spare) - 1
		seqs = h.spare[n]
		h.spare[n] = nil
		h.spare = h.spare[:n]
	}
	h.m[k] = append(seqs, seq)
	h.size++
}

// Remove deletes seq from key k, if present.
func (h *HashIndex) Remove(k, seq uint64) {
	seqs, ok := h.m[k]
	if !ok {
		return
	}
	for i, s := range seqs {
		if s == seq {
			seqs = append(seqs[:i], seqs[i+1:]...)
			h.size--
			break
		}
	}
	if len(seqs) == 0 {
		delete(h.m, k)
		if cap(seqs) > 0 && len(h.spare) < spareChains {
			h.spare = append(h.spare, seqs[:0])
		}
	} else {
		h.m[k] = seqs
	}
}

// Lookup calls fn for every seq stored under k, in insertion order.
func (h *HashIndex) Lookup(k uint64, fn func(seq uint64)) {
	for _, s := range h.m[k] {
		fn(s)
	}
}

// Len returns the number of (key, seq) entries.
func (h *HashIndex) Len() int { return h.size }
