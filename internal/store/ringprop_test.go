package store

import (
	"math/rand"
	"testing"

	"handshakejoin/internal/stream"
)

// refWindow is the map-backed reference the ring store is checked
// against: the naive arrival-ordered slice + per-op linear scans that
// the pre-ring Window was, kept test-only. Every observable of the real
// Window is derived from first principles here.
type refWindow struct {
	ents []refEnt
	key  func(int) uint64
}

type refEnt struct {
	seq       uint64
	pay       int
	expedited bool
}

func (r *refWindow) find(seq uint64) int {
	for i := range r.ents {
		if r.ents[i].seq == seq {
			return i
		}
	}
	return -1
}

func (r *refWindow) insert(seq uint64, pay int, expedited bool) {
	r.ents = append(r.ents, refEnt{seq: seq, pay: pay, expedited: expedited})
}

func (r *refWindow) remove(seq uint64) (int, bool) {
	i := r.find(seq)
	if i < 0 {
		return 0, false
	}
	pay := r.ents[i].pay
	r.ents = append(r.ents[:i], r.ents[i+1:]...)
	return pay, true
}

func (r *refWindow) clear(seq uint64) bool {
	i := r.find(seq)
	if i < 0 {
		return false
	}
	r.ents[i].expedited = false
	return true
}

func (r *refWindow) settled() int {
	n := 0
	for i := range r.ents {
		if !r.ents[i].expedited {
			n++
		}
	}
	return n
}

func (r *refWindow) probe(k uint64, settledOnly bool) []uint64 {
	var seqs []uint64
	for i := range r.ents {
		if r.key(r.ents[i].pay) != k {
			continue
		}
		if settledOnly && r.ents[i].expedited {
			continue
		}
		seqs = append(seqs, r.ents[i].seq)
	}
	return seqs
}

// compareWindows checks every observable of w against ref.
func compareWindows(t *testing.T, step int, w *Window[int], ref *refWindow, hashKeys int) {
	t.Helper()
	if w.Len() != len(ref.ents) {
		t.Fatalf("step %d: Len = %d, ref %d", step, w.Len(), len(ref.ents))
	}
	if w.SettledLen() != ref.settled() {
		t.Fatalf("step %d: SettledLen = %d, ref %d", step, w.SettledLen(), ref.settled())
	}
	var got []uint64
	w.ScanAll(func(tp stream.Tuple[int]) { got = append(got, tp.Seq) })
	if len(got) != len(ref.ents) {
		t.Fatalf("step %d: ScanAll %d entries, ref %d", step, len(got), len(ref.ents))
	}
	for i := range got {
		if got[i] != ref.ents[i].seq {
			t.Fatalf("step %d: ScanAll[%d] = %d, ref %d (arrival order broken)", step, i, got[i], ref.ents[i].seq)
		}
	}
	if seq, ok := w.OldestSeq(); ok != (len(ref.ents) > 0) || (ok && seq != ref.ents[0].seq) {
		t.Fatalf("step %d: OldestSeq = (%d, %v)", step, seq, ok)
	}
	// Point lookups: every ref entry resolves, with payload intact.
	for i := range ref.ents {
		v, ok := w.Get(ref.ents[i].seq)
		if !ok || v.Payload != ref.ents[i].pay {
			t.Fatalf("step %d: Get(%d) = (%v, %v), ref payload %d", step, ref.ents[i].seq, v, ok, ref.ents[i].pay)
		}
	}
	if hashKeys > 0 {
		for k := 0; k < hashKeys; k++ {
			for _, settledOnly := range []bool{false, true} {
				var hits []uint64
				w.Probe(uint64(k), settledOnly, func(tp stream.Tuple[int]) { hits = append(hits, tp.Seq) })
				want := ref.probe(uint64(k), settledOnly)
				if len(hits) != len(want) {
					t.Fatalf("step %d: Probe(%d, %v) = %v, ref %v", step, k, settledOnly, hits, want)
				}
				for i := range hits {
					if hits[i] != want[i] {
						t.Fatalf("step %d: Probe(%d, %v) = %v, ref %v (order)", step, k, settledOnly, hits, want)
					}
				}
			}
		}
	}
}

// TestRingSpillThenReanchorReachesSpilledEntries pins the schedule from
// REVIEW: an idle-then-burst insert past maxRingSlots spills a wide live
// span into the overflow map, and a below-base migration injection then
// re-anchors the ring backwards over the spilled seqs. Every spilled
// entry must stay reachable through the in-span-but-empty ring slots —
// lookup has to fall through to the overflow tier, and a compaction that
// re-points slots must migrate covered overflow entries into the ring
// without leaving a stale copy behind.
func TestRingSpillThenReanchorReachesSpilledEntries(t *testing.T) {
	keyFn := func(v int) uint64 { return uint64(v) % 3 }
	schedule := func() *Window[int] {
		w := NewWindow(WithHashIndex(keyFn))
		w.Insert(tup(0, 100))
		w.Insert(tup(1000000, 101))
		w.Insert(tup(1<<20, 102))  // jump ≥ maxRingSlots: spills 0 and 1000000
		w.Insert(tup(500000, 103)) // re-anchor backwards: span re-covers 1000000
		return w
	}
	live := []struct {
		seq uint64
		pay int
	}{{0, 100}, {1000000, 101}, {1 << 20, 102}, {500000, 103}}

	checkAll := func(w *Window[int], when string) {
		t.Helper()
		for _, c := range live {
			if v, ok := w.Get(c.seq); !ok || v.Payload != c.pay {
				t.Fatalf("%s: Get(%d) = (%v, %v), want payload %d", when, c.seq, v.Payload, ok, c.pay)
			}
		}
		// The spilled entry's hash chain must resolve through the
		// overflow (101 is the only payload with key 2).
		var hits []uint64
		w.Probe(2, false, func(tp stream.Tuple[int]) { hits = append(hits, tp.Seq) })
		if len(hits) != 1 || hits[0] != 1000000 {
			t.Fatalf("%s: Probe(2) = %v, want [1000000]", when, hits)
		}
	}

	w := schedule()
	checkAll(w, "after re-anchor")
	for _, c := range live {
		if !w.ClearExpedition(c.seq) {
			t.Fatalf("ClearExpedition(%d) missed a live entry", c.seq)
		}
	}
	if w.SettledLen() != len(live) {
		t.Fatalf("SettledLen = %d, want %d", w.SettledLen(), len(live))
	}

	// Force in-place compaction while the overflow entry's seq is
	// span-covered: setSlot must move it into the ring, not strand a
	// stale overflow copy for clearSeq to resurrect later.
	const extras = 100
	for i := 1; i <= extras; i++ {
		w.InsertSettled(tup(uint64(1<<20+i), 3*i)) // key 0: stays off chain 2
	}
	for i := 1; i <= extras; i++ {
		if _, ok := w.Remove(uint64(1<<20 + i)); !ok {
			t.Fatalf("Remove(extra %d) missing", i)
		}
	}
	checkAll(w, "after compaction")

	// Drain, stranded entry first: expiry must actually free it.
	for _, c := range live {
		if v, ok := w.Remove(c.seq); !ok || v.Payload != c.pay {
			t.Fatalf("drain: Remove(%d) = (%v, %v), want payload %d", c.seq, v.Payload, ok, c.pay)
		}
	}
	if w.Len() != 0 || w.SettledLen() != 0 {
		t.Fatalf("drained window reports Len=%d SettledLen=%d", w.Len(), w.SettledLen())
	}

	// Re-inserting a seq whose live entry sits in the overflow behind an
	// empty in-span ring slot must still panic as a duplicate.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("duplicate insert of a spill-covered seq did not panic")
			}
		}()
		w2 := schedule()
		w2.Insert(tup(1000000, 999))
	}()
}

// TestRingStorePropertyVsMapReference drives the ring-slot store and
// the map-backed reference through identical random schedules: sparse
// monotone inserts (a lane sees a gapped subsequence of the global seq
// space), expedite/settle flips, random removals (extracted-slice
// holes), front removals (expiry), bulk extraction, below-base
// injections (migration), and long-idle-then-burst seq jumps big enough
// to overflow the bounded ring into the spill map — under stride 1 and
// a 3-node home residue.
func TestRingStorePropertyVsMapReference(t *testing.T) {
	const hashKeys = 5
	for _, stride := range []int{1, 3} {
		for seed := int64(1); seed <= 6; seed++ {
			rnd := rand.New(rand.NewSource(seed * 7919))
			keyFn := func(v int) uint64 { return uint64(v) % hashKeys }
			w := NewWindow(
				WithStride[int](stride),
				WithHashIndex(keyFn),
			)
			ref := &refWindow{key: func(v int) uint64 { return keyFn(v) }}
			// next is the lane's cursor into the global seq space; the
			// window owns seqs ≡ residue (mod stride).
			residue := uint64(0)
			if stride > 1 {
				residue = uint64(rnd.Intn(stride))
			}
			next := residue
			st := uint64(stride)
			used := map[uint64]bool{}
			pay := 0
			insertAt := func(seq uint64, settledFlag bool) {
				pay++
				used[seq] = true
				tpl := tup(seq, pay)
				if settledFlag {
					w.InsertSettled(tpl)
				} else {
					w.Insert(tpl)
				}
				ref.insert(seq, pay, !settledFlag)
			}
			for step := 0; step < 900; step++ {
				switch op := rnd.Intn(100); {
				case op < 40: // sparse monotone insert: skip 0..7 owned seqs
					next += st * uint64(1+rnd.Intn(8))
					insertAt(next, rnd.Intn(2) == 0)
				case op < 50: // expedite flip on a random live entry
					if len(ref.ents) > 0 {
						seq := ref.ents[rnd.Intn(len(ref.ents))].seq
						ref.clear(seq)
						if !w.ClearExpedition(seq) {
							t.Fatalf("seed %d step %d: ClearExpedition(%d) missed a live entry", seed, step, seq)
						}
					}
				case op < 65: // expiry: remove from the front
					if len(ref.ents) > 0 {
						seq := ref.ents[0].seq
						wantPay, _ := ref.remove(seq)
						v, ok := w.Remove(seq)
						if !ok || v.Payload != wantPay {
							t.Fatalf("seed %d step %d: front Remove(%d) = (%v, %v)", seed, step, seq, v, ok)
						}
					}
				case op < 80: // extraction hole: remove a random live entry
					if len(ref.ents) > 0 {
						seq := ref.ents[rnd.Intn(len(ref.ents))].seq
						wantPay, _ := ref.remove(seq)
						v, ok := w.Remove(seq)
						if !ok || v.Payload != wantPay {
							t.Fatalf("seed %d step %d: hole Remove(%d) = (%v, %v)", seed, step, seq, v, ok)
						}
					}
				case op < 85: // bulk extract: a slice of up to 6 random entries
					for j := 0; j < 6 && len(ref.ents) > 0; j++ {
						seq := ref.ents[rnd.Intn(len(ref.ents))].seq
						ref.remove(seq)
						if _, ok := w.Remove(seq); !ok {
							t.Fatalf("seed %d step %d: bulk Remove(%d) missing", seed, step, seq)
						}
					}
				case op < 92: // below-base injection (migration of an older group)
					if len(ref.ents) > 0 {
						oldest := ref.ents[0].seq
						var back uint64
						switch rnd.Intn(8) {
						case 0, 1:
							// Far below: beyond the ring's reach, into
							// the overflow tier.
							back = st * uint64(maxRingSlots+rnd.Intn(1000))
						case 2, 3:
							// Mid-range: still ring-reachable, but far
							// enough back that the re-anchored span can
							// sweep over seqs an earlier burst spilled
							// into the overflow.
							back = st * uint64(1+rnd.Intn(maxRingSlots-1))
						default:
							back = st * uint64(1+rnd.Intn(64))
						}
						if oldest >= back+residue {
							seq := oldest - back
							if !used[seq] {
								insertAt(seq, true)
							}
						}
					}
				default: // long idle then burst: the seq space raced ahead
					jump := st * uint64(rnd.Intn(3*maxRingSlots))
					next += jump
					insertAt(next+st, rnd.Intn(2) == 0)
					next += st
				}
				compareWindows(t, step, w, ref, hashKeys)
			}
			// Drain completely: every entry must come back out.
			for len(ref.ents) > 0 {
				seq := ref.ents[0].seq
				wantPay, _ := ref.remove(seq)
				v, ok := w.Remove(seq)
				if !ok || v.Payload != wantPay {
					t.Fatalf("seed %d drain: Remove(%d) = (%v, %v)", seed, seq, v, ok)
				}
			}
			if w.Len() != 0 || w.SettledLen() != 0 {
				t.Fatalf("seed %d: drained window reports Len=%d SettledLen=%d", seed, w.Len(), w.SettledLen())
			}
		}
	}
}
