package obs

import (
	"io"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"
)

func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd on this platform: %v", err)
	}
	return len(ents)
}

// TestServeCloseNoLeak creates and closes export servers in a loop,
// exercising a scrape on each, and asserts that neither goroutines nor
// file descriptors accumulate: Close must tear down the listener, the
// connections, and the serving goroutine itself.
func TestServeCloseNoLeak(t *testing.T) {
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	// One warm-up round so lazily initialized runtime state (resolver,
	// pollers) does not count as a leak.
	warm, err := Serve("127.0.0.1:0", func() Dump { return Dump{} }, NewRing(64))
	if err != nil {
		t.Fatal(err)
	}
	warm.Close()

	goroutines0 := runtime.NumGoroutine()
	fds0 := countFDs(t)
	for i := 0; i < 25; i++ {
		s, err := Serve("127.0.0.1:0", func() Dump {
			return Dump{Samples: []Sample{{Name: "llhj_test", Value: 1}}}
		}, NewRing(64))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Get("http://" + s.Addr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	client.CloseIdleConnections()

	// Connections close asynchronously on the client side; allow the
	// counts a moment to settle before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		goroutines := runtime.NumGoroutine()
		fds := countFDs(t)
		if goroutines <= goroutines0+2 && fds <= fds0+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak after 25 create/close cycles: goroutines %d -> %d, fds %d -> %d",
				goroutines0, goroutines, fds0, fds)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
