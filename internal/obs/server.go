package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Sample is one Prometheus sample: a counter or gauge with optional
// labels. Help is emitted on the first sample of each metric name.
type Sample struct {
	Name   string
	Help   string
	Gauge  bool
	Labels [][2]string
	Value  float64
}

// Hist is one Prometheus histogram: per-bucket (non-cumulative) counts
// with ascending upper bounds; the +Inf bucket is implied by Count.
type Hist struct {
	Name, Help string
	Bounds     []float64
	Counts     []uint64
	Sum        float64
	Count      uint64
}

// Dump is everything one scrape exports.
type Dump struct {
	Samples []Sample
	Hists   []Hist
}

// WriteProm writes the dump in the Prometheus text exposition format.
func WriteProm(w io.Writer, d Dump) {
	seen := map[string]bool{}
	for _, s := range d.Samples {
		if !seen[s.Name] {
			seen[s.Name] = true
			if s.Help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help)
			}
			typ := "counter"
			if s.Gauge {
				typ = "gauge"
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, typ)
		}
		fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels), promFloat(s.Value))
	}
	for _, h := range d.Hists {
		if h.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", h.Name, h.Help)
		}
		fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name)
		var cum uint64
		for i, b := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.Name, promFloat(b), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count)
		fmt.Fprintf(w, "%s_sum %s\n", h.Name, promFloat(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", h.Name, h.Count)
	}
}

func promLabels(ls [][2]string) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l[0], l[1])
	}
	b.WriteByte('}')
	return b.String()
}

func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Server is the engine's HTTP export surface. Endpoints:
//
//	/metrics        Prometheus text exposition of the gather dump
//	/events         JSONL drain of the event ring (?since=N resumes)
//	/debug/vars     expvar (Go runtime memstats, cmdline)
//	/debug/pprof/   net/http/pprof profiles
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve binds addr (e.g. "127.0.0.1:9177"; ":0" picks a free port) and
// serves the export surface on its own goroutine until Close. gather
// is called per scrape; ring may be nil (the /events drain is then
// empty).
func Serve(addr string, gather func() Dump, ring *Ring) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WriteProm(w, gather())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		var since uint64
		if s := req.URL.Query().Get("since"); s != "" {
			since, _ = strconv.ParseUint(s, 10, 64)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range ring.Drain(since) {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, closes the listener and every open
// connection, and waits for the serving goroutine to exit — so an
// engine that creates and closes observability endpoints in a loop
// (tests, short-lived jobs) leaks neither goroutines nor file
// descriptors.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
