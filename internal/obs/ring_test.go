package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestDrainBasicAndResume(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 10; i++ {
		r.Emit(fmt.Sprintf("k%d", i), i, int64(i), int64(i), 0)
	}
	evs := r.Drain(0)
	if len(evs) != 10 {
		t.Fatalf("Drain(0) = %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) || ev.Kind != fmt.Sprintf("k%d", i) || ev.Shard != i {
			t.Fatalf("event %d mismatch: %+v", i, ev)
		}
	}
	// Resume semantics: nothing new → empty, then only the new events.
	if got := r.Drain(10); len(got) != 0 {
		t.Fatalf("Drain(10) on empty tail = %d events", len(got))
	}
	r.Emit("late", -1, -1, 0, 0)
	evs = r.Drain(10)
	if len(evs) != 1 || evs[0].Seq != 10 || evs[0].Kind != "late" {
		t.Fatalf("resume drain: %+v", evs)
	}
}

func TestDrainWrapAround(t *testing.T) {
	r := NewRing(64) // rounds to exactly 64 slots
	const n = 200
	for i := 0; i < n; i++ {
		r.Emit("e", -1, -1, int64(i), 0)
	}
	evs := r.Drain(0)
	if len(evs) != 64 {
		t.Fatalf("Drain after wrap = %d events, want 64", len(evs))
	}
	for i, ev := range evs {
		want := uint64(n - 64 + i)
		if ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest 64 must survive, rest overwritten)", i, ev.Seq, want)
		}
	}
	// A nil ring drains to nothing (emission sites thread possibly-nil rings).
	var nilRing *Ring
	if nilRing.Drain(0) != nil {
		t.Fatal("nil ring drained events")
	}
}

// TestDrainStalledWriterHole pins the lost-event bug of the two-step
// publish: Emit claims a sequence number and then stores the event,
// so a writer stalled between the two leaves a hole. A drain that
// returned the events around the hole would make the scraper resume
// past it, losing the event forever once the stalled writer finally
// publishes. Drain must truncate at the hole and pick the event up on
// the next pass instead.
func TestDrainStalledWriterHole(t *testing.T) {
	r := NewRing(64)
	r.Emit("before", -1, -1, 0, 0) // seq 0
	hole := r.pos.Add(1) - 1       // a writer claims seq 1 and stalls
	r.Emit("after", -1, -1, 0, 0)  // seq 2
	evs := r.Drain(0)
	if len(evs) != 1 || evs[0].Seq != 0 {
		t.Fatalf("drain across a hole must truncate before it; got %d events %+v", len(evs), evs)
	}
	// The stalled writer publishes; the resumed drain sees both events.
	r.slots[hole&r.mask].Store(&Event{Seq: hole, Kind: "stalled"})
	evs = r.Drain(1)
	if len(evs) != 2 || evs[0].Seq != 1 || evs[0].Kind != "stalled" || evs[1].Seq != 2 {
		t.Fatalf("post-publish drain: %+v", evs)
	}
}

// TestDrainConcurrent runs concurrent writers against a draining
// scraper (run under -race in CI): the scraper must never see a
// duplicate and never skip an event it could still report — every
// sequence number it misses must be a genuine wrap-around overwrite,
// and within each drained batch the sequence numbers are strictly
// ascending.
func TestDrainConcurrent(t *testing.T) {
	const (
		writers   = 4
		perWriter = 3000
		ringSize  = 256
	)
	r := NewRing(ringSize)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Emit("c", w, int64(i), int64(w*perWriter+i), 0)
			}
		}(w)
	}
	seen := map[uint64]int{}
	since := uint64(0)
	drainOnce := func() {
		evs := r.Drain(since)
		last := int64(-1)
		for _, ev := range evs {
			if int64(ev.Seq) <= last {
				t.Fatalf("drain batch not strictly ascending: seq %d after %d", ev.Seq, last)
			}
			last = int64(ev.Seq)
			seen[ev.Seq]++
			if seen[ev.Seq] > 1 {
				t.Fatalf("duplicate event seq %d", ev.Seq)
			}
		}
		if len(evs) > 0 {
			since = evs[len(evs)-1].Seq + 1
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			// Writers are quiet: everything still claimed is published.
			drainOnce()
			total := r.pos.Load()
			if total != writers*perWriter {
				t.Fatalf("claimed %d events, want %d", total, writers*perWriter)
			}
			// Every event the scraper missed must have been overwritten
			// while it was out of reach — i.e. the cursor may only have
			// jumped over seqs that a wrap made unreadable, which in the
			// final state means nothing missing in the last ring's worth.
			for seq := total - ringSize; seq < total; seq++ {
				if seen[seq] == 0 {
					t.Fatalf("event %d lost: inside the final ring window and never drained", seq)
				}
			}
			return
		default:
			drainOnce()
		}
	}
}
