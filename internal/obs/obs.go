// Package obs is the engine's live observability layer: a bounded
// lock-free ring of structured control-plane events (rebalances,
// handoff slices, ring-store spills, heartbeat stalls) and a minimal
// HTTP export surface serving Prometheus text exposition, expvar,
// net/http/pprof and a JSONL event drain.
//
// The package is deliberately dumb about what it exports: engines hand
// it a gather function producing already-read samples, so nothing here
// ever touches engine internals or takes engine locks. Emitting an
// event allocates one Event (control-plane events are rare — a busy
// run produces a few per control cycle, not per tuple); the data-plane
// hot path never calls into this package.
package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Event is one structured control-plane event. Kind names the event
// ("rebalance_applied", "handoff_begin", "slice_hop", "handoff_settle",
// "migrate_freeze", "heartbeat_stall", "ring_spill", "ring_reanchor",
// "window_compact"); Shard and Group
// are -1 when the event is not scoped to one. A and B carry
// kind-specific integers (counts, shard ids, timestamps) documented at
// the emission site.
type Event struct {
	Seq   uint64 `json:"seq"`
	Wall  int64  `json:"wall_ns"`
	Kind  string `json:"kind"`
	Shard int    `json:"shard"`
	Group int64  `json:"group"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
}

// Ring is a bounded, lock-free, multi-producer event buffer. Writers
// claim a slot with one atomic add and publish a fully built Event
// with one atomic pointer store; readers (Drain) see either a slot's
// old event or its new one, never a torn mix, so the ring is exact
// under the race detector with zero locks. When the ring wraps, the
// oldest events are overwritten — Drain reports at most the last cap
// events.
type Ring struct {
	mask  uint64
	pos   atomic.Uint64
	slots []atomic.Pointer[Event]
}

// NewRing returns a ring holding the last size events (rounded up to a
// power of two, minimum 64).
func NewRing(size int) *Ring {
	cap := 64
	for cap < size {
		cap <<= 1
	}
	return &Ring{mask: uint64(cap - 1), slots: make([]atomic.Pointer[Event], cap)}
}

// Emit publishes one event. A nil ring drops it — callers thread a
// single possibly-nil *Ring instead of guarding every emission site.
func (r *Ring) Emit(kind string, shard int, group int64, a, b int64) {
	if r == nil {
		return
	}
	ev := &Event{
		Wall:  time.Now().UnixNano(),
		Kind:  kind,
		Shard: shard,
		Group: group,
		A:     a,
		B:     b,
	}
	ev.Seq = r.pos.Add(1) - 1
	r.slots[ev.Seq&r.mask].Store(ev)
}

// Next returns the sequence number the next emitted event will carry;
// Drain(Next()) returns only events emitted after the call.
func (r *Ring) Next() uint64 {
	if r == nil {
		return 0
	}
	return r.pos.Load()
}

// Drain returns the buffered events with Seq >= since, oldest first.
// Events overwritten by ring wrap-around are gone; callers resume with
// since = last.Seq+1.
//
// Drain never skips over an unpublished event: Emit claims a sequence
// number with one atomic add and publishes the built event with a
// second atomic store, so a concurrent writer can hold a claimed-but-
// unpublished slot — a hole — between the two. A drain that returned
// the events around such a hole would make the caller resume past it,
// and the event would be lost forever once published. Instead, the
// result is truncated at the first missing sequence number at or above
// the wrap floor (below the floor the ring legitimately forgets, so
// gaps there are expected overwrites, not in-flight writers); the
// in-flight event is simply reported by the next drain after its
// publish lands.
func (r *Ring) Drain(since uint64) []Event {
	if r == nil {
		return nil
	}
	// Snapshot the claim counter first: events claimed after this point
	// are the next drain's business, and any seq below pos0 that is
	// absent from the slots is either overwritten (below the wrap
	// floor) or an in-flight writer (at or above it).
	pos0 := r.pos.Load()
	if since >= pos0 {
		return nil
	}
	var out []Event
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil && ev.Seq >= since && ev.Seq < pos0 {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	floor := since
	if pos0 > uint64(len(r.slots)) && pos0-uint64(len(r.slots)) > floor {
		floor = pos0 - uint64(len(r.slots))
	}
	// Keep survivors below the floor unconditionally (their slot has
	// been re-claimed but the new event hasn't landed, so the old one
	// is still readable — returning it is strictly better than losing
	// it); from the floor upward require contiguity.
	keep := 0
	for keep < len(out) && out[keep].Seq < floor {
		keep++
	}
	expect := floor
	for keep < len(out) && out[keep].Seq == expect {
		keep++
		expect++
	}
	return out[:keep]
}
