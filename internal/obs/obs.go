// Package obs is the engine's live observability layer: a bounded
// lock-free ring of structured control-plane events (rebalances,
// handoff slices, ring-store spills, heartbeat stalls) and a minimal
// HTTP export surface serving Prometheus text exposition, expvar,
// net/http/pprof and a JSONL event drain.
//
// The package is deliberately dumb about what it exports: engines hand
// it a gather function producing already-read samples, so nothing here
// ever touches engine internals or takes engine locks. Emitting an
// event allocates one Event (control-plane events are rare — a busy
// run produces a few per control cycle, not per tuple); the data-plane
// hot path never calls into this package.
package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Event is one structured control-plane event. Kind names the event
// ("rebalance_applied", "handoff_begin", "slice_hop", "handoff_settle",
// "migrate_freeze", "heartbeat_stall", "ring_spill", "ring_reanchor",
// "window_compact"); Shard and Group
// are -1 when the event is not scoped to one. A and B carry
// kind-specific integers (counts, shard ids, timestamps) documented at
// the emission site.
type Event struct {
	Seq   uint64 `json:"seq"`
	Wall  int64  `json:"wall_ns"`
	Kind  string `json:"kind"`
	Shard int    `json:"shard"`
	Group int64  `json:"group"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
}

// Ring is a bounded, lock-free, multi-producer event buffer. Writers
// claim a slot with one atomic add and publish a fully built Event
// with one atomic pointer store; readers (Drain) see either a slot's
// old event or its new one, never a torn mix, so the ring is exact
// under the race detector with zero locks. When the ring wraps, the
// oldest events are overwritten — Drain reports at most the last cap
// events.
type Ring struct {
	mask  uint64
	pos   atomic.Uint64
	slots []atomic.Pointer[Event]
}

// NewRing returns a ring holding the last size events (rounded up to a
// power of two, minimum 64).
func NewRing(size int) *Ring {
	cap := 64
	for cap < size {
		cap <<= 1
	}
	return &Ring{mask: uint64(cap - 1), slots: make([]atomic.Pointer[Event], cap)}
}

// Emit publishes one event. A nil ring drops it — callers thread a
// single possibly-nil *Ring instead of guarding every emission site.
func (r *Ring) Emit(kind string, shard int, group int64, a, b int64) {
	if r == nil {
		return
	}
	ev := &Event{
		Wall:  time.Now().UnixNano(),
		Kind:  kind,
		Shard: shard,
		Group: group,
		A:     a,
		B:     b,
	}
	ev.Seq = r.pos.Add(1) - 1
	r.slots[ev.Seq&r.mask].Store(ev)
}

// Next returns the sequence number the next emitted event will carry;
// Drain(Next()) returns only events emitted after the call.
func (r *Ring) Next() uint64 {
	if r == nil {
		return 0
	}
	return r.pos.Load()
}

// Drain returns the buffered events with Seq >= since, oldest first.
// Events overwritten by ring wrap-around are gone; callers resume with
// since = last.Seq+1.
func (r *Ring) Drain(since uint64) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil && ev.Seq >= since {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
