package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeriesBucketsAndStats(t *testing.T) {
	s := NewSeries(4)
	for i, lat := range []int64{10, 20, 30, 40, 100, 200} {
		s.Add(int64(i)*1000, lat)
	}
	pts := s.Points()
	if len(pts) != 1 {
		t.Fatalf("points = %d, want 1 full bucket", len(pts))
	}
	p := pts[0]
	if p.Count != 4 || p.Avg != 25 || p.Max != 40 || p.Min != 10 || p.At != 3000 {
		t.Fatalf("bucket = %+v", p)
	}
	wantStd := math.Sqrt((225 + 25 + 25 + 225) / 4.0)
	if math.Abs(p.Std-wantStd) > 1e-9 {
		t.Fatalf("std = %v, want %v", p.Std, wantStd)
	}
	s.Flush()
	pts = s.Points()
	if len(pts) != 2 || pts[1].Count != 2 || pts[1].Avg != 150 {
		t.Fatalf("after flush: %+v", pts)
	}
}

func TestSeriesSummarize(t *testing.T) {
	s := NewSeries(3)
	var sum float64
	var max int64
	for i := int64(1); i <= 10; i++ {
		s.Add(i, i*7)
		sum += float64(i * 7)
		if i*7 > max {
			max = i * 7
		}
	}
	sm := s.Summarize()
	if sm.Count != 10 || sm.Max != max {
		t.Fatalf("summary = %+v", sm)
	}
	if math.Abs(sm.Avg-sum/10) > 1e-9 {
		t.Fatalf("avg = %v, want %v", sm.Avg, sum/10)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Add(i)
	}
	if h.Count() != 1000 || h.Max() != 1000 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-500.5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	// Median of 1..1000 is ~500; the log2 histogram reports an upper
	// bound of the containing bucket (512..1023 → 1024).
	if q := h.Quantile(0.5); q < 500 || q > 1024 {
		t.Fatalf("p50 = %d, want in [500, 1024]", q)
	}
	if q := h.Quantile(1.0); q < 1000 {
		t.Fatalf("p100 = %d, want >= max", q)
	}
}

func TestHistogramPropertyQuantileBounds(t *testing.T) {
	// Property: for any samples, Quantile(q) upper-bounds at least a q
	// fraction of them, within bucket resolution (2x).
	check := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Add(int64(v % 100000))
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99} {
			bound := h.Quantile(q)
			covered := 0
			for _, v := range raw {
				if int64(v%100000) <= bound {
					covered++
				}
			}
			if float64(covered) < q*float64(len(raw)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Tuples: 3000, Elapsed: 2e9}
	if got := tp.PerSecond(); got != 1500 {
		t.Fatalf("PerSecond = %v", got)
	}
	if (Throughput{}).PerSecond() != 0 {
		t.Fatal("zero throughput not 0")
	}
	if s := tp.String(); s != "1500 tuples/sec" {
		t.Fatalf("String = %q", s)
	}
}

func TestPercentileAndMax(t *testing.T) {
	xs := []int64{5, 1, 9, 3, 7}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %d", p)
	}
	if p := Percentile(xs, 100); p != 9 {
		t.Fatalf("p100 = %d", p)
	}
	if p := Percentile(xs, 50); p != 5 {
		t.Fatalf("p50 = %d", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	if MaxInt64(xs) != 9 || MaxInt64(nil) != 0 {
		t.Fatal("MaxInt64")
	}
	// Percentile must not mutate its input.
	if xs[0] != 5 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}
