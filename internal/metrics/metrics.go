// Package metrics implements the measurement machinery used by the
// experiment harness: streaming latency statistics (average, standard
// deviation, maximum) over fixed-size buckets of output tuples — the
// paper plots one data point per 200,000 output tuples —, a logarithmic
// latency histogram, and throughput meters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// LatencyPoint is one point of a latency-over-time series: statistics of
// the latencies of Count output tuples, positioned at the wall-clock time
// At (nanoseconds since the start of the run) of the last tuple in the
// bucket.
type LatencyPoint struct {
	At    int64
	Count int
	Avg   float64
	Std   float64
	Max   int64
	Min   int64
}

// Series accumulates latency samples and cuts a LatencyPoint every
// BucketSize samples, mirroring the paper's plots ("each data point
// represents 200,000 output tuples").
type Series struct {
	BucketSize int

	points []LatencyPoint
	// running bucket state
	n          int
	sum, sumSq float64
	max, min   int64
	lastAt     int64
}

// NewSeries returns a Series cutting one point per bucketSize samples.
func NewSeries(bucketSize int) *Series {
	if bucketSize < 1 {
		bucketSize = 1
	}
	return &Series{BucketSize: bucketSize, min: math.MaxInt64}
}

// Add records one latency sample (nanoseconds) observed at time at.
func (s *Series) Add(at, latency int64) {
	s.n++
	f := float64(latency)
	s.sum += f
	s.sumSq += f * f
	if latency > s.max {
		s.max = latency
	}
	if latency < s.min {
		s.min = latency
	}
	s.lastAt = at
	if s.n >= s.BucketSize {
		s.cut()
	}
}

func (s *Series) cut() {
	if s.n == 0 {
		return
	}
	mean := s.sum / float64(s.n)
	variance := s.sumSq/float64(s.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	s.points = append(s.points, LatencyPoint{
		At:    s.lastAt,
		Count: s.n,
		Avg:   mean,
		Std:   math.Sqrt(variance),
		Max:   s.max,
		Min:   s.min,
	})
	s.n, s.sum, s.sumSq, s.max, s.min = 0, 0, 0, 0, math.MaxInt64
}

// Flush cuts a final partial bucket, if any.
func (s *Series) Flush() { s.cut() }

// Points returns the series cut so far.
func (s *Series) Points() []LatencyPoint { return s.points }

// Summary aggregates every recorded sample of a Series.
type Summary struct {
	Count int
	Avg   float64
	Max   int64
}

// Summarize combines all points (plus the open bucket) into one Summary.
func (s *Series) Summarize() Summary {
	var out Summary
	var sum float64
	for _, p := range s.points {
		out.Count += p.Count
		sum += p.Avg * float64(p.Count)
		if p.Max > out.Max {
			out.Max = p.Max
		}
	}
	if s.n > 0 {
		out.Count += s.n
		sum += s.sum
		if s.max > out.Max {
			out.Max = s.max
		}
	}
	if out.Count > 0 {
		out.Avg = sum / float64(out.Count)
	}
	return out
}

// Histogram is a base-2 logarithmic latency histogram covering
// [1ns, ~292years] in 64 buckets. The zero value is ready to use.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     int64
	max     int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return 63 - leadingZeros64(uint64(v))
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Max returns the largest sample.
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) with
// base-2 resolution.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			return int64(1) << uint(i+1)
		}
	}
	return h.max
}

// AtomicHistogram is the multi-writer form of Histogram: the same
// base-2 buckets, safe for concurrent Add and Snapshot. The engines'
// observability layer records output latencies with it on the serving
// path, where several collector goroutines deliver concurrently. The
// zero value is ready to use.
type AtomicHistogram struct {
	buckets [64]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// Add records one sample.
func (h *AtomicHistogram) Add(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of samples.
func (h *AtomicHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *AtomicHistogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest sample.
func (h *AtomicHistogram) Max() int64 { return h.max.Load() }

// Buckets returns the per-bucket counts; bucket i counts samples in
// [2^i, 2^(i+1)) nanoseconds (bucket 0 includes non-positive samples).
func (h *AtomicHistogram) Buckets() [64]uint64 {
	var out [64]uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Throughput measures sustained tuples/second over a run.
type Throughput struct {
	Tuples  uint64
	Elapsed int64 // nanoseconds
}

// PerSecond returns tuples per second, or 0 for an empty interval.
func (t Throughput) PerSecond() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Tuples) / (float64(t.Elapsed) / 1e9)
}

// String implements fmt.Stringer.
func (t Throughput) String() string {
	return fmt.Sprintf("%.0f tuples/sec", t.PerSecond())
}

// Imbalance returns the max/mean ratio of a set of per-shard counts —
// 1.0 is a perfectly balanced fan-out, Shards is the worst case (all
// load on one shard). Returns 0 for an empty or all-zero input.
func Imbalance(counts []uint64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var max, sum uint64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(counts))
	return float64(max) / mean
}

// MaxInt64 returns the maximum of a slice, 0 when empty.
func MaxInt64(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile computes the p-th percentile (0–100) of xs by sorting a
// copy; intended for small result sets in tests and reports.
func Percentile(xs []int64, p float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]int64(nil), xs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(p / 100 * float64(len(cp)-1))
	return cp[idx]
}
