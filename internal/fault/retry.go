package fault

import (
	"errors"
	"time"
)

// Retry is a bounded retry-with-exponential-backoff policy for
// operations against a possibly-faulty disk. The zero value retries 4
// times total with a 1ms first backoff capped at 50ms. Backoff doubles
// between attempts and saturates at Max.
//
// Retry is shared by the WAL append recovery loop and checkpoint
// writes so every durability-path retry follows one policy.
type Retry struct {
	// Attempts is the total number of attempts including the first.
	// Values <= 0 mean 4.
	Attempts int
	// Base is the backoff before the second attempt; <= 0 means 1ms.
	Base time.Duration
	// Max caps the doubled backoff; <= 0 means 50ms.
	Max time.Duration
	// Sleep replaces time.Sleep in tests. Nil means time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, when non-nil, observes each failed attempt before its
	// backoff: attempt is 1-based, err is what the attempt returned.
	OnRetry func(attempt int, err error)
}

type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// Permanent marks err as non-retryable: Retry.Do returns it (unwrapped)
// immediately instead of burning the remaining attempts. Use it for
// failures more retries cannot fix — acknowledged data already lost,
// configuration errors.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe permanentError
	return errors.As(err, &pe)
}

// Do runs op until it succeeds, the attempt budget is spent, or op
// returns a Permanent error. It returns op's last error, with any
// Permanent marker unwrapped.
func (r Retry) Do(op func() error) error {
	attempts := r.Attempts
	if attempts <= 0 {
		attempts = 4
	}
	base := r.Base
	if base <= 0 {
		base = time.Millisecond
	}
	maxDelay := r.Max
	if maxDelay <= 0 {
		maxDelay = 50 * time.Millisecond
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	delay := base
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		var pe permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		if attempt >= attempts {
			return err
		}
		if r.OnRetry != nil {
			r.OnRetry(attempt, err)
		}
		sleep(delay)
		delay *= 2
		if delay > maxDelay {
			delay = maxDelay
		}
	}
}
