package fault

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"
)

// drive runs a fixed little script of filesystem operations against
// an injected FS and returns the per-op outcomes, so two identically
// armed plans can be compared for determinism.
func drive(t *testing.T, fsys FS, dir string) []string {
	t.Helper()
	var out []string
	note := func(step string, err error) {
		// Record pass/fail only: real error strings embed the per-run
		// temp dir, which would fail the determinism comparison.
		if err != nil {
			out = append(out, step+":fail")
		} else {
			out = append(out, step+":ok")
		}
	}
	path := filepath.Join(dir, "a.seg")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	note("create", err)
	if err != nil {
		return out
	}
	for i := 0; i < 4; i++ {
		_, werr := f.Write([]byte("0123456789"))
		note("write", werr)
		note("sync", f.Sync())
	}
	note("close", f.Close())
	note("syncdir", fsys.SyncDir(dir))
	note("rename", fsys.Rename(path, filepath.Join(dir, "b.seg")))
	_, rerr := fsys.ReadFile(filepath.Join(dir, "b.seg"))
	note("read", rerr)
	return out
}

func TestPlanDeterministicReplay(t *testing.T) {
	rules := []Rule{
		{Op: OpSync, Nth: 2, Err: ErrInjected},
		{Op: OpWrite, Nth: 3, TornBytes: 4, Err: syscall.ENOSPC},
		{Op: OpRename, Err: syscall.EIO},
	}
	planA, planB := NewPlan(rules...), NewPlan(rules...)
	runA := drive(t, Inject(OS, planA), t.TempDir())
	runB := drive(t, Inject(OS, planB), t.TempDir())
	if !reflect.DeepEqual(runA, runB) {
		t.Fatalf("same plan, different outcomes:\n%v\n%v", runA, runB)
	}
	if !reflect.DeepEqual(planA.Log(), planB.Log()) {
		t.Fatalf("same plan, different injection logs:\n%v\n%v", planA.Log(), planB.Log())
	}
	if planA.Injections() != 3 {
		t.Fatalf("want exactly 3 injections, got %d: %v", planA.Injections(), planA.Log())
	}
}

func TestTornWriteLeavesPrefixOnDisk(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan(Rule{Op: OpWrite, Nth: 1, TornBytes: 3, Err: syscall.EIO})
	fsys := Inject(OS, plan)
	f, err := fsys.OpenFile(filepath.Join(dir, "t.seg"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("ABCDEFGH"))
	if !errors.Is(werr, syscall.EIO) || n != 3 {
		t.Fatalf("torn write: n=%d err=%v, want 3, EIO", n, werr)
	}
	f.Close()
	got, err := os.ReadFile(filepath.Join(dir, "t.seg"))
	if err != nil || string(got) != "ABC" {
		t.Fatalf("on-disk content %q err=%v, want torn prefix \"ABC\"", got, err)
	}
	if plan.Injections() != 1 {
		t.Fatalf("Injections() = %d, want 1", plan.Injections())
	}
}

func TestRepeatRuleIsPersistent(t *testing.T) {
	plan := NewPlan(Rule{Op: OpSync, Nth: 2, Repeat: true, Err: ErrInjected})
	fsys := Inject(OS, plan)
	f, err := fsys.OpenFile(filepath.Join(t.TempDir(), "p.seg"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1 should pass: %v", err)
	}
	for i := 2; i <= 5; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d: %v, want persistent injected error", i, err)
		}
	}
}

func TestUnsyncedEntriesTracking(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan()
	fsys := Inject(OS, plan)
	f, err := fsys.OpenFile(filepath.Join(dir, "wal-0.seg"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := plan.UnsyncedEntries(); len(got) != 1 || got[0] != filepath.Join(dir, "wal-0.seg") {
		t.Fatalf("UnsyncedEntries after create = %v", got)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := plan.UnsyncedEntries(); len(got) != 0 {
		t.Fatalf("UnsyncedEntries after dir sync = %v, want none", got)
	}
}

func TestPathScopedRule(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan(Rule{Op: OpCreate, Path: "/wal/", Repeat: true, Err: syscall.ENOSPC})
	fsys := Inject(OS, plan)
	if err := fsys.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.OpenFile(filepath.Join(dir, "wal", "x.seg"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("scoped create should fail: %v", err)
	}
	f, err := fsys.OpenFile(filepath.Join(dir, "state.tmp"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("out-of-scope create should pass: %v", err)
	}
	f.Close()
}

func TestRetryBackoffAttemptsAndCap(t *testing.T) {
	var delays []time.Duration
	var attempts int
	pol := Retry{
		Attempts: 5,
		Base:     1 * time.Millisecond,
		Max:      4 * time.Millisecond,
		Sleep:    func(d time.Duration) { delays = append(delays, d) },
	}
	err := pol.Do(func() error { attempts++; return ErrInjected })
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Do = %v", err)
	}
	if attempts != 5 {
		t.Fatalf("attempts = %d, want exactly 5", attempts)
	}
	// 4 backoffs between 5 attempts: 1ms, 2ms, 4ms, then capped at 4ms.
	want := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}
	if !reflect.DeepEqual(delays, want) {
		t.Fatalf("backoffs = %v, want %v", delays, want)
	}
}

func TestRetryStopsOnSuccessAndPermanent(t *testing.T) {
	calls := 0
	pol := Retry{Attempts: 10, Sleep: func(time.Duration) {}}
	if err := pol.Do(func() error {
		calls++
		if calls < 3 {
			return ErrInjected
		}
		return nil
	}); err != nil || calls != 3 {
		t.Fatalf("transient recovery: err=%v calls=%d", err, calls)
	}

	calls = 0
	sentinel := errors.New("lost acked data")
	err := pol.Do(func() error { calls++; return Permanent(sentinel) })
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("permanent: err=%v calls=%d, want immediate stop", err, calls)
	}
	if IsPermanent(err) {
		t.Fatal("Do must unwrap the Permanent marker")
	}

	var seen []int
	pol.OnRetry = func(a int, err error) { seen = append(seen, a) }
	calls = 0
	_ = pol.Do(func() error {
		calls++
		if calls < 4 {
			return ErrInjected
		}
		return nil
	})
	if !reflect.DeepEqual(seen, []int{1, 2, 3}) {
		t.Fatalf("OnRetry attempts = %v, want [1 2 3]", seen)
	}
}

func TestRetryDefaults(t *testing.T) {
	calls := 0
	err := Retry{Sleep: func(time.Duration) {}}.Do(func() error { calls++; return ErrInjected })
	if !errors.Is(err, ErrInjected) || calls != 4 {
		t.Fatalf("zero-value policy: err=%v calls=%d, want 4 attempts", err, calls)
	}
}
