// Package fault is the deterministic fault-injection seam under the
// durability stack. The WAL and checkpoint writers perform every
// filesystem operation through an FS value; production code uses the
// passthrough OS implementation, while tests and chaos benches wrap it
// with Inject and a seeded Plan that fails the Nth matching operation
// with an fsync error, ENOSPC, a torn write, or a latency spike.
//
// Plans are deterministic and replayable: rules fire on operation
// counts, not timers or randomness, so a chaos run is a regression
// test, not a flake. A nil plan never allocates a wrapper — Inject
// returns the base FS unchanged, keeping the disarmed fast path at
// zero cost.
package fault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Op identifies one class of filesystem operation crossing the seam.
type Op uint8

const (
	// OpCreate fires on OpenFile calls that carry O_CREATE — segment
	// creation, checkpoint temp files.
	OpCreate Op = iota
	// OpWrite fires on file writes. With Rule.TornBytes it models a
	// torn write: a prefix reaches the disk, the rest does not.
	OpWrite
	// OpSync fires on file fsync.
	OpSync
	// OpRead fires on whole-file reads (replay, manifest loads).
	OpRead
	// OpRename fires on renames — the checkpoint commit point.
	OpRename
	// OpRemove fires on file removal (segment truncation).
	OpRemove
	// OpSyncDir fires on directory fsync — the operation that makes a
	// create or rename durable.
	OpSyncDir
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRead:
		return "read"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// File is the writable-file surface the WAL needs from a filesystem.
// *os.File satisfies it.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Name() string
}

// FS is the filesystem seam. Implementations must be safe for
// concurrent use by multiple goroutines.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(name string, perm os.FileMode) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
	// SyncDir fsyncs a directory, making previously created or renamed
	// entries in it durable.
	SyncDir(dir string) error
}

// OS is the passthrough FS backed by the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Rule injects one fault. A rule matches operations by Op and an
// optional path substring; it counts its matches and fires at the Nth.
type Rule struct {
	// Op selects the operation class the rule watches.
	Op Op
	// Path, when non-empty, restricts the rule to operations whose
	// path contains it as a substring (e.g. "/wal" to spare
	// checkpoint files).
	Path string
	// Nth fires the rule at the Nth matching operation, 1-based,
	// counted from when the plan was armed. Zero means the first.
	Nth int
	// Repeat keeps the rule firing on every matching operation from
	// the Nth on — a persistent fault (dead disk) rather than a
	// transient one.
	Repeat bool
	// Err is the injected error. The operation does not reach the
	// real filesystem, except for torn writes (below). Nil with a
	// Delay makes the rule a pure latency spike.
	Err error
	// TornBytes applies to OpWrite rules: this many bytes of the
	// buffer are written to the real file before Err is returned, so
	// the on-disk state honestly reflects a torn write.
	TornBytes int
	// Delay stalls the operation before the fault check resolves —
	// a latency spike. Delays from multiple firing rules accumulate.
	Delay time.Duration
}

// Plan is a set of rules plus the operation counters they fire on.
// One Plan arms one Inject FS; it is safe for concurrent use and
// keeps a log of every injection for assertions and debugging.
//
// The plan also tracks directory entries (creates and renames) that
// have not yet been covered by a directory fsync: UnsyncedEntries
// reports the files a crash at this instant could erase from their
// parent directory, letting tests emulate exactly that crash.
type Plan struct {
	mu       sync.Mutex
	rules    []Rule
	counts   []int
	fired    []string
	unsynced map[string]map[string]struct{} // dir -> entry names
}

// NewPlan arms a plan with the given rules.
func NewPlan(rules ...Rule) *Plan {
	return &Plan{
		rules:    rules,
		counts:   make([]int, len(rules)),
		unsynced: make(map[string]map[string]struct{}),
	}
}

// check consults the plan for one operation. It returns the
// accumulated latency to inject, the torn-write byte count (OpWrite
// only), and the injected error, if any.
func (p *Plan) check(op Op, path string) (delay time.Duration, torn int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.rules {
		r := &p.rules[i]
		if r.Op != op || (r.Path != "" && !strings.Contains(path, r.Path)) {
			continue
		}
		p.counts[i]++
		nth := r.Nth
		if nth <= 0 {
			nth = 1
		}
		if p.counts[i] != nth && !(r.Repeat && p.counts[i] > nth) {
			continue
		}
		delay += r.Delay
		if r.Err != nil && err == nil {
			torn = r.TornBytes
			err = r.Err
			p.fired = append(p.fired, fmt.Sprintf("%s#%d %s: %v", op, p.counts[i], filepath.Base(path), r.Err))
		}
	}
	return delay, torn, err
}

// Injections returns how many error injections have fired so far.
func (p *Plan) Injections() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fired)
}

// Log returns a copy of the injection log, one line per fired fault,
// in firing order.
func (p *Plan) Log() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.fired...)
}

func (p *Plan) noteEntry(path string) {
	dir := filepath.Dir(path)
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.unsynced[dir]
	if m == nil {
		m = make(map[string]struct{})
		p.unsynced[dir] = m
	}
	m[filepath.Base(path)] = struct{}{}
}

func (p *Plan) noteDirSync(dir string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.unsynced, dir)
}

// UnsyncedEntries returns the full paths of files whose directory
// entry is not yet covered by a directory fsync — the entries a crash
// right now could lose. Sorted for determinism.
func (p *Plan) UnsyncedEntries() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for dir, names := range p.unsynced {
		for name := range names {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Strings(out)
	return out
}

// Inject wraps base so every operation consults plan first. A nil
// plan returns base unchanged (nil base means OS) — the disarmed path
// adds no indirection at all.
func Inject(base FS, plan *Plan) FS {
	if base == nil {
		base = OS
	}
	if plan == nil {
		return base
	}
	return &injectFS{base: base, plan: plan}
}

type injectFS struct {
	base FS
	plan *Plan
}

func (f *injectFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		if err := f.fire(OpCreate, name); err != nil {
			return nil, &os.PathError{Op: "open", Path: name, Err: err}
		}
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if flag&os.O_CREATE != 0 {
		f.plan.noteEntry(name)
	}
	return &injectFile{file: file, plan: f.plan, name: name}, nil
}

func (f *injectFS) ReadFile(name string) ([]byte, error) {
	if err := f.fire(OpRead, name); err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	return f.base.ReadFile(name)
}

func (f *injectFS) ReadDir(name string) ([]os.DirEntry, error) {
	return f.base.ReadDir(name)
}

func (f *injectFS) MkdirAll(name string, perm os.FileMode) error {
	return f.base.MkdirAll(name, perm)
}

func (f *injectFS) Remove(name string) error {
	if err := f.fire(OpRemove, name); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return f.base.Remove(name)
}

func (f *injectFS) Rename(oldpath, newpath string) error {
	if err := f.fire(OpRename, newpath); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	if err := f.base.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.plan.noteEntry(newpath)
	return nil
}

func (f *injectFS) SyncDir(dir string) error {
	if err := f.fire(OpSyncDir, dir); err != nil {
		return &os.PathError{Op: "syncdir", Path: dir, Err: err}
	}
	if err := f.base.SyncDir(dir); err != nil {
		return err
	}
	f.plan.noteDirSync(dir)
	return nil
}

func (f *injectFS) fire(op Op, path string) error {
	delay, _, err := f.plan.check(op, path)
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

type injectFile struct {
	file File
	plan *Plan
	name string
}

func (f *injectFile) Write(p []byte) (int, error) {
	delay, torn, err := f.plan.check(OpWrite, f.name)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		n := 0
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			// Honest torn write: the prefix really lands on disk so
			// replay sees exactly what a crashed kernel would leave.
			n, _ = f.file.Write(p[:torn])
		}
		return n, err
	}
	return f.file.Write(p)
}

func (f *injectFile) Sync() error {
	delay, _, err := f.plan.check(OpSync, f.name)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return err
	}
	return f.file.Sync()
}

func (f *injectFile) Close() error                       { return f.file.Close() }
func (f *injectFile) Truncate(size int64) error          { return f.file.Truncate(size) }
func (f *injectFile) Seek(o int64, w int) (int64, error) { return f.file.Seek(o, w) }
func (f *injectFile) Name() string                       { return f.name }

// ErrInjected is a convenience sentinel for tests that don't care
// which errno a fault models.
var ErrInjected = errors.New("fault: injected error")
