// Package hsj implements the original handshake join of Teubner and
// Mueller (SIGMOD 2011, reference [20] of the paper) as the baseline
// that low-latency handshake join is measured against.
//
// Tuples enter at the pipeline ends and queue through per-core window
// segments: a new arrival is stored in the node-local segment and, when
// the segment exceeds its capacity, the oldest tuple is popped and
// forwarded to the neighbour. This queueing is the source of the
// latency analysed in §3 of the paper: a tuple needs about one full
// window's worth of subsequent arrivals to traverse the pipeline, so
// two tuples meet only after travelling ~α·|W| of their windows.
//
// Matching follows Kang's scan discipline per segment: an arriving R
// tuple scans the local S segment (plus the in-flight buffer IWS, the
// one-sided acknowledgement mechanism of §4.2.2), an arriving S tuple
// scans the local R segment. Expiry messages enter at the opposite
// pipeline end (§4.2.4) and delete the tuple wherever it rests; a
// sender-side in-flight buffer on each stream lets an expiry that races
// with its tuple park and resume in the tuple's direction of travel
// ("expiry chase"), so no ghost tuples or leaks remain. The in-flight
// R buffer is bookkeeping for the chase only and is never scanned —
// scanning both in-flight buffers would re-introduce the double-match
// race that the paper's asymmetric design avoids.
//
// Output order is non-deterministic and latency is high — by design;
// this is the behaviour Figures 5, 17 and 18 quantify.
package hsj

import (
	"fmt"

	"handshakejoin/internal/core"
	"handshakejoin/internal/store"
	"handshakejoin/internal/stream"
)

// Config parameterizes an original-handshake-join pipeline.
type Config[L, R any] struct {
	// Nodes is the number of processing cores in the pipeline.
	Nodes int
	// Pred is the join predicate p(r, s).
	Pred stream.Predicate[L, R]
	// CapR and CapS are the total window capacities in tuples. Each
	// interior node holds a segment of ⌈Cap/Nodes⌉ tuples; the exit
	// node of each stream holds the remainder until expiry messages
	// delete it. For time-based windows the driver derives the
	// capacity from the expected rate (rate × window duration).
	CapR int
	// CapS is the S-side total window capacity in tuples.
	CapS int
	// DisableAck turns off the acknowledgement mechanism (ablation
	// only: crossing tuples then miss each other).
	DisableAck bool
}

// Validate reports whether the configuration is self-consistent.
func (c *Config[L, R]) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("hsj: Nodes must be >= 1, got %d", c.Nodes)
	}
	if c.Pred == nil {
		return fmt.Errorf("hsj: Pred must be set")
	}
	if c.CapR < 1 || c.CapS < 1 {
		return fmt.Errorf("hsj: window capacities must be >= 1, got R=%d S=%d", c.CapR, c.CapS)
	}
	return nil
}

// SegCapR returns the per-node R segment capacity.
func (c *Config[L, R]) SegCapR() int { return (c.CapR + c.Nodes - 1) / c.Nodes }

// SegCapS returns the per-node S segment capacity.
func (c *Config[L, R]) SegCapS() int { return (c.CapS + c.Nodes - 1) / c.Nodes }

// Node is one processing core of the original handshake join pipeline.
// It is driven by exactly one runtime thread.
type Node[L, R any] struct {
	cfg *Config[L, R]
	k   int

	wR *store.Window[L]
	wS *store.Window[R]

	iwS []stream.Tuple[R] // forwarded-but-unacked S (scanned by R arrivals)
	iwR []stream.Tuple[L] // forwarded-but-unacked R (expiry chase only, never scanned)

	// Expiries parked on an in-flight tuple: when the ack for the seq
	// arrives, the expiry resumes in the tuple's travel direction.
	chaseR map[uint64]struct{}
	chaseS map[uint64]struct{}

	stats core.StatsCell
}

// NewNode returns node k of the pipeline configured by cfg.
func NewNode[L, R any](cfg *Config[L, R], k int) *Node[L, R] {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if k < 0 || k >= cfg.Nodes {
		panic(fmt.Sprintf("hsj: node index %d out of range [0,%d)", k, cfg.Nodes))
	}
	return &Node[L, R]{
		cfg:    cfg,
		k:      k,
		wR:     store.NewWindow[L](),
		wS:     store.NewWindow[R](),
		chaseR: make(map[uint64]struct{}),
		chaseS: make(map[uint64]struct{}),
	}
}

// Stats implements core.NodeLogic. Like the LLHJ node's, it is safe
// to call from any goroutine mid-run: the counters are single-writer
// atomics.
func (n *Node[L, R]) Stats() core.Stats {
	s := n.stats.Snapshot()
	rr, sr := n.wR.Rare(), n.wS.Rare()
	s.StoreSpills = rr.Spills.Load() + sr.Spills.Load()
	s.StoreReanchors = rr.Reanchors.Load() + sr.Reanchors.Load()
	s.StoreCompactions = rr.Compactions.Load() + sr.Compactions.Load()
	s.StoreParks = rr.Parks.Load() + sr.Parks.Load()
	s.StoreOverflow = int(rr.Overflow.Load() + sr.Overflow.Load())
	return s
}

// WindowSizes returns the current sizes of the node-local segments.
func (n *Node[L, R]) WindowSizes() (wr, ws int) { return n.wR.Len(), n.wS.Len() }

func (n *Node[L, R]) leftmost() bool  { return n.k == 0 }
func (n *Node[L, R]) rightmost() bool { return n.k == n.cfg.Nodes-1 }

// HandleLeft processes R arrivals, R acknowledgements, S expiries
// (entering at the left end) and reversed R expiries (chasing their
// tuple rightward).
func (n *Node[L, R]) HandleLeft(m core.Msg[L, R], em core.Emitter[L, R]) {
	switch {
	case m.Kind == core.KindArrival && m.Side == stream.R:
		n.handleArrivalR(m, em)
	case m.Kind == core.KindAck && m.Side == stream.S:
		// S tuples flow right-to-left, so their acknowledgements flow
		// left-to-right and arrive on the left channel.
		n.handleAckS(m, em)
	case m.Kind == core.KindExpiry && m.Side == stream.S:
		n.handleExpiry(m, em, false)
	case m.Kind == core.KindExpiry && m.Side == stream.R:
		// Reversed R expiry resuming a chase toward the right.
		n.handleExpiry(m, em, true)
	default:
		panic(fmt.Sprintf("hsj: node %d: unexpected %v/%v from the left", n.k, m.Kind, m.Side))
	}
}

// HandleRight processes S arrivals, S acknowledgements, R expiries
// (entering at the right end) and reversed S expiries.
func (n *Node[L, R]) HandleRight(m core.Msg[L, R], em core.Emitter[L, R]) {
	switch {
	case m.Kind == core.KindArrival && m.Side == stream.S:
		n.handleArrivalS(m, em)
	case m.Kind == core.KindAck && m.Side == stream.R:
		// R tuples flow left-to-right, so their acknowledgements flow
		// right-to-left and arrive on the right channel.
		n.handleAckR(m, em)
	case m.Kind == core.KindExpiry && m.Side == stream.R:
		n.handleExpiry(m, em, false)
	case m.Kind == core.KindExpiry && m.Side == stream.S:
		// Reversed S expiry resuming a chase toward the left.
		n.handleExpiry(m, em, true)
	default:
		panic(fmt.Sprintf("hsj: node %d: unexpected %v/%v from the right", n.k, m.Kind, m.Side))
	}
}

// handleArrivalR stores arriving R tuples in the local segment, scans
// the local S state for matches, and pops segment overflow to the right
// neighbour.
func (n *Node[L, R]) handleArrivalR(m core.Msg[L, R], em core.Emitter[L, R]) {
	rs := m.R
	for i := range rs {
		r := rs[i]
		core.Inc(&n.stats.RArrivals, 1)
		n.scanForR(r, em)
		n.wR.InsertSettled(r)
	}
	core.Raise(&n.stats.MaxWR, int64(n.wR.Len()))
	if !n.cfg.DisableAck && !n.leftmost() {
		seqs := make([]uint64, len(rs))
		for i := range rs {
			seqs[i] = rs[i].Seq
		}
		em.EmitLeft(core.Msg[L, R]{Kind: core.KindAck, Side: stream.R, Seqs: seqs})
	}
	// Pop overflow. The rightmost node holds R until expiry deletes it
	// (the pipeline exit is where the oldest window portion lives).
	if n.rightmost() {
		n.stats.LiveWR.Store(int64(n.wR.Len()))
		return
	}
	var popped []stream.Tuple[L]
	for n.wR.Len() > n.cfg.SegCapR() {
		t, ok := n.popOldestR()
		if !ok {
			break
		}
		popped = append(popped, t)
	}
	n.stats.LiveWR.Store(int64(n.wR.Len()))
	if len(popped) > 0 {
		if !n.cfg.DisableAck {
			n.iwR = append(n.iwR, popped...)
		}
		em.EmitRight(core.Msg[L, R]{Kind: core.KindArrival, Side: stream.R, R: popped})
	}
}

// handleArrivalS mirrors handleArrivalR for the S stream (flowing
// right-to-left).
func (n *Node[L, R]) handleArrivalS(m core.Msg[L, R], em core.Emitter[L, R]) {
	ss := m.S
	for i := range ss {
		s := ss[i]
		core.Inc(&n.stats.SArrivals, 1)
		n.scanForS(s, em)
		n.wS.InsertSettled(s)
	}
	core.Raise(&n.stats.MaxWS, int64(n.wS.Len()))
	if !n.cfg.DisableAck && !n.rightmost() {
		seqs := make([]uint64, len(ss))
		for i := range ss {
			seqs[i] = ss[i].Seq
		}
		em.EmitRight(core.Msg[L, R]{Kind: core.KindAck, Side: stream.S, Seqs: seqs})
	}
	if n.leftmost() {
		n.stats.LiveWS.Store(int64(n.wS.Len()))
		return
	}
	var popped []stream.Tuple[R]
	for n.wS.Len() > n.cfg.SegCapS() {
		t, ok := n.popOldestS()
		if !ok {
			break
		}
		popped = append(popped, t)
	}
	n.stats.LiveWS.Store(int64(n.wS.Len()))
	if len(popped) > 0 {
		if !n.cfg.DisableAck {
			n.iwS = append(n.iwS, popped...)
			core.Raise(&n.stats.MaxIWS, int64(len(n.iwS)))
		}
		em.EmitLeft(core.Msg[L, R]{Kind: core.KindArrival, Side: stream.S, S: popped})
	}
}

func (n *Node[L, R]) scanForR(r stream.Tuple[L], em core.Emitter[L, R]) {
	inspected := n.wS.ScanAll(func(s stream.Tuple[R]) {
		if n.cfg.Pred(r.Payload, s.Payload) {
			core.Inc(&n.stats.Results, 1)
			em.EmitResult(stream.Pair[L, R]{R: r, S: s})
		}
	})
	for _, s := range n.iwS {
		inspected++
		if n.cfg.Pred(r.Payload, s.Payload) {
			core.Inc(&n.stats.Results, 1)
			em.EmitResult(stream.Pair[L, R]{R: r, S: s})
		}
	}
	core.Inc(&n.stats.Comparisons, uint64(inspected))
	em.Cost(inspected)
}

func (n *Node[L, R]) scanForS(s stream.Tuple[R], em core.Emitter[L, R]) {
	// The in-flight R buffer is deliberately not scanned: the
	// acknowledgement mechanism is one-sided (§4.2.2), and scanning
	// both buffers would allow the same pair to match twice.
	inspected := n.wR.ScanAll(func(r stream.Tuple[L]) {
		if n.cfg.Pred(r.Payload, s.Payload) {
			core.Inc(&n.stats.Results, 1)
			em.EmitResult(stream.Pair[L, R]{R: r, S: s})
		}
	})
	core.Inc(&n.stats.Comparisons, uint64(inspected))
	em.Cost(inspected)
}

// handleAckR drops acknowledged tuples from the in-flight R buffer and
// resumes any expiry chase parked on them (rightward, the direction the
// tuple travelled).
func (n *Node[L, R]) handleAckR(m core.Msg[L, R], em core.Emitter[L, R]) {
	var resume []uint64
	for _, seq := range m.Seqs {
		for i := range n.iwR {
			if n.iwR[i].Seq == seq {
				n.iwR = append(n.iwR[:i], n.iwR[i+1:]...)
				break
			}
		}
		if _, ok := n.chaseR[seq]; ok {
			delete(n.chaseR, seq)
			resume = append(resume, seq)
		}
	}
	if len(resume) > 0 {
		em.EmitRight(core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.R, Seqs: resume})
	}
}

// handleAckS mirrors handleAckR for the S stream (chase resumes
// leftward).
func (n *Node[L, R]) handleAckS(m core.Msg[L, R], em core.Emitter[L, R]) {
	var resume []uint64
	for _, seq := range m.Seqs {
		for i := range n.iwS {
			if n.iwS[i].Seq == seq {
				n.iwS = append(n.iwS[:i], n.iwS[i+1:]...)
				break
			}
		}
		if _, ok := n.chaseS[seq]; ok {
			delete(n.chaseS, seq)
			resume = append(resume, seq)
		}
	}
	if len(resume) > 0 {
		em.EmitLeft(core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.S, Seqs: resume})
	}
}

// handleExpiry deletes expired tuples. An expiry consumed here removes
// the tuple from the resident segment. If the tuple is in flight (in
// the sender-side buffer) the expiry parks and resumes when the ack
// arrives. Otherwise the expiry travels on: forward in its entry
// direction, or — for reversed expiries — in the tuple's travel
// direction.
func (n *Node[L, R]) handleExpiry(m core.Msg[L, R], em core.Emitter[L, R], reversed bool) {
	var forward []uint64
	if m.Side == stream.R {
		for _, seq := range m.Seqs {
			if _, ok := n.wR.Remove(seq); ok {
				continue
			}
			if n.inFlightR(seq) {
				n.chaseR[seq] = struct{}{}
				core.Inc(&n.stats.PendingExpiries, 1)
				continue
			}
			forward = append(forward, seq)
		}
		n.stats.LiveWR.Store(int64(n.wR.Len()))
		if len(forward) == 0 {
			return
		}
		out := core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.R, Seqs: forward}
		if reversed {
			// Chasing rightward, the direction R tuples travel.
			if !n.rightmost() {
				em.EmitRight(out)
			}
		} else if !n.leftmost() {
			em.EmitLeft(out)
		}
		return
	}
	for _, seq := range m.Seqs {
		if _, ok := n.wS.Remove(seq); ok {
			continue
		}
		if n.inFlightS(seq) {
			n.chaseS[seq] = struct{}{}
			core.Inc(&n.stats.PendingExpiries, 1)
			continue
		}
		forward = append(forward, seq)
	}
	n.stats.LiveWS.Store(int64(n.wS.Len()))
	if len(forward) == 0 {
		return
	}
	out := core.Msg[L, R]{Kind: core.KindExpiry, Side: stream.S, Seqs: forward}
	if reversed {
		// Chasing leftward, the direction S tuples travel.
		if !n.leftmost() {
			em.EmitLeft(out)
		}
	} else if !n.rightmost() {
		em.EmitRight(out)
	}
}

func (n *Node[L, R]) inFlightR(seq uint64) bool {
	for i := range n.iwR {
		if n.iwR[i].Seq == seq {
			return true
		}
	}
	return false
}

func (n *Node[L, R]) inFlightS(seq uint64) bool {
	for i := range n.iwS {
		if n.iwS[i].Seq == seq {
			return true
		}
	}
	return false
}

func (n *Node[L, R]) popOldestR() (stream.Tuple[L], bool) {
	seq, ok := n.wR.OldestSeq()
	if !ok {
		var zero stream.Tuple[L]
		return zero, false
	}
	return n.wR.Remove(seq)
}

func (n *Node[L, R]) popOldestS() (stream.Tuple[R], bool) {
	seq, ok := n.wS.OldestSeq()
	if !ok {
		var zero stream.Tuple[R]
		return zero, false
	}
	return n.wS.Remove(seq)
}
