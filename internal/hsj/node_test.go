package hsj

import (
	"testing"

	"handshakejoin/internal/core"
	"handshakejoin/internal/stream"
)

type capture struct {
	left, right []core.Msg[int, int]
	results     []stream.Pair[int, int]
}

func (c *capture) EmitLeft(m core.Msg[int, int])  { c.left = append(c.left, m) }
func (c *capture) EmitRight(m core.Msg[int, int]) { c.right = append(c.right, m) }
func (c *capture) EmitResult(p stream.Pair[int, int]) {
	c.results = append(c.results, p)
}
func (c *capture) StreamEnd(stream.Side, int64) {}
func (c *capture) Cost(int)                     {}

func tpl(seq uint64, v int) stream.Tuple[int] {
	return stream.Tuple[int]{Seq: seq, TS: int64(seq) * 100, Payload: v}
}

func rArr(ts ...stream.Tuple[int]) core.Msg[int, int] {
	return core.Msg[int, int]{Kind: core.KindArrival, Side: stream.R, R: ts}
}

func sArr(ts ...stream.Tuple[int]) core.Msg[int, int] {
	return core.Msg[int, int]{Kind: core.KindArrival, Side: stream.S, S: ts}
}

// cfg builds a 3-node pipeline with total capacities 6/6 (2 per node).
func cfg() *Config[int, int] {
	return &Config[int, int]{Nodes: 3, Pred: func(r, s int) bool { return r == s }, CapR: 6, CapS: 6}
}

func TestSegmentOverflowPopsOldest(t *testing.T) {
	n0 := NewNode(cfg(), 0)
	var em capture
	for i := 0; i < 2; i++ {
		n0.HandleLeft(rArr(tpl(uint64(i), i)), &em)
	}
	if len(em.right) != 0 {
		t.Fatal("popped before exceeding the segment capacity")
	}
	n0.HandleLeft(rArr(tpl(2, 2)), &em)
	if len(em.right) != 1 || em.right[0].Kind != core.KindArrival {
		t.Fatalf("overflow not forwarded: %+v", em.right)
	}
	if em.right[0].R[0].Seq != 0 {
		t.Fatalf("popped seq %d, want the oldest (0)", em.right[0].R[0].Seq)
	}
	if wr, _ := n0.WindowSizes(); wr != 2 {
		t.Fatalf("segment size = %d, want capacity 2", wr)
	}
}

func TestRightmostNeverPopsR(t *testing.T) {
	n2 := NewNode(cfg(), 2)
	var em capture
	for i := 0; i < 10; i++ {
		n2.HandleLeft(rArr(tpl(uint64(i), i)), &em)
	}
	if len(em.right) != 0 {
		t.Fatal("rightmost node forwarded R tuples off the pipeline")
	}
	if wr, _ := n2.WindowSizes(); wr != 10 {
		t.Fatalf("rightmost holds %d, want all 10 until expiry", wr)
	}
}

func TestMatchingWithinSegment(t *testing.T) {
	n1 := NewNode(cfg(), 1)
	var em capture
	n1.HandleRight(sArr(tpl(0, 42)), &em)
	n1.HandleLeft(rArr(tpl(0, 42)), &em)
	if len(em.results) != 1 {
		t.Fatalf("results = %d, want 1", len(em.results))
	}
	// The reverse direction must not re-match the same pair: an S
	// arrival scans the R segment, but the pair already matched when
	// the R tuple arrived; a new S tuple with the same value creates a
	// distinct pair.
	em = capture{}
	n1.HandleRight(sArr(tpl(1, 42)), &em)
	if len(em.results) != 1 {
		t.Fatalf("new S tuple should match the resident R tuple once, got %d", len(em.results))
	}
}

func TestAcksMaintainInFlightBuffers(t *testing.T) {
	n1 := NewNode(cfg(), 1)
	var em capture
	// Fill the S segment and overflow one tuple leftward.
	for i := 0; i < 3; i++ {
		n1.HandleRight(sArr(tpl(uint64(i), i)), &em)
	}
	if len(n1.iwS) != 1 || n1.iwS[0].Seq != 0 {
		t.Fatalf("iwS = %+v, want popped seq 0 awaiting ack", n1.iwS)
	}
	// An R arrival still sees the in-flight S tuple.
	em = capture{}
	n1.HandleLeft(rArr(tpl(0, 0)), &em)
	if len(em.results) != 1 {
		t.Fatal("R arrival missed the in-flight S tuple")
	}
	// Ack arrives from the left neighbour: buffer clears.
	n1.HandleLeft(core.Msg[int, int]{Kind: core.KindAck, Side: stream.S, Seqs: []uint64{0}}, &em)
	if len(n1.iwS) != 0 {
		t.Fatal("ack did not clear iwS")
	}
}

func TestExpiryConsumedWhereResident(t *testing.T) {
	n1 := NewNode(cfg(), 1)
	var em capture
	n1.HandleRight(sArr(tpl(0, 5)), &em)
	em = capture{}
	// S expiry travels left-to-right and finds the tuple here.
	n1.HandleLeft(core.Msg[int, int]{Kind: core.KindExpiry, Side: stream.S, Seqs: []uint64{0}}, &em)
	if _, ws := n1.WindowSizes(); ws != 0 {
		t.Fatal("expiry did not delete the resident tuple")
	}
	if len(em.right) != 0 {
		t.Fatal("consumed expiry was still forwarded")
	}
	// Unknown seq: forwarded along.
	em = capture{}
	n1.HandleLeft(core.Msg[int, int]{Kind: core.KindExpiry, Side: stream.S, Seqs: []uint64{9}}, &em)
	if len(em.right) != 1 || em.right[0].Seqs[0] != 9 {
		t.Fatalf("missing tuple's expiry not forwarded: %+v", em.right)
	}
}

func TestExpiryChaseParksOnInFlightAndResumes(t *testing.T) {
	n1 := NewNode(cfg(), 1)
	var em capture
	// Overflow S tuple 0 into flight (toward node 0).
	for i := 0; i < 3; i++ {
		n1.HandleRight(sArr(tpl(uint64(i), i)), &em)
	}
	em = capture{}
	// The expiry for the in-flight tuple parks.
	n1.HandleLeft(core.Msg[int, int]{Kind: core.KindExpiry, Side: stream.S, Seqs: []uint64{0}}, &em)
	if len(em.right) != 0 && len(em.left) != 0 {
		t.Fatalf("parked expiry emitted messages: %+v / %+v", em.left, em.right)
	}
	if n1.Stats().PendingExpiries != 1 {
		t.Fatal("chase not recorded")
	}
	// The ack for the tuple resumes the chase in the tuple's direction
	// of travel (leftward for S).
	em = capture{}
	n1.HandleLeft(core.Msg[int, int]{Kind: core.KindAck, Side: stream.S, Seqs: []uint64{0}}, &em)
	if len(em.left) != 1 || em.left[0].Kind != core.KindExpiry || em.left[0].Seqs[0] != 0 {
		t.Fatalf("chase did not resume leftward: %+v", em.left)
	}
	// The reversed expiry is handled by the receiving node via its
	// right channel and deletes the now-resident tuple there.
	n0 := NewNode(cfg(), 0)
	var em0 capture
	n0.HandleRight(sArr(tpl(0, 0)), &em0)
	n0.HandleRight(core.Msg[int, int]{Kind: core.KindExpiry, Side: stream.S, Seqs: []uint64{0}}, &em0)
	if _, ws := n0.WindowSizes(); ws != 0 {
		t.Fatal("reversed expiry did not delete the tuple")
	}
}

func TestConfigValidateAndSegCaps(t *testing.T) {
	c := cfg()
	if c.SegCapR() != 2 || c.SegCapS() != 2 {
		t.Fatalf("seg caps = (%d, %d), want (2, 2)", c.SegCapR(), c.SegCapS())
	}
	c.CapR = 7
	if c.SegCapR() != 3 {
		t.Fatalf("ceil(7/3) = %d, want 3", c.SegCapR())
	}
	if err := (&Config[int, int]{Nodes: 0}).Validate(); err == nil {
		t.Fatal("accepted 0 nodes")
	}
	if err := (&Config[int, int]{Nodes: 1, CapR: 1, CapS: 1}).Validate(); err == nil {
		t.Fatal("accepted nil predicate")
	}
	if err := (&Config[int, int]{Nodes: 1, Pred: func(int, int) bool { return true }}).Validate(); err == nil {
		t.Fatal("accepted zero capacities")
	}
}
