package hsj

import (
	"testing"

	"handshakejoin/internal/core"
	"handshakejoin/internal/stream"
)

// TestDisableAckDropsInFlightVisibility verifies the ablation knob: with
// acknowledgements off, popped tuples leave no in-flight trace, so an
// arrival crossing them finds nothing — the §4.2.2 "missed join pairs"
// hazard, reproduced deliberately.
func TestDisableAckDropsInFlightVisibility(t *testing.T) {
	c := cfg()
	c.DisableAck = true
	n1 := NewNode(c, 1)
	var em capture
	for i := 0; i < 3; i++ {
		n1.HandleRight(sArr(tpl(uint64(i), i)), &em)
	}
	if len(n1.iwS) != 0 {
		t.Fatal("in-flight buffer populated despite DisableAck")
	}
	// The popped tuple (seq 0) is invisible here now.
	em = capture{}
	n1.HandleLeft(rArr(tpl(0, 0)), &em)
	if len(em.results) != 0 {
		t.Fatal("match found without the in-flight buffer; ablation ineffective")
	}
	// No acknowledgements are emitted either.
	em = capture{}
	n1.HandleRight(sArr(tpl(9, 9)), &em)
	for _, m := range em.right {
		if m.Kind == core.KindAck {
			t.Fatal("ack emitted despite DisableAck")
		}
	}
}

// TestExpiryForUnknownTupleTravelsOn exercises expiry forwarding across
// multiple nodes: an expiry whose tuple lives at the far end must pass
// through every segment unharmed.
func TestExpiryForUnknownTupleTravelsOn(t *testing.T) {
	n1 := NewNode(cfg(), 1)
	var em capture
	// R expiry entering from the right, tuple not here and not in
	// flight: forwarded left.
	n1.HandleRight(core.Msg[int, int]{Kind: core.KindExpiry, Side: stream.R, Seqs: []uint64{42}}, &em)
	if len(em.left) != 1 || em.left[0].Kind != core.KindExpiry || em.left[0].Seqs[0] != 42 {
		t.Fatalf("R expiry not forwarded left: %+v", em.left)
	}
	// At the leftmost node an unknown R expiry is dropped (nothing to
	// the left of node 0).
	n0 := NewNode(cfg(), 0)
	em = capture{}
	n0.HandleRight(core.Msg[int, int]{Kind: core.KindExpiry, Side: stream.R, Seqs: []uint64{42}}, &em)
	if len(em.left) != 0 && len(em.right) != 0 {
		t.Fatalf("expiry leaked off the pipeline end: %+v %+v", em.left, em.right)
	}
}

// TestBatchArrivalScansEveryTuple checks per-tuple scanning within one
// batch message: every tuple of an R batch matches independently.
func TestBatchArrivalScansEveryTuple(t *testing.T) {
	n1 := NewNode(cfg(), 1)
	var em capture
	n1.HandleRight(sArr(tpl(0, 7)), &em)
	em = capture{}
	n1.HandleLeft(rArr(tpl(0, 7), tpl(1, 8), tpl(2, 7)), &em)
	if len(em.results) != 2 {
		t.Fatalf("results = %d, want 2 (tuples 0 and 2 match)", len(em.results))
	}
	if em.results[0].R.Seq != 0 || em.results[1].R.Seq != 2 {
		t.Fatalf("unexpected matching tuples: %+v", em.results)
	}
	st := n1.Stats()
	if st.RArrivals != 3 {
		t.Fatalf("RArrivals = %d, want 3", st.RArrivals)
	}
}
