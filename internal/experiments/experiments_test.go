package experiments

import (
	"testing"

	"handshakejoin/internal/pipeline"
)

// TestHSJLatencyTracksWindow verifies the §3.1 latency model: the
// steady-state maximum latency of handshake join approaches
// WR·WS/(WR+WS) and the average sits well below it but on the same
// order (Figure 5). LLHJ under the identical configuration must sit
// orders of magnitude lower (Figure 19).
func TestHSJLatencyTracksWindow(t *testing.T) {
	base := Params{
		Nodes:      8,
		RatePerSec: 100,
		WindowR:    4e9, // 4 s
		WindowS:    4e9,
		Batch:      4,
		Duration:   12e9,
		Domain:     300, // plenty of matches for tight statistics
	}

	hsjP := base
	hsjP.Algo = AlgoHSJ
	hres, err := Run(hsjP)
	if err != nil {
		t.Fatal(err)
	}
	// Predicted bound: WR·WS/(WR+WS) = 2 s.
	predicted := float64(base.WindowR) * float64(base.WindowS) /
		float64(base.WindowR+base.WindowS)
	if max := float64(hres.SteadyMax); max < 0.5*predicted || max > 1.15*predicted {
		t.Errorf("HSJ steady max latency %.2fs, want within (0.5, 1.15)x of predicted %.2fs",
			max/1e9, predicted/1e9)
	}
	if avg := hres.SteadyAvg; avg < 0.1*predicted || avg > predicted {
		t.Errorf("HSJ steady avg latency %.2fs, want same order as predicted %.2fs",
			avg/1e9, predicted/1e9)
	}

	llhjP := base
	llhjP.Algo = AlgoLLHJ
	lres, err := Run(llhjP)
	if err != nil {
		t.Fatal(err)
	}
	// Batch 4 at 100 tuples/s fills in 40 ms; latency must be on that
	// scale, not the window scale (3+ orders below the HSJ bound would
	// need paper-scale windows; at this reduced scale expect >20x).
	batchDelay := float64(base.Batch) / base.RatePerSec * 1e9
	if lres.SteadyAvg > 3*batchDelay {
		t.Errorf("LLHJ steady avg latency %.1fms, want <= 3x batch delay %.1fms",
			lres.SteadyAvg/1e6, batchDelay/1e6)
	}
	if ratio := hres.SteadyAvg / lres.SteadyAvg; ratio < 20 {
		t.Errorf("HSJ/LLHJ average latency ratio %.1f, want >= 20 at this scale", ratio)
	}
	// HSJ leaves the final in-flight window's pairs unmet when the
	// finite input stops (its motion is input-driven), so exact result
	// equality only holds for the completed prefix; require the counts
	// to be close.
	if float64(hres.Results) < 0.85*float64(lres.Results) {
		t.Errorf("HSJ found %d results vs LLHJ's %d; want >= 85%%", hres.Results, lres.Results)
	}
}

// TestLLHJLatencyWindowInsensitive verifies the Figure 19 observation
// that LLHJ latency is insensitive to the window configuration, while
// HSJ latency scales with it (Figure 5a vs 5b).
func TestLLHJLatencyWindowInsensitive(t *testing.T) {
	run := func(algo Algo, winR, winS int64) float64 {
		p := Params{
			Algo: algo, Nodes: 6, RatePerSec: 100,
			WindowR: winR, WindowS: winS, Batch: 4,
			Duration: 10e9, Domain: 300,
		}
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res.SteadyAvg
	}

	llhjSym := run(AlgoLLHJ, 4e9, 4e9)
	llhjAsym := run(AlgoLLHJ, 2e9, 4e9)
	if ratio := llhjSym / llhjAsym; ratio < 0.5 || ratio > 2 {
		t.Errorf("LLHJ latency changed %.2fx when halving one window; want insensitivity", ratio)
	}

	hsjBig := run(AlgoHSJ, 4e9, 4e9)
	hsjSmall := run(AlgoHSJ, 2e9, 2e9)
	if ratio := hsjBig / hsjSmall; ratio < 1.5 {
		t.Errorf("HSJ latency ratio %.2f between 4s and 2s windows; want ~2x (window-bound)", ratio)
	}
}

// TestThroughputScalesWithCores verifies the Figure 17 shape: the
// sustainable rate grows with the core count (≈√n for the
// scan-dominated workload) and LLHJ matches HSJ.
func TestThroughputScalesWithCores(t *testing.T) {
	if testing.Short() {
		t.Skip("binary search over simulated runs")
	}
	p := Params{
		WindowR: 1e9, WindowS: 1e9, Batch: 16,
		Duration: 25e8, Cost: pipeline.CoarseCostModel(),
	}
	rate := func(algo Algo, nodes int) float64 {
		q := p
		q.Algo = algo
		q.Nodes = nodes
		r, err := MaxRate(q, 50, 8000, 6)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	llhj2, llhj8 := rate(AlgoLLHJ, 2), rate(AlgoLLHJ, 8)
	if llhj8 < 1.4*llhj2 {
		t.Errorf("LLHJ rate grew only %.0f -> %.0f tuples/s from 2 to 8 cores; want ~2x (√n)",
			llhj2, llhj8)
	}
	hsj8 := rate(AlgoHSJ, 8)
	if ratio := llhj8 / hsj8; ratio < 0.7 || ratio > 1.6 {
		t.Errorf("LLHJ/HSJ throughput ratio %.2f at 8 cores; want parity (Figure 17)", ratio)
	}

	model2, model8 := ModelMaxRate(withNodes(p, AlgoLLHJ, 2)), ModelMaxRate(withNodes(p, AlgoLLHJ, 8))
	if model8/model2 < 1.5 || model8/model2 > 2.5 {
		t.Errorf("model rate ratio %.2f between 8 and 2 cores; want ≈ 2 (√4)", model8/model2)
	}
	if llhj8 < 0.4*model8 || llhj8 > 2.5*model8 {
		t.Errorf("simulated rate %.0f far from model %.0f at 8 cores", llhj8, model8)
	}
}

func withNodes(p Params, a Algo, n int) Params {
	p.Algo = a
	p.Nodes = n
	return p
}

// TestIndexAcceleration verifies the Table 2 effect: node-local hash
// indexes raise sustainable throughput by a large factor when the
// predicate permits them.
func TestIndexAcceleration(t *testing.T) {
	if testing.Short() {
		t.Skip("binary search over simulated runs")
	}
	p := Params{
		Nodes: 8, WindowR: 1e9, WindowS: 1e9, Batch: 16,
		Duration: 25e8, Cost: pipeline.CoarseCostModel(),
	}
	scan, err := MaxRate(withNodes(p, AlgoLLHJ, 8), 50, 20000, 6)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := MaxRate(withNodes(p, AlgoLLHJIndex, 8), 50, 20000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := indexed / scan; ratio < 4 {
		t.Errorf("hash index speedup %.1fx, want >= 4x (paper: 44x at full scale)", ratio)
	}
}

// TestPunctuationOverheadAndSortBuffer verifies the Figure 17
// punctuation overhead claim (negligible) and the Figure 21 buffer
// claim (ordered output needs only a punctuation period's worth of
// buffered results).
func TestPunctuationOverheadAndSortBuffer(t *testing.T) {
	base := Params{
		Nodes: 6, RatePerSec: 150, WindowR: 3e9, WindowS: 3e9,
		Batch: 16, Duration: 9e9, Domain: 120, CollectPeriod: 50e6,
	}

	plain := withNodes(base, AlgoLLHJ, 6)
	punct := withNodes(base, AlgoLLHJPunct, 6)
	rPlain, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	rPunct, err := Run(punct)
	if err != nil {
		t.Fatal(err)
	}
	if rPlain.Results != rPunct.Results {
		t.Errorf("punctuation changed the result set: %d vs %d", rPlain.Results, rPunct.Results)
	}
	if rPunct.Punctuations == 0 {
		t.Fatal("no punctuations emitted")
	}
	// Overhead: utilization increase should be marginal.
	if rPunct.MaxUtil > rPlain.MaxUtil*1.15+0.02 {
		t.Errorf("punctuation raised max utilization %.3f -> %.3f; want negligible overhead",
			rPlain.MaxUtil, rPunct.MaxUtil)
	}
	// Figure 21: the sort buffer holds only the results of roughly one
	// punctuation period, a tiny share of the run's results.
	if rPunct.MaxSortBuffer == 0 {
		t.Fatal("sorter never buffered anything")
	}
	if frac := float64(rPunct.MaxSortBuffer) / float64(rPunct.Results); frac > 0.2 {
		t.Errorf("sort buffer high-water mark %d is %.0f%% of %d results; want a small fraction",
			rPunct.MaxSortBuffer, frac*100, rPunct.Results)
	}
}
