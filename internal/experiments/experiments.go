// Package experiments assembles the paper's evaluation (§7) from the
// building blocks in this repository: every figure and table has a
// function here that produces its data series, used both by the
// cmd/llhjbench harness (which prints them) and by the test suite
// (which asserts their shapes).
//
// Scale note: the paper's testbed is a 48-core machine running
// 15-minute windows at thousands of tuples/second — about 10^10
// predicate evaluations per window fill. The discrete-event simulator
// reproduces the *shape* of every experiment at a reduced scale
// (seconds-long windows, hundreds of tuples/second) on a single
// commodity core; EXPERIMENTS.md records paper-vs-measured values and
// the scaling applied. Latency results are reported in units of the
// virtual clock, so the HSJ-vs-LLHJ contrast (window-scale versus
// batch-scale latency) appears exactly as in Figures 5, 18, 19 and 20.
package experiments

import (
	"math"

	"handshakejoin/internal/collect"
	"handshakejoin/internal/core"
	"handshakejoin/internal/hsj"
	"handshakejoin/internal/metrics"
	"handshakejoin/internal/order"
	"handshakejoin/internal/pipeline"
	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// Algo selects the operator under test.
type Algo uint8

// Operators under test.
const (
	AlgoHSJ Algo = iota
	AlgoLLHJ
	AlgoLLHJPunct // LLHJ with punctuation generation enabled
	AlgoLLHJIndex // LLHJ with node-local hash indexes (equi-join)
)

// String implements fmt.Stringer.
func (a Algo) String() string {
	switch a {
	case AlgoHSJ:
		return "handshake join"
	case AlgoLLHJ:
		return "low-latency handshake join"
	case AlgoLLHJPunct:
		return "low-latency handshake join (punctuated)"
	case AlgoLLHJIndex:
		return "low-latency handshake join (hash index)"
	default:
		return "unknown"
	}
}

// Params describes one simulated run.
type Params struct {
	Algo  Algo
	Nodes int
	// RatePerSec is the per-stream input rate.
	RatePerSec float64
	// WindowR and WindowS are time-based window lengths in virtual ns.
	WindowR int64
	// WindowS is the S-side window in virtual ns.
	WindowS int64
	// Batch is the driver batch size.
	Batch int
	// Duration is the virtual run length in ns.
	Duration int64
	// Seed seeds the workload generator.
	Seed uint64
	// Cost is the simulator cost model; zero value means defaults.
	Cost pipeline.CostModel
	// Domain overrides the join-attribute domain (0 = paper's 10,000).
	Domain int
	// CollectPeriod enables collector modelling when > 0.
	CollectPeriod int64
}

func (p *Params) defaults() {
	if p.Nodes == 0 {
		p.Nodes = 4
	}
	if p.RatePerSec == 0 {
		p.RatePerSec = 100
	}
	if p.WindowR == 0 {
		p.WindowR = 10e9
	}
	if p.WindowS == 0 {
		p.WindowS = p.WindowR
	}
	if p.Batch == 0 {
		p.Batch = 64
	}
	if p.Duration == 0 {
		p.Duration = 3 * p.WindowR
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.Cost == (pipeline.CostModel{}) {
		p.Cost = pipeline.DefaultCostModel()
	}
	if p.Domain == 0 {
		p.Domain = 10000
	}
}

// builder returns the node builder for the configured algorithm.
func (p *Params) builder() core.Builder[workload.RTuple, workload.STuple] {
	switch p.Algo {
	case AlgoHSJ:
		capR := int(p.RatePerSec * float64(p.WindowR) / 1e9)
		capS := int(p.RatePerSec * float64(p.WindowS) / 1e9)
		if capR < 1 {
			capR = 1
		}
		if capS < 1 {
			capS = 1
		}
		cfg := &hsj.Config[workload.RTuple, workload.STuple]{
			Nodes: p.Nodes, Pred: workload.BandPredicate, CapR: capR, CapS: capS,
		}
		return func(k int) core.NodeLogic[workload.RTuple, workload.STuple] { return hsj.NewNode(cfg, k) }
	case AlgoLLHJIndex:
		cfg := &core.Config[workload.RTuple, workload.STuple]{
			Nodes: p.Nodes, Pred: workload.EquiPredicate,
			Index: core.IndexHash, KeyR: workload.RKey, KeyS: workload.SKey,
		}
		return func(k int) core.NodeLogic[workload.RTuple, workload.STuple] { return core.NewNode(cfg, k) }
	default:
		cfg := &core.Config[workload.RTuple, workload.STuple]{
			Nodes: p.Nodes, Pred: workload.BandPredicate,
		}
		return func(k int) core.NodeLogic[workload.RTuple, workload.STuple] { return core.NewNode(cfg, k) }
	}
}

func (p *Params) feed() (*pipeline.Feed[workload.RTuple, workload.STuple], error) {
	wcfg := workload.Config{Seed: p.Seed, Domain: p.Domain, RatePerSec: p.RatePerSec}
	gen := workload.NewGenerator(wcfg)
	limit := p.Duration
	nextR := func() (stream.Tuple[workload.RTuple], bool) {
		t := gen.NextR()
		if t.TS > limit {
			return t, false
		}
		return t, true
	}
	nextS := func() (stream.Tuple[workload.STuple], bool) {
		t := gen.NextS()
		if t.TS > limit {
			return t, false
		}
		return t, true
	}
	return pipeline.NewFeed(pipeline.FeedConfig[workload.RTuple, workload.STuple]{
		NextR:   nextR,
		NextS:   nextS,
		WindowR: pipeline.WindowSpec{Duration: p.WindowR},
		WindowS: pipeline.WindowSpec{Duration: p.WindowS},
		Batch:   p.Batch,
	})
}

// RunResult summarizes one simulated run.
type RunResult struct {
	Params     Params
	Tuples     uint64 // per stream
	Results    uint64
	VirtualEnd int64
	MaxUtil    float64
	Stats      core.Stats
	// Latency is the full-run latency series (one point per bucket).
	Latency *metrics.Series
	// SteadyAvg and SteadyMax summarize latencies observed after the
	// windows filled (t ≥ max(WindowR, WindowS)).
	SteadyAvg float64
	SteadyMax int64
	// MaxSortBuffer is the ordered-output buffer high-water mark
	// (populated when CollectPeriod > 0).
	MaxSortBuffer int
	// Punctuations counts collector punctuation emissions.
	Punctuations int
}

// Run executes one simulated experiment, draining it completely.
func Run(p Params) (*RunResult, error) {
	res, _, err := run(p, 0)
	return res, err
}

// run executes one experiment; a non-zero deadline bounds the virtual
// time (used by sustainability probes to bail out of overload early).
// drained reports whether everything completed before the deadline.
func run(p Params, deadline int64) (*RunResult, bool, error) {
	p.defaults()
	feed, err := p.feed()
	if err != nil {
		return nil, false, err
	}
	sim := pipeline.NewSim(p.Nodes, p.builder(), p.Cost)

	res := &RunResult{Params: p, Latency: metrics.NewSeries(5000)}
	warm := p.WindowR
	if p.WindowS > warm {
		warm = p.WindowS
	}
	var steadySum float64
	var steadyN uint64
	sim.OnResult(func(_ int, r core.Result[workload.RTuple, workload.STuple]) {
		res.Results++
		lat := r.Latency()
		res.Latency.Add(r.At, lat)
		if r.At >= warm {
			steadySum += float64(lat)
			steadyN++
			if lat > res.SteadyMax {
				res.SteadyMax = lat
			}
		}
	})

	var sorter *order.Sorter[workload.RTuple, workload.STuple]
	if p.CollectPeriod > 0 {
		sorter = order.NewSorter[workload.RTuple, workload.STuple](func(core.Result[workload.RTuple, workload.STuple]) {})
		sim.EnableCollector(p.CollectPeriod, func(punct int64, batch []core.Result[workload.RTuple, workload.STuple]) {
			for _, r := range batch {
				sorter.Push(collect.Item[workload.RTuple, workload.STuple]{Result: r})
			}
			if p.Algo == AlgoLLHJPunct || p.Algo == AlgoLLHJIndex {
				sorter.Push(collect.Item[workload.RTuple, workload.STuple]{Punct: true, TS: punct})
				res.Punctuations++
			}
		})
	}

	drained := true
	if deadline > 0 {
		drained = sim.RunUntil(deadline, feed)
	} else {
		sim.Drain(feed)
	}
	res.Latency.Flush()
	if sorter != nil {
		sim.FlushResults()
		sorter.Flush()
		res.MaxSortBuffer = sorter.MaxBuffer()
	}
	r, s := feed.Counts()
	res.Tuples = r
	if s < r {
		res.Tuples = s
	}
	res.VirtualEnd = sim.Now()
	res.MaxUtil = sim.MaxUtilization()
	res.Stats = sim.Stats()
	if steadyN > 0 {
		res.SteadyAvg = steadySum / float64(steadyN)
	}
	return res, drained, nil
}

// Sustainable reports whether the configuration keeps up with its input
// rate: every node's utilization stays below the threshold and the run
// drains within a small multiple of its virtual duration.
func Sustainable(p Params, utilThreshold float64) (bool, *RunResult, error) {
	p.defaults()
	// Allow the drain to extend one window past the last arrival
	// (time-based expiries legitimately trail by a window) plus 20%
	// slack; anything beyond means the pipeline lagged its input, so
	// bail out instead of simulating the whole backlog.
	winMax := p.WindowR
	if p.WindowS > winMax {
		winMax = p.WindowS
	}
	deadline := p.Duration + winMax + p.Duration/5
	res, drained, err := run(p, deadline)
	if err != nil {
		return false, nil, err
	}
	if !drained || res.MaxUtil >= utilThreshold {
		return false, res, nil
	}
	return true, res, nil
}

// MaxRate binary-searches the highest sustainable per-stream rate for
// the configuration, between lo and hi tuples/second.
func MaxRate(p Params, lo, hi float64, iters int) (float64, error) {
	p.defaults()
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		q := p
		q.RatePerSec = mid
		ok, _, err := Sustainable(q, 0.95)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// ModelMaxRate returns the analytic sustainable rate for the
// scan-dominated cost model: each node handles 2λ tuples/second (both
// streams pass every node), paying the fixed per-tuple cost plus a scan
// of its share of both windows (2λ·W̄/n entries, W̄ the mean window in
// seconds). Solving
//
//	2λ·(fixed + perEntry·2λ·W̄/n) = 1
//
// for λ gives the model curve printed alongside the simulated points in
// Figure 17; its λ ∝ √n shape is the paper's scalability argument.
func ModelMaxRate(p Params) float64 {
	p.defaults()
	c := p.Cost
	fixed := float64(c.PerTuple+c.PerMsg/int64(p.Batch)) / 1e9
	perEntry := float64(c.PerEntry) / 1e9
	wMean := (float64(p.WindowR) + float64(p.WindowS)) / 2 / 1e9
	// Quadratic: a·λ² + b·λ − 1 = 0 with a = 4·perEntry·wMean/n,
	// b = 2·fixed.
	a := 4 * perEntry * wMean / float64(p.Nodes)
	b := 2 * fixed
	if a == 0 {
		if b == 0 {
			return 0
		}
		return 1 / b
	}
	disc := b*b + 4*a
	return (-b + math.Sqrt(disc)) / (2 * a)
}
