// Package wire is the deterministic little-endian binary framing
// shared by the durability codecs: the lane GroupState codec
// (internal/shard), the router table snapshot (internal/adapt) and the
// engine-level checkpoint files. It is intentionally tiny — fixed-width
// integers, length-prefixed blobs, a sticky-error reader — because the
// property the checkpoint oracle needs is determinism: the same state
// always encodes to the same bytes, so a CRC over the encoding is a
// meaningful integrity check and two encodes of one cut can be compared
// byte-for-byte in tests.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrShort is reported by Reader when a decode runs past the buffer.
var ErrShort = errors.New("wire: short buffer")

// Writer appends fixed-width little-endian values to a growing buffer.
// The zero value is ready to use.
type Writer struct {
	b []byte
}

// NewWriter returns a writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{b: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer. The slice aliases the writer's
// backing array; it is valid until the next append.
func (w *Writer) Bytes() []byte { return w.b }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.b) }

// Reset truncates the buffer, keeping its capacity, so one writer can
// be reused across encodes without reallocating.
func (w *Writer) Reset() { w.b = w.b[:0] }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.b = append(w.b, v) }

// Bool appends a bool as one byte (1/0).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }

// I64 appends an int64 (two's-complement, little-endian).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 by IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Blob appends a u32 length prefix followed by the bytes.
func (w *Writer) Blob(p []byte) {
	w.U32(uint32(len(p)))
	w.b = append(w.b, p...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// Reader decodes a buffer written by Writer. Errors are sticky: after
// the first short read every accessor returns the zero value, and Err
// reports ErrShort. Callers check Err once at the end of a decode.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a reader over buf. The reader does not copy buf;
// Blob results alias it.
func NewReader(buf []byte) *Reader { return &Reader{b: buf} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off < n {
		r.err = ErrShort
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// U8 decodes one byte.
func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool decodes one byte as a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 decodes a little-endian uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 decodes a little-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 decodes an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 decodes a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Blob decodes a length-prefixed byte slice. The result aliases the
// reader's buffer. A length running past the buffer is a short read.
func (r *Reader) Blob() []byte {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	return r.take(n)
}

// String decodes a length-prefixed string.
func (r *Reader) String() string { return string(r.Blob()) }
