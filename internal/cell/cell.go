// Package cell implements CellJoin (Gedik et al., VLDB Journal 2009),
// the parallel version of Kang's three-step procedure described in
// §2.2.1 of the paper: upon every tuple arrival, the opposite window is
// re-partitioned across the available workers, which perform the window
// scan in parallel; a barrier completes the arrival before the next one
// is admitted.
//
// CellJoin inherits Kang's low latency but pays a re-partitioning and
// coordination cost on every arrival, which is the scalability
// limitation that motivated handshake join. The implementation keeps
// both windows in shared slices (CellJoin assumes globally shared
// memory — the very assumption handshake join drops).
package cell

import (
	"sync"

	"handshakejoin/internal/stream"
)

// Join is a CellJoin instance with a fixed worker pool.
type Join[L, R any] struct {
	pred    stream.Predicate[L, R]
	workers int
	out     func(stream.Pair[L, R])

	wR []stream.Tuple[L]
	wS []stream.Tuple[R]

	comparisons uint64

	// Per-arrival scatter/gather machinery: reused channels keep the
	// per-tuple coordination overhead visible but bounded.
	tasks   chan task
	results chan []stream.Pair[L, R]
	wg      sync.WaitGroup
	scanR   stream.Tuple[L] // the probing R tuple for the current scan
	scanS   stream.Tuple[R]
	side    stream.Side
	closed  bool
}

type task struct {
	lo, hi int
}

// New starts a CellJoin with the given number of scan workers; matches
// are passed to out in arrival order completion (one arrival at a time,
// as the three-step procedure requires).
func New[L, R any](pred stream.Predicate[L, R], workers int, out func(stream.Pair[L, R])) *Join[L, R] {
	if workers < 1 {
		workers = 1
	}
	j := &Join[L, R]{
		pred:    pred,
		workers: workers,
		out:     out,
		tasks:   make(chan task),
		results: make(chan []stream.Pair[L, R]),
	}
	j.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go j.worker()
	}
	return j
}

func (j *Join[L, R]) worker() {
	defer j.wg.Done()
	for t := range j.tasks {
		var found []stream.Pair[L, R]
		if j.side == stream.R {
			r := j.scanR
			for _, s := range j.wS[t.lo:t.hi] {
				if j.pred(r.Payload, s.Payload) {
					found = append(found, stream.Pair[L, R]{R: r, S: s})
				}
			}
		} else {
			s := j.scanS
			for _, r := range j.wR[t.lo:t.hi] {
				if j.pred(r.Payload, s.Payload) {
					found = append(found, stream.Pair[L, R]{R: r, S: s})
				}
			}
		}
		j.results <- found
	}
}

// scatterGather re-partitions the window [0, n) across the workers and
// collects their matches — the per-arrival cost CellJoin pays.
func (j *Join[L, R]) scatterGather(n int) {
	j.comparisons += uint64(n)
	parts := j.workers
	if n < parts {
		parts = n
	}
	if parts == 0 {
		return
	}
	chunk := (n + parts - 1) / parts
	issued := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		// Workers run concurrently with this loop; tasks is unbuffered
		// so this scatters as workers become free.
		go func(t task) { j.tasks <- t }(task{lo: lo, hi: hi})
		issued++
	}
	var all []stream.Pair[L, R]
	for i := 0; i < issued; i++ {
		all = append(all, <-j.results...)
	}
	// Deterministic output order within one arrival.
	sortPairs(all)
	for _, p := range all {
		j.out(p)
	}
}

func sortPairs[L, R any](ps []stream.Pair[L, R]) {
	// Insertion sort by (RSeq, SSeq): windows are scanned in order, so
	// the slices are nearly sorted already and small.
	for i := 1; i < len(ps); i++ {
		for k := i; k > 0 && less(ps[k], ps[k-1]); k-- {
			ps[k], ps[k-1] = ps[k-1], ps[k]
		}
	}
}

func less[L, R any](a, b stream.Pair[L, R]) bool {
	if a.R.Seq != b.R.Seq {
		return a.R.Seq < b.R.Seq
	}
	return a.S.Seq < b.S.Seq
}

// ProcessR handles an arriving R tuple: parallel scan of the S window,
// then insertion into the R window.
func (j *Join[L, R]) ProcessR(r stream.Tuple[L]) {
	j.side = stream.R
	j.scanR = r
	j.scatterGather(len(j.wS))
	j.wR = append(j.wR, r)
}

// ProcessS handles an arriving S tuple.
func (j *Join[L, R]) ProcessS(s stream.Tuple[R]) {
	j.side = stream.S
	j.scanS = s
	j.scatterGather(len(j.wR))
	j.wS = append(j.wS, s)
}

// ExpireR removes the R tuple with the given sequence number.
func (j *Join[L, R]) ExpireR(seq uint64) {
	for i := range j.wR {
		if j.wR[i].Seq == seq {
			j.wR = append(j.wR[:i], j.wR[i+1:]...)
			return
		}
	}
}

// ExpireS removes the S tuple with the given sequence number.
func (j *Join[L, R]) ExpireS(seq uint64) {
	for i := range j.wS {
		if j.wS[i].Seq == seq {
			j.wS = append(j.wS[:i], j.wS[i+1:]...)
			return
		}
	}
}

// Comparisons returns the number of predicate evaluations performed.
func (j *Join[L, R]) Comparisons() uint64 { return j.comparisons }

// Close shuts the worker pool down.
func (j *Join[L, R]) Close() {
	if j.closed {
		return
	}
	j.closed = true
	close(j.tasks)
	j.wg.Wait()
}
