package cell

import (
	"fmt"
	"testing"

	"handshakejoin/internal/kang"
	"handshakejoin/internal/stream"
	"handshakejoin/internal/workload"
)

// TestCellJoinMatchesKang verifies that the parallel scan produces
// exactly the sequential three-step results, in deterministic order per
// arrival, across worker counts.
func TestCellJoinMatchesKang(t *testing.T) {
	cfg := workload.DefaultConfig(1000)
	cfg.Domain = 40
	for _, workers := range []int{1, 2, 4, 9} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			gen := workload.NewGenerator(cfg)
			rs, ss := gen.Batch(400)

			var want []stream.PairKey
			oracle := kang.New(workload.BandPredicate, func(p stream.Pair[workload.RTuple, workload.STuple]) {
				want = append(want, p.Key())
			})
			var got []stream.PairKey
			cj := New(workload.BandPredicate, workers, func(p stream.Pair[workload.RTuple, workload.STuple]) {
				got = append(got, p.Key())
			})
			defer cj.Close()

			const win = 120
			for i := range rs {
				oracle.ProcessR(rs[i])
				cj.ProcessR(rs[i])
				oracle.ProcessS(ss[i])
				cj.ProcessS(ss[i])
				if i >= win {
					oracle.ExpireR(rs[i-win].Seq)
					cj.ExpireR(rs[i-win].Seq)
					oracle.ExpireS(ss[i-win].Seq)
					cj.ExpireS(ss[i-win].Seq)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("results = %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("result %d = %+v, want %+v (order must be deterministic)", i, got[i], want[i])
				}
			}
			if cj.Comparisons() != oracle.Comparisons() {
				t.Fatalf("comparisons %d vs oracle %d", cj.Comparisons(), oracle.Comparisons())
			}
		})
	}
}

func TestCellJoinEmptyWindows(t *testing.T) {
	cj := New(func(r, s int) bool { return true }, 3, func(stream.Pair[int, int]) {
		t.Fatal("match from empty window")
	})
	defer cj.Close()
	cj.ProcessR(stream.Tuple[int]{Seq: 0})
	cj.ExpireR(0)
	cj.ProcessR(stream.Tuple[int]{Seq: 1}) // S window still empty
}

func TestCellJoinCloseIdempotent(t *testing.T) {
	cj := New(func(r, s int) bool { return true }, 2, func(stream.Pair[int, int]) {})
	cj.Close()
	cj.Close()
}
