package probe

import (
	"math"
	"testing"
)

func TestInitialStrategyFollowsClass(t *testing.T) {
	cases := []struct {
		class Class
		want  Strategy
	}{
		{ClassOpaque, UseScan},
		{ClassEqui, UseHash},
		{ClassBand, UseBTree},
		{ClassLE, UseBTree},
		{ClassGE, UseBTree},
	}
	for _, c := range cases {
		tab := NewTable(Config{Groups: 8, Class: c.class})
		for g := uint32(0); g < 8; g++ {
			if got := tab.StrategyOf(g); got != c.want {
				t.Fatalf("class %d group %d: initial strategy %v, want %v", c.class, g, got, c.want)
			}
		}
	}
}

func TestGroupOfMatchesMix(t *testing.T) {
	tab := NewTable(Config{Groups: 64, Class: ClassEqui})
	for k := uint64(0); k < 1000; k++ {
		want := uint32(Mix(k) % 64)
		if got := tab.GroupOf(k); got != want {
			t.Fatalf("GroupOf(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestRanges(t *testing.T) {
	band := NewTable(Config{Groups: 1, Class: ClassBand, Band: 10})
	if lo, hi := band.RangeFromR(5); lo != 0 || hi != 15 {
		t.Fatalf("band RangeFromR(5) = [%d,%d], want [0,15]", lo, hi)
	}
	if lo, hi := band.RangeFromS(math.MaxUint64 - 3); lo != math.MaxUint64-13 || hi != math.MaxUint64 {
		t.Fatalf("band RangeFromS saturation broken: [%d,%d]", lo, hi)
	}
	le := NewTable(Config{Groups: 1, Class: ClassLE})
	if lo, hi := le.RangeFromR(42); lo != 42 || hi != math.MaxUint64 {
		t.Fatalf("LE RangeFromR(42) = [%d,%d]", lo, hi)
	}
	if lo, hi := le.RangeFromS(42); lo != 0 || hi != 42 {
		t.Fatalf("LE RangeFromS(42) = [%d,%d]", lo, hi)
	}
	ge := NewTable(Config{Groups: 1, Class: ClassGE})
	if lo, hi := ge.RangeFromR(42); lo != 0 || hi != 42 {
		t.Fatalf("GE RangeFromR(42) = [%d,%d]", lo, hi)
	}
	if lo, hi := ge.RangeFromS(42); lo != 42 || hi != math.MaxUint64 {
		t.Fatalf("GE RangeFromS(42) = [%d,%d]", lo, hi)
	}
	eq := NewTable(Config{Groups: 1, Class: ClassEqui})
	if lo, hi := eq.RangeFromR(7); lo != 7 || hi != 7 {
		t.Fatalf("equi RangeFromR(7) = [%d,%d]", lo, hi)
	}
}

// A hot equi group whose matches dominate the window should flip from
// the hash prior to scan — and only after the hysteresis streak.
func TestDecideFlipsHotGroupToScan(t *testing.T) {
	var flips []Strategy
	tab := NewTable(Config{Groups: 4, Class: ClassEqui, DecideEvery: 16,
		OnSwitch: func(g uint32, from, to Strategy) {
			if g != 0 {
				t.Fatalf("unexpected flip on group %d", g)
			}
			flips = append(flips, to)
		}})
	// Group 0: window of 40, hash chains inspect ~38 of them (nearly
	// every entry shares the hot key) → scan is cheaper than 38 chain
	// hops + upkeep. One epoch must NOT flip (streak), two must.
	for i := 0; i < 16; i++ {
		tab.Observe(0, 40, 38, 30)
	}
	if got := tab.StrategyOf(0); got != UseHash {
		t.Fatalf("flipped after a single epoch: %v", got)
	}
	for i := 0; i < 16; i++ {
		tab.Observe(0, 40, 38, 30)
	}
	if got := tab.StrategyOf(0); got != UseScan {
		t.Fatalf("no flip after sustained evidence: %v", got)
	}
	if len(flips) != 1 || flips[0] != UseScan || tab.Switches() != 1 {
		t.Fatalf("flips=%v switches=%d", flips, tab.Switches())
	}
}

// A selective equi group on a large window must stay on hash.
func TestDecideKeepsSelectiveGroupOnHash(t *testing.T) {
	tab := NewTable(Config{Groups: 4, Class: ClassEqui, DecideEvery: 16})
	for i := 0; i < 200; i++ {
		tab.Observe(1, 4096, 2, 1)
	}
	if got := tab.StrategyOf(1); got != UseHash {
		t.Fatalf("selective group left hash: %v", got)
	}
	if tab.Switches() != 0 {
		t.Fatalf("unexpected switches: %d", tab.Switches())
	}
}

// While a group scans, matched-per-probe floors the chain estimate; the
// router-fed cardinality ceilings it. A selective group that was forced
// to scan must find its way back to hash.
func TestScanGroupRecoversToHash(t *testing.T) {
	tab := NewTable(Config{Groups: 4, Class: ClassEqui, DecideEvery: 16, Lanes: 1, Nodes: 1})
	tab.SetStrategy(2, UseScan)
	if tab.StrategyOf(2) != UseScan {
		t.Fatal("SetStrategy did not apply")
	}
	card := make([]uint64, 4)
	card[2] = 8 // group holds 8 live tuples → short chains
	tab.FeedCardinality(card)
	for i := 0; i < 64; i++ {
		tab.Observe(2, 4096, 4096, 2)
	}
	if got := tab.StrategyOf(2); got != UseHash {
		t.Fatalf("scan group did not recover to hash: %v", got)
	}
}

func TestSetStrategyRespectsClass(t *testing.T) {
	tab := NewTable(Config{Groups: 2, Class: ClassBand, Band: 4})
	tab.SetStrategy(0, UseHash) // hash cannot answer a band predicate
	if got := tab.StrategyOf(0); got != UseBTree {
		t.Fatalf("band group accepted hash: %v", got)
	}
	tab.SetStrategy(0, UseScan)
	if got := tab.StrategyOf(0); got != UseScan {
		t.Fatalf("band group rejected scan: %v", got)
	}
	if tab.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", tab.Switches())
	}
}

func TestMixCounts(t *testing.T) {
	tab := NewTable(Config{Groups: 6, Class: ClassEqui})
	tab.SetStrategy(0, UseScan)
	tab.SetStrategy(1, UseBTree)
	scan, hash, btree := tab.MixCounts()
	if scan != 1 || hash != 4 || btree != 1 {
		t.Fatalf("mix = %d/%d/%d, want 1/4/1", scan, hash, btree)
	}
}
