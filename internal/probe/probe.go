// Package probe implements the selectivity-adaptive probe engine: a
// per-key-group strategy table that decides, at runtime and from
// measured statistics, which access path each window probe should take
// — a full scan, a hash probe, or a B-tree range probe.
//
// The paper fixes the access path at configuration time (§7.6 evaluates
// a global hash index against the default scan); this package makes it
// a per-(key-group, predicate-class) runtime decision in the spirit of
// measured strategy selection: each group's probes are sampled for
// window footprint, entries inspected and matches produced, a crossover
// cost model compares the candidate paths in scan-entry units, and a
// hysteresis streak lets a group flip only on sustained evidence, so
// the lazily built node-local indexes are never thrashed.
//
// The package is a leaf: internal/core dispatches through a Table on
// the data plane, internal/adapt feeds it the router's authoritative
// per-group window cardinality from the control plane, and the public
// engines own it (Config.IndexAuto). It must not import either.
package probe

import (
	"math"
	"sync/atomic"
)

// Strategy is one access path for a node-local window probe.
type Strategy uint32

const (
	// UseScan walks the whole node-local window fragment linearly (the
	// paper's default path; optimal for tiny fragments and for groups
	// whose matches dominate the window).
	UseScan Strategy = iota
	// UseHash walks the key's hash chain (equi-class groups whose
	// chains are short relative to the window fragment).
	UseHash
	// UseBTree walks the B-tree over the class's key range (band and
	// inequality classes, and equi groups on windows where an ordered
	// probe beats its maintenance).
	UseBTree

	numStrategies = 3
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case UseScan:
		return "scan"
	case UseHash:
		return "hash"
	case UseBTree:
		return "btree"
	default:
		return "strategy(?)"
	}
}

// Class declares the key relation a join predicate implies — what the
// engine is allowed to assume when it narrows a probe to an index.
type Class uint8

const (
	// ClassOpaque promises nothing: every probe must scan.
	ClassOpaque Class = iota
	// ClassEqui promises matches have equal keys.
	ClassEqui
	// ClassBand promises matches have |keyR − keyS| <= Band.
	ClassBand
	// ClassLE promises matches have keyR <= keyS.
	ClassLE
	// ClassGE promises matches have keyR >= keyS.
	ClassGE
)

// allows reports whether a class admits a strategy: hash probes need
// key equality, range probes need any declared key relation.
func (c Class) allows(s Strategy) bool {
	switch s {
	case UseScan:
		return true
	case UseHash:
		return c == ClassEqui
	case UseBTree:
		return c == ClassEqui || c == ClassBand || c == ClassLE || c == ClassGE
	default:
		return false
	}
}

// initial is the prior before any statistics exist: the path the class
// structurally favors. Starting from the indexed path and flipping to
// scan on evidence is far cheaper than the reverse — mis-priced index
// probes cost a chain walk each, mis-priced scans cost the whole
// window fragment each — so the warm-up burns the cheap kind of error.
func (c Class) initial() Strategy {
	switch c {
	case ClassEqui:
		return UseHash
	case ClassBand, ClassLE, ClassGE:
		return UseBTree
	default:
		return UseScan
	}
}

// Mix is the splitmix64 finalizer, the key mixer shared with
// internal/shard's Partitioner (which delegates here): the data plane
// recomputes a tuple's key-group from its join key, and both sides must
// agree on group identity for the router-fed cardinality to line up.
func Mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Crossover-model constants, in scan-entry cost units (one unit = one
// linear window entry visited). Calibrated against cmd/llhjbench's
// probe experiment (BENCH_probe.json pins the measured crossover
// points): a hash-chain entry costs more than a scan entry (pointer
// chase vs sequential walk), and each indexed path carries a constant
// per-probe charge covering its amortized per-insert maintenance.
const (
	hashEntryCost = 1.25 // per chain entry walked
	hashUpkeep    = 12.0 // per probe: bucket lookup + amortized insert/remove
	treeDescent   = 2.0  // per level of the B-tree descent
	treeUpkeep    = 24.0 // per probe: amortized ordered-insert/remove
	// margin is the hysteresis band: a candidate path must beat the
	// current one by this factor before it counts toward a flip, so
	// near-ties never oscillate.
	margin = 1.2
	// flipStreak is how many consecutive decision epochs the same
	// challenger must win before the group flips — the "sustained
	// evidence" half of the hysteresis.
	flipStreak = 2
	// defaultEpoch is the probes-per-group decision cadence.
	defaultEpoch = 128
)

// groupState is one key-group's sample slot: the since-last-epoch
// counters and hysteresis state. The group's current strategy lives in
// the Table's separate strats array — the hot path reads strategies on
// every probe, and if they shared these write-heavy lines, every
// sampled Observe on one core would invalidate the dispatch read on
// every other. Counters are updated with plain-load + atomic-store from
// whichever node is probing the group; concurrent nodes may lose
// increments, which only blurs the sample — the decision consumes
// averages and flips on streaks, so a lossy sample costs at most one
// extra epoch of evidence. Padded so neighbouring groups hammered by
// different lanes do not share a line.
type groupState struct {
	streak    atomic.Uint32
	want      atomic.Uint32 // challenger the current streak is counting for
	probes    atomic.Uint64
	inspected atomic.Uint64
	matched   atomic.Uint64
	liveSum   atomic.Uint64
	card      atomic.Uint64 // router-fed live group cardinality (0 = unfed)
	_         [16]byte
}

// Config parameterizes a Table.
type Config struct {
	// Groups is the key-group count; must match the routing
	// partitioner's group count when a router feeds the table.
	Groups int
	// Class declares the predicate's key relation.
	Class Class
	// Band is the half-width for ClassBand range probes.
	Band uint64
	// Lanes and Nodes describe the fleet sharing the table (shard
	// count × pipeline length); the model uses them to convert the
	// router's global group cardinality into a per-node chain ceiling.
	Lanes, Nodes int
	// OnSwitch, when set, receives every applied strategy flip (forced
	// or decided). Called from whichever goroutine applied the flip, on
	// the cold decision path only.
	OnSwitch func(group uint32, from, to Strategy)
	// DecideEvery overrides the probes-per-group decision epoch.
	DecideEvery int
}

// Table is the shared per-key-group strategy table. Reads on the probe
// hot path are one atomic load; statistics updates are a handful of
// single-writer-style stores; decisions run amortized, every
// DecideEvery probes of a group.
type Table struct {
	groups uint32
	class  Class
	band   uint64
	epoch  uint64
	share  float64 // global cardinality → per-node fragment factor

	// strats is the per-group current strategy, kept apart from the
	// sample counters: it is read on every probe and written only on a
	// flip, so its cache lines stay shared across cores instead of
	// ping-ponging with the Observe traffic.
	strats   []atomic.Uint32
	gs       []groupState
	switches atomic.Uint64
	onSwitch func(group uint32, from, to Strategy)
}

// NewTable returns a Table with every group on its class's prior
// strategy.
func NewTable(cfg Config) *Table {
	if cfg.Groups < 1 {
		cfg.Groups = 1
	}
	if cfg.Lanes < 1 {
		cfg.Lanes = 1
	}
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.DecideEvery <= 0 {
		cfg.DecideEvery = defaultEpoch
	}
	t := &Table{
		groups:   uint32(cfg.Groups),
		class:    cfg.Class,
		band:     cfg.Band,
		epoch:    uint64(cfg.DecideEvery),
		share:    1 / float64(cfg.Lanes*cfg.Nodes),
		strats:   make([]atomic.Uint32, cfg.Groups),
		gs:       make([]groupState, cfg.Groups),
		onSwitch: cfg.OnSwitch,
	}
	init := uint32(cfg.Class.initial())
	for i := range t.strats {
		t.strats[i].Store(init)
	}
	return t
}

// Groups returns the key-group count.
func (t *Table) Groups() int { return int(t.groups) }

// Class returns the declared predicate class.
func (t *Table) Class() Class { return t.class }

// GroupOf maps a join key to its key-group — the same assignment the
// shard partitioner uses.
func (t *Table) GroupOf(key uint64) uint32 { return uint32(Mix(key) % uint64(t.groups)) }

// StrategyOf returns the group's current strategy: one atomic load.
func (t *Table) StrategyOf(g uint32) Strategy { return Strategy(t.strats[g].Load()) }

// RangeFromR returns the S-window key range an R arrival with the given
// key must probe under the declared class.
func (t *Table) RangeFromR(key uint64) (lo, hi uint64) {
	switch t.class {
	case ClassBand:
		return satLo(key, t.band), satHi(key, t.band)
	case ClassLE: // keyR <= keyS: S candidates at or above key
		return key, math.MaxUint64
	case ClassGE: // keyR >= keyS: S candidates at or below key
		return 0, key
	default: // equi
		return key, key
	}
}

// RangeFromS returns the R-window key range an S arrival with the given
// key must probe — the mirror of RangeFromR.
func (t *Table) RangeFromS(key uint64) (lo, hi uint64) {
	switch t.class {
	case ClassBand:
		return satLo(key, t.band), satHi(key, t.band)
	case ClassLE: // keyR <= keyS: R candidates at or below key
		return 0, key
	case ClassGE:
		return key, math.MaxUint64
	default:
		return key, key
	}
}

func satLo(k, b uint64) uint64 {
	if k < b {
		return 0
	}
	return k - b
}

func satHi(k, b uint64) uint64 {
	if k > math.MaxUint64-b {
		return math.MaxUint64
	}
	return k + b
}

// Observe records one window probe of the group — the fragment size the
// probing node saw, the index/scan entries it inspected, and the
// matches it emitted — and runs the group's crossover decision once per
// epoch. Safe to call from concurrent nodes; see groupState.
func (t *Table) Observe(g uint32, live, inspected, matched int) {
	gs := &t.gs[g]
	p := gs.probes.Load() + 1
	gs.probes.Store(p)
	gs.liveSum.Store(gs.liveSum.Load() + uint64(live))
	gs.inspected.Store(gs.inspected.Load() + uint64(inspected))
	gs.matched.Store(gs.matched.Load() + uint64(matched))
	if p >= t.epoch {
		t.decide(g)
	}
}

// decide runs one crossover epoch for the group: average the sample,
// price each admissible path in scan-entry units, and advance (or
// reset) the hysteresis streak. Two nodes may race into a decide for
// the same group; the epoch then just consumes a split sample — every
// transition below is idempotent and monotone per epoch.
func (t *Table) decide(g uint32) {
	gs := &t.gs[g]
	p := gs.probes.Load()
	if p == 0 {
		return
	}
	insp := gs.inspected.Load()
	match := gs.matched.Load()
	liveSum := gs.liveSum.Load()
	gs.probes.Store(0)
	gs.inspected.Store(0)
	gs.matched.Store(0)
	gs.liveSum.Store(0)

	fp := float64(p)
	avgLive := float64(liveSum) / fp
	cur := Strategy(t.strats[g].Load())

	// Chain/range footprint estimate: exact while an index is probing
	// (inspected counts its entries); while scanning, the matches are a
	// floor (every key-range entry that passed the residual) and the
	// router-fed group cardinality, scaled to one node's share, is a
	// ceiling (a chain cannot exceed the group's node-local footprint).
	est := float64(match) / fp
	if cur != UseScan {
		est = float64(insp) / fp
	}
	if est < 1 {
		est = 1
	}
	if card := gs.card.Load(); card > 0 {
		if share := float64(card)*t.share + 1; est > share {
			est = share
		}
	}

	costOf := func(s Strategy) float64 {
		switch s {
		case UseHash:
			return est*hashEntryCost + hashUpkeep
		case UseBTree:
			return est + treeDescent*math.Log2(avgLive+2) + treeUpkeep
		default:
			return avgLive + 1
		}
	}
	best, bestCost := cur, costOf(cur)
	for s := Strategy(0); s < numStrategies; s++ {
		if s == cur || !t.class.allows(s) {
			continue
		}
		if c := costOf(s); c*margin < bestCost {
			best, bestCost = s, c
		}
	}
	if best == cur {
		gs.streak.Store(0)
		return
	}
	if gs.want.Load() != uint32(best) {
		gs.want.Store(uint32(best))
		gs.streak.Store(1)
		return
	}
	streak := gs.streak.Load() + 1
	if streak < flipStreak {
		gs.streak.Store(streak)
		return
	}
	gs.streak.Store(0)
	t.apply(g, cur, best)
}

// apply flips the group and reports the switch. Cold path.
func (t *Table) apply(g uint32, from, to Strategy) {
	if from == to {
		return
	}
	t.strats[g].Store(uint32(to))
	t.switches.Add(1)
	if t.onSwitch != nil {
		t.onSwitch(g, from, to)
	}
}

// SetStrategy forces the group onto a strategy immediately, bypassing
// the evidence streak (tests and operational overrides). Strategies the
// class cannot answer are ignored. The crossover model keeps running
// and may flip the group back once the evidence says so.
func (t *Table) SetStrategy(g uint32, s Strategy) {
	if !t.class.allows(s) {
		return
	}
	t.gs[g].streak.Store(0)
	t.apply(g, Strategy(t.strats[g].Load()), s)
}

// FeedCardinality publishes the router's authoritative per-group live
// window cardinality (len >= Groups; extra entries ignored) — the
// control-plane half of the statistics. Called from the adapt
// controller's sampling cycle.
func (t *Table) FeedCardinality(live []uint64) {
	n := int(t.groups)
	if len(live) < n {
		n = len(live)
	}
	for g := 0; g < n; g++ {
		t.gs[g].card.Store(live[g])
	}
}

// Switches returns the number of strategy flips applied so far.
func (t *Table) Switches() uint64 { return t.switches.Load() }

// MixCounts returns how many groups currently sit on each strategy —
// a cheap census for snapshots and experiments.
func (t *Table) MixCounts() (scan, hash, btree int) {
	for i := range t.strats {
		switch Strategy(t.strats[i].Load()) {
		case UseHash:
			hash++
		case UseBTree:
			btree++
		default:
			scan++
		}
	}
	return scan, hash, btree
}
