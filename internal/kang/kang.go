// Package kang implements the three-step procedure of Kang et al.
// (ICDE 2003), described in §2.1 of the paper: for each arriving tuple,
// (1) scan the opposite window for matches, (2) invalidate expired
// tuples, (3) insert the tuple into its own window.
//
// The implementation is strictly sequential and therefore offers the
// optimal latency reference (§2.1: "Kang's procedure offers optimal
// latency characteristics") — and, more importantly for this
// repository, it is simple enough to serve as the semantic oracle that
// every parallel operator is tested against: for identical inputs and
// window specifications, handshake join and low-latency handshake join
// must produce exactly the same multiset of result pairs.
package kang

import (
	"handshakejoin/internal/stream"
)

// Join is a sequential sliding-window join. It consumes interleaved
// arrivals through ProcessR/ProcessS and expirations through
// ExpireR/ExpireS, mirroring the driver protocol of §4.2.4 so that the
// oracle sees exactly the window boundaries the pipelines see.
type Join[L, R any] struct {
	pred stream.Predicate[L, R]
	wR   []stream.Tuple[L]
	wS   []stream.Tuple[R]
	out  func(stream.Pair[L, R])

	comparisons uint64
}

// New returns a Join emitting matches to out.
func New[L, R any](pred stream.Predicate[L, R], out func(stream.Pair[L, R])) *Join[L, R] {
	return &Join[L, R]{pred: pred, out: out}
}

// ProcessR runs the three-step procedure for an arriving R tuple.
func (j *Join[L, R]) ProcessR(r stream.Tuple[L]) {
	for _, s := range j.wS {
		j.comparisons++
		if j.pred(r.Payload, s.Payload) {
			j.out(stream.Pair[L, R]{R: r, S: s})
		}
	}
	j.wR = append(j.wR, r)
}

// ProcessS runs the three-step procedure for an arriving S tuple.
func (j *Join[L, R]) ProcessS(s stream.Tuple[R]) {
	for _, r := range j.wR {
		j.comparisons++
		if j.pred(r.Payload, s.Payload) {
			j.out(stream.Pair[L, R]{R: r, S: s})
		}
	}
	j.wS = append(j.wS, s)
}

// ExpireR removes the R tuple with the given sequence number.
func (j *Join[L, R]) ExpireR(seq uint64) {
	for i := range j.wR {
		if j.wR[i].Seq == seq {
			j.wR = append(j.wR[:i], j.wR[i+1:]...)
			return
		}
	}
}

// ExpireS removes the S tuple with the given sequence number.
func (j *Join[L, R]) ExpireS(seq uint64) {
	for i := range j.wS {
		if j.wS[i].Seq == seq {
			j.wS = append(j.wS[:i], j.wS[i+1:]...)
			return
		}
	}
}

// WindowSizes returns the current window sizes.
func (j *Join[L, R]) WindowSizes() (r, s int) { return len(j.wR), len(j.wS) }

// Comparisons returns the number of predicate evaluations performed.
func (j *Join[L, R]) Comparisons() uint64 { return j.comparisons }
