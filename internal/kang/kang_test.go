package kang

import (
	"testing"

	"handshakejoin/internal/stream"
)

func rt(seq uint64, v int) stream.Tuple[int] {
	return stream.Tuple[int]{Seq: seq, TS: int64(seq), Payload: v}
}

func TestThreeStepProcedure(t *testing.T) {
	var out []stream.Pair[int, int]
	j := New(func(r, s int) bool { return r == s }, func(p stream.Pair[int, int]) {
		out = append(out, p)
	})

	j.ProcessR(rt(0, 5))
	if len(out) != 0 {
		t.Fatal("match against empty window")
	}
	j.ProcessS(rt(0, 5)) // matches r0
	j.ProcessS(rt(1, 6))
	j.ProcessR(rt(1, 6)) // matches s1
	j.ProcessR(rt(2, 5)) // matches s0
	if len(out) != 3 {
		t.Fatalf("results = %d, want 3", len(out))
	}
	// A tuple must not match itself-side or already-processed pairs twice.
	keys := map[stream.PairKey]bool{}
	for _, p := range out {
		if keys[p.Key()] {
			t.Fatalf("duplicate pair %+v", p.Key())
		}
		keys[p.Key()] = true
	}
	if r, s := j.WindowSizes(); r != 3 || s != 2 {
		t.Fatalf("windows = (%d, %d), want (3, 2)", r, s)
	}
}

func TestExpiry(t *testing.T) {
	var out []stream.Pair[int, int]
	j := New(func(r, s int) bool { return true }, func(p stream.Pair[int, int]) {
		out = append(out, p)
	})
	j.ProcessR(rt(0, 1))
	j.ProcessR(rt(1, 2))
	j.ExpireR(0)
	j.ExpireR(0) // idempotent
	j.ProcessS(rt(0, 3))
	if len(out) != 1 || out[0].R.Seq != 1 {
		t.Fatalf("expired tuple still matched: %+v", out)
	}
	j.ExpireS(0)
	if r, s := j.WindowSizes(); r != 1 || s != 0 {
		t.Fatalf("windows = (%d, %d)", r, s)
	}
}

func TestComparisonsCount(t *testing.T) {
	j := New(func(r, s int) bool { return false }, func(stream.Pair[int, int]) {})
	for i := 0; i < 10; i++ {
		j.ProcessR(rt(uint64(i), i))
	}
	for i := 0; i < 5; i++ {
		j.ProcessS(rt(uint64(i), i))
	}
	// Each S arrival scanned the full R window of 10.
	if got := j.Comparisons(); got != 50 {
		t.Fatalf("comparisons = %d, want 50", got)
	}
}
