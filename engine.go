package handshakejoin

import (
	"fmt"
	"sync"
	"sync/atomic"

	"handshakejoin/internal/clock"
	"handshakejoin/internal/collect"
	"handshakejoin/internal/core"
	"handshakejoin/internal/hsj"
	"handshakejoin/internal/metrics"
	"handshakejoin/internal/obs"
	"handshakejoin/internal/order"
	"handshakejoin/internal/probe"
	"handshakejoin/internal/shard"
	"handshakejoin/internal/stream"
)

// Engine is a running single-pipeline stream join: Workers node
// goroutines, a collector goroutine, and a driver embodied by the
// PushR/PushS calls.
//
// Tuples of each stream must be pushed in non-decreasing timestamp
// order (the punctuation mechanism relies on monotonic streams). PushR,
// PushS, their batch variants, Tick and Close must be called from a
// single goroutine; the OnOutput callback runs on the collector
// goroutine. For a driver that accepts concurrent pushes, see
// ShardedEngine (Config.Shards).
type Engine[L, RT any] struct {
	lane *shard.Lane[L, RT]
	clk  clock.Clock

	// rSeq/sSeq are the per-side sequence counters: written only by the
	// pusher goroutine (plain load + atomic store), read lock-free by
	// mid-run snapshots. rLastAt/sLastAt mirror the pusher-private
	// rLastTS/sLastTS the same way.
	rSeq, sSeq       atomic.Uint64
	rLastTS          int64
	sLastTS          int64
	rLastAt, sLastAt atomic.Int64
	rWin, sWin       windowTracker

	// Batched-ingress scratch, reused across calls (the Engine is
	// single-goroutine by contract). expireR/expireS are bound once so
	// the hot path allocates no closures.
	rOne             [1]Stamped[L]
	sOne             [1]Stamped[RT]
	tss              []int64
	rTuples          []stream.Tuple[L]
	sTuples          []stream.Tuple[RT]
	rDurSc, rCntSc   []shard.ExpiryEntry
	sDurSc, sCntSc   []shard.ExpiryEntry
	expireR, expireS expireFn

	sorter *order.Sorter[L, RT]
	// sortMu guards the sorter against the collector goroutine when a
	// mid-run cut must read or replace it; the output path takes it
	// only when durability is configured, so the default engine keeps
	// its lock-free serving path.
	sortMu sync.Mutex
	closed bool

	// dur is the durability runtime (Config.Durability): the WAL
	// handle, the replay flag, and checkpoint bookkeeping.
	dur durState[L, RT]

	// guard enforces Config.MaxLiveTuples at admission; nil when
	// admission control is disabled.
	guard *overloadGuard

	// probeTab is the IndexAuto strategy table shared by the pipeline's
	// nodes; nil under a static Index.
	probeTab *probe.Table

	// Observability layer (Config.Obs); all nil/absent when disabled.
	ring    *obs.Ring
	obsSrv  *obs.Server
	outHist *metrics.AtomicHistogram
}

// windowTracker turns one stream's arrivals into expiry entries
// according to the window specification. Each arrival is attributed to
// the lane (shard) that received the tuple, so count-bound expiries
// can be routed back to the lane owning the overflowed tuple, and to
// its key-group, so the adaptive router can release the group's live
// count when the tuple leaves the window. The expire callback receives
// (lane, group, seq, due, counted); with both bounds active a tuple is
// scheduled once per bound and the lane's expiry queue deduplicates
// (earliest due wins).
//
// The in-window FIFO keeps its live entries at buf[head:]: pops
// advance head and appends compact the survivors back to the front
// when the backing fills, so the steady state recycles one backing
// array instead of sliding an append window rightward through ever new
// allocations.
type windowTracker struct {
	spec Window
	buf  []windowEntry // live in-window entries at buf[head:]
	head int
}

type windowEntry struct {
	seq   uint64
	lane  int
	group uint32
	// settled marks a tuple that entered its current lane by state
	// migration: its future count expiry must bypass the lane's
	// injection gate, whose high-water mark never covered the tuple.
	settled bool
}

func (w *windowTracker) size() int { return len(w.buf) - w.head }

func (w *windowTracker) push(e windowEntry) {
	if w.head > 0 && len(w.buf) == cap(w.buf) {
		n := copy(w.buf, w.buf[w.head:])
		w.buf = w.buf[:n]
		w.head = 0
	}
	w.buf = append(w.buf, e)
}

func (w *windowTracker) pop() windowEntry {
	e := w.buf[w.head]
	w.head++
	return e
}

// entries copies out the live in-window entries, oldest first — the
// checkpoint image of the tracker.
func (w *windowTracker) entries() []windowEntry {
	return append([]windowEntry(nil), w.buf[w.head:]...)
}

// restore replaces the tracker's live entries with a checkpoint image.
func (w *windowTracker) restore(es []windowEntry) {
	w.buf = es
	w.head = 0
}

// expireFn receives one scheduled expiry; see windowTracker.
type expireFn func(lane int, group uint32, seq uint64, due int64, counted, settled bool)

func (w *windowTracker) onArrival(seq uint64, ts int64, lane int, group uint32, expire expireFn) {
	if w.spec.Duration > 0 {
		expire(lane, group, seq, ts+int64(w.spec.Duration), false, false)
	}
	if c := w.spec.Count; c > 0 {
		w.push(windowEntry{seq: seq, lane: lane, group: group})
		for w.size() > c {
			e := w.pop()
			expire(e.lane, e.group, e.seq, ts, true, e.settled)
		}
	}
}

// onArrivalBulk records one caller batch of arrivals — sequence
// numbers seq0, seq0+1, ... with timestamps tss — in a single pass,
// emitting exactly the expire calls the equivalent per-tuple onArrival
// sequence would: each arrival's duration deadline, then the count
// overflows it causes, attributed with that arrival's timestamp. lanes
// and groups may be nil when every tuple belongs to lane 0, group 0
// (the single-pipeline engine).
func (w *windowTracker) onArrivalBulk(seq0 uint64, tss []int64, lanes []int, groups []uint32, expire expireFn) {
	entry := func(i int) windowEntry {
		e := windowEntry{seq: seq0 + uint64(i)}
		if lanes != nil {
			e.lane, e.group = lanes[i], groups[i]
		}
		return e
	}
	if w.spec.Duration > 0 {
		d := int64(w.spec.Duration)
		for i, ts := range tss {
			e := entry(i)
			expire(e.lane, e.group, e.seq, ts+d, false, false)
		}
	}
	if c := w.spec.Count; c > 0 {
		for i, ts := range tss {
			w.push(entry(i))
			for w.size() > c {
				e := w.pop()
				expire(e.lane, e.group, e.seq, ts, true, e.settled)
			}
		}
	}
}

// rebind re-attributes the in-window entries of the given sequence
// numbers to a new lane, so future count-bound expiries route to the
// shard that now owns the tuples — the window-accounting half of a
// state migration — and marks them settled (the tuples are in the new
// lane's windows, which its injection high-water mark cannot know).
// The group assignment is untouched: entries of already-dead tuples
// (expired on the old lane via the other bound) keep their old lane,
// where their dedupe bookkeeping lives.
func (w *windowTracker) rebind(seqs map[uint64]struct{}, lane int) {
	if len(seqs) == 0 {
		return
	}
	live := w.buf[w.head:]
	for i := range live {
		if _, ok := seqs[live[i].seq]; ok {
			live[i].lane = lane
			live[i].settled = true
		}
	}
}

// dualBound reports whether the window needs exactly-once expiry
// deduplication (both bounds schedule every tuple).
func (w Window) dualBound() bool { return w.Duration > 0 && w.Count > 0 }

// probeClass maps the public predicate declaration onto the strategy
// table's class enum.
func probeClass(c PredicateClass) probe.Class {
	switch c {
	case PredEqui:
		return probe.ClassEqui
	case PredBand:
		return probe.ClassBand
	case PredLE:
		return probe.ClassLE
	case PredGE:
		return probe.ClassGE
	default:
		return probe.ClassOpaque
	}
}

// builderFor translates the public configuration into the node logic
// builder of the selected algorithm. trace, when non-nil, receives the
// window stores' rare-path events (LLHJ only; the reference HSJ
// pipeline has no instrumented store). pt, when non-nil, is the
// IndexAuto strategy table the pipeline's nodes dispatch through — the
// static Index kind is then ignored entirely (IndexAuto must never be
// cast into core.IndexKind).
func builderFor[L, RT any](cfg *Config[L, RT], trace func(kind string, a, b int64), pt *probe.Table) (core.Builder[L, RT], error) {
	switch cfg.Algorithm {
	case LLHJ:
		ccfg := &core.Config[L, RT]{
			Nodes: cfg.Workers,
			Pred:  cfg.Predicate,
			Index: core.IndexKind(cfg.Index),
			KeyR:  cfg.KeyR,
			KeyS:  cfg.KeyS,
			Band:  cfg.Band,
			Trace: trace,
		}
		if pt != nil {
			ccfg.Index = core.IndexNone
			ccfg.Probe = pt
		}
		return func(k int) core.NodeLogic[L, RT] { return core.NewNode(ccfg, k) }, nil
	case HSJ:
		hcfg := &hsj.Config[L, RT]{
			Nodes: cfg.Workers,
			Pred:  cfg.Predicate,
			CapR:  windowCapacity(cfg.WindowR, cfg.ExpectedRate),
			CapS:  windowCapacity(cfg.WindowS, cfg.ExpectedRate),
		}
		return func(k int) core.NodeLogic[L, RT] { return hsj.NewNode(hcfg, k) }, nil
	default:
		return nil, fmt.Errorf("handshakejoin: unknown algorithm %v", cfg.Algorithm)
	}
}

// laneConfig translates the public configuration into the per-lane
// driver configuration.
func laneConfig[L, RT any](cfg *Config[L, RT], clk clock.Clock, punctuate bool) shard.LaneConfig {
	return shard.LaneConfig{
		Workers:       cfg.Workers,
		Batch:         cfg.Batch,
		MaxInFlight:   cfg.MaxInFlight,
		CollectPeriod: cfg.CollectPeriod,
		Punctuate:     punctuate,
		Clock:         clk,
		DedupeR:       cfg.WindowR.dualBound(),
		DedupeS:       cfg.WindowS.dualBound(),
		// The LLHJ node forwards arrival batches unmodified and keeps
		// tuples by value, so flushed backings can be pooled; the
		// original handshake join re-batches window overflow.
		Recycle: cfg.Algorithm == LLHJ,
	}
}

// sortedOutput wraps the user callback with the downstream sorting
// operator of §6.2: results are buffered and released in timestamp
// order on punctuations, and punctuations are forwarded after their
// release so downstream consumers keep the ordering guarantee. It
// returns the wrapped callback and the sorter (for Flush and stats).
func sortedOutput[L, RT any](final func(Item[L, RT])) (func(Item[L, RT]), *order.Sorter[L, RT]) {
	sorter := order.NewSorter(func(r Result[L, RT]) {
		final(Item[L, RT]{Result: r})
	})
	return func(it Item[L, RT]) {
		sorter.Push(it)
		if it.Punct {
			final(it)
		}
	}, sorter
}

// newEngine builds and starts a single-pipeline Engine from a
// validated configuration.
func newEngine[L, RT any](cfg Config[L, RT]) (*Engine[L, RT], error) {
	e := &Engine[L, RT]{
		clk:     clock.NewWall(),
		rLastTS: minTS,
		sLastTS: minTS,
		rWin:    windowTracker{spec: cfg.WindowR},
		sWin:    windowTracker{spec: cfg.WindowS},
	}
	e.rLastAt.Store(minTS)
	e.sLastAt.Store(minTS)
	if cfg.Obs.enabled() {
		e.ring = obs.NewRing(cfg.Obs.ringSize())
		e.outHist = &metrics.AtomicHistogram{}
	}
	if err := e.dur.init(&cfg); err != nil {
		return nil, err
	}
	e.dur.ring = e.ring
	var trace func(kind string, a, b int64)
	if e.ring != nil {
		trace = func(kind string, a, b int64) { e.ring.Emit(kind, 0, -1, a, b) }
	}
	if cfg.Index == IndexAuto {
		pcfg := probe.Config{
			Groups: 64,
			Class:  probeClass(cfg.Class),
			Band:   cfg.Band,
			Lanes:  1,
			Nodes:  cfg.Workers,
		}
		if e.ring != nil {
			ring := e.ring
			pcfg.OnSwitch = func(g uint32, from, to probe.Strategy) {
				ring.Emit("strategy_switch", -1, int64(g), int64(from), int64(to))
			}
		}
		e.probeTab = probe.NewTable(pcfg)
	}
	build, err := builderFor(&cfg, trace, e.probeTab)
	if err != nil {
		return nil, err
	}
	e.expireR = func(_ int, _ uint32, seq uint64, due int64, counted, settled bool) {
		if counted {
			e.rCntSc = append(e.rCntSc, shard.ExpiryEntry{Seq: seq, Due: due, Settled: settled})
		} else {
			e.rDurSc = append(e.rDurSc, shard.ExpiryEntry{Seq: seq, Due: due, Settled: settled})
		}
	}
	e.expireS = func(_ int, _ uint32, seq uint64, due int64, counted, settled bool) {
		if counted {
			e.sCntSc = append(e.sCntSc, shard.ExpiryEntry{Seq: seq, Due: due, Settled: settled})
		} else {
			e.sDurSc = append(e.sDurSc, shard.ExpiryEntry{Seq: seq, Due: due, Settled: settled})
		}
	}
	out := cfg.OnOutput
	if cfg.Ordered {
		out, e.sorter = sortedOutput(cfg.OnOutput)
		if cfg.Durability.enabled() || cfg.Durability.DecodeR != nil {
			// A checkpoint (or restore) reads the sorter mid-run from
			// the driver goroutine while the collector feeds it, so the
			// two must serialize.
			inner := out
			out = func(it Item[L, RT]) {
				e.sortMu.Lock()
				defer e.sortMu.Unlock()
				inner(it)
			}
		}
	}
	if e.outHist != nil {
		out = wrapLatency(e.outHist, e.clk.Now, out)
	}
	e.lane = shard.NewLane(laneConfig(&cfg, e.clk, cfg.Punctuate), build,
		func(it collect.Item[L, RT]) { out(it) })
	if cfg.MaxLiveTuples > 0 {
		e.guard = newOverloadGuard(cfg.MaxLiveTuples, func() int64 {
			// Batch buffer before window gauges: a tuple flushed
			// between the two reads is seen by the gauge walk, never
			// dropped from both. Tuples in flight between flush and
			// node processing are the guard's documented slack.
			buffered := e.lane.Buffered()
			agg := e.lane.PipelineStats()
			return buffered + int64(agg.LiveWR) + int64(agg.LiveWS)
		})
	}
	if cfg.Obs.Addr != "" {
		srv, err := obs.Serve(cfg.Obs.Addr, func() obs.Dump {
			return gatherDump(e.StatsSnapshot(), e.outHist, e.ring)
		}, e.ring)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("handshakejoin: observability endpoint: %w", err)
		}
		e.obsSrv = srv
	}
	return e, nil
}

// windowCapacity converts a window spec to a tuple capacity for the
// original handshake join's segmented pipeline.
func windowCapacity(w Window, rate float64) int {
	cap := w.Count
	if w.Duration > 0 {
		byRate := int(float64(w.Duration) / 1e9 * rate)
		if cap == 0 || byRate < cap {
			cap = byRate
		}
	}
	if cap < 1 {
		cap = 1
	}
	return cap
}

// PushR submits an R tuple with the given timestamp (nanoseconds, any
// monotonic origin). Timestamps must be non-decreasing per stream. It
// is a batch-of-one PushRBatch.
func (e *Engine[L, RT]) PushR(payload L, ts int64) error {
	e.rOne[0] = Stamped[L]{Payload: payload, TS: ts}
	return e.PushRBatch(e.rOne[:])
}

// PushS submits an S tuple with the given timestamp.
func (e *Engine[L, RT]) PushS(payload RT, ts int64) error {
	e.sOne[0] = Stamped[RT]{Payload: payload, TS: ts}
	return e.PushSBatch(e.sOne[:])
}

// PushRBatch submits a batch of R tuples in non-decreasing timestamp
// order under one driver admission: the whole batch is validated
// first (a regression anywhere rejects it before any state changes),
// window accounting runs in one pass, the expiry schedule enters the
// lane queue in one bulk push, and the tuples append to the lane
// buffer in one bulk hand-off flushing at every Batch boundary — the
// exact per-tuple schedule, amortized. Results (and the Ordered-mode
// sequence) are identical to pushing the elements one by one; all
// tuples of a batch share one admission wall-clock stamp for latency
// accounting.
func (e *Engine[L, RT]) PushRBatch(batch []Stamped[L]) error {
	if e.closed {
		return fmt.Errorf("handshakejoin: engine closed")
	}
	if len(batch) == 0 {
		return nil
	}
	last := e.rLastTS
	for i := range batch {
		if batch[i].TS < last {
			return fmt.Errorf("handshakejoin: R timestamp regressed: %d after %d", batch[i].TS, last)
		}
		last = batch[i].TS
	}
	// Admission control runs before the WAL append: a rejected batch
	// was never logged, so replay cannot resurrect it. Replay itself
	// bypasses the check — its records were already acknowledged.
	if err := e.guard.admit(len(batch), e.dur.replaying.Load()); err != nil {
		return err
	}
	if e.dur.active() {
		// Log before any state changes: a record is durable (or at
		// least written) before its effects exist, so replay never
		// needs to undo anything.
		if err := e.dur.appendR(batch); err != nil {
			return err
		}
	}
	now := e.clk.Now()
	seq0 := e.rSeq.Load()
	e.tss = e.tss[:0]
	e.rTuples = e.rTuples[:0]
	for i := range batch {
		e.tss = append(e.tss, batch[i].TS)
		e.rTuples = append(e.rTuples, stream.Tuple[L]{Seq: seq0 + uint64(i), TS: batch[i].TS, Wall: now, Home: stream.NoHome, Payload: batch[i].Payload})
	}
	e.rSeq.Store(seq0 + uint64(len(batch)))
	e.rLastTS = last
	e.rLastAt.Store(last)
	e.rWin.onArrivalBulk(seq0, e.tss, nil, nil, e.expireR)
	e.lane.QueueExpiryBulk(stream.R, e.rDurSc, e.rCntSc)
	e.rDurSc, e.rCntSc = e.rDurSc[:0], e.rCntSc[:0]
	e.lane.PushRBulk(e.rTuples)
	return e.dur.maybeAutoCheckpoint(e.Checkpoint)
}

// PushSBatch submits a batch of S tuples; see PushRBatch.
func (e *Engine[L, RT]) PushSBatch(batch []Stamped[RT]) error {
	if e.closed {
		return fmt.Errorf("handshakejoin: engine closed")
	}
	if len(batch) == 0 {
		return nil
	}
	last := e.sLastTS
	for i := range batch {
		if batch[i].TS < last {
			return fmt.Errorf("handshakejoin: S timestamp regressed: %d after %d", batch[i].TS, last)
		}
		last = batch[i].TS
	}
	// Admission control before the WAL append; see PushRBatch.
	if err := e.guard.admit(len(batch), e.dur.replaying.Load()); err != nil {
		return err
	}
	if e.dur.active() {
		if err := e.dur.appendS(batch); err != nil {
			return err
		}
	}
	now := e.clk.Now()
	seq0 := e.sSeq.Load()
	e.tss = e.tss[:0]
	e.sTuples = e.sTuples[:0]
	for i := range batch {
		e.tss = append(e.tss, batch[i].TS)
		e.sTuples = append(e.sTuples, stream.Tuple[RT]{Seq: seq0 + uint64(i), TS: batch[i].TS, Wall: now, Home: stream.NoHome, Payload: batch[i].Payload})
	}
	e.sSeq.Store(seq0 + uint64(len(batch)))
	e.sLastTS = last
	e.sLastAt.Store(last)
	e.sWin.onArrivalBulk(seq0, e.tss, nil, nil, e.expireS)
	e.lane.QueueExpiryBulk(stream.S, e.sDurSc, e.sCntSc)
	e.sDurSc, e.sCntSc = e.sDurSc[:0], e.sCntSc[:0]
	e.lane.PushSBulk(e.sTuples)
	return e.dur.maybeAutoCheckpoint(e.Checkpoint)
}

// Tick advances stream time to ts without submitting a tuple: partial
// batches are flushed, the pipeline is allowed to settle, and expiries
// due by ts are injected. Use it on idle streams so windows keep
// sliding. Because Tick waits for in-flight messages to drain before
// expiring, its window boundaries are exact even when stream time
// advances much faster than real time (batch flushes on the hot path
// do not wait; their boundaries are exact in the paper's operating
// regime, windows far larger than the in-flight volume).
func (e *Engine[L, RT]) Tick(ts int64) {
	if e.closed {
		return
	}
	if e.dur.active() {
		// A tick moves windows, so replay must see it at the same
		// stream position. Tick cannot report errors; a failed append
		// surfaces on the next push or checkpoint.
		e.dur.appendTick(ts) //nolint:errcheck
	}
	e.lane.Tick(ts)
}

// Close flushes buffered batches, waits for the pipeline to quiesce,
// stops all goroutines and releases remaining ordered output. The
// engine cannot be reused afterwards.
func (e *Engine[L, RT]) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	e.lane.Close()
	if e.sorter != nil {
		e.sorter.Flush()
	}
	if e.obsSrv != nil {
		e.obsSrv.Close()
	}
	e.dur.closeLog()
	return nil
}

// Checkpoint implements Joiner.Checkpoint: it captures a consistent
// cut — lane window state, expiry queues, partial batch buffers, the
// window-accounting trackers, and the ordered-output buffer — writes it
// under <dir>/checkpoint, and truncates WAL segments the cut covers.
// Like every driver call on the single-pipeline engine it must run on
// the driver goroutine; the pipeline quiesces for the capture but the
// file writes happen after the cut, off the ingress path.
func (e *Engine[L, RT]) Checkpoint(dir string) error {
	if e.dur.log == nil {
		return fmt.Errorf("handshakejoin: Checkpoint requires Config.Durability.WALDir")
	}
	if e.closed {
		return fmt.Errorf("handshakejoin: engine closed")
	}
	root := dir
	if root == "" {
		root = e.dur.cfg.WALDir
	}
	e.dur.ckptMu.Lock()
	defer e.dur.ckptMu.Unlock()
	start := e.clk.Now()
	e.ring.Emit("checkpoint_begin", -1, -1, int64(e.dur.log.Next()), 0)
	ls, err := e.lane.SnapshotState()
	if err != nil {
		return err
	}
	// Drain the result queues through the normal output path so every
	// result produced before the cut is either already delivered or
	// sitting in the sorter about to be snapshotted.
	e.lane.CollectOnce()
	snap := engineSnap[L, RT]{
		rSeq:      e.rSeq.Load(),
		sSeq:      e.sSeq.Load(),
		rLastTS:   e.rLastTS,
		sLastTS:   e.sLastTS,
		rWin:      e.rWin.entries(),
		sWin:      e.sWin.entries(),
		lastPunct: -1,
		lanes:     []*shard.LaneState[L, RT]{ls},
	}
	e.sortMu.Lock()
	if e.sorter != nil {
		snap.ordered = true
		snap.sorter = e.sorter.Snapshot()
		snap.lastPunct = snap.sorter.LastPunct
	}
	walFrom := e.dur.log.Next()
	e.sortMu.Unlock()
	// A checkpoint against a failed or shed WAL re-arms logging under
	// root: the cut just captured covers everything admitted so far,
	// and — this being the driver goroutine — no push can slip in
	// between the re-arm and the manifest commit, so every later
	// record lands in the new log at or after walFrom.
	rearmed := false
	if e.dur.walFailed() {
		if err := e.dur.rearm(root); err != nil {
			return err
		}
		rearmed = true
		walFrom = e.dur.log.Next()
	}
	stateBytes, err := e.dur.writeCheckpoint(root, walFrom, &snap)
	if err != nil {
		if rearmed {
			// The re-armed log has no committed checkpoint beneath it;
			// logging to it would acknowledge unrecoverable records.
			e.dur.disarm(err)
		}
		return err
	}
	if root == e.dur.cfg.WALDir {
		if _, err := e.dur.log.TruncateThrough(walFrom); err != nil {
			return err
		}
	}
	durNs := e.clk.Now() - start
	e.dur.lastCkptNs.Store(durNs)
	e.dur.checkpoints.Add(1)
	e.ring.Emit("checkpoint_complete", -1, -1, durNs, int64(stateBytes))
	return nil
}

// Restore implements Joiner.Restore: it loads the checkpoint under dir
// (dir "" selects Config.Durability.WALDir) into this freshly built
// engine and replays the WAL tail through the ordinary push paths.
func (e *Engine[L, RT]) Restore(dir string) error {
	if e.closed {
		return fmt.Errorf("handshakejoin: engine closed")
	}
	if e.dur.cfg.DecodeR == nil || e.dur.cfg.DecodeS == nil {
		return fmt.Errorf("handshakejoin: Restore requires the Durability payload codecs")
	}
	if dir == "" {
		dir = e.dur.cfg.WALDir
	}
	if dir == "" {
		return fmt.Errorf("handshakejoin: Restore requires a directory (or Config.Durability.WALDir)")
	}
	if e.rSeq.Load() != 0 || e.sSeq.Load() != 0 || e.rLastTS != minTS || e.sLastTS != minTS {
		return fmt.Errorf("handshakejoin: Restore requires a fresh engine")
	}
	man, snap, err := e.dur.readCheckpoint(dir)
	if err != nil {
		return err
	}
	e.rSeq.Store(snap.rSeq)
	e.sSeq.Store(snap.sSeq)
	e.rLastTS, e.sLastTS = snap.rLastTS, snap.sLastTS
	e.rLastAt.Store(snap.rLastTS)
	e.sLastAt.Store(snap.sLastTS)
	e.rWin.restore(snap.rWin)
	e.sWin.restore(snap.sWin)
	if e.sorter != nil && snap.ordered {
		e.sortMu.Lock()
		e.sorter.Restore(snap.sorter)
		e.sortMu.Unlock()
	}
	e.lane.RestoreState(snap.lanes[0])
	e.dur.replaying.Store(true)
	defer e.dur.replaying.Store(false)
	start := e.clk.Now()
	n, err := e.dur.replayWAL(dir, man.WALFrom, e.PushRBatch, e.PushSBatch, e.Tick)
	if err != nil {
		return fmt.Errorf("handshakejoin: wal replay after %d records: %w", n, err)
	}
	if e.guard != nil {
		// Seed the admission bound from the restored footprint: the
		// checkpoint's tuples entered the windows without passing the
		// guard's accounting. Replayed arrivals may still be in flight
		// in the pipeline, where the window gauges cannot see them, so
		// quiesce first — otherwise the sampled base undercounts by up
		// to the whole replay volume and the guard admits past the cap.
		e.lane.Quiesce()
		e.guard.resample()
	}
	e.ring.Emit("restore_replay", -1, -1, int64(n), e.clk.Now()-start)
	return nil
}

// Health implements Joiner.Health. The single-pipeline engine has no
// punctuation-floor watchdog (its one pipeline cannot stall behind
// another), so FloorStalled is always false.
func (e *Engine[L, RT]) Health() Health {
	return Health{
		WALFailed:  e.dur.walFailed(),
		Overloaded: e.guard.overloaded(),
	}
}

// Stats returns run counters. Safe to call mid-run from any goroutine:
// every counter is an atomic, so the read is race-free; cumulative
// totals lag in-flight batches at most, and are exact once the engine
// is closed.
func (e *Engine[L, RT]) Stats() Stats {
	agg := e.lane.PipelineStats()
	st := Stats{
		RIn:              e.rSeq.Load(),
		SIn:              e.sSeq.Load(),
		Results:          e.lane.Collected(),
		Punctuations:     e.lane.Punctuations(),
		Comparisons:      agg.Comparisons,
		ProbeScan:        agg.ProbeScan,
		ProbeHash:        agg.ProbeHash,
		ProbeBTree:       agg.ProbeBTree,
		PendingExpiries:  agg.PendingExpiries,
		StoreSpills:      agg.StoreSpills,
		StoreReanchors:   agg.StoreReanchors,
		StoreCompactions: agg.StoreCompactions,
		StoreParks:       agg.StoreParks,
		StoreOverflow:    agg.StoreOverflow,
		WALRetries:       e.dur.walRetries.Load(),
		WALSheds:         e.dur.sheds.Load(),
		AdmissionRejects: e.guard.rejected(),
	}
	if e.sorter != nil {
		st.MaxSortBuffer = e.sorter.MaxBuffer()
	}
	if e.probeTab != nil {
		st.StrategySwitches = e.probeTab.Switches()
	}
	return st
}

// StatsSnapshot returns a race-safe mid-run view; see
// ShardedEngine.StatsSnapshot. The single-pipeline engine reports one
// shard (index 0), and its punctuation-floor proxy is the smaller of
// the two stream high-water marks.
func (e *Engine[L, RT]) StatsSnapshot() Snapshot {
	agg := e.lane.PipelineStats()
	snap := Snapshot{
		Stats:       e.Stats(),
		FloorLagNs:  -1,
		LiveWindowR: []int64{int64(agg.LiveWR)},
		LiveWindowS: []int64{int64(agg.LiveWS)},
		ExpiryDepth: []int64{int64(e.lane.ExpiryDepth())},
	}
	newest := e.rLastAt.Load()
	if s := e.sLastAt.Load(); s > newest {
		newest = s
	}
	if newest != minTS {
		snap.FloorLagNs = newest - e.lane.HWMFloor()
	}
	if e.ring != nil {
		snap.NextEventSeq = e.ring.Next()
	}
	if log := e.dur.logHandle(); log != nil {
		snap.WALBytes = log.Bytes()
		snap.Checkpoints = e.dur.checkpoints.Load()
		snap.LastCheckpointNs = e.dur.lastCkptNs.Load()
	}
	snap.Health = e.Health()
	return snap
}

// Events drains the control-plane trace events with sequence >= since,
// oldest first; see ShardedEngine.Events. Nil when tracing is disabled.
func (e *Engine[L, RT]) Events(since uint64) []TraceEvent {
	if e.ring == nil {
		return nil
	}
	return e.ring.Drain(since)
}

// ObsAddr returns the bound address of the observability endpoint, or
// "" when the server is disabled.
func (e *Engine[L, RT]) ObsAddr() string {
	if e.obsSrv == nil {
		return ""
	}
	return e.obsSrv.Addr()
}
