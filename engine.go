package handshakejoin

import (
	"fmt"
	"sync"
	"time"

	"handshakejoin/internal/clock"
	"handshakejoin/internal/collect"
	"handshakejoin/internal/core"
	"handshakejoin/internal/hsj"
	"handshakejoin/internal/order"
	"handshakejoin/internal/pipeline"
	"handshakejoin/internal/stream"
)

// Engine is a running stream-join pipeline: Workers node goroutines, a
// collector goroutine, and a driver embodied by the PushR/PushS calls.
//
// Tuples of each stream must be pushed in non-decreasing timestamp
// order (the punctuation mechanism relies on monotonic streams). PushR,
// PushS, Tick and Close must be called from a single goroutine; the
// OnOutput callback runs on the collector goroutine.
type Engine[L, RT any] struct {
	cfg Config[L, RT]
	lv  *pipeline.Live[L, RT]

	rSeq, sSeq uint64
	rLastTS    int64
	sLastTS    int64
	rBatch     []stream.Tuple[L]
	sBatch     []stream.Tuple[RT]
	rExp, sExp expiryQueue // pending time/count expiries per side
	rWin, sWin windowTracker

	collector *collect.Collector[L, RT]
	sorter    *order.Sorter[L, RT]
	wg        sync.WaitGroup
	closed    bool
}

// expiryQueue holds (seq, due) pairs in due order.
type expiryQueue []expiryEntry

type expiryEntry struct {
	seq uint64
	due int64
}

// windowTracker turns one stream's arrivals into expiry entries
// according to the window specification.
type windowTracker struct {
	spec     Window
	inWindow []uint64
}

func (w *windowTracker) onArrival(seq uint64, ts int64, out *expiryQueue) {
	if w.spec.Duration > 0 {
		*out = append(*out, expiryEntry{seq: seq, due: ts + int64(w.spec.Duration)})
	}
	if c := w.spec.Count; c > 0 {
		w.inWindow = append(w.inWindow, seq)
		for len(w.inWindow) > c {
			*out = append(*out, expiryEntry{seq: w.inWindow[0], due: ts})
			w.inWindow = w.inWindow[1:]
		}
	}
}

// popDue removes and returns the seqs of all entries due at or before t.
func (q *expiryQueue) popDue(t int64) []uint64 {
	var seqs []uint64
	for len(*q) > 0 && (*q)[0].due <= t {
		seqs = append(seqs, (*q)[0].seq)
		*q = (*q)[1:]
	}
	return seqs
}

// New builds and starts an Engine.
func New[L, RT any](cfg Config[L, RT]) (*Engine[L, RT], error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var build core.Builder[L, RT]
	switch cfg.Algorithm {
	case LLHJ:
		ccfg := &core.Config[L, RT]{
			Nodes: cfg.Workers,
			Pred:  cfg.Predicate,
			Index: core.IndexKind(cfg.Index),
			KeyR:  cfg.KeyR,
			KeyS:  cfg.KeyS,
			Band:  cfg.Band,
		}
		build = func(k int) core.NodeLogic[L, RT] { return core.NewNode(ccfg, k) }
	case HSJ:
		hcfg := &hsj.Config[L, RT]{
			Nodes: cfg.Workers,
			Pred:  cfg.Predicate,
			CapR:  windowCapacity(cfg.WindowR, cfg.ExpectedRate),
			CapS:  windowCapacity(cfg.WindowS, cfg.ExpectedRate),
		}
		build = func(k int) core.NodeLogic[L, RT] { return hsj.NewNode(hcfg, k) }
	default:
		return nil, fmt.Errorf("handshakejoin: unknown algorithm %v", cfg.Algorithm)
	}

	e := &Engine[L, RT]{
		cfg:     cfg,
		rLastTS: -1 << 62,
		sLastTS: -1 << 62,
		rWin:    windowTracker{spec: cfg.WindowR},
		sWin:    windowTracker{spec: cfg.WindowS},
	}
	e.lv = pipeline.NewLive(cfg.Workers, build, clock.NewWall(), pipeline.LiveConfig{DepthCap: cfg.MaxInFlight})

	out := cfg.OnOutput
	if cfg.Ordered {
		final := cfg.OnOutput
		e.sorter = order.NewSorter(func(r Result[L, RT]) {
			final(Item[L, RT]{Result: r})
		})
		out = func(it Item[L, RT]) {
			e.sorter.Push(it)
			if it.Punct {
				// Forward the punctuation after its release so
				// downstream consumers keep the ordering guarantee.
				final(it)
			}
		}
	}
	e.collector = collect.New(e.lv.ResultQueues(), func() (int64, int64) {
		return e.lv.HWMR(), e.lv.HWMS()
	}, out, collect.Config{Punctuate: cfg.Punctuate})

	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.collector.Run(func() { time.Sleep(cfg.CollectPeriod) })
	}()
	return e, nil
}

// windowCapacity converts a window spec to a tuple capacity for the
// original handshake join's segmented pipeline.
func windowCapacity(w Window, rate float64) int {
	cap := w.Count
	if w.Duration > 0 {
		byRate := int(float64(w.Duration) / 1e9 * rate)
		if cap == 0 || byRate < cap {
			cap = byRate
		}
	}
	if cap < 1 {
		cap = 1
	}
	return cap
}

// PushR submits an R tuple with the given timestamp (nanoseconds, any
// monotonic origin). Timestamps must be non-decreasing per stream.
func (e *Engine[L, RT]) PushR(payload L, ts int64) error {
	if e.closed {
		return fmt.Errorf("handshakejoin: engine closed")
	}
	if ts < e.rLastTS {
		return fmt.Errorf("handshakejoin: R timestamp regressed: %d after %d", ts, e.rLastTS)
	}
	e.rLastTS = ts
	t := stream.Tuple[L]{Seq: e.rSeq, TS: ts, Wall: clockNow(), Home: stream.NoHome, Payload: payload}
	e.rSeq++
	e.rWin.onArrival(t.Seq, ts, &e.rExp)
	e.rBatch = append(e.rBatch, t)
	if len(e.rBatch) >= e.cfg.Batch {
		e.flushR()
	}
	return nil
}

// PushS submits an S tuple with the given timestamp.
func (e *Engine[L, RT]) PushS(payload RT, ts int64) error {
	if e.closed {
		return fmt.Errorf("handshakejoin: engine closed")
	}
	if ts < e.sLastTS {
		return fmt.Errorf("handshakejoin: S timestamp regressed: %d after %d", ts, e.sLastTS)
	}
	e.sLastTS = ts
	t := stream.Tuple[RT]{Seq: e.sSeq, TS: ts, Wall: clockNow(), Home: stream.NoHome, Payload: payload}
	e.sSeq++
	e.sWin.onArrival(t.Seq, ts, &e.sExp)
	e.sBatch = append(e.sBatch, t)
	if len(e.sBatch) >= e.cfg.Batch {
		e.flushS()
	}
	return nil
}

var engineEpoch = time.Now()

func clockNow() int64 { return int64(time.Since(engineEpoch)) }

// flushR injects pending S expiries (left end, so that R tuples behind
// them no longer join the expired S tuples) followed by the buffered R
// batch.
func (e *Engine[L, RT]) flushR() {
	if len(e.rBatch) == 0 {
		return
	}
	due := e.rBatch[len(e.rBatch)-1].TS
	if seqs := e.sExp.popDue(due); len(seqs) > 0 {
		e.lv.Inject(pipeline.LeftEnd, core.Msg[L, RT]{Kind: core.KindExpiry, Side: stream.S, Seqs: seqs})
	}
	e.lv.Inject(pipeline.LeftEnd, core.Msg[L, RT]{Kind: core.KindArrival, Side: stream.R, R: e.rBatch})
	e.rBatch = nil
}

// flushS injects pending R expiries (right end) followed by the
// buffered S batch.
func (e *Engine[L, RT]) flushS() {
	if len(e.sBatch) == 0 {
		return
	}
	due := e.sBatch[len(e.sBatch)-1].TS
	if seqs := e.rExp.popDue(due); len(seqs) > 0 {
		e.lv.Inject(pipeline.RightEnd, core.Msg[L, RT]{Kind: core.KindExpiry, Side: stream.R, Seqs: seqs})
	}
	e.lv.Inject(pipeline.RightEnd, core.Msg[L, RT]{Kind: core.KindArrival, Side: stream.S, S: e.sBatch})
	e.sBatch = nil
}

// Tick advances stream time to ts without submitting a tuple: partial
// batches are flushed, the pipeline is allowed to settle, and expiries
// due by ts are injected. Use it on idle streams so windows keep
// sliding. Because Tick waits for in-flight messages to drain before
// expiring, its window boundaries are exact even when stream time
// advances much faster than real time (batch flushes on the hot path
// do not wait; their boundaries are exact in the paper's operating
// regime, windows far larger than the in-flight volume).
func (e *Engine[L, RT]) Tick(ts int64) {
	if e.closed {
		return
	}
	e.flushR()
	e.flushS()
	e.lv.Quiesce()
	if seqs := e.sExp.popDue(ts); len(seqs) > 0 {
		e.lv.Inject(pipeline.LeftEnd, core.Msg[L, RT]{Kind: core.KindExpiry, Side: stream.S, Seqs: seqs})
	}
	if seqs := e.rExp.popDue(ts); len(seqs) > 0 {
		e.lv.Inject(pipeline.RightEnd, core.Msg[L, RT]{Kind: core.KindExpiry, Side: stream.R, Seqs: seqs})
	}
}

// Close flushes buffered batches, waits for the pipeline to quiesce,
// stops all goroutines and releases remaining ordered output. The
// engine cannot be reused afterwards.
func (e *Engine[L, RT]) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	e.flushR()
	e.flushS()
	e.lv.Quiesce()
	e.lv.Stop()
	e.wg.Wait() // collector drains the closed queues, then exits
	if e.sorter != nil {
		e.sorter.Flush()
	}
	return nil
}

// Stats returns run counters; call after Close for exact values.
func (e *Engine[L, RT]) Stats() Stats {
	agg := e.lv.Stats()
	st := Stats{
		RIn:             e.rSeq,
		SIn:             e.sSeq,
		Results:         e.collector.Collected(),
		Punctuations:    e.collector.Punctuations(),
		Comparisons:     agg.Comparisons,
		PendingExpiries: agg.PendingExpiries,
	}
	if e.sorter != nil {
		st.MaxSortBuffer = e.sorter.MaxBuffer()
	}
	return st
}
