// Package handshakejoin implements low-latency handshake join (LLHJ),
// the sliding-window stream-join operator of Roy, Teubner and Gemulla,
// "Low-Latency Handshake Join", PVLDB 7(9), 2014 — together with the
// original handshake join it improves upon, the CellJoin and Kang
// baselines it is compared against, and the punctuation machinery that
// turns its output into a deterministically ordered stream.
//
// # Model
//
// A stream join continuously matches tuples from two unbounded streams
// R and S whose "current" contents are defined by sliding windows
// (time-based, tuple-count-based, or both). Handshake join evaluates
// the join by letting the two streams flow past each other through a
// pipeline of processing cores — all communication is between
// neighbouring cores, which is what makes the operator scale on NUMA
// hardware. Low-latency handshake join keeps that communication
// pattern but expedites tuples through the pipeline instead of letting
// them queue, cutting result latency from the scale of the window size
// (minutes) to the scale of the driver's batching delay (milliseconds),
// and its high-water-mark punctuations allow exact output ordering with
// a buffer of only thousands of tuples.
//
// # Usage
//
// Construct an Engine with two payload types, a predicate and window
// specifications, then push tuples in timestamp order:
//
//	eng, err := handshakejoin.New(handshakejoin.Config[Trade, Quote]{
//		Workers:   8,
//		Predicate: func(t Trade, q Quote) bool { return t.Sym == q.Sym },
//		WindowR:   handshakejoin.Window{Duration: time.Minute},
//		WindowS:   handshakejoin.Window{Duration: time.Minute},
//		OnOutput:  func(it handshakejoin.Item[Trade, Quote]) { ... },
//	})
//	...
//	eng.PushR(trade, ts)
//	eng.PushS(quote, ts)
//	eng.Close()
//
// The engine runs one goroutine per worker plus a collector; results
// and (optionally) punctuations arrive on the OnOutput callback.
// Everything under internal/ — the protocol state machines, the
// discrete-event simulator used by the experiment harness, and the
// baselines — is exercised through cmd/llhjbench and the test suite.
//
// # Sharding
//
// The paper scales one pipeline by adding cores; this repository also
// scales across pipelines. Setting Config.Shards > 1 (LLHJ only)
// hash-partitions both streams by join key (Config.KeyR/KeyS) over
// that many independent pipelines of Config.Workers nodes each — New
// then returns a ShardedEngine instead of an Engine, behind the same
// Joiner interface.
//
// Sharding applies when the predicate implies key equality — a plain
// equi-join, or any extra condition nested under it (same symbol and
// price within a band, say). Tuples of equal keys always land in the
// same shard, so the sharded result multiset is exactly the
// single-pipeline one; tuples of different keys are never compared,
// which is where the throughput multiplication comes from. Windows
// stay global: a Count window bounds in-window tuples across all
// shards, and expiries are routed to the shard owning each tuple.
//
// Ordering survives sharding. Each shard's collector punctuates from
// its own pipeline's high-water marks; a merge stage folds the
// per-shard punctuation streams by taking the minimum promise across
// shards (internal/shard.Merge over internal/order.PunctFloor), and
// the downstream sorter releases results in exact global timestamp
// order — the same deterministic sequence for every shard count. A
// shard that receives no traffic holds the merged punctuation back;
// Close releases everything still buffered, in order.
//
// The sharded driver, unlike the single-pipeline Engine, accepts
// PushR/PushS from concurrent goroutines: each side is serialized
// internally, then fans out to the owning shard with only a key hash
// on the hot path.
//
// Window boundaries remain batch-granular, and the granularity grows
// with the fan-out: each shard flushes after collecting Batch of its
// own tuples, so boundaries blur by up to Shards*Batch tuples of the
// global stream. Keep windows much larger than Shards*Batch (and than
// Shards*Batch*MaxInFlight, which bounds the in-flight volume expiries
// must never race) — the same windows-dominate-batching regime the
// paper's single pipeline assumes.
package handshakejoin
