// Package handshakejoin implements low-latency handshake join (LLHJ),
// the sliding-window stream-join operator of Roy, Teubner and Gemulla,
// "Low-Latency Handshake Join", PVLDB 7(9), 2014 — together with the
// original handshake join it improves upon, the CellJoin and Kang
// baselines it is compared against, and the punctuation machinery that
// turns its output into a deterministically ordered stream.
//
// # Model
//
// A stream join continuously matches tuples from two unbounded streams
// R and S whose "current" contents are defined by sliding windows
// (time-based, tuple-count-based, or both). Handshake join evaluates
// the join by letting the two streams flow past each other through a
// pipeline of processing cores — all communication is between
// neighbouring cores, which is what makes the operator scale on NUMA
// hardware. Low-latency handshake join keeps that communication
// pattern but expedites tuples through the pipeline instead of letting
// them queue, cutting result latency from the scale of the window size
// (minutes) to the scale of the driver's batching delay (milliseconds),
// and its high-water-mark punctuations allow exact output ordering with
// a buffer of only thousands of tuples.
//
// # Usage
//
// Construct an Engine with two payload types, a predicate and window
// specifications, then push tuples in timestamp order:
//
//	eng, err := handshakejoin.New(handshakejoin.Config[Trade, Quote]{
//		Workers:   8,
//		Predicate: func(t Trade, q Quote) bool { return t.Sym == q.Sym },
//		WindowR:   handshakejoin.Window{Duration: time.Minute},
//		WindowS:   handshakejoin.Window{Duration: time.Minute},
//		OnOutput:  func(it handshakejoin.Item[Trade, Quote]) { ... },
//	})
//	...
//	eng.PushR(trade, ts)
//	eng.PushS(quote, ts)
//	eng.Close()
//
// When tuples arrive in batches upstream, PushRBatch/PushSBatch admit
// a whole batch for the cost of roughly one push (see "Batched
// ingress" below).
//
// The engine runs one goroutine per worker plus a collector; results
// and (optionally) punctuations arrive on the OnOutput callback.
// Everything under internal/ — the protocol state machines, the
// discrete-event simulator used by the experiment harness, and the
// baselines — is exercised through cmd/llhjbench and the test suite.
//
// # Sharding
//
// The paper scales one pipeline by adding cores; this repository also
// scales across pipelines. Setting Config.Shards > 1 (LLHJ only)
// hash-partitions both streams by join key (Config.KeyR/KeyS) over
// that many independent pipelines of Config.Workers nodes each — New
// then returns a ShardedEngine instead of an Engine, behind the same
// Joiner interface.
//
// Sharding applies when the predicate implies key equality — a plain
// equi-join, or any extra condition nested under it (same symbol and
// price within a band, say). Tuples of equal keys always land in the
// same shard, so the sharded result multiset is exactly the
// single-pipeline one; tuples of different keys are never compared,
// which is where the throughput multiplication comes from. Windows
// stay global: a Count window bounds in-window tuples across all
// shards, and expiries are routed to the shard owning each tuple.
//
// Ordering survives sharding. Each shard's collector punctuates from
// its own pipeline's high-water marks; a merge stage folds the
// per-shard punctuation streams by taking the minimum promise across
// shards (internal/shard.Merge over internal/order.PunctFloor), and
// the downstream sorter releases results in exact global timestamp
// order — the same deterministic sequence for every shard count. A
// shard that receives no traffic holds the merged punctuation back;
// Close releases everything still buffered, in order.
//
// The sharded driver, unlike the single-pipeline Engine, accepts
// PushR/PushS from concurrent goroutines: each side takes a short
// serial section (sequence numbers, timestamp checks, window
// accounting, routing), then hands the tuple to the owning shard
// through a per-shard ingress gate, so a push blocked on one saturated
// shard's back-pressure does not stall pushers bound for other shards.
//
// # Batched ingress
//
// Every push pays an admission tax — the serial section, a routing
// lookup, expiry scheduling, a gate ticket, a lane-buffer append —
// and when the upstream already delivers tuples in batches (a Kafka
// poll, a WAL segment, a network read), paying it per tuple is waste.
// PushRBatch/PushSBatch (on both engines, via the Joiner interface)
// admit a whole caller batch — one side's tuples in non-decreasing
// timestamp order — under a single admission: one serial section, one
// routing pass that locks each touched accounting stripe once, one
// window-accounting pass scheduling the batch's expiries per lane in
// bulk, and one gate ticket plus one bulk lane hand-off per
// destination shard. The lane replays the exact per-tuple flush
// schedule (flushes are triggered by buffer length alone), and while
// an incremental handoff is open, the batch's probe-only double-reads
// travel to the source shard as one slice message per batch instead
// of one message per arrival, split only where a due expiry would
// have been injected between two per-tuple probes. Flushed batch,
// probe-slice and expiry-message backings are pooled per lane and
// recycled once the last pipeline node finishes with them, so the
// steady-state push path allocates nothing.
//
// Batching is a pure amortization: PushR is semantically a batch of
// one, and a batch call is semantically the per-tuple call sequence —
// the same
// result multiset, the same exact Ordered-mode sequence, the same
// ingress counters; a timestamp regression anywhere in a batch
// rejects the whole batch before any state changes. The only
// semantic footprint is the batching blur all driver batching has:
// see the window-granularity note at the end of this page. Batches
// of different sides may be pushed concurrently, like per-tuple
// pushes; all tuples of a batch share one admission wall-clock stamp
// for latency accounting.
//
// # Storage layout: the ring-slot window store
//
// Each pipeline node stores its share of a window in internal/store's
// Window: a circular arrival-ordered entry array (scan order is
// arrival order, which probes and expiries rely on) plus a directory
// that resolves a sequence number to its slot. The directory is not a
// hash map. Node k of an n-node pipeline only ever stores tuples whose
// home is k — seq % n == k — so the seqs a window holds form a sparse
// subsequence of one arithmetic progression with stride n. The
// directory exploits that: a circular int32 ring indexed by
// (seq − base)/stride, where base advances past expired entries and
// slot+1 is stored so that zero means "no entry here". Lookup, insert
// and delete are one array access with no hashing, no map churn and no
// per-entry heap boxes; gaps (seqs homed elsewhere, or holes left by
// extracted migration slices) simply stay zero.
//
// The layout leans on a seq-contiguity invariant: the live seqs of one
// window stay within a bounded span of the progression. Normal
// operation preserves it — arrivals append near the top, expiries
// retire the bottom, and base slides forward over the zeros they
// leave. Two things break it. A migration's store-only injection can
// land below base (an older group's state arriving on a lane whose own
// entries are newer); the ring re-anchors backwards when the distance
// is small and otherwise parks the entry in a spill map. And a lane
// can go idle while the global seq space races ahead (count-window
// expiries only fire on arrivals), so the next arrival may be an
// unbounded distance above base; the ring is capped (1 Mi slots), and
// a jump beyond the cap spills the stranded old entries to the map and
// re-anchors at the new seq. The spill tier is cold by construction —
// it is consulted only when non-empty — so the paper's steady-state
// path never pays for it.
//
// Equi-join probes use an intrusive hash index over the same entries:
// an open-addressing key table holds each key's chain head and tail,
// and the chain links live in a slice parallel to the entry array, so
// probing walks indices, insertion is a tail append touching one
// bucket, and interior deletions (expired or extracted tuples) relink
// neighbours without touching the table at all. An ordered B-tree
// index over the same entries serves range probes (RangeProbe) for
// band and inequality predicates; like the hash index it tracks
// interior deletions and compactions, and a held probe cursor stays
// coherent across both.
//
// # Probe strategies
//
// The paper's inner loop — every arrival probing every node's window
// fragment — admits three access paths with very different cost
// shapes: a full scan is O(window/nodes) but has no maintenance cost
// and wins when nearly everything matches; a hash probe is O(chain)
// and wins for selective equi-joins; a B-tree range probe is
// O(log w + range) and is the only sublinear option for band and
// inequality predicates. No single choice is right across a stream
// whose selectivity drifts, so the choice is made at runtime,
// per key-group.
//
// Config.Index picks the regime. The static kinds (ScanIndex,
// HashIndex, BTreeIndex) are explicit overrides: every node uses that
// one path for the engine's lifetime, the strategy machinery is not
// even constructed, and dispatch costs nothing — the right call when
// the workload is known. IndexAuto replaces the static choice with a
// shared strategy table (internal/probe): each probe reads the
// current strategy for the arrival's key-group (one atomic load from
// a read-mostly array) and takes that path.
//
// Config.Class bounds what IndexAuto may do. It declares what the
// predicate implies about the two keys — PredEqui (matches share a
// key), PredBand (keys within Config.Band), PredLE/PredGE (key
// inequality), PredOpaque (no promise) — and with it the admissible
// strategies: an equi group may scan, hash-probe, or range-probe the
// point range [k,k]; a band group may scan or range-probe
// [k−Band, k+Band]; inequality groups may scan or range-probe the
// half-line; an opaque predicate can only scan (IndexAuto rejects
// PredOpaque at validation). The class must under-promise, never
// over-promise: PredEqui with an extra value condition nested under
// the key equality is fine, because the declared relation only
// narrows which window entries are inspected, and the full predicate
// still runs on each.
//
// Selection is a sampled crossover model in scan-entry cost units.
// Nodes feed one probe in four into the table's per-group sample
// (live window size, entries inspected, matches), and every 128
// sampled probes a group runs a decision epoch: price each admissible
// path — scan at avgLive+1, hash at est×1.25+12, B-tree at
// est + 2·log2(avgLive+2) + const — where est is the measured
// per-probe footprint, floored by observed matches while scanning and
// capped by the router-fed group cardinality's per-node share. The
// constants charge each indexed path its amortized maintenance, so a
// mostly-idle index cannot look free. A challenger must beat the
// incumbent by a 1.2× margin for two consecutive epochs before the
// group flips — hysteresis that keeps near-ties from oscillating.
// Stats.StrategySwitches counts applied flips; Stats.ProbeScan/
// ProbeHash/ProbeBTree report the realized dispatch mix.
//
// Indexes follow the strategies lazily. A window builds its hash
// table or B-tree the first time a probe needs it (backfilled from
// the live entries in one pass) and tears it down after sitting
// unused for thousands of arrivals, so a pipeline whose groups all
// settle on scanning pays no maintenance at all, and a flip back
// simply rebuilds. Correctness never depends on which path runs: all
// three inspect supersets of the matching entries and apply the full
// predicate, so the result multiset — and the Ordered-mode sequence —
// is invariant under any interleaving of strategy flips, which the
// oracle suites pin with forced mid-stream flips across shard counts,
// open handoffs and slice migrations.
//
// # Adaptive shard runtime
//
// Routing goes through a key-group indirection: a key hashes onto one
// of many key-groups (G ≫ shard count) and a table maps groups to
// shards. Config.Adapt turns the static table into a live control
// loop (internal/adapt): a sampler collects per-group load and
// per-shard probes every period, a planner moves groups off
// overloaded shards, and the router cuts each move over only when the
// group provably has no joinable window state left on its old shard —
// every count-bound tuple has left its window and stream time has
// passed every recorded expiry deadline, so no tuple routed anywhere
// afterwards could have joined state stranded on the old shard. Under
// that protocol rebalancing is invisible in the output: the result
// multiset and the Ordered-mode sequence are exactly those of a fixed
// table.
//
// The same protocol implies a planning constraint: a continuously hot
// group's window never empties, so the drain path alone can never
// move it. The planner therefore first relieves an overloaded shard
// by evacuating its colder co-resident groups; when a planned move
// stalls for Adapt.Migration.AfterCycles control cycles while the
// group's load EWMA stays high — proof the group will never drain —
// and Adapt.Migration is enabled, the move escalates to a live state
// migration (see below). A shard whose load is one giant key still
// cannot be split below key granularity by any partition-level
// scheme, but migration lets that key's group claim a shard of its
// own and lets every hot co-resident move out of its way.
//
// # Live state migration
//
// State migration moves a key-group's live window state between
// pipelines mid-stream, extending the paper's per-node protocol
// (§4, Table 1) with two arrival flavors (internal/core.ArrivalMode):
// a store-only arrival enters the window at its home node and
// participates in every future probe but performs no probe of its own
// — its past joins were already emitted on the pipeline it came from
// — and a probe-only arrival probes without ever entering a window.
//
// The freezing form (ShardedEngine.Migrate, or the control loop's
// escalation with Adapt.Migration.Freezing) moves a group in one cut:
// both ingress sides freeze, the old shard's pipeline flushes and
// quiesces, the group's window tuples and their pending expiry-queue
// entries are extracted under that consistent cut, the routing table
// swaps, the tuples replay into the new shard's pipeline as
// store-only arrivals, the expiries re-bind there (and the global
// count-window accounting is re-attributed), and the destination
// quiesces before unfreezing.
//
// Safety: at the cut, every pair among the group's extracted tuples
// has already been emitted (the old pipeline was quiescent), and no
// tuple of the group is in flight anywhere. Store-only re-insertion
// emits nothing, so nothing is emitted twice; every future arrival of
// the group routes to the new shard and traverses its whole pipeline,
// so it probes the migrated copies exactly once — nothing is missed.
// Expiries move with their tuples and keep firing before the group's
// next arrival with an equal-or-later timestamp, so window semantics
// are unchanged. The punctuation floor cannot regress: store-only
// arrivals do not advance the stream high-water marks, and any future
// result involving a migrated tuple pairs it with a future arrival
// whose timestamp bounds the result's from below — hence the Ordered
// sequence is exactly that of a fixed table. A per-cycle tuple budget
// (Adapt.Migration.MaxTuplesPerCycle) refuses over-budget moves
// before any state is touched, bounding the ingress stall;
// Stats.StateMigrations and Stats.MigratedTuples report the traffic.
//
// # Incremental slice migration
//
// The freezing cut stalls exactly the shard that is already the
// bottleneck, for as long as the whole group takes to move — the
// worse the skew, the longer the freeze. Incremental migration (the
// default escalation path, and ShardedEngine.MigrateIncremental /
// BeginMigration / AdvanceMigration) removes that coupling with a
// two-phase handoff. The commit phase swaps the group's route and
// settles the old shard once (a wait bounded by the batch size plus
// the pipeline's in-flight cap, independent of the group's windows):
// from that instant, every arrival of the group lands on the new
// shard as an ordinary full arrival, and — because the group's window
// state is still split across two lanes — the router duplicates each
// such arrival as a probe-only read to the old shard. The transfer
// phase then moves the group's window tuples oldest-first in bounded
// slices (Adapt.Migration.SliceTuples per hop): each hop retires the
// in-flight double-reads, extracts one slice with its pending expiry
// entries, settles the destination, and replays the slice there as
// store-only arrivals. When the old shard holds nothing of the group,
// the handoff record clears and the double-reads stop.
//
// The double-read dedup invariant carries the correctness argument:
// every (arrival, stored-tuple) pair of the group is examined on
// exactly one lane. A stored tuple lives on exactly one lane at any
// instant, and a slice changes lanes only between full pipeline
// settles — after every in-flight probe-only read has finished
// probing it on the source, and before any in-flight full arrival
// could meet its copy on the destination. An arrival's probe-only
// copy therefore sees precisely the slices that had not yet moved
// when it was admitted, its full copy sees precisely the slices (and
// newer arrivals) already resident at the destination, and no pair is
// seen twice or missed. Probe-only copies store nothing, acknowledge
// nothing and never advance a high-water mark, so the punctuation
// argument of the freezing form applies unchanged and the Ordered
// sequence stays exact — the oracle suites pin this with handoffs
// held open across hundreds of pushes. Stats.SliceMigrations counts
// hops; Stats.SourceFreezeStalls stays zero on this path, and
// Stats.MaxMigrationStallNs is bounded by one slice rather than one
// group.
//
// Steady-state churn is governed by two Adapt.Migration knobs: a
// noise floor (MinGapRatio) ignores donor/receiver gaps below a
// fraction of the mean shard load — under heavy skew the load sample
// jitters around the unsplittable hot groups, and without a floor
// that jitter reads as actionable skew forever — and a rate limiter
// (MaxMigrationsPerSec, burst one) caps migration starts outright.
//
// Idle-shard heartbeats run independently of rebalancing (and are on
// by default): a shard that received no tuples for a collect period
// is ticked with the engine-wide ingress floor — sound because every
// future tuple of either side carries a timestamp at or above the
// floor, and a result's timestamp is the later of its inputs — so its
// punctuation promise, and with it Ordered-mode output, keeps flowing
// when parts of the key space go quiet. Heartbeats flush partial
// batches on wall-clock time (the equivalent of a Tick), which keeps
// batch-granular window boundaries within the documented
// Shards*Batch blur but makes them wall-clock-dependent; set
// Adapt.DisableHeartbeat (or Batch 1, where boundaries are exact) if
// bit-for-bit schedule determinism matters more than idle latency.
//
// Window boundaries remain batch-granular, and the granularity grows
// with the fan-out: each shard flushes after collecting Batch of its
// own tuples, so boundaries blur by up to Shards*Batch tuples of the
// global stream — and a caller batch (PushRBatch/PushSBatch) defers
// its expiry pops to the same flush points, widening the blur to
// Shards*max(Batch, callerBatch) tuples. Keep windows much larger
// than Shards*max(Batch, callerBatch) (and than
// Shards*Batch*MaxInFlight, which bounds the in-flight volume
// expiries must never race) — the same windows-dominate-batching
// regime the paper's single pipeline assumes.
//
// # Durability
//
// Config.Durability turns either engine into a recoverable one: a
// write-ahead log of every admitted batch plus consistent-cut
// checkpoints, behind two Joiner methods (Checkpoint, Restore) and the
// package function CheckpointInfo. The caller supplies payload codecs
// (EncodeR/DecodeR, EncodeS/DecodeS — the engine is generic, so it
// cannot serialize payloads itself) and a WALDir; everything else is
// policy knobs.
//
// The WAL (internal/wal) is an append-only sequence of CRC-framed
// records — u64 index, record kind (R batch, S batch, tick), length,
// payload, CRC32C — split across size-rotated segment files. A torn or
// corrupt tail frame ends replay cleanly (everything before it is
// intact); a corrupt interior frame is an error. Appends are buffered
// and group-committed: with SyncEvery > 0 the log flushes and fsyncs
// once per that many records, and the fsync itself runs on a background
// goroutine (asynchronous group commit) so the push path never blocks
// on the disk — the loss window on a crash is the records appended
// since the last completed background fsync, and a failed background
// fsync is sticky, failing every later append rather than silently
// dropping pages. SyncEvery <= 0 leaves every append in the OS page
// cache (fastest, loses the most on a machine crash).
//
// Checkpoint captures a consistent cut without stopping the world for
// the write: admission freezes just long enough to drain the ingress
// gates, snapshot every lane under its own quiesce, drain the result
// queues into the sorter and read the routing table, then the locks
// release and the state files are written off the ingress path. The
// manifest records the WAL resume index and the sorter's punctuation
// floor, read atomically with the sorter snapshot — the linchpin of
// the recovery filter below. A checkpoint into the WAL directory also
// truncates the log through the resume point, bounding replay work;
// CheckpointEveryBatches > 0 cuts these automatically every N admitted
// batches. Checkpoint-state files carry a fingerprint of the engine
// shape (shards, workers, window bounds), so restoring into a
// differently-shaped engine fails loudly instead of corrupting state.
//
// Restore, on a freshly built engine, loads the checkpoint state —
// windows, lanes, expiry queues, router table, open handoff records,
// sorter buffer — and replays the WAL tail through the ordinary push
// paths (so replayed tuples probe, join and punctuate exactly as live
// ones). The recovery contract: take the killed run's output up to the
// crash, keep only results with timestamp below the manifest's
// punctuation floor, and append the restored run's output — under a
// sequential driver the concatenation equals the uninterrupted run's
// result multiset, and in Ordered mode its exact sequence, open
// incremental handoffs included. (Results at or above the floor may be
// re-emitted after restore — with concurrent pushers the guarantee is
// at-least-once across the crash, deduplicable on (R.Seq, S.Seq).)
// The kill/restore oracle suites, including a seeded fuzz arm over
// shard counts, window shapes and handoffs held open across the kill,
// pin this exactly; `llhjbench recover` prices the ingest tax and
// restore time (BENCH_recover.json).
//
// # Failure modes
//
// The durable engine's behavior under disk and overload faults is a
// contract, pinned by a deterministic fault-injection harness
// (internal/fault: a pluggable filesystem seam plus a rule plan —
// fail the Nth fsync, return ENOSPC, tear a write short, add latency
// — threaded in via Durability.FS) and the chaos oracle suite.
//
// Per-fault contract. A transient WAL append or fsync failure is
// retried with backoff (Durability.RetryAttempts, RetryBackoff,
// RetryBackoffMax); between attempts the log is reseated against
// what actually reached the disk, so a record is never applied twice
// and never silently lost — the retried push either lands the record
// exactly once or fails. ENOSPC and torn writes follow the same path:
// the partial frame is truncated away on reseat, and replay treats a
// torn tail as a clean end of log (a corrupt frame before an intact
// one — real mid-log damage — is salvaged through the last intact
// prefix by wal.Replay). A failed segment-rotation create is
// non-fatal by construction: the record that triggered rotation is
// durable in the old segment before the new one is created, so the
// engine keeps serving from the over-full segment and retries the
// rotation on the next append. Directory entries are fsynced after
// segment create, rotation, and manifest rename, so a crash cannot
// orphan a just-created file; checkpoint state files are written to
// temp names and atomically renamed, so a crash mid-checkpoint
// leaves the previous checkpoint intact.
//
// When retries exhaust, Durability.OnError picks the policy. DurFail
// (default): the failing push returns the error, every later push
// fails sticky, and Health().WALFailed is set — the caller decides
// whether to Checkpoint into a healthy directory (which re-arms the
// WAL there and clears the flag) or drain and restart. DurDegrade:
// the engine sheds durability instead — the unloggable record is
// dropped from the log (never from the join: the push still
// applies), pushes keep succeeding undurably, WALFailed is set and a
// wal_degraded event fires. A later successful Checkpoint into a
// healthy directory re-arms logging there (wal_rearmed), and because
// the checkpoint snapshots full engine state, restore from the new
// directory is exact — the shed window costs redo-durability, not
// correctness.
//
// Overload is bounded by Config.MaxLiveTuples: admission control
// rejects a push with ErrOverloaded before any state changes (a
// batch rejects whole — no partial application) once the live window
// footprint would exceed the cap. The bound counts settled window
// tuples, lane batch buffers, and tuples admitted since the last
// footprint sample, so it is conservative by at most the pipeline's
// in-flight volume; WAL replay bypasses it (acknowledged records are
// re-admitted unconditionally, and Restore re-seeds the bound from
// the restored footprint after the replay settles).
// Health().Overloaded is set while the last admission decision was a
// rejection and clears on the next accepted push — expiries drain
// the windows, so overload is self-healing once ingress pauses or
// the window bounds pass.
//
// Health() reports the three sticky conditions — WALFailed,
// Overloaded, FloorStalled — and Snapshot.Health carries the same
// through the observability surfaces (llhj_health, llhj_health_flag,
// llhj_wal_retries_total, llhj_wal_sheds_total,
// llhj_admission_rejects_total). FloorStalled is the sharded
// engine's watchdog (AdaptConfig.StallWatchdog) for a merged
// punctuation floor that stops advancing while ingress runs ahead —
// the symptom of a wedged collector or a shard that stopped
// promising floors; it fires a floor_stalled event, and clears
// itself (floor_recovered) if the floor moves again. The chaos
// suite (chaos_test.go) holds the whole contract together: killed
// runs under injected fsync/ENOSPC/torn-write faults restore to the
// oracle's exact output, rotation faults keep the engine serving,
// degrade runs shed and re-arm without losing a result, and
// `llhjbench recover` prices the disarmed seam (wal+seam row) and
// demos the shed/re-arm cycle (degrade row).
//
// # Observability
//
// Both engines expose a live observability layer, opt-in via
// Config.Obs. Three surfaces share one contract — all of them are safe
// to use mid-run, from any goroutine, while pushers are active:
//
// Joiner.StatsSnapshot returns a Snapshot: the cumulative Stats
// counters plus live gauges a post-Close Stats call cannot answer —
// the punctuation-floor lag (Snapshot.FloorLagNs, the paper's latency
// proxy: newest admitted timestamp minus the merged floor), per-shard
// live window footprints, per-shard expiry-queue depth, and the number
// of key-groups currently mid-handoff. Stats itself is also sound
// mid-run: every counter is an atomic, cumulative totals lag
// concurrent pushers by at most the in-flight batches, and the
// conservation invariant Σ ShardIngress ≤ RIn+SIn holds in every
// snapshot (exactly equal once the engine is closed).
//
// Joiner.Events drains the control-plane event trace: a bounded
// lock-free ring (Config.Obs.EventBuffer) of structured TraceEvents
// recording what the control plane did and when. Kinds and their A/B
// operands:
//
//	rebalance_applied  shard=-1            A=moves proposed   B=moves applied
//	handoff_begin      shard=to,   group   A=source shard     B=0
//	slice_hop          shard=to,   group   A=tuples moved     B=tuples remaining
//	handoff_settle     shard=to,   group   A=tuples moved     B=source shard
//	migrate_freeze     shard=to,   group   A=tuples moved     B=source shard
//	heartbeat_stall    shard=idle, group=-1  A=floor ticked   B=0  (once per stall episode)
//	ring_spill         shard=lane          A=entries spilled  B=ring span at spill
//	ring_reanchor      shard=lane          A=distance below base  B=new span
//	window_compact     shard=lane          A=slots reclaimed  B=live entries kept
//	strategy_switch    shard=-1,   group   A=from strategy    B=to strategy
//	checkpoint_begin   shard=-1,  group=-1 A=WAL resume index B=0
//	checkpoint_complete shard=-1, group=-1 A=duration ns      B=state bytes
//	wal_rotate         shard=-1,  group=-1 A=new segment index B=0
//	restore_replay     shard=-1,  group=-1 A=records replayed B=replay ns
//
// Config.Obs.Addr serves both over HTTP for the engine's lifetime:
// /metrics in Prometheus text exposition, /events as JSONL
// (?since=N resumes from a sequence number), /debug/vars (expvar) and
// /debug/pprof. The exported names: llhj_ingress_total{side},
// llhj_results_total, llhj_punctuations_total, llhj_comparisons_total,
// llhj_pending_expiries_total, llhj_shard_ingress_total{shard},
// llhj_shard_results_total{shard}, llhj_live_window{side,shard},
// llhj_expiry_depth{shard}, llhj_floor_lag_ns, llhj_handoffs_inflight,
// llhj_rebalances_total, llhj_keygroup_moves_total,
// llhj_state_migrations_total, llhj_migrated_tuples_total,
// llhj_slice_migrations_total, llhj_probe_dispatch_total{strategy},
// llhj_probe_dispatches_total, llhj_strategy_switches_total,
// llhj_store_{spills,reanchors,
// compactions,parks}_total, llhj_store_overflow, llhj_max_sort_buffer,
// llhj_wal_bytes_total, llhj_checkpoints_total,
// llhj_checkpoint_duration_ns,
// llhj_trace_events_total, and the llhj_output_latency_ns histogram —
// result latency from admission of the later input tuple to delivery
// on the serving path.
//
// The overhead contract: the layer never touches the per-tuple hot
// path. Counters are per-lane single-writer atomics (plain read,
// atomic store — no read-modify-write in the push path beyond what the
// engine already did); trace events are emitted only from cold
// control-plane branches (rebalance cut-overs, handoff hops, freezes,
// ring spills and re-anchors, slab compactions, heartbeat stalls); and
// scrapes read without taking the ingress locks, so a tight scrape
// loop cannot stall admission. cmd/llhjbench and cmd/llhjlive wire the
// layer up behind -obs, alongside -cpuprofile, -memprofile and -pprof.
package handshakejoin
