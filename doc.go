// Package handshakejoin implements low-latency handshake join (LLHJ),
// the sliding-window stream-join operator of Roy, Teubner and Gemulla,
// "Low-Latency Handshake Join", PVLDB 7(9), 2014 — together with the
// original handshake join it improves upon, the CellJoin and Kang
// baselines it is compared against, and the punctuation machinery that
// turns its output into a deterministically ordered stream.
//
// # Model
//
// A stream join continuously matches tuples from two unbounded streams
// R and S whose "current" contents are defined by sliding windows
// (time-based, tuple-count-based, or both). Handshake join evaluates
// the join by letting the two streams flow past each other through a
// pipeline of processing cores — all communication is between
// neighbouring cores, which is what makes the operator scale on NUMA
// hardware. Low-latency handshake join keeps that communication
// pattern but expedites tuples through the pipeline instead of letting
// them queue, cutting result latency from the scale of the window size
// (minutes) to the scale of the driver's batching delay (milliseconds),
// and its high-water-mark punctuations allow exact output ordering with
// a buffer of only thousands of tuples.
//
// # Usage
//
// Construct an Engine with two payload types, a predicate and window
// specifications, then push tuples in timestamp order:
//
//	eng, err := handshakejoin.New(handshakejoin.Config[Trade, Quote]{
//		Workers:   8,
//		Predicate: func(t Trade, q Quote) bool { return t.Sym == q.Sym },
//		WindowR:   handshakejoin.Window{Duration: time.Minute},
//		WindowS:   handshakejoin.Window{Duration: time.Minute},
//		OnOutput:  func(it handshakejoin.Item[Trade, Quote]) { ... },
//	})
//	...
//	eng.PushR(trade, ts)
//	eng.PushS(quote, ts)
//	eng.Close()
//
// The engine runs one goroutine per worker plus a collector; results
// and (optionally) punctuations arrive on the OnOutput callback.
// Everything under internal/ — the protocol state machines, the
// discrete-event simulator used by the experiment harness, and the
// baselines — is exercised through cmd/llhjbench and the test suite.
package handshakejoin
