package handshakejoin

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"handshakejoin/internal/stream"
)

// The tests in this file establish the correctness claim of live state
// migration: moving a key-group's window state between shards
// mid-stream — through ShardedEngine.Migrate or the control loop's
// migration escalation — changes neither the result multiset nor the
// exact Ordered-mode sequence versus the sequential Kang oracle.
//
// Like the adaptive suite they run with Batch: 1, where window
// boundaries are exact and the multiset is independent of tuple
// placement; the migration protocol guarantees the same independence
// on the engine side (extracted tuples re-enter as store-only
// arrivals, so nothing is emitted twice, and re-bound expiries still
// pop before the group's next arrival).

// migrateCfg is the shared base configuration of the migration suites.
func migrateCfg(shards int, theta float64) Config[okR, okS] {
	const step = int64(1e6)
	return Config[okR, okS]{
		Workers:     3,
		Shards:      shards,
		Predicate:   shardedEqui,
		WindowR:     Window{Duration: time.Duration(120 * step), Count: 200},
		WindowS:     Window{Count: 190},
		Batch:       1,
		MaxInFlight: 2,
		KeyR:        okRKey,
		KeyS:        okSKey,
		Adapt: AdaptConfig{
			Enable:           true,
			SamplePeriod:     -1, // manual control only: deterministic
			SkewThreshold:    1.05,
			MaxMovesPerCycle: 16,
			KeyGroups:        8 * shards,
		},
	}
}

func TestShardedMigrateMatchesOracle(t *testing.T) {
	// Forced migrations: every 150 pushes one key-group is moved to a
	// rotating target shard, cycling through all groups — live window
	// state moves constantly, under the heavy skew (θ=1.5) whose hot
	// groups the drain path could never relocate. Exact multiset.
	for _, shards := range []int{4, 8} {
		t.Run(fmt.Sprintf("shards=%d/theta=1.5", shards), func(t *testing.T) {
			cfg := migrateCfg(shards, 1.5)
			var mu sync.Mutex
			got := map[stream.PairKey]int{}
			cfg.OnOutput = func(it Item[okR, okS]) {
				if it.Punct {
					return
				}
				mu.Lock()
				got[it.Result.Pair.Key()]++
				mu.Unlock()
			}
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			se := eng.(*ShardedEngine[okR, okS])
			o := newOracleEngine(cfg, shardedEqui)
			groups := se.KeyGroups()
			move := 0
			zipfSchedule(t, 2400, 1.5, 256, uint64(shards)*101, eng, o, func(i int) {
				if i%150 == 149 {
					g := uint32(move % groups)
					to := (se.router.Partitioner().ShardOfGroup(g) + 1 + move%(shards-1)) % shards
					if _, err := se.Migrate(g, to); err != nil {
						t.Fatalf("Migrate(%d, %d): %v", g, to, err)
					}
					move++
				}
			})

			missing, extra, dups := diffPairMultiset(o.pairs, got)
			if missing != 0 || extra != 0 || dups != 0 {
				t.Fatalf("migrated vs oracle: %d missing, %d extra, %d duplicates (oracle %d distinct)",
					missing, extra, dups, len(o.pairs))
			}
			st := eng.Stats()
			if st.Results != sum(o.pairs) {
				t.Fatalf("Stats.Results = %d, oracle produced %d", st.Results, sum(o.pairs))
			}
			if st.PendingExpiries != 0 {
				t.Errorf("pending expiries: %d (a migrated expiry raced its tuple)", st.PendingExpiries)
			}
			if st.StateMigrations == 0 || st.MigratedTuples == 0 {
				t.Fatalf("no live state moved (migrations %d, tuples %d); test has no teeth",
					st.StateMigrations, st.MigratedTuples)
			}
		})
	}
}

func TestShardedOrderedMigrateExactSequence(t *testing.T) {
	// Ordered mode across forced live migrations: the merged,
	// punctuation-sorted output must still be the exact deterministic
	// sequence.
	for _, shards := range []int{4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := migrateCfg(shards, 1.5)
			cfg.Ordered = true
			cfg.CollectPeriod = 200 * time.Microsecond
			var mu sync.Mutex
			var gotSeq []orderedKey
			cfg.OnOutput = func(it Item[okR, okS]) {
				mu.Lock()
				defer mu.Unlock()
				if it.Punct {
					return
				}
				p := it.Result.Pair
				gotSeq = append(gotSeq, orderedKey{TS: p.TS(), RSeq: p.R.Seq, SSeq: p.S.Seq})
			}
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			se := eng.(*ShardedEngine[okR, okS])
			o := newOracleEngine(cfg, shardedEqui)
			groups := se.KeyGroups()
			move := 0
			zipfSchedule(t, 2000, 1.5, 256, uint64(shards)*7+3, eng, o, func(i int) {
				if i%170 == 169 {
					g := uint32(move % groups)
					to := (se.router.Partitioner().ShardOfGroup(g) + 1 + move%(shards-1)) % shards
					if _, err := se.Migrate(g, to); err != nil {
						t.Fatalf("Migrate(%d, %d): %v", g, to, err)
					}
					move++
				}
			})

			st := eng.Stats()
			if st.MigratedTuples == 0 {
				t.Fatal("no live state moved; the ordered-across-migration claim was not exercised")
			}
			want := o.orderedResults()
			if len(gotSeq) != len(want) {
				t.Fatalf("emitted %d results, oracle expects %d (migrations %d, tuples %d)",
					len(gotSeq), len(want), st.StateMigrations, st.MigratedTuples)
			}
			for i := range want {
				if gotSeq[i] != want[i] {
					t.Fatalf("position %d: got %+v, want %+v", i, gotSeq[i], want[i])
				}
			}
			if len(want) == 0 {
				t.Fatal("workload produced no results; test has no teeth")
			}
		})
	}
}

func TestShardedMigrationControlLoopEscalates(t *testing.T) {
	// With Adapt.Migration enabled and manual Rebalance as the only
	// control driver, hot groups under θ=1.5 skew stall their planned
	// drain moves (their windows never empty) and must escalate to
	// live migrations — while the output stays an exact multiset.
	const shards = 4
	cfg := migrateCfg(shards, 1.5)
	cfg.Adapt.Migration = MigrationConfig{
		Enable:            true,
		MaxTuplesPerCycle: 4096,
		AfterCycles:       3,
	}
	var mu sync.Mutex
	got := map[stream.PairKey]int{}
	cfg.OnOutput = func(it Item[okR, okS]) {
		if it.Punct {
			return
		}
		mu.Lock()
		got[it.Result.Pair.Key()]++
		mu.Unlock()
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*ShardedEngine[okR, okS])
	o := newOracleEngine(cfg, shardedEqui)
	zipfSchedule(t, 5000, 1.5, 256, 4242, eng, o, func(i int) {
		if i%100 == 99 {
			se.Rebalance()
		}
	})

	missing, extra, dups := diffPairMultiset(o.pairs, got)
	if missing != 0 || extra != 0 || dups != 0 {
		t.Fatalf("control-loop migration vs oracle: %d missing, %d extra, %d duplicates", missing, extra, dups)
	}
	st := eng.Stats()
	if st.StateMigrations == 0 {
		t.Fatalf("θ=1.5 skew triggered no migration escalation (rebalances %d, drain moves %d, pending expiries %d)",
			st.Rebalances, st.KeyGroupMoves, st.PendingExpiries)
	}
	if st.MigratedTuples == 0 {
		t.Fatal("migrations fired but carried no live state")
	}
}

func TestShardedMigrateValidation(t *testing.T) {
	cfg := migrateCfg(2, 1.0)
	cfg.OnOutput = func(Item[okR, okS]) {}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*ShardedEngine[okR, okS])
	if _, err := se.Migrate(uint32(se.KeyGroups()), 0); err == nil {
		t.Fatal("accepted out-of-range group")
	}
	if _, err := se.Migrate(0, 2); err == nil {
		t.Fatal("accepted out-of-range shard")
	}
	// Moving a group onto its own shard is a no-op, not a migration.
	cur := se.router.Partitioner().ShardOfGroup(3)
	if n, err := se.Migrate(3, cur); err != nil || n != 0 {
		t.Fatalf("self-move = (%d, %v), want (0, nil)", n, err)
	}
	if se.Stats().StateMigrations != 0 {
		t.Fatal("self-move counted as a migration")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := se.Migrate(0, 1); err == nil {
		t.Fatal("Migrate succeeded on a closed engine")
	}
}

func TestMigratedCountExpiryFiresOnQuietLane(t *testing.T) {
	// A migrated tuple's future count-bound expiry routes to its new
	// lane, whose injection high-water mark never covered the tuple's
	// sequence number. On a lane that receives no further R arrivals,
	// the expiry must fire anyway (the rebind marks it settled) — or
	// the expired tuple overstays its window and a later S probe
	// re-joins it.
	cfg := Config[okR, okS]{
		Workers:     1,
		Shards:      2,
		Predicate:   shardedEqui,
		WindowR:     Window{Count: 3},
		WindowS:     Window{Count: 64},
		Batch:       1,
		MaxInFlight: 2,
		KeyR:        okRKey,
		KeyS:        okSKey,
		Adapt: AdaptConfig{
			Enable:       true,
			SamplePeriod: -1,
			KeyGroups:    16,
		},
	}
	var mu sync.Mutex
	results := 0
	cfg.OnOutput = func(it Item[okR, okS]) {
		if it.Punct {
			return
		}
		mu.Lock()
		results++
		mu.Unlock()
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*ShardedEngine[okR, okS])
	part := se.router.Partitioner()
	keyOnLane0 := func(not uint32) (uint64, uint32) {
		for k := uint64(0); ; k++ {
			if g := se.router.GroupOf(k); part.ShardOfGroup(g) == 0 && g != not {
				return k, g
			}
		}
	}
	keyA, gA := keyOnLane0(1 << 30)
	keyB, _ := keyOnLane0(gA)

	// Fill the global R count window with key-A tuples, all on lane 0.
	for i := 0; i < 3; i++ {
		if err := eng.PushR(okR{Key: keyA}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Move their live state to lane 1 — which will never see a native
	// R flush, so its R injection mark stays at zero.
	if n, err := se.Migrate(gA, 1); err != nil || n != 3 {
		t.Fatalf("Migrate moved (%d, %v), want 3 tuples", n, err)
	}
	// Key-B arrivals on lane 0 overflow the window: the count expiries
	// of the migrated key-A tuples are routed to lane 1.
	for i := 3; i < 6; i++ {
		if err := eng.PushR(okR{Key: keyB}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// An S probe of key A on lane 1: its flush must first pop the due
	// migrated expiries, so the expired tuples cannot match.
	if err := eng.PushS(okS{Key: keyA}, 10); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if results != 0 {
		t.Fatalf("S probe matched %d expired migrated tuples; their count expiries were gated on the quiet lane", results)
	}
	if st := eng.Stats(); st.PendingExpiries != 0 {
		t.Fatalf("pending expiries: %d", st.PendingExpiries)
	}
}
