package handshakejoin

import (
	"testing"
)

// reading/level exercise the B-tree band index through the public API:
// join readings with alert levels within ±10 of the reading's value —
// the paper benchmark's band shape on its first dimension.
type reading struct {
	V int32
}

type level struct {
	L int32
}

func bandPred(r reading, l level) bool {
	return r.V >= l.L-10 && r.V <= l.L+10
}

func TestEngineBTreeBandJoin(t *testing.T) {
	run := func(idx IndexKind) (results map[[2]uint64]bool, comparisons uint64) {
		results = make(map[[2]uint64]bool)
		cfg := Config[reading, level]{
			Workers:     3,
			Predicate:   bandPred,
			WindowR:     Window{Count: 120},
			WindowS:     Window{Count: 120},
			Batch:       4,
			MaxInFlight: 4,
			Index:       idx,
			OnOutput: func(it Item[reading, level]) {
				k := [2]uint64{it.Result.Pair.R.Seq, it.Result.Pair.S.Seq}
				if results[k] {
					t.Errorf("duplicate pair %v", k)
				}
				results[k] = true
			},
		}
		if idx == BTreeIndex {
			cfg.KeyR = func(r reading) uint64 { return uint64(uint32(r.V)) }
			cfg.KeyS = func(l level) uint64 { return uint64(uint32(l.L)) }
			cfg.Band = 10
		}
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			ts := int64(i) * 1e6
			eng.PushR(reading{V: int32((i * 37) % 500)}, ts)
			eng.PushS(level{L: int32((i * 53) % 500)}, ts)
		}
		eng.Close()
		return results, eng.Stats().Comparisons
	}

	scanRes, scanWork := run(ScanIndex)
	treeRes, treeWork := run(BTreeIndex)

	if len(scanRes) == 0 {
		t.Fatal("band join found nothing; workload broken")
	}
	if len(scanRes) != len(treeRes) {
		t.Fatalf("b-tree band join found %d results, scan found %d", len(treeRes), len(scanRes))
	}
	for k := range scanRes {
		if !treeRes[k] {
			t.Fatalf("b-tree path missed pair %v", k)
		}
	}
	if treeWork >= scanWork {
		t.Errorf("b-tree inspected %d entries, scan %d; range probes should inspect fewer",
			treeWork, scanWork)
	}
}
