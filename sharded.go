package handshakejoin

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"handshakejoin/internal/adapt"
	"handshakejoin/internal/clock"
	"handshakejoin/internal/collect"
	"handshakejoin/internal/core"
	"handshakejoin/internal/metrics"
	"handshakejoin/internal/obs"
	"handshakejoin/internal/order"
	"handshakejoin/internal/probe"
	"handshakejoin/internal/shard"
	"handshakejoin/internal/stream"
)

// minTS is the "no tuple seen yet" ingress timestamp.
const minTS = -1 << 62

// ShardedEngine scales an equi-join across pipelines: both streams are
// partitioned by join key (Config.KeyR/KeyS) over Shards independent
// LLHJ pipelines, each with its own driver state and collector,
// multiplying throughput while every pipeline keeps the latency and
// punctuation guarantees of the single-pipeline operator.
//
// Routing goes through a key-group indirection table (internal/adapt
// over internal/shard.Partitioner): a key hashes onto one of many
// key-groups, and the table maps groups to shards. With Adapt.Enable a
// control loop samples per-group load, detects skew, and moves groups
// off overloaded shards — cutting each move over only when the group
// provably has no joinable window state left on its old shard, so
// rebalancing never changes the result multiset nor the Ordered-mode
// sequence.
//
// # Semantics
//
// Because the predicate must imply key equality, tuples that could
// ever join are always routed to the same shard, so the sharded result
// multiset is exactly the single-pipeline one. Windows remain global:
// a Count window bounds the total number of in-window tuples across
// all shards, and expiries are routed to the shard owning the tuple.
//
// In Ordered mode, per-shard punctuation streams are merged on their
// high-water marks (internal/shard.Merge over order.PunctFloor): a
// global punctuation ⌈tp⌉ is emitted once every shard has promised tp,
// and the downstream sorter then releases results in exact global
// timestamp order — the same deterministic sequence, independent of
// shard count, scheduling and rebalancing. A shard that receives no
// traffic no longer holds the global punctuation back: a heartbeat
// ticks idle shards with the engine-wide ingress floor each collect
// period (see AdaptConfig), so their promises keep advancing; Close
// still releases everything that is buffered, in order.
//
// # Concurrency
//
// Unlike Engine, the sharded driver accepts concurrent PushR/PushS
// calls from multiple goroutines. Each side takes a short serial
// section (sequence numbers, monotonic-timestamp checks, window
// accounting and routing need a total order per stream) and then hands
// the tuple to the owning shard through a per-shard, per-side ingress
// gate: pushes to the same shard stay in stream order, while pushes to
// different shards — including one blocked on a saturated shard's
// back-pressure — proceed in parallel. The OnOutput callback is
// serialized by the merge stage but may run on any shard's collector
// goroutine.
type ShardedEngine[L, RT any] struct {
	keyR   func(L) uint64
	keyS   func(RT) uint64
	router *adapt.Router
	lanes  []*shard.Lane[L, RT]
	merge  *shard.Merge[L, RT]

	clk clock.Clock

	rmu     sync.Mutex // serializes the R side: seq, ts check, window accounting, routing
	smu     sync.Mutex // serializes the S side
	rLastTS int64
	sLastTS int64
	// rSeq/sSeq are the per-side sequence counters: written only under
	// the side lock (plain load + atomic store), read lock-free by
	// mid-run snapshots.
	rSeq, sSeq atomic.Uint64
	rWin, sWin windowTracker

	// Atomic mirrors of the per-side ingress timestamps: any load is a
	// sound lower bound on every future push of that side, which is
	// what the heartbeat floor and the cut-over protocol rely on.
	rLastAt, sLastAt atomic.Int64

	rDur, sDur int64 // duration window spans (0 when absent)
	rCnt, sCnt bool  // count bounds active

	adaptive bool
	gates    [][2]*ingressGate // per (lane, side) ingress ordering
	activity []atomic.Uint64   // pushes routed per lane (idle detection)
	laneTS   []atomic.Int64    // latest ingress ts routed per lane

	// Batched-ingress state. rsc/ssc are the per-side routing and
	// expiry-schedule scratch, consumed entirely under that side's
	// stream lock; rOne/sOne back the batch-of-one per-tuple wrappers
	// (also guarded by the side locks). The fan-out plans outlive the
	// side lock — the gate walk reads them after unlock, and another
	// pusher may refill the scratch meanwhile — so they are pooled per
	// call. expireRBulk/expireSBulk are bound once so admission
	// allocates no closures.
	rsc, ssc                 admitScratch
	rPlans, sPlans           sync.Pool
	expireRBulk, expireSBulk expireFn
	expireROne, expireSOne   expireFn

	ctrl     *adapt.Controller
	hbPeriod time.Duration
	watchdog time.Duration // AdaptConfig.StallWatchdog (0 = off)
	stop     chan struct{}
	bg       sync.WaitGroup

	// guard enforces Config.MaxLiveTuples at admission (nil when
	// disabled); floorStalled is the heartbeat loop's watchdog verdict.
	guard        *overloadGuard
	floorStalled atomic.Bool

	stateMigrations atomic.Uint64
	migratedTuples  atomic.Uint64
	sliceMigrations atomic.Uint64
	freezeStalls    atomic.Uint64
	maxStallNs      atomic.Int64
	sliceTuples     int

	// probeTab is the IndexAuto strategy table shared by every lane's
	// nodes (group IDs align with the router's key-groups); nil under a
	// static Index.
	probeTab *probe.Table

	sorter  *order.Sorter[L, RT]
	sortMu  sync.Mutex // sorter access: merge callbacks vs Close's final Flush
	closed  atomic.Bool
	closeMu sync.Mutex

	// dur is the durability runtime (Config.Durability): the WAL
	// handle, the replay flag, and checkpoint bookkeeping.
	dur durState[L, RT]

	// Observability layer (Config.Obs); all nil/absent when disabled.
	ring    *obs.Ring
	obsSrv  *obs.Server
	outHist *metrics.AtomicHistogram
}

// ingressGate serializes same-lane pushes of one stream side in ticket
// order. Tickets are issued under the side lock (establishing the
// stream order); the push then enters the gate outside that lock, so
// the lane append — which can block on a saturated pipeline's
// back-pressure — stalls only pushers of the same lane instead of the
// whole stream side. Waiting spins through the scheduler, the same
// discipline the pipeline's Inject back-pressure uses: the uncontended
// path is two atomic operations, and a waiter is by definition behind
// a peer that is actively appending.
type ingressGate struct {
	tail atomic.Uint64 // tickets issued; written under the side lock
	next atomic.Uint64 // tickets completed
}

func newIngressGate() *ingressGate { return &ingressGate{} }

// issue hands out the next ticket; callers hold the side lock.
func (g *ingressGate) issue() uint64 {
	t := g.tail.Load()
	g.tail.Store(t + 1)
	return t
}

// enter blocks until ticket t's turn.
func (g *ingressGate) enter(t uint64) {
	for g.next.Load() != t {
		runtime.Gosched()
	}
}

// leave completes the current ticket.
func (g *ingressGate) leave() { g.next.Add(1) }

// drained reports whether every issued ticket has completed. Exact
// only while no new tickets can be issued; otherwise a conservative
// snapshot.
func (g *ingressGate) drained() bool { return g.next.Load() == g.tail.Load() }

// waitDrained blocks until every issued ticket has completed; callers
// must prevent new tickets (hold the side lock, or have marked the
// engine closed).
func (g *ingressGate) waitDrained() {
	for !g.drained() {
		runtime.Gosched()
	}
}

// admitScratch is one stream side's batched-admission scratch: keys,
// timestamps, per-tuple routing results, and the per-lane expiry
// entries one caller batch schedules. Everything here is written and
// consumed under the side's stream lock.
type admitScratch struct {
	keys   []uint64
	tss    []int64
	lanes  []int
	groups []uint32
	probes []int
	dur    [][]shard.ExpiryEntry // per-lane duration-bound entries
	cnt    [][]shard.ExpiryEntry // per-lane count-bound entries
	relG   []uint32              // count-release groups, batch order
	relDue []int64               // matching expiry deadlines
}

func (sc *admitScratch) ensure(n, shards int) {
	if cap(sc.keys) < n {
		sc.keys = make([]uint64, n)
		sc.tss = make([]int64, n)
		sc.lanes = make([]int, n)
		sc.groups = make([]uint32, n)
		sc.probes = make([]int, n)
	}
	sc.keys = sc.keys[:n]
	sc.tss = sc.tss[:n]
	sc.lanes = sc.lanes[:n]
	sc.groups = sc.groups[:n]
	sc.probes = sc.probes[:n]
	if sc.dur == nil {
		sc.dur = make([][]shard.ExpiryEntry, shards)
		sc.cnt = make([][]shard.ExpiryEntry, shards)
	}
}

// fanPlan is the fan-out of one caller batch: each touched lane's
// sub-batch of full arrivals, its probe-only double-read slice, and
// the gate ticket covering both. A plan outlives the side lock (the
// gate walk reads it after unlock), so plans are pooled per call; the
// tuple slices are safe to reuse once the walk completes because
// lanes copy tuples into their own buffers.
type fanPlan[T any] struct {
	full    [][]stream.Tuple[T]
	probe   [][]stream.Tuple[T]
	tickets []uint64
	used    []bool
	touched []int
}

func (p *fanPlan[T]) reset(shards int) {
	if len(p.full) != shards {
		p.full = make([][]stream.Tuple[T], shards)
		p.probe = make([][]stream.Tuple[T], shards)
		p.tickets = make([]uint64, shards)
		p.used = make([]bool, shards)
		p.touched = p.touched[:0]
		return
	}
	for _, lane := range p.touched {
		p.full[lane] = p.full[lane][:0]
		p.probe[lane] = p.probe[lane][:0]
		p.used[lane] = false
	}
	p.touched = p.touched[:0]
}

func (p *fanPlan[T]) mark(lane int) {
	if !p.used[lane] {
		p.used[lane] = true
		p.touched = append(p.touched, lane)
	}
}

// newSharded builds and starts a ShardedEngine from a validated
// configuration with cfg.Shards > 1.
func newSharded[L, RT any](cfg Config[L, RT]) (*ShardedEngine[L, RT], error) {
	groups := cfg.Adapt.KeyGroups
	if groups == 0 {
		groups = shard.DefaultGroups(cfg.Shards)
	}
	e := &ShardedEngine[L, RT]{
		keyR:     cfg.KeyR,
		keyS:     cfg.KeyS,
		clk:      clock.NewWall(),
		rLastTS:  minTS,
		sLastTS:  minTS,
		rWin:     windowTracker{spec: cfg.WindowR},
		sWin:     windowTracker{spec: cfg.WindowS},
		rDur:     int64(cfg.WindowR.Duration),
		sDur:     int64(cfg.WindowS.Duration),
		rCnt:     cfg.WindowR.Count > 0,
		sCnt:     cfg.WindowS.Count > 0,
		adaptive: cfg.Adapt.Enable,
		stop:     make(chan struct{}),
	}
	e.sliceTuples = cfg.Adapt.Migration.SliceTuples
	if e.sliceTuples == 0 {
		e.sliceTuples = 1024
	}
	if cfg.Obs.enabled() {
		e.ring = obs.NewRing(cfg.Obs.ringSize())
		e.outHist = &metrics.AtomicHistogram{}
	}
	if err := e.dur.init(&cfg); err != nil {
		return nil, err
	}
	e.dur.ring = e.ring
	e.rLastAt.Store(minTS)
	e.sLastAt.Store(minTS)
	e.rPlans.New = func() any { return &fanPlan[L]{} }
	e.sPlans.New = func() any { return &fanPlan[RT]{} }
	// The bulk closures defer the router's count releases into the
	// side's scratch: one ObserveCountExpireBulk call per caller batch
	// locks each touched stripe once, instead of one stripe lock per
	// expired tuple (the per-entry path's cost).
	e.expireRBulk = func(lane int, group uint32, seq uint64, due int64, counted, settled bool) {
		if counted {
			e.rsc.cnt[lane] = append(e.rsc.cnt[lane], shard.ExpiryEntry{Seq: seq, Due: due, Settled: settled})
			if e.adaptive {
				e.rsc.relG = append(e.rsc.relG, group)
				e.rsc.relDue = append(e.rsc.relDue, due)
			}
		} else {
			e.rsc.dur[lane] = append(e.rsc.dur[lane], shard.ExpiryEntry{Seq: seq, Due: due, Settled: settled})
		}
	}
	e.expireSBulk = func(lane int, group uint32, seq uint64, due int64, counted, settled bool) {
		if counted {
			e.ssc.cnt[lane] = append(e.ssc.cnt[lane], shard.ExpiryEntry{Seq: seq, Due: due, Settled: settled})
			if e.adaptive {
				e.ssc.relG = append(e.ssc.relG, group)
				e.ssc.relDue = append(e.ssc.relDue, due)
			}
		} else {
			e.ssc.dur[lane] = append(e.ssc.dur[lane], shard.ExpiryEntry{Seq: seq, Due: due, Settled: settled})
		}
	}
	// The single-tuple fast path queues straight to the lane; no
	// scratch, no fan-out plan.
	e.expireROne = func(lane int, group uint32, seq uint64, due int64, counted, settled bool) {
		e.lanes[lane].QueueExpiry(stream.R, seq, due, counted, settled)
		if counted && e.adaptive {
			e.router.ObserveCountExpire(stream.R, group, due)
		}
	}
	e.expireSOne = func(lane int, group uint32, seq uint64, due int64, counted, settled bool) {
		e.lanes[lane].QueueExpiry(stream.S, seq, due, counted, settled)
		if counted && e.adaptive {
			e.router.ObserveCountExpire(stream.S, group, due)
		}
	}
	part := shard.NewPartitionerGroups(cfg.Shards, groups)
	e.router = adapt.NewRouter(part, cfg.Adapt.Enable, e.ingressFloor)
	if cfg.Index == IndexAuto {
		// The strategy table shares the router's group space, so the
		// controller can feed it the authoritative per-group window
		// cardinality it already samples.
		pcfg := probe.Config{
			Groups: groups,
			Class:  probeClass(cfg.Class),
			Band:   cfg.Band,
			Lanes:  cfg.Shards,
			Nodes:  cfg.Workers,
		}
		if e.ring != nil {
			ring := e.ring
			pcfg.OnSwitch = func(g uint32, from, to probe.Strategy) {
				ring.Emit("strategy_switch", -1, int64(g), int64(from), int64(to))
			}
		}
		e.probeTab = probe.NewTable(pcfg)
	}
	out := cfg.OnOutput
	if cfg.Ordered {
		var sorted func(Item[L, RT])
		sorted, e.sorter = sortedOutput(cfg.OnOutput)
		out = func(it Item[L, RT]) {
			e.sortMu.Lock()
			defer e.sortMu.Unlock()
			sorted(it)
		}
	}
	if e.outHist != nil {
		out = wrapLatency(e.outHist, e.clk.Now, out)
	}
	e.merge = shard.NewMerge[L, RT](cfg.Shards, func(it collect.Item[L, RT]) { out(it) })
	e.lanes = make([]*shard.Lane[L, RT], cfg.Shards)
	e.gates = make([][2]*ingressGate, cfg.Shards)
	e.activity = make([]atomic.Uint64, cfg.Shards)
	e.laneTS = make([]atomic.Int64, cfg.Shards)
	lcfg := laneConfig(&cfg, e.clk, cfg.Punctuate)
	for i := range e.lanes {
		i := i
		// Each lane gets its own builder so the window stores' rare-path
		// trace events carry the shard they happened on.
		build, err := builderFor(&cfg, e.laneTrace(i), e.probeTab)
		if err != nil {
			return nil, err
		}
		e.lanes[i] = shard.NewLane(lcfg, build, func(it collect.Item[L, RT]) {
			e.merge.FromShard(i, it)
		})
		e.gates[i] = [2]*ingressGate{newIngressGate(), newIngressGate()}
		e.laneTS[i].Store(minTS)
	}
	if cfg.MaxLiveTuples > 0 {
		e.guard = newOverloadGuard(cfg.MaxLiveTuples, func() int64 {
			var live int64
			for _, l := range e.lanes {
				// Batch buffer before window gauges: a tuple flushed
				// between the two reads is seen by the gauge walk,
				// never dropped from both.
				live += l.Buffered()
				agg := l.PipelineStats()
				live += int64(agg.LiveWR) + int64(agg.LiveWS)
			}
			return live
		})
	}
	if !cfg.Adapt.DisableHeartbeat {
		e.hbPeriod = cfg.Adapt.HeartbeatPeriod
		if e.hbPeriod <= 0 {
			e.hbPeriod = cfg.CollectPeriod
		}
		if cfg.Punctuate {
			// Without punctuations the merged floor never advances, so
			// the watchdog would only ever cry wolf.
			e.watchdog = cfg.Adapt.StallWatchdog
		}
		e.bg.Add(1)
		go e.heartbeatLoop()
	}
	if cfg.Adapt.Enable {
		probes := make([]adapt.Probe, cfg.Shards)
		for i, l := range e.lanes {
			probes[i] = laneProbe[L, RT]{l: l}
		}
		acfg := adapt.Config{
			SamplePeriod:     cfg.Adapt.SamplePeriod,
			SkewThreshold:    cfg.Adapt.SkewThreshold,
			MaxMovesPerCycle: cfg.Adapt.MaxMovesPerCycle,
			StaleMoveCycles:  uint64(max(cfg.Adapt.StaleMoveCycles, 0)),
			EngageThreshold:  cfg.Adapt.EngageThreshold,
			DisengageRatio:   cfg.Adapt.DisengageRatio,
		}
		if e.ring != nil {
			acfg.Trace = func(kind string, a, b int64) {
				e.ring.Emit(kind, -1, -1, a, b)
			}
		}
		// The controller's sampling cycle feeds the strategy table the
		// router's per-group live cardinality (IndexAuto only).
		acfg.ProbeTable = e.probeTab
		if cfg.Adapt.Migration.Enable {
			acfg.MigrateBudget = cfg.Adapt.Migration.MaxTuplesPerCycle
			if acfg.MigrateBudget == 0 {
				acfg.MigrateBudget = 4096
			}
			acfg.MigrateAfterCycles = uint64(max(cfg.Adapt.Migration.AfterCycles, 0))
			acfg.MinMigrateLoad = cfg.Adapt.Migration.MinGroupLoad
			acfg.MinGapRatio = cfg.Adapt.Migration.MinGapRatio
			acfg.MaxMigrationsPerSec = cfg.Adapt.Migration.MaxMigrationsPerSec
			if cfg.Adapt.Migration.Freezing {
				acfg.Migrator = func(group uint32, to int, budget int) (int, bool) {
					n, err := e.migrate(group, to, budget)
					return n, err == nil
				}
			} else {
				acfg.SliceTuples = e.sliceTuples
				acfg.BeginHandoff = func(group uint32, to int) bool {
					return e.beginHandoff(group, to) == nil
				}
				acfg.AdvanceHandoff = func(group uint32, maxTuples int) (int, bool, bool) {
					n, done, err := e.advanceHandoff(group, maxTuples)
					if err != nil {
						// Closing, or the handoff is gone: drop it
						// without counting a migration.
						return 0, true, false
					}
					return n, done, done
				}
			}
		}
		e.ctrl = adapt.NewController(e.router, probes,
			func(lane int) int64 { return e.laneTS[lane].Load() },
			acfg)
		if cfg.Adapt.SamplePeriod >= 0 {
			e.bg.Add(1)
			go func() {
				defer e.bg.Done()
				e.ctrl.Run(e.stop)
			}()
		}
	}
	if cfg.Obs.Addr != "" {
		srv, err := obs.Serve(cfg.Obs.Addr, func() obs.Dump {
			return gatherDump(e.StatsSnapshot(), e.outHist, e.ring)
		}, e.ring)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("handshakejoin: observability endpoint: %w", err)
		}
		e.obsSrv = srv
	}
	return e, nil
}

// laneTrace returns the rare-path trace sink for one lane's window
// stores (nil when tracing is off, which also disables the stores'
// callback entirely).
func (e *ShardedEngine[L, RT]) laneTrace(lane int) func(kind string, a, b int64) {
	if e.ring == nil {
		return nil
	}
	return func(kind string, a, b int64) {
		e.ring.Emit(kind, lane, -1, a, b)
	}
}

// emit records one control-plane trace event; a no-op when tracing is
// off.
func (e *ShardedEngine[L, RT]) emit(kind string, shard int, group int64, a, b int64) {
	e.ring.Emit(kind, shard, group, a, b)
}

// laneProbe adapts a Lane to the adapt.Probe sampling interface.
type laneProbe[L, RT any] struct{ l *shard.Lane[L, RT] }

func (p laneProbe[L, RT]) Results() uint64 { return p.l.Collected() }
func (p laneProbe[L, RT]) QueueDepth() int { return p.l.QueueDepth() }

// ingressFloor returns the minimum ingress timestamp over both sides:
// every future tuple of either side is stamped at or above it.
func (e *ShardedEngine[L, RT]) ingressFloor() int64 {
	r, s := e.rLastAt.Load(), e.sLastAt.Load()
	if s < r {
		r = s
	}
	return r
}

// PushR submits an R tuple. Safe for concurrent use; concurrent
// callers must still jointly respect the per-stream timestamp
// monotonicity (the driver serializes them in lock-acquisition order).
// Semantically a one-element PushRBatch, on a dedicated single-tuple
// path that skips the fan-out machinery (the oracle suites pin the
// two paths to the same results, Ordered sequence and counters).
func (e *ShardedEngine[L, RT]) PushR(payload L, ts int64) error {
	e.rmu.Lock()
	if e.closed.Load() {
		e.rmu.Unlock()
		return fmt.Errorf("handshakejoin: engine closed")
	}
	if ts < e.rLastTS {
		e.rmu.Unlock()
		return fmt.Errorf("handshakejoin: R timestamp regressed: %d after %d", ts, e.rLastTS)
	}
	// Admission control runs before the WAL append: a rejected push
	// was never logged, so replay cannot resurrect it.
	if err := e.guard.admit(1, e.dur.replaying.Load()); err != nil {
		e.rmu.Unlock()
		return err
	}
	if e.dur.active() {
		// Log before any state changes, under the side lock so the WAL
		// order of one side is the admission order.
		if err := e.dur.appendR1(payload, ts); err != nil {
			e.rmu.Unlock()
			return err
		}
	}
	e.rLastTS = ts
	e.rLastAt.Store(ts)
	var lane int
	var group uint32
	probeLane := -1
	if e.adaptive {
		lane, group = e.router.Admit(stream.R, e.keyR(payload), e.rCnt, ts+e.rDur, e.rDur > 0)
		probeLane = e.router.ProbeLane(group)
	} else {
		lane = e.router.Of(e.keyR(payload))
	}
	seq := e.rSeq.Load()
	e.rSeq.Store(seq + 1)
	t := stream.Tuple[L]{Seq: seq, TS: ts, Wall: e.clk.Now(), Home: stream.NoHome, Payload: payload}
	e.rWin.onArrival(t.Seq, ts, lane, group, e.expireROne)
	e.activity[lane].Add(1)
	raiseInt64(&e.laneTS[lane], ts)
	gate := e.gates[lane][0]
	ticket := gate.issue()
	// The group is mid-handoff: its window state is split between two
	// lanes. The arrival is stored and probed at its new lane above;
	// a probe-only double-read covers the slices still on the old one.
	// Both tickets are issued under the side lock, so ticket order on
	// every gate agrees with stream order and the two-gate walk cannot
	// deadlock. The double-read does not count as lane activity:
	// probe-only arrivals advance no high-water mark, so a source lane
	// living on double-reads alone still needs its heartbeat to keep
	// the merged punctuation floor — and Ordered-mode output — moving
	// while the handoff is open (the heartbeat's flush-and-quiesce
	// retires in-flight probes before promising, so the promise stays
	// sound), and Stats.ShardIngress keeps counting routed tuples
	// only.
	var pGate *ingressGate
	var pTicket uint64
	if probeLane >= 0 {
		pGate = e.gates[probeLane][0]
		pTicket = pGate.issue()
	}
	e.rmu.Unlock()

	gate.enter(ticket)
	e.lanes[lane].PushR(t)
	gate.leave()
	if pGate != nil {
		pGate.enter(pTicket)
		e.lanes[probeLane].ProbeR(t)
		pGate.leave()
	}
	return e.dur.maybeAutoCheckpoint(e.Checkpoint)
}

// PushS submits an S tuple. Safe for concurrent use.
func (e *ShardedEngine[L, RT]) PushS(payload RT, ts int64) error {
	e.smu.Lock()
	if e.closed.Load() {
		e.smu.Unlock()
		return fmt.Errorf("handshakejoin: engine closed")
	}
	if ts < e.sLastTS {
		e.smu.Unlock()
		return fmt.Errorf("handshakejoin: S timestamp regressed: %d after %d", ts, e.sLastTS)
	}
	// Admission control before the WAL append; see PushR.
	if err := e.guard.admit(1, e.dur.replaying.Load()); err != nil {
		e.smu.Unlock()
		return err
	}
	if e.dur.active() {
		if err := e.dur.appendS1(payload, ts); err != nil {
			e.smu.Unlock()
			return err
		}
	}
	e.sLastTS = ts
	e.sLastAt.Store(ts)
	var lane int
	var group uint32
	probeLane := -1
	if e.adaptive {
		lane, group = e.router.Admit(stream.S, e.keyS(payload), e.sCnt, ts+e.sDur, e.sDur > 0)
		probeLane = e.router.ProbeLane(group)
	} else {
		lane = e.router.Of(e.keyS(payload))
	}
	seq := e.sSeq.Load()
	e.sSeq.Store(seq + 1)
	t := stream.Tuple[RT]{Seq: seq, TS: ts, Wall: e.clk.Now(), Home: stream.NoHome, Payload: payload}
	e.sWin.onArrival(t.Seq, ts, lane, group, e.expireSOne)
	e.activity[lane].Add(1)
	raiseInt64(&e.laneTS[lane], ts)
	gate := e.gates[lane][1]
	ticket := gate.issue()
	// Probe-only double-read during a handoff; see PushR (including
	// why it must not count as lane activity).
	var pGate *ingressGate
	var pTicket uint64
	if probeLane >= 0 {
		pGate = e.gates[probeLane][1]
		pTicket = pGate.issue()
	}
	e.smu.Unlock()

	gate.enter(ticket)
	e.lanes[lane].PushS(t)
	gate.leave()
	if pGate != nil {
		pGate.enter(pTicket)
		e.lanes[probeLane].ProbeS(t)
		pGate.leave()
	}
	return e.dur.maybeAutoCheckpoint(e.Checkpoint)
}

// PushRBatch submits a batch of R tuples in non-decreasing timestamp
// order under one admission: one side-lock acquisition, one routing
// pass (adapt.Router.AdmitBatch locks each touched stripe once), one
// window-accounting pass with per-lane bulk expiry scheduling, and —
// per destination shard — one gate ticket and one bulk hand-off that
// replays the exact per-tuple flush schedule. Probe-only double-reads
// of in-handoff groups ride as one slice message per (batch, source
// lane) instead of one message per arrival. Results, and the
// Ordered-mode sequence, are exactly those of pushing the elements one
// by one; all tuples of a batch share one admission wall-clock stamp.
// Safe for concurrent use, with the same joint-monotonicity contract
// as PushR; a timestamp regression anywhere in the batch rejects the
// whole batch before any state changes.
func (e *ShardedEngine[L, RT]) PushRBatch(batch []Stamped[L]) error {
	if len(batch) == 0 {
		return nil
	}
	e.rmu.Lock()
	return e.pushRBatchLocked(batch)
}

// PushSBatch submits a batch of S tuples; see PushRBatch.
func (e *ShardedEngine[L, RT]) PushSBatch(batch []Stamped[RT]) error {
	if len(batch) == 0 {
		return nil
	}
	e.smu.Lock()
	return e.pushSBatchLocked(batch)
}

// pushRBatchLocked admits one R caller batch. The caller holds rmu;
// the method releases it before the gate walk, so a lane append
// blocked on back-pressure stalls only pushers bound for the same
// lanes, exactly like the per-tuple path.
func (e *ShardedEngine[L, RT]) pushRBatchLocked(batch []Stamped[L]) error {
	if e.closed.Load() {
		e.rmu.Unlock()
		return fmt.Errorf("handshakejoin: engine closed")
	}
	last := e.rLastTS
	for i := range batch {
		if batch[i].TS < last {
			e.rmu.Unlock()
			return fmt.Errorf("handshakejoin: R timestamp regressed: %d after %d", batch[i].TS, last)
		}
		last = batch[i].TS
	}
	// Batch-atomic admission control before the WAL append; see PushR.
	if err := e.guard.admit(len(batch), e.dur.replaying.Load()); err != nil {
		e.rmu.Unlock()
		return err
	}
	if e.dur.active() {
		// Log before any state changes; see PushR.
		if err := e.dur.appendR(batch); err != nil {
			e.rmu.Unlock()
			return err
		}
	}
	n := len(batch)
	sc := &e.rsc
	sc.ensure(n, len(e.lanes))
	for i := range batch {
		sc.keys[i] = e.keyR(batch[i].Payload)
		sc.tss[i] = batch[i].TS
	}
	e.rLastTS = last
	// The atomic ingress mirror advances only to the batch's first
	// timestamp here: it must stay a lower bound on every tuple not
	// yet inside a lane, and this batch's earlier tuples are about to
	// spend time in the gate walk (with only the first timestamp
	// published, a heartbeat that races the walk can promise nothing
	// the in-flight tuples would violate). It catches up to the last
	// timestamp once the walk completes.
	e.rLastAt.Store(sc.tss[0])
	e.router.AdmitBatch(stream.R, sc.keys, e.rCnt, sc.tss, e.rDur, sc.lanes, sc.groups, sc.probes)
	seq0 := e.rSeq.Load()
	e.rSeq.Store(seq0 + uint64(n))
	e.rWin.onArrivalBulk(seq0, sc.tss, sc.lanes, sc.groups, e.expireRBulk)
	if len(sc.relG) > 0 {
		e.router.ObserveCountExpireBulk(stream.R, sc.relG, sc.relDue)
		sc.relG = sc.relG[:0]
		sc.relDue = sc.relDue[:0]
	}
	for lane := range e.lanes {
		if len(sc.dur[lane]) > 0 || len(sc.cnt[lane]) > 0 {
			e.lanes[lane].QueueExpiryBulk(stream.R, sc.dur[lane], sc.cnt[lane])
			sc.dur[lane] = sc.dur[lane][:0]
			sc.cnt[lane] = sc.cnt[lane][:0]
		}
	}
	now := e.clk.Now()
	plan := e.rPlans.Get().(*fanPlan[L])
	plan.reset(len(e.lanes))
	for i := range batch {
		t := stream.Tuple[L]{Seq: seq0 + uint64(i), TS: sc.tss[i], Wall: now, Home: stream.NoHome, Payload: batch[i].Payload}
		lane := sc.lanes[i]
		plan.mark(lane)
		plan.full[lane] = append(plan.full[lane], t)
		// The tuple's group is mid-handoff: its window state is split
		// between two lanes. The arrival is stored and probed at its
		// new lane; the probe-only slice covers the window slices still
		// on the old one. Double-reads count neither as lane activity
		// nor toward Stats.ShardIngress (probe-only arrivals advance no
		// high-water mark, so the source lane still needs its heartbeat
		// while the handoff is open).
		if p := sc.probes[i]; p >= 0 {
			plan.mark(p)
			plan.probe[p] = append(plan.probe[p], t)
		}
	}
	// One ticket per touched lane, all issued under the side lock, so
	// ticket order on every gate agrees with stream order: the pusher
	// with the earliest serial section precedes later pushers on every
	// shared gate, and the multi-gate walk cannot deadlock.
	sort.Ints(plan.touched)
	for _, lane := range plan.touched {
		if nf := len(plan.full[lane]); nf > 0 {
			e.activity[lane].Add(uint64(nf))
			raiseInt64(&e.laneTS[lane], plan.full[lane][nf-1].TS)
		}
		plan.tickets[lane] = e.gates[lane][0].issue()
	}
	e.rmu.Unlock()

	for _, lane := range plan.touched {
		g := e.gates[lane][0]
		g.enter(plan.tickets[lane])
		e.lanes[lane].IngestR(plan.full[lane], plan.probe[lane])
		g.leave()
	}
	raiseInt64(&e.rLastAt, last)
	e.rPlans.Put(plan)
	return e.dur.maybeAutoCheckpoint(e.Checkpoint)
}

// pushSBatchLocked is the S-side mirror of pushRBatchLocked.
func (e *ShardedEngine[L, RT]) pushSBatchLocked(batch []Stamped[RT]) error {
	if e.closed.Load() {
		e.smu.Unlock()
		return fmt.Errorf("handshakejoin: engine closed")
	}
	last := e.sLastTS
	for i := range batch {
		if batch[i].TS < last {
			e.smu.Unlock()
			return fmt.Errorf("handshakejoin: S timestamp regressed: %d after %d", batch[i].TS, last)
		}
		last = batch[i].TS
	}
	// Batch-atomic admission control before the WAL append; see PushR.
	if err := e.guard.admit(len(batch), e.dur.replaying.Load()); err != nil {
		e.smu.Unlock()
		return err
	}
	if e.dur.active() {
		if err := e.dur.appendS(batch); err != nil {
			e.smu.Unlock()
			return err
		}
	}
	n := len(batch)
	sc := &e.ssc
	sc.ensure(n, len(e.lanes))
	for i := range batch {
		sc.keys[i] = e.keyS(batch[i].Payload)
		sc.tss[i] = batch[i].TS
	}
	e.sLastTS = last
	e.sLastAt.Store(sc.tss[0]) // see pushRBatchLocked
	e.router.AdmitBatch(stream.S, sc.keys, e.sCnt, sc.tss, e.sDur, sc.lanes, sc.groups, sc.probes)
	seq0 := e.sSeq.Load()
	e.sSeq.Store(seq0 + uint64(n))
	e.sWin.onArrivalBulk(seq0, sc.tss, sc.lanes, sc.groups, e.expireSBulk)
	if len(sc.relG) > 0 {
		e.router.ObserveCountExpireBulk(stream.S, sc.relG, sc.relDue)
		sc.relG = sc.relG[:0]
		sc.relDue = sc.relDue[:0]
	}
	for lane := range e.lanes {
		if len(sc.dur[lane]) > 0 || len(sc.cnt[lane]) > 0 {
			e.lanes[lane].QueueExpiryBulk(stream.S, sc.dur[lane], sc.cnt[lane])
			sc.dur[lane] = sc.dur[lane][:0]
			sc.cnt[lane] = sc.cnt[lane][:0]
		}
	}
	now := e.clk.Now()
	plan := e.sPlans.Get().(*fanPlan[RT])
	plan.reset(len(e.lanes))
	for i := range batch {
		t := stream.Tuple[RT]{Seq: seq0 + uint64(i), TS: sc.tss[i], Wall: now, Home: stream.NoHome, Payload: batch[i].Payload}
		lane := sc.lanes[i]
		plan.mark(lane)
		plan.full[lane] = append(plan.full[lane], t)
		if p := sc.probes[i]; p >= 0 {
			plan.mark(p)
			plan.probe[p] = append(plan.probe[p], t)
		}
	}
	sort.Ints(plan.touched)
	for _, lane := range plan.touched {
		if nf := len(plan.full[lane]); nf > 0 {
			e.activity[lane].Add(uint64(nf))
			raiseInt64(&e.laneTS[lane], plan.full[lane][nf-1].TS)
		}
		plan.tickets[lane] = e.gates[lane][1].issue()
	}
	e.smu.Unlock()

	for _, lane := range plan.touched {
		g := e.gates[lane][1]
		g.enter(plan.tickets[lane])
		e.lanes[lane].IngestS(plan.full[lane], plan.probe[lane])
		g.leave()
	}
	raiseInt64(&e.sLastAt, last)
	e.sPlans.Put(plan)
	return e.dur.maybeAutoCheckpoint(e.Checkpoint)
}

// raiseInt64 lifts an atomic to ts if larger (lane watermarks are fed
// by both sides, whose timestamps are only monotonic separately).
func raiseInt64(a *atomic.Int64, ts int64) {
	for {
		cur := a.Load()
		if ts <= cur || a.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// heartbeatLoop ticks idle lanes with the engine-wide ingress floor so
// their punctuation promises — and their windows — keep advancing
// without traffic. The floor is snapshotted before the per-lane
// activity counters: a push that slips past the activity check was
// necessarily admitted after the snapshot, so its timestamp is >= the
// floor and the heartbeat's promise stays sound.
func (e *ShardedEngine[L, RT]) heartbeatLoop() {
	defer e.bg.Done()
	t := time.NewTicker(e.hbPeriod)
	defer t.Stop()
	prev := make([]uint64, len(e.lanes))
	stalled := make([]bool, len(e.lanes))
	// Watchdog state (AdaptConfig.StallWatchdog): the merged floor's
	// last observed value and how many consecutive ticks it has failed
	// to advance while ingress was ahead of it.
	wdTicks := 0
	wdThreshold := 0
	if e.watchdog > 0 {
		wdThreshold = int((e.watchdog + e.hbPeriod - 1) / e.hbPeriod)
		if wdThreshold < 1 {
			wdThreshold = 1
		}
	}
	lastFloor := int64(math.MinInt64)
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
		}
		floor := e.ingressFloor()
		if wdThreshold > 0 {
			e.watchFloor(floor, &lastFloor, &wdTicks, wdThreshold)
		}
		if floor == minTS {
			continue // a side has not pushed yet: no promise possible
		}
		for i, l := range e.lanes {
			if cur := e.activity[i].Load(); cur != prev[i] {
				prev[i] = cur // lane saw traffic this period
				stalled[i] = false
				continue
			}
			if !e.gates[i][0].drained() || !e.gates[i][1].drained() {
				continue // an admitted push is still entering the lane
			}
			l.Heartbeat(floor)
			// An idle lane started needing heartbeats to keep the
			// punctuation floor moving — the stall signal operators watch
			// when Ordered output seems stuck. Edge-triggered: one event
			// per stall episode, not one per heartbeat tick, so a long
			// idle period cannot wash the handoff history out of the
			// bounded trace ring.
			if !stalled[i] {
				stalled[i] = true
				e.emit("heartbeat_stall", i, -1, floor, 0)
			}
		}
	}
}

// watchFloor is the heartbeat loop's stall watchdog: one tick of
// comparing the merged punctuation floor against ingress. The floor
// advancing (or nothing being owed — ingress at or behind the floor)
// resets the stall count; threshold consecutive stalled ticks set
// Health().FloorStalled and emit floor_stalled, both edge-triggered
// and cleared with a floor_recovered event when the floor moves again.
func (e *ShardedEngine[L, RT]) watchFloor(ingress int64, lastFloor *int64, ticks *int, threshold int) {
	merged := e.merge.Floor()
	if merged > *lastFloor {
		*lastFloor = merged
		*ticks = 0
		if e.floorStalled.Swap(false) {
			e.emit("floor_recovered", -1, -1, merged, 0)
		}
		return
	}
	if ingress == minTS || merged >= ingress {
		*ticks = 0 // nothing admitted beyond the floor: no promise owed
		return
	}
	*ticks++
	if *ticks >= threshold && !e.floorStalled.Swap(true) {
		e.emit("floor_stalled", -1, -1, merged, ingress)
	}
}

// Rebalance runs one adaptive control cycle synchronously — sample,
// plan, attempt pending cut-overs, and (with Adapt.Migration) escalate
// stalled moves to state migrations — and reports how many key-group
// moves it proposed and applied. It is a no-op unless Adapt.Enable is
// set; with a negative Adapt.SamplePeriod it is the only driver of the
// control loop, which makes rebalancing points deterministic for tests
// and batch loads.
func (e *ShardedEngine[L, RT]) Rebalance() (proposed, applied int) {
	if e.ctrl == nil || e.closed.Load() {
		return 0, 0
	}
	return e.ctrl.Step()
}

// Migrate moves key-group group to shard to by live state migration,
// without waiting for the group to drain: both ingress sides are
// frozen, the group's window tuples and pending expiries leave the old
// shard's pipeline under a consistent cut, the routing table is
// swapped, and the state replays into the new shard's pipeline as
// store-only arrivals. It returns the number of window tuples moved.
// The result multiset and the Ordered-mode sequence are unaffected.
//
// Migrate is deterministic given the push schedule — the cut happens
// exactly between the pushes that surround the call — which is what
// the oracle test suites rely on. The adaptive control loop performs
// the same operation autonomously when Adapt.Migration is enabled.
func (e *ShardedEngine[L, RT]) Migrate(group uint32, to int) (int, error) {
	return e.migrate(group, to, 0)
}

// migrate implements Migrate under an optional tuple budget (max > 0):
// a group holding more than max live tuples is refused before any
// state is touched, so the control loop's per-cycle budget bounds the
// ingress stall.
func (e *ShardedEngine[L, RT]) migrate(group uint32, to int, max int) (int, error) {
	if err := e.checkMigrationTarget(group, to); err != nil {
		return 0, err
	}
	e.rmu.Lock()
	defer e.rmu.Unlock()
	e.smu.Lock()
	defer e.smu.Unlock()
	if e.closed.Load() {
		return 0, fmt.Errorf("handshakejoin: engine closed")
	}
	if e.router.InHandoff(group) {
		return 0, fmt.Errorf("handshakejoin: Migrate: group %d has an incremental handoff in flight", group)
	}
	from := e.router.Partitioner().ShardOfGroup(group)
	if from == to {
		return 0, nil
	}
	defer e.recordStall(time.Now())
	// Freeze: with both side locks held no tuple can be admitted;
	// drain the ingress gates so in-flight pushes have fully entered
	// their lanes before the cut.
	e.drainGates()
	matchR := func(p L) bool { return e.router.GroupOf(e.keyR(p)) == group }
	matchS := func(p RT) bool { return e.router.GroupOf(e.keyS(p)) == group }
	st, n, err := e.lanes[from].Extract(matchR, matchS, max)
	if err != nil {
		return n, err
	}
	// Swap the route. A concurrent drain cut-over of the same group
	// cannot interleave destructively: Relocate serializes on the
	// router's control mutex and cancels the pending move.
	e.router.Relocate(group, to)
	if n > 0 {
		e.rebindAndInject(st, to)
	}
	e.stateMigrations.Add(1)
	e.migratedTuples.Add(uint64(n))
	e.freezeStalls.Add(1)
	e.emit("migrate_freeze", to, int64(group), int64(n), int64(from))
	return n, nil
}

// checkMigrationTarget validates a migration's group and shard.
func (e *ShardedEngine[L, RT]) checkMigrationTarget(group uint32, to int) error {
	if int(group) >= e.router.Groups() {
		return fmt.Errorf("handshakejoin: Migrate: group %d out of range [0,%d)", group, e.router.Groups())
	}
	if to < 0 || to >= len(e.lanes) {
		return fmt.Errorf("handshakejoin: Migrate: shard %d out of range [0,%d)", to, len(e.lanes))
	}
	return nil
}

// rebindAndInject re-attributes the moved tuples' future count-bound
// expiries to their new lane and replays the state there. Callers hold
// both side locks.
func (e *ShardedEngine[L, RT]) rebindAndInject(st *shard.GroupState[L, RT], to int) {
	rSeqs := make(map[uint64]struct{}, len(st.R))
	for _, t := range st.R {
		rSeqs[t.Seq] = struct{}{}
	}
	sSeqs := make(map[uint64]struct{}, len(st.S))
	for _, t := range st.S {
		sSeqs[t.Seq] = struct{}{}
	}
	e.rWin.rebind(rSeqs, to)
	e.sWin.rebind(sSeqs, to)
	e.lanes[to].InjectSlice(st)
}

// recordStall folds one migration operation's ingress-freeze duration
// into the stall high-water mark; call via defer with the instant the
// freeze began.
func (e *ShardedEngine[L, RT]) recordStall(start time.Time) {
	ns := time.Since(start).Nanoseconds()
	for {
		cur := e.maxStallNs.Load()
		if ns <= cur || e.maxStallNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// BeginMigration commits an incremental (non-freezing) migration of
// key-group group to shard to: the routing table swaps — every arrival
// of the group admitted afterwards lands on the new shard as an
// ordinary full arrival — and until the migration finishes each of the
// group's arrivals is additionally duplicated as a probe-only read to
// the old shard, so pairs against the window slices still parked there
// are found exactly once (the probe-only copy stores nothing and the
// slices move atomically between probe visibility on the two lanes).
// The group's window tuples then move in bounded hops via
// AdvanceMigration; MigrateIncremental wraps the whole protocol.
//
// The commit itself freezes ingress only long enough to flush and
// settle the old shard's in-flight arrivals — work bounded by the
// batch size and the pipeline's in-flight cap, independent of the
// group's window footprint. Requires Adapt.Enable (the probe
// duplication runs on the adaptive admission path).
func (e *ShardedEngine[L, RT]) BeginMigration(group uint32, to int) error {
	return e.beginHandoff(group, to)
}

func (e *ShardedEngine[L, RT]) beginHandoff(group uint32, to int) error {
	if err := e.checkMigrationTarget(group, to); err != nil {
		return err
	}
	if !e.adaptive {
		return fmt.Errorf("handshakejoin: incremental migration requires Adapt.Enable")
	}
	e.rmu.Lock()
	defer e.rmu.Unlock()
	e.smu.Lock()
	defer e.smu.Unlock()
	if e.closed.Load() {
		return fmt.Errorf("handshakejoin: engine closed")
	}
	if e.router.InHandoff(group) {
		return fmt.Errorf("handshakejoin: group %d already has a handoff in flight", group)
	}
	from := e.router.Partitioner().ShardOfGroup(group)
	if from == to {
		return fmt.Errorf("handshakejoin: group %d already lives on shard %d", group, to)
	}
	defer e.recordStall(time.Now())
	e.drainGates()
	// Settle the source once: the group's pre-handoff arrivals leave
	// the batch buffers and the in-flight links, their expedition
	// flags clear and the IWS empties — from here on, probe-only
	// double-reads see exactly the group's settled window state, and
	// no full arrival of the group ever enters this lane again.
	e.lanes[from].Settle()
	if _, ok := e.router.BeginHandoff(group, to); !ok {
		return fmt.Errorf("handshakejoin: group %d handoff refused", group)
	}
	e.emit("handoff_begin", to, int64(group), int64(from), 0)
	return nil
}

// AdvanceMigration moves one bounded slice — at most
// Adapt.Migration.SliceTuples of the group's oldest window tuples —
// from the old shard to the new one, returning the number moved and
// whether the migration is complete (the old shard holds none of the
// group's state; the probe duplication has been switched off). Each
// call freezes ingress only for its one slice plus two bounded
// pipeline settles, so a mega-group relocates without ever stalling
// the source shard for the whole copy.
func (e *ShardedEngine[L, RT]) AdvanceMigration(group uint32) (moved int, done bool, err error) {
	return e.advanceHandoff(group, e.sliceTuples)
}

func (e *ShardedEngine[L, RT]) advanceHandoff(group uint32, maxTuples int) (moved int, done bool, err error) {
	e.rmu.Lock()
	defer e.rmu.Unlock()
	e.smu.Lock()
	defer e.smu.Unlock()
	if e.closed.Load() {
		return 0, false, fmt.Errorf("handshakejoin: engine closed")
	}
	from := e.router.ProbeLane(group)
	if from < 0 {
		return 0, false, fmt.Errorf("handshakejoin: group %d has no handoff in flight", group)
	}
	to := e.router.Partitioner().ShardOfGroup(group)
	defer e.recordStall(time.Now())
	e.drainGates()
	matchR := func(p L) bool { return e.router.GroupOf(e.keyR(p)) == group }
	matchS := func(p RT) bool { return e.router.GroupOf(e.keyS(p)) == group }
	// ExtractSlice retires the in-flight probe-only double-reads (they
	// must finish probing the tuples about to leave), then removes the
	// oldest slice.
	st, remaining, err := e.lanes[from].ExtractSlice(matchR, matchS, maxTuples)
	if err != nil {
		return 0, false, err
	}
	moved = st.Tuples()
	if moved > 0 {
		// Settle the destination before the copies land: an in-flight
		// full arrival of the group already saw this slice through its
		// probe-only double-read on the source, so it must finish
		// probing the destination while the slice is still absent — or
		// a pair would be emitted twice.
		e.lanes[to].Settle()
		e.rebindAndInject(st, to)
		e.sliceMigrations.Add(1)
		e.migratedTuples.Add(uint64(moved))
		e.emit("slice_hop", to, int64(group), int64(moved), int64(remaining))
	}
	if remaining == 0 {
		e.router.FinishHandoff(group)
		e.stateMigrations.Add(1)
		e.emit("handoff_settle", to, int64(group), int64(moved), int64(from))
		return moved, true, nil
	}
	return moved, false, nil
}

// MigrateIncremental relocates key-group group to shard to by
// incremental slice migration, running BeginMigration and then
// AdvanceMigration to completion. Unlike Migrate it never freezes
// ingress for the whole group: between hops both lanes serve arrivals
// live, with the router double-reading the group's probes. It returns
// the number of window tuples moved. The result multiset and the
// Ordered-mode sequence are unaffected, and the cut points are
// deterministic given the push schedule.
func (e *ShardedEngine[L, RT]) MigrateIncremental(group uint32, to int) (int, error) {
	if err := e.checkMigrationTarget(group, to); err != nil {
		return 0, err
	}
	if e.adaptive && !e.router.InHandoff(group) && e.router.Partitioner().ShardOfGroup(group) == to {
		return 0, nil
	}
	if err := e.beginHandoff(group, to); err != nil {
		return 0, err
	}
	total := 0
	for {
		n, done, err := e.advanceHandoff(group, e.sliceTuples)
		total += n
		if err != nil {
			return total, err
		}
		if done {
			return total, nil
		}
	}
}

// drainGates waits until every issued ingress ticket has completed.
// Callers must prevent new tickets from being issued (hold both side
// locks, or have marked the engine closed).
func (e *ShardedEngine[L, RT]) drainGates() {
	for i := range e.gates {
		e.gates[i][0].waitDrained()
		e.gates[i][1].waitDrained()
	}
}

// Tick advances stream time to ts on every shard without submitting a
// tuple: partial batches are flushed, the pipelines settle, and
// expiries due by ts are injected. Safe for concurrent use with
// pushes.
func (e *ShardedEngine[L, RT]) Tick(ts int64) {
	e.rmu.Lock()
	defer e.rmu.Unlock()
	e.smu.Lock()
	defer e.smu.Unlock()
	if e.closed.Load() {
		return
	}
	e.drainGates() // in-flight pushes precede the tick in stream order
	if e.dur.active() {
		// Both side locks are held, so the tick's WAL position matches
		// its stream position. Tick cannot report errors; a failed
		// append surfaces on the next push or checkpoint.
		e.dur.appendTick(ts) //nolint:errcheck
	}
	for _, l := range e.lanes {
		l.Tick(ts)
	}
}

// Close flushes buffered batches on every shard, waits for the
// pipelines to quiesce, stops the control loops and all goroutines,
// and releases remaining ordered output. The engine cannot be reused
// afterwards.
func (e *ShardedEngine[L, RT]) Close() error {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.closed.Load() {
		return nil
	}
	e.rmu.Lock()
	e.smu.Lock()
	e.closed.Store(true)
	e.rmu.Unlock()
	e.smu.Unlock()
	e.drainGates()
	close(e.stop)
	e.bg.Wait() // heartbeat and controller must not touch closing lanes
	for _, l := range e.lanes {
		l.Close()
	}
	if e.sorter != nil {
		e.sortMu.Lock()
		e.sorter.Flush()
		e.sortMu.Unlock()
	}
	if e.obsSrv != nil {
		e.obsSrv.Close()
	}
	e.dur.closeLog()
	return nil
}

// Checkpoint implements Joiner.Checkpoint: it freezes admission just
// long enough to capture a consistent cut — both side locks, gates
// drained, every lane snapshotted under its own quiesce, result queues
// drained into the sorter, and the routing table read under the same
// cut — then releases the locks and writes the files off the ingress
// path. Safe to call from any goroutine, concurrently with pushes.
func (e *ShardedEngine[L, RT]) Checkpoint(dir string) error {
	if e.dur.log == nil {
		return fmt.Errorf("handshakejoin: Checkpoint requires Config.Durability.WALDir")
	}
	root := dir
	if root == "" {
		root = e.dur.cfg.WALDir
	}
	e.dur.ckptMu.Lock()
	defer e.dur.ckptMu.Unlock()
	start := e.clk.Now()
	e.rmu.Lock()
	e.smu.Lock()
	if e.closed.Load() {
		e.smu.Unlock()
		e.rmu.Unlock()
		return fmt.Errorf("handshakejoin: engine closed")
	}
	e.drainGates()
	e.emit("checkpoint_begin", -1, -1, int64(e.dur.log.Next()), 0)
	snap := engineSnap[L, RT]{
		rSeq:      e.rSeq.Load(),
		sSeq:      e.sSeq.Load(),
		rLastTS:   e.rLastTS,
		sLastTS:   e.sLastTS,
		rWin:      e.rWin.entries(),
		sWin:      e.sWin.entries(),
		lastPunct: -1,
		sharded:   true,
	}
	for _, l := range e.lanes {
		ls, err := l.SnapshotState()
		if err != nil {
			e.smu.Unlock()
			e.rmu.Unlock()
			return err
		}
		snap.lanes = append(snap.lanes, ls)
	}
	// Drain the result queues through the merge into the sorter so
	// every result produced before the cut is either already delivered
	// or sitting in the sorter about to be snapshotted.
	for _, l := range e.lanes {
		l.CollectOnce()
	}
	e.sortMu.Lock()
	if e.sorter != nil {
		snap.ordered = true
		snap.sorter = e.sorter.Snapshot()
		snap.lastPunct = snap.sorter.LastPunct
	}
	// The WAL resume point is read under sortMu, atomically with the
	// sorter snapshot: any output released after this instant has a
	// timestamp >= the manifest's punctuation floor, which is exactly
	// what makes the recovery filter sound.
	walFrom := e.dur.log.Next()
	e.sortMu.Unlock()
	snap.router = e.router.SnapshotState()
	// A checkpoint against a failed or shed WAL re-arms logging under
	// root. It must happen before the side locks release: the first
	// push admitted after the cut already logs to the new log, so the
	// snapshot plus a replay from walFrom is complete. While the WAL
	// was down nothing was appended, so re-reading walFrom from the
	// fresh log keeps it atomic with the sorter snapshot above.
	rearmed := false
	if e.dur.walFailed() {
		if err := e.dur.rearm(root); err != nil {
			e.smu.Unlock()
			e.rmu.Unlock()
			return err
		}
		rearmed = true
		walFrom = e.dur.log.Next()
	}
	e.smu.Unlock()
	e.rmu.Unlock()
	stateBytes, err := e.dur.writeCheckpoint(root, walFrom, &snap)
	if err != nil {
		if rearmed {
			// The re-armed log has no committed checkpoint beneath it;
			// logging to it would acknowledge unrecoverable records.
			e.dur.disarm(err)
		}
		return err
	}
	if root == e.dur.cfg.WALDir {
		if _, err := e.dur.log.TruncateThrough(walFrom); err != nil {
			return err
		}
	}
	durNs := e.clk.Now() - start
	e.dur.lastCkptNs.Store(durNs)
	e.dur.checkpoints.Add(1)
	e.emit("checkpoint_complete", -1, -1, durNs, int64(stateBytes))
	return nil
}

// Restore implements Joiner.Restore: it loads the checkpoint under dir
// (dir "" selects Config.Durability.WALDir) into this freshly built
// engine and replays the WAL tail through the ordinary push paths. No
// pushes may run concurrently.
func (e *ShardedEngine[L, RT]) Restore(dir string) error {
	if e.dur.cfg.DecodeR == nil || e.dur.cfg.DecodeS == nil {
		return fmt.Errorf("handshakejoin: Restore requires the Durability payload codecs")
	}
	if dir == "" {
		dir = e.dur.cfg.WALDir
	}
	if dir == "" {
		return fmt.Errorf("handshakejoin: Restore requires a directory (or Config.Durability.WALDir)")
	}
	e.rmu.Lock()
	e.smu.Lock()
	if e.closed.Load() {
		e.smu.Unlock()
		e.rmu.Unlock()
		return fmt.Errorf("handshakejoin: engine closed")
	}
	if e.rSeq.Load() != 0 || e.sSeq.Load() != 0 || e.rLastTS != minTS || e.sLastTS != minTS {
		e.smu.Unlock()
		e.rmu.Unlock()
		return fmt.Errorf("handshakejoin: Restore requires a fresh engine")
	}
	man, snap, err := e.dur.readCheckpoint(dir)
	if err != nil {
		e.smu.Unlock()
		e.rmu.Unlock()
		return err
	}
	if err := e.router.RestoreState(snap.router); err != nil {
		e.smu.Unlock()
		e.rmu.Unlock()
		return err
	}
	for i, l := range e.lanes {
		l.RestoreState(snap.lanes[i])
	}
	e.rSeq.Store(snap.rSeq)
	e.sSeq.Store(snap.sSeq)
	e.rLastTS, e.sLastTS = snap.rLastTS, snap.sLastTS
	e.rLastAt.Store(snap.rLastTS)
	e.sLastAt.Store(snap.sLastTS)
	e.rWin.restore(snap.rWin)
	e.sWin.restore(snap.sWin)
	if e.sorter != nil && snap.ordered {
		e.sortMu.Lock()
		e.sorter.Restore(snap.sorter)
		e.sortMu.Unlock()
	}
	e.smu.Unlock()
	e.rmu.Unlock()
	e.dur.replaying.Store(true)
	defer e.dur.replaying.Store(false)
	start := e.clk.Now()
	n, err := e.dur.replayWAL(dir, man.WALFrom, e.PushRBatch, e.PushSBatch, e.Tick)
	if err != nil {
		return fmt.Errorf("handshakejoin: wal replay after %d records: %w", n, err)
	}
	if e.guard != nil {
		// Seed the admission bound from the restored footprint: the
		// checkpoint's tuples entered the windows without passing the
		// guard's accounting. Replayed arrivals may still be in flight
		// in the lane pipelines, where the window gauges cannot see
		// them, so quiesce every lane first — otherwise the sampled
		// base undercounts by up to the whole replay volume and the
		// guard admits past the cap.
		for _, ln := range e.lanes {
			ln.Quiesce()
		}
		e.guard.resample()
	}
	e.emit("restore_replay", -1, -1, int64(n), e.clk.Now()-start)
	return nil
}

// Health implements Joiner.Health; safe to call mid-run from any
// goroutine.
func (e *ShardedEngine[L, RT]) Health() Health {
	return Health{
		WALFailed:    e.dur.walFailed(),
		Overloaded:   e.guard.overloaded(),
		FloorStalled: e.floorStalled.Load(),
	}
}

// Stats aggregates run counters across shards. Safe to call mid-run
// from any goroutine: every counter is an atomic, so the read is
// race-free; cumulative totals lag concurrent pushers by at most the
// in-flight batches, and are exact once the engine is closed.
func (e *ShardedEngine[L, RT]) Stats() Stats {
	var agg core.Stats
	for _, l := range e.lanes {
		a := l.PipelineStats()
		agg.Add(a)
	}
	// Read the per-lane routing counters before the admission counters:
	// every push path stores the seq counter first and adds lane
	// activity second, so this read order keeps the conservation
	// invariant Σ ShardIngress <= RIn+SIn visible in every mid-run
	// snapshot (with equality once the engine is quiescent).
	shardIngress := make([]uint64, len(e.lanes))
	for i := range e.activity {
		shardIngress[i] = e.activity[i].Load()
	}
	st := Stats{
		RIn:                 e.rSeq.Load(),
		SIn:                 e.sSeq.Load(),
		Results:             e.merge.Results(),
		Punctuations:        e.merge.Punctuations(),
		Comparisons:         agg.Comparisons,
		ProbeScan:           agg.ProbeScan,
		ProbeHash:           agg.ProbeHash,
		ProbeBTree:          agg.ProbeBTree,
		PendingExpiries:     agg.PendingExpiries,
		ShardResults:        e.merge.ShardResults(),
		Rebalances:          e.router.Rebalances(),
		KeyGroupMoves:       e.router.Applied(),
		StateMigrations:     e.stateMigrations.Load(),
		MigratedTuples:      e.migratedTuples.Load(),
		SliceMigrations:     e.sliceMigrations.Load(),
		SourceFreezeStalls:  e.freezeStalls.Load(),
		MaxMigrationStallNs: e.maxStallNs.Load(),
		StoreSpills:         agg.StoreSpills,
		StoreReanchors:      agg.StoreReanchors,
		StoreCompactions:    agg.StoreCompactions,
		StoreParks:          agg.StoreParks,
		StoreOverflow:       agg.StoreOverflow,
		WALRetries:          e.dur.walRetries.Load(),
		WALSheds:            e.dur.sheds.Load(),
		AdmissionRejects:    e.guard.rejected(),
	}
	st.ShardIngress = shardIngress
	if e.probeTab != nil {
		st.StrategySwitches = e.probeTab.Switches()
	}
	if e.sorter != nil {
		e.sortMu.Lock()
		st.MaxSortBuffer = e.sorter.MaxBuffer()
		e.sortMu.Unlock()
	}
	return st
}

// StatsSnapshot returns a race-safe mid-run view: the cumulative Stats
// plus the live gauges (floor lag, in-flight handoffs, per-shard window
// footprints and expiry depths). Safe to call concurrently with pushes
// from any goroutine.
func (e *ShardedEngine[L, RT]) StatsSnapshot() Snapshot {
	snap := Snapshot{
		Stats:            e.Stats(),
		InFlightHandoffs: e.router.Handoffs(),
		FloorLagNs:       -1,
		LiveWindowR:      make([]int64, len(e.lanes)),
		LiveWindowS:      make([]int64, len(e.lanes)),
		ExpiryDepth:      make([]int64, len(e.lanes)),
	}
	for i, l := range e.lanes {
		ps := l.PipelineStats()
		snap.LiveWindowR[i] = int64(ps.LiveWR)
		snap.LiveWindowS[i] = int64(ps.LiveWS)
		snap.ExpiryDepth[i] = int64(l.ExpiryDepth())
	}
	newest := e.rLastAt.Load()
	if s := e.sLastAt.Load(); s > newest {
		newest = s
	}
	floor := e.merge.Floor()
	if newest != minTS && floor != math.MinInt64 {
		snap.FloorLagNs = newest - floor
	}
	if e.ring != nil {
		snap.NextEventSeq = e.ring.Next()
	}
	if log := e.dur.logHandle(); log != nil {
		snap.WALBytes = log.Bytes()
		snap.Checkpoints = e.dur.checkpoints.Load()
		snap.LastCheckpointNs = e.dur.lastCkptNs.Load()
	}
	snap.Health = e.Health()
	return snap
}

// Events drains the control-plane trace events with sequence >= since,
// oldest first. The ring is bounded: events older than the buffer's
// capacity are overwritten; a caller polling with the previous
// snapshot's NextEventSeq sees every event the ring still holds. Nil
// when tracing is disabled (zero Config.Obs).
func (e *ShardedEngine[L, RT]) Events(since uint64) []TraceEvent {
	if e.ring == nil {
		return nil
	}
	return e.ring.Drain(since)
}

// ObsAddr returns the bound address of the observability endpoint
// ("host:port", useful with Config.Obs.Addr ":0"), or "" when the
// server is disabled.
func (e *ShardedEngine[L, RT]) ObsAddr() string {
	if e.obsSrv == nil {
		return ""
	}
	return e.obsSrv.Addr()
}

// Shards returns the shard count.
func (e *ShardedEngine[L, RT]) Shards() int { return e.router.Shards() }

// KeyGroups returns the size of the routing indirection table.
func (e *ShardedEngine[L, RT]) KeyGroups() int { return e.router.Groups() }
