package handshakejoin

import (
	"fmt"
	"sync"
	"sync/atomic"

	"handshakejoin/internal/clock"
	"handshakejoin/internal/collect"
	"handshakejoin/internal/core"
	"handshakejoin/internal/order"
	"handshakejoin/internal/shard"
	"handshakejoin/internal/stream"
)

// ShardedEngine scales an equi-join across pipelines: both streams are
// hash-partitioned by join key (Config.KeyR/KeyS) over Shards
// independent LLHJ pipelines, each with its own driver state and
// collector, multiplying throughput while every pipeline keeps the
// latency and punctuation guarantees of the single-pipeline operator.
//
// # Semantics
//
// Because the predicate must imply key equality, tuples that could
// ever join are always routed to the same shard, so the sharded result
// multiset is exactly the single-pipeline one. Windows remain global:
// a Count window bounds the total number of in-window tuples across
// all shards, and expiries are routed to the shard owning the tuple.
//
// In Ordered mode, per-shard punctuation streams are merged on their
// high-water marks (internal/shard.Merge over order.PunctFloor): a
// global punctuation ⌈tp⌉ is emitted once every shard has promised tp,
// and the downstream sorter then releases results in exact global
// timestamp order — the same deterministic sequence, independent of
// shard count and scheduling. A shard that receives no traffic holds
// the global punctuation back (its promise cannot advance); Close
// releases everything that is still buffered, in order.
//
// # Concurrency
//
// Unlike Engine, the sharded driver accepts concurrent PushR/PushS
// calls from multiple goroutines: each side is serialized internally
// (sequence numbers, monotonic-timestamp checks and window accounting
// need a total order per stream) and then fans out to the owning
// shard with only a key hash on the hot path. The OnOutput callback
// is serialized by the merge stage but may run on any shard's
// collector goroutine.
type ShardedEngine[L, RT any] struct {
	keyR  func(L) uint64
	keyS  func(RT) uint64
	part  shard.Partitioner
	lanes []*shard.Lane[L, RT]
	merge *shard.Merge[L, RT]

	clk clock.Clock

	rmu        sync.Mutex // serializes the R side: seq, ts check, window accounting
	smu        sync.Mutex // serializes the S side
	rSeq, sSeq uint64
	rLastTS    int64
	sLastTS    int64
	rWin, sWin windowTracker

	sorter  *order.Sorter[L, RT]
	sortMu  sync.Mutex // sorter access: merge callbacks vs Close's final Flush
	closed  atomic.Bool
	closeMu sync.Mutex
}

// newSharded builds and starts a ShardedEngine from a validated
// configuration with cfg.Shards > 1.
func newSharded[L, RT any](cfg Config[L, RT]) (*ShardedEngine[L, RT], error) {
	build, err := builderFor(&cfg)
	if err != nil {
		return nil, err
	}
	e := &ShardedEngine[L, RT]{
		keyR:    cfg.KeyR,
		keyS:    cfg.KeyS,
		part:    shard.NewPartitioner(cfg.Shards),
		clk:     clock.NewWall(),
		rLastTS: -1 << 62,
		sLastTS: -1 << 62,
		rWin:    windowTracker{spec: cfg.WindowR},
		sWin:    windowTracker{spec: cfg.WindowS},
	}
	out := cfg.OnOutput
	if cfg.Ordered {
		var sorted func(Item[L, RT])
		sorted, e.sorter = sortedOutput(cfg.OnOutput)
		out = func(it Item[L, RT]) {
			e.sortMu.Lock()
			defer e.sortMu.Unlock()
			sorted(it)
		}
	}
	e.merge = shard.NewMerge[L, RT](cfg.Shards, func(it collect.Item[L, RT]) { out(it) })
	e.lanes = make([]*shard.Lane[L, RT], cfg.Shards)
	lcfg := laneConfig(&cfg, e.clk, cfg.Punctuate)
	for i := range e.lanes {
		i := i
		e.lanes[i] = shard.NewLane(lcfg, build, func(it collect.Item[L, RT]) {
			e.merge.FromShard(i, it)
		})
	}
	return e, nil
}

// PushR submits an R tuple. Safe for concurrent use; concurrent
// callers must still jointly respect the per-stream timestamp
// monotonicity (the driver serializes them in lock-acquisition order).
func (e *ShardedEngine[L, RT]) PushR(payload L, ts int64) error {
	e.rmu.Lock()
	defer e.rmu.Unlock()
	if e.closed.Load() {
		return fmt.Errorf("handshakejoin: engine closed")
	}
	if ts < e.rLastTS {
		return fmt.Errorf("handshakejoin: R timestamp regressed: %d after %d", ts, e.rLastTS)
	}
	e.rLastTS = ts
	lane := e.part.Of(e.keyR(payload))
	t := stream.Tuple[L]{Seq: e.rSeq, TS: ts, Wall: e.clk.Now(), Home: stream.NoHome, Payload: payload}
	e.rSeq++
	e.rWin.onArrival(t.Seq, ts, lane, e.expireR)
	e.lanes[lane].PushR(t)
	return nil
}

// PushS submits an S tuple. Safe for concurrent use.
func (e *ShardedEngine[L, RT]) PushS(payload RT, ts int64) error {
	e.smu.Lock()
	defer e.smu.Unlock()
	if e.closed.Load() {
		return fmt.Errorf("handshakejoin: engine closed")
	}
	if ts < e.sLastTS {
		return fmt.Errorf("handshakejoin: S timestamp regressed: %d after %d", ts, e.sLastTS)
	}
	e.sLastTS = ts
	lane := e.part.Of(e.keyS(payload))
	t := stream.Tuple[RT]{Seq: e.sSeq, TS: ts, Wall: e.clk.Now(), Home: stream.NoHome, Payload: payload}
	e.sSeq++
	e.sWin.onArrival(t.Seq, ts, lane, e.expireS)
	e.lanes[lane].PushS(t)
	return nil
}

func (e *ShardedEngine[L, RT]) expireR(lane int, seq uint64, due int64, counted bool) {
	e.lanes[lane].QueueExpiry(stream.R, seq, due, counted)
}

func (e *ShardedEngine[L, RT]) expireS(lane int, seq uint64, due int64, counted bool) {
	e.lanes[lane].QueueExpiry(stream.S, seq, due, counted)
}

// Tick advances stream time to ts on every shard without submitting a
// tuple: partial batches are flushed, the pipelines settle, and
// expiries due by ts are injected. Safe for concurrent use with
// pushes.
func (e *ShardedEngine[L, RT]) Tick(ts int64) {
	e.rmu.Lock()
	defer e.rmu.Unlock()
	e.smu.Lock()
	defer e.smu.Unlock()
	if e.closed.Load() {
		return
	}
	for _, l := range e.lanes {
		l.Tick(ts)
	}
}

// Close flushes buffered batches on every shard, waits for the
// pipelines to quiesce, stops all goroutines and releases remaining
// ordered output. The engine cannot be reused afterwards.
func (e *ShardedEngine[L, RT]) Close() error {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.closed.Load() {
		return nil
	}
	e.rmu.Lock()
	e.smu.Lock()
	e.closed.Store(true)
	e.rmu.Unlock()
	e.smu.Unlock()
	for _, l := range e.lanes {
		l.Close()
	}
	if e.sorter != nil {
		e.sortMu.Lock()
		e.sorter.Flush()
		e.sortMu.Unlock()
	}
	return nil
}

// Stats aggregates run counters across shards; call after Close for
// exact values.
func (e *ShardedEngine[L, RT]) Stats() Stats {
	var agg core.Stats
	for _, l := range e.lanes {
		a := l.PipelineStats()
		agg.Add(a)
	}
	e.rmu.Lock()
	rIn := e.rSeq
	e.rmu.Unlock()
	e.smu.Lock()
	sIn := e.sSeq
	e.smu.Unlock()
	st := Stats{
		RIn:             rIn,
		SIn:             sIn,
		Results:         e.merge.Results(),
		Punctuations:    e.merge.Punctuations(),
		Comparisons:     agg.Comparisons,
		PendingExpiries: agg.PendingExpiries,
		ShardResults:    e.merge.ShardResults(),
	}
	if e.sorter != nil {
		e.sortMu.Lock()
		st.MaxSortBuffer = e.sorter.MaxBuffer()
		e.sortMu.Unlock()
	}
	return st
}

// Shards returns the shard count.
func (e *ShardedEngine[L, RT]) Shards() int { return e.part.Shards() }
