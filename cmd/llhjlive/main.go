// Command llhjlive runs the live (goroutine) engine against a real-time
// paced benchmark workload and reports wall-clock throughput and result
// latency — the end-to-end behaviour of this Go implementation on the
// current machine, as opposed to the simulator's paper-scale virtual
// runs in cmd/llhjbench.
//
// Usage:
//
//	llhjlive [-algo llhj|hsj] [-workers N] [-rate TPS] [-window D]
//	         [-batch N] [-duration D] [-ordered] [-index]
//
// Example: compare the two operators at 2000 tuples/s over 5-second
// windows:
//
//	llhjlive -algo hsj  -rate 2000 -window 5s -duration 20s
//	llhjlive -algo llhj -rate 2000 -window 5s -duration 20s
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"handshakejoin"
	"handshakejoin/internal/metrics"
	"handshakejoin/internal/workload"
)

func main() {
	algo := flag.String("algo", "llhj", "llhj or hsj")
	workers := flag.Int("workers", 4, "pipeline workers")
	rate := flag.Float64("rate", 1000, "tuples/second per stream")
	window := flag.Duration("window", 5*time.Second, "sliding window length")
	batch := flag.Int("batch", 64, "driver batch size")
	duration := flag.Duration("duration", 15*time.Second, "run length")
	ordered := flag.Bool("ordered", false, "punctuated ordered output (llhj only)")
	index := flag.Bool("index", false, "node-local hash index, equi-join predicate (llhj only)")
	obsAddr := flag.String("obs", "", "serve the engine's observability endpoint (/metrics, /events, /debug/pprof) on this address for the run")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProf := flag.String("memprofile", "", "write a heap profile to this file on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address for the life of the process")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof endpoint: %v", err)
			}
		}()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		}()
	}

	cfg := handshakejoin.Config[workload.RTuple, workload.STuple]{
		Workers:      *workers,
		WindowR:      handshakejoin.Window{Duration: *window},
		WindowS:      handshakejoin.Window{Duration: *window},
		Batch:        *batch,
		ExpectedRate: *rate,
		Obs:          handshakejoin.ObsConfig{Addr: *obsAddr},
	}
	switch *algo {
	case "llhj":
		cfg.Algorithm = handshakejoin.LLHJ
	case "hsj":
		cfg.Algorithm = handshakejoin.HSJ
	default:
		fmt.Fprintf(os.Stderr, "unknown -algo %q\n", *algo)
		os.Exit(2)
	}
	cfg.Predicate = workload.BandPredicate
	if *index {
		cfg.Predicate = workload.EquiPredicate
		cfg.Index = handshakejoin.HashIndex
		cfg.KeyR = workload.RKey
		cfg.KeyS = workload.SKey
	}
	cfg.Ordered = *ordered

	var mu sync.Mutex
	var hist metrics.Histogram
	var puncts uint64
	cfg.OnOutput = func(it handshakejoin.Item[workload.RTuple, workload.STuple]) {
		mu.Lock()
		defer mu.Unlock()
		if it.Punct {
			puncts++
			return
		}
		hist.Add(it.Result.Latency())
	}

	eng, err := handshakejoin.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if addr := eng.ObsAddr(); addr != "" {
		fmt.Printf("observability endpoint: http://%s/metrics\n", addr)
	}

	gen := workload.NewGenerator(workload.Config{Seed: 42, Domain: 10000, RatePerSec: *rate})
	period := time.Duration(float64(time.Second) / *rate)
	start := time.Now()
	ticker := time.NewTicker(maxDur(period, 100*time.Microsecond))
	defer ticker.Stop()

	var pushed uint64
	fmt.Printf("running %v: %d workers, %.0f tuples/s/stream, %v windows, batch %d, for %v\n",
		cfg.Algorithm, *workers, *rate, *window, *batch, *duration)
	for now := range ticker.C {
		elapsed := now.Sub(start)
		if elapsed > *duration {
			break
		}
		// Push every tuple whose schedule time has passed (the ticker
		// may fire less often than the tuple period).
		due := uint64(elapsed.Seconds() * *rate)
		for pushed < due {
			ts := now.UnixNano()
			r := gen.NextR()
			s := gen.NextS()
			if err := eng.PushR(r.Payload, ts); err != nil {
				log.Fatal(err)
			}
			if err := eng.PushS(s.Payload, ts); err != nil {
				log.Fatal(err)
			}
			pushed++
		}
	}
	wall := time.Since(start)
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}

	st := eng.Stats()
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\npushed %d tuples/stream in %v (%.0f tuples/s achieved)\n",
		st.RIn, wall.Round(time.Millisecond), float64(st.RIn)/wall.Seconds())
	fmt.Printf("results: %d (%d window-entry inspections)\n", st.Results, st.Comparisons)
	if hist.Count() > 0 {
		fmt.Printf("latency: avg %.2fms  p50 %.2fms  p99 %.2fms  max %.2fms\n",
			hist.Mean()/1e6,
			float64(hist.Quantile(0.50))/1e6,
			float64(hist.Quantile(0.99))/1e6,
			float64(hist.Max())/1e6)
	}
	if *ordered {
		fmt.Printf("punctuations: %d, max sort buffer: %d tuples\n", puncts, st.MaxSortBuffer)
	}
	if st.PendingExpiries > 0 {
		fmt.Printf("warning: %d pending expiries (window too small for the in-flight volume)\n",
			st.PendingExpiries)
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
