package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"handshakejoin"
	"handshakejoin/internal/fault"
	"handshakejoin/internal/workload"
)

// recoverExperiment prices the durability subsystem from both ends.
//
// The ingest half reruns the batched-ingress workload (same
// never-matching disjoint-key stream as the ingest experiment, caller
// batches of 64) with durability off and on: the durable row pays the
// WAL append (payload encode, CRC frame, buffered write, periodic
// fsync) plus the auto-checkpoints cut along the way, and the overhead
// column is the relative throughput tax. The acceptance bar is <= 10%.
//
// The restore half measures recovery wall time as a function of state
// size: engines with growing count windows are filled to capacity,
// checkpointed explicitly (which truncates the WAL, so the restore is a
// pure state load with an empty tail), and a fresh engine restores from
// the files. Tracked across PRs via BENCH_recover.json.
type recoverRow struct {
	Mode         string  `json:"mode"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// OverheadPct is the throughput tax relative to the row that differs
	// by exactly one knob: the wal row is measured against baseline (the
	// logging tax) and the wal+checkpoint row against wal (the marginal
	// checkpoint cost, which is the acceptance figure). 0 for baseline.
	OverheadPct float64 `json:"overhead_pct"`
	// WALBytes is the total log volume the run appended (0 when off).
	WALBytes uint64 `json:"wal_bytes"`
	// Checkpoints is how many auto-checkpoints the run cut (0 when off).
	Checkpoints uint64 `json:"checkpoints"`
	// Sheds counts transitions into the degraded durability state
	// (only the degrade row injects a fault, so only it sheds).
	Sheds uint64 `json:"sheds,omitempty"`
}

type restoreRow struct {
	WindowCount int `json:"window_count"`
	// StateBytes is the serialized engine state the checkpoint wrote.
	StateBytes uint64 `json:"state_bytes"`
	// CheckpointMs / RestoreMs are wall milliseconds for the explicit
	// checkpoint cut and for Restore on a fresh engine.
	CheckpointMs float64 `json:"checkpoint_ms"`
	RestoreMs    float64 `json:"restore_ms"`
}

type recoverReport struct {
	Experiment      string `json:"experiment"`
	Shards          int    `json:"shards"`
	WorkersPerShard int    `json:"workers_per_shard"`
	WindowCount     int    `json:"window_count"`
	LaneBatch       int    `json:"lane_batch"`
	CallerBatch     int    `json:"caller_batch"`
	KeyDomain       int    `json:"key_domain"`
	TuplesPerStream int    `json:"tuples_per_stream"`
	SyncEvery       int    `json:"sync_every"`
	CkptBatches     int    `json:"checkpoint_every_batches"`
	Note            string `json:"note"`
	// CheckpointOverheadPct is the acceptance figure: the wal+checkpoint
	// row's throughput tax relative to the wal-only row (<= 10 passes).
	CheckpointOverheadPct float64 `json:"checkpoint_overhead_pct"`
	// SeamOverheadPct is the fault-seam acceptance figure: the wal+seam
	// row (WAL behind an armed, empty fault plan) against the wal row.
	// The seam's steady-state cost is one interface indirection per file
	// op plus an empty rule scan, so the target is ~1%; the gate is a
	// soft <= 10 to ride out single-core CI jitter.
	SeamOverheadPct float64      `json:"seam_overhead_pct"`
	Ingest          []recoverRow `json:"ingest"`
	Restore         []restoreRow `json:"restore"`
}

const (
	recCallerBatch = 64
	// recSyncEvery is the group-commit cadence: one flush+fsync per 1024
	// WAL records = ~66k tuples per side, a ~20ms loss window at this
	// workload's ingest rate — the usual ms-scale group-commit trade.
	recSyncEvery = 1024
	// recCkptBatches auto-checkpoints every 4096 admitted batches, a few
	// cuts over the full run; per-cut cost is priced in the restore rows.
	recCkptBatches = 4096
)

// The encoders reuse per-side scratch buffers: the engine consumes the
// returned bytes before the next call (each side's WAL encode runs
// inside that side's serial section), so a heap allocation per tuple
// would be pure overhead — and would show up directly in the overhead
// column this experiment exists to bound.
var igRScratch, igSScratch [8]byte

func encodeIgR(r igR) []byte {
	binary.LittleEndian.PutUint64(igRScratch[:], r.Key)
	return igRScratch[:]
}

func decodeIgR(b []byte) (igR, error) {
	if len(b) != 8 {
		return igR{}, fmt.Errorf("igR: %d bytes", len(b))
	}
	return igR{Key: binary.LittleEndian.Uint64(b)}, nil
}

func encodeIgS(s igS) []byte {
	binary.LittleEndian.PutUint64(igSScratch[:], s.Key)
	return igSScratch[:]
}

func decodeIgS(b []byte) (igS, error) {
	if len(b) != 8 {
		return igS{}, fmt.Errorf("igS: %d bytes", len(b))
	}
	return igS{Key: binary.LittleEndian.Uint64(b)}, nil
}

func recoverCfg(windowCount int, dur handshakejoin.Durability[igR, igS]) handshakejoin.Config[igR, igS] {
	return handshakejoin.Config[igR, igS]{
		Workers:     ingWorkers,
		Shards:      ingShards,
		Predicate:   func(r igR, s igS) bool { return r.Key == s.Key },
		WindowR:     handshakejoin.Window{Count: windowCount},
		WindowS:     handshakejoin.Window{Count: windowCount},
		Batch:       ingBatch,
		MaxInFlight: 16,
		Index:       handshakejoin.HashIndex,
		KeyR:        func(r igR) uint64 { return r.Key },
		KeyS:        func(s igS) uint64 { return s.Key },
		Durability:  dur,
		Obs:         obsCfg(),
		OnOutput:    func(handshakejoin.Item[igR, igS]) {},
	}
}

func recoverDur(dir string, ckptBatches int) handshakejoin.Durability[igR, igS] {
	return handshakejoin.Durability[igR, igS]{
		WALDir:                 dir,
		SyncEvery:              recSyncEvery,
		CheckpointEveryBatches: ckptBatches,
		EncodeR:                encodeIgR,
		DecodeR:                decodeIgR,
		EncodeS:                encodeIgS,
		DecodeS:                decodeIgS,
	}
}

// runRecoverIngestRow pushes the disjoint-key stream in caller batches
// and reports throughput; with durable set, the engine logs every batch
// and auto-checkpoints every ckptBatches admitted batches (0 = WAL only).
// fs, when non-nil, is threaded through Durability.FS — the wal+seam
// row passes an armed empty fault plan to price the injection seam.
func runRecoverIngestRow(mode string, durable bool, ckptBatches, tuples int, fs fault.FS) (recoverRow, error) {
	var dur handshakejoin.Durability[igR, igS]
	if durable {
		dir, err := os.MkdirTemp("", "llhj-recover-*")
		if err != nil {
			return recoverRow{}, err
		}
		defer os.RemoveAll(dir)
		dur = recoverDur(dir, ckptBatches)
		dur.FS = fs
	}
	eng, err := handshakejoin.New(recoverCfg(ingWindow, dur))
	if err != nil {
		return recoverRow{}, err
	}
	rnd := workload.NewRand(7)
	rKeys := make([]uint64, tuples)
	sKeys := make([]uint64, tuples)
	for i := range rKeys {
		rKeys[i] = uint64(rnd.Intn(ingKeys))
		sKeys[i] = uint64(ingKeys + rnd.Intn(ingKeys)) // disjoint: never matches R
	}
	const period = int64(1e3)
	start := time.Now()
	bufR := make([]handshakejoin.Stamped[igR], 0, recCallerBatch)
	bufS := make([]handshakejoin.Stamped[igS], 0, recCallerBatch)
	for i := 0; i < tuples; i++ {
		ts := int64(i) * period
		bufR = append(bufR, handshakejoin.Stamped[igR]{Payload: igR{Key: rKeys[i]}, TS: ts})
		bufS = append(bufS, handshakejoin.Stamped[igS]{Payload: igS{Key: sKeys[i]}, TS: ts})
		if len(bufR) == recCallerBatch {
			if err := eng.PushRBatch(bufR); err != nil {
				return recoverRow{}, err
			}
			if err := eng.PushSBatch(bufS); err != nil {
				return recoverRow{}, err
			}
			bufR, bufS = bufR[:0], bufS[:0]
		}
	}
	if err := eng.PushRBatch(bufR); err != nil {
		return recoverRow{}, err
	}
	if err := eng.PushSBatch(bufS); err != nil {
		return recoverRow{}, err
	}
	snap := eng.StatsSnapshot()
	if err := eng.Close(); err != nil {
		return recoverRow{}, err
	}
	elapsed := time.Since(start)
	return recoverRow{
		Mode:         mode,
		TuplesPerSec: float64(2*tuples) / elapsed.Seconds(),
		WALBytes:     snap.WALBytes,
		Checkpoints:  snap.Checkpoints,
	}, nil
}

// runRecoverDegradeRow runs the ingest workload with a persistent
// fsync fault injected against the primary WAL directory about a third
// of the way in. With OnError: DurDegrade the engine must shed
// durability and keep serving (Health().WALFailed set, pushes keep
// succeeding); two thirds in, a Checkpoint into a healthy directory
// re-arms the log there and Health must come back clean. Any other
// sequence is an error.
func runRecoverDegradeRow(tuples int) (recoverRow, error) {
	dir1, err := os.MkdirTemp("", "llhj-degrade1-*")
	if err != nil {
		return recoverRow{}, err
	}
	defer os.RemoveAll(dir1)
	dir2, err := os.MkdirTemp("", "llhj-degrade2-*")
	if err != nil {
		return recoverRow{}, err
	}
	defer os.RemoveAll(dir2)

	// Denser group commits than the priced rows so the fault (scoped to
	// dir1's WAL, fired on a mid-run fsync, persistent) lands well
	// before the re-arm point even in the -quick stream.
	const syncEvery = 64
	records := 2 * tuples / recCallerBatch
	nth := records / syncEvery / 3
	if nth < 1 {
		nth = 1
	}
	plan := fault.NewPlan(fault.Rule{
		Op:     fault.OpSync,
		Path:   filepath.Join(dir1, "wal") + string(filepath.Separator),
		Nth:    nth,
		Repeat: true,
		Err:    fault.ErrInjected,
	})
	dur := recoverDur(dir1, 0)
	dur.SyncEvery = syncEvery
	dur.OnError = handshakejoin.DurDegrade
	dur.FS = fault.Inject(nil, plan)

	eng, err := handshakejoin.New(recoverCfg(ingWindow, dur))
	if err != nil {
		return recoverRow{}, err
	}
	rnd := workload.NewRand(13)
	rKeys := make([]uint64, tuples)
	sKeys := make([]uint64, tuples)
	for i := range rKeys {
		rKeys[i] = uint64(rnd.Intn(ingKeys))
		sKeys[i] = uint64(ingKeys + rnd.Intn(ingKeys))
	}
	const period = int64(1e3)
	rearmAt := 2 * tuples / 3
	shed, rearmed := false, false
	start := time.Now()
	bufR := make([]handshakejoin.Stamped[igR], 0, recCallerBatch)
	bufS := make([]handshakejoin.Stamped[igS], 0, recCallerBatch)
	for i := 0; i < tuples; i++ {
		ts := int64(i) * period
		bufR = append(bufR, handshakejoin.Stamped[igR]{Payload: igR{Key: rKeys[i]}, TS: ts})
		bufS = append(bufS, handshakejoin.Stamped[igS]{Payload: igS{Key: sKeys[i]}, TS: ts})
		if len(bufR) == recCallerBatch {
			if err := eng.PushRBatch(bufR); err != nil {
				return recoverRow{}, fmt.Errorf("degrade mode must keep serving, push %d failed: %w", i, err)
			}
			if err := eng.PushSBatch(bufS); err != nil {
				return recoverRow{}, fmt.Errorf("degrade mode must keep serving, push %d failed: %w", i, err)
			}
			bufR, bufS = bufR[:0], bufS[:0]
			if !shed && eng.Health().WALFailed {
				shed = true
			}
			if shed && !rearmed && i >= rearmAt {
				if err := eng.Checkpoint(dir2); err != nil {
					return recoverRow{}, fmt.Errorf("re-arm checkpoint into the healthy dir: %w", err)
				}
				if h := eng.Health(); !h.Ok() {
					return recoverRow{}, fmt.Errorf("health still %v after the re-arm checkpoint", h)
				}
				rearmed = true
			}
		}
	}
	if !shed {
		return recoverRow{}, fmt.Errorf("injected fsync fault (sync #%d, %d records) never shed durability", nth, records)
	}
	if !rearmed {
		return recoverRow{}, fmt.Errorf("shed happened past the re-arm point (%d tuples): widen the stream", rearmAt)
	}
	snap := eng.StatsSnapshot()
	if err := eng.Close(); err != nil {
		return recoverRow{}, err
	}
	elapsed := time.Since(start)
	if snap.WALSheds < 1 {
		return recoverRow{}, fmt.Errorf("Health flagged the shed but WALSheds = %d", snap.WALSheds)
	}
	if !snap.Health.Ok() {
		return recoverRow{}, fmt.Errorf("final health %v, want clean after re-arm", snap.Health)
	}
	return recoverRow{
		Mode:         "degrade",
		TuplesPerSec: float64(2*tuples) / elapsed.Seconds(),
		WALBytes:     snap.WALBytes,
		Checkpoints:  snap.Checkpoints,
		Sheds:        snap.WALSheds,
	}, nil
}

// runRestoreRow fills both windows of a durable engine, cuts an
// explicit checkpoint (truncating the WAL, so the restore that follows
// is a pure state load), and times Restore on a fresh engine.
func runRestoreRow(windowCount int) (restoreRow, error) {
	dir, err := os.MkdirTemp("", "llhj-recover-*")
	if err != nil {
		return restoreRow{}, err
	}
	defer os.RemoveAll(dir)
	// No auto-checkpoints: the explicit cut below is the one measured.
	dur := recoverDur(dir, 0)
	eng, err := handshakejoin.New(recoverCfg(windowCount, dur))
	if err != nil {
		return restoreRow{}, err
	}
	rnd := workload.NewRand(11)
	const period = int64(1e3)
	bufR := make([]handshakejoin.Stamped[igR], 0, recCallerBatch)
	bufS := make([]handshakejoin.Stamped[igS], 0, recCallerBatch)
	for i := 0; i < windowCount; i++ {
		ts := int64(i) * period
		bufR = append(bufR, handshakejoin.Stamped[igR]{Payload: igR{Key: uint64(rnd.Intn(ingKeys))}, TS: ts})
		bufS = append(bufS, handshakejoin.Stamped[igS]{Payload: igS{Key: uint64(ingKeys + rnd.Intn(ingKeys))}, TS: ts})
		if len(bufR) == recCallerBatch {
			if err := eng.PushRBatch(bufR); err != nil {
				return restoreRow{}, err
			}
			if err := eng.PushSBatch(bufS); err != nil {
				return restoreRow{}, err
			}
			bufR, bufS = bufR[:0], bufS[:0]
		}
	}
	if err := eng.PushRBatch(bufR); err != nil {
		return restoreRow{}, err
	}
	if err := eng.PushSBatch(bufS); err != nil {
		return restoreRow{}, err
	}
	ckptStart := time.Now()
	if err := eng.Checkpoint(""); err != nil {
		return restoreRow{}, err
	}
	ckptMs := float64(time.Since(ckptStart)) / float64(time.Millisecond)
	stat, err := handshakejoin.CheckpointInfo(dir)
	if err != nil {
		return restoreRow{}, err
	}
	if err := eng.Close(); err != nil {
		return restoreRow{}, err
	}

	eng2, err := handshakejoin.New(recoverCfg(windowCount, dur))
	if err != nil {
		return restoreRow{}, err
	}
	restStart := time.Now()
	if err := eng2.Restore(""); err != nil {
		return restoreRow{}, err
	}
	restMs := float64(time.Since(restStart)) / float64(time.Millisecond)
	if err := eng2.Close(); err != nil {
		return restoreRow{}, err
	}
	return restoreRow{
		WindowCount:  windowCount,
		StateBytes:   stat.StateBytes,
		CheckpointMs: ckptMs,
		RestoreMs:    restMs,
	}, nil
}

func recoverExperiment() error {
	tuples := 400000
	sizes := []int{4096, 16384, 65536}
	// The quick run shrinks the checkpoint cadence with the stream so it
	// still cuts a few auto-checkpoints (sanity for the CI smoke); the
	// full run keeps the committed-report cadence.
	ckptBatches := recCkptBatches
	if *quick {
		tuples = 60000
		sizes = []int{2048, 8192}
		ckptBatches = 256
	}
	rep := recoverReport{
		Experiment:      "durability",
		Shards:          ingShards,
		WorkersPerShard: ingWorkers,
		WindowCount:     ingWindow,
		LaneBatch:       ingBatch,
		CallerBatch:     recCallerBatch,
		KeyDomain:       ingKeys,
		TuplesPerStream: tuples,
		SyncEvery:       recSyncEvery,
		CkptBatches:     ckptBatches,
		Note: "Ingest: the batched-ingress workload (disjoint keys, " +
			"never-matching hash-indexed predicate, caller batches of 64) " +
			"three ways: durability off, WAL only, and WAL plus " +
			"auto-checkpoints every 4096 admitted batches. The wal row's " +
			"overhead_pct (vs baseline) is the logging tax: encode, CRC " +
			"frame, group-commit buffered write, async fsync per 1024 " +
			"records. At this microbenchmark's rate (~4M tuples/s on one " +
			"core = ~80 MB/s of log) that tax is dominated by raw disk " +
			"write bandwidth — the kernel throttles the writer to the " +
			"device's sustained rate, identically across every fsync " +
			"policy tried — a floor no logger can dodge; real streams at " +
			"paper-scale rates are orders of magnitude below it. The " +
			"wal+checkpoint row's overhead_pct (vs the wal row) is what " +
			"checkpointing itself adds on top of logging — the " +
			"non-freezing cut promise, and the checkpoint_overhead_pct " +
			"acceptance figure (<= 10). The wal+seam row reruns the wal row " +
			"behind an armed, empty fault-injection plan: its overhead_pct " +
			"prices the seam itself against an interleaved wal reference " +
			"(alternating reps sample the same writeback conditions), gated " +
			"soft at <= 10 for CI jitter with a ~1% steady-state target. " +
			"The degrade row is a " +
			"behavior demo: a persistent fsync fault lands ~1/3 in, the " +
			"engine sheds durability (OnError: DurDegrade) without dropping " +
			"a push, and a mid-run Checkpoint into a healthy directory " +
			"re-arms the WAL — Health transitions are asserted, throughput " +
			"is informational. Restore: count windows filled to " +
			"capacity, explicit checkpoint (truncates the WAL, so restore " +
			"is a pure state load), Restore timed on a fresh engine.",
	}
	fmt.Printf("# durability: ingest tax and restore cost, %d shards x %d worker, %d tuples/stream\n",
		ingShards, ingWorkers, tuples)
	emit("mode", "tuples/sec", "overhead", "wal-bytes", "checkpoints")
	// Best-of-reps, as in the ingest experiment: each mode reruns until
	// the cumulative wall clock clears minWall or the rep cap, and the
	// fastest rep is reported — the overhead column compares best
	// against best.
	minWall := 800 * time.Millisecond
	maxReps := 5
	if *quick {
		minWall, maxReps = 200*time.Millisecond, 3
	}
	bestOf := func(mode string, durable bool, ckpt int, fs fault.FS) (recoverRow, error) {
		var row recoverRow
		var wall time.Duration
		for r := 0; r < maxReps; r++ {
			got, err := runRecoverIngestRow(mode, durable, ckpt, tuples, fs)
			if err != nil {
				return recoverRow{}, err
			}
			wall += time.Duration(float64(2*tuples) / got.TuplesPerSec * float64(time.Second))
			if r == 0 || got.TuplesPerSec > row.TuplesPerSec {
				row = got
			}
			if wall >= minWall {
				break
			}
		}
		return row, nil
	}
	emitRow := func(row recoverRow) {
		rep.Ingest = append(rep.Ingest, row)
		emit(row.Mode,
			fmt.Sprintf("%.0f", row.TuplesPerSec),
			fmt.Sprintf("%.1f%%", row.OverheadPct),
			fmt.Sprintf("%d", row.WALBytes),
			fmt.Sprintf("%d", row.Checkpoints))
	}
	overhead := func(ref, row recoverRow) float64 {
		if ref.TuplesPerSec <= 0 {
			return 0
		}
		return (ref.TuplesPerSec - row.TuplesPerSec) / ref.TuplesPerSec * 100
	}

	// Each durable row is priced against the row that differs by one
	// knob: wal against baseline (the logging tax), wal+seam and
	// wal+checkpoint against wal (the seam tax and the checkpoint cost
	// — the two acceptance figures).
	baseRow, err := bestOf("baseline", false, 0, nil)
	if err != nil {
		return err
	}
	emitRow(baseRow)
	walRow, err := bestOf("wal", true, 0, nil)
	if err != nil {
		return err
	}
	walRow.OverheadPct = overhead(baseRow, walRow)
	emitRow(walRow)

	// The seam row is priced against its own interleaved wal reference,
	// not the wal row above: these disk-bound runs drift with writeback
	// backlog from earlier rows (run-to-run spread above the seam's real
	// cost), and alternating seam and reference reps samples the same
	// disk conditions for both sides of the comparison.
	seamFS := fault.Inject(nil, fault.NewPlan())
	var seamRow, seamRef recoverRow
	for r := 0; r < maxReps; r++ {
		ref, err := runRecoverIngestRow("wal", true, 0, tuples, nil)
		if err != nil {
			return err
		}
		got, err := runRecoverIngestRow("wal+seam", true, 0, tuples, seamFS)
		if err != nil {
			return err
		}
		if r == 0 || ref.TuplesPerSec > seamRef.TuplesPerSec {
			seamRef = ref
		}
		if r == 0 || got.TuplesPerSec > seamRow.TuplesPerSec {
			seamRow = got
		}
	}
	seamRow.OverheadPct = overhead(seamRef, seamRow)
	emitRow(seamRow)

	ckptRow, err := bestOf("wal+checkpoint", true, ckptBatches, nil)
	if err != nil {
		return err
	}
	ckptRow.OverheadPct = overhead(walRow, ckptRow)
	emitRow(ckptRow)

	rep.SeamOverheadPct = seamRow.OverheadPct
	rep.CheckpointOverheadPct = ckptRow.OverheadPct
	if rep.SeamOverheadPct > 10 {
		return fmt.Errorf("disarmed fault seam costs %.1f%% vs its paired wal reference (soft gate 10%%)",
			rep.SeamOverheadPct)
	}

	// The degrade row is a behavior demo, not a perf figure: a
	// persistent fsync fault fires ~1/3 into the run, the engine sheds
	// durability (OnError: DurDegrade) and keeps serving, and at ~2/3 a
	// Checkpoint into a healthy directory re-arms the WAL. The row
	// errors unless the Health transitions happen in that order.
	degRow, err := runRecoverDegradeRow(tuples)
	if err != nil {
		return err
	}
	degRow.OverheadPct = overhead(walRow, degRow)
	emitRow(degRow)

	fmt.Println("# restore time vs state size")
	emit("window", "state-bytes", "checkpoint-ms", "restore-ms")
	for _, w := range sizes {
		row, err := runRestoreRow(w)
		if err != nil {
			return err
		}
		rep.Restore = append(rep.Restore, row)
		emit(fmt.Sprintf("%d", row.WindowCount),
			fmt.Sprintf("%d", row.StateBytes),
			fmt.Sprintf("%.2f", row.CheckpointMs),
			fmt.Sprintf("%.2f", row.RestoreMs))
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}
	return nil
}
