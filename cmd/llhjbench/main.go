// Command llhjbench regenerates every table and figure of the paper's
// evaluation (§7) from this repository's implementation, using the
// discrete-event simulator so that paper-scale pipeline widths (4–40
// cores) run on any machine. Output is the same rows/series the paper
// plots; absolute values are at the reduced scale documented in
// EXPERIMENTS.md (the shapes are the reproduction target).
//
// Usage:
//
//	llhjbench <experiment> [flags]
//
// Experiments:
//
//	fig5     HSJ latency over wall-clock time (two window configs)
//	fig17    throughput/stream vs cores: HSJ, LLHJ, LLHJ+punctuation
//	fig18    average latency vs cores: HSJ vs LLHJ
//	fig19    LLHJ latency over time (batch 64, two window configs)
//	fig20    LLHJ latency over time (batch 4)
//	fig21    max sort-buffer size vs cores (punctuated ordered output)
//	table2   throughput at max cores: HSJ, LLHJ, LLHJ+hash-index
//	shard    live sharded vs single-pipeline equi-join scaling (-shards,
//	         -json BENCH_shard.json) — this repository's scaling curve
//	         beyond the paper, not a paper figure
//	skew     uniform vs Zipf-skewed keys, static vs adaptive routing
//	         (-json BENCH_skew.json) — what the adaptive shard runtime
//	         recovers when hot keys collide on one shard
//	ingest   per-tuple vs batched ingress on the sharded driver
//	         (-json BENCH_ingest.json) — what PushRBatch/PushSBatch
//	         amortization recovers on the admission path
//	probe    static scan/hash/btree access paths vs the IndexAuto
//	         per-key-group strategy selector across selectivity mixes
//	         (-json BENCH_probe.json), with enforced crossover checks
//	all      run everything
//
// Common flags: -scale, -quick, -csv (see -h).
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"handshakejoin"
	"handshakejoin/internal/experiments"
	"handshakejoin/internal/pipeline"
)

var (
	quick      = flag.Bool("quick", false, "smaller parameters: faster, coarser shapes")
	csv        = flag.Bool("csv", false, "emit comma-separated values instead of aligned text")
	cores      = flag.String("cores", "4,8,12,16,20,24,28,32,36,40", "core counts for the scaling experiments")
	shardsFlag = flag.String("shards", "1,2,4,8", "shard counts for the shard experiment (must divide the worker budget)")
	jsonOut    = flag.String("json", "", "write the shard experiment report to this JSON file (e.g. BENCH_shard.json)")
	maxAllocs  = flag.Float64("maxallocs", 0, "ingest/probe: fail (exit 1) if a row exceeds its allocation budget (ingest: absolute allocs/tuple per row; probe: auto's allocs/tuple over the best static's); 0 disables — the CI sanity steps pin the hot paths' allocation budgets with it")
	obsAddr    = flag.String("obs", "", "serve each live engine's observability endpoint (/metrics, /events, /debug/pprof) on this address while its row runs (shard/skew/ingest experiments; e.g. 127.0.0.1:9177)")
	cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address for the life of the process")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	os.Exit(run())
}

// run carries the whole invocation so the profile teardown runs on
// every exit path (os.Exit skips defers).
func run() int {
	if flag.NArg() < 1 {
		usage()
		return 2
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "llhjbench: pprof endpoint: %v\n", err)
			}
		}()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llhjbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "llhjbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "llhjbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "llhjbench: %v\n", err)
			}
		}()
	}
	cmd := flag.Arg(0)
	runners := map[string]func() error{
		"fig5":    fig5,
		"fig17":   fig17,
		"fig18":   fig18,
		"fig19":   fig19,
		"fig20":   fig20,
		"fig21":   fig21,
		"table2":  table2,
		"shard":   shardScaling,
		"skew":    skewExperiment,
		"ingest":  ingestExperiment,
		"probe":   probeExperiment,
		"recover": recoverExperiment,
	}
	if cmd == "all" {
		for _, name := range []string{"fig5", "fig17", "fig18", "fig19", "fig20", "fig21", "table2", "shard", "skew", "ingest", "probe", "recover"} {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](); err != nil {
				fmt.Fprintf(os.Stderr, "llhjbench %s: %v\n", name, err)
				return 1
			}
			fmt.Println()
		}
		return 0
	}
	fn, ok := runners[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "llhjbench: unknown experiment %q\n\n", cmd)
		usage()
		return 2
	}
	if err := fn(); err != nil {
		fmt.Fprintf(os.Stderr, "llhjbench %s: %v\n", cmd, err)
		return 1
	}
	return 0
}

// obsCfg is the observability configuration every live-engine row
// applies: with -obs unset it is zero and the layer stays off. Rows run
// sequentially and each engine closes its listener on Close, so one
// address serves whichever engine is currently live.
func obsCfg() handshakejoin.ObsConfig {
	return handshakejoin.ObsConfig{Addr: *obsAddr}
}

func usage() {
	fmt.Fprintf(os.Stderr, `llhjbench — reproduce the evaluation of "Low-Latency Handshake Join" (PVLDB 7(9), 2014)

usage: llhjbench <fig5|fig17|fig18|fig19|fig20|fig21|table2|shard|skew|ingest|probe|recover|all> [flags]

flags:
`)
	flag.PrintDefaults()
}

func coreList() []int {
	var out []int
	for _, f := range strings.Split(*cores, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err == nil && n > 0 {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{4, 8, 16, 24, 32, 40}
	}
	return out
}

func emit(cols ...any) {
	if *csv {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = strings.TrimSpace(fmt.Sprint(c))
		}
		fmt.Println(strings.Join(parts, ","))
		return
	}
	for _, c := range cols {
		fmt.Printf("%14v", c)
	}
	fmt.Println()
}

func ms(ns float64) string  { return fmt.Sprintf("%.2f", ns/1e6) }
func sec(ns float64) string { return fmt.Sprintf("%.2f", ns/1e9) }

// latencySeries runs one latency experiment and prints the
// latency-over-time series the paper plots in Figures 5, 19 and 20.
func latencySeries(algo experiments.Algo, winR, winS int64, batch int, unit string) error {
	p := experiments.Params{
		Algo:       algo,
		Nodes:      40,
		RatePerSec: 50,
		WindowR:    winR,
		WindowS:    winS,
		Batch:      batch,
		Duration:   5 * maxI64(winR, winS) / 2,
		Domain:     200,
	}
	if *quick {
		p.Nodes = 8
		p.Duration = 3 * maxI64(winR, winS) / 2
	}
	res, err := experiments.Run(p)
	if err != nil {
		return err
	}
	fmt.Printf("# %v, |WR|=%ds |WS|=%ds, batch %d, %d cores, rate %.0f tuples/s\n",
		algo, winR/1e9, winS/1e9, batch, p.Nodes, p.RatePerSec)
	emit("time(s)", "avg("+unit+")", "std("+unit+")", "max("+unit+")", "tuples")
	div := 1e6
	if unit == "s" {
		div = 1e9
	}
	for _, pt := range res.Latency.Points() {
		emit(sec(float64(pt.At)),
			fmt.Sprintf("%.3f", pt.Avg/div),
			fmt.Sprintf("%.3f", pt.Std/div),
			fmt.Sprintf("%.3f", float64(pt.Max)/div),
			pt.Count)
	}
	fmt.Printf("# steady state: avg %.3f%s max %.3f%s over %d results\n",
		res.SteadyAvg/div, unit, float64(res.SteadyMax)/div, unit, res.Results)
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// fig5 reproduces Figure 5: latency distribution of the original
// handshake join for 200/200s and 100/200s windows. The paper's
// steady-state maxima are 100s and 66.6s (= WR·WS/(WR+WS)).
func fig5() error {
	winA, winB := int64(200e9), int64(200e9)
	if *quick {
		winA, winB = 20e9, 20e9
	}
	if err := latencySeries(experiments.AlgoHSJ, winA, winB, 64, "s"); err != nil {
		return err
	}
	fmt.Println()
	if *quick {
		return latencySeries(experiments.AlgoHSJ, winA/2, winB, 64, "s")
	}
	return latencySeries(experiments.AlgoHSJ, 100e9, 200e9, 64, "s")
}

// fig19 reproduces Figure 19: LLHJ latency for the same two window
// configurations (paper: avg < 10ms, max ≤ 30ms, dominated by the
// 64-tuple batching delay).
func fig19() error {
	winA, winB := int64(200e9), int64(200e9)
	if *quick {
		winA, winB = 20e9, 20e9
	}
	if err := latencySeries(experiments.AlgoLLHJ, winA, winB, 64, "ms"); err != nil {
		return err
	}
	fmt.Println()
	if *quick {
		return latencySeries(experiments.AlgoLLHJ, winA/2, winB, 64, "ms")
	}
	return latencySeries(experiments.AlgoLLHJ, 100e9, 200e9, 64, "ms")
}

// fig20 reproduces Figure 20: LLHJ latency with batch size 4 (paper:
// avg ≈ 1ms, max 3–4ms).
func fig20() error {
	win := int64(200e9)
	if *quick {
		win = 20e9
	}
	return latencySeries(experiments.AlgoLLHJ, win, win, 4, "ms")
}

// scalingParams is the shared configuration of the throughput/latency
// scaling experiments (Figures 17, 18, 21 and Table 2). The paper uses
// a 15-minute window; the simulator uses a 1-second window with a
// coarse cost model, preserving the scan-dominated cost structure.
func scalingParams() experiments.Params {
	p := experiments.Params{
		WindowR:  1e9,
		WindowS:  1e9,
		Batch:    64,
		Duration: 25e8,
		Cost:     pipeline.CoarseCostModel(),
	}
	if *quick {
		p.Duration = 15e8
	}
	return p
}

func searchRate(p experiments.Params, algo experiments.Algo, n int, hi float64) (float64, error) {
	p.Algo = algo
	p.Nodes = n
	iters := 7
	if *quick {
		iters = 5
	}
	return experiments.MaxRate(p, 25, hi, iters)
}

// fig17 reproduces Figure 17: maximum sustainable throughput per stream
// vs core count for HSJ, LLHJ and LLHJ with punctuations, plus the
// analytic √n model curve.
func fig17() error {
	p := scalingParams()
	fmt.Println("# max sustainable throughput per stream (tuples/sec)")
	emit("cores", "hsj", "llhj", "llhj+punct", "model")
	for _, n := range coreList() {
		hsjRate, err := searchRate(p, experiments.AlgoHSJ, n, 6000)
		if err != nil {
			return err
		}
		llhjRate, err := searchRate(p, experiments.AlgoLLHJ, n, 6000)
		if err != nil {
			return err
		}
		pp := p
		pp.CollectPeriod = 50e6
		punctRate, err := searchRate(pp, experiments.AlgoLLHJPunct, n, 6000)
		if err != nil {
			return err
		}
		model := experiments.ModelMaxRate(experiments.Params{
			Algo: experiments.AlgoLLHJ, Nodes: n,
			WindowR: p.WindowR, WindowS: p.WindowS, Batch: p.Batch, Cost: p.Cost,
		})
		emit(n, fmt.Sprintf("%.0f", hsjRate), fmt.Sprintf("%.0f", llhjRate),
			fmt.Sprintf("%.0f", punctRate), fmt.Sprintf("%.0f", model))
	}
	return nil
}

// fig18 reproduces Figure 18: average result latency vs core count for
// both algorithms at a fixed input rate (log-scale contrast: HSJ sits at
// the window scale, LLHJ at the batching scale).
func fig18() error {
	win := int64(10e9)
	if *quick {
		win = 4e9
	}
	fmt.Printf("# average latency (seconds), window %ds, batch 64, rate 300 tuples/s\n", win/1e9)
	emit("cores", "hsj(s)", "llhj(s)", "ratio")
	for _, n := range coreList() {
		base := experiments.Params{
			Nodes: n, RatePerSec: 300, WindowR: win, WindowS: win,
			Batch: 64, Duration: 5 * win / 2, Domain: 200,
		}
		h := base
		h.Algo = experiments.AlgoHSJ
		hres, err := experiments.Run(h)
		if err != nil {
			return err
		}
		l := base
		l.Algo = experiments.AlgoLLHJ
		lres, err := experiments.Run(l)
		if err != nil {
			return err
		}
		ratio := 0.0
		if lres.SteadyAvg > 0 {
			ratio = hres.SteadyAvg / lres.SteadyAvg
		}
		emit(n, sec(hres.SteadyAvg), fmt.Sprintf("%.4f", lres.SteadyAvg/1e9),
			fmt.Sprintf("%.0fx", ratio))
	}
	return nil
}

// fig21 reproduces Figure 21: maximum buffer size of the downstream
// sorting operator consuming the punctuated LLHJ output.
func fig21() error {
	win := int64(5e9)
	if *quick {
		win = 2e9
	}
	fmt.Println("# max sort buffer (tuples) with punctuated output")
	emit("cores", "maxbuffer", "results", "punctuations")
	for _, n := range coreList() {
		p := experiments.Params{
			Algo: experiments.AlgoLLHJPunct, Nodes: n, RatePerSec: 200,
			WindowR: win, WindowS: win, Batch: 64,
			Duration: 3 * win, Domain: 100, CollectPeriod: 50e6,
		}
		res, err := experiments.Run(p)
		if err != nil {
			return err
		}
		emit(n, res.MaxSortBuffer, res.Results, res.Punctuations)
	}
	return nil
}

// table2 reproduces Table 2: throughput of the widest configuration for
// HSJ, LLHJ and LLHJ with node-local hash indexes (paper, 40 cores &
// 15-minute windows: 5125 / 5117 / 225,234 tuples/sec — a 44x index
// speedup).
func table2() error {
	p := scalingParams()
	cs := coreList()
	n := cs[len(cs)-1]
	fmt.Printf("# max sustainable throughput at %d cores (tuples/sec)\n", n)
	emit("algorithm", "tuples/sec")
	hsjRate, err := searchRate(p, experiments.AlgoHSJ, n, 6000)
	if err != nil {
		return err
	}
	emit("handshake join", fmt.Sprintf("%.0f", hsjRate))
	llhjRate, err := searchRate(p, experiments.AlgoLLHJ, n, 6000)
	if err != nil {
		return err
	}
	emit("low-latency handshake join", fmt.Sprintf("%.0f", llhjRate))
	pIdx := p
	pIdx.Batch = 8 // smaller batches shrink the linearly scanned in-flight buffer,
	// which the coarse cost model otherwise over-charges (see EXPERIMENTS.md)
	idxRate, err := searchRate(pIdx, experiments.AlgoLLHJIndex, n, 250000)
	if err != nil {
		return err
	}
	emit("low-latency handshake join with index", fmt.Sprintf("%.0f", idxRate))
	fmt.Printf("# index speedup: %.1fx over scan\n", idxRate/llhjRate)
	return nil
}
