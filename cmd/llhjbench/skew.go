package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"handshakejoin"
	"handshakejoin/internal/metrics"
	"handshakejoin/internal/shard"
	"handshakejoin/internal/workload"
)

// skewExperiment measures what the adaptive shard runtime recovers
// when the key distribution is skewed: live throughput, tail latency
// and per-shard ingress balance of an 8-shard equi-join under uniform
// vs Zipf-distributed keys, with the static group table vs the
// adaptive control loop (Config.Adapt). Tracked across PRs via
// BENCH_skew.json.
//
// The skewed workloads model the hazard the rebalancer exists for: the
// hot keys collide on one shard. Every Zipf rank, hottest first, is
// mapped to join keys whose key-groups the initial routing table
// assigns to shard 0, until that pool is exhausted (see skewPerm) — so
// shard 0 starts out owning the mega-key, its hot siblings, and the
// bulk of the tail. A uniform hash makes such collisions a matter of
// luck rather than impossibility — this experiment pins the unlucky
// case so the recovery is measured against it. (PR 2 spread the
// hottest ranks over shards 1..7 up front as a concession to its
// drain-only runtime, which could never move them; with live state
// migration the runtime is expected to dig itself out of the full
// hazard, so the concession is gone. Cross-PR comparisons of the Zipf
// rows therefore start fresh at PR 3; the uniform rows are unaffected.)
//
// On a single-core host (like the CI container) the measured recovery
// comes from total-work reduction: with scan-indexed nodes an arrival
// costs one pass over its shard's window slice, so a shard holding
// fraction s of the stream costs s·s of the total scan budget and the
// skewed static table wastes quadratically more work than a balanced
// one. On real multi-core hardware the same rebalance additionally
// converts the hot shard from the pipeline's critical path into one
// lane among many.
type skewRow struct {
	Dist             string  `json:"dist"`
	Theta            float64 `json:"theta"`
	Adaptive         bool    `json:"adaptive"`
	Migrate          bool    `json:"migrate"`
	Slice            bool    `json:"slice"`
	TuplesPerSec     float64 `json:"tuples_per_sec"`
	P99LatencyMs     float64 `json:"p99_latency_ms"`
	IngressImbalance float64 `json:"ingress_imbalance"`
	Results          uint64  `json:"results"`
	Rebalances       uint64  `json:"rebalances"`
	KeyGroupMoves    uint64  `json:"key_group_moves"`
	StateMigrations  uint64  `json:"state_migrations"`
	MigratedTuples   uint64  `json:"migrated_tuples"`
	SliceMigrations  uint64  `json:"slice_migrations"`
	// SourceFreezeStalls counts migration ops that froze ingress for a
	// whole-group extract on the source shard; slice rows must show 0.
	SourceFreezeStalls uint64 `json:"source_freeze_stalls"`
	// MaxStallUs is the longest single ingress freeze any migration
	// operation held (µs) — for slice rows, bounded by one slice plus
	// the in-flight cap instead of the hot group's window footprint.
	MaxStallUs float64 `json:"max_stall_us"`
}

type skewReport struct {
	Experiment      string    `json:"experiment"`
	Shards          int       `json:"shards"`
	WorkersPerShard int       `json:"workers_per_shard"`
	WindowCount     int       `json:"window_count"`
	Batch           int       `json:"batch"`
	KeyGroups       int       `json:"key_groups"`
	KeyDomain       int       `json:"key_domain"`
	TuplesPerStream int       `json:"tuples_per_stream"`
	Note            string    `json:"note"`
	Rows            []skewRow `json:"rows"`
}

const (
	skewShards    = 8
	skewWindow    = 16384
	skewBatch     = 32
	skewGroups    = 65536 // fine slices: a cold-shard group carries ~0.01% of traffic, so its window drains and it stays drain-movable
	skewDomain    = 1 << 20
	skewValDomain = 1024
	skewWarmupPct = 50 // rebalancing converges in the first half; throughput is timed on the rest
)

// skR / skS carry an equi-join key plus a banded value that keeps the
// match rate (and thus result-assembly cost) low, so the experiment
// measures scan work, not output delivery.
type skR struct {
	Key uint64
	Val int32
}

type skS struct {
	Key uint64
	Val int32
}

func skewPred(r skR, s skS) bool {
	if r.Key != s.Key {
		return false
	}
	d := r.Val - s.Val
	if d < 0 {
		d = -d
	}
	return d <= 1
}

// skewPerm maps Zipf ranks to join keys to pin the skew hazard: every
// rank, hottest first, is mapped to keys whose key-groups the initial
// table assigns to shard 0, until that pool (1/8 of the domain) is
// exhausted; remaining ranks take the leftover keys. Rank 0 is the
// hottest. The result: shard 0 starts out owning essentially the whole
// skewed stream — the never-draining mega-key and its hot siblings
// included, each in its own key-group. Drain-based rebalancing can
// evacuate only the cold slices; how much of the remaining skew is
// recovered is exactly the measure of live state migration.
func skewPerm(part shard.Partitioner, domain int) []uint64 {
	var hot, tail []uint64
	for k := uint64(1); len(hot)+len(tail) < domain; k++ {
		if part.Of(k) == 0 {
			hot = append(hot, k)
		} else {
			tail = append(tail, k)
		}
	}
	perm := make([]uint64, 0, domain)
	perm = append(perm, hot...)
	perm = append(perm, tail...)
	return perm[:domain]
}

func runSkewRow(dist string, theta float64, adaptive, migrate, slice bool, tuples int) (skewRow, error) {
	var mu sync.Mutex
	var lats []int64
	cfg := handshakejoin.Config[skR, skS]{
		Workers:     1,
		Shards:      skewShards,
		Predicate:   skewPred,
		WindowR:     handshakejoin.Window{Count: skewWindow},
		WindowS:     handshakejoin.Window{Count: skewWindow},
		Batch:       skewBatch,
		MaxInFlight: 4,
		KeyR:        func(r skR) uint64 { return r.Key },
		KeyS:        func(s skS) uint64 { return s.Key },
		Adapt: handshakejoin.AdaptConfig{
			Enable:           adaptive,
			SamplePeriod:     5 * time.Millisecond,
			SkewThreshold:    1.5,
			MaxMovesPerCycle: 2048,
			StaleMoveCycles:  200,
			KeyGroups:        skewGroups,
			Migration: handshakejoin.MigrationConfig{
				// The budget admits the heaviest hot groups (a 38%-mass
				// rank holds ~0.38 * 2 * window live tuples). Freezing
				// rows move each group in one frozen extract under it;
				// slice rows move the same state in 2048-tuple hops
				// with ingress live in between.
				Enable:            migrate || slice,
				MaxTuplesPerCycle: 16384,
				Freezing:          migrate && !slice,
				SliceTuples:       2048,
			},
		},
		Obs: obsCfg(),
		OnOutput: func(it handshakejoin.Item[skR, skS]) {
			if it.Punct {
				return
			}
			p := it.Result.Pair
			in := p.R.Wall
			if p.S.Wall > in {
				in = p.S.Wall
			}
			mu.Lock()
			lats = append(lats, it.Result.At-in)
			mu.Unlock()
		},
	}
	eng, err := handshakejoin.New(cfg)
	if err != nil {
		return skewRow{}, err
	}
	part := shard.NewPartitionerGroups(skewShards, skewGroups)
	perm := skewPerm(part, skewDomain)
	rnd := workload.NewRand(42)
	var zr, zs *workload.Zipf
	if dist != "uniform" {
		zr = workload.NewZipf(workload.NewRand(43), theta, skewDomain)
		zs = workload.NewZipf(workload.NewRand(44), theta, skewDomain)
	}
	nextKey := func(z *workload.Zipf) uint64 {
		if z == nil {
			return uint64(1 + rnd.Intn(skewDomain))
		}
		return perm[z.Next()]
	}
	// The first skewWarmupPct of the stream is warm-up (the adaptive
	// control loop converges there); throughput is timed on the rest,
	// so static and adaptive rows compare steady states.
	const period = int64(1e3) // 1M tuples/sec virtual stamping
	warmup := tuples * skewWarmupPct / 100
	var start time.Time
	for i := 0; i < tuples; i++ {
		if i == warmup {
			start = time.Now()
		}
		ts := int64(i) * period
		r := skR{Key: nextKey(zr), Val: int32(rnd.Intn(skewValDomain))}
		s := skS{Key: nextKey(zs), Val: int32(rnd.Intn(skewValDomain))}
		if err := eng.PushR(r, ts); err != nil {
			return skewRow{}, err
		}
		if err := eng.PushS(s, ts); err != nil {
			return skewRow{}, err
		}
	}
	elapsed := time.Since(start)
	if err := eng.Close(); err != nil {
		return skewRow{}, err
	}
	st := eng.Stats()
	row := skewRow{
		Dist:               dist,
		Theta:              theta,
		Adaptive:           adaptive,
		Migrate:            migrate,
		Slice:              slice,
		TuplesPerSec:       float64(2*(tuples-warmup)) / elapsed.Seconds(),
		IngressImbalance:   metrics.Imbalance(st.ShardIngress),
		Results:            st.Results,
		Rebalances:         st.Rebalances,
		KeyGroupMoves:      st.KeyGroupMoves,
		StateMigrations:    st.StateMigrations,
		MigratedTuples:     st.MigratedTuples,
		SliceMigrations:    st.SliceMigrations,
		SourceFreezeStalls: st.SourceFreezeStalls,
		MaxStallUs:         float64(st.MaxMigrationStallNs) / 1e3,
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		row.P99LatencyMs = float64(lats[len(lats)*99/100]) / 1e6
	}
	return row, nil
}

func skewExperiment() error {
	tuples := 1200000
	if *quick {
		tuples = 25000
	}
	rep := skewReport{
		Experiment:      "skew-adaptive",
		Shards:          skewShards,
		WorkersPerShard: 1,
		WindowCount:     skewWindow,
		Batch:           skewBatch,
		KeyGroups:       skewGroups,
		KeyDomain:       skewDomain,
		TuplesPerStream: tuples,
		Note: "Skew hazard pinned: every Zipf rank, hottest first, is mapped to " +
			"keys whose key-groups the initial table assigns to shard 0, until " +
			"that pool is exhausted — shard 0 starts out owning essentially the " +
			"whole skewed stream, the never-draining mega-key included. Static " +
			"rows keep that table; adaptive rows let the control loop evacuate " +
			"it by drain-based cut-overs (cold slices only); migrate rows " +
			"additionally allow freezing live state migration, which relocates " +
			"the hot groups themselves in one frozen extract each; slice rows " +
			"relocate the same groups by incremental handoffs — bounded slice " +
			"hops with ingress live in between and probe-only double-reads " +
			"covering the split state — so source_freeze_stalls is 0 and " +
			"max_stall_us is bounded by a slice, not by the hot group's window " +
			"footprint. Throughput is timed after a 50% warm-up so all rows " +
			"compare steady states. The hot-rank spread concession of PR 2 is " +
			"gone, so Zipf rows are not comparable to PR 2 numbers.",
	}
	fmt.Printf("# skew recovery, %d shards x %d worker, count windows %d, %d tuples/stream\n",
		rep.Shards, rep.WorkersPerShard, rep.WindowCount, tuples)
	emit("dist", "adaptive", "migrate", "slice", "tuples/sec", "p99(ms)", "imbalance", "rebal", "moves", "migr", "mtuples", "hops", "freezes", "stallmax(us)", "results")
	dists := []struct {
		name  string
		theta float64
	}{
		{"uniform", 0},
		{"zipf", 0.5},
		{"zipf", 1.0},
		{"zipf", 1.5},
	}
	recovery := map[string][4]float64{}
	modes := []struct {
		adaptive, migrate, slice bool
		slot                     int
	}{
		{false, false, false, 0},
		{true, false, false, 1},
		{true, true, false, 2},
		{true, false, true, 3},
	}
	for _, d := range dists {
		name := d.name
		if d.theta > 0 {
			name = fmt.Sprintf("zipf-%.1f", d.theta)
		}
		for _, m := range modes {
			row, err := runSkewRow(d.name, d.theta, m.adaptive, m.migrate, m.slice, tuples)
			if err != nil {
				return err
			}
			rep.Rows = append(rep.Rows, row)
			rec := recovery[name]
			rec[m.slot] = row.TuplesPerSec
			recovery[name] = rec
			emit(name, m.adaptive, m.migrate, m.slice,
				fmt.Sprintf("%.0f", row.TuplesPerSec),
				fmt.Sprintf("%.3f", row.P99LatencyMs),
				fmt.Sprintf("%.2f", row.IngressImbalance),
				row.Rebalances, row.KeyGroupMoves, row.StateMigrations, row.MigratedTuples,
				row.SliceMigrations, row.SourceFreezeStalls,
				fmt.Sprintf("%.0f", row.MaxStallUs), row.Results)
		}
	}
	for _, d := range dists {
		name := d.name
		if d.theta > 0 {
			name = fmt.Sprintf("zipf-%.1f", d.theta)
		}
		if rec := recovery[name]; rec[0] > 0 {
			fmt.Printf("# %s: adaptive/static = %.2fx, +migrate/static = %.2fx, +slice/static = %.2fx\n",
				name, rec[1]/rec[0], rec[2]/rec[0], rec[3]/rec[0])
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}
	return nil
}
