package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"handshakejoin"
	"handshakejoin/internal/metrics"
	"handshakejoin/internal/shard"
	"handshakejoin/internal/workload"
)

// skewExperiment measures what the adaptive shard runtime recovers
// when the key distribution is skewed: live throughput, tail latency
// and per-shard ingress balance of an 8-shard equi-join under uniform
// vs Zipf-distributed keys, with the static group table vs the
// adaptive control loop (Config.Adapt). Tracked across PRs via
// BENCH_skew.json.
//
// The skewed workloads model the hazard the rebalancer exists for: the
// hot keys collide on one shard. Beyond the hottest few dozen ranks —
// individually so frequent their windows never empty, which no safe
// cut-over could relocate; they are spread over the other shards up
// front — every Zipf rank is deliberately mapped to join keys whose
// key-groups the initial routing table assigns to shard 0, until that
// pool is exhausted (see skewPerm). A uniform hash makes such
// collisions a matter of luck rather than impossibility — this
// experiment pins the unlucky case so the recovery is measured
// against it.
//
// On a single-core host (like the CI container) the measured recovery
// comes from total-work reduction: with scan-indexed nodes an arrival
// costs one pass over its shard's window slice, so a shard holding
// fraction s of the stream costs s·s of the total scan budget and the
// skewed static table wastes quadratically more work than a balanced
// one. On real multi-core hardware the same rebalance additionally
// converts the hot shard from the pipeline's critical path into one
// lane among many.
type skewRow struct {
	Dist             string  `json:"dist"`
	Theta            float64 `json:"theta"`
	Adaptive         bool    `json:"adaptive"`
	TuplesPerSec     float64 `json:"tuples_per_sec"`
	P99LatencyMs     float64 `json:"p99_latency_ms"`
	IngressImbalance float64 `json:"ingress_imbalance"`
	Results          uint64  `json:"results"`
	Rebalances       uint64  `json:"rebalances"`
	KeyGroupMoves    uint64  `json:"key_group_moves"`
}

type skewReport struct {
	Experiment      string    `json:"experiment"`
	Shards          int       `json:"shards"`
	WorkersPerShard int       `json:"workers_per_shard"`
	WindowCount     int       `json:"window_count"`
	Batch           int       `json:"batch"`
	KeyGroups       int       `json:"key_groups"`
	KeyDomain       int       `json:"key_domain"`
	ImmovableRanks  int       `json:"immovable_ranks_spread"`
	TuplesPerStream int       `json:"tuples_per_stream"`
	Note            string    `json:"note"`
	Rows            []skewRow `json:"rows"`
}

const (
	skewShards    = 8
	skewWindow    = 16384
	skewBatch     = 32
	skewGroups    = 65536 // fine slices: a hot-shard group carries ~0.01% of traffic, so its window drains and it stays movable
	skewDomain    = 1 << 20
	skewImmovable = 72 // hottest ranks: individually too hot to ever drain, spread over shards 1..7 up front
	skewValDomain = 1024
	skewWarmupPct = 50 // rebalancing converges in the first half; throughput is timed on the rest
)

// skR / skS carry an equi-join key plus a banded value that keeps the
// match rate (and thus result-assembly cost) low, so the experiment
// measures scan work, not output delivery.
type skR struct {
	Key uint64
	Val int32
}

type skS struct {
	Key uint64
	Val int32
}

func skewPred(r skR, s skS) bool {
	if r.Key != s.Key {
		return false
	}
	d := r.Val - s.Val
	if d < 0 {
		d = -d
	}
	return d <= 1
}

// skewPerm maps Zipf ranks to join keys to pin the skew hazard: the
// hottest `immovable` ranks — keys so frequent their windows never
// empty, which no safe cut-over can relocate — are spread round-robin
// over shards 1..7, and every following rank is packed onto keys whose
// key-groups the initial table assigns to shard 0, until that pool is
// exhausted; remaining ranks take the leftover keys. Rank 0 is the
// hottest. The result: shard 0 starts out owning roughly half the
// stream, all of it in thin, drainable group slices.
func skewPerm(part shard.Partitioner, domain, immovable int) []uint64 {
	var head, hot, tail []uint64
	for k := uint64(1); len(head) < immovable || len(head)+len(hot)+len(tail) < domain; k++ {
		switch s := part.Of(k); {
		case s != 0 && len(head) < immovable:
			head = append(head, k)
		case s == 0:
			hot = append(hot, k)
		default:
			tail = append(tail, k)
		}
	}
	perm := make([]uint64, 0, domain+len(tail))
	perm = append(perm, head...)
	perm = append(perm, hot...)
	perm = append(perm, tail...)
	return perm[:domain]
}

func runSkewRow(dist string, theta float64, adaptive bool, tuples int) (skewRow, error) {
	var mu sync.Mutex
	var lats []int64
	cfg := handshakejoin.Config[skR, skS]{
		Workers:     1,
		Shards:      skewShards,
		Predicate:   skewPred,
		WindowR:     handshakejoin.Window{Count: skewWindow},
		WindowS:     handshakejoin.Window{Count: skewWindow},
		Batch:       skewBatch,
		MaxInFlight: 4,
		KeyR:        func(r skR) uint64 { return r.Key },
		KeyS:        func(s skS) uint64 { return s.Key },
		Adapt: handshakejoin.AdaptConfig{
			Enable:           adaptive,
			SamplePeriod:     5 * time.Millisecond,
			SkewThreshold:    1.5,
			MaxMovesPerCycle: 2048,
			StaleMoveCycles:  200,
			KeyGroups:        skewGroups,
		},
		OnOutput: func(it handshakejoin.Item[skR, skS]) {
			if it.Punct {
				return
			}
			p := it.Result.Pair
			in := p.R.Wall
			if p.S.Wall > in {
				in = p.S.Wall
			}
			mu.Lock()
			lats = append(lats, it.Result.At-in)
			mu.Unlock()
		},
	}
	eng, err := handshakejoin.New(cfg)
	if err != nil {
		return skewRow{}, err
	}
	part := shard.NewPartitionerGroups(skewShards, skewGroups)
	perm := skewPerm(part, skewDomain, skewImmovable)
	rnd := workload.NewRand(42)
	var zr, zs *workload.Zipf
	if dist != "uniform" {
		zr = workload.NewZipf(workload.NewRand(43), theta, skewDomain)
		zs = workload.NewZipf(workload.NewRand(44), theta, skewDomain)
	}
	nextKey := func(z *workload.Zipf) uint64 {
		if z == nil {
			return uint64(1 + rnd.Intn(skewDomain))
		}
		return perm[z.Next()]
	}
	// The first skewWarmupPct of the stream is warm-up (the adaptive
	// control loop converges there); throughput is timed on the rest,
	// so static and adaptive rows compare steady states.
	const period = int64(1e3) // 1M tuples/sec virtual stamping
	warmup := tuples * skewWarmupPct / 100
	var start time.Time
	for i := 0; i < tuples; i++ {
		if i == warmup {
			start = time.Now()
		}
		ts := int64(i) * period
		r := skR{Key: nextKey(zr), Val: int32(rnd.Intn(skewValDomain))}
		s := skS{Key: nextKey(zs), Val: int32(rnd.Intn(skewValDomain))}
		if err := eng.PushR(r, ts); err != nil {
			return skewRow{}, err
		}
		if err := eng.PushS(s, ts); err != nil {
			return skewRow{}, err
		}
	}
	elapsed := time.Since(start)
	if err := eng.Close(); err != nil {
		return skewRow{}, err
	}
	st := eng.Stats()
	row := skewRow{
		Dist:             dist,
		Theta:            theta,
		Adaptive:         adaptive,
		TuplesPerSec:     float64(2*(tuples-warmup)) / elapsed.Seconds(),
		IngressImbalance: metrics.Imbalance(st.ShardIngress),
		Results:          st.Results,
		Rebalances:       st.Rebalances,
		KeyGroupMoves:    st.KeyGroupMoves,
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		row.P99LatencyMs = float64(lats[len(lats)*99/100]) / 1e6
	}
	return row, nil
}

func skewExperiment() error {
	tuples := 1200000
	if *quick {
		tuples = 25000
	}
	rep := skewReport{
		Experiment:      "skew-adaptive",
		Shards:          skewShards,
		WorkersPerShard: 1,
		WindowCount:     skewWindow,
		Batch:           skewBatch,
		KeyGroups:       skewGroups,
		KeyDomain:       skewDomain,
		ImmovableRanks:  skewImmovable,
		TuplesPerStream: tuples,
		Note: "Skew hazard pinned: beyond the hottest ranks (whose windows never " +
			"empty, so no safe cut-over could relocate them; they are spread over " +
			"shards 1..7 up front), every Zipf rank is mapped to keys whose " +
			"key-groups the initial table assigns to shard 0, until that pool is " +
			"exhausted — shard 0 starts out owning roughly half the stream in " +
			"thin, drainable group slices. Static rows keep that table; adaptive " +
			"rows let the control loop evacuate it. Throughput is timed after a " +
			"50% warm-up so both compare steady states.",
	}
	fmt.Printf("# skew recovery, %d shards x %d worker, count windows %d, %d tuples/stream\n",
		rep.Shards, rep.WorkersPerShard, rep.WindowCount, tuples)
	emit("dist", "adaptive", "tuples/sec", "p99(ms)", "imbalance", "rebal", "moves", "results")
	dists := []struct {
		name  string
		theta float64
	}{
		{"uniform", 0},
		{"zipf", 0.5},
		{"zipf", 1.0},
		{"zipf", 1.5},
	}
	recovery := map[string][2]float64{}
	for _, d := range dists {
		name := d.name
		if d.theta > 0 {
			name = fmt.Sprintf("zipf-%.1f", d.theta)
		}
		for _, adaptive := range []bool{false, true} {
			row, err := runSkewRow(d.name, d.theta, adaptive, tuples)
			if err != nil {
				return err
			}
			rep.Rows = append(rep.Rows, row)
			rec := recovery[name]
			if adaptive {
				rec[1] = row.TuplesPerSec
			} else {
				rec[0] = row.TuplesPerSec
			}
			recovery[name] = rec
			emit(name, adaptive,
				fmt.Sprintf("%.0f", row.TuplesPerSec),
				fmt.Sprintf("%.3f", row.P99LatencyMs),
				fmt.Sprintf("%.2f", row.IngressImbalance),
				row.Rebalances, row.KeyGroupMoves, row.Results)
		}
	}
	for _, d := range dists {
		name := d.name
		if d.theta > 0 {
			name = fmt.Sprintf("zipf-%.1f", d.theta)
		}
		if rec := recovery[name]; rec[0] > 0 {
			fmt.Printf("# %s: adaptive/static throughput = %.2fx\n", name, rec[1]/rec[0])
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}
	return nil
}
